(** Monotonic clock, for deadlines and elapsed-time measurement.

    [Unix.gettimeofday] follows the system clock: an NTP step or a
    manual clock change mid-run moves it arbitrarily in either
    direction, which can spuriously trip — or indefinitely extend — a
    wall-clock deadline. Everything in this library that compares two
    clock readings ({!Guard} deadlines, the {!Pool} watchdog's task
    ages) reads this clock instead: [CLOCK_MONOTONIC], which only ever
    advances and is immune to clock steps.

    The origin is arbitrary (boot time on Linux); readings are only
    meaningful as differences. For timestamps that must align with the
    outside world (trace spans, log lines) keep using
    [Unix.gettimeofday] / {!Metrics.now}. *)

val now_s : unit -> float
(** Monotonic seconds since an arbitrary origin. *)

val now_ms : unit -> float
(** Monotonic milliseconds since an arbitrary origin. *)
