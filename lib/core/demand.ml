(** Demand-driven slice planning: which functions must be analyzed
    {e exactly} for the rows of one {e seed} function to come out
    bit-identical to an exhaustive run.

    The planner works over an {e oracle} call graph: direct call sites
    contribute their callee, indirect sites contribute a conservative
    target list supplied by the caller (in practice the flow-insensitive
    Andersen pre-pass of [lib/alias], as in Lazy Pointer Analysis).
    Given a seed function [F] (the function enclosing the query
    statement), the plan is built in three steps:

    {ol
    {- [R] — [F] plus its transitive callers: every function whose body
       contains an invocation on some path to [F]. These must be
       analyzed (their call sites reaching [F] carry [F]'s inputs), but
       not necessarily exactly everywhere.}
    {- {e Critical sites} of a member of [R]: call sites whose oracle
       targets intersect [R] — the edges along which an invocation can
       reach [F]. The state {e entering} a critical site must be exact.}
    {- The {e full} set: functions whose whole evaluation must be exact.
       Seeded with [F] itself (every statement row of [F] is recorded)
       and with every member of [R] on an oracle-graph cycle (a
       recursive fixed point feeds late effects back into early
       statements). Then closed under two rules: every defined callee of
       a full function is full, and every defined target of an
       {e exact-effect} site of a non-full [R]-member is full — where a
       site [A] has exact effects when some critical site [B] may
       execute after it ([flows' A B]).}}

    [flows' A B] is a sound over-approximation of "[A]'s effect may
    reach [B]'s input in some execution" for the structured IR: [A]
    textually precedes [B], or the two share an enclosing loop. There is
    no [goto]; [break]/[continue] only ever skip forward or re-enter a
    shared loop.

    The slice is [R ∪ full]. At evaluation time the engine skips any
    call whose (defined) callee is outside the slice, replacing it with
    a summary replay or a widened transfer ({!Engine}); by construction
    no skipped effect flows into an input reaching [F], so [F]'s
    recorded rows — the only rows the plan promises, and the only ones
    {!records} lets the engine keep — equal the exhaustive ones. The
    oracle's conservatism over the engine's own indirect-call resolution
    is re-checked at run time: an evaluated indirect site discovering a
    defined target the oracle did not predict raises {!Oracle_miss} and
    the driver falls back to the exhaustive analysis. *)

module Ir = Simple_ir.Ir

(** [oracle ~fn ~sid] is a conservative list of the {e defined}
    functions an indirect call at statement [sid] of function [fn] can
    invoke. Consulted only for indirect sites. *)
type oracle = fn:string -> sid:int -> string list

(** An evaluated indirect call site resolved to a defined target the
    planning oracle did not predict: the slice cannot be trusted.
    Carries a human-readable description of the site. *)
exception Oracle_miss of string

(** What a skipped call to a function may modify, relative to the
    engine's own semantics (external callees never mutate the state —
    they only produce return-value targets — so they contribute
    nothing). *)
type mods =
  | Mod_all
      (** the function (or a transitive callee) writes through a pointer
          dereference: any visible cell may change *)
  | Mod_globals of (string, unit) Hashtbl.t
      (** every write in the whole callee cone is direct: only these
          global variables (plus the return cell) can change *)

type plan = {
  p_seed : string;  (** the function whose rows the plan preserves *)
  p_entry : string;
  p_slice : (string, unit) Hashtbl.t;
      (** functions analyzed exactly; a defined callee outside it is
          skipped *)
  p_record : (int, unit) Hashtbl.t;
      (** statement ids whose rows are recorded (the seed's body) *)
  p_sites : (string * int, string list) Hashtbl.t;
      (** oracle targets per indirect site [(fn, sid)], for the run-time
          conservatism check *)
  p_mods : (string, mods) Hashtbl.t;
      (** per defined function, what a skipped call to it may modify *)
  p_funcs_total : int;  (** defined functions in the program *)
}

let in_slice p f = Hashtbl.mem p.p_slice f
let records p sid = Hashtbl.mem p.p_record sid
let slice_size p = Hashtbl.length p.p_slice

let slice_funcs p =
  List.sort String.compare (Hashtbl.fold (fun f () acc -> f :: acc) p.p_slice [])

(** Does the plan's oracle admit [target] at indirect site [(fn, sid)]?
    Unknown sites admit nothing (the planner records every indirect site
    of every defined function, so an unknown site is itself a miss). *)
let site_allows p ~fn ~sid target =
  match Hashtbl.find_opt p.p_sites (fn, sid) with
  | Some ts -> List.mem target ts
  | None -> false

(** What a skipped call to [f] may modify; unknown functions get
    {!Mod_all}. *)
let func_mods p f = Option.value ~default:Mod_all (Hashtbl.find_opt p.p_mods f)

(* ------------------------------------------------------------------ *)
(* Call sites with program order                                      *)
(* ------------------------------------------------------------------ *)

(* One call site, with enough position information for [flows']: a
   textual index over the function body and the stack of enclosing loop
   statement ids. *)
type site = {
  st_sid : int;
  st_idx : int;
  st_loops : int list;
  st_tgts : string list;  (* defined targets only *)
  st_indirect : bool;
}

let sites_of ~(defined : string -> bool) ~(oracle : oracle) (f : Ir.func) : site list =
  let idx = ref 0 in
  let acc = ref [] in
  let rec stmts loops l = List.iter (stmt loops) l
  and stmt loops (s : Ir.stmt) =
    incr idx;
    (match s.Ir.s_desc with
    | Ir.Scall (_, Ir.Cdirect g, _) ->
        if defined g then
          acc :=
            {
              st_sid = s.Ir.s_id;
              st_idx = !idx;
              st_loops = loops;
              st_tgts = [ g ];
              st_indirect = false;
            }
            :: !acc
    | Ir.Scall (_, Ir.Cindirect _, _) ->
        acc :=
          {
            st_sid = s.Ir.s_id;
            st_idx = !idx;
            st_loops = loops;
            st_tgts = List.filter defined (oracle ~fn:f.Ir.fn_name ~sid:s.Ir.s_id);
            st_indirect = true;
          }
          :: !acc
    | _ -> ());
    match s.Ir.s_desc with
    | Ir.Sif (_, a, b) ->
        stmts loops a;
        stmts loops b
    | Ir.Sloop l ->
        let loops' = s.Ir.s_id :: loops in
        stmts loops' l.Ir.l_cond_stmts;
        stmts loops' l.Ir.l_body;
        stmts loops' l.Ir.l_step
    | Ir.Sswitch (_, gs) -> List.iter (fun g -> stmts loops g.Ir.g_body) gs
    | _ -> ()
  in
  stmts [] f.Ir.fn_body;
  List.rev !acc

(* May [a]'s effect reach [b]'s input in some execution? Sound for the
   structured IR: textual order, or any shared enclosing loop (whose
   back edge carries late effects to early statements). *)
let flows' a b =
  a.st_idx < b.st_idx || List.exists (fun l -> List.mem l b.st_loops) a.st_loops

(* ------------------------------------------------------------------ *)
(* Planning                                                           *)
(* ------------------------------------------------------------------ *)

let plan (p : Ir.program) ~(entry : string) ~(seed : string) (oracle : oracle) : plan =
  let t0 = Trace.start () in
  let funcs = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace funcs f.Ir.fn_name f) p.Ir.funcs;
  if not (Hashtbl.mem funcs seed) then
    invalid_arg (Printf.sprintf "Demand.plan: %s is not a defined function" seed);
  let defined f = Hashtbl.mem funcs f in
  let sites = Hashtbl.create 64 in
  Hashtbl.iter (fun name f -> Hashtbl.replace sites name (sites_of ~defined ~oracle f)) funcs;
  let site_list name = try Hashtbl.find sites name with Not_found -> [] in
  (* forward and reverse oracle call graphs *)
  let callees name =
    List.concat_map (fun st -> st.st_tgts) (site_list name)
  in
  let callers = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name _ ->
      List.iter
        (fun g ->
          let cur = Option.value ~default:[] (Hashtbl.find_opt callers g) in
          if not (List.mem name cur) then Hashtbl.replace callers g (name :: cur))
        (callees name))
    funcs;
  let reach_of roots ~edges =
    let seen = Hashtbl.create 16 in
    let rec go n =
      if not (Hashtbl.mem seen n) then begin
        Hashtbl.replace seen n ();
        List.iter go (edges n)
      end
    in
    List.iter go roots;
    seen
  in
  (* R: the seed and its transitive callers *)
  let r =
    reach_of [ seed ] ~edges:(fun n ->
        Option.value ~default:[] (Hashtbl.find_opt callers n))
  in
  (* [R]-members on an oracle-graph cycle: the recursive fixed point can
     carry any of their effects back into any of their statements, so
     they are fully exact *)
  let cyclic name = Hashtbl.mem (reach_of (callees name) ~edges:callees) name in
  let full = Hashtbl.create 16 in
  Hashtbl.replace full seed ();
  Hashtbl.iter (fun name () -> if cyclic name then Hashtbl.replace full name ()) r;
  (* close: full members contribute every callee; non-full [R]-members
     contribute the targets of their exact-effect sites *)
  let changed = ref true in
  while !changed do
    changed := false;
    let add g =
      if defined g && not (Hashtbl.mem full g) then begin
        Hashtbl.replace full g ();
        changed := true
      end
    in
    Hashtbl.iter (fun name () -> if defined name then List.iter add (callees name))
      (Hashtbl.copy full);
    Hashtbl.iter
      (fun name () ->
        if defined name && not (Hashtbl.mem full name) then begin
          let ss = site_list name in
          let criticals =
            List.filter (fun st -> List.exists (Hashtbl.mem r) st.st_tgts) ss
          in
          List.iter
            (fun st ->
              if List.exists (fun b -> flows' st b) criticals then
                List.iter add st.st_tgts)
            ss
        end)
      r
  done;
  let slice = Hashtbl.create 16 in
  Hashtbl.iter (fun name () -> if defined name then Hashtbl.replace slice name ()) r;
  Hashtbl.iter (fun name () -> Hashtbl.replace slice name ()) full;
  (* per-function modification summaries for the widened transfer: a
     direct write to a global is tracked by name; any write through a
     dereference makes the function (and every transitive caller through
     the oracle graph) Mod_all. External calls contribute nothing — the
     engine's external transfer never mutates the state. *)
  let base_mods = Hashtbl.create 64 in
  let deref_writers = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name (f : Ir.func) ->
      let locals = Hashtbl.create 16 in
      List.iter (fun (n, _) -> Hashtbl.replace locals n ()) f.Ir.fn_params;
      List.iter (fun (n, _) -> Hashtbl.replace locals n ()) f.Ir.fn_locals;
      let gs = Hashtbl.create 4 in
      let deref = ref false in
      let write (lv : Ir.vref) =
        if lv.Ir.r_deref then deref := true
        else if not (Hashtbl.mem locals lv.Ir.r_base) then
          Hashtbl.replace gs lv.Ir.r_base ()
      in
      let rec stmts l = List.iter stmt l
      and stmt (s : Ir.stmt) =
        match s.Ir.s_desc with
        | Ir.Sassign (lv, _) -> write lv
        | Ir.Scall (lhs, _, _) -> Option.iter write lhs
        | Ir.Sif (_, a, b) ->
            stmts a;
            stmts b
        | Ir.Sloop lp ->
            stmts lp.Ir.l_cond_stmts;
            stmts lp.Ir.l_body;
            stmts lp.Ir.l_step
        | Ir.Sswitch (_, grps) -> List.iter (fun g -> stmts g.Ir.g_body) grps
        | Ir.Sbreak | Ir.Scontinue | Ir.Sreturn _ -> ()
      in
      stmts f.Ir.fn_body;
      if !deref then Hashtbl.replace deref_writers name ();
      Hashtbl.replace base_mods name gs)
    funcs;
  let mod_all = Hashtbl.copy deref_writers in
  let grew = ref true in
  while !grew do
    grew := false;
    Hashtbl.iter
      (fun name _ ->
        if
          (not (Hashtbl.mem mod_all name))
          && List.exists (Hashtbl.mem mod_all) (callees name)
        then begin
          Hashtbl.replace mod_all name ();
          grew := true
        end)
      funcs
  done;
  let p_mods = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name _ ->
      if Hashtbl.mem mod_all name then Hashtbl.replace p_mods name Mod_all
      else begin
        let gs = Hashtbl.create 8 in
        Hashtbl.iter
          (fun n () ->
            match Hashtbl.find_opt base_mods n with
            | Some b -> Hashtbl.iter (fun g () -> Hashtbl.replace gs g ()) b
            | None -> ())
          (reach_of [ name ] ~edges:callees);
        Hashtbl.replace p_mods name (Mod_globals gs)
      end)
    funcs;
  let record = Hashtbl.create 64 in
  (match Hashtbl.find_opt funcs seed with
  | Some f -> Ir.fold_func (fun () s -> Hashtbl.replace record s.Ir.s_id ()) () f
  | None -> ());
  let p_sites = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name _ ->
      List.iter
        (fun st ->
          if st.st_indirect then Hashtbl.replace p_sites (name, st.st_sid) st.st_tgts)
        (site_list name))
    funcs;
  let pl =
    {
      p_seed = seed;
      p_entry = entry;
      p_slice = slice;
      p_record = record;
      p_sites;
      p_mods;
      p_funcs_total = Hashtbl.length funcs;
    }
  in
  let m = Metrics.cur () in
  m.Metrics.demand_plans <- m.Metrics.demand_plans + 1;
  m.Metrics.demand_slice_funcs <- m.Metrics.demand_slice_funcs + slice_size pl;
  m.Metrics.demand_funcs_total <- m.Metrics.demand_funcs_total + pl.p_funcs_total;
  if Trace.on () then Trace.emit Trace.Slice ~name:seed ~stmts:(slice_size pl) ~t0 ();
  pl
