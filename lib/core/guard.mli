(** Per-analysis resource governor: wall-clock deadline, fixpoint fuel,
    and size ceilings, plus the cooperative-cancellation hook used by
    {!Pool} task timeouts.

    A {!t} is created per analysis (see {!Analysis.analyze}'s [?guard])
    and consulted by the engine at its existing fixed-point boundaries —
    the same places the {!Trace} layer opens spans: per loop-fixpoint
    iteration, per body pass of a (possibly recursive) invocation-graph
    node evaluation, and whenever the invocation graph grows under an
    indirect call. Checks are cheap enough to leave on unconditionally;
    an unlimited guard costs a few loads per site.

    When a budget is exhausted the engine does not die: {!Exhausted}
    unwinds to {!Analysis.analyze}, which reruns the program under the
    widened (context-insensitive, possible-only) semantics with a fresh
    deadline-only guard and marks the result degraded. {!Cancelled} is
    different — it means the driver gave up on this task (pool timeout),
    so it propagates without any degradation attempt. *)

(** What an analysis is allowed to spend. [None] fields are unlimited. *)
type budget = {
  b_deadline_ms : float option;
      (** wall-clock allowance for the whole analysis, milliseconds,
          measured on the monotonic clock ({!Mono}) so a system clock
          step can neither trip nor extend the deadline *)
  b_fuel : int option;
      (** max iterations of any single fixpoint loop: one statement
          loop's iterate count, or one IG node's body passes *)
  b_max_locs : int option;
      (** size ceiling, applied to both a function output's points-to
          pair count and the total invocation-graph node count *)
  b_max_heap_mb : int option;
      (** memory ceiling, megabytes of major-heap size: sampled with
          {!Gc.quick_stat} at the {!check} boundaries (every few dozen
          calls), with a {!Gc.alarm} backstop flagging a blown ceiling
          at the end of each major collection. Tripping degrades the
          analysis exactly like the other budgets — exit code 3, not an
          OOM kill (docs/ROBUSTNESS.md) *)
}

val no_budget : budget
val is_no_budget : budget -> bool

type reason = Deadline | Fuel | Size | Nodes | Heap

val reason_name : reason -> string
(** ["deadline"], ["fuel"], ["set-size"], ["ig-nodes"], ["heap"]. *)

(** Structured diagnostics carried by {!Exhausted} and surfaced on
    degraded {!Analysis.result}s. *)
type trip = {
  t_reason : reason;
  t_where : string option;  (** innermost function under evaluation *)
  t_after_ms : float;  (** elapsed wall-clock when the budget blew *)
}

exception Exhausted of trip
(** A budget ran out. Recoverable: {!Analysis.analyze} catches it and
    degrades. *)

exception Cancelled
(** The driver cancelled this task (pool timeout). Not recoverable by
    degradation — propagates to the pool, which reports it as the
    task's error. *)

type t

val make : budget -> t
(** Start the clock now. Honors the {!Fault.Expired_deadline} injection
    (the deadline starts already in the past). *)

val unlimited : unit -> t
val of_budget : budget option -> t

val widened : t -> t
(** The guard for the degradation rerun: the same deadline allowance
    measured afresh, no fuel or size ceilings (the widened mode has no
    exponential context machinery for them to bound). Deliberately
    ignores {!Fault.Expired_deadline} so the injected "arrived out of
    budget" fault still gets an answer from the fallback. *)

val budget : t -> budget

val limited : t -> bool
(** [false] iff the guard carries {!no_budget} (cancellation still
    works on unlimited guards). *)

val at : t -> string -> unit
(** Record the function currently under evaluation, for {!trip}
    diagnostics. *)

val elapsed_ms : t -> float

val check : t -> unit
(** Poll cancellation and the deadline. Raises {!Cancelled} or
    {!Exhausted}. Called at every fixpoint boundary, budgeted or not. *)

val check_fuel : t -> int -> unit
(** [check_fuel g spent] — iterations spent on the current fixpoint
    loop. Raises {!Exhausted} with {!Fuel} when over budget. *)

val check_size : t -> int -> unit
(** Points-to pair count of a just-computed function output against
    [b_max_locs]. *)

val check_nodes : t -> int -> unit
(** Invocation-graph node count against [b_max_locs]. *)

val dispose : t -> unit
(** Remove the guard's {!Gc.alarm} backstop, if any. Call when a
    heap-budgeted guard's analysis ends (normally or by unwinding); a
    no-op for guards without [b_max_heap_mb]. {!Analysis.analyze} does
    this — only callers constructing heap-budgeted guards directly need
    to care. *)

(** {1 Cooperative cancellation}

    {!Pool} installs the running task's cancel flag in domain-local
    storage before the task starts and clears it after; {!check} polls
    it on every call. Other domains (the pool's watchdog) flip the
    atomic to request cancellation. *)

val set_task_cancel : bool Atomic.t option -> unit
val cancel_requested : unit -> bool

val pp_budget : Format.formatter -> budget -> unit
val pp_trip : Format.formatter -> trip -> unit
