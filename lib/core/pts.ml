(** Points-to sets: finite maps from (source, target) location pairs to a
    certainty — definite or possible (paper Definitions 3.1/3.2).

    The representation is source-indexed ([source -> target -> cert]) and
    carries two derived structures:

    - a reverse index [target -> sources], built lazily on the first
      target-directed query ({!remove_tgt}, {!sources}, {!all_locs}) and
      memoized, so the add-heavy phases (gen sets, call mapping) never
      pay for it;
    - the pair count, maintained incrementally, so cardinality is O(1)
      and serves as a pre-check for {!equal} and {!covered_by}.

    The lattice ordering used for the interprocedural fixed point
    (Figure 4's [isSubsetOf] and [Merge]) is: [s1] is covered by [s2]
    iff every pair of [s1] occurs in [s2] (with any certainty) and every
    definite pair of [s2] occurs definitely in [s1]. [merge] is the
    least upper bound: union of the pairs, definite only when definite
    on both sides. [merge] first runs a subsumption pre-check so the
    steady state of a fixed point returns its operand physically
    unchanged — the loop and recursion fixed points in {!Engine} and the
    memo lookups in {!Map_unmap} then terminate on O(1) pointer
    checks. *)

type cert = D | P

let cert_and a b = match (a, b) with D, D -> D | _ -> P

let cert_to_string = function D -> "D" | P -> "P"

module LM = Loc.Map

type t = {
  fwd : cert LM.t LM.t;  (** source -> target -> certainty *)
  rev : Loc.Set.t LM.t Lazy.t;  (** target -> sources, forced on demand *)
  card : int;  (** number of pairs *)
}

(* Invariants: submaps of [fwd] and sets of [rev] are never empty;
   forcing [rev] yields exactly the transpose of [fwd]'s pair set;
   [card] is the number of pairs. Keys are not interned here — the
   producers ({!Lval}, {!Tenv}, {!Map_unmap}) build locations through
   the interning smart constructors, so the [Loc.compare] fast path
   fires throughout without paying a hash lookup per insertion. *)

let empty : t = { fwd = LM.empty; rev = lazy LM.empty; card = 0 }

let is_empty (s : t) = s.card = 0

let cert_eq (a : cert) b = a == b

let rev_add src tgt rev =
  LM.update tgt
    (function
      | None -> Some (Loc.Set.singleton src)
      | Some ss -> Some (Loc.Set.add src ss))
    rev

let transpose (fwd : cert LM.t LM.t) : Loc.Set.t LM.t =
  LM.fold
    (fun src m rev -> LM.fold (fun tgt _ rev -> rev_add src tgt rev) m rev)
    fwd LM.empty

let rev (s : t) = Lazy.force s.rev

(** Pack a forward map whose pair count is [card]; the reverse index is
    recomputed on first use. *)
let mk fwd card = { fwd; rev = lazy (transpose fwd); card }

(** Add a pair, overriding any existing certainty (used for gen sets:
    the newly generated relationship replaces the old one). *)
let add src tgt cert (s : t) : t =
  match LM.find_opt src s.fwd with
  | None -> mk (LM.add src (LM.singleton tgt cert) s.fwd) (s.card + 1)
  | Some m ->
      let m' = LM.add tgt cert m in
      if m' == m then s (* already bound to the same certainty *)
      else if LM.mem tgt m then
        (* certainty change only: the pair set, hence [rev], is unchanged *)
        { s with fwd = LM.add src m' s.fwd }
      else mk (LM.add src m' s.fwd) (s.card + 1)

(** Add a pair, weakening: if present as definite and added as possible
    (or vice versa), the result is possible. Used when accumulating
    independent facts. *)
let add_weak src tgt cert (s : t) : t =
  match LM.find_opt src s.fwd with
  | None -> mk (LM.add src (LM.singleton tgt cert) s.fwd) (s.card + 1)
  | Some m -> (
      match LM.find_opt tgt m with
      | None -> mk (LM.add src (LM.add tgt cert m) s.fwd) (s.card + 1)
      | Some c0 ->
          let c' = cert_and c0 cert in
          if cert_eq c' c0 then s
          else { s with fwd = LM.add src (LM.add tgt c' m) s.fwd })

let find src tgt (s : t) : cert option =
  match LM.find_opt src s.fwd with None -> None | Some m -> LM.find_opt tgt m

let mem src tgt s = Option.is_some (find src tgt s)

(** All targets of [src], with certainties. *)
let targets src (s : t) : (Loc.t * cert) list =
  match LM.find_opt src s.fwd with
  | None -> []
  | Some m -> LM.fold (fun tgt c acc -> (tgt, c) :: acc) m []

(** The target map of [src] (empty when it has no relationships). The
    returned map is the set's own submap, shared, not a copy. *)
let tgt_map src (s : t) : cert LM.t =
  match LM.find_opt src s.fwd with None -> LM.empty | Some m -> m

(** [add_map src m s]: bind every pair [(src, tgt, c)] of [m] in [s] with
    override semantics, sharing [m] itself when [src] is unbound — the
    bulk counterpart of repeated {!add}, used by {!Map_unmap} when a
    whole cell translates identically. *)
let add_map src m (s : t) : t =
  if LM.is_empty m then s
  else
    match LM.find_opt src s.fwd with
    | None -> mk (LM.add src m s.fwd) (s.card + LM.cardinal m)
    | Some m0 ->
        let m' = LM.fold LM.add m m0 in
        if m' == m0 then s
        else
          let added = LM.cardinal m' - LM.cardinal m0 in
          if added = 0 then { s with fwd = LM.add src m' s.fwd }
          else mk (LM.add src m' s.fwd) (s.card + added)

(** All sources pointing at [tgt] (the reverse index). *)
let sources tgt (s : t) : Loc.Set.t =
  match LM.find_opt tgt (rev s) with None -> Loc.Set.empty | Some ss -> ss

(** Remove every relationship whose source is [src]. *)
let kill_src src (s : t) : t =
  match LM.find_opt src s.fwd with
  | None -> s
  | Some m -> mk (LM.remove src s.fwd) (s.card - LM.cardinal m)

(** Demote every relationship of [src] from definite to possible. *)
let weaken_src src (s : t) : t =
  match LM.find_opt src s.fwd with
  | None -> s
  | Some m ->
      if LM.for_all (fun _ c -> c == P) m then s
      else { s with fwd = LM.add src (LM.map (fun _ -> P) m) s.fwd }

(** Remove every relationship whose target is [tgt] (reverse-index
    directed: touches only the sources actually pointing at [tgt]). *)
let remove_tgt tgt (s : t) : t =
  match LM.find_opt tgt (rev s) with
  | None -> s
  | Some srcs ->
      let fwd, removed =
        Loc.Set.fold
          (fun src (fwd, k) ->
            match LM.find_opt src fwd with
            | None -> (fwd, k)
            | Some m ->
                let m' = LM.remove tgt m in
                ((if LM.is_empty m' then LM.remove src fwd else LM.add src m' fwd), k + 1))
          srcs (s.fwd, 0)
      in
      (* [s.rev] is already forced; removing the one key keeps it exact *)
      { fwd; rev = lazy (LM.remove tgt (rev s)); card = s.card - removed }

let fold f (s : t) acc =
  LM.fold (fun src m acc -> LM.fold (fun tgt c acc -> f src tgt c acc) m acc) s.fwd acc

let iter f (s : t) = LM.iter (fun src m -> LM.iter (fun tgt c -> f src tgt c) m) s.fwd

let iter_srcs f (s : t) = LM.iter f s.fwd

let exists f (s : t) =
  LM.exists (fun src m -> LM.exists (fun tgt c -> f src tgt c) m) s.fwd

(* Filters start from [s] and remove only the dropped pairs, so the
   untouched submaps stay physically shared with the input (and a filter
   that drops nothing returns [s] itself). *)

let filter f (s : t) : t =
  let fwd, card =
    LM.fold
      (fun src m (fwd, card) ->
        let m' = LM.filter (fun tgt c -> f src tgt c) m in
        if m' == m then (fwd, card)
        else
          ( (if LM.is_empty m' then LM.remove src fwd else LM.add src m' fwd),
            card - (LM.cardinal m - LM.cardinal m') ))
      s.fwd (s.fwd, s.card)
  in
  if fwd == s.fwd then s else mk fwd card

(** Keep only the relationships whose source satisfies [f] (evaluated
    once per source, not per pair; retained submaps stay physically
    shared with the input). *)
let filter_src f (s : t) : t =
  let fwd, card =
    LM.fold
      (fun src m (fwd, card) ->
        if f src then (fwd, card) else (LM.remove src fwd, card - LM.cardinal m))
      s.fwd (s.fwd, s.card)
  in
  if fwd == s.fwd then s else mk fwd card

let cardinal (s : t) = s.card

(** Cheap structural fingerprint: equal sets fingerprint equally, and
    the bounded traversal of [Hashtbl.hash] keeps it O(1) even on large
    sets. Used to bucket set-interning tables — cardinality alone
    chains every same-sized set into one bucket. *)
let fingerprint (s : t) = Hashtbl.hash (s.card, s.fwd)

let to_list (s : t) = List.rev (fold (fun a b c acc -> (a, b, c) :: acc) s [])

let of_list l = List.fold_left (fun s (a, b, c) -> add_weak a b c s) empty l

let equal (a : t) (b : t) =
  let m = Metrics.cur () in
  m.Metrics.equal_checks <- m.Metrics.equal_checks + 1;
  if a == b then begin
    m.Metrics.equal_fast <- m.Metrics.equal_fast + 1;
    true
  end
  else if a.card <> b.card then begin
    m.Metrics.equal_fast <- m.Metrics.equal_fast + 1;
    false
  end
  else LM.equal (fun ma mb -> ma == mb || LM.equal cert_eq ma mb) a.fwd b.fwd

(** [subsumes a b]: would [merge a b] return exactly [a]? Holds when
    every pair of [b] is in [a] with a certainty unchanged by the merge
    (i.e. [cert_and ca cb = ca]), and every pair of [a] absent from [b]
    is already possible (one-sided pairs demote to possible). Early
    exits make the common fixed-point steady state O(pairs) without
    allocation. *)
let subsumes (a : t) (b : t) : bool =
  b.card <= a.card
  && (not
        (LM.exists
           (fun src mb ->
             match LM.find_opt src a.fwd with
             | None -> true
             | Some ma ->
                 ma != mb
                 && LM.exists
                      (fun tgt cb ->
                        match LM.find_opt tgt ma with
                        | None -> true
                        | Some ca -> not (cert_eq (cert_and ca cb) ca))
                      mb)
           b.fwd))
  && not
       (LM.exists
          (fun src ma ->
            match LM.find_opt src b.fwd with
            | Some mb when mb == ma -> false
            | mbo ->
                LM.exists
                  (fun tgt ca ->
                    ca == D
                    && (match mbo with None -> true | Some mb -> not (LM.mem tgt mb)))
                  ma)
          a.fwd)

let all_possible m = LM.for_all (fun _ c -> c == P) m

(** Least upper bound: union of pairs; a pair is definite only when
    definite in both operands (a definite pair present on only one side
    becomes possible, since the other side's execution paths do not
    establish it). *)
let merge (a : t) (b : t) : t =
  let mt = Metrics.cur () in
  mt.Metrics.merges <- mt.Metrics.merges + 1;
  if a == b then begin
    mt.Metrics.merge_fast <- mt.Metrics.merge_fast + 1;
    a
  end
  else if subsumes a b then begin
    mt.Metrics.merge_fast <- mt.Metrics.merge_fast + 1;
    a
  end
  else if subsumes b a then begin
    mt.Metrics.merge_fast <- mt.Metrics.merge_fast + 1;
    b
  end
  else begin
    let count = ref 0 in
    let fwd =
      LM.merge
        (fun _src ma mb ->
          match (ma, mb) with
          | None, None -> None
          | Some m, None | None, Some m ->
              count := !count + LM.cardinal m;
              Some (if all_possible m then m else LM.map (fun _ -> P) m)
          | Some ma, Some mb ->
              if ma == mb then begin
                count := !count + LM.cardinal ma;
                Some ma
              end
              else
                Some
                  (LM.merge
                     (fun _tgt ca cb ->
                       match (ca, cb) with
                       | None, None -> None
                       | Some _, None | None, Some _ ->
                           incr count;
                           Some P
                       | Some ca, Some cb ->
                           incr count;
                           Some (cert_and ca cb))
                     ma mb))
        a.fwd b.fwd
    in
    mk fwd !count
  end

(** [covered_by s1 s2]: is [s2] a safe generalization of [s1]?
    Requires (1) every pair of [s1] to be present in [s2], and (2) every
    definite pair of [s2] to be definite in [s1]. *)
let covered_by (s1 : t) (s2 : t) : bool =
  let m = Metrics.cur () in
  m.Metrics.covered_checks <- m.Metrics.covered_checks + 1;
  if s1 == s2 then begin
    m.Metrics.covered_fast <- m.Metrics.covered_fast + 1;
    true
  end
  else if s1.card > s2.card then begin
    m.Metrics.covered_fast <- m.Metrics.covered_fast + 1;
    false
  end
  else
    (not
       (LM.exists
          (fun src m1 ->
            match LM.find_opt src s2.fwd with
            | None -> true
            | Some m2 -> m1 != m2 && LM.exists (fun tgt _ -> not (LM.mem tgt m2)) m1)
          s1.fwd))
    && not
         (LM.exists
            (fun src m2 ->
              match LM.find_opt src s1.fwd with
              | Some m1 when m1 == m2 -> false
              | m1o ->
                  LM.exists
                    (fun tgt c ->
                      c == D
                      &&
                      match m1o with
                      | None -> true
                      | Some m1 -> LM.find_opt tgt m1 <> Some D)
                    m2)
            s2.fwd)

(** Canonical structural digest, consistent with {!equal}: equal sets
    hash equal (on any domain). Folding [fwd] visits pairs in
    [Loc.compare] order, which is canonical for the value, and
    {!Loc.hash} is structural, so neither interning nor construction
    order can split equal sets. Used by the {!Engine} sub-tree-sharing
    memo to index stored (IN, OUT) entries in O(1) expected instead of a
    linear [equal] scan. *)
let hash (s : t) : int =
  let comb h x = (h * 1000003) lxor x in
  LM.fold
    (fun src m acc ->
      LM.fold
        (fun tgt c acc ->
          comb (comb acc (Loc.hash tgt)) (match c with D -> 17 | P -> 19))
        m
        (comb acc (Loc.hash src)))
    s.fwd (comb 0 s.card)
  land max_int

(** Force (and memoize) the reverse index now. Call before sharing a
    set across domains for read-only parallel querying: two domains
    racing to force the same lazy suspension is a runtime error in
    OCaml 5, and a primed set has no suspension left to race on. *)
let prime (s : t) : unit = ignore (Lazy.force s.rev)

(** Union where pairs of [over] override pairs of [base] (Figure 1's
    [(changed_input - kill_set) ∪ gen_set]). *)
let union_override (base : t) (over : t) : t =
  fold (fun src tgt c acc -> add src tgt c acc) over base

(** Every location mentioned (as source or target) — assembled from the
    two index levels, without folding over pairs. *)
let all_locs (s : t) : Loc.Set.t =
  LM.fold
    (fun src _ acc -> Loc.Set.add src acc)
    s.fwd
    (LM.fold (fun tgt _ acc -> Loc.Set.add tgt acc) (rev s) Loc.Set.empty)

let pp ppf (s : t) =
  let pairs = to_list s in
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, b, c) ->
         Fmt.pf ppf "(%a,%a,%s)" Loc.pp a Loc.pp b (cert_to_string c)))
    pairs

let to_string s = Fmt.str "%a" pp s

(* ------------------------------------------------------------------ *)
(* Analysis states: Bottom or a reached set                           *)
(* ------------------------------------------------------------------ *)

(** [None] is Figure 4's Bottom: unreachable / not yet computed. It is
    the identity of [merge_state] — merging with Bottom must not demote
    definite pairs. *)
type state = t option

let bot : state = None

let merge_state (a : state) (b : state) : state =
  match (a, b) with
  | None, s | s, None -> s
  | Some a, Some b -> Some (merge a b)

let state_equal (a : state) (b : state) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> equal a b
  | None, Some _ | Some _, None -> false

let state_covered_by (a : state) (b : state) =
  match (a, b) with
  | None, _ -> true
  | Some _, None -> false
  | Some a, Some b -> covered_by a b

let pp_state ppf = function
  | None -> Fmt.string ppf "<bottom>"
  | Some s -> pp ppf s
