(** The analysis engine: compositional intraprocedural rules (paper
    Figure 1) and the context-sensitive interprocedural strategy over the
    invocation graph (Figures 4 and 5).

    Control flow is handled with a four-way flow state — the normal
    continuation plus the pending break / continue / return states — so
    the structured rules for [if], the unified loop form, [switch] with
    fall-through, [break], [continue] and [return] are all compositional
    (the "complete set of compositional rules" of [Emami 93]).

    Strong updates follow the refinement discussed in DESIGN.md: a
    definite L-location whose abstract location is {e singular}
    (represents exactly one real location) kills its old relationships;
    non-singular locations (array tails, the heap, summarized symbolic
    names) receive weak updates, and relationships generated from them
    are demoted to possible. *)

module Ir = Simple_ir.Ir
module Ig = Invocation_graph
open Cfront

(** One memoized (input, output) pair of a function, together with the
    per-statement points-to contributions its (transitively nested)
    evaluation made — everything a later run needs to {e replay} the
    invocation without re-processing the body. Frames are keyed by
    statement id and hold the merged contribution of the evaluation to
    that statement's row. *)
type summary_entry = {
  se_in : Pts.t;
  se_out : Pts.t;
  se_frame : (int, Pts.t) Hashtbl.t;
}

(** Per-function summaries, indexed like {!ctx.share_memo}: function
    name, then {!Pts.hash} of the input. *)
type summaries = (string, (int, summary_entry list) Hashtbl.t) Hashtbl.t

let summaries_create () : summaries = Hashtbl.create 16

type ctx = {
  tenv : Tenv.t;
  opts : Options.t;
  guard : Guard.t;
      (** resource governor, polled at the fixed-point boundaries below;
          an unlimited guard still polls task cancellation *)
  stmt_pts : (int, Pts.t) Hashtbl.t;
      (** merged points-to set valid at each statement, over all contexts *)
  mutable warnings : string list;
  warn_seen : (string, unit) Hashtbl.t;
      (** messages already emitted (duplicate suppression in O(1)) *)
  (* context-insensitive ablation: one IN/OUT slot per function *)
  ci_slots : (string, Pts.t option * Pts.state) Hashtbl.t;
  ci_in_flight : (string, unit) Hashtbl.t;
  ci_done : (string, unit) Hashtbl.t;
      (** functions whose body has already been processed during the
          current driver pass with their current slot input; the driver
          resets this at each pass boundary. A repeat call whose merged
          input did not grow reuses the slot output instead of
          re-walking the body — the final (no-change) pass processes
          each reachable function exactly once, so the fixpoint and the
          recorded [stmt_pts] are identical to the unmemoized walk *)
  mutable ci_changed : bool;
  (* §6 sub-tree sharing: per-function memo of completed (input, output)
     pairs, shared across invocation-graph nodes. Two-level index:
     function name, then {!Pts.hash} of the input, so a lookup costs one
     digest plus O(1) expected instead of a [Pts.equal] scan over every
     stored context. *)
  share_memo : (string, (int, (Pts.t * Pts.t) list) Hashtbl.t) Hashtbl.t;
  mutable share_hits : int;
  mutable bodies_analyzed : int;
      (** number of times any function body was (re)processed *)
  (* incremental re-analysis (docs/INCREMENTAL.md) *)
  record_summaries : bool;
      (** record a {!summary_entry} per evaluated (function, input) pair
          so {!Persist} can write the v3 summary section *)
  summaries : summaries;  (** entries recorded (or replayed) this run *)
  seeded : summaries;
      (** entries loaded from a previous run's persisted summaries for
          functions whose code (and whole direct-call closure) is
          unchanged; consulted on a share-memo miss *)
  mutable frame_stack : (int, Pts.t) Hashtbl.t list;
      (** open frames of the in-flight evaluations, innermost first;
          every statement contribution is merged into each of them *)
  demand : Demand.plan option;
      (** demand mode (docs/DEMAND.md): when set, calls to defined
          functions outside the plan's slice are answered without
          evaluation (seeded-summary replay when available, the widened
          transfer otherwise), only the seed function's statement rows
          are recorded, and every evaluated indirect site re-checks the
          plan's oracle — a target it did not predict raises
          {!Demand.Oracle_miss} *)
}

let make_ctx ?guard ?(record_summaries = false) ?seeded ?demand (tenv : Tenv.t) : ctx =
  {
    tenv;
    opts = tenv.Tenv.opts;
    guard = (match guard with Some g -> g | None -> Guard.unlimited ());
    stmt_pts = Hashtbl.create 256;
    warnings = [];
    warn_seen = Hashtbl.create 16;
    ci_slots = Hashtbl.create 16;
    ci_in_flight = Hashtbl.create 16;
    ci_done = Hashtbl.create 16;
    ci_changed = false;
    share_memo = Hashtbl.create 16;
    share_hits = 0;
    bodies_analyzed = 0;
    record_summaries;
    summaries = summaries_create ();
    seeded = (match seeded with Some s -> s | None -> summaries_create ());
    frame_stack = [];
    demand;
  }

let warn ctx fmt =
  Fmt.kstr
    (fun m ->
      if not (Hashtbl.mem ctx.warn_seen m) then begin
        Hashtbl.replace ctx.warn_seen m ();
        ctx.warnings <- m :: ctx.warnings
      end)
    fmt

(** Flow state through structured statements. Each component is a
    {!Pts.state} ([None] = Figure 4's Bottom / unreachable). *)
type flow = {
  normal : Pts.state;
  brk : Pts.state;
  cont : Pts.state;
  ret : Pts.state;
}

let flow_of normal = { normal; brk = Pts.bot; cont = Pts.bot; ret = Pts.bot }

let merge_flow a b =
  {
    normal = Pts.merge_state a.normal b.normal;
    brk = Pts.merge_state a.brk b.brk;
    cont = Pts.merge_state a.cont b.cont;
    ret = Pts.merge_state a.ret b.ret;
  }

let merge_into_tbl (tbl : (int, Pts.t) Hashtbl.t) sid (s : Pts.t) =
  match Hashtbl.find_opt tbl sid with
  | None -> Hashtbl.replace tbl sid s
  | Some old -> Hashtbl.replace tbl sid (Pts.merge old s)

let record_stmt ctx (s : Ir.stmt) (input : Pts.t) =
  if
    ctx.opts.Options.record_stats
    && (match ctx.demand with Some p -> Demand.records p s.Ir.s_id | None -> true)
  then begin
    merge_into_tbl ctx.stmt_pts s.Ir.s_id input;
    if ctx.record_summaries then
      List.iter (fun fr -> merge_into_tbl fr s.Ir.s_id input) ctx.frame_stack
  end

(* ------------------------------------------------------------------ *)
(* Summary recording and replay                                       *)
(* ------------------------------------------------------------------ *)

let summaries_find (tbl : summaries) fname (input : Pts.t) : summary_entry option =
  match Hashtbl.find_opt tbl fname with
  | None -> None
  | Some by_hash -> (
      match Hashtbl.find_opt by_hash (Pts.hash input) with
      | None -> None
      | Some entries ->
          List.find_opt (fun e -> Pts.equal e.se_in input) entries)

let summaries_add (tbl : summaries) fname (e : summary_entry) =
  let by_hash =
    match Hashtbl.find_opt tbl fname with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 16 in
        Hashtbl.replace tbl fname t;
        t
  in
  let h = Pts.hash e.se_in in
  let entries = Option.value ~default:[] (Hashtbl.find_opt by_hash h) in
  if not (List.exists (fun e' -> Pts.equal e'.se_in e.se_in) entries) then
    Hashtbl.replace by_hash h (e :: entries)

(** Fold a completed frame into every still-open frame, so a caller's
    record carries the transitive effects of its callees — including
    callees answered by the memo or by a replayed summary. *)
let propagate_frame ctx (frame : (int, Pts.t) Hashtbl.t) =
  if ctx.record_summaries && ctx.frame_stack <> [] then
    Hashtbl.iter
      (fun sid s -> List.iter (fun fr -> merge_into_tbl fr sid s) ctx.frame_stack)
      frame

(** Replay: merge a persisted frame's per-statement contributions into
    the live tables, exactly as the skipped evaluation would have. *)
let apply_frame ctx (frame : (int, Pts.t) Hashtbl.t) =
  if ctx.opts.Options.record_stats then
    Hashtbl.iter (fun sid s -> merge_into_tbl ctx.stmt_pts sid s) frame;
  propagate_frame ctx frame

(* ------------------------------------------------------------------ *)
(* Basic statement rule (Figure 1, process_basic_stmt)                *)
(* ------------------------------------------------------------------ *)

(** Apply the kill/change/gen rule for an assignment with the given L-
    and R-location sets. *)
let apply_assign (ctx : ctx) (s : Pts.t) (lhs : Lval.locset) (rhs : Lval.locset) : Pts.t =
  let use_definite = ctx.opts.Options.use_definite in
  let m = Metrics.cur () in
  m.Metrics.assigns <- m.Metrics.assigns + 1;
  (* kill: all relationships of definite, singular L-locations *)
  let s =
    Loc.Map.fold
      (fun l c acc ->
        if use_definite && c = Pts.D && Loc.singular l then begin
          m.Metrics.kills <- m.Metrics.kills + 1;
          Pts.kill_src l acc
        end
        else acc)
      lhs s
  in
  (* change: relationships of possible (or non-singular) L-locations
     weaken from definite to possible *)
  let s =
    Loc.Map.fold
      (fun l c acc ->
        if c = Pts.P || (not (Loc.singular l)) || not use_definite then begin
          m.Metrics.weakens <- m.Metrics.weakens + 1;
          Pts.weaken_src l acc
        end
        else acc)
      lhs s
  in
  (* gen: all combinations of L-locations and R-locations; definite only
     when both are definite and the target cell is singular *)
  Loc.Map.fold
    (fun l cl acc ->
      Loc.Map.fold
        (fun r cr acc ->
          let cert =
            if use_definite && Loc.singular l then Pts.cert_and cl cr else Pts.P
          in
          m.Metrics.gens <- m.Metrics.gens + 1;
          Pts.add l r cert acc)
        rhs acc)
    lhs s

(** Model of a call to a function outside the program: no effect on the
    reachable points-to relationships (library functions in the
    benchmark suite do not store pointers), except that a pointer result
    may point to the heap, to string storage, or into any argument's
    target (e.g. strchr). *)
let external_result_targets tenv fn (s : Pts.t) (args : Ir.operand list) : Lval.locset =
  let base = Lval.of_list [ (Loc.Heap, Pts.P); (Loc.Str, Pts.P) ] in
  List.fold_left
    (fun acc arg ->
      let ts = Lval.rvals_operand tenv fn s arg in
      Loc.Map.fold
        (fun l _ acc -> if Loc.is_null l then acc else Lval.add_loc l Pts.P acc)
        ts acc)
    base args

(** Result targets of a call to [fname] outside the program: the
    {!Libmodel} table when it covers the call (malloc family returns a
    fresh object, [strcpy]/[strchr] return (into) their argument, the
    safe no-op list returns nothing), the coarse model above otherwise.
    Both populations are counted ([ext_modeled] / [ext_unmodeled]). *)
let external_call_targets tenv fn (s : Pts.t) (fname : string) (args : Ir.operand list) :
    (Loc.t * Pts.cert) list =
  let m = Metrics.cur () in
  let modeled v =
    m.Metrics.ext_modeled <- m.Metrics.ext_modeled + 1;
    v
  in
  match Libmodel.find fname with
  | Some Libmodel.Pure -> modeled []
  | Some Libmodel.New_object -> modeled [ (Loc.Heap, Pts.P) ]
  | Some (Libmodel.Returns_arg k) when List.length args >= k ->
      let ts = Lval.rvals_operand tenv fn s (List.nth args (k - 1)) in
      modeled (Loc.Map.fold (fun l c acc -> (l, c) :: acc) ts [])
  | Some (Libmodel.Returns_arg _) | None ->
      m.Metrics.ext_unmodeled <- m.Metrics.ext_unmodeled + 1;
      Lval.to_list (external_result_targets tenv fn s args)

(** Is a call to [fname] (a {e defined} function) skipped under the
    demand plan? *)
let demand_skips ctx fname =
  match ctx.demand with
  | Some p -> not (Demand.in_slice p fname)
  | None -> false

(** The global variable a location is a cell of, when it is one: the
    root of its [Fld]/[Head]/[Tail] chain if that root is a global.
    [Sym] cells (caller invisibles) are reachable only through a
    dereference, so a callee cone free of dereferencing writes cannot
    touch them. *)
let rec loc_global_root = function
  | Loc.Var (n, Loc.Kglobal) -> Some n
  | Loc.Fld (l, _) | Loc.Head l | Loc.Tail l -> loc_global_root l
  | Loc.Var _ | Loc.Sym _ | Loc.Heap | Loc.Site _ | Loc.Null | Loc.Str | Loc.Fun _
  | Loc.Ret _ ->
      None

(* The widened transfer for a call skipped in demand mode with no
   seeded summary to replay: every cell the callee cone may modify (per
   the plan's {!Demand.func_mods} summary — everything it can see when
   the cone writes through a dereference, else just its
   directly-assigned globals) may be rewritten to point at anything
   visible, at the heap, or at string storage, and its definite
   relationships are demoted to possible. No new function-pointer
   targets are invented: inventing them could only send later indirect
   sites to targets the plan's oracle never predicted (a spurious
   {!Demand.Oracle_miss}), and by plan construction no skipped effect
   flows into the recorded rows, so the omission is invisible where the
   result is trusted (docs/DEMAND.md states the contract precisely). *)

(** One widened row over [locs] (plus heap and string storage, minus
    NULL and function targets — the widen never invents function-pointer
    targets), physically shared by every rewritten source: n sources
    with n-location rows cost O(n) memory and O(n log n) construction
    instead of O(n^2) repeated inserts. *)
let wide_row_of (locs : Loc.Set.t) : Pts.cert Loc.Map.t =
  Loc.Set.fold
    (fun l acc ->
      if Loc.is_null l then acc
      else match l with Loc.Fun _ -> acc | _ -> Loc.Map.add l Pts.P acc)
    locs
    (Loc.Map.add Loc.Heap Pts.P (Loc.Map.singleton Loc.Str Pts.P))

(** Rebind [src] to the shared wide row, keeping existing targets the
    row misses (NULL, functions) demoted to possible like everything
    else. *)
let widen_src wide_row src s =
  let row =
    Loc.Map.fold
      (fun t _ acc -> if Loc.Map.mem t acc then acc else Loc.Map.add t Pts.P acc)
      (Pts.tgt_map src s) wide_row
  in
  Pts.add_map src row (Pts.kill_src src s)

let demand_mods ctx fname =
  match ctx.demand with
  | Some plan -> Demand.func_mods plan fname
  | None -> Demand.Mod_all

(** Widened transfer over a {e mapped} callee input, for a skipped call
    that had to go through {!Map_unmap.map_call} anyway (a seeded
    summary may match, or a pointer-carrying struct flows through the
    call): every cell the callee cone may modify (per the plan's
    {!Demand.func_mods} summary) may be rewritten to point at anything
    visible, at the heap, or at string storage, and its definite
    relationships are demoted to possible. *)
let demand_widen ctx (callee_fn : Ir.func) (func_input : Pts.t) : Pts.t =
  let wide_row = lazy (wide_row_of (Pts.all_locs func_input)) in
  let out = ref func_input in
  (match demand_mods ctx callee_fn.Ir.fn_name with
  | Demand.Mod_all ->
      Pts.iter_srcs (fun src _ -> out := widen_src (Lazy.force wide_row) src !out)
        func_input
  | Demand.Mod_globals gs ->
      Pts.iter_srcs
        (fun src _ ->
          match loc_global_root src with
          | Some g when Hashtbl.mem gs g -> out := widen_src (Lazy.force wide_row) src !out
          | Some _ | None -> ())
        func_input);
  if Ctype.is_pointer (Ctype.decay callee_fn.Ir.fn_ret) then
    out := Pts.add_weak (Loc.ret callee_fn.Ir.fn_name) Loc.Null Pts.P
             (widen_src (Lazy.force wide_row) (Loc.ret callee_fn.Ir.fn_name) !out);
  !out

(* ------------------------------------------------------------------ *)
(* Statement processing                                               *)
(* ------------------------------------------------------------------ *)

let rec process_stmts ctx fn node (input : Pts.state) (stmts : Ir.stmt list) : flow =
  List.fold_left
    (fun fl stmt ->
      let step = process_stmt ctx fn node fl.normal stmt in
      {
        normal = step.normal;
        brk = Pts.merge_state fl.brk step.brk;
        cont = Pts.merge_state fl.cont step.cont;
        ret = Pts.merge_state fl.ret step.ret;
      })
    (flow_of input) stmts

and process_stmt ctx fn node (input : Pts.state) (stmt : Ir.stmt) : flow =
  match input with
  | None -> flow_of Pts.bot
  | Some s -> (
      record_stmt ctx stmt s;
      match stmt.Ir.s_desc with
      | Ir.Sassign (lref, rhs) ->
          if Tenv.is_pointer_assignment ctx.tenv fn lref then begin
            let lhs = Lval.lvals ctx.tenv fn s lref in
            let rvals =
              match rhs with
              | Ir.Rmalloc when ctx.opts.Options.heap_by_site ->
                  (* name the allocation by its site (DESIGN.md: the
                     refinement behind the companion heap analysis) *)
                  Lval.of_list [ (Loc.site stmt.Ir.s_id, Pts.P) ]
              | _ -> Lval.rvals_rhs ctx.tenv fn s rhs
            in
            flow_of (Some (apply_assign ctx s lhs rvals))
          end
          else flow_of (Some s)
      | Ir.Scall (lhs, callee, args) -> process_call_stmt ctx fn node s stmt lhs callee args
      | Ir.Sif (_, then_s, else_s) ->
          let ft = process_stmts ctx fn node (Some s) then_s in
          let fe = process_stmts ctx fn node (Some s) else_s in
          merge_flow ft fe
      | Ir.Sloop l -> process_loop ctx fn node s l
      | Ir.Sswitch (_, groups) -> process_switch ctx fn node s groups
      | Ir.Sbreak -> { normal = Pts.bot; brk = Some s; cont = Pts.bot; ret = Pts.bot }
      | Ir.Scontinue -> { normal = Pts.bot; brk = Pts.bot; cont = Some s; ret = Pts.bot }
      | Ir.Sreturn op ->
          let s =
            match op with
            | None -> s
            | Some op ->
                let ret_ty = fn.Ir.fn_ret in
                if Ctype.is_pointer (Ctype.decay ret_ty) then begin
                  let lhs = Lval.of_list [ (Loc.ret fn.Ir.fn_name, Pts.D) ] in
                  let rvals = Lval.rvals_operand ctx.tenv fn s op in
                  apply_assign ctx s lhs rvals
                end
                else if
                  Ctype.is_su ret_ty
                  && Ctype.carries_pointers (Tenv.layouts ctx.tenv) ret_ty
                then begin
                  (* aggregate return: copy each pointer cell of the value
                     into the matching cell of the return slot *)
                  match op with
                  | Ir.Oref r when Ir.is_plain_var r -> (
                      match Tenv.base_loc ctx.tenv fn r.Ir.r_base with
                      | Some src_base ->
                          let ret_cells =
                            Tenv.pointer_cells ctx.tenv (Loc.ret fn.Ir.fn_name) ret_ty
                          in
                          let src_cells = Tenv.pointer_cells ctx.tenv src_base ret_ty in
                          List.fold_left2
                            (fun s (rc, _) (sc, _) ->
                              let lhs = Lval.of_list [ (rc, Pts.D) ] in
                              let rvals = Lval.of_list (Pts.targets sc s) in
                              apply_assign ctx s lhs rvals)
                            s ret_cells src_cells
                      | None -> s)
                  | _ -> s
                end
                else s
          in
          { normal = Pts.bot; brk = Pts.bot; cont = Pts.bot; ret = Some s })

(** The unified loop rule: a fixed point on the loop-head state (the
    point where the condition is evaluated), following Figure 1's
    process_while generalized with condition-statements, a for-step, and
    break/continue (continue re-runs step and condition). *)
and process_loop ctx fn node (s : Pts.t) (l : Ir.loop) : flow =
  let process_list st stmts = process_stmts ctx fn node st stmts in
  match l.Ir.l_kind with
  | `While | `For ->
      (* head state: after evaluating the condition statements *)
      let first = process_list (Some s) l.Ir.l_cond_stmts in
      let rec iterate head ~brk ~ret ~n =
        Guard.check ctx.guard;
        Guard.check_fuel ctx.guard n;
        Metrics.((cur ()).loop_iters <- (cur ()).loop_iters + 1);
        let lt0 = Trace.start () in
        let body = process_list head l.Ir.l_body in
        let brk = Pts.merge_state brk body.brk in
        let ret = Pts.merge_state ret body.ret in
        let after_body = Pts.merge_state body.normal body.cont in
        let step = process_list after_body l.Ir.l_step in
        let back = process_list step.normal l.Ir.l_cond_stmts in
        let head' = Pts.merge_state head back.normal in
        if Trace.on () then Trace.emit Trace.Loop ~name:fn.Ir.fn_name ~t0:lt0 ();
        if Pts.state_equal head head' then (head, brk, ret)
        else iterate head' ~brk ~ret ~n:(n + 1)
      in
      let head, brk, ret = iterate first.normal ~brk:Pts.bot ~ret:Pts.bot ~n:1 in
      let exit = Pts.merge_state head brk in
      { normal = exit; brk = Pts.bot; cont = Pts.bot; ret }
  | `Do ->
      let rec iterate entry ~brk ~ret ~n =
        Guard.check ctx.guard;
        Guard.check_fuel ctx.guard n;
        Metrics.((cur ()).loop_iters <- (cur ()).loop_iters + 1);
        let lt0 = Trace.start () in
        let body = process_list entry l.Ir.l_body in
        let brk = Pts.merge_state brk body.brk in
        let ret = Pts.merge_state ret body.ret in
        let after_body = Pts.merge_state body.normal body.cont in
        let step = process_list after_body l.Ir.l_step in
        let after_cond = process_list step.normal l.Ir.l_cond_stmts in
        let entry' = Pts.merge_state entry after_cond.normal in
        if Trace.on () then Trace.emit Trace.Loop ~name:fn.Ir.fn_name ~t0:lt0 ();
        if Pts.state_equal entry entry' then (after_cond.normal, brk, ret)
        else iterate entry' ~brk ~ret ~n:(n + 1)
      in
      let after_cond, brk, ret = iterate (Some s) ~brk:Pts.bot ~ret:Pts.bot ~n:1 in
      let exit = Pts.merge_state after_cond brk in
      { normal = exit; brk = Pts.bot; cont = Pts.bot; ret }

(** Switch rule: every group is reachable from the scrutinee (via its
    labels) and from the previous group (fall-through); breaks join the
    exit; without a default group the input itself also reaches the
    exit. *)
and process_switch ctx fn node (s : Pts.t) (groups : Ir.switch_group list) : flow =
  let has_default = List.exists (fun g -> g.Ir.g_default) groups in
  let fall, acc =
    List.fold_left
      (fun (fall, acc) g ->
        let entry = Pts.merge_state (Some s) fall in
        let fl = process_stmts ctx fn node entry g.Ir.g_body in
        ( fl.normal,
          {
            normal = Pts.bot;
            brk = Pts.merge_state acc.brk fl.brk;
            cont = Pts.merge_state acc.cont fl.cont;
            ret = Pts.merge_state acc.ret fl.ret;
          } ))
      (Pts.bot, flow_of Pts.bot) groups
  in
  let exit = Pts.merge_state fall acc.brk in
  let exit = if has_default then exit else Pts.merge_state exit (Some s) in
  { normal = exit; brk = Pts.bot; cont = acc.cont; ret = acc.ret }

(* ------------------------------------------------------------------ *)
(* Calls (Figures 4 and 5)                                            *)
(* ------------------------------------------------------------------ *)

and actual_of_operand ctx fn (s : Pts.t) (pty : Ctype.t option) (op : Ir.operand) :
    Map_unmap.actual =
  match op with
  | Ir.Oref r when Ir.is_plain_var r -> (
      let is_agg =
        match Tenv.var_info ctx.tenv fn r.Ir.r_base with
        | Some (_, ty) -> Ctype.is_su ty
        | None -> false
      in
      if is_agg then
        match Tenv.base_loc ctx.tenv fn r.Ir.r_base with
        | Some l -> Map_unmap.Aagg l
        | None -> Map_unmap.Aother
      else
        match pty with
        | Some pty when Ctype.is_pointer (Ctype.decay pty) ->
            Map_unmap.Aptr (Lval.rvals_operand ctx.tenv fn s op)
        | Some _ -> Map_unmap.Aother
        | None ->
            (* unknown parameter type (variadic or unprototyped): pass
               pointer info if the operand is pointer-typed *)
            let opty = Tenv.vref_type ctx.tenv fn r in
            if (match opty with Some t -> Ctype.is_pointer (Ctype.decay t) | None -> false)
            then Map_unmap.Aptr (Lval.rvals_operand ctx.tenv fn s op)
            else Map_unmap.Aother)
  | Ir.Oref _ -> Map_unmap.Aptr (Lval.rvals_operand ctx.tenv fn s op)
  | Ir.Onull | Ir.Oconst _ -> Map_unmap.Aother
  | Ir.Ostr -> Map_unmap.Aptr (Lval.of_list [ (Loc.Str, Pts.P) ])

(** Answer a call to a defined function outside the demand slice
    without evaluating it: map the input, replay a seeded summary when
    one matches the mapped input (exact), otherwise apply the widened
    transfer, and unmap — no invocation-graph child is created and no
    body is processed. By plan construction the imprecision cannot flow
    into the recorded (seed) rows. *)
and demand_skip ctx caller_fn (s : Pts.t) (callee_fn : Ir.func) (args : Ir.operand list) :
    Pts.state * (Loc.t * Pts.cert) list * ((Loc.t -> Loc.t) * (Loc.t * Pts.cert) list) list
    =
  let fname = callee_fn.Ir.fn_name in
  let m = Metrics.cur () in
  let su_ptr t =
    Ctype.is_su t && Ctype.carries_pointers (Tenv.layouts ctx.tenv) t
  in
  let fast =
    (not (Hashtbl.mem ctx.seeded fname))
    && (not (su_ptr callee_fn.Ir.fn_ret))
    && List.for_all (fun (_, t) -> not (su_ptr t)) callee_fn.Ir.fn_params
    && List.length args <= List.length callee_fn.Ir.fn_params
  in
  if fast then begin
    (* no seeded summary can match and no pointer-carrying struct flows
       through the call: widen the caller's state in place over the
       cells the callee can see — the same closure {!Map_unmap.map_call}
       would compute (globals plus everything reachable from the
       actuals) — and spare the map/unmap round trip that otherwise
       dominates the cost of a skip *)
    m.Metrics.demand_skipped <- m.Metrics.demand_skipped + 1;
    let visible () =
      let seen = ref Loc.Set.empty in
      let q = Queue.create () in
      let push l =
        if not (Loc.Set.mem l !seen) then begin
          seen := Loc.Set.add l !seen;
          Queue.push l q
        end
      in
      Pts.iter_srcs (fun src _ -> if loc_global_root src <> None then push src) s;
      List.iter
        (fun op ->
          Loc.Map.iter (fun l _ -> push l) (Lval.rvals_operand ctx.tenv caller_fn s op))
        args;
      while not (Queue.is_empty q) do
        Loc.Map.iter (fun t _ -> push t) (Pts.tgt_map (Queue.pop q) s)
      done;
      !seen
    in
    let row, out =
      match demand_mods ctx fname with
      | Demand.Mod_globals gs ->
          let row = lazy (wide_row_of (Pts.all_locs s)) in
          let out = ref s in
          Pts.iter_srcs
            (fun src _ ->
              match loc_global_root src with
              | Some g when Hashtbl.mem gs g -> out := widen_src (Lazy.force row) src !out
              | Some _ | None -> ())
            s;
          (row, !out)
      | Demand.Mod_all ->
          let vis = visible () in
          let row = lazy (wide_row_of vis) in
          let out = ref s in
          Pts.iter_srcs
            (fun src _ ->
              if Loc.Set.mem src vis then out := widen_src (Lazy.force row) src !out)
            s;
          (row, !out)
    in
    let ret_tgts =
      if Ctype.is_pointer (Ctype.decay callee_fn.Ir.fn_ret) then
        (Loc.Null, Pts.P)
        :: Loc.Map.fold (fun l c acc -> (l, c) :: acc) (Lazy.force row) []
      else []
    in
    (Some out, ret_tgts, [])
  end
  else begin
    let param_tys = List.map (fun (_, t) -> Some t) callee_fn.Ir.fn_params in
    let param_tys =
      if List.length args <= List.length param_tys then param_tys
      else param_tys @ List.init (List.length args - List.length param_tys) (fun _ -> None)
    in
    let actuals =
      List.map2 (fun pty op -> actual_of_operand ctx caller_fn s pty op) param_tys args
    in
    let func_input, info =
      Map_unmap.map_call ctx.tenv ~caller_fn ~callee:callee_fn ~input:s ~actuals
    in
    let out =
      match summaries_find ctx.seeded fname func_input with
      | Some e ->
          m.Metrics.demand_replays <- m.Metrics.demand_replays + 1;
          e.se_out
      | None ->
          m.Metrics.demand_skipped <- m.Metrics.demand_skipped + 1;
          demand_widen ctx callee_fn func_input
    in
    let result =
      Map_unmap.unmap_call ~callee:fname ~merged:true ctx.tenv ~input:s ~output:out
        ~info
    in
    let ret_tgts = Map_unmap.return_targets ~output:out ~info ~callee:fname in
    let ret_cells =
      if su_ptr callee_fn.Ir.fn_ret then
        Map_unmap.return_cell_targets ~output:out ~info ~callee:fname
      else []
    in
    (Some result, ret_tgts, ret_cells)
  end

and process_call_stmt ctx fn node (s : Pts.t) (stmt : Ir.stmt) lhs callee args : flow =
  match callee with
  | Ir.Cdirect fname -> (
      match Tenv.find_func ctx.tenv fname with
      | Some callee_fn when demand_skips ctx fname ->
          let out, ret_tgts, ret_cells = demand_skip ctx fn s callee_fn args in
          finish_call ctx fn node out ret_tgts ret_cells lhs
      | Some callee_fn ->
          let child =
            match Ig.child_at_for node stmt.Ir.s_id fname with
            | Some c -> c
            | None ->
                (* can happen in the context-insensitive ablation where
                   graph and analysis orders diverge; grow on demand *)
                let c = Ig.add_indirect_child ctx.tenv node stmt.Ir.s_id fname in
                Guard.check_nodes ctx.guard (Ig.node_count ());
                c
          in
          let out, ret_tgts, ret_cells = invoke ctx fn child s callee_fn args in
          finish_call ctx fn node out ret_tgts ret_cells lhs
      | None ->
          (* external function *)
          let ret_tgts = external_call_targets ctx.tenv fn s fname args in
          finish_call ctx fn node (Some s) ret_tgts [] lhs)
  | Ir.Cindirect fref ->
      (* Figure 5: the functions invocable here are exactly the functions
         the pointer can point to *)
      let fn_targets = Lval.rvals_ref ctx.tenv fn s fref in
      let fnames =
        Loc.Map.fold
          (fun l _ acc -> match l with Loc.Fun f -> f :: acc | _ -> acc)
          fn_targets []
        |> List.rev
      in
      (* Demand mode: the plan was built against an oracle's prediction of
         this site's targets. A defined target the oracle missed voids the
         slice — bail out so the caller falls back to exhaustive. *)
      (match ctx.demand with
      | Some plan ->
          List.iter
            (fun f ->
              if
                Tenv.is_defined_func ctx.tenv f
                && not (Demand.site_allows plan ~fn:fn.Ir.fn_name ~sid:stmt.Ir.s_id f)
              then
                raise
                  (Demand.Oracle_miss
                     (Printf.sprintf "s%d of %s resolves to %s" stmt.Ir.s_id
                        fn.Ir.fn_name f)))
            fnames
      | None -> ());
      if fnames = [] then begin
        warn ctx "indirect call at s%d has no function targets" stmt.Ir.s_id;
        finish_call ctx fn node (Some s) [] [] lhs
      end
      else begin
        let fptr_lvals = Lval.lvals ctx.tenv fn s fref in
        let results =
          List.map
            (fun fname ->
              match Tenv.find_func ctx.tenv fname with
              | None ->
                  (* external target *)
                  (Some s, external_call_targets ctx.tenv fn s fname args, [])
              | Some callee_fn when demand_skips ctx fname ->
                  demand_skip ctx fn s callee_fn args
              | Some callee_fn ->
                  let child = Ig.add_indirect_child ctx.tenv node stmt.Ir.s_id fname in
                  Guard.check_nodes ctx.guard (Ig.node_count ());
                  (* make the function pointer definitely point to fname
                     while analyzing it — a definite-information
                     refinement, so gated like the other uses of
                     definite relationships *)
                  let s' =
                    match Lval.to_list fptr_lvals with
                    | [ (l, Pts.D) ]
                      when ctx.opts.Options.use_definite && Loc.singular l ->
                        Pts.add l (Loc.func fname) Pts.D (Pts.kill_src l s)
                    | _ -> s
                  in
                  invoke ctx fn child s' callee_fn args)
            fnames
        in
        (* merge the outputs of all invocable functions *)
        let out =
          List.fold_left (fun acc (o, _, _) -> Pts.merge_state acc o) Pts.bot results
        in
        let ret_tgts = List.concat_map (fun (_, t, _) -> t) results in
        let ret_cells = List.concat_map (fun (_, _, c) -> c) results in
        finish_call ctx fn node out ret_tgts ret_cells lhs
      end

(** Bind the call's result into the caller state. *)
and finish_call ctx fn _node (out : Pts.state) (ret_tgts : (Loc.t * Pts.cert) list)
    (ret_cells : ((Loc.t -> Loc.t) * (Loc.t * Pts.cert) list) list) lhs : flow =
  match out with
  | None -> flow_of Pts.bot
  | Some s -> (
      match lhs with
      | None -> flow_of (Some s)
      | Some lref ->
          if Tenv.is_pointer_assignment ctx.tenv fn lref then begin
            let lhs_locs = Lval.lvals ctx.tenv fn s lref in
            let rvals =
              match ret_tgts with
              | [] -> Lval.of_list [ (Loc.Null, Pts.D) ]
              | _ -> Lval.of_list ret_tgts
            in
            flow_of (Some (apply_assign ctx s lhs_locs rvals))
          end
          else begin
            (* aggregate result: bind each returned cell onto the matching
               cell of the destination *)
            match Tenv.vref_type ctx.tenv fn lref with
            | Some ty
              when Ctype.is_su ty && Ctype.carries_pointers (Tenv.layouts ctx.tenv) ty ->
                let lhs_locs = Lval.to_list (Lval.lvals ctx.tenv fn s lref) in
                let s =
                  List.fold_left
                    (fun s (graft, tgts) ->
                      List.fold_left
                        (fun s (base, cb) ->
                          let cell = graft base in
                          let lhs = Lval.of_list [ (cell, cb) ] in
                          let rvals = Lval.of_list tgts in
                          apply_assign ctx s lhs rvals)
                        s lhs_locs)
                    s ret_cells
                in
                flow_of (Some s)
            | _ -> flow_of (Some s)
          end)

(** Invoke a defined function in the context of invocation-graph node
    [child] (Figure 4's process_call): map, evaluate or reuse, unmap.
    Returns the caller-side output state and return-value targets. *)
and invoke ctx caller_fn (child : Ig.node) (s : Pts.t) (callee_fn : Ir.func)
    (args : Ir.operand list) :
    Pts.state * (Loc.t * Pts.cert) list * ((Loc.t -> Loc.t) * (Loc.t * Pts.cert) list) list =
  let param_tys = List.map (fun (_, t) -> Some t) callee_fn.Ir.fn_params in
  let param_tys =
    if List.length args <= List.length param_tys then param_tys
    else param_tys @ List.init (List.length args - List.length param_tys) (fun _ -> None)
  in
  let actuals =
    List.map2 (fun pty op -> actual_of_operand ctx caller_fn s pty op) param_tys args
  in
  let func_input, info =
    Map_unmap.map_call ctx.tenv ~caller_fn ~callee:callee_fn ~input:s ~actuals
  in
  child.Ig.map_info <-
    Loc.Map.fold (fun k v acc -> (k, v) :: acc) info.Map_unmap.i_reps [];
  let output : Pts.state =
    if ctx.opts.Options.context_sensitive then eval_node ctx child callee_fn func_input
    else eval_ci ctx child callee_fn func_input
  in
  match output with
  | None -> (Pts.bot, [], [])
  | Some out ->
      let result =
        Map_unmap.unmap_call ~callee:callee_fn.Ir.fn_name
          ~merged:(not ctx.opts.Options.context_sensitive) ctx.tenv ~input:s
          ~output:out ~info
      in
      let ret_tgts = Map_unmap.return_targets ~output:out ~info ~callee:callee_fn.Ir.fn_name in
      let ret_cells =
        if
          Ctype.is_su callee_fn.Ir.fn_ret
          && Ctype.carries_pointers (Tenv.layouts ctx.tenv) callee_fn.Ir.fn_ret
        then
          Map_unmap.return_cell_targets ~output:out ~info ~callee:callee_fn.Ir.fn_name
        else []
      in
      (Some result, ret_tgts, ret_cells)

(** Evaluate (or reuse) the invocation represented by [node] with the
    given mapped input — the Ordinary/Approximate/Recursive rules of
    Figure 4, with one generalization: an Ordinary node that is
    discovered to be recursive {e during} its evaluation (a function
    pointer closed a cycle, §5) switches to the fixed-point loop. *)
and eval_node ctx (node : Ig.node) (callee_fn : Ir.func) (func_input : Pts.t) : Pts.state =
  match node.Ig.kind with
  | Ig.Approximate -> (
      let partner = match node.Ig.partner with Some p -> p | None -> assert false in
      match partner.Ig.stored_input with
      | Some si when Pts.covered_by func_input si -> partner.Ig.stored_output
      | _ ->
          partner.Ig.pending <- func_input :: partner.Ig.pending;
          Pts.bot)
  | Ig.Ordinary | Ig.Recursive -> (
      match (node.Ig.stored_input, node.Ig.in_flight) with
      | Some si, false when Pts.equal si func_input && Option.is_some node.Ig.stored_output
        ->
          node.Ig.stored_output
      | _ -> (
          (* §6 sub-tree sharing: another context of the same function may
             already have been analyzed with an identical input *)
          match shared_lookup ctx callee_fn.Ir.fn_name func_input with
          | Some out ->
              ctx.share_hits <- ctx.share_hits + 1;
              Metrics.((cur ()).memo_hits <- (cur ()).memo_hits + 1);
              node.Ig.stored_input <- Some func_input;
              node.Ig.stored_output <- Some out;
              (* the first occurrence already merged its contributions
                 into [stmt_pts] this run, but open frames still need the
                 transitive effects of this invocation *)
              (if ctx.record_summaries then
                 match summaries_find ctx.summaries callee_fn.Ir.fn_name func_input with
                 | Some e -> propagate_frame ctx e.se_frame
                 | None -> ());
              Some out
          | None -> (
          match seeded_replay ctx node callee_fn func_input with
          | Some _ as out -> out
          | None ->
              let tr0 = Trace.start () in
              node.Ig.stored_input <- Some func_input;
              node.Ig.stored_output <- Pts.bot;
              node.Ig.pending <- [];
              node.Ig.in_flight <- true;
              let frame =
                if ctx.record_summaries then begin
                  let fr = Hashtbl.create 16 in
                  ctx.frame_stack <- fr :: ctx.frame_stack;
                  Some fr
                end
                else None
              in
              Guard.at ctx.guard callee_fn.Ir.fn_name;
              let rec fixpoint ~first ~n =
                Guard.check ctx.guard;
                Guard.check_fuel ctx.guard n;
                Fault.maybe_slow_fixpoint ~fn:callee_fn.Ir.fn_name;
                if not first then Metrics.((cur ()).rec_iters <- (cur ()).rec_iters + 1);
                let cur_input =
                  match node.Ig.stored_input with Some s -> s | None -> func_input
                in
                ctx.bodies_analyzed <- ctx.bodies_analyzed + 1;
                Metrics.((cur ()).bodies <- (cur ()).bodies + 1);
                let tb0 = Trace.start () in
                let fl =
                  process_stmts ctx callee_fn node (Some cur_input) callee_fn.Ir.fn_body
                in
                let func_output = Pts.merge_state fl.normal fl.ret in
                (match func_output with
                | Some o -> Guard.check_size ctx.guard (Pts.cardinal o)
                | None -> ());
                if Trace.on () then
                  Trace.emit Trace.Body ~name:callee_fn.Ir.fn_name
                    ~ctx:(Pts.hash cur_input) ~pts_in:(Pts.cardinal cur_input)
                    ~pts_out:
                      (match func_output with Some o -> Pts.cardinal o | None -> -1)
                    ~t0:tb0 ();
                if node.Ig.pending <> [] then begin
                  let merged =
                    List.fold_left
                      (fun acc p -> Pts.merge_state acc (Some p))
                      node.Ig.stored_input node.Ig.pending
                  in
                  node.Ig.stored_input <- merged;
                  node.Ig.pending <- [];
                  node.Ig.stored_output <- Pts.bot;
                  fixpoint ~first:false ~n:(n + 1)
                end
                else if Pts.state_covered_by func_output node.Ig.stored_output then ()
                else begin
                  node.Ig.stored_output <-
                    Pts.merge_state node.Ig.stored_output func_output;
                  if node.Ig.kind = Ig.Recursive then fixpoint ~first:false ~n:(n + 1)
                end
              in
              fixpoint ~first:true ~n:1;
              node.Ig.in_flight <- false;
              node.Ig.stored_input <- Some func_input;
              (match node.Ig.stored_output with
              | Some out -> shared_record ctx callee_fn.Ir.fn_name func_input out
              | None -> ());
              (match frame with
              | Some fr ->
                  ctx.frame_stack <- List.tl ctx.frame_stack;
                  (match node.Ig.stored_output with
                  | Some out ->
                      summaries_add ctx.summaries callee_fn.Ir.fn_name
                        { se_in = func_input; se_out = out; se_frame = fr }
                  | None -> ());
                  propagate_frame ctx fr
              | None -> ());
              if Trace.on () then
                Trace.emit Trace.Node ~name:callee_fn.Ir.fn_name
                  ~ctx:(Pts.hash func_input) ~stmts:(Ir.count_stmts callee_fn)
                  ~pts_in:(Pts.cardinal func_input)
                  ~pts_out:
                    (match node.Ig.stored_output with
                    | Some o -> Pts.cardinal o
                    | None -> -1)
                  ~t0:tr0 ();
              node.Ig.stored_output)))

(** Serve one (function, input) evaluation from a persisted summary:
    replay its recorded frame into the live tables, adopt its output,
    and skip the body fixpoint entirely. Only functions whose whole
    direct-call closure is unchanged — and free of indirect call sites —
    are ever seeded (docs/INCREMENTAL.md), so the replay is
    bit-identical to what the skipped evaluation would have computed and
    creates no invocation-graph nodes, exactly like the skipped
    evaluation would not have under sub-tree sharing. *)
and seeded_replay ctx (node : Ig.node) (callee_fn : Ir.func) (func_input : Pts.t) :
    Pts.state =
  match summaries_find ctx.seeded callee_fn.Ir.fn_name func_input with
  | None -> None
  | Some e ->
      let tr0 = Trace.start () in
      apply_frame ctx e.se_frame;
      (* carry the entry forward so the re-saved summary file keeps it *)
      summaries_add ctx.summaries callee_fn.Ir.fn_name e;
      shared_record ctx callee_fn.Ir.fn_name func_input e.se_out;
      node.Ig.stored_input <- Some func_input;
      node.Ig.stored_output <- Some e.se_out;
      Metrics.((cur ()).incr_funcs_reused <- (cur ()).incr_funcs_reused + 1);
      if Trace.on () then
        Trace.emit Trace.Replay ~name:callee_fn.Ir.fn_name ~ctx:(Pts.hash func_input)
          ~pts_in:(Pts.cardinal func_input) ~pts_out:(Pts.cardinal e.se_out) ~t0:tr0 ();
      Some e.se_out

and shared_lookup ctx fname (input : Pts.t) : Pts.t option =
  if not ctx.opts.Options.share_contexts then None
  else begin
    Metrics.((cur ()).memo_lookups <- (cur ()).memo_lookups + 1);
    match Hashtbl.find_opt ctx.share_memo fname with
    | None -> None
    | Some by_hash -> (
        (* hash bucket first: [Pts.equal] runs only on digest collisions
           (in practice, on the one stored entry with this input) *)
        match Hashtbl.find_opt by_hash (Pts.hash input) with
        | None -> None
        | Some entries ->
            List.find_map
              (fun (i, o) -> if Pts.equal i input then Some o else None)
              entries)
  end

and shared_record ctx fname (input : Pts.t) (output : Pts.t) : unit =
  if ctx.opts.Options.share_contexts then begin
    let by_hash =
      match Hashtbl.find_opt ctx.share_memo fname with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 16 in
          Hashtbl.replace ctx.share_memo fname t;
          t
    in
    let h = Pts.hash input in
    let entries = Option.value ~default:[] (Hashtbl.find_opt by_hash h) in
    if not (List.exists (fun (i, _) -> Pts.equal i input) entries) then
      Hashtbl.replace by_hash h ((input, output) :: entries)
  end

(** Context-insensitive ablation: one merged IN/OUT pair per function;
    convergence is reached by the driver re-running the whole program
    until no slot changes. *)
and eval_ci ctx (node : Ig.node) (callee_fn : Ir.func) (func_input : Pts.t) : Pts.state =
  let name = callee_fn.Ir.fn_name in
  let slot_in, slot_out =
    match Hashtbl.find_opt ctx.ci_slots name with
    | Some (i, o) -> (i, o)
    | None -> (None, Pts.bot)
  in
  let new_in =
    match slot_in with None -> func_input | Some si -> Pts.merge si func_input
  in
  let input_grew = match slot_in with None -> true | Some si -> not (Pts.equal si new_in) in
  if input_grew then begin
    ctx.ci_changed <- true;
    Hashtbl.replace ctx.ci_slots name (Some new_in, slot_out)
  end;
  (* recursion guard per function: the driver's outer fixed point
     iterates until no slot changes, so using the stored output here is
     safe *)
  if Hashtbl.mem ctx.ci_in_flight name then slot_out
  else if Hashtbl.mem ctx.ci_done name && not input_grew then
    (* already processed this pass with this (or a larger) input: the
       slot output is what re-walking the body would return; any callee
       growth since then sets [ci_changed] and the next pass re-walks *)
    slot_out
  else begin
    Guard.check ctx.guard;
    Guard.at ctx.guard name;
    Hashtbl.replace ctx.ci_in_flight name ();
    Hashtbl.replace ctx.ci_done name ();
    let tb0 = Trace.start () in
    let fl = process_stmts ctx callee_fn node (Some new_in) callee_fn.Ir.fn_body in
    Hashtbl.remove ctx.ci_in_flight name;
    let out = Pts.merge_state fl.normal fl.ret in
    if Trace.on () then
      Trace.emit Trace.Body ~name ~pts_in:(Pts.cardinal new_in)
        ~pts_out:(match out with Some o -> Pts.cardinal o | None -> -1)
        ~t0:tb0 ();
    let merged_out = Pts.merge_state slot_out out in
    if not (Pts.state_equal merged_out slot_out) then begin
      ctx.ci_changed <- true;
      let cur_in = match Hashtbl.find_opt ctx.ci_slots name with
        | Some (i, _) -> i
        | None -> Some new_in
      in
      Hashtbl.replace ctx.ci_slots name (cur_in, merged_out)
    end;
    merged_out
  end
