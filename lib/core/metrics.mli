(** Engine observability: per-phase timing and work counters.

    {!Analysis.analyze} resets the global accumulator {!cur} on entry
    and stores a {!snapshot} in its result. Surfaced by
    [ptan analyze --stats], [ptan stats] and the bench harness. *)

type t = {
  mutable merges : int;  (** {!Pts.merge} invocations *)
  mutable merge_fast : int;  (** answered by the subsumption pre-check *)
  mutable equal_checks : int;
  mutable equal_fast : int;  (** decided by identity or cardinality *)
  mutable covered_checks : int;
  mutable covered_fast : int;
  mutable assigns : int;  (** kill/change/gen rule applications *)
  mutable kills : int;
  mutable weakens : int;
  mutable gens : int;
  mutable loop_iters : int;  (** loop-head fixed-point iterations *)
  mutable rec_iters : int;  (** recursion / pending re-evaluations *)
  mutable bodies : int;  (** function-body passes *)
  mutable memo_lookups : int;  (** §6 sub-tree sharing lookups *)
  mutable memo_hits : int;
  mutable map_calls : int;
  mutable unmap_calls : int;
  mutable cache_hits : int;  (** results served from the {!Persist} disk cache *)
  mutable cache_misses : int;  (** cache lookups that fell back to a fresh analysis *)
  mutable t_map : float;  (** seconds in {!Map_unmap.map_call} *)
  mutable t_unmap : float;
  mutable t_analysis : float;  (** whole-analysis wall-clock seconds *)
  mutable t_serialize : float;  (** seconds in {!Persist.save} *)
  mutable t_deserialize : float;  (** seconds in {!Persist.load} *)
}

val create : unit -> t

(** The global accumulator bumped by the analysis modules. *)
val cur : t

val reset : unit -> unit

(** An independent copy of {!cur}. *)
val snapshot : unit -> t

(** Monotonic-enough wall clock used for the phase timers. *)
val now : unit -> float

(** [ratio num den] as a percentage; 0 when [den] is 0. *)
val ratio : int -> int -> float

val pp : Format.formatter -> t -> unit
