(** Engine observability: per-phase timing and work counters.

    {!Analysis.analyze} resets the calling domain's accumulator
    ({!cur}) on entry and stores a {!snapshot} in its result. Surfaced
    by [ptan analyze --stats], [ptan stats], [ptan tables --stats] and
    the bench harness.

    The accumulator is domain-local ({!Domain.DLS}): each {!Pool}
    worker bumps its own record, so parallel analyses never contend and
    each task's snapshot is coherent. Use {!add_into} / {!sum} to
    aggregate the snapshots of a multi-task run into one table. *)

type t = {
  mutable merges : int;  (** {!Pts.merge} invocations *)
  mutable merge_fast : int;  (** answered by the subsumption pre-check *)
  mutable equal_checks : int;
  mutable equal_fast : int;  (** decided by identity or cardinality *)
  mutable covered_checks : int;
  mutable covered_fast : int;
  mutable assigns : int;  (** kill/change/gen rule applications *)
  mutable kills : int;
  mutable weakens : int;
  mutable gens : int;
  mutable loop_iters : int;  (** loop-head fixed-point iterations *)
  mutable rec_iters : int;  (** recursion / pending re-evaluations *)
  mutable bodies : int;  (** function-body passes *)
  mutable memo_lookups : int;  (** §6 sub-tree sharing lookups *)
  mutable memo_hits : int;
  mutable map_calls : int;
  mutable unmap_calls : int;
  mutable cache_hits : int;  (** results served from the {!Persist} disk cache *)
  mutable cache_misses : int;  (** cache lookups that fell back to a fresh analysis *)
  mutable cache_quarantined : int;
      (** corrupt cache entries renamed to [.bad] and re-analyzed *)
  mutable budget_trips : int;
      (** {!Guard} budget exhaustions that degraded an analysis to the
          widened rerun *)
  mutable heap_trips : int;
      (** budget trips whose reason was the [--max-heap-mb] memory
          ceiling (a subset of [budget_trips]) *)
  mutable ckpt_funcs : int;
      (** per-function IN/OUT slots seeded into a widened rerun from the
          aborted precise run's checkpoint (docs/ROBUSTNESS.md) *)
  mutable incr_funcs_dirty : int;
      (** incremental re-analysis: functions marked dirty by the
          content-hash diff (edited functions plus every function that
          can reach one — see docs/INCREMENTAL.md) *)
  mutable incr_funcs_reused : int;
      (** incremental re-analysis: summary replays — memoized
          (input, output) pairs served from persisted v3 summaries
          instead of re-running the function body *)
  mutable demand_plans : int;  (** {!Demand} slice plans built *)
  mutable demand_slice_funcs : int;
      (** functions in the planned slices (summed over plans) *)
  mutable demand_funcs_total : int;
      (** defined functions in the planned programs (summed over plans) *)
  mutable demand_skipped : int;
      (** demand mode: out-of-slice call evaluations answered by the
          widened transfer *)
  mutable demand_replays : int;
      (** demand mode: out-of-slice call evaluations answered exactly
          from a seeded summary *)
  mutable demand_fallbacks : int;
      (** demand analyses aborted to the exhaustive engine after an
          {!Demand.Oracle_miss} *)
  mutable ext_modeled : int;
      (** external call evaluations answered by the {!Libmodel} table *)
  mutable ext_unmodeled : int;
      (** external call evaluations that fell back to the coarse
          model *)
  mutable serve_requests : int;
      (** {!Serve} protocol requests received (daemon-level; always 0
          in a single analysis' snapshot, not persisted) *)
  mutable serve_errors : int;  (** {!Serve} requests answered with [error] *)
  mutable serve_shed : int;
      (** {!Serve} requests shed by admission control ([busy] replies) *)
  mutable t_map : float;  (** seconds in {!Map_unmap.map_call} *)
  mutable t_unmap : float;
  mutable t_analysis : float;  (** whole-analysis wall-clock seconds *)
  mutable t_serialize : float;  (** seconds in {!Persist.save} *)
  mutable t_deserialize : float;  (** seconds in {!Persist.load} *)
}

val create : unit -> t

(** The calling domain's accumulator (created on first use, one record
    per domain). *)
val cur : unit -> t

(** Zero the calling domain's accumulator. *)
val reset : unit -> unit

(** An independent copy of the calling domain's accumulator. *)
val snapshot : unit -> t

(** Accumulate every counter and timer of the second argument into
    [into] — the aggregation step that turns per-task snapshots of a
    parallel run into one coherent table. Summed times are CPU-seconds
    across domains, not wall-clock. *)
val add_into : into:t -> t -> unit

(** A fresh record holding the element-wise sum of the snapshots. *)
val sum : t list -> t

(** The clock used for the phase timers: monotonic ({!Mono.now_s}), so
    durations survive system clock steps. Readings are only meaningful
    as differences. *)
val now : unit -> float

(** [ratio num den] as a percentage; 0 when [den] is 0. *)
val ratio : int -> int -> float

(** The [--stats] report as (label, rendered value) rows — the single
    source of the counter labels; {!pp} renders these, and
    [scripts/check_cli_docs.sh] checks every label is documented in
    docs/CLI.md. *)
val rows : t -> (string * string) list

(** First components of {!rows}, in print order. *)
val labels : string list

val pp : Format.formatter -> t -> unit
