(** Statistics over analysis results, reproducing the measurements of the
    paper's Tables 2–6 (§6).

    All statistics exclude points-to pairs whose target is NULL, matching
    the paper ("we initialize all pointers to NULL ... points-to
    relationships contributed by it are not counted"). *)

module Ir = Simple_ir.Ir
module Ig = Invocation_graph

let no_null (s : Pts.t) = Pts.remove_tgt Loc.Null s

(* ------------------------------------------------------------------ *)
(* Engine cost counters (per-phase timings and operation counts)      *)
(* ------------------------------------------------------------------ *)

(** The per-phase timing and counter record of a run (fixpoint
    iterations, kill/gen applications, merge and memo fast-path rates),
    as recorded by the engine. *)
let engine_metrics (r : Analysis.result) : Metrics.t = r.Analysis.metrics

let pp_engine_metrics ppf (r : Analysis.result) = Metrics.pp ppf r.Analysis.metrics

(* ------------------------------------------------------------------ *)
(* Table 2: abstract stack sizes                                      *)
(* ------------------------------------------------------------------ *)

type characteristics = {
  c_stmts : int;  (** statements in SIMPLE *)
  c_min_vars : int;  (** min abstract-stack size over functions *)
  c_max_vars : int;
}

(** Size of a function's abstract stack: its visible named variables
    (globals, parameters, locals), the fields/array locations relevant to
    points-to analysis, and the symbolic and special locations observed
    while analyzing it. *)
let abstract_stack_size (r : Analysis.result) (fn : Ir.func) : int =
  let tenv = r.Analysis.tenv in
  let locs = ref Loc.Set.empty in
  let add_var l ty =
    locs := Loc.Set.add l !locs;
    List.iter (fun (cell, _) -> locs := Loc.Set.add cell !locs) (Tenv.pointer_cells tenv l ty)
  in
  List.iter (fun (g, ty) -> add_var (Loc.var g Loc.Kglobal) ty) r.Analysis.prog.Ir.globals;
  List.iter (fun (n, ty) -> add_var (Loc.var n Loc.Kparam) ty) fn.Ir.fn_params;
  List.iter (fun (n, ty) -> add_var (Loc.var n Loc.Klocal) ty) fn.Ir.fn_locals;
  (* locations observed in the recorded sets of this function's statements
     (symbolic names, heap, array locations reached through pointers) *)
  Ir.fold_func
    (fun () s ->
      match Hashtbl.find_opt r.Analysis.stmt_pts s.Ir.s_id with
      | None -> ()
      | Some pts ->
          locs := Loc.Set.union !locs (Pts.all_locs (no_null pts)))
    () fn;
  Loc.Set.cardinal !locs

let characteristics (r : Analysis.result) : characteristics =
  let sizes = List.map (abstract_stack_size r) r.Analysis.prog.Ir.funcs in
  match sizes with
  | [] -> { c_stmts = r.Analysis.prog.Ir.n_stmts; c_min_vars = 0; c_max_vars = 0 }
  | s :: rest ->
      {
        c_stmts = r.Analysis.prog.Ir.n_stmts;
        c_min_vars = List.fold_left min s rest;
        c_max_vars = List.fold_left max s rest;
      }

(* ------------------------------------------------------------------ *)
(* Table 3: indirect-reference resolution                             *)
(* ------------------------------------------------------------------ *)

(** One indirect reference occurrence: the statement, whether it is of
    array form (x[i][j]-style, i.e. the dereference feeds an index), and
    the points-to pairs of the dereferenced pointer at that point. *)
type indirect_ref = {
  ir_stmt : int;
  ir_base : Loc.t;  (** the dereferenced pointer *)
  ir_array_form : bool;
  ir_targets : (Loc.t * Pts.cert) list;  (** NULL excluded *)
}

(** The indirect references of a statement: every vref with a
    dereference, on either side. *)
let stmt_indirect_vrefs (s : Ir.stmt) : Ir.vref list =
  let of_rhs = function
    | Ir.Rref r | Ir.Raddr r | Ir.Rarith (r, _) -> [ r ]
    | Ir.Rconst _ | Ir.Rnull | Ir.Rstr | Ir.Rmalloc | Ir.Rbinop _ | Ir.Runop _ -> []
  in
  let of_operand = function Ir.Oref r -> [ r ] | Ir.Oconst _ | Ir.Onull | Ir.Ostr -> [] in
  let refs =
    match s.Ir.s_desc with
    | Ir.Sassign (l, rhs) -> (l :: of_rhs rhs)
    | Ir.Scall (lhs, callee, args) ->
        (match lhs with Some l -> [ l ] | None -> [])
        @ (match callee with Ir.Cindirect r -> [ r ] | Ir.Cdirect _ -> [])
        @ List.concat_map of_operand args
    | Ir.Sreturn (Some op) -> of_operand op
    | Ir.Sif _ | Ir.Sloop _ | Ir.Sswitch _ | Ir.Sbreak | Ir.Scontinue | Ir.Sreturn None -> []
  in
  List.filter (fun r -> r.Ir.r_deref) refs

let collect_indirect_refs (r : Analysis.result) : indirect_ref list =
  let tenv = r.Analysis.tenv in
  List.concat_map
    (fun fn ->
      List.rev
        (Ir.fold_func
           (fun acc s ->
             let refs = stmt_indirect_vrefs s in
             if refs = [] then acc
             else
               let pts = Analysis.pts_at r s.Ir.s_id in
               List.fold_left
                 (fun acc (vref : Ir.vref) ->
                   match Tenv.base_loc tenv fn vref.Ir.r_base with
                   | None -> acc
                   | Some base ->
                       let targets =
                         List.filter
                           (fun (t, _) -> not (Loc.is_null t))
                           (Pts.targets base pts)
                       in
                       let array_form =
                         List.exists
                           (function Ir.Sindex _ | Ir.Sshift _ -> true | Ir.Sfield _ -> false)
                           vref.Ir.r_path
                       in
                       {
                         ir_stmt = s.Ir.s_id;
                         ir_base = base;
                         ir_array_form = array_form;
                         ir_targets = targets;
                       }
                       :: acc)
                 acc refs)
           [] fn))
    r.Analysis.prog.Ir.funcs

(** A (scalar-form, array-form) pair of counters, as in the double
    columns of Table 3. *)
type pair_count = { scalar : int; array : int }

let zero_pair = { scalar = 0; array = 0 }

let bump pc array_form =
  if array_form then { pc with array = pc.array + 1 } else { pc with scalar = pc.scalar + 1 }

let pair_total pc = pc.scalar + pc.array

type indirect_stats = {
  one_d : pair_count;  (** definitely one stack location *)
  one_p : pair_count;  (** possibly one (the other being NULL) *)
  two_p : pair_count;
  three_p : pair_count;
  four_plus_p : pair_count;
  ind_refs : int;
  scalar_rep : int;  (** replaceable by a direct reference *)
  to_stack : int;  (** pairs used, target on the stack *)
  to_heap : int;
  total_pairs : int;
  avg : float;
}

(** Can an indirect reference with this single definite target be
    replaced by a direct reference? Not when the target is an invisible
    variable (symbolic), heap or string storage. *)
let replaceable (l : Loc.t) =
  Loc.sym_depth l = 0
  &&
  match Loc.root l with
  | Loc.Var _ -> true
  | Loc.Heap | Loc.Site _ | Loc.Null | Loc.Str | Loc.Fun _ | Loc.Ret _ -> false
  | Loc.Fld _ | Loc.Head _ | Loc.Tail _ | Loc.Sym _ -> false

let indirect_stats (r : Analysis.result) : indirect_stats =
  let refs = collect_indirect_refs r in
  let acc =
    List.fold_left
      (fun acc ir ->
        let n = List.length ir.ir_targets in
        let all_d = List.for_all (fun (_, c) -> c = Pts.D) ir.ir_targets in
        let acc =
          match (n, all_d) with
          | 1, true -> { acc with one_d = bump acc.one_d ir.ir_array_form }
          | 1, false -> { acc with one_p = bump acc.one_p ir.ir_array_form }
          | 2, _ -> { acc with two_p = bump acc.two_p ir.ir_array_form }
          | 3, _ -> { acc with three_p = bump acc.three_p ir.ir_array_form }
          | 0, _ -> acc
          | _ -> { acc with four_plus_p = bump acc.four_plus_p ir.ir_array_form }
        in
        let rep =
          match ir.ir_targets with
          | [ (t, Pts.D) ] when replaceable t -> 1
          | _ -> 0
        in
        let stack, heap =
          List.fold_left
            (fun (s, h) (t, _) -> if Loc.is_stack t then (s + 1, h) else (s, h + 1))
            (0, 0) ir.ir_targets
        in
        {
          acc with
          ind_refs = acc.ind_refs + 1;
          scalar_rep = acc.scalar_rep + rep;
          to_stack = acc.to_stack + stack;
          to_heap = acc.to_heap + heap;
        })
      {
        one_d = zero_pair;
        one_p = zero_pair;
        two_p = zero_pair;
        three_p = zero_pair;
        four_plus_p = zero_pair;
        ind_refs = 0;
        scalar_rep = 0;
        to_stack = 0;
        to_heap = 0;
        total_pairs = 0;
        avg = 0.;
      }
      refs
  in
  let total = acc.to_stack + acc.to_heap in
  {
    acc with
    total_pairs = total;
    avg = (if acc.ind_refs = 0 then 0. else float_of_int total /. float_of_int acc.ind_refs);
  }

(* ------------------------------------------------------------------ *)
(* Table 4: from/to categorization of pairs used by indirect refs     *)
(* ------------------------------------------------------------------ *)

type categorization = {
  from_lo : int;
  from_gl : int;
  from_fp : int;
  from_sy : int;
  to_lo : int;
  to_gl : int;
  to_fp : int;
  to_sy : int;
}

let categorize (r : Analysis.result) : categorization =
  let refs = collect_indirect_refs r in
  let zero =
    {
      from_lo = 0;
      from_gl = 0;
      from_fp = 0;
      from_sy = 0;
      to_lo = 0;
      to_gl = 0;
      to_fp = 0;
      to_sy = 0;
    }
  in
  List.fold_left
    (fun acc ir ->
      List.fold_left
        (fun acc (t, _) ->
          if not (Loc.is_stack t) then acc
          else
            let acc =
              match Loc.category ir.ir_base with
              | Some `Lo -> { acc with from_lo = acc.from_lo + 1 }
              | Some `Gl -> { acc with from_gl = acc.from_gl + 1 }
              | Some `Fp -> { acc with from_fp = acc.from_fp + 1 }
              | Some `Sy -> { acc with from_sy = acc.from_sy + 1 }
              | None -> acc
            in
            match Loc.category t with
            | Some `Lo -> { acc with to_lo = acc.to_lo + 1 }
            | Some `Gl -> { acc with to_gl = acc.to_gl + 1 }
            | Some `Fp -> { acc with to_fp = acc.to_fp + 1 }
            | Some `Sy -> { acc with to_sy = acc.to_sy + 1 }
            | None -> acc)
        acc ir.ir_targets)
    zero refs

(* ------------------------------------------------------------------ *)
(* Table 5: general points-to statistics                              *)
(* ------------------------------------------------------------------ *)

type general_stats = {
  stack_to_stack : int;
  stack_to_heap : int;
  heap_to_heap : int;
  heap_to_stack : int;
  avg_per_stmt : float;
  max_per_stmt : int;
}

let general (r : Analysis.result) : general_stats =
  let n_stmts = ref 0 in
  let ss = ref 0 and sh = ref 0 and hh = ref 0 and hs = ref 0 in
  let maxp = ref 0 in
  let total = ref 0 in
  List.iter
    (fun fn ->
      Ir.fold_func
        (fun () s ->
          incr n_stmts;
          match Hashtbl.find_opt r.Analysis.stmt_pts s.Ir.s_id with
          | None -> ()
          | Some pts ->
              let pts = no_null pts in
              let n = Pts.cardinal pts in
              total := !total + n;
              if n > !maxp then maxp := n;
              Pts.iter
                (fun src tgt _ ->
                  match (Loc.is_stack src, Loc.is_stack tgt) with
                  | true, true -> incr ss
                  | true, false -> incr sh
                  | false, false -> incr hh
                  | false, true -> incr hs)
                pts)
        () fn)
    r.Analysis.prog.Ir.funcs;
  {
    stack_to_stack = !ss;
    stack_to_heap = !sh;
    heap_to_heap = !hh;
    heap_to_stack = !hs;
    avg_per_stmt =
      (if !n_stmts = 0 then 0. else float_of_int !total /. float_of_int !n_stmts);
    max_per_stmt = !maxp;
  }

(* ------------------------------------------------------------------ *)
(* Table 6: invocation graph statistics                               *)
(* ------------------------------------------------------------------ *)

type ig_stats = {
  ig_nodes : int;
  call_sites : int;
  n_funcs : int;  (** functions actually called *)
  n_recursive : int;
  n_approximate : int;
  avg_per_call_site : float;
  avg_per_func : float;
}

let ig_stats (r : Analysis.result) : ig_stats =
  let g = r.Analysis.graph in
  let tenv = r.Analysis.tenv in
  (* call sites: call statements that can invoke a defined function *)
  let call_sites =
    List.length
      (List.filter
         (fun ((_ : Ir.func), (s : Ir.stmt)) ->
           match s.Ir.s_desc with
           | Ir.Scall (_, Ir.Cdirect f, _) -> Tenv.is_defined_func tenv f
           | Ir.Scall (_, Ir.Cindirect _, _) -> true
           | _ -> false)
         (Ir.call_sites r.Analysis.prog))
  in
  let nodes = Ig.n_nodes g in
  let funcs = List.filter (fun f -> f <> g.Ig.root.Ig.func) (Ig.called_funcs g) in
  let n_funcs = List.length funcs in
  {
    ig_nodes = nodes;
    call_sites;
    n_funcs;
    n_recursive = Ig.n_recursive g;
    n_approximate = Ig.n_approximate g;
    avg_per_call_site =
      (if call_sites = 0 then 0. else float_of_int nodes /. float_of_int call_sites);
    avg_per_func = (if n_funcs = 0 then 0. else float_of_int nodes /. float_of_int n_funcs);
  }
