(** L-location and R-location sets (paper §3.2, Table 1).

    Given a points-to set [S] valid at a program point, [lvals] computes
    the set of abstract locations a variable reference may denote when it
    appears on the left of an assignment, and [rvals_ref]/[rvals_rhs]
    compute the locations referred to by right-hand sides. Locations come
    paired with a certainty: definite (the reference denotes exactly this
    location on every path) or possible.

    The computation is compositional over the selector path of the
    reference, which yields every row of Table 1 as a special case and
    extends uniformly to mixed paths such as "a[i].f" and "(*p).f[0]". *)

module Ir = Simple_ir.Ir

type locset = Pts.cert Loc.Map.t

let empty : locset = Loc.Map.empty

let add_loc l c (s : locset) : locset =
  Loc.Map.update l
    (function None -> Some c | Some c0 -> Some (Pts.cert_and c0 c))
    s

let of_list l : locset = List.fold_left (fun s (x, c) -> add_loc x c s) empty l

let to_list (s : locset) = Loc.Map.bindings s

let union (a : locset) (b : locset) : locset =
  Loc.Map.union (fun _ c1 c2 -> Some (Pts.cert_and c1 c2)) a b

let map_cert f (s : locset) : locset = Loc.Map.map f s

let weaken (s : locset) = map_cert (fun _ -> Pts.P) s

(** Apply a field selector to a location. Unions collapse to the base
    location; the heap and string blobs absorb fields. *)
let apply_field tenv fn l f c : (Loc.t * Pts.cert) list =
  match l with
  | Loc.Heap | Loc.Site _ -> [ (l, c) ]
  | Loc.Str -> [ (Loc.Str, c) ]
  | Loc.Null -> []
  | Loc.Fun _ | Loc.Ret _ -> []
  | _ -> if Tenv.is_union_loc tenv fn l then [ (l, c) ] else [ (Loc.fld l f, c) ]

(** Move across sibling objects of an array region (pointer subscripts
    and pointer arithmetic, the "(*a)[i]" rows of Table 1): the head
    element shifted positively lands in the tail; an unknown shift may
    land anywhere in the array. Subscripting a pointer to a non-array
    object stays within that object under the pointer-arithmetic flag
    (paper §6). *)
let apply_shift l (idx : Ir.index) c : (Loc.t * Pts.cert) list =
  match l with
  | Loc.Site _ -> [ (l, c) ]
  | Loc.Head b -> (
      match idx with
      | Ir.Izero -> [ (Loc.head b, c) ]
      | Ir.Ipos -> [ (Loc.tail b, c) ]
      | Ir.Iany -> [ (Loc.head b, Pts.P); (Loc.tail b, Pts.P) ])
  | Loc.Tail b -> (
      match idx with
      | Ir.Izero | Ir.Ipos -> [ (Loc.tail b, c) ]
      | Ir.Iany -> [ (Loc.tail b, Pts.P) ])
  | Loc.Heap -> [ (Loc.Heap, c) ]
  | Loc.Str -> [ (Loc.Str, c) ]
  | Loc.Null -> []
  | _ -> ( match idx with Ir.Izero -> [ (l, c) ] | Ir.Ipos | Ir.Iany -> [ (l, Pts.P) ])

(** Select within an array object (true array subscripts): element 0 is
    the head location, the rest the tail (paper §3.2). On a non-array
    location (a type confusion through casts) falls back to the shift
    semantics, which is safe. *)
let apply_index tenv fn l (idx : Ir.index) c : (Loc.t * Pts.cert) list =
  if Tenv.is_array_loc tenv fn l then
    match idx with
    | Ir.Izero -> [ (Loc.head l, c) ]
    | Ir.Ipos -> [ (Loc.tail l, c) ]
    | Ir.Iany -> [ (Loc.head l, Pts.P); (Loc.tail l, Pts.P) ]
  else apply_shift l idx c

let apply_selector tenv fn sel (s : locset) : locset =
  Loc.Map.fold
    (fun l c acc ->
      let next =
        match sel with
        | Ir.Sfield f -> apply_field tenv fn l f c
        | Ir.Sindex idx -> apply_index tenv fn l idx c
        | Ir.Sshift idx -> apply_shift l idx c
      in
      List.fold_left (fun acc (l, c) -> add_loc l c acc) acc next)
    s empty

(** L-location set of a variable reference (Table 1, L-loc column).
    Dereferences of NULL and of function values are dropped (the paper's
    assumption that a dereferenced pointer is non-NULL at run time). *)
let lvals tenv fn (s : Pts.t) (r : Ir.vref) : locset =
  let start =
    if r.Ir.r_deref then
      match Tenv.base_loc tenv fn r.Ir.r_base with
      | None -> empty (* dereferencing a function name: meaningless *)
      | Some base ->
          List.fold_left
            (fun acc (tgt, c) ->
              if Loc.is_null tgt || Loc.is_fun tgt then acc else add_loc tgt c acc)
            empty (Pts.targets base s)
    else
      match Tenv.base_loc tenv fn r.Ir.r_base with
      | None -> empty
      | Some base -> add_loc base Pts.D empty
  in
  List.fold_left (fun acc sel -> apply_selector tenv fn sel acc) start r.Ir.r_path

(** R-location set of a variable reference (Table 1, R-loc column): one
    more level of dereference than the L-locations. A plain reference to
    a function name evaluates to the function location itself. *)
let rvals_ref tenv fn (s : Pts.t) (r : Ir.vref) : locset =
  if (not r.Ir.r_deref) && r.Ir.r_path = [] && Tenv.var_info tenv fn r.Ir.r_base = None
     && Tenv.is_func_name tenv r.Ir.r_base
  then add_loc (Loc.func r.Ir.r_base) Pts.D empty
  else
    let ls = lvals tenv fn s r in
    Loc.Map.fold
      (fun l c1 acc ->
        List.fold_left
          (fun acc (tgt, c2) -> add_loc tgt (Pts.cert_and c1 c2) acc)
          acc (Pts.targets l s))
      ls empty

(** Targets after pointer arithmetic: shift each pointed-to location by
    the classified displacement. With [pointer_arith_stays] unset, a
    shifted non-array target may be any location in the current set. *)
let shift_loc tenv (s : Pts.t) (l : Loc.t) (shift : Ir.ptr_shift) c : (Loc.t * Pts.cert) list =
  let universe () =
    if tenv.Tenv.opts.Options.pointer_arith_stays then [ (l, Pts.P) ]
    else
      Loc.Set.fold
        (fun x acc -> if Loc.is_null x then acc else (x, Pts.P) :: acc)
        (Pts.all_locs s) []
  in
  match shift with
  | Ir.Pzero -> [ (l, c) ]
  | Ir.Ppos -> (
      match l with
      | Loc.Head b -> [ (Loc.tail b, c) ]
      | Loc.Tail b -> [ (Loc.tail b, c) ]
      | Loc.Heap | Loc.Site _ -> [ (l, c) ]
      | Loc.Str -> [ (Loc.Str, c) ]
      | Loc.Null -> [ (Loc.Null, c) ]
      | _ -> universe ())
  | Ir.Pany -> (
      match l with
      | Loc.Head b | Loc.Tail b -> [ (Loc.head b, Pts.P); (Loc.tail b, Pts.P) ]
      | Loc.Heap | Loc.Site _ -> [ (l, c) ]
      | Loc.Str -> [ (Loc.Str, c) ]
      | Loc.Null -> [ (Loc.Null, c) ]
      | _ -> universe ())

(** R-location set of a right-hand side. *)
let rvals_rhs tenv fn (s : Pts.t) (rhs : Ir.rhs) : locset =
  match rhs with
  | Ir.Rref r -> rvals_ref tenv fn s r
  | Ir.Raddr r -> lvals tenv fn s r
  | Ir.Rconst _ | Ir.Rbinop _ | Ir.Runop _ -> add_loc Loc.Null Pts.D empty
  | Ir.Rnull -> add_loc Loc.Null Pts.D empty
  | Ir.Rstr -> add_loc Loc.Str Pts.P empty
  | Ir.Rmalloc -> add_loc Loc.Heap Pts.P empty
  | Ir.Rarith (r, shift) ->
      let base = rvals_ref tenv fn s r in
      Loc.Map.fold
        (fun l c acc ->
          List.fold_left
            (fun acc (l, c) -> add_loc l c acc)
            acc
            (shift_loc tenv s l shift c))
        base empty

(** R-location set of an operand. *)
let rvals_operand tenv fn (s : Pts.t) (op : Ir.operand) : locset =
  match op with
  | Ir.Oref r -> rvals_ref tenv fn s r
  | Ir.Oconst _ -> add_loc Loc.Null Pts.D empty
  | Ir.Onull -> add_loc Loc.Null Pts.D empty
  | Ir.Ostr -> add_loc Loc.Str Pts.P empty

let pp ppf (s : locset) =
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (l, c) ->
         Fmt.pf ppf "(%a,%s)" Loc.pp l (Pts.cert_to_string c)))
    (to_list s)
