(** Points-to sets: maps from (source, target) abstract-location pairs to
    a certainty (paper Definitions 3.1–3.3).

    The representation is source-indexed and carries the pair count
    plus a lazily computed, memoized reverse (target → sources) index,
    so cardinality is O(1) and target-directed operations cost one
    transposition per set value instead of per query; {!merge},
    {!equal} and {!covered_by} run identity / cardinality / subsumption
    pre-checks so fixed-point steady states cost O(1)–O(pairs) without
    allocation.

    The interprocedural fixed point (Figure 4) uses the lattice defined
    by {!covered_by} (safe generalization) and {!merge} (least upper
    bound); {!state} adds the Bottom element for unreachable code. *)

(** Definite or possible (paper §3.1). *)
type cert = D | P

(** Conjunction: definite only when both are (Table 1's [d1 ∧ d2]). *)
val cert_and : cert -> cert -> cert

val cert_to_string : cert -> string

type t

val empty : t
val is_empty : t -> bool

(** Add a pair, overriding any existing certainty (gen sets replace). *)
val add : Loc.t -> Loc.t -> cert -> t -> t

(** Add a pair, weakening on conflict (independent facts accumulate). *)
val add_weak : Loc.t -> Loc.t -> cert -> t -> t

val find : Loc.t -> Loc.t -> t -> cert option
val mem : Loc.t -> Loc.t -> t -> bool

(** All targets of a source, with certainties. *)
val targets : Loc.t -> t -> (Loc.t * cert) list

(** The target map of a source (empty when it has no relationships);
    the set's own submap, shared, not a copy. *)
val tgt_map : Loc.t -> t -> cert Loc.Map.t

(** Bind every pair of a target map under the given source with override
    semantics — the bulk counterpart of repeated {!add}, sharing the map
    when the source is unbound. *)
val add_map : Loc.t -> cert Loc.Map.t -> t -> t

(** Remove every relationship of a source (Figure 1's kill). *)
val kill_src : Loc.t -> t -> t

(** Demote every relationship of a source to possible (Figure 1's
    change set). *)
val weaken_src : Loc.t -> t -> t

(** Remove every relationship with the given target, via the reverse
    index (touches only the sources actually pointing at it). *)
val remove_tgt : Loc.t -> t -> t

(** All sources pointing at a target (the reverse index). *)
val sources : Loc.t -> t -> Loc.Set.t

val fold : (Loc.t -> Loc.t -> cert -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (Loc.t -> Loc.t -> cert -> unit) -> t -> unit

(** Iterate sources in {!Loc.compare} order, passing each source's
    target map — the set's own submaps, shared, not copies. Functional
    updates preserve the submaps of untouched sources, so consumers
    (e.g. the serializer's row-dedup table) can exploit physical
    equality across related sets. *)
val iter_srcs : (Loc.t -> cert Loc.Map.t -> unit) -> t -> unit
val exists : (Loc.t -> Loc.t -> cert -> bool) -> t -> bool
val filter : (Loc.t -> Loc.t -> cert -> bool) -> t -> t

(** Keep only the relationships whose source satisfies the predicate
    (evaluated once per source, not per pair). *)
val filter_src : (Loc.t -> bool) -> t -> t
val cardinal : t -> int

(** Cheap bounded-traversal fingerprint for bucketing interning tables:
    physically shared sets fingerprint equally in O(1); equal but
    separately built sets may not (callers must still compare with
    {!equal} inside a bucket). Contrast {!hash}, which is canonical but
    walks every pair. *)
val fingerprint : t -> int

val to_list : t -> (Loc.t * Loc.t * cert) list
val of_list : (Loc.t * Loc.t * cert) list -> t
val equal : t -> t -> bool

(** Canonical structural digest, consistent with {!equal}: equal sets
    hash equal, regardless of construction order or interning domain.
    Backs the hash-indexed sub-tree-sharing memo in {!Engine}. *)
val hash : t -> int

(** Force the lazy reverse index now. Required before read-only
    parallel querying of a shared set ({!Pool} workers racing to force
    one suspension is a runtime error in OCaml 5). *)
val prime : t -> unit

(** Least upper bound: union of pairs, definite only when definite on
    both sides (a one-sided definite becomes possible — some execution
    paths do not establish it). *)
val merge : t -> t -> t

(** [covered_by s1 s2]: is [s2] a safe generalization of [s1]? Requires
    every pair of [s1] in [s2], and every definite claim of [s2] definite
    in [s1] (Figure 4's [isSubsetOf]). *)
val covered_by : t -> t -> bool

(** Union where the second operand's pairs win (Figure 1's
    [(changed_input − kill) ∪ gen]). *)
val union_override : t -> t -> t

(** Every location mentioned as source or target. *)
val all_locs : t -> Loc.Set.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Analysis states: [None] is Figure 4's Bottom (unreachable / not yet
    computed), the identity of {!merge_state}. *)
type state = t option

val bot : state
val merge_state : state -> state -> state
val state_equal : state -> state -> bool
val state_covered_by : state -> state -> bool
val pp_state : Format.formatter -> state -> unit
