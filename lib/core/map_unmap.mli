(** Mapping and unmapping of points-to information across procedure
    calls (paper §4.1): formals inherit the actuals' relationships,
    globals carry over, invisible variables get symbolic names (at most
    one per invisible; definite-first assignment; multi-represented
    symbolic names demote their relationships), and the callee's output
    is translated back through the recorded representation. *)

module Ir = Simple_ir.Ir

(** The abstraction of one actual argument. *)
type actual =
  | Aptr of Lval.locset  (** pointer argument: the locations it points to *)
  | Aagg of Loc.t  (** aggregate passed by value: its location *)
  | Aother  (** non-pointer scalar *)

(** Map information for one call: forward translation (caller invisible
    location to symbolic name) and representation sets (symbolic name to
    caller locations). *)
type info = {
  i_fwd : Loc.t Loc.Map.t;
  i_reps : Loc.t list Loc.Map.t;
}

(** How many caller locations a callee-side location represents (1 for
    globals and unmapped names). *)
val rep_count : info -> Loc.t -> int

(** Translate a caller location into the callee name space, when it is
    reachable there. *)
val info_translate : info -> Loc.t -> Loc.t option

(** Resolve a callee-side location back to the caller locations it
    represents; escaping callee locals resolve to nothing. *)
val resolve_back : info -> Loc.t -> Loc.t list

(** NULL-initialize the pointer cells of a location of type [ty]
    (paper §6: "we initialize all pointers to NULL"). *)
val null_init : Tenv.t -> Loc.t -> Cfront.Ctype.t -> Pts.t -> Pts.t

(** Compute the callee's input set and map information for a call.
    [actuals] align with [callee.fn_params]; missing trailing actuals map
    to NULL. *)
val map_call :
  Tenv.t ->
  caller_fn:Ir.func ->
  callee:Ir.func ->
  input:Pts.t ->
  actuals:actual list ->
  Pts.t * info

(** The caller's points-to set after the call: relationships of
    unreachable caller locations persist; the callee's output translates
    back (conflicting views of one caller cell reconcile with merge
    semantics). [callee] only labels the {!Trace} span.

    A translated cell whose callee-side targets include an
    untranslatable symbolic name — minted at another call site whose
    facts got merged into the callee's output (context-insensitive
    slots, approximate-node reuse) — additionally retains its pre-call
    targets, demoted to possible: the foreign name witnesses that along
    some merged path the cell kept or received a caller-invisible value,
    and dropping it silently would lose real concrete pairs. [merged]
    (set by the context-insensitive evaluation mode) extends that
    retention to untranslatable {e local} names, which under merged
    per-function contexts may belong to a frame other than the callee's
    own dead storage. *)
val unmap_call :
  ?callee:string ->
  ?merged:bool ->
  Tenv.t ->
  input:Pts.t ->
  output:Pts.t ->
  info:info ->
  Pts.t

(** Caller-side targets of the callee's return value. *)
val return_targets :
  output:Pts.t -> info:info -> callee:string -> (Loc.t * Pts.cert) list

(** For aggregate returns: each cell of the return slot as a grafting
    function (apply to a destination location to get its cell) with the
    cell's caller-side targets. *)
val return_cell_targets :
  output:Pts.t ->
  info:info ->
  callee:string ->
  ((Loc.t -> Loc.t) * (Loc.t * Pts.cert) list) list
