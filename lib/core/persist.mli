(** Persisted analysis results: the analyze-once / query-many layer.

    The whole point of a context-sensitive summary (paper §5–6) is that
    one interprocedural fixed point pays for many downstream consumers —
    alias queries, pointer replacement, call-graph construction. This
    module makes the fixed point a durable artifact: a {!result} is
    serialized to a compact, versioned binary file and later {!load}ed
    and queried without re-running the analysis.

    {2 Format}

    A saved file carries a magic string, a {!version} number, and a
    16-byte key digesting the analyzed source text together with the
    {!Options.t} record and the entry-function name. The payload is an
    interned {!Loc.t} table (each location written once, referenced by
    index), the per-statement {!Pts.t} sets, the entry output state, the
    invocation-graph shape (nodes, kinds, recursive back-edges, stored
    IN/OUT pairs and map information), and the run's {!Metrics.t}
    snapshot. Loading re-lowers the (digest-verified) source to rebuild
    the program and typing environment — parsing is cheap; only the
    fixed point is worth persisting.

    A load returns [None] — never a wrong answer — when the file is
    missing, truncated or corrupt, was written by a different {!version}
    of the format, or keys a different source text, option record or
    entry function.

    {2 Cache}

    {!analyze_cached} keys files by digest under a cache directory
    (default [$XDG_CACHE_HOME/ptan] or [~/.cache/ptan]) and is the
    backend of every [ptan] subcommand; cache traffic is surfaced via
    {!Metrics} ([cache_hits], [cache_misses], [t_serialize],
    [t_deserialize]).

    {2 Incremental re-analysis}

    With [~incremental:true], {!analyze_cached} keeps one
    {e stable-named} entry per (source path, options, entry) that also
    carries the v3 incremental section: a content hash per function
    (position-normalized, so edits elsewhere in the file do not disturb
    it) and a replayable summary per evaluated (function, input) pair.
    On re-analysis after an edit, the hashes are diffed, the dirty slice
    (edited functions, their transitive callers, and anything touching a
    function pointer) is re-run live, and everything else replays from
    the summaries — bit-identically to a cold run. See
    docs/INCREMENTAL.md for the dirty rule and the soundness argument. *)

(** Format version; bumped on any change to the encoding. A version
    mismatch invalidates a cache file (the reader returns [None]). *)
val version : int

(** Hex digest keying a saved result: source text content, the full
    {!Options.t} record, the entry name, and the format {!version}.
    [source] is the path of the C file. *)
val key : source:string -> opts:Options.t -> entry:string -> string

(** [save ~source ?entry result file] writes [result] (obtained by
    analyzing [source] with entry [entry], default ["main"]) to [file]
    in the versioned binary format. The options are taken from the
    result's typing environment. Creates parent directories as needed;
    writes atomically (temp file + rename). Records its cost in
    {!Metrics.cur}[.t_serialize]. *)
val save : source:string -> ?entry:string -> Analysis.result -> string -> unit

(** Why a load produced no result. *)
type load_error =
  | Missing  (** no file at that path *)
  | Stale
      (** well-formed entry keying a different source text, option
          record or entry function — not corrupt, just not ours *)
  | Corrupt
      (** truncation, bit damage, version skew, or any decode failure:
          the entry can never load again; {!analyze_cached} quarantines
          it *)

val load_error_name : load_error -> string
(** ["missing"], ["stale"], ["corrupt"]. *)

(** [load_checked ~source ?opts ?entry file] reads a result saved by
    {!save}, classifying failure: never raises, never returns a wrong
    table. On success the program is re-lowered from [source] and the
    result is equivalent to the one originally saved: same
    per-statement points-to sets, entry output, invocation graph
    (shape, stored IN/OUT, map information), warnings and counters.
    Records its cost in {!Metrics.cur}[.t_deserialize]. *)
val load_checked :
  source:string ->
  ?opts:Options.t ->
  ?entry:string ->
  string ->
  (Analysis.result, load_error) result

(** {!load_checked} with the failure reason dropped. *)
val load :
  source:string -> ?opts:Options.t -> ?entry:string -> string -> Analysis.result option

(** The default cache directory: [$XDG_CACHE_HOME/ptan] when
    [XDG_CACHE_HOME] is set, else [$HOME/.cache/ptan], else
    [.ptan-cache] in the working directory. *)
val default_cache_dir : unit -> string

(** The cache file a (source, options, entry) triple maps to under a
    cache directory: [dir/<basename>-<key>.ptc]. *)
val cache_file : cache_dir:string -> source:string -> opts:Options.t -> entry:string -> string

(** The {e stable-named} incremental entry for a (source path, options,
    entry) triple: [dir/<basename>-<digest>.pti]. Unlike {!cache_file},
    the name does not involve the source content, so the entry written
    before an edit remains reachable after it — the header's content key
    then distinguishes a full hit from a partial (summary-replay) one. *)
val cache_file_incr :
  cache_dir:string -> source:string -> opts:Options.t -> entry:string -> string

(** Position-normalized content hash of one function's lowered IR
    (statement ids and source locations blanked): equal iff the
    function's code is unchanged, no matter what was edited elsewhere in
    the translation unit. The diff oracle of the incremental path. *)
val func_hash : Simple_ir.Ir.func -> Digest.t

(** The functions of the program whose persisted summaries may be
    replayed after an edit, given the saved run's {!func_hash} table:
    those whose whole direct-call closure is unchanged and free of
    indirect call sites (docs/INCREMENTAL.md). The complement is the
    dirty set. *)
val eligible_funcs :
  Simple_ir.Ir.program -> old_hashes:(string, string) Hashtbl.t -> (string, unit) Hashtbl.t

(** The replayable summaries of the incremental cache entry for
    [source], restricted to {!eligible_funcs} against [prog] (the
    current lowering of [source]) — what a demand-driven run replays at
    calls it skips ({!Analysis.analyze_demand}; docs/DEMAND.md). [None]
    when there is no usable entry: missing or corrupt file, changed
    environment (globals, layouts, options), or a non-seedable engine
    mode (context-insensitive, [heap_by_site]). Unlike [analyze_cached]
    this never runs the analysis and never writes. *)
val load_summaries :
  cache_dir:string ->
  source:string ->
  opts:Options.t ->
  ?entry:string ->
  Simple_ir.Ir.program ->
  Engine.summaries option

(** [analyze_cached ?cache_dir ?opts ?entry source] serves the analysis
    result for [source] from the disk cache when a valid entry exists,
    and otherwise runs {!Analysis.of_file} and populates the cache. The
    boolean is [true] on a cache hit. The returned result's metrics
    carry this invocation's cache counters ([cache_hits] /
    [cache_misses] / [t_serialize] / [t_deserialize] /
    [cache_quarantined]) alongside the counters of the run that
    originally produced the result. Cache I/O failures degrade to a
    fresh analysis, never to an error; a {!Corrupt} entry is renamed to
    [<file>.bad] (kept for post-mortem; a pre-existing [.bad] is never
    clobbered — subsequent victims get [.bad.1], [.bad.2], ...) and
    re-analyzed cold.

    [budget] is forwarded to {!Analysis.analyze} on a miss. A degraded
    result is returned but {e never} saved to the cache — its key
    promises the full-precision answer.

    [incremental] switches to the stable-named entry
    ({!cache_file_incr}) with summary recording and replay: an unchanged
    source is a full hit as before; after an edit, only the dirty slice
    re-runs and the rest replays from the persisted summaries
    (bit-identical tables, [incr_funcs_dirty] / [incr_funcs_reused]
    metrics). Defaults to [false]. *)
val analyze_cached :
  ?cache_dir:string ->
  ?opts:Options.t ->
  ?entry:string ->
  ?budget:Guard.budget ->
  ?incremental:bool ->
  string ->
  Analysis.result * bool
