(** Analysis options.

    The defaults match the configuration the paper's experiments ran
    under (§6): pointer arithmetic assumed to stay within the pointed-to
    object (with a warning), full context sensitivity, and definite
    relationships enabled. The other settings exist for the ablation
    benchmarks (see DESIGN.md). *)

type t = {
  max_sym_depth : int;
      (** bound on the nesting of symbolic names for invisible variables;
          beyond it, chains are summarized by the enclosing symbolic
          location (needed for recursive structure types on the stack) *)
  pointer_arith_stays : bool;
      (** paper §6 flag: non-array pointer arithmetic stays within the
          presently pointed-to object (true, the experimental setting) or
          may target any location (false) *)
  context_sensitive : bool;
      (** true: full invocation-graph context sensitivity (the paper);
          false: one merged IN/OUT pair per function (ablation) *)
  use_definite : bool;
      (** true: track definite relationships and use them for strong
          updates (the paper); false: everything possible, weak updates
          only (ablation) *)
  record_stats : bool;  (** record per-statement points-to sets *)
  share_contexts : bool;
      (** the paper's §6 proposal for large invocation graphs: memoize
          IN/OUT pairs per function across contexts, so a node whose
          mapped input has already been analyzed at another node of the
          same function reuses that result (sub-tree sharing). On by
          default; produces bit-identical results, so the switch exists
          only for ablation ([--no-share-contexts]) *)
  heap_by_site : bool;
      (** name heap storage by allocation site instead of the single
          [heap] location — the refinement underlying the companion heap
          analyses (paper §8, [Ghiya 93]); consumed by
          [Heap_analysis.Connection] *)
}

let default =
  {
    max_sym_depth = 5;
    pointer_arith_stays = true;
    context_sensitive = true;
    use_definite = true;
    record_stats = true;
    share_contexts = true;
    heap_by_site = false;
  }
