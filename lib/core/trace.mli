(** Structured tracing: timestamped spans for the phases of the
    analysis, attributing wall-clock time to invocation-graph nodes,
    fixpoint iterations, call mapping and the result cache.

    Where {!Metrics} answers "how much work did the run perform",
    [Trace] answers "{e where} did the time go": every instrumented
    region — one invocation-graph node evaluation, one body pass of a
    fixed point, one loop-head iteration, one [map_call]/[unmap_call],
    one cache load/store, one pool task — records a {!span} carrying
    the function name, the context digest and the points-to set sizes
    involved. Spans can be exported as Chrome trace-event JSON (open in
    {{:https://ui.perfetto.dev}Perfetto} or [about://tracing]) or
    aggregated into a self-profile table ({!pp_profile}).

    Tracing is {e off} by default and the disabled path is a single
    atomic load per instrumentation site ({!start} returns without
    reading the clock), so the hot paths of the engine stay unperturbed
    — the bench harness guards this and the test suite asserts analysis
    results are bit-identical with tracing on and off.

    Domain safety mirrors {!Metrics}: each domain appends to its own
    ring buffer (via [Domain.DLS]), so {!Pool} workers never contend;
    {!collect} merges the rings of every domain that recorded spans.
    Collect only while no worker is actively tracing (e.g. after
    {!Pool.with_pool} has returned, which joins the workers). *)

(** What an instrumented region was doing. *)
type kind =
  | Analysis  (** one whole {!Analysis.analyze} run *)
  | Node  (** evaluation of one invocation-graph node (Figure 4) *)
  | Body  (** one pass over a function body (a fixpoint iteration of a
              recursive node re-records this span) *)
  | Loop  (** one loop-head fixed-point iteration (Figure 1) *)
  | Map  (** {!Map_unmap.map_call} at a call site *)
  | Unmap  (** {!Map_unmap.unmap_call} back from a callee *)
  | Cache_load  (** {!Persist.load} of a persisted result *)
  | Cache_store  (** {!Persist.save} of a result *)
  | Task  (** one task executed by a {!Pool} domain *)
  | Widen
      (** the graceful-degradation rerun of an analysis whose budget was
          exhausted ({!Guard}) — wraps the whole widened pass *)
  | Request  (** one {!Serve} protocol request, parse to reply *)
  | Dirty
      (** incremental re-analysis: the content-hash diff and dirty-set
          computation over the persisted v3 summaries ({!Persist}) *)
  | Replay
      (** incremental re-analysis: one memoized (input, output) pair
          served from a persisted summary instead of a body fixpoint *)
  | Slice
      (** demand mode: one {!Demand.plan} computation (the invocation-
          graph slice for a query's seed function) *)
  | Demand
      (** demand mode: one whole {!Analysis.analyze_demand} run over a
          planned slice *)
  | Checkpoint
      (** graceful degradation: the snapshot of the aborted precise
          run's partial per-function IN/OUT state, taken when a
          {!Guard} budget trips and seeded into the widened rerun
          ([sp_stmts] carries the number of seeded function slots) *)
  | Oom
      (** a {!Guard} heap-ceiling trip ([--max-heap-mb]): the precise
          run exceeded its memory budget and degraded instead of dying
          ([sp_in] carries the sampled heap size in MB) *)

val kind_name : kind -> string
(** Lower-case stable name ([node], [map], [cache-load], ...); used as
    the [cat] field of the JSON export and in the profile table. *)

type span = {
  sp_kind : kind;
  sp_name : string;  (** function name, file, or phase label *)
  sp_ctx : int;
      (** context digest — {!Pts.hash} of the mapped input for [Node]
          spans, 0 when not applicable *)
  sp_dom : int;  (** id of the domain that recorded the span *)
  sp_t0 : float;  (** start, monotonic seconds ({!Mono.now_s}) *)
  sp_t1 : float;  (** end, monotonic seconds *)
  sp_stmts : int;  (** statements in the processed body, 0 if n/a *)
  sp_in : int;  (** cardinality of the input points-to set, -1 if n/a *)
  sp_out : int;  (** cardinality of the output points-to set, -1 if n/a *)
}

(** {1 Sink control} *)

val on : unit -> bool
(** Whether spans are being recorded. One atomic load — this is the
    whole cost of an instrumentation site while tracing is disabled. *)

val enable : ?capacity:int -> unit -> unit
(** Start recording, with [capacity] spans per domain (default
    [1 lsl 20]). Spans past the capacity are dropped (newest-first) and
    counted in {!dropped}. Enabling does not clear previous spans; call
    {!clear} for a fresh recording. *)

val disable : unit -> unit

val clear : unit -> unit
(** Drop every recorded span and reset the drop counts of all domains.
    Call only while no other domain is recording. *)

(** {1 Recording} *)

val start : unit -> float
(** The clock value to pass to {!emit} as [t0] — or [0.] when tracing
    is disabled, in which case the matching {!emit} is a no-op (so a
    region enabled mid-span is never half-recorded). *)

val emit :
  kind ->
  name:string ->
  ?ctx:int ->
  ?stmts:int ->
  ?pts_in:int ->
  ?pts_out:int ->
  t0:float ->
  unit ->
  unit
(** Record the span that began at [t0] (from {!start}) and ends now,
    into the calling domain's ring. No-op when disabled or [t0 = 0.].
    Call sites should guard with [if Trace.on () then ...] so argument
    construction also costs nothing when disabled. *)

(** {1 Collection} *)

val collect : unit -> span list
(** Every span recorded since the last {!clear}, grouped by domain in
    registration order; within one domain, spans appear in completion
    (end-time) order, so a span's children always precede it. *)

val dropped : unit -> int
(** Spans dropped across all domains since the last {!clear} because a
    ring reached capacity. *)

(** {1 Export: Chrome trace-event JSON} *)

val json_string : span list -> string
(** The spans as a Chrome trace-event JSON object
    ([{"traceEvents": [...], ...}]): one complete ("ph":"X") event per
    span with microsecond [ts]/[dur] relative to the earliest span, the
    domain as [tid], and name/context/sizes in [args]. Loadable in
    Perfetto and [about://tracing]. See docs/OBSERVABILITY.md for the
    schema. *)

val save_json : string -> span list -> unit
(** Write {!json_string} to a file. *)

(** {1 Self-profile} *)

type prof_row = {
  pr_kind : kind;
  pr_name : string;
  pr_count : int;  (** spans aggregated into this row *)
  pr_cum : float;  (** cumulative seconds (sum of span durations) *)
  pr_self : float;
      (** self seconds: cumulative minus time in nested spans *)
}

val profile : span list -> prof_row list
(** Spans aggregated by (kind, name). Self time subtracts the duration
    of directly nested spans (same domain), so the self column of all
    rows sums to the root spans' cumulative time. *)

val coverage : span list -> float
(** Fraction (0–1) of the traced wall-clock covered by root spans: per
    domain, the summed duration of spans with no enclosing span over
    the extent from first span start to last span end. 1.0 when there
    are no spans. *)

val iteration_histogram : span list -> kind * kind -> (int * int) list
(** [iteration_histogram spans (outer, inner)]: for every [outer] span,
    count the [inner] spans directly nested in it; returns the sorted
    [(count, spans-with-that-count)] histogram. Used with
    [(Node, Body)] (recursion fixpoint re-evaluations per node) and
    [(Body, Loop)] (loop-head iterations per body pass). *)

val pp_profile : ?top:int -> Format.formatter -> span list -> unit
(** The self-profile report: span totals and coverage, the top-[top]
    (default 15) rows by cumulative and by self time, and the fixpoint
    iteration histograms. *)
