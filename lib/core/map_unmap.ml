(** Mapping and unmapping of points-to information across procedure
    calls (paper §4.1).

    [map_call] prepares the input points-to set of a callee from the
    caller's set at the call site: formals inherit the relationships of
    the corresponding actuals, globals keep their relationships, local
    pointers are initialized to NULL, and every caller location that is
    reachable from the callee but not in its scope (an {e invisible}
    variable) is represented by a symbolic name — [Sym l] for the
    invisible reached by dereferencing callee location [l].

    The invariants of §4.1 are enforced:

    - an invisible variable is represented by at most one symbolic name
      (Property 3.1) — the first assignment wins, and invisibles involved
      in definite relationships are assigned before those involved in
      possible ones (the paper's accuracy heuristic);
    - a symbolic name may represent several invisibles; in that case
      relationships {e to} it are demoted to possible, and relationships
      {e from} it are definite only when definite for every represented
      invisible (computed with a per-cell merge).

    [unmap_call] maps the callee's output back: relationships of
    unreachable caller locations persist from the call-site set;
    relationships of globals and symbolic names are translated back
    through the recorded representation, demoting pairs whose target
    resolves to several caller locations; pairs involving escaping callee
    locals are dropped. *)

module Ir = Simple_ir.Ir
open Cfront

(** The abstraction of one actual argument, as seen by the mapping. *)
type actual =
  | Aptr of Lval.locset  (** pointer argument: the locations it points to *)
  | Aagg of Loc.t  (** aggregate passed by value: its location *)
  | Aother  (** non-pointer scalar *)

type state = {
  tenv : Tenv.t;
  caller_fn : Ir.func;
  input : Pts.t;
  fwd : (Loc.t, Loc.t) Hashtbl.t;  (** caller invisible -> symbolic name *)
  reps : (Loc.t, Loc.t list) Hashtbl.t;  (** symbolic name -> invisibles *)
  cells : (Loc.t, Loc.t list) Hashtbl.t;  (** callee cell -> caller cells *)
  cell_order : Loc.t list ref;  (** callee cells in discovery order *)
  visited : (Loc.t * Loc.t, unit) Hashtbl.t;
}

(** Information recorded in the invocation-graph node. *)
type info = {
  i_fwd : Loc.t Loc.Map.t;
  i_reps : Loc.t list Loc.Map.t;
}

let visible l = Loc.is_global_visible l

let rep_count info l =
  match Loc.Map.find_opt l info.i_reps with Some reps -> List.length reps | None -> 1

(* ------------------------------------------------------------------ *)
(* Forward translation and exploration                                *)
(* ------------------------------------------------------------------ *)

let rec translate_with ~find (l : Loc.t) : Loc.t option =
  if visible l then Some l
  else
    match find l with
    | Some s -> Some s
    | None -> (
        match l with
        | Loc.Fld (b, f) -> Option.map (fun b -> Loc.fld b f) (translate_with ~find b)
        | Loc.Head b -> Option.map Loc.head (translate_with ~find b)
        | Loc.Tail b -> Option.map Loc.tail (translate_with ~find b)
        | _ -> None)

let translate_fwd st l = translate_with ~find:(Hashtbl.find_opt st.fwd) l

let info_translate info l = translate_with ~find:(fun l -> Loc.Map.find_opt l info.i_fwd) l

(** Assign (or retrieve) the symbolic name for invisible [t], reached by
    dereferencing callee cell [parent]. Beyond the symbolic-depth bound
    the enclosing symbolic location summarizes (safe: its representation
    set grows, so its relationships weaken to possible). *)
let assign_sym st ~parent t =
  match Hashtbl.find_opt st.fwd t with
  | Some s -> s
  | None ->
      let max_depth = st.tenv.Tenv.opts.Options.max_sym_depth in
      let sym =
        if Loc.sym_depth parent < max_depth then Loc.sym parent
        else
          let rec enclosing = function
            | Loc.Sym _ as l -> Loc.intern l
            | Loc.Fld (b, _) | Loc.Head b | Loc.Tail b -> enclosing b
            | _ -> Loc.sym parent
          in
          enclosing parent
      in
      Hashtbl.replace st.fwd t sym;
      let old = Option.value ~default:[] (Hashtbl.find_opt st.reps sym) in
      Hashtbl.replace st.reps sym (old @ [ t ]);
      sym

let record_cell st cl c =
  (if not (Hashtbl.mem st.cells cl) then st.cell_order := cl :: !(st.cell_order));
  let old = Option.value ~default:[] (Hashtbl.find_opt st.cells cl) in
  if not (List.exists (Loc.equal c) old) then Hashtbl.replace st.cells cl (old @ [ c ])

(** Rebase caller location [l] (a path extending [c]) onto callee
    location [cl]. *)
let rec rebase ~from ~onto l =
  if Loc.equal l from then onto
  else
    match l with
    | Loc.Fld (b, f) -> Loc.fld (rebase ~from ~onto b) f
    | Loc.Head b -> Loc.head (rebase ~from ~onto b)
    | Loc.Tail b -> Loc.tail (rebase ~from ~onto b)
    | _ -> l

let sort_definite_first targets =
  List.stable_sort
    (fun (_, c1) (_, c2) ->
      match (c1, c2) with
      | Pts.D, Pts.P -> -1
      | Pts.P, Pts.D -> 1
      | (Pts.D | Pts.P), _ -> 0)
    targets

(** Map one target of a cell: returns its callee-side name, creating a
    symbolic name when it is invisible, and recursively explores it. *)
let rec map_target st ~parent (t : Loc.t) : Loc.t =
  if visible t then begin
    if Loc.equal t Loc.Heap then explore st Loc.Heap Loc.Heap;
    t
  end
  else
    match translate_fwd st t with
    | Some tm ->
        (* already translated (directly or through an enclosing path) *)
        (match tm with Loc.Sym _ -> explore st tm t | _ -> ());
        tm
    | None ->
        let sym = assign_sym st ~parent t in
        explore st sym t;
        sym

(** Explore the object at caller location [c], represented by callee
    location [cl]: record its pointer cells and map all their targets. *)
and explore st (cl : Loc.t) (c : Loc.t) : unit =
  if not (Hashtbl.mem st.visited (cl, c)) then begin
    Hashtbl.replace st.visited (cl, c) ();
    let cells =
      match Tenv.loc_type st.tenv st.caller_fn c with
      | Some ty -> Tenv.pointer_cells st.tenv c ty
      | None -> (
          (* the heap blob and allocation sites have untyped contents *)
          match c with
          | Loc.Heap | Loc.Site _ -> [ (c, Ctype.Ptr Ctype.Void) ]
          | _ -> [])
    in
    List.iter
      (fun (c_cell, _ty) ->
        let cl_cell = rebase ~from:c ~onto:cl c_cell in
        record_cell st cl_cell c_cell;
        let targets = sort_definite_first (Pts.targets c_cell st.input) in
        List.iter (fun (t, _d) -> ignore (map_target st ~parent:cl_cell t)) targets)
      cells
  end

(* ------------------------------------------------------------------ *)
(* Building the callee input                                          *)
(* ------------------------------------------------------------------ *)

let make_state tenv caller_fn input =
  {
    tenv;
    caller_fn;
    input;
    fwd = Hashtbl.create 16;
    reps = Hashtbl.create 16;
    cells = Hashtbl.create 32;
    cell_order = ref [];
    visited = Hashtbl.create 32;
  }

let info_of_state st : info =
  {
    i_fwd = Hashtbl.fold Loc.Map.add st.fwd Loc.Map.empty;
    i_reps = Hashtbl.fold Loc.Map.add st.reps Loc.Map.empty;
  }

(** NULL-initialize the pointer cells of a location of type [ty]:
    singular cells definitely point to NULL, summary cells possibly. *)
let null_init tenv l ty acc =
  List.fold_left
    (fun acc (cell, _) ->
      Pts.add cell Loc.Null (if Loc.singular cell then Pts.D else Pts.P) acc)
    acc
    (Tenv.pointer_cells tenv l ty)

(** Compute the callee's input set and map information for a call.
    [actuals] must be aligned with [callee.fn_params] (missing trailing
    actuals are allowed for variadic-style calls and map to NULL). *)
let map_call (tenv : Tenv.t) ~(caller_fn : Ir.func) ~(callee : Ir.func) ~(input : Pts.t)
    ~(actuals : actual list) : Pts.t * info =
  let m = Metrics.cur () in
  m.Metrics.map_calls <- m.Metrics.map_calls + 1;
  let t0 = Metrics.now () in
  let tr0 = Trace.start () in
  let st = make_state tenv caller_fn input in
  (* roots: globals and the heap *)
  List.iter
    (fun (g, _ty) ->
      let gl = Loc.var g Loc.Kglobal in
      explore st gl gl)
    tenv.Tenv.prog.Ir.globals;
  explore st Loc.Heap Loc.Heap;
  (* with heap_by_site, each allocation site present in the caller's set
     is its own visible root *)
  Pts.iter
    (fun src _ _ ->
      match Loc.root src with
      | Loc.Site _ as site -> explore st site site
      | _ -> ())
    input;
  (* formals: collect (formal cell, target locset) pairs *)
  let formal_values : (Loc.t * (Loc.t * Pts.cert) list) list ref = ref [] in
  let n_params = List.length callee.Ir.fn_params in
  let actuals =
    if List.length actuals >= n_params then actuals
    else actuals @ List.init (n_params - List.length actuals) (fun _ -> Aother)
  in
  List.iter2
    (fun (pname, pty) actual ->
      let ploc = Loc.var pname Loc.Kparam in
      match (Ctype.decay pty, actual) with
      | Ctype.Ptr _, Aptr targets ->
          let targets = sort_definite_first (Lval.to_list targets) in
          let mapped =
            List.map (fun (t, d) -> (map_target st ~parent:ploc t, d)) targets
          in
          formal_values := (ploc, mapped) :: !formal_values
      | _, Aagg aloc ->
          (* aggregate by value: each pointer cell of the formal inherits
             from the corresponding cell of the actual *)
          let fcells = Tenv.pointer_cells tenv ploc pty in
          List.iter
            (fun (fcell, _) ->
              let acell = rebase ~from:ploc ~onto:aloc fcell in
              let targets = sort_definite_first (Pts.targets acell st.input) in
              let mapped =
                List.map (fun (t, d) -> (map_target st ~parent:fcell t, d)) targets
              in
              formal_values := (fcell, mapped) :: !formal_values)
            fcells
      | Ctype.Ptr _, Aother ->
          formal_values := (ploc, [ (Loc.Null, Pts.D) ]) :: !formal_values
      | _, (Aother | Aptr _) -> ())
    callee.Ir.fn_params
    (List.filteri (fun i _ -> i < n_params) actuals);
  let info = info_of_state st in
  let demote tm d = if rep_count info tm > 1 then Pts.P else d in
  (* explored cells, merged per callee cell over the represented caller
     cells *)
  let func_input = ref Pts.empty in
  (* a target kept verbatim by the forward translation: visible, hence
     its own callee-side name, and (not being a symbolic name) never
     subject to multi-representation demotion *)
  let identity_tgt t _d = visible t && rep_count info t = 1 in
  List.iter
    (fun cl_cell ->
      let callers = Option.value ~default:[] (Hashtbl.find_opt st.cells cl_cell) in
      let per_caller c =
        List.fold_left
          (fun acc (t, d) ->
            match translate_fwd st t with
            | Some tm -> Pts.add_weak cl_cell tm (demote tm d) acc
            | None -> acc)
          Pts.empty (Pts.targets c st.input)
      in
      match callers with
      | [ c ]
        when Loc.equal cl_cell c && Loc.Map.for_all identity_tgt (Pts.tgt_map c st.input)
        ->
          (* visible cell, every target visible: the caller's submap
             transfers wholesale, shared, with no per-pair translation *)
          func_input := Pts.add_map cl_cell (Pts.tgt_map c st.input) !func_input
      | _ ->
          let merged =
            match List.map per_caller callers with
            | [] -> Pts.empty
            | s :: rest -> List.fold_left Pts.merge s rest
          in
          func_input := Pts.union_override !func_input merged)
    (List.rev !(st.cell_order));
  (* formal pairs *)
  List.iter
    (fun (fcell, mapped) ->
      let fi =
        if mapped = [] then Pts.add fcell Loc.Null Pts.D !func_input
        else
          List.fold_left
            (fun acc (tm, d) -> Pts.add_weak fcell tm (demote tm d) acc)
            !func_input mapped
      in
      func_input := fi)
    !formal_values;
  (* NULL-initialize callee pointer locals and the return slot *)
  List.iter
    (fun (n, ty) ->
      func_input := null_init tenv (Loc.var n Loc.Klocal) ty !func_input)
    callee.Ir.fn_locals;
  func_input :=
    null_init tenv (Loc.ret callee.Ir.fn_name) (Ctype.decay callee.Ir.fn_ret) !func_input;
  (match callee.Ir.fn_ret with
  | Ctype.Su _ ->
      func_input := null_init tenv (Loc.ret callee.Ir.fn_name) callee.Ir.fn_ret !func_input
  | _ -> ());
  m.Metrics.t_map <- m.Metrics.t_map +. (Metrics.now () -. t0);
  if Trace.on () then
    Trace.emit Trace.Map ~name:callee.Ir.fn_name ~pts_in:(Pts.cardinal input)
      ~pts_out:(Pts.cardinal !func_input) ~t0:tr0 ();
  (!func_input, info)

(* ------------------------------------------------------------------ *)
(* Unmapping                                                          *)
(* ------------------------------------------------------------------ *)

(** Resolve a callee-side location back to the caller locations it
    represents. Locations rooted in callee locals/formals/return slot
    resolve to nothing (escaping callee storage is dropped). *)
let rec resolve_back (info : info) (l : Loc.t) : Loc.t list =
  match l with
  | _ when visible l && not (Loc.Map.mem l info.i_reps) -> [ l ]
  | Loc.Sym _ -> (
      match Loc.Map.find_opt l info.i_reps with Some reps -> reps | None -> [])
  | Loc.Fld (b, f) -> List.map (fun b -> Loc.fld b f) (resolve_back info b)
  | Loc.Head b -> List.map Loc.head (resolve_back info b)
  | Loc.Tail b -> List.map Loc.tail (resolve_back info b)
  | Loc.Var _ | Loc.Ret _ -> []
  | Loc.Heap | Loc.Site _ | Loc.Null | Loc.Str | Loc.Fun _ -> [ l ]

(** Merge two target maps with Figure 1's merge semantics: a target is
    definite only when definite in both (used when several callee-side
    names resolve back to the same caller location — their views must be
    reconciled conservatively). *)
let targets_meet (a : Pts.cert Loc.Map.t) (b : Pts.cert Loc.Map.t) =
  Loc.Map.merge
    (fun _ ca cb ->
      match (ca, cb) with
      | None, None -> None
      | Some _, None | None, Some _ -> Some Pts.P
      | Some ca, Some cb -> Some (Pts.cert_and ca cb))
    a b

(** Output points-to set at the call site, from the callee's output.
    [merged] marks calls evaluated with merged per-function contexts
    (the context-insensitive ablation and the widened degradation
    path): there the callee's output mixes facts from every caller, so
    an untranslatable target — a local name that may belong to another
    frame, not just the callee's dead storage — still warrants
    retaining the cell's pre-call targets. *)
let unmap_call ?(callee = "?") ?(merged = false) (_tenv : Tenv.t) ~(input : Pts.t)
    ~(output : Pts.t) ~(info : info) : Pts.t =
  let m = Metrics.cur () in
  m.Metrics.unmap_calls <- m.Metrics.unmap_calls + 1;
  let t0 = Metrics.now () in
  let tr0 = Trace.start () in
  (* relationships of caller locations out of the callee's reach persist *)
  let persistent =
    Pts.filter_src (fun src -> Option.is_none (info_translate info src)) input
  in
  (* per caller source: the translated target maps of every callee-side
     source resolving to it *)
  let per_src : (Loc.t, Pts.cert Loc.Map.t list) Hashtbl.t = Hashtbl.create 32 in
  let seen_sources = Hashtbl.create 32 in
  Pts.iter
    (fun src _ _ ->
      if not (Hashtbl.mem seen_sources src) then begin
        Hashtbl.replace seen_sources src ();
        let srcs = resolve_back info src in
        if srcs <> [] then begin
          let m0 = Pts.tgt_map src output in
          (* a symbolic target with no representation at this site comes
             from another call path whose facts were merged into the
             callee's set (context-insensitive slots, approximate-node
             reuse). It cannot be translated here, but it witnesses that
             along some path the cell kept or received a caller-invisible
             value — so the cell may still hold any of its pre-call
             targets. Dropping the pair outright loses that (observed as
             concrete pairs vanishing across widened-mode calls on the
             generated corpus); instead the caller's old targets for the
             cell are retained, demoted to possible. *)
          let dropped_sym = ref false in
          let tmap =
            (* every target resolves back to itself: the callee's submap
               is already the translated target map — share it *)
            if
              Loc.Map.for_all
                (fun t _ -> visible t && not (Loc.Map.mem t info.i_reps))
                m0
            then m0
            else
              Loc.Map.fold
                (fun tgt d acc ->
                  let tgts = resolve_back info tgt in
                  if tgts = [] && (merged || Loc.sym_depth tgt > 0) then
                    dropped_sym := true;
                  let d = if List.length tgts > 1 then Pts.P else d in
                  List.fold_left
                    (fun acc t ->
                      Loc.Map.update t
                        (function None -> Some d | Some d0 -> Some (Pts.cert_and d0 d))
                        acc)
                    acc tgts)
                m0 Loc.Map.empty
          in
          List.iter
            (fun s ->
              let old = Option.value ~default:[] (Hashtbl.find_opt per_src s) in
              let maps =
                if !dropped_sym then
                  let retained = Loc.Map.map (fun _ -> Pts.P) (Pts.tgt_map s input) in
                  if Loc.Map.is_empty retained then tmap :: old
                  else tmap :: retained :: old
                else tmap :: old
              in
              Hashtbl.replace per_src s maps)
            srcs
        end
      end)
    output;
  let result =
    Hashtbl.fold
      (fun s tmaps acc ->
        let merged =
          match tmaps with
          | [] -> Loc.Map.empty
          | m :: rest -> List.fold_left targets_meet m rest
        in
        Pts.add_map s merged acc)
      per_src persistent
  in
  m.Metrics.t_unmap <- m.Metrics.t_unmap +. (Metrics.now () -. t0);
  if Trace.on () then
    Trace.emit Trace.Unmap ~name:callee ~pts_in:(Pts.cardinal output)
      ~pts_out:(Pts.cardinal result) ~t0:tr0 ();
  result

(** The caller-side targets of the callee's return value. *)
let return_targets ~(output : Pts.t) ~(info : info) ~(callee : string) : (Loc.t * Pts.cert) list
    =
  List.concat_map
    (fun (t, d) ->
      let tgts = resolve_back info t in
      let d = if List.length tgts > 1 then Pts.P else d in
      List.map (fun t -> (t, d)) tgts)
    (Pts.targets (Loc.ret callee) output)

(** For aggregate returns: every cell of the return slot (a path under
    [Ret callee]) with its caller-side targets. The path is returned as a
    function that grafts it onto a caller location. *)
let return_cell_targets ~(output : Pts.t) ~(info : info) ~(callee : string) :
    ((Loc.t -> Loc.t) * (Loc.t * Pts.cert) list) list =
  let ret = Loc.ret callee in
  let rec graft_of (l : Loc.t) : (Loc.t -> Loc.t) option =
    if Loc.equal l ret then Some (fun base -> base)
    else
      match l with
      | Loc.Fld (b, f) -> Option.map (fun g base -> Loc.fld (g base) f) (graft_of b)
      | Loc.Head b -> Option.map (fun g base -> Loc.head (g base)) (graft_of b)
      | Loc.Tail b -> Option.map (fun g base -> Loc.tail (g base)) (graft_of b)
      | _ -> None
  in
  Pts.fold
    (fun src _ _ acc ->
      match graft_of src with
      | Some graft ->
          (* one entry per distinct path: compare grafts structurally by
             applying them to a dummy base *)
          if List.exists (fun (g, _) -> Loc.equal (g Loc.Null) (graft Loc.Null)) acc then
            acc
          else
            let tgts =
              List.concat_map
                (fun (t, d) ->
                  let ts = resolve_back info t in
                  let d = if List.length ts > 1 then Pts.P else d in
                  List.map (fun t -> (t, d)) ts)
                (Pts.targets src output)
            in
            (graft, tgts) :: acc
      | None -> acc)
    output []
