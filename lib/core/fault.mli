(** Deterministic fault injection for the robustness test and chaos
    harnesses.

    Production code is sprinkled with a handful of {e injection points}
    — places where a fault can be switched on deterministically instead
    of waiting for the real world to produce it:

    - {!Slow_fixpoint}: every body pass of a context-sensitive node
      evaluation sleeps ([PTAN_FAULT_SLEEP_MS], default 50 ms),
      optionally only in the function named by [PTAN_FAULT_FN] — a
      pathological input that hangs the precise fixed point. The
      injected sleep does {e not} apply to the widened
      (context-insensitive) degradation path, which models the
      approximation escaping the blowup.
    - {!Corrupt_cache}: {!Persist.save} flips one byte of the cache file
      after publishing it — torn/corrupt storage.
    - {!Task_exn}: every {!Pool} task raises {!Injected} before running
      — a crashing worker.
    - {!Expired_deadline}: {!Guard.make} starts with the wall-clock
      deadline already in the past — a request that arrives out of
      budget.

    Injection points are off by default and cost one lazy force plus an
    [Atomic.get] when consulted. Configure the whole process with the
    environment ([PTAN_FAULTS="slow-fixpoint,task-exn"], read once,
    lazily; unknown names fail loudly), or programmatically with {!set}
    / {!with_point} from tests. See docs/ROBUSTNESS.md. *)

type point =
  | Slow_fixpoint  (** sleep per context-sensitive fixpoint body pass *)
  | Corrupt_cache  (** flip a byte of every saved cache file *)
  | Task_exn  (** raise {!Injected} from every pool task *)
  | Expired_deadline  (** new guards start past their deadline *)
  | Alloc_spike
      (** {!Guard}'s heap sampling reads an impossibly large live size:
          any [--max-heap-mb] ceiling trips on the next check — a
          deterministic stand-in for a real allocation blowup *)
  | Worker_kill
      (** {!Serve} workers SIGKILL themselves as a request batch
          starts — an OOM-killed daemon, as seen by its supervisor.
          [PTAN_FAULT_KILL_FILE] arms it per-request: the kill fires
          only while that file exists and unlinks it on firing *)

(** Raised by the {!Task_exn} injection. *)
exception Injected of string

val point_name : point -> string
(** ["slow-fixpoint"], ["corrupt-cache"], ["task-exn"],
    ["expired-deadline"], ["alloc-spike"], ["worker-kill"] — the names
    accepted by [PTAN_FAULTS]. *)

val point_of_name : string -> point option
val all_points : point list

val enabled : point -> bool
(** Is the injection on? First call reads the environment. *)

val set : ?fn:string -> ?sleep_ms:float -> point -> bool -> unit
(** Switch an injection on or off; [fn] retargets {!Slow_fixpoint} to
    one function, [sleep_ms] adjusts its sleep. *)

val with_point : ?fn:string -> ?sleep_ms:float -> point -> (unit -> 'a) -> 'a
(** Run with an injection enabled, restoring the previous configuration
    afterwards (including on raise). *)

val target_fn : unit -> string option
(** {!Slow_fixpoint}'s function filter ([PTAN_FAULT_FN]); [None] means
    every function. *)

val sleep_s : unit -> float
(** {!Slow_fixpoint}'s sleep, seconds. *)

val maybe_slow_fixpoint : fn:string -> unit
(** The {!Slow_fixpoint} site (engine, per body pass). *)

val maybe_task_exn : unit -> unit
(** The {!Task_exn} site (pool, before each task). *)

val maybe_corrupt_file : string -> unit
(** The {!Corrupt_cache} site (persist, after the atomic rename). *)

val set_kill_file : string option -> unit
(** Override {!Worker_kill}'s arm file ([PTAN_FAULT_KILL_FILE]). *)

val maybe_worker_kill : unit -> unit
(** The {!Worker_kill} site (serve, as a request batch starts). *)
