/* Monotonic clock binding for Mono (mono.mli).
 *
 * OCaml 5.1's Unix library exposes only gettimeofday, which jumps on
 * NTP steps and manual clock changes; deadlines and elapsed-time
 * measurements must come from CLOCK_MONOTONIC instead. One stub,
 * returning nanoseconds as int64 so the OCaml side owns the unit
 * conversions. */

#include <time.h>
#include <stdint.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>

CAMLprim value ptan_mono_ns(value unit)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
