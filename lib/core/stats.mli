(** Statistics over analysis results, reproducing the measurements of
    the paper's Tables 2–6 (§6). All statistics exclude NULL-target
    pairs, matching the paper. *)

module Ir = Simple_ir.Ir

val no_null : Pts.t -> Pts.t

(** {2 Engine cost counters}

    Per-phase timings and operation counts recorded while the result was
    computed (see {!Metrics}): body passes, fixpoint iterations, kill /
    weaken / gen applications, merge and equality fast-path rates,
    map/unmap time, memo hit rate. *)

val engine_metrics : Analysis.result -> Metrics.t
val pp_engine_metrics : Format.formatter -> Analysis.result -> unit

(** {2 Table 2: benchmark characteristics} *)

type characteristics = {
  c_stmts : int;  (** statements in SIMPLE *)
  c_min_vars : int;  (** min abstract-stack size over functions *)
  c_max_vars : int;
}

(** Abstract-stack size of one function: visible named variables, their
    points-to-relevant parts, and the symbolic/special locations observed
    while analyzing it. *)
val abstract_stack_size : Analysis.result -> Ir.func -> int

val characteristics : Analysis.result -> characteristics

(** {2 Table 3: indirect-reference resolution} *)

type indirect_ref = {
  ir_stmt : int;
  ir_base : Loc.t;  (** the dereferenced pointer *)
  ir_array_form : bool;  (** x[i][j]-style vs *x-style (Table 3's pairs) *)
  ir_targets : (Loc.t * Pts.cert) list;  (** NULL excluded *)
}

val collect_indirect_refs : Analysis.result -> indirect_ref list

(** Scalar-form / array-form counter pair (the double columns). *)
type pair_count = { scalar : int; array : int }

val pair_total : pair_count -> int

type indirect_stats = {
  one_d : pair_count;  (** definitely one location *)
  one_p : pair_count;  (** possibly one (the other being NULL) *)
  two_p : pair_count;
  three_p : pair_count;
  four_plus_p : pair_count;
  ind_refs : int;
  scalar_rep : int;  (** replaceable by a direct reference *)
  to_stack : int;
  to_heap : int;
  total_pairs : int;
  avg : float;  (** average locations per indirect reference *)
}

(** Is a single definite target replaceable by a direct reference (not
    invisible, heap or string storage — paper footnote 7)? *)
val replaceable : Loc.t -> bool

val indirect_stats : Analysis.result -> indirect_stats

(** {2 Table 4: from/to categorization} *)

type categorization = {
  from_lo : int;
  from_gl : int;
  from_fp : int;
  from_sy : int;
  to_lo : int;
  to_gl : int;
  to_fp : int;
  to_sy : int;
}

val categorize : Analysis.result -> categorization

(** {2 Table 5: general points-to statistics} *)

type general_stats = {
  stack_to_stack : int;
  stack_to_heap : int;
  heap_to_heap : int;
  heap_to_stack : int;  (** 0 across the paper's whole suite *)
  avg_per_stmt : float;
  max_per_stmt : int;
}

val general : Analysis.result -> general_stats

(** {2 Table 6: invocation graph statistics} *)

type ig_stats = {
  ig_nodes : int;
  call_sites : int;
  n_funcs : int;  (** functions actually called *)
  n_recursive : int;
  n_approximate : int;
  avg_per_call_site : float;
  avg_per_func : float;
}

val ig_stats : Analysis.result -> ig_stats
