(** Top-level driver for the context-sensitive interprocedural points-to
    analysis.

    [analyze] (or the [of_string]/[of_file] conveniences, which run the
    front end and simplifier first) computes the full interprocedural
    fixed point — invocation graph construction, map/unmap of points-to
    information across calls, function-pointer resolution — and returns
    a {!result}: the self-contained value every consumer works from
    (statistics in {!Stats}, alias pairs and demand queries in the
    [alias] library, pointer replacement in [transforms], the companion
    heap analysis, constant propagation).

    Results are immutable once returned and can be persisted to disk and
    loaded back bit-identically by {!Persist} — the analyze-once /
    query-many layer behind the [ptan] disk cache. *)

module Ir = Simple_ir.Ir
module Ig = Invocation_graph

(** Why and how a result was degraded: the {!Guard.trip} that aborted
    the precise run, and the budget it was running under. *)
type degradation = {
  deg_trip : Guard.trip;
  deg_budget : Guard.budget;
}

type result = {
  prog : Ir.program;
  tenv : Tenv.t;
  graph : Ig.t;  (** the complete invocation graph with stored IN/OUT
                     pairs and map information (paper §6.1) *)
  stmt_pts : (int, Pts.t) Hashtbl.t;
      (** points-to set valid at each statement (its input, merged over
          all invocation contexts) *)
  entry_output : Pts.state;  (** output set of the entry function *)
  warnings : string list;
  share_hits : int;
      (** evaluations avoided by §6 sub-tree sharing ([share_contexts]) *)
  bodies_analyzed : int;  (** function-body passes performed *)
  metrics : Metrics.t;
      (** per-phase timing and operation counters of this run (a
          snapshot of the engine's global {!Metrics.cur}) *)
  degraded : degradation option;
      (** [Some _] when a resource budget was exhausted and these tables
          come from the widened (context-insensitive, possible-only)
          rerun — still sound: every degraded table is a superset of
          what the precise run would have computed (docs/ROBUSTNESS.md) *)
  summaries : Engine.summaries;
      (** per-(function, input) summaries recorded when [analyze] was
          called with [~record_summaries:true] (empty otherwise); the
          payload of {!Persist}'s v3 summary section, replayed by later
          incremental runs (docs/INCREMENTAL.md) *)
}

(** Initial set for the entry function: global and local pointers
    NULL-initialized (paper §6), entry parameters pointing into the
    heap. *)
val initial_input : Tenv.t -> Ir.func -> Pts.t

exception No_entry of string

(** Run the analysis from [entry] (default ["main"]).

    [budget] bounds the run (see {!Guard}): when any component of the
    budget is exhausted, the analysis degrades — it reruns under the
    widened (context-insensitive, possible-only) semantics with a fresh
    deadline-only guard and returns a result marked [degraded] instead
    of raising. The widened rerun getting its own full deadline bounds
    the total wall-clock at roughly twice [b_deadline_ms].

    @raise No_entry if the entry function is not defined.
    @raise Guard.Exhausted if even the widened rerun blows the deadline.
    [record_summaries] makes the engine record a replayable summary per
    evaluated (function, input) pair into [result.summaries]; [seeded]
    supplies summaries from a previous run to replay instead of
    re-evaluating (both default off — see docs/INCREMENTAL.md). The
    widened rerun of a degraded analysis never records or replays.

    @raise Guard.Cancelled if the driver cancelled this task
    ({!Pool} timeout) — never degraded, the caller gave up. *)
val analyze :
  ?opts:Options.t ->
  ?entry:string ->
  ?budget:Guard.budget ->
  ?record_summaries:bool ->
  ?seeded:Engine.summaries ->
  Ir.program ->
  result

(** Demand-driven run over a {!Demand.plan}'s slice: the invocation
    graph is built only within the slice, defined callees outside it are
    answered by summary replay (from [seeded], when a matching entry
    exists) or by the widened skip transfer, and only the seed
    function's statement rows are recorded. For every statement of the
    plan's seed the recorded row is bit-identical to [analyze]'s — the
    argument is in docs/DEMAND.md; rows of other statements are absent.

    Falls back to the exhaustive [analyze] (counting a
    [demand_fallbacks] metric) when an evaluated indirect call resolves
    to a defined target the planning oracle missed, and runs
    exhaustively outright when [opts] disables context sensitivity.
    Unlike [analyze], this does not reset the {!Metrics} accumulator:
    the caller resets once {e before} building the plan, so the plan's
    slice counters and the run land in one epoch
    ([Alias.Demand_driver.analyze] does). Demand runs take no budget
    (no degradation path) and never record summaries — a body evaluated over a slice may skip nested calls, so
    its (input, output) pair must not seed later incremental runs; for
    the same reason [result.summaries] is empty and demand results must
    never enter the {!Persist} cache.

    @raise No_entry if the entry function is not defined. *)
val analyze_demand :
  ?opts:Options.t ->
  ?entry:string ->
  ?seeded:Engine.summaries ->
  plan:Demand.plan ->
  Ir.program ->
  result

(** Parse, simplify and analyze C source text. *)
val of_string :
  ?opts:Options.t ->
  ?entry:string ->
  ?budget:Guard.budget ->
  ?file:string ->
  string ->
  result

val of_file :
  ?opts:Options.t -> ?entry:string -> ?budget:Guard.budget -> string -> result

(** The points-to set valid at a statement ([Pts.empty] if unreached). *)
val pts_at : result -> int -> Pts.t

(** Same, with NULL-target pairs filtered (the paper's statistics
    convention, §6). *)
val pts_at_no_null : result -> int -> Pts.t
