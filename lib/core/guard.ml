(** Per-analysis resource governor (see guard.mli).

    A guard is a small mutable record consulted from the engine's
    fixed-point boundaries. The checks are deliberately cheap: an
    unlimited guard costs a few loads per call; a deadline costs one
    monotonic-clock read ({!Mono.now_s}) per fixpoint iteration.
    Deadlines deliberately do {e not} use [Unix.gettimeofday]: the
    system clock can step (NTP, manual changes) mid-analysis, which
    would trip a deadline spuriously or extend it indefinitely —
    fatal for a long-running {!Serve} daemon creating one guard per
    request.

    Cooperative cancellation rides on the same polling sites: the pool
    installs the running task's cancel flag in domain-local storage
    before the task starts, and every {!check} — budgeted or not —
    polls it, so any analysis running under {!Pool.run_list} with a
    timeout can be unwound without the driver knowing anything about
    guards. *)

type budget = {
  b_deadline_ms : float option;
  b_fuel : int option;
  b_max_locs : int option;
}

let no_budget = { b_deadline_ms = None; b_fuel = None; b_max_locs = None }

let is_no_budget b =
  b.b_deadline_ms = None && b.b_fuel = None && b.b_max_locs = None

type reason = Deadline | Fuel | Size | Nodes

let reason_name = function
  | Deadline -> "deadline"
  | Fuel -> "fuel"
  | Size -> "set-size"
  | Nodes -> "ig-nodes"

type trip = {
  t_reason : reason;
  t_where : string option;  (** innermost function under evaluation *)
  t_after_ms : float;  (** elapsed wall-clock when the budget blew *)
}

exception Exhausted of trip
exception Cancelled

type t = {
  g_budget : budget;
  g_deadline : float option;  (** absolute {!Mono.now_s} bound *)
  g_t0 : float;  (** {!Mono.now_s} at creation *)
  mutable g_where : string option;
}

let make_at ?(expired = false) budget =
  let now = Mono.now_s () in
  let deadline =
    match budget.b_deadline_ms with
    | None -> None
    | Some ms -> Some (if expired then now else now +. (ms /. 1e3))
  in
  { g_budget = budget; g_deadline = deadline; g_t0 = now; g_where = None }

let make budget = make_at ~expired:(Fault.enabled Fault.Expired_deadline) budget

let unlimited () = make_at no_budget

let of_budget = function None -> unlimited () | Some b -> make b

(** The degradation path's guard: same wall-clock allowance, measured
    afresh, no fuel or size ceilings — the widened mode has no
    exponential context machinery for them to bound, and the deadline
    stays as the backstop. Constructed directly so the
    [Expired_deadline] injection (a request {e arriving} out of budget)
    does not also starve the fallback that answers it. *)
let widened g =
  make_at ~expired:false { no_budget with b_deadline_ms = g.g_budget.b_deadline_ms }

let budget g = g.g_budget

let limited g = not (is_no_budget g.g_budget)

let at g where = g.g_where <- Some where

let elapsed_ms g = (Mono.now_s () -. g.g_t0) *. 1e3

let trip g reason =
  raise (Exhausted { t_reason = reason; t_where = g.g_where; t_after_ms = elapsed_ms g })

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                           *)
(* ------------------------------------------------------------------ *)

(* The cancel flag of the pool task running on this domain, if any.
   Owned by {!Pool}: installed before a task runs, cleared after. A
   plain ref inside DLS — only the owning domain writes it; other
   domains reach the flag itself, which is atomic. *)
let task_cancel : bool Atomic.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_task_cancel c = Domain.DLS.get task_cancel := c

let cancel_requested () =
  match !(Domain.DLS.get task_cancel) with
  | None -> false
  | Some c -> Atomic.get c

(* ------------------------------------------------------------------ *)
(* Checks                                                             *)
(* ------------------------------------------------------------------ *)

let check g =
  if cancel_requested () then raise Cancelled;
  match g.g_deadline with
  | Some d when Mono.now_s () >= d -> trip g Deadline
  | _ -> ()

let check_fuel g spent =
  match g.g_budget.b_fuel with
  | Some fuel when spent > fuel -> trip g Fuel
  | _ -> ()

let check_size g n =
  match g.g_budget.b_max_locs with
  | Some m when n > m -> trip g Size
  | _ -> ()

let check_nodes g n =
  match g.g_budget.b_max_locs with
  | Some m when n > m -> trip g Nodes
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let pp_budget ppf b =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (Fmt.str "deadline %gms") b.b_deadline_ms;
        Option.map (Fmt.str "fuel %d") b.b_fuel;
        Option.map (Fmt.str "max-locs %d") b.b_max_locs;
      ]
  in
  match parts with
  | [] -> Fmt.pf ppf "unlimited"
  | _ -> Fmt.pf ppf "%s" (String.concat ", " parts)

let pp_trip ppf t =
  Fmt.pf ppf "%s budget exhausted after %.1f ms%a" (reason_name t.t_reason) t.t_after_ms
    (Fmt.option (fun ppf fn -> Fmt.pf ppf " in '%s'" fn))
    t.t_where
