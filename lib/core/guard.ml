(** Per-analysis resource governor (see guard.mli).

    A guard is a small mutable record consulted from the engine's
    fixed-point boundaries. The checks are deliberately cheap: an
    unlimited guard costs a few loads per call; a deadline costs one
    monotonic-clock read ({!Mono.now_s}) per fixpoint iteration.
    Deadlines deliberately do {e not} use [Unix.gettimeofday]: the
    system clock can step (NTP, manual changes) mid-analysis, which
    would trip a deadline spuriously or extend it indefinitely —
    fatal for a long-running {!Serve} daemon creating one guard per
    request.

    Cooperative cancellation rides on the same polling sites: the pool
    installs the running task's cancel flag in domain-local storage
    before the task starts, and every {!check} — budgeted or not —
    polls it, so any analysis running under {!Pool.run_list} with a
    timeout can be unwound without the driver knowing anything about
    guards. *)

type budget = {
  b_deadline_ms : float option;
  b_fuel : int option;
  b_max_locs : int option;
  b_max_heap_mb : int option;
}

let no_budget =
  { b_deadline_ms = None; b_fuel = None; b_max_locs = None; b_max_heap_mb = None }

let is_no_budget b =
  b.b_deadline_ms = None && b.b_fuel = None && b.b_max_locs = None
  && b.b_max_heap_mb = None

type reason = Deadline | Fuel | Size | Nodes | Heap

let reason_name = function
  | Deadline -> "deadline"
  | Fuel -> "fuel"
  | Size -> "set-size"
  | Nodes -> "ig-nodes"
  | Heap -> "heap"

type trip = {
  t_reason : reason;
  t_where : string option;  (** innermost function under evaluation *)
  t_after_ms : float;  (** elapsed wall-clock when the budget blew *)
}

exception Exhausted of trip
exception Cancelled

type t = {
  g_budget : budget;
  g_deadline : float option;  (** absolute {!Mono.now_s} bound *)
  g_t0 : float;  (** {!Mono.now_s} at creation *)
  mutable g_where : string option;
  g_heap_words : int option;  (** [b_max_heap_mb] as a word count *)
  mutable g_heap_tick : int;
      (** {!check} calls since the last heap sample — {!Gc.quick_stat}
          is cheap but not free, so the ceiling is sampled every
          [heap_sample_every] checks (the {!Gc.alarm} backstop covers
          growth between samples) *)
  g_heap_blown : bool Atomic.t;
      (** set by the {!Gc.alarm} backstop at the end of a major
          collection whose heap exceeds the ceiling; {!check} trips on
          it at the next boundary. Atomic: the alarm may run during a
          collection triggered on any domain *)
  mutable g_alarm : Gc.alarm option;
}

let heap_sample_every = 64

let heap_words_now () = (Gc.quick_stat ()).Gc.heap_words

let make_at ?(expired = false) budget =
  let now = Mono.now_s () in
  let deadline =
    match budget.b_deadline_ms with
    | None -> None
    | Some ms -> Some (if expired then now else now +. (ms /. 1e3))
  in
  let heap_words =
    Option.map (fun mb -> mb * 1024 * 1024 / (Sys.word_size / 8)) budget.b_max_heap_mb
  in
  let g =
    {
      g_budget = budget;
      g_deadline = deadline;
      g_t0 = now;
      g_where = None;
      g_heap_words = heap_words;
      g_heap_tick = 0;
      g_heap_blown = Atomic.make false;
      g_alarm = None;
    }
  in
  (match heap_words with
  | None -> ()
  | Some limit ->
      (* backstop between sampled checks: at the end of every major
         cycle, flag a blown ceiling so the next {!check} trips even if
         its sampling counter has not come around. The alarm itself
         must not raise (it runs inside the GC), so it only flips the
         flag; {!dispose} removes it *)
      g.g_alarm <-
        Some
          (Gc.create_alarm (fun () ->
               if heap_words_now () > limit then Atomic.set g.g_heap_blown true)));
  g

(** Remove the {!Gc.alarm} backstop, if any. Must be called when a
    heap-budgeted guard's analysis ends (normally or by unwinding) —
    a leaked alarm would run at every later major collection. *)
let dispose g =
  match g.g_alarm with
  | None -> ()
  | Some a ->
      g.g_alarm <- None;
      Gc.delete_alarm a

let make budget = make_at ~expired:(Fault.enabled Fault.Expired_deadline) budget

let unlimited () = make_at no_budget

let of_budget = function None -> unlimited () | Some b -> make b

(** The degradation path's guard: same wall-clock allowance, measured
    afresh, no fuel or size ceilings — the widened mode has no
    exponential context machinery for them to bound, and the deadline
    stays as the backstop. Constructed directly so the
    [Expired_deadline] injection (a request {e arriving} out of budget)
    does not also starve the fallback that answers it. *)
let widened g =
  make_at ~expired:false { no_budget with b_deadline_ms = g.g_budget.b_deadline_ms }

let budget g = g.g_budget

let limited g = not (is_no_budget g.g_budget)

let at g where = g.g_where <- Some where

let elapsed_ms g = (Mono.now_s () -. g.g_t0) *. 1e3

let trip g reason =
  raise (Exhausted { t_reason = reason; t_where = g.g_where; t_after_ms = elapsed_ms g })

(* ------------------------------------------------------------------ *)
(* Cooperative cancellation                                           *)
(* ------------------------------------------------------------------ *)

(* The cancel flag of the pool task running on this domain, if any.
   Owned by {!Pool}: installed before a task runs, cleared after. A
   plain ref inside DLS — only the owning domain writes it; other
   domains reach the flag itself, which is atomic. *)
let task_cancel : bool Atomic.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let set_task_cancel c = Domain.DLS.get task_cancel := c

let cancel_requested () =
  match !(Domain.DLS.get task_cancel) with
  | None -> false
  | Some c -> Atomic.get c

(* ------------------------------------------------------------------ *)
(* Checks                                                             *)
(* ------------------------------------------------------------------ *)

(* The heap ceiling, polled from {!check}: the {!Gc.alarm} flag first
   (the backstop caught a blown major heap between samples), then a
   direct sample every [heap_sample_every] calls. The {!Fault.Alloc_spike}
   injection makes every sample read an impossibly large heap, so any
   ceiling trips deterministically at the first boundary. *)
let check_heap g =
  match g.g_heap_words with
  | None -> ()
  | Some limit ->
      if Atomic.get g.g_heap_blown then trip g Heap;
      g.g_heap_tick <- g.g_heap_tick + 1;
      if g.g_heap_tick >= heap_sample_every || g.g_heap_tick = 1 then begin
        g.g_heap_tick <- if g.g_heap_tick = 1 then g.g_heap_tick else 0;
        let words =
          if Fault.enabled Fault.Alloc_spike then max_int else heap_words_now ()
        in
        if words > limit then trip g Heap
      end

let check g =
  if cancel_requested () then raise Cancelled;
  check_heap g;
  match g.g_deadline with
  | Some d when Mono.now_s () >= d -> trip g Deadline
  | _ -> ()

let check_fuel g spent =
  match g.g_budget.b_fuel with
  | Some fuel when spent > fuel -> trip g Fuel
  | _ -> ()

let check_size g n =
  match g.g_budget.b_max_locs with
  | Some m when n > m -> trip g Size
  | _ -> ()

let check_nodes g n =
  match g.g_budget.b_max_locs with
  | Some m when n > m -> trip g Nodes
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Printing                                                           *)
(* ------------------------------------------------------------------ *)

let pp_budget ppf b =
  let parts =
    List.filter_map Fun.id
      [
        Option.map (Fmt.str "deadline %gms") b.b_deadline_ms;
        Option.map (Fmt.str "fuel %d") b.b_fuel;
        Option.map (Fmt.str "max-locs %d") b.b_max_locs;
        Option.map (Fmt.str "max-heap %dMB") b.b_max_heap_mb;
      ]
  in
  match parts with
  | [] -> Fmt.pf ppf "unlimited"
  | _ -> Fmt.pf ppf "%s" (String.concat ", " parts)

let pp_trip ppf t =
  Fmt.pf ppf "%s budget exhausted after %.1f ms%a" (reason_name t.t_reason) t.t_after_ms
    (Fmt.option (fun ppf fn -> Fmt.pf ppf " in '%s'" fn))
    t.t_where
