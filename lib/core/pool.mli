(** Fixed-size domain pool for embarrassingly parallel driver work.

    A pool owns [jobs - 1] worker domains plus the calling domain; tasks
    submitted through {!run_list} or {!map} are drained from a shared
    queue. With [jobs = 1] no domains are spawned and tasks run inline
    on the caller, so sequential and parallel runs share one code path.

    Tasks must not share mutable state: the analysis keeps its state in
    [Domain.DLS] (metrics, interning, gensym counters), so analyzing
    distinct programs on distinct domains is safe by construction.
    Results are returned in submission order regardless of completion
    order, which is what gives parallel drivers deterministic output. *)

type t

val create : jobs:int -> t
(** [create ~jobs] makes a pool that runs up to [jobs] tasks
    concurrently ([jobs] is clamped below at 1). Workers idle until
    work is submitted and are reused across calls. *)

val jobs : t -> int
(** Concurrency the pool was created with (after clamping). *)

val run_list : ?timeout_ms:float -> t -> (unit -> 'a) list -> ('a, exn) result list
(** [run_list pool tasks] runs every task and blocks until all finish.
    The result list is in the same order as [tasks]; a task that raises
    yields [Error exn] without disturbing the others.

    [timeout_ms] arms a per-task wall-clock limit, measured from when
    the task {e starts running} (not from submission) on the monotonic
    clock ({!Mono}): the pool's watchdog domain flips the overdue
    task's cancel flag, and the task's analysis observes it at its
    next {!Guard.check} and unwinds as [Error Guard.Cancelled].
    Cancellation is cooperative — a task that never polls (pure OCaml
    with no guard sites) runs to completion. Each task honours the
    {!Fault.Task_exn} injection point.

    The watchdog is one domain per {e pool}, spawned lazily on the
    first timed call and joined by {!shutdown} — repeated timed calls
    (a server answering requests through the pool) do not spawn or
    leak domains, and every exit from [run_list], including a raising
    task or drain, removes the call's watch from the dog's registry. *)

val map_result : ?timeout_ms:float -> t -> ('a -> 'b) -> 'a list -> ('b, exn) result list
(** [map_result pool f xs] is {!run_list} specialised to a function
    applied to each element: per-element error isolation, results in
    [xs] order. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_result} with errors re-raised: the first exception (in
    submission order) is re-raised after all tasks have finished. *)

val shutdown : t -> unit
(** Join the worker domains and the watchdog (when one was spawned).
    The pool must not be used afterwards; calling [shutdown] twice is
    harmless. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
