(** Fixed-size domain pool for embarrassingly parallel driver work.

    A pool owns [jobs - 1] worker domains plus the calling domain; tasks
    submitted through {!run_list} or {!map} are drained from a shared
    queue. With [jobs = 1] no domains are spawned and tasks run inline
    on the caller, so sequential and parallel runs share one code path.

    Tasks must not share mutable state: the analysis keeps its state in
    [Domain.DLS] (metrics, interning, gensym counters), so analyzing
    distinct programs on distinct domains is safe by construction.
    Results are returned in submission order regardless of completion
    order, which is what gives parallel drivers deterministic output. *)

type t

val create : jobs:int -> t
(** [create ~jobs] makes a pool that runs up to [jobs] tasks
    concurrently ([jobs] is clamped below at 1). Workers idle until
    work is submitted and are reused across calls. *)

val jobs : t -> int
(** Concurrency the pool was created with (after clamping). *)

val run_list : t -> (unit -> 'a) list -> ('a, exn) result list
(** [run_list pool tasks] runs every task and blocks until all finish.
    The result list is in the same order as [tasks]; a task that raises
    yields [Error exn] without disturbing the others. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [run_list] specialised to a function applied to
    each element; the first exception (in submission order) is
    re-raised after all tasks have finished. *)

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards;
    calling [shutdown] twice is harmless. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)
