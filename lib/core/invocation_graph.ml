(** Invocation graphs (paper §4, Figure 2).

    Each node represents one invocation context: a path of procedure
    calls from [main]. Non-recursive call structure yields a tree built
    by depth-first traversal; recursion is approximated by matched pairs
    of a {e recursive} node (where the fixed point is computed) and an
    {e approximate} leaf (where the stored approximation is reused),
    linked by a back-edge ([partner]).

    Call sites through function pointers contribute no children at build
    time; the analysis extends the graph on the fly (§5, Figure 5) via
    {!add_indirect_child}.

    Each node memoizes the IN/OUT points-to pair of its invocation
    (Figure 4) and the map information relating callee symbolic names to
    caller locations (§4.1), for use by later interprocedural analyses. *)

module Ir = Simple_ir.Ir

type kind =
  | Ordinary
  | Recursive
  | Approximate

(** Map information deposited by the points-to analysis: each symbolic
    name (or global, identically mapped) with the caller locations it
    represents in this context. *)
type map_info = (Loc.t * Loc.t list) list

type node = {
  id : int;
  func : string;
  parent : node option;
  mutable kind : kind;
  mutable partner : node option;  (** approximate -> its recursive ancestor *)
  mutable children : (int * node) list;
      (** (call statement id, child); indirect sites may map one id to
          several children. In reverse discovery order. *)
  mutable stored_input : Pts.state;
  mutable stored_output : Pts.state;
  mutable pending : Pts.t list;
  mutable in_flight : bool;
  mutable map_info : map_info;
}

type t = {
  root : node;
  mutable n_nodes : int;
}

(* Node ids are assigned from a domain-local counter, reset by {!build}:
   an analysis runs wholly on one domain, so ids depend only on the
   program under analysis — never on what other domains (or earlier
   analyses on this one) did. *)
let node_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* Live node count of the analysis running on this domain, including
   children grown at indirect sites since {!build} — what {!Guard}'s
   [max-locs] ceiling bounds while the graph is still growing. *)
let node_count () = !(Domain.DLS.get node_counter)

let fresh_node ~func ~parent ~kind =
  let node_counter = Domain.DLS.get node_counter in
  incr node_counter;
  {
    id = !node_counter;
    func;
    parent;
    kind;
    partner = None;
    children = [];
    stored_input = Pts.bot;
    stored_output = Pts.bot;
    pending = [];
    in_flight = false;
    map_info = [];
  }

(** Nearest ancestor (or the node itself) whose function is [fname]. *)
let rec ancestor_with node fname =
  if String.equal node.func fname then Some node
  else match node.parent with None -> None | Some p -> ancestor_with p fname

let children_at node stmt_id =
  List.filter_map (fun (id, c) -> if id = stmt_id then Some c else None) node.children

let child_at_for node stmt_id fname =
  List.find_map
    (fun (id, c) -> if id = stmt_id && String.equal c.func fname then Some c else None)
    node.children

(** Direct call sites (stmt id, callee) appearing in a function body, in
    textual order. *)
let direct_call_sites (fn : Ir.func) : (int * string) list =
  List.rev
    (Ir.fold_func
       (fun acc s ->
         match s.Ir.s_desc with
         | Ir.Scall (_, Ir.Cdirect f, _) -> (s.Ir.s_id, f) :: acc
         | _ -> acc)
       [] fn)

(** Create the subtree for an invocation of [fname] as a child context of
    [parent] (or a root when [parent] is [None]): DFS over direct call
    sites, terminating each branch whose callee already appears on the
    ancestor chain with an approximate node paired to that ancestor. *)
let rec grow ?(within = fun _ -> true) (tenv : Tenv.t) ~(parent : node option)
    (fname : string) : node =
  let node = fresh_node ~func:fname ~parent ~kind:Ordinary in
  (match Tenv.find_func tenv fname with
  | None -> ()
  | Some fn ->
      List.iter
        (fun (sid, callee) ->
          if Tenv.is_defined_func tenv callee && within callee then begin
            let child = grow_child ~within tenv node callee in
            node.children <- (sid, child) :: node.children
          end)
        (direct_call_sites fn));
  node

and grow_child ?within tenv node callee =
  match ancestor_with node callee with
  | Some anc ->
      anc.kind <- Recursive;
      let child = fresh_node ~func:callee ~parent:(Some node) ~kind:Approximate in
      child.partner <- Some anc;
      child
  | None -> grow ?within tenv ~parent:(Some node) callee

(** Extend the graph at an indirect call site (Figure 5's
    updateInvocGraph): returns the (possibly pre-existing) child for
    target [fname] at statement [stmt_id] of [node]. *)
let add_indirect_child tenv node stmt_id fname : node =
  match child_at_for node stmt_id fname with
  | Some c -> c
  | None ->
      let child = grow_child tenv node fname in
      node.children <- (stmt_id, child) :: node.children;
      child

let build ?within (tenv : Tenv.t) ~(entry : string) : t =
  let node_counter = Domain.DLS.get node_counter in
  node_counter := 0;
  let root = grow ?within tenv ~parent:None entry in
  { root; n_nodes = !node_counter }

(* ------------------------------------------------------------------ *)
(* Queries and statistics                                             *)
(* ------------------------------------------------------------------ *)

let fold f acc (g : t) =
  let rec go acc n = List.fold_left (fun acc (_, c) -> go acc c) (f acc n) n.children in
  go acc g.root

let n_nodes g = fold (fun n _ -> n + 1) 0 g

let n_recursive g = fold (fun n x -> if x.kind = Recursive then n + 1 else n) 0 g

let n_approximate g = fold (fun n x -> if x.kind = Approximate then n + 1 else n) 0 g

(** Functions that appear in the graph (i.e. are actually invoked). *)
let called_funcs g =
  fold
    (fun acc n -> if List.mem n.func acc then acc else n.func :: acc)
    [] g

let kind_letter = function Ordinary -> "" | Recursive -> "-R" | Approximate -> "-A"

let rec pp_node ~indent ppf n =
  Fmt.pf ppf "%s%s%s  (#%d)@." (String.make indent ' ') n.func (kind_letter n.kind) n.id;
  List.iter (fun (_, c) -> pp_node ~indent:(indent + 2) ppf c) (List.rev n.children)

let pp ppf g = pp_node ~indent:0 ppf g.root
