(** Typing environment: maps abstract locations and SIMPLE variable
    references to C types, and classifies names (local / parameter /
    global / function). Shared by the location-set rules, the map/unmap
    machinery and the statistics. *)

open Cfront
module Ir = Simple_ir.Ir

type t = {
  prog : Ir.program;
  opts : Options.t;
  globals : (string, Ctype.t) Hashtbl.t;
  funcs : (string, Ir.func) Hashtbl.t;
  externals : (string, Ctype.func_sig) Hashtbl.t;
}

let make ?(opts = Options.default) (prog : Ir.program) : t =
  let globals = Hashtbl.create 64 in
  List.iter (fun (n, ty) -> Hashtbl.replace globals n ty) prog.Ir.globals;
  let funcs = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace funcs f.Ir.fn_name f) prog.Ir.funcs;
  let externals = Hashtbl.create 16 in
  List.iter
    (fun (n, s) -> if not (Hashtbl.mem funcs n) then Hashtbl.replace externals n s)
    prog.Ir.protos;
  { prog; opts; globals; funcs; externals }

let layouts t = t.prog.Ir.layouts

let find_func t name = Hashtbl.find_opt t.funcs name

let is_defined_func t name = Hashtbl.mem t.funcs name

let is_func_name t name = Hashtbl.mem t.funcs name || Hashtbl.mem t.externals name

let func_ret_type t name =
  match Hashtbl.find_opt t.funcs name with
  | Some f -> Some f.Ir.fn_ret
  | None -> (
      match Hashtbl.find_opt t.externals name with
      | Some s -> Some s.Ctype.ret
      | None -> None)

(** Kind and type of a name as seen from function [fn]. *)
let var_info t (fn : Ir.func) name : (Loc.var_kind * Ctype.t) option =
  match List.assoc_opt name fn.Ir.fn_params with
  | Some ty -> Some (Loc.Kparam, ty)
  | None -> (
      match List.assoc_opt name fn.Ir.fn_locals with
      | Some ty -> Some (Loc.Klocal, ty)
      | None -> (
          match Hashtbl.find_opt t.globals name with
          | Some ty -> Some (Loc.Kglobal, ty)
          | None -> None))

(** The abstract location for base variable [name] in [fn]; [None] when
    the name denotes a function (the caller should use [Loc.Fun]). *)
let base_loc t fn name : Loc.t option =
  match var_info t fn name with
  | Some (kind, _) -> Some (Loc.var name kind)
  | None -> if is_func_name t name then None else Some (Loc.var name Loc.Klocal)

(** Type of an abstract location, when one is derivable. [Heap], [Null]
    and [Str] are untyped. The function owning local/param locations must
    be supplied because location names are function-scoped. *)
let rec loc_type t (fn : Ir.func) (l : Loc.t) : Ctype.t option =
  match l with
  | Loc.Var (n, _) -> Option.map snd (var_info t fn n)
  | Loc.Fld (b, f) -> (
      match loc_type t fn b with
      | Some bt -> Ctype.field_type (layouts t) bt f
      | None -> None)
  | Loc.Head b | Loc.Tail b -> (
      match loc_type t fn b with
      | Some (Ctype.Array (elt, _)) -> Some elt
      | Some _ | None -> None)
  | Loc.Sym b -> (
      match loc_type t fn b with
      | Some bt -> Ctype.deref (Ctype.decay bt)
      | None -> None)
  | Loc.Heap | Loc.Site _ | Loc.Null | Loc.Str -> None
  | Loc.Fun f -> (
      match Hashtbl.find_opt t.funcs f with
      | Some fd ->
          Some
            (Ctype.Func
               {
                 Ctype.ret = fd.Ir.fn_ret;
                 params = List.map snd fd.Ir.fn_params;
                 variadic = fd.Ir.fn_variadic;
               })
      | None -> Option.map (fun s -> Ctype.Func s) (Hashtbl.find_opt t.externals f))
  | Loc.Ret f -> func_ret_type t f

(** Is the location of union type (collapsed to a single location)? *)
let is_union_loc t fn l =
  match loc_type t fn l with
  | Some (Ctype.Su (Ctype.Union_su, _)) -> true
  | Some _ | None -> false

let is_array_loc t fn l =
  match loc_type t fn l with Some (Ctype.Array _) -> true | Some _ | None -> false

(** Type of a SIMPLE variable reference in [fn] (the type of the cell it
    denotes). *)
let vref_type t fn (r : Ir.vref) : Ctype.t option =
  let base_ty =
    match var_info t fn r.Ir.r_base with
    | Some (_, ty) -> Some ty
    | None ->
        if is_func_name t r.Ir.r_base then
          loc_type t fn (Loc.Fun r.Ir.r_base)
        else None
  in
  let after_deref =
    if r.Ir.r_deref then Option.bind base_ty (fun ty -> Ctype.deref (Ctype.decay ty))
    else base_ty
  in
  List.fold_left
    (fun ty sel ->
      Option.bind ty (fun ty ->
          match sel with
          | Ir.Sfield f -> Ctype.field_type (layouts t) ty f
          | Ir.Sindex _ -> (
              match ty with Ctype.Array (e, _) -> Some e | _ -> Ctype.deref ty)
          | Ir.Sshift _ ->
              (* a shift moves across sibling objects: the type of the
                 denoted cell is unchanged *)
              Some ty))
    after_deref r.Ir.r_path

(** Does assigning through this reference move pointers (so the analysis
    must process it)? True for pointer cells and collapsed unions that
    carry pointers. *)
let is_pointer_assignment t fn (r : Ir.vref) =
  match vref_type t fn r with
  | Some ty -> (
      match Ctype.decay ty with
      | Ctype.Ptr _ -> true
      | Ctype.Su (Ctype.Union_su, _) as u -> Ctype.carries_pointers (layouts t) u
      | _ -> false)
  | None ->
      (* unknown type: be conservative and process it *)
      true

(** Pointer-carrying cells contained in location [l] of type [ty]
    (without following any pointer): the location itself for pointers,
    head/tail pairs for arrays, a cell per pointer-carrying field for
    structs, the collapsed location for unions. *)
let rec pointer_cells t (l : Loc.t) (ty : Ctype.t) : (Loc.t * Ctype.t) list =
  match ty with
  | Ctype.Ptr _ -> [ (l, ty) ]
  | Ctype.Array (elt, _) ->
      if Ctype.carries_pointers (layouts t) elt then
        pointer_cells t (Loc.head l) elt @ pointer_cells t (Loc.tail l) elt
      else []
  | Ctype.Su (Ctype.Union_su, _) ->
      if Ctype.carries_pointers (layouts t) ty then [ (l, ty) ] else []
  | Ctype.Su (Ctype.Struct_su, tag) -> (
      match Hashtbl.find_opt (layouts t) tag with
      | None -> []
      | Some lay ->
          List.concat_map
            (fun (f, ft) -> pointer_cells t (Loc.fld l f) ft)
            lay.Ctype.fields)
  | Ctype.Void | Ctype.Int _ | Ctype.Float _ | Ctype.Func _ -> []

(** Pointee type used to chase through a cell of type [ty]; unions use
    their first pointer-carrying field. *)
let cell_pointee t (ty : Ctype.t) : Ctype.t option =
  match ty with
  | Ctype.Ptr inner -> Some inner
  | Ctype.Su (Ctype.Union_su, tag) -> (
      match Hashtbl.find_opt (layouts t) tag with
      | None -> None
      | Some lay ->
          List.find_map
            (fun (_, ft) -> match ft with Ctype.Ptr inner -> Some inner | _ -> None)
            lay.Ctype.fields)
  | _ -> None
