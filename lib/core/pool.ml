(** Fixed-size domain pool (see pool.mli).

    One mutex guards the queue, the shutdown flag and each call's
    completion counter. Workers block on [nonempty]; the caller of
    [run_list] both feeds the queue and drains it, then blocks on a
    per-call condition until the last task (wherever it ran) reports
    completion. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let worker t () =
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        Some task
    | None ->
        if t.shutting_down then begin
          Mutex.unlock t.mutex;
          None
        end
        else begin
          Condition.wait t.nonempty t.mutex;
          next ()
        end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    match next () with
    | Some task ->
        task ();
        loop ()
    | None -> ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      shutting_down = false;
      workers = [];
    }
  in
  (* the caller participates in run_list, so [jobs] concurrency needs
     only [jobs - 1] spawned domains *)
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

(* Trace each task as a span on the domain that ran it, so pool
   scheduling is visible on the timeline. *)
let traced f () =
  let tr0 = Trace.start () in
  let finally () = if Trace.on () then Trace.emit Trace.Task ~name:"pool-task" ~t0:tr0 () in
  Fun.protect ~finally f

(* Per-run cancellation bookkeeping. Start/finish stamps are kept under
   their own mutex (not the pool's — the watchdog must never contend
   with queue traffic): workers stamp a task when they pick it up, the
   watchdog domain scans for tasks that have been running past the
   timeout and flips their cancel flag. Cancellation is cooperative —
   the running analysis observes the flag at its next {!Guard.check}
   and unwinds with [Guard.Cancelled]; a task that never polls simply
   runs to completion. *)
type watch = {
  w_mutex : Mutex.t;
  w_starts : float array;  (** [nan] until the task starts *)
  w_finished : bool array;
  w_cancels : bool Atomic.t array;
  w_stop : bool Atomic.t;
}

let make_watch n =
  {
    w_mutex = Mutex.create ();
    w_starts = Array.make n Float.nan;
    w_finished = Array.make n false;
    w_cancels = Array.init n (fun _ -> Atomic.make false);
    w_stop = Atomic.make false;
  }

let watchdog w ~timeout_ms () =
  let limit = timeout_ms /. 1e3 in
  let tick = Float.max 0.001 (Float.min 0.005 (limit /. 4.)) in
  while not (Atomic.get w.w_stop) do
    Unix.sleepf tick;
    let now = Unix.gettimeofday () in
    Mutex.lock w.w_mutex;
    Array.iteri
      (fun i t0 ->
        if (not (Float.is_nan t0)) && (not w.w_finished.(i)) && now -. t0 >= limit then
          Atomic.set w.w_cancels.(i) true)
      w.w_starts;
    Mutex.unlock w.w_mutex
  done

(* Run one task under its cancel flag: stamp start/finish for the
   watchdog, install the flag where {!Guard.check} polls it, and fold
   any exception — injected, cancellation, or the task's own — into
   [Error]. *)
let exec w i f =
  Mutex.lock w.w_mutex;
  w.w_starts.(i) <- Unix.gettimeofday ();
  Mutex.unlock w.w_mutex;
  Guard.set_task_cancel (Some w.w_cancels.(i));
  let r =
    try
      Fault.maybe_task_exn ();
      Ok (traced f ())
    with e -> Error e
  in
  Guard.set_task_cancel None;
  Mutex.lock w.w_mutex;
  w.w_finished.(i) <- true;
  Mutex.unlock w.w_mutex;
  r

let run_list ?timeout_ms t tasks =
  match tasks with
  | [] -> []
  | _ ->
      let n = List.length tasks in
      let w = make_watch n in
      let dog =
        Option.map (fun ms -> Domain.spawn (watchdog w ~timeout_ms:ms)) timeout_ms
      in
      let finally () =
        Atomic.set w.w_stop true;
        Option.iter Domain.join dog
      in
      Fun.protect ~finally @@ fun () ->
      if t.jobs = 1 then List.mapi (fun i f -> exec w i f) tasks
      else begin
        let results = Array.make n None in
        let remaining = ref n in
        let all_done = Condition.create () in
        let wrap i f () =
          let r = exec w i f in
          Mutex.lock t.mutex;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.broadcast all_done;
          Mutex.unlock t.mutex
        in
        Mutex.lock t.mutex;
        List.iteri (fun i f -> Queue.push (wrap i f) t.queue) tasks;
        Condition.broadcast t.nonempty;
        (* drain alongside the workers, then wait for the stragglers *)
        let rec drive () =
          if !remaining = 0 then Mutex.unlock t.mutex
          else
            match Queue.take_opt t.queue with
            | Some task ->
                Mutex.unlock t.mutex;
                task ();
                Mutex.lock t.mutex;
                drive ()
            | None ->
                Condition.wait all_done t.mutex;
                drive ()
        in
        drive ();
        Array.to_list results
        |> List.map (function Some r -> r | None -> assert false)
      end

let map_result ?timeout_ms t f xs =
  run_list ?timeout_ms t (List.map (fun x () -> f x) xs)

let map t f xs =
  List.map (function Ok y -> y | Error e -> raise e) (map_result t f xs)

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
