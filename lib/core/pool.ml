(** Fixed-size domain pool (see pool.mli).

    One mutex guards the queue, the shutdown flag and each call's
    completion counter. Workers block on [nonempty]; the caller of
    [run_list] both feeds the queue and drains it, then blocks on a
    per-call condition until the last task (wherever it ran) reports
    completion. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

let worker t () =
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        Some task
    | None ->
        if t.shutting_down then begin
          Mutex.unlock t.mutex;
          None
        end
        else begin
          Condition.wait t.nonempty t.mutex;
          next ()
        end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    match next () with
    | Some task ->
        task ();
        loop ()
    | None -> ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      shutting_down = false;
      workers = [];
    }
  in
  (* the caller participates in run_list, so [jobs] concurrency needs
     only [jobs - 1] spawned domains *)
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

(* Trace each task as a span on the domain that ran it, so pool
   scheduling is visible on the timeline. *)
let traced f () =
  let tr0 = Trace.start () in
  let finally () = if Trace.on () then Trace.emit Trace.Task ~name:"pool-task" ~t0:tr0 () in
  Fun.protect ~finally f

let run_list t tasks =
  match tasks with
  | [] -> []
  | _ when t.jobs = 1 ->
      List.map (fun f -> try Ok (traced f ()) with e -> Error e) tasks
  | _ ->
      let n = List.length tasks in
      let results = Array.make n None in
      let remaining = ref n in
      let all_done = Condition.create () in
      let wrap i f () =
        let r = try Ok (traced f ()) with e -> Error e in
        Mutex.lock t.mutex;
        results.(i) <- Some r;
        decr remaining;
        if !remaining = 0 then Condition.broadcast all_done;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      List.iteri (fun i f -> Queue.push (wrap i f) t.queue) tasks;
      Condition.broadcast t.nonempty;
      (* drain alongside the workers, then wait for the stragglers *)
      let rec drive () =
        if !remaining = 0 then Mutex.unlock t.mutex
        else
          match Queue.take_opt t.queue with
          | Some task ->
              Mutex.unlock t.mutex;
              task ();
              Mutex.lock t.mutex;
              drive ()
          | None ->
              Condition.wait all_done t.mutex;
              drive ()
      in
      drive ();
      Array.to_list results
      |> List.map (function Some r -> r | None -> assert false)

let map t f xs =
  let rs = run_list t (List.map (fun x () -> f x) xs) in
  List.map (function Ok y -> y | Error e -> raise e) rs

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
