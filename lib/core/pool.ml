(** Fixed-size domain pool (see pool.mli).

    One mutex guards the queue, the shutdown flag and each call's
    completion counter. Workers block on [nonempty]; the caller of
    [run_list] both feeds the queue and drains it, then blocks on a
    per-call condition until the last task (wherever it ran) reports
    completion.

    Timeouts are enforced by one watchdog domain {e per pool}, spawned
    lazily on the first [run_list ~timeout_ms] and joined at
    [shutdown]. Earlier revisions spawned a watchdog per [run_list]
    call; in a server answering requests through the pool that is a
    domain spawn/join per request, and any exit path that skipped the
    join leaked a domain outright (OCaml caps live domains at ~128, so
    a leak here eventually kills the process). The per-pool dog plus a
    registry of active watches makes the lifecycle structural: a call
    only ever {e registers} a watch (under [Fun.protect], so it is
    removed again on every exit, including when a task or the caller's
    drain raises), and the only spawn/join pair lives in
    [wd_ensure]/[shutdown]. The idle dog blocks on a condition
    variable, costing nothing between timed calls. *)

type watch = {
  w_mutex : Mutex.t;
  w_limit : float;  (** seconds a task may run before cancellation *)
  w_starts : float array;  (** {!Mono.now_s} stamps; [nan] until the task starts *)
  w_finished : bool array;
  w_cancels : bool Atomic.t array;
}

type t = {
  jobs : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable shutting_down : bool;
  mutable workers : unit Domain.t list;
  (* watchdog state, under its own mutex — the dog must never contend
     with queue traffic *)
  wd_mutex : Mutex.t;
  wd_wake : Condition.t;
  mutable wd_watches : watch list;  (** watches of in-flight timed calls *)
  mutable wd_dog : unit Domain.t option;
  mutable wd_stop : bool;
}

let jobs t = t.jobs

let worker t () =
  let rec next () =
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        Some task
    | None ->
        if t.shutting_down then begin
          Mutex.unlock t.mutex;
          None
        end
        else begin
          Condition.wait t.nonempty t.mutex;
          next ()
        end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    match next () with
    | Some task ->
        task ();
        loop ()
    | None -> ()
  in
  loop ()

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      shutting_down = false;
      workers = [];
      wd_mutex = Mutex.create ();
      wd_wake = Condition.create ();
      wd_watches = [];
      wd_dog = None;
      wd_stop = false;
    }
  in
  (* the caller participates in run_list, so [jobs] concurrency needs
     only [jobs - 1] spawned domains *)
  if jobs > 1 then
    t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (worker t));
  t

(* Trace each task as a span on the domain that ran it, so pool
   scheduling is visible on the timeline. *)
let traced f () =
  let tr0 = Trace.start () in
  let finally () = if Trace.on () then Trace.emit Trace.Task ~name:"pool-task" ~t0:tr0 () in
  Fun.protect ~finally f

(* ------------------------------------------------------------------ *)
(* Watchdog                                                           *)
(* ------------------------------------------------------------------ *)

let make_watch ~limit n =
  {
    w_mutex = Mutex.create ();
    w_limit = limit;
    w_starts = Array.make n Float.nan;
    w_finished = Array.make n false;
    w_cancels = Array.init n (fun _ -> Atomic.make false);
  }

(* Poll granularity for one watch: responsive for tight timeouts
   without busy-spinning on long ones. *)
let tick_of limit = Float.max 0.001 (Float.min 0.005 (limit /. 4.))

(* Scan every task of [w] and flip the cancel flag of the overdue ones.
   Task ages come from the monotonic clock: a system clock step must
   not cancel a healthy task (or keep a hung one alive). Cancellation
   is cooperative — the running analysis observes the flag at its next
   {!Guard.check} and unwinds with [Guard.Cancelled]; a task that never
   polls simply runs to completion. *)
let scan_watch now w =
  Mutex.lock w.w_mutex;
  Array.iteri
    (fun i t0 ->
      if (not (Float.is_nan t0)) && (not w.w_finished.(i)) && now -. t0 >= w.w_limit then
        Atomic.set w.w_cancels.(i) true)
    w.w_starts;
  Mutex.unlock w.w_mutex

let watchdog t () =
  let rec loop () =
    Mutex.lock t.wd_mutex;
    if t.wd_stop then Mutex.unlock t.wd_mutex
    else
      match t.wd_watches with
      | [] ->
          (* idle: no timed call in flight, block until one registers
             (or shutdown), costing nothing meanwhile *)
          Condition.wait t.wd_wake t.wd_mutex;
          Mutex.unlock t.wd_mutex;
          loop ()
      | watches ->
          Mutex.unlock t.wd_mutex;
          let now = Mono.now_s () in
          List.iter (scan_watch now) watches;
          let tick =
            List.fold_left (fun acc w -> Float.min acc (tick_of w.w_limit)) 0.005 watches
          in
          Unix.sleepf tick;
          loop ()
  in
  loop ()

(* Register a call's watch, spawning the dog on first use. The spawn
   happens at most once per pool; [shutdown] joins it. *)
let wd_register t w =
  Mutex.lock t.wd_mutex;
  t.wd_watches <- w :: t.wd_watches;
  if t.wd_dog = None then t.wd_dog <- Some (Domain.spawn (watchdog t));
  Condition.broadcast t.wd_wake;
  Mutex.unlock t.wd_mutex

let wd_unregister t w =
  Mutex.lock t.wd_mutex;
  t.wd_watches <- List.filter (fun w' -> w' != w) t.wd_watches;
  Mutex.unlock t.wd_mutex

(* ------------------------------------------------------------------ *)
(* Running tasks                                                      *)
(* ------------------------------------------------------------------ *)

(* Run one task, optionally under a watch's cancel flag: stamp
   start/finish for the watchdog, install the flag where {!Guard.check}
   polls it, and fold any exception — injected, cancellation, or the
   task's own — into [Error]. *)
let exec ?watch i f =
  (match watch with
  | None -> ()
  | Some w ->
      Mutex.lock w.w_mutex;
      w.w_starts.(i) <- Mono.now_s ();
      Mutex.unlock w.w_mutex;
      Guard.set_task_cancel (Some w.w_cancels.(i)));
  let r =
    try
      Fault.maybe_task_exn ();
      Ok (traced f ())
    with e -> Error e
  in
  (match watch with
  | None -> ()
  | Some w ->
      Guard.set_task_cancel None;
      Mutex.lock w.w_mutex;
      w.w_finished.(i) <- true;
      Mutex.unlock w.w_mutex);
  r

let run_list ?timeout_ms t tasks =
  match tasks with
  | [] -> []
  | _ ->
      let n = List.length tasks in
      let watch = Option.map (fun ms -> make_watch ~limit:(ms /. 1e3) n) timeout_ms in
      Option.iter (wd_register t) watch;
      (* the watch must leave the registry on *every* exit — a stale
         entry would keep the dog scanning dead arrays forever *)
      let finally () = Option.iter (wd_unregister t) watch in
      Fun.protect ~finally @@ fun () ->
      if t.jobs = 1 then List.mapi (fun i f -> exec ?watch i f) tasks
      else begin
        let results = Array.make n None in
        let remaining = ref n in
        let all_done = Condition.create () in
        let wrap i f () =
          let r = exec ?watch i f in
          Mutex.lock t.mutex;
          results.(i) <- Some r;
          decr remaining;
          if !remaining = 0 then Condition.broadcast all_done;
          Mutex.unlock t.mutex
        in
        Mutex.lock t.mutex;
        List.iteri (fun i f -> Queue.push (wrap i f) t.queue) tasks;
        Condition.broadcast t.nonempty;
        (* drain alongside the workers, then wait for the stragglers *)
        let rec drive () =
          if !remaining = 0 then Mutex.unlock t.mutex
          else
            match Queue.take_opt t.queue with
            | Some task ->
                Mutex.unlock t.mutex;
                task ();
                Mutex.lock t.mutex;
                drive ()
            | None ->
                Condition.wait all_done t.mutex;
                drive ()
        in
        drive ();
        Array.to_list results
        |> List.map (function Some r -> r | None -> assert false)
      end

let map_result ?timeout_ms t f xs =
  run_list ?timeout_ms t (List.map (fun x () -> f x) xs)

let map t f xs =
  List.map (function Ok y -> y | Error e -> raise e) (map_result t f xs)

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.workers;
  t.workers <- [];
  (* stop and join the watchdog last: signalled under its mutex so a
     dog blocked in [Condition.wait] wakes, joined unconditionally so
     shutdown never leaks the domain *)
  Mutex.lock t.wd_mutex;
  t.wd_stop <- true;
  Condition.broadcast t.wd_wake;
  let dog = t.wd_dog in
  t.wd_dog <- None;
  Mutex.unlock t.wd_mutex;
  Option.iter Domain.join dog

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
