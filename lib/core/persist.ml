(** Persisted analysis results (see persist.mli).

    Encoding conventions: non-negative integers are unsigned LEB128
    varints; strings are length-prefixed; floats are IEEE-754 bits,
    little-endian; locations are written once into an interned table and
    referenced by index (an entry only references earlier entries, so
    the table decodes in one left-to-right pass). The file layout is

    {v magic | version | key digest | loc table | payload v}

    where the payload holds the marshalled SIMPLE program (plain data,
    no closures — re-lowering the source would double the warm-load
    cost), an interned table of the distinct points-to sets (the engine
    reaches a steady state, so most statements share one of a few dozen
    sets; each is written once, grouped by source location), the
    per-statement set references, the entry output, warnings, the
    sharing counters, the metrics snapshot, and the invocation graph in
    pre-order. The header carries a digest of the payload, verified
    before any decoding (in particular before [Marshal.from_string],
    which is not robust against corrupt input). Every decode path
    bounds-checks and raises {!Bad}, which [load] maps to [None] — a
    stale or corrupt cache entry degrades to a cache miss, never to a
    wrong answer. *)

module Ir = Simple_ir.Ir
module Ig = Invocation_graph

let version = 2

let magic = "PTANC"

(* ------------------------------------------------------------------ *)
(* Primitive writers                                                  *)
(* ------------------------------------------------------------------ *)

let w_u b n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let w_str b s =
  w_u b (String.length s);
  Buffer.add_string b s

let w_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                  *)
(* ------------------------------------------------------------------ *)

exception Bad

type rd = { data : string; mutable pos : int }

let r_byte r =
  if r.pos >= String.length r.data then raise Bad;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_u r =
  let rec go shift acc =
    if shift > 56 then raise Bad;
    let c = r_byte r in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let r_str r =
  let n = r_u r in
  if n < 0 || r.pos + n > String.length r.data then raise Bad;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_raw r n =
  if r.pos + n > String.length r.data then raise Bad;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_float r =
  if r.pos + 8 > String.length r.data then raise Bad;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

(* ------------------------------------------------------------------ *)
(* Keys                                                               *)
(* ------------------------------------------------------------------ *)

let opts_repr (o : Options.t) =
  Printf.sprintf "sym=%d;arith=%b;ctx=%b;def=%b;stats=%b;share=%b;site=%b"
    o.Options.max_sym_depth o.Options.pointer_arith_stays o.Options.context_sensitive
    o.Options.use_definite o.Options.record_stats o.Options.share_contexts
    o.Options.heap_by_site

let read_file path = In_channel.with_open_bin path In_channel.input_all

let key ~source ~opts ~entry =
  let content = read_file source in
  Digest.to_hex
    (Digest.string (Printf.sprintf "%d\x00%s\x00%s\x00%s" version content (opts_repr opts) entry))

(* ------------------------------------------------------------------ *)
(* Location table                                                     *)
(* ------------------------------------------------------------------ *)

type loc_enc = {
  tbl : (Loc.t, int) Hashtbl.t;
  buf : Buffer.t;  (** table entries, in index order *)
  mutable next : int;
}

let kind_int = function Loc.Kglobal -> 0 | Loc.Klocal -> 1 | Loc.Kparam -> 2

let kind_of_int = function
  | 0 -> Loc.Kglobal
  | 1 -> Loc.Klocal
  | 2 -> Loc.Kparam
  | _ -> raise Bad

(** Index of [l] in the table, appending its entry (sub-locations
    first) on first sight. *)
let rec loc_idx e (l : Loc.t) : int =
  match Hashtbl.find_opt e.tbl l with
  | Some i -> i
  | None ->
      let b = e.buf in
      let finish () =
        let i = e.next in
        e.next <- i + 1;
        Hashtbl.add e.tbl l i;
        i
      in
      (match l with
      | Loc.Var (n, k) ->
          Buffer.add_char b '\000';
          w_str b n;
          Buffer.add_char b (Char.chr (kind_int k));
          finish ()
      | Loc.Fld (base, f) ->
          let bi = loc_idx e base in
          Buffer.add_char b '\001';
          w_u b bi;
          w_str b f;
          finish ()
      | Loc.Head base ->
          let bi = loc_idx e base in
          Buffer.add_char b '\002';
          w_u b bi;
          finish ()
      | Loc.Tail base ->
          let bi = loc_idx e base in
          Buffer.add_char b '\003';
          w_u b bi;
          finish ()
      | Loc.Sym base ->
          let bi = loc_idx e base in
          Buffer.add_char b '\004';
          w_u b bi;
          finish ()
      | Loc.Heap ->
          Buffer.add_char b '\005';
          finish ()
      | Loc.Site i ->
          Buffer.add_char b '\006';
          w_u b i;
          finish ()
      | Loc.Null ->
          Buffer.add_char b '\007';
          finish ()
      | Loc.Str ->
          Buffer.add_char b '\008';
          finish ()
      | Loc.Fun f ->
          Buffer.add_char b '\009';
          w_str b f;
          finish ()
      | Loc.Ret f ->
          Buffer.add_char b '\010';
          w_str b f;
          finish ())

(** Decode the table into an array of interned locations. *)
let r_loc_table r : Loc.t array =
  let n = r_u r in
  let arr = Array.make n (Loc.intern Loc.Heap) in
  let earlier i =
    if i < 0 || i >= n then raise Bad;
    arr.(i)
  in
  for i = 0 to n - 1 do
    let l =
      match r_byte r with
      | 0 ->
          let name = r_str r in
          Loc.var name (kind_of_int (r_byte r))
      | 1 ->
          let base = earlier (r_u r) in
          Loc.fld base (r_str r)
      | 2 -> Loc.head (earlier (r_u r))
      | 3 -> Loc.tail (earlier (r_u r))
      | 4 -> Loc.sym (earlier (r_u r))
      | 5 -> Loc.intern Loc.Heap
      | 6 -> Loc.site (r_u r)
      | 7 -> Loc.intern Loc.Null
      | 8 -> Loc.intern Loc.Str
      | 9 -> Loc.func (r_str r)
      | 10 -> Loc.ret (r_str r)
      | _ -> raise Bad
    in
    arr.(i) <- l
  done;
  arr

let r_loc (arr : Loc.t array) r : Loc.t =
  let i = r_u r in
  if i < 0 || i >= Array.length arr then raise Bad;
  arr.(i)

(* ------------------------------------------------------------------ *)
(* Points-to sets, states, map info                                   *)
(* ------------------------------------------------------------------ *)

(** Table of distinct rows — a row is one source and its target map.
    Related sets share physically equal submaps (functional updates
    leave untouched sources alone), so across the whole result a few
    hundred rows cover thousands of (statement, source) occurrences;
    each is written and decoded exactly once, and decoded sets share the
    decoded maps. *)
type row_enc = {
  rw_tbl : (int, (Loc.t * Pts.cert Loc.Map.t * int) list) Hashtbl.t;
      (** (source, cardinality) hash -> entries *)
  rw_buf : Buffer.t;
  mutable rw_next : int;
}

let row_idx e rw (src : Loc.t) (m : Pts.cert Loc.Map.t) : int =
  let h = Hashtbl.hash src lxor (Loc.Map.cardinal m * 65599) in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt rw.rw_tbl h) in
  match
    List.find_opt
      (fun (src', m', _) -> src' == src && (m' == m || Loc.Map.equal ( = ) m' m))
      bucket
  with
  | Some (_, _, i) -> i
  | None ->
      let b = rw.rw_buf in
      w_u b (loc_idx e src);
      w_u b (Loc.Map.cardinal m);
      Loc.Map.iter
        (fun tgt c ->
          w_u b (loc_idx e tgt);
          Buffer.add_char b (match c with Pts.D -> '\001' | Pts.P -> '\000'))
        m;
      let i = rw.rw_next in
      rw.rw_next <- i + 1;
      Hashtbl.replace rw.rw_tbl h ((src, m, i) :: bucket);
      i

let r_row_table arr r : (Loc.t * Pts.cert Loc.Map.t) array =
  let n = r_u r in
  let rows = Array.make n (Loc.intern Loc.Heap, Loc.Map.empty) in
  for i = 0 to n - 1 do
    let src = r_loc arr r in
    let nt = r_u r in
    let m = ref Loc.Map.empty in
    for _ = 1 to nt do
      let tgt = r_loc arr r in
      let c = match r_byte r with 1 -> Pts.D | 0 -> Pts.P | _ -> raise Bad in
      m := Loc.Map.add tgt c !m
    done;
    rows.(i) <- (src, !m)
  done;
  rows

(** One set: its rows in source order, by reference into the row
    table. Decoding costs one {!Pts.add_map} per row, over a shared,
    already-built map. *)
let w_set e rw b (s : Pts.t) =
  let n = ref 0 in
  Pts.iter_srcs (fun _ _ -> incr n) s;
  w_u b !n;
  Pts.iter_srcs (fun src m -> w_u b (row_idx e rw src m)) s

let r_set (rows : (Loc.t * Pts.cert Loc.Map.t) array) r : Pts.t =
  let n = r_u r in
  let s = ref Pts.empty in
  for _ = 1 to n do
    let i = r_u r in
    if i < 0 || i >= Array.length rows then raise Bad;
    let src, m = rows.(i) in
    s := Pts.add_map src m !s
  done;
  !s

(** Table of distinct points-to sets, interned by structural equality
    (bucketed by cardinality; {!Pts.equal} answers shared or equal sets
    cheaply). A fixed point leaves most statements of a function with
    the same final set, so the table is far smaller than the statement
    count. *)
type set_enc = {
  s_tbl : (int, (Pts.t * int) list) Hashtbl.t;  (** cardinality -> entries *)
  s_buf : Buffer.t;
  mutable s_next : int;
}

let set_idx e rw se (s : Pts.t) : int =
  let card = Pts.cardinal s in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt se.s_tbl card) in
  match List.find_opt (fun (s', _) -> Pts.equal s' s) bucket with
  | Some (_, i) -> i
  | None ->
      w_set e rw se.s_buf s;
      let i = se.s_next in
      se.s_next <- i + 1;
      Hashtbl.replace se.s_tbl card ((s, i) :: bucket);
      i

let r_set_table rows r : Pts.t array =
  let n = r_u r in
  let sets = Array.make n Pts.empty in
  for i = 0 to n - 1 do
    sets.(i) <- r_set rows r
  done;
  sets

let r_set_ref (sets : Pts.t array) r : Pts.t =
  let i = r_u r in
  if i < 0 || i >= Array.length sets then raise Bad;
  sets.(i)

let w_state e rw se b (st : Pts.state) =
  match st with None -> w_u b 0 | Some s -> w_u b (set_idx e rw se s + 1)

let r_state sets r : Pts.state =
  match r_u r with
  | 0 -> None
  | k ->
      if k - 1 >= Array.length sets then raise Bad;
      Some sets.(k - 1)

let w_map_info e b (mi : Ig.map_info) =
  w_u b (List.length mi);
  List.iter
    (fun (l, ls) ->
      w_u b (loc_idx e l);
      w_u b (List.length ls);
      List.iter (fun l' -> w_u b (loc_idx e l')) ls)
    mi

let r_list r f =
  let n = r_u r in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f () :: acc) in
  go n []

let r_map_info arr r : Ig.map_info =
  r_list r (fun () ->
      let l = r_loc arr r in
      let ls = r_list r (fun () -> r_loc arr r) in
      (l, ls))

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let w_metrics b (m : Metrics.t) =
  List.iter (w_u b)
    [
      m.Metrics.merges; m.merge_fast; m.equal_checks; m.equal_fast; m.covered_checks;
      m.covered_fast; m.assigns; m.kills; m.weakens; m.gens; m.loop_iters; m.rec_iters;
      m.bodies; m.memo_lookups; m.memo_hits; m.map_calls; m.unmap_calls; m.cache_hits;
      m.cache_misses; m.cache_quarantined; m.budget_trips;
    ];
  List.iter (w_float b) [ m.t_map; m.t_unmap; m.t_analysis; m.t_serialize; m.t_deserialize ]

let r_metrics r : Metrics.t =
  let m = Metrics.create () in
  m.Metrics.merges <- r_u r;
  m.merge_fast <- r_u r;
  m.equal_checks <- r_u r;
  m.equal_fast <- r_u r;
  m.covered_checks <- r_u r;
  m.covered_fast <- r_u r;
  m.assigns <- r_u r;
  m.kills <- r_u r;
  m.weakens <- r_u r;
  m.gens <- r_u r;
  m.loop_iters <- r_u r;
  m.rec_iters <- r_u r;
  m.bodies <- r_u r;
  m.memo_lookups <- r_u r;
  m.memo_hits <- r_u r;
  m.map_calls <- r_u r;
  m.unmap_calls <- r_u r;
  m.cache_hits <- r_u r;
  m.cache_misses <- r_u r;
  m.cache_quarantined <- r_u r;
  m.budget_trips <- r_u r;
  m.t_map <- r_float r;
  m.t_unmap <- r_float r;
  m.t_analysis <- r_float r;
  m.t_serialize <- r_float r;
  m.t_deserialize <- r_float r;
  m

(* ------------------------------------------------------------------ *)
(* Invocation graph                                                   *)
(* ------------------------------------------------------------------ *)

let kind_byte = function Ig.Ordinary -> '\000' | Ig.Recursive -> '\001' | Ig.Approximate -> '\002'

let kind_of_byte = function
  | 0 -> Ig.Ordinary
  | 1 -> Ig.Recursive
  | 2 -> Ig.Approximate
  | _ -> raise Bad

(** Pre-order: a node's entry precedes its children's, so back-edges
    ([partner] always points to an ancestor) resolve while decoding. *)
let rec w_node e rw se b (n : Ig.node) =
  w_u b n.Ig.id;
  w_str b n.Ig.func;
  Buffer.add_char b (kind_byte n.Ig.kind);
  (match n.Ig.partner with None -> w_u b 0 | Some p -> w_u b (p.Ig.id + 1));
  w_state e rw se b n.Ig.stored_input;
  w_state e rw se b n.Ig.stored_output;
  w_map_info e b n.Ig.map_info;
  w_u b (List.length n.Ig.children);
  List.iter
    (fun (site, c) ->
      w_u b site;
      w_node e rw se b c)
    n.Ig.children

let rec r_node arr sets r ~parent ~(nodes : (int, Ig.node) Hashtbl.t) : Ig.node =
  let id = r_u r in
  let func = r_str r in
  let kind = kind_of_byte (r_byte r) in
  let partner_id = r_u r in
  let stored_input = r_state sets r in
  let stored_output = r_state sets r in
  let map_info = r_map_info arr r in
  let node =
    {
      Ig.id;
      func;
      parent;
      kind;
      partner = None;
      children = [];
      stored_input;
      stored_output;
      pending = [];
      in_flight = false;
      map_info;
    }
  in
  Hashtbl.replace nodes id node;
  if partner_id <> 0 then begin
    match Hashtbl.find_opt nodes (partner_id - 1) with
    | Some p -> node.Ig.partner <- Some p
    | None -> raise Bad
  end;
  let children =
    r_list r (fun () ->
        let site = r_u r in
        let c = r_node arr sets r ~parent:(Some node) ~nodes in
        (site, c))
  in
  node.Ig.children <- children;
  node

(* ------------------------------------------------------------------ *)
(* Save                                                               *)
(* ------------------------------------------------------------------ *)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Concurrency-safe scratch names for the write-then-rename protocol:
   pid + domain id + a per-domain counter can never collide between two
   workers (unlike [Filename.temp_file], whose shared PRNG state is not
   domain-safe). The final [Sys.rename] is atomic within the cache
   directory, so a reader only ever sees absent or complete entries;
   two workers racing on the same digest each publish a complete file
   and the last rename wins. *)
let tmp_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let tmp_name dir =
  let c = Domain.DLS.get tmp_counter in
  incr c;
  Filename.concat dir
    (Printf.sprintf ".ptan-%d-%d-%d.tmp" (Unix.getpid ())
       ((Domain.self () :> int))
       !c)

let save ~source ?(entry = "main") (res : Analysis.result) file =
  let t0 = Metrics.now () in
  let tr0 = Trace.start () in
  let opts = res.Analysis.tenv.Tenv.opts in
  let e = { tbl = Hashtbl.create 1024; buf = Buffer.create 8192; next = 0 } in
  let rw = { rw_tbl = Hashtbl.create 512; rw_buf = Buffer.create 8192; rw_next = 0 } in
  let se = { s_tbl = Hashtbl.create 256; s_buf = Buffer.create 8192; s_next = 0 } in
  let pay = Buffer.create 65536 in
  let stmts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) res.Analysis.stmt_pts []
    |> List.sort compare
  in
  w_u pay (List.length stmts);
  List.iter
    (fun (id, s) ->
      w_u pay id;
      w_u pay (set_idx e rw se s))
    stmts;
  w_state e rw se pay res.Analysis.entry_output;
  w_u pay (List.length res.Analysis.warnings);
  List.iter (w_str pay) res.Analysis.warnings;
  w_u pay res.Analysis.share_hits;
  w_u pay res.Analysis.bodies_analyzed;
  w_metrics pay res.Analysis.metrics;
  w_u pay res.Analysis.graph.Ig.n_nodes;
  w_node e rw se pay res.Analysis.graph.Ig.root;
  let body = Buffer.create (Buffer.length e.buf + Buffer.length pay + 65536) in
  w_str body (Marshal.to_string res.Analysis.prog []);
  w_u body e.next;
  Buffer.add_buffer body e.buf;
  w_u body rw.rw_next;
  Buffer.add_buffer body rw.rw_buf;
  w_u body se.s_next;
  Buffer.add_buffer body se.s_buf;
  Buffer.add_buffer body pay;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 64) in
  Buffer.add_string out magic;
  w_u out version;
  Buffer.add_string out (Digest.from_hex (key ~source ~opts ~entry));
  Buffer.add_string out (Digest.string body);
  Buffer.add_string out body;
  mkdirs (Filename.dirname file);
  let tmp = tmp_name (Filename.dirname file) in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (Buffer.contents out));
      Sys.rename tmp file;
      (* chaos harness: corrupt the published entry, exactly like torn
         storage under a complete, well-formed file name *)
      Fault.maybe_corrupt_file file);
  let m = Metrics.cur () in
  m.Metrics.t_serialize <- m.Metrics.t_serialize +. (Metrics.now () -. t0);
  if Trace.on () then
    Trace.emit Trace.Cache_store
      ~name:(Filename.basename source)
      ~pts_in:(Hashtbl.length res.Analysis.stmt_pts)
      ~t0:tr0 ()

(* ------------------------------------------------------------------ *)
(* Load                                                               *)
(* ------------------------------------------------------------------ *)

type load_error =
  | Missing  (** no file at that path *)
  | Stale
      (** well-formed entry keying a different source text, option
          record or entry function — not corrupt, just not ours *)
  | Corrupt
      (** truncation, bit damage, version skew, or any decode failure:
          the entry can never load again and should be quarantined *)

let load_error_name = function
  | Missing -> "missing"
  | Stale -> "stale"
  | Corrupt -> "corrupt"

(* internal: distinguishes the key-mismatch exit from [Bad] *)
exception Stale_key

let load_checked ~source ?(opts = Options.default) ?(entry = "main") file :
    (Analysis.result, load_error) result =
  let t0 = Metrics.now () in
  let tr0 = Trace.start () in
  let res =
    if not (Sys.file_exists file) then Error Missing
    else
    try
      let data = read_file file in
      let r = { data; pos = 0 } in
      if r_raw r (String.length magic) <> magic then raise Bad;
      if r_u r <> version then raise Bad;
      let stored_key = r_raw r 16 in
      if stored_key <> Digest.from_hex (key ~source ~opts ~entry) then
        raise_notrace Stale_key;
      let body_digest = r_raw r 16 in
      (* authenticate the remaining bytes before decoding anything from
         them: [Marshal.from_string] below must only ever see bytes this
         process's [save] wrote *)
      if body_digest <> Digest.substring data r.pos (String.length data - r.pos) then
        raise Bad;
      let prog : Ir.program = Marshal.from_string (r_str r) 0 in
      let arr = r_loc_table r in
      let rows = r_row_table arr r in
      let sets = r_set_table rows r in
      let n_stmts = r_u r in
      let stmt_pts = Hashtbl.create (max 16 n_stmts) in
      for _ = 1 to n_stmts do
        let id = r_u r in
        Hashtbl.replace stmt_pts id (r_set_ref sets r)
      done;
      let entry_output = r_state sets r in
      let warnings = r_list r (fun () -> r_str r) in
      let share_hits = r_u r in
      let bodies_analyzed = r_u r in
      let metrics = r_metrics r in
      let n_nodes = r_u r in
      let root = r_node arr sets r ~parent:None ~nodes:(Hashtbl.create 64) in
      if r.pos <> String.length data then raise Bad;
      let tenv = Tenv.make ~opts prog in
      Ok
        {
          Analysis.prog;
          tenv;
          graph = { Ig.root; n_nodes };
          stmt_pts;
          entry_output;
          warnings;
          share_hits;
          bodies_analyzed;
          metrics;
          (* degraded results are never saved (see [analyze_cached]), so
             anything loaded back is a full-precision run *)
          degraded = None;
        }
    with
    | Stale_key -> Error Stale
    | Bad | Failure _ | Invalid_argument _ | Sys_error _ | End_of_file -> Error Corrupt
  in
  let m = Metrics.cur () in
  m.Metrics.t_deserialize <- m.Metrics.t_deserialize +. (Metrics.now () -. t0);
  if Trace.on () then
    Trace.emit Trace.Cache_load
      ~name:(Filename.basename source)
      ~pts_out:
        (match res with Ok r -> Hashtbl.length r.Analysis.stmt_pts | Error _ -> -1)
      ~t0:tr0 ();
  res

let load ~source ?opts ?entry file : Analysis.result option =
  Result.to_option (load_checked ~source ?opts ?entry file)

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let default_cache_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "ptan"
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "ptan"
      | _ -> ".ptan-cache")

let cache_file ~cache_dir ~source ~opts ~entry =
  let base = Filename.remove_extension (Filename.basename source) in
  Filename.concat cache_dir (Printf.sprintf "%s-%s.ptc" base (key ~source ~opts ~entry))

(* Move a corrupt entry out of the lookup path (best effort — on rename
   failure the entry stays, and the next lookup will try again). The
   [.bad] file is kept rather than deleted so operators can post-mortem
   what corrupted it — which is why a pre-existing [.bad] (an earlier,
   still-uninspected corruption) must not be clobbered: later victims
   go to [.bad.1], [.bad.2], ... instead. *)
let quarantine file =
  let base = file ^ ".bad" in
  let dest =
    if not (Sys.file_exists base) then base
    else
      let rec fresh i =
        let c = Printf.sprintf "%s.%d" base i in
        if Sys.file_exists c then fresh (i + 1) else c
      in
      fresh 1
  in
  try Sys.rename file dest with Sys_error _ -> ()

let analyze_cached ?cache_dir ?(opts = Options.default) ?(entry = "main") ?budget source :
    Analysis.result * bool =
  let dir = match cache_dir with Some d -> d | None -> default_cache_dir () in
  let file = try Some (cache_file ~cache_dir:dir ~source ~opts ~entry) with Sys_error _ -> None in
  let quarantined = ref 0 in
  let load_attempt =
    match file with
    | None -> None
    | Some f -> (
        let t0 = Metrics.now () in
        match load_checked ~source ~opts ~entry f with
        | Ok r -> Some (r, Metrics.now () -. t0)
        | Error Corrupt ->
            (* truncated, damaged or version-skewed entry: quarantine it
               and transparently fall back to a cold analysis *)
            quarantine f;
            incr quarantined;
            None
        | Error (Missing | Stale) -> None)
  in
  match load_attempt with
  | Some (res, dt) ->
      (Metrics.cur ()).Metrics.cache_hits <- (Metrics.cur ()).Metrics.cache_hits + 1;
      res.Analysis.metrics.Metrics.cache_hits <- res.Analysis.metrics.Metrics.cache_hits + 1;
      res.Analysis.metrics.Metrics.t_deserialize <-
        res.Analysis.metrics.Metrics.t_deserialize +. dt;
      (res, true)
  | None ->
      let res = Analysis.of_file ~opts ~entry ?budget source in
      (* a degraded result is not the full-precision answer this key
         promises — never publish it to the cache *)
      (match file with
      | Some f when res.Analysis.degraded = None -> (
          try save ~source ~entry res f with Sys_error _ | Failure _ -> ())
      | _ -> ());
      (* bumped after the analysis, which reset this domain's accumulator *)
      (Metrics.cur ()).Metrics.cache_quarantined <-
        (Metrics.cur ()).Metrics.cache_quarantined + !quarantined;
      res.Analysis.metrics.Metrics.cache_quarantined <-
        res.Analysis.metrics.Metrics.cache_quarantined + !quarantined;
      (Metrics.cur ()).Metrics.cache_misses <- (Metrics.cur ()).Metrics.cache_misses + 1;
      res.Analysis.metrics.Metrics.cache_misses <-
        res.Analysis.metrics.Metrics.cache_misses + 1;
      res.Analysis.metrics.Metrics.t_serialize <- (Metrics.cur ()).Metrics.t_serialize;
      (res, false)
