(** Persisted analysis results (see persist.mli).

    Encoding conventions: non-negative integers are unsigned LEB128
    varints; strings are length-prefixed; floats are IEEE-754 bits,
    little-endian; locations are written once into an interned table and
    referenced by index (an entry only references earlier entries, so
    the table decodes in one left-to-right pass). The file layout is

    {v magic | version | key digest | loc table | payload v}

    where the payload holds the marshalled SIMPLE program (plain data,
    no closures — re-lowering the source would double the warm-load
    cost), an interned table of the distinct points-to sets (the engine
    reaches a steady state, so most statements share one of a few dozen
    sets; each is written once, grouped by source location), the
    per-statement set references, the entry output, warnings, the
    sharing counters, the metrics snapshot, and the invocation graph in
    pre-order. The header carries a digest of the payload, verified
    before any decoding (in particular before [Marshal.from_string],
    which is not robust against corrupt input). Every decode path
    bounds-checks and raises {!Bad}, which [load] maps to [None] — a
    stale or corrupt cache entry degrades to a cache miss, never to a
    wrong answer. *)

module Ir = Simple_ir.Ir
module Ig = Invocation_graph

let version = 4

let magic = "PTANC"

(* ------------------------------------------------------------------ *)
(* Primitive writers                                                  *)
(* ------------------------------------------------------------------ *)

let w_u b n =
  assert (n >= 0);
  let rec go n =
    if n < 0x80 then Buffer.add_char b (Char.chr n)
    else begin
      Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
      go (n lsr 7)
    end
  in
  go n

let w_str b s =
  w_u b (String.length s);
  Buffer.add_string b s

let w_float b f = Buffer.add_int64_le b (Int64.bits_of_float f)

(* ------------------------------------------------------------------ *)
(* Primitive readers                                                  *)
(* ------------------------------------------------------------------ *)

exception Bad

type rd = { data : string; mutable pos : int }

let r_byte r =
  if r.pos >= String.length r.data then raise Bad;
  let c = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  c

let r_u r =
  let rec go shift acc =
    if shift > 56 then raise Bad;
    let c = r_byte r in
    let acc = acc lor ((c land 0x7f) lsl shift) in
    if c land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let r_str r =
  let n = r_u r in
  if n < 0 || r.pos + n > String.length r.data then raise Bad;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_raw r n =
  if r.pos + n > String.length r.data then raise Bad;
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_float r =
  if r.pos + 8 > String.length r.data then raise Bad;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

(* ------------------------------------------------------------------ *)
(* Keys                                                               *)
(* ------------------------------------------------------------------ *)

let opts_repr (o : Options.t) =
  Printf.sprintf "sym=%d;arith=%b;ctx=%b;def=%b;stats=%b;share=%b;site=%b"
    o.Options.max_sym_depth o.Options.pointer_arith_stays o.Options.context_sensitive
    o.Options.use_definite o.Options.record_stats o.Options.share_contexts
    o.Options.heap_by_site

let read_file path = In_channel.with_open_bin path In_channel.input_all

let key ~source ~opts ~entry =
  let content = read_file source in
  Digest.to_hex
    (Digest.string (Printf.sprintf "%d\x00%s\x00%s\x00%s" version content (opts_repr opts) entry))

(* ------------------------------------------------------------------ *)
(* Location table                                                     *)
(* ------------------------------------------------------------------ *)

type loc_enc = {
  tbl : (Loc.t, int) Hashtbl.t;
  buf : Buffer.t;  (** table entries, in index order *)
  mutable next : int;
}

let kind_int = function Loc.Kglobal -> 0 | Loc.Klocal -> 1 | Loc.Kparam -> 2

let kind_of_int = function
  | 0 -> Loc.Kglobal
  | 1 -> Loc.Klocal
  | 2 -> Loc.Kparam
  | _ -> raise Bad

(** Index of [l] in the table, appending its entry (sub-locations
    first) on first sight. *)
let rec loc_idx e (l : Loc.t) : int =
  match Hashtbl.find_opt e.tbl l with
  | Some i -> i
  | None ->
      let b = e.buf in
      let finish () =
        let i = e.next in
        e.next <- i + 1;
        Hashtbl.add e.tbl l i;
        i
      in
      (match l with
      | Loc.Var (n, k) ->
          Buffer.add_char b '\000';
          w_str b n;
          Buffer.add_char b (Char.chr (kind_int k));
          finish ()
      | Loc.Fld (base, f) ->
          let bi = loc_idx e base in
          Buffer.add_char b '\001';
          w_u b bi;
          w_str b f;
          finish ()
      | Loc.Head base ->
          let bi = loc_idx e base in
          Buffer.add_char b '\002';
          w_u b bi;
          finish ()
      | Loc.Tail base ->
          let bi = loc_idx e base in
          Buffer.add_char b '\003';
          w_u b bi;
          finish ()
      | Loc.Sym base ->
          let bi = loc_idx e base in
          Buffer.add_char b '\004';
          w_u b bi;
          finish ()
      | Loc.Heap ->
          Buffer.add_char b '\005';
          finish ()
      | Loc.Site i ->
          Buffer.add_char b '\006';
          w_u b i;
          finish ()
      | Loc.Null ->
          Buffer.add_char b '\007';
          finish ()
      | Loc.Str ->
          Buffer.add_char b '\008';
          finish ()
      | Loc.Fun f ->
          Buffer.add_char b '\009';
          w_str b f;
          finish ()
      | Loc.Ret f ->
          Buffer.add_char b '\010';
          w_str b f;
          finish ())

(** Decode the table into an array of interned locations. *)
let r_loc_table r : Loc.t array =
  let n = r_u r in
  let arr = Array.make n (Loc.intern Loc.Heap) in
  let earlier i =
    if i < 0 || i >= n then raise Bad;
    arr.(i)
  in
  for i = 0 to n - 1 do
    let l =
      match r_byte r with
      | 0 ->
          let name = r_str r in
          Loc.var name (kind_of_int (r_byte r))
      | 1 ->
          let base = earlier (r_u r) in
          Loc.fld base (r_str r)
      | 2 -> Loc.head (earlier (r_u r))
      | 3 -> Loc.tail (earlier (r_u r))
      | 4 -> Loc.sym (earlier (r_u r))
      | 5 -> Loc.intern Loc.Heap
      | 6 -> Loc.site (r_u r)
      | 7 -> Loc.intern Loc.Null
      | 8 -> Loc.intern Loc.Str
      | 9 -> Loc.func (r_str r)
      | 10 -> Loc.ret (r_str r)
      | _ -> raise Bad
    in
    arr.(i) <- l
  done;
  arr

let r_loc (arr : Loc.t array) r : Loc.t =
  let i = r_u r in
  if i < 0 || i >= Array.length arr then raise Bad;
  arr.(i)

(* ------------------------------------------------------------------ *)
(* Points-to sets, states, map info                                   *)
(* ------------------------------------------------------------------ *)

(** Table of distinct rows — a row is one source and its target map.
    Related sets share physically equal submaps (functional updates
    leave untouched sources alone), so across the whole result a few
    hundred rows cover thousands of (statement, source) occurrences;
    each is written and decoded exactly once, and decoded sets share the
    decoded maps. *)
type row_enc = {
  rw_tbl : (int, (Loc.t * Pts.cert Loc.Map.t * int) list) Hashtbl.t;
      (** (source, cardinality) hash -> entries *)
  rw_buf : Buffer.t;
  mutable rw_next : int;
}

let row_idx e rw (src : Loc.t) (m : Pts.cert Loc.Map.t) : int =
  let h = Hashtbl.hash src lxor (Loc.Map.cardinal m * 65599) in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt rw.rw_tbl h) in
  match
    List.find_opt
      (fun (src', m', _) -> src' == src && (m' == m || Loc.Map.equal ( = ) m' m))
      bucket
  with
  | Some (_, _, i) -> i
  | None ->
      let b = rw.rw_buf in
      w_u b (loc_idx e src);
      w_u b (Loc.Map.cardinal m);
      Loc.Map.iter
        (fun tgt c ->
          w_u b (loc_idx e tgt);
          Buffer.add_char b (match c with Pts.D -> '\001' | Pts.P -> '\000'))
        m;
      let i = rw.rw_next in
      rw.rw_next <- i + 1;
      Hashtbl.replace rw.rw_tbl h ((src, m, i) :: bucket);
      i

let r_row_table arr r : (Loc.t * Pts.cert Loc.Map.t) array =
  let n = r_u r in
  let rows = Array.make n (Loc.intern Loc.Heap, Loc.Map.empty) in
  for i = 0 to n - 1 do
    let src = r_loc arr r in
    let nt = r_u r in
    let m = ref Loc.Map.empty in
    for _ = 1 to nt do
      let tgt = r_loc arr r in
      let c = match r_byte r with 1 -> Pts.D | 0 -> Pts.P | _ -> raise Bad in
      m := Loc.Map.add tgt c !m
    done;
    rows.(i) <- (src, !m)
  done;
  rows

(** One set: its rows in source order, by reference into the row
    table. Decoding costs one {!Pts.add_map} per row, over a shared,
    already-built map. *)
let w_set e rw b (s : Pts.t) =
  let n = ref 0 in
  Pts.iter_srcs (fun _ _ -> incr n) s;
  w_u b !n;
  Pts.iter_srcs (fun src m -> w_u b (row_idx e rw src m)) s

let r_set (rows : (Loc.t * Pts.cert Loc.Map.t) array) r : Pts.t =
  let n = r_u r in
  let s = ref Pts.empty in
  for _ = 1 to n do
    let i = r_u r in
    if i < 0 || i >= Array.length rows then raise Bad;
    let src, m = rows.(i) in
    s := Pts.add_map src m !s
  done;
  !s

(** Table of distinct points-to sets, interned by structural equality
    (bucketed by cardinality; {!Pts.equal} answers shared or equal sets
    cheaply). A fixed point leaves most statements of a function with
    the same final set, so the table is far smaller than the statement
    count. *)
type set_enc = {
  s_tbl : (int, (Pts.t * int) list) Hashtbl.t;  (** {!Pts.fingerprint} -> entries *)
  s_buf : Buffer.t;
  mutable s_next : int;
  mutable s_last : (Pts.t * int) option;
      (** most recently referenced set — the delta base candidate *)
}

(** A set-table entry is either absolute (tag 0: its rows) or a delta
    from an earlier entry (tag 1: base index, sources to kill, rows to
    add). Sets intern in statement order, and along a function body
    consecutive fixpoint states differ by a row or two, so the delta
    form dominates — and the decoder then extends the base set's spine
    instead of rebuilding it, keeping warm loads cheaper than the
    fixpoint that produced the tables. *)
let w_set_entry e rw se b (s : Pts.t) =
  let rows_of s =
    let acc = ref [] in
    Pts.iter_srcs (fun src m -> acc := (src, m) :: !acc) s;
    List.rev !acc
  in
  let delta =
    match se.s_last with
    | None -> None
    | Some (last, base) ->
        (* merge-join both row lists in source order *)
        let rec diff kills adds olds news =
          match (olds, news) with
          | [], [] -> (kills, adds)
          | (src, _) :: olds', [] -> diff (src :: kills) adds olds' []
          | [], row :: news' -> diff kills (row :: adds) [] news'
          | (osrc, om) :: olds', ((nsrc, nm) as row) :: news' ->
              let c = Loc.compare osrc nsrc in
              if c < 0 then diff (osrc :: kills) adds olds' news
              else if c > 0 then diff kills (row :: adds) olds news'
              else if om == nm || Loc.Map.equal ( = ) om nm then
                diff kills adds olds' news'
              else diff (osrc :: kills) (row :: adds) olds' news'
        in
        let news = rows_of s in
        let kills, adds = diff [] [] (rows_of last) news in
        if List.length kills + List.length adds + 1 < List.length news then
          Some (base, kills, adds)
        else None
  in
  match delta with
  | Some (base, kills, adds) ->
      Buffer.add_char b '\001';
      w_u b base;
      w_u b (List.length kills);
      List.iter (fun src -> w_u b (loc_idx e src)) kills;
      w_u b (List.length adds);
      List.iter (fun (src, m) -> w_u b (row_idx e rw src m)) adds
  | None ->
      Buffer.add_char b '\000';
      w_set e rw b s

let set_idx e rw se (s : Pts.t) : int =
  let card = Pts.fingerprint s in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt se.s_tbl card) in
  match List.find_opt (fun (s', _) -> Pts.equal s' s) bucket with
  | Some (_, i) ->
      se.s_last <- Some (s, i);
      i
  | None ->
      w_set_entry e rw se se.s_buf s;
      let i = se.s_next in
      se.s_next <- i + 1;
      Hashtbl.replace se.s_tbl card ((s, i) :: bucket);
      se.s_last <- Some (s, i);
      i

let r_set_table arr rows r : Pts.t array =
  let n = r_u r in
  let sets = Array.make n Pts.empty in
  for i = 0 to n - 1 do
    let s =
      match r_byte r with
      | 0 -> r_set rows r
      | 1 ->
          let b = r_u r in
          if b < 0 || b >= i then raise Bad;
          let s = ref sets.(b) in
          let nk = r_u r in
          for _ = 1 to nk do
            s := Pts.kill_src (r_loc arr r) !s
          done;
          let na = r_u r in
          for _ = 1 to na do
            let j = r_u r in
            if j < 0 || j >= Array.length rows then raise Bad;
            let src, m = rows.(j) in
            s := Pts.add_map src m !s
          done;
          !s
      | _ -> raise Bad
    in
    sets.(i) <- s
  done;
  sets

let r_set_ref (sets : Pts.t array) r : Pts.t =
  let i = r_u r in
  if i < 0 || i >= Array.length sets then raise Bad;
  sets.(i)

let w_state e rw se b (st : Pts.state) =
  match st with None -> w_u b 0 | Some s -> w_u b (set_idx e rw se s + 1)

let r_state sets r : Pts.state =
  match r_u r with
  | 0 -> None
  | k ->
      if k - 1 >= Array.length sets then raise Bad;
      Some sets.(k - 1)

let w_map_info e b (mi : Ig.map_info) =
  w_u b (List.length mi);
  List.iter
    (fun (l, ls) ->
      w_u b (loc_idx e l);
      w_u b (List.length ls);
      List.iter (fun l' -> w_u b (loc_idx e l')) ls)
    mi

let r_list r f =
  let n = r_u r in
  let rec go k acc = if k = 0 then List.rev acc else go (k - 1) (f () :: acc) in
  go n []

let r_map_info arr r : Ig.map_info =
  r_list r (fun () ->
      let l = r_loc arr r in
      let ls = r_list r (fun () -> r_loc arr r) in
      (l, ls))

(* ------------------------------------------------------------------ *)
(* Metrics                                                            *)
(* ------------------------------------------------------------------ *)

let w_metrics b (m : Metrics.t) =
  List.iter (w_u b)
    [
      m.Metrics.merges; m.merge_fast; m.equal_checks; m.equal_fast; m.covered_checks;
      m.covered_fast; m.assigns; m.kills; m.weakens; m.gens; m.loop_iters; m.rec_iters;
      m.bodies; m.memo_lookups; m.memo_hits; m.map_calls; m.unmap_calls; m.cache_hits;
      m.cache_misses; m.cache_quarantined; m.budget_trips; m.incr_funcs_dirty;
      m.incr_funcs_reused;
    ];
  List.iter (w_float b) [ m.t_map; m.t_unmap; m.t_analysis; m.t_serialize; m.t_deserialize ]

let r_metrics r : Metrics.t =
  let m = Metrics.create () in
  m.Metrics.merges <- r_u r;
  m.merge_fast <- r_u r;
  m.equal_checks <- r_u r;
  m.equal_fast <- r_u r;
  m.covered_checks <- r_u r;
  m.covered_fast <- r_u r;
  m.assigns <- r_u r;
  m.kills <- r_u r;
  m.weakens <- r_u r;
  m.gens <- r_u r;
  m.loop_iters <- r_u r;
  m.rec_iters <- r_u r;
  m.bodies <- r_u r;
  m.memo_lookups <- r_u r;
  m.memo_hits <- r_u r;
  m.map_calls <- r_u r;
  m.unmap_calls <- r_u r;
  m.cache_hits <- r_u r;
  m.cache_misses <- r_u r;
  m.cache_quarantined <- r_u r;
  m.budget_trips <- r_u r;
  m.incr_funcs_dirty <- r_u r;
  m.incr_funcs_reused <- r_u r;
  m.t_map <- r_float r;
  m.t_unmap <- r_float r;
  m.t_analysis <- r_float r;
  m.t_serialize <- r_float r;
  m.t_deserialize <- r_float r;
  m

(* ------------------------------------------------------------------ *)
(* Invocation graph                                                   *)
(* ------------------------------------------------------------------ *)

let kind_byte = function Ig.Ordinary -> '\000' | Ig.Recursive -> '\001' | Ig.Approximate -> '\002'

let kind_of_byte = function
  | 0 -> Ig.Ordinary
  | 1 -> Ig.Recursive
  | 2 -> Ig.Approximate
  | _ -> raise Bad

(** Pre-order: a node's entry precedes its children's, so back-edges
    ([partner] always points to an ancestor) resolve while decoding. *)
let rec w_node e rw se b (n : Ig.node) =
  w_u b n.Ig.id;
  w_str b n.Ig.func;
  Buffer.add_char b (kind_byte n.Ig.kind);
  (match n.Ig.partner with None -> w_u b 0 | Some p -> w_u b (p.Ig.id + 1));
  w_state e rw se b n.Ig.stored_input;
  w_state e rw se b n.Ig.stored_output;
  w_map_info e b n.Ig.map_info;
  w_u b (List.length n.Ig.children);
  List.iter
    (fun (site, c) ->
      w_u b site;
      w_node e rw se b c)
    n.Ig.children

let rec r_node arr sets r ~parent ~(nodes : (int, Ig.node) Hashtbl.t) : Ig.node =
  let id = r_u r in
  let func = r_str r in
  let kind = kind_of_byte (r_byte r) in
  let partner_id = r_u r in
  let stored_input = r_state sets r in
  let stored_output = r_state sets r in
  let map_info = r_map_info arr r in
  let node =
    {
      Ig.id;
      func;
      parent;
      kind;
      partner = None;
      children = [];
      stored_input;
      stored_output;
      pending = [];
      in_flight = false;
      map_info;
    }
  in
  Hashtbl.replace nodes id node;
  if partner_id <> 0 then begin
    match Hashtbl.find_opt nodes (partner_id - 1) with
    | Some p -> node.Ig.partner <- Some p
    | None -> raise Bad
  end;
  let children =
    r_list r (fun () ->
        let site = r_u r in
        let c = r_node arr sets r ~parent:(Some node) ~nodes in
        (site, c))
  in
  node.Ig.children <- children;
  node

(* ------------------------------------------------------------------ *)
(* Incremental re-analysis: function hashes and summaries (v3)        *)
(* ------------------------------------------------------------------ *)

(* Content hash of one function, invariant under edits elsewhere in the
   translation unit: statement ids are assigned program-wide in textual
   order, so adding a line to one function renumbers every later
   function. The hash therefore marshals a copy with ids zeroed and
   source locations blanked — two functions hash equal iff their
   lowered IR is identical up to position. *)
let rec norm_stmt (s : Ir.stmt) : Ir.stmt =
  let d =
    match s.Ir.s_desc with
    | (Ir.Sassign _ | Ir.Scall _ | Ir.Sbreak | Ir.Scontinue | Ir.Sreturn _) as d -> d
    | Ir.Sif (c, t, e) -> Ir.Sif (c, List.map norm_stmt t, List.map norm_stmt e)
    | Ir.Sloop l ->
        Ir.Sloop
          {
            l with
            Ir.l_cond_stmts = List.map norm_stmt l.Ir.l_cond_stmts;
            l_step = List.map norm_stmt l.Ir.l_step;
            l_body = List.map norm_stmt l.Ir.l_body;
          }
    | Ir.Sswitch (op, gs) ->
        Ir.Sswitch
          ( op,
            List.map (fun g -> { g with Ir.g_body = List.map norm_stmt g.Ir.g_body }) gs )
  in
  { Ir.s_id = 0; s_loc = Cfront.Srcloc.dummy; s_desc = d }

let func_hash (f : Ir.func) : Digest.t =
  Digest.string
    (Marshal.to_string { f with Ir.fn_body = List.map norm_stmt f.Ir.fn_body } [])

let fn_hashes (p : Ir.program) : (string * Digest.t) list =
  List.map (fun f -> (f.Ir.fn_name, func_hash f)) p.Ir.funcs

(* Everything outside the function bodies that the result depends on: a
   change here invalidates every persisted summary at once. *)
let env_hash ~opts ~entry (p : Ir.program) : Digest.t =
  Digest.string
    (Marshal.to_string
       (p.Ir.globals, p.Ir.layouts, p.Ir.protos, opts_repr opts, entry)
       [])

(* Frames are persisted position-independently as (function, index of
   the statement within that function's textual order): program-wide
   statement ids shift under edits, but an unchanged function's local
   order is stable. *)
let stmt_index (p : Ir.program) :
    (int, string * int) Hashtbl.t * (string * int, int) Hashtbl.t =
  let by_id = Hashtbl.create 256 in
  let by_local = Hashtbl.create 256 in
  List.iter
    (fun f ->
      let i = ref 0 in
      Ir.fold_func
        (fun () s ->
          Hashtbl.replace by_id s.Ir.s_id (f.Ir.fn_name, !i);
          Hashtbl.replace by_local (f.Ir.fn_name, !i) s.Ir.s_id;
          incr i)
        () f)
    p.Ir.funcs;
  (by_id, by_local)

(** The v3 incremental section of a file, decoded but not yet bound to
    a program: frame statements are still (function index, local index)
    pairs, resolved against whatever program the summaries get seeded
    into. *)
type raw_summaries = {
  rs_env : string;  (** {!env_hash} of the saved run, 16 raw bytes *)
  rs_hashes : (string * string) list;
      (** per defined function, its {!func_hash} — the diff oracle *)
  rs_data : string;  (** the verified entry bytes the blocks index into *)
  rs_sets : Pts.t array;  (** the decoded set table the blocks reference *)
  rs_blocks : (string * int * int) list;
      (** per function, the (name, offset, length) of its still-encoded
          (input, output, frame) records — decoded by {!bind_summaries}
          only for the functions that will actually replay *)
}

(** Decode the records of the [keep]-satisfying functions and rebind
    their frames to [p]'s statement ids, dropping any record whose
    frame references a statement [p] does not have (defensive — the
    eligibility rule never seeds such a record). The blocks were
    digest-verified with the rest of the entry, so a decode failure
    still only means [Bad]. *)
let bind_summaries ?(keep = fun _ -> true) (p : Ir.program) (raw : raw_summaries) :
    Engine.summaries =
  let _, by_local = stmt_index p in
  let names = Array.of_list (List.map fst raw.rs_hashes) in
  let out = Engine.summaries_create () in
  List.iter
    (fun (fn, pos, len) ->
      if keep fn then begin
        let r = { data = raw.rs_data; pos } in
        let entries =
          r_list r (fun () ->
              let i = r_set_ref raw.rs_sets r in
              let o = r_set_ref raw.rs_sets r in
              let items =
                r_list r (fun () ->
                    let fi = r_u r in
                    let li = r_u r in
                    (fi, li, r_set_ref raw.rs_sets r))
              in
              (i, o, items))
        in
        if r.pos <> pos + len then raise Bad;
        List.iter
          (fun (se_in, se_out, items) ->
            let fr = Hashtbl.create 16 in
            let ok =
              List.for_all
                (fun (fi, li, s) ->
                  fi >= 0 && fi < Array.length names
                  &&
                  match Hashtbl.find_opt by_local (names.(fi), li) with
                  | None -> false
                  | Some sid ->
                      Hashtbl.replace fr sid s;
                      true)
                items
            in
            if ok then
              Engine.summaries_add out fn { Engine.se_in; se_out; se_frame = fr })
          entries
      end)
    raw.rs_blocks;
  out

(* ------------------------------------------------------------------ *)
(* Save                                                               *)
(* ------------------------------------------------------------------ *)

let rec mkdirs dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdirs parent;
    try Sys.mkdir dir 0o755 with Sys_error _ -> ()
  end

(* Concurrency-safe scratch names for the write-then-rename protocol:
   pid + domain id + a per-domain counter can never collide between two
   workers (unlike [Filename.temp_file], whose shared PRNG state is not
   domain-safe). The final [Sys.rename] is atomic within the cache
   directory, so a reader only ever sees absent or complete entries;
   two workers racing on the same digest each publish a complete file
   and the last rename wins. *)
let tmp_counter : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let tmp_name dir =
  let c = Domain.DLS.get tmp_counter in
  incr c;
  Filename.concat dir
    (Printf.sprintf ".ptan-%d-%d-%d.tmp" (Unix.getpid ())
       ((Domain.self () :> int))
       !c)

let save ~source ?(entry = "main") (res : Analysis.result) file =
  let t0 = Metrics.now () in
  let tr0 = Trace.start () in
  let opts = res.Analysis.tenv.Tenv.opts in
  let e = { tbl = Hashtbl.create 1024; buf = Buffer.create 8192; next = 0 } in
  let rw = { rw_tbl = Hashtbl.create 512; rw_buf = Buffer.create 8192; rw_next = 0 } in
  let se =
    { s_tbl = Hashtbl.create 256; s_buf = Buffer.create 8192; s_next = 0; s_last = None }
  in
  let pay = Buffer.create 65536 in
  let stmts =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) res.Analysis.stmt_pts []
    |> List.sort compare
  in
  w_u pay (List.length stmts);
  List.iter
    (fun (id, s) ->
      w_u pay id;
      w_u pay (set_idx e rw se s))
    stmts;
  w_state e rw se pay res.Analysis.entry_output;
  w_u pay (List.length res.Analysis.warnings);
  List.iter (w_str pay) res.Analysis.warnings;
  w_u pay res.Analysis.share_hits;
  w_u pay res.Analysis.bodies_analyzed;
  w_metrics pay res.Analysis.metrics;
  w_u pay res.Analysis.graph.Ig.n_nodes;
  w_node e rw se pay res.Analysis.graph.Ig.root;
  (* v3 incremental section: env hash, per-function content hashes and
     the recorded summaries (docs/INCREMENTAL.md). Sets intern into the
     same table as everything above. *)
  Buffer.add_string pay (env_hash ~opts ~entry res.Analysis.prog);
  let hashes = fn_hashes res.Analysis.prog in
  w_u pay (List.length hashes);
  List.iter
    (fun (n, d) ->
      w_str pay n;
      Buffer.add_string pay d)
    hashes;
  let fn_idx = Hashtbl.create 64 in
  List.iteri (fun i (n, _) -> Hashtbl.replace fn_idx n i) hashes;
  let by_id, _ = stmt_index res.Analysis.prog in
  let sum_fns =
    Hashtbl.fold
      (fun fn by_hash acc ->
        let entries = Hashtbl.fold (fun _ es acc -> es @ acc) by_hash [] in
        (fn, entries) :: acc)
      res.Analysis.summaries []
    |> List.sort compare
  in
  w_u pay (List.length sum_fns);
  (* each function's records go behind a byte-length prefix so the
     loader can skip the functions it will not replay *)
  let scratch = Buffer.create 4096 in
  List.iter
    (fun (fn, entries) ->
      w_str pay fn;
      Buffer.clear scratch;
      w_u scratch (List.length entries);
      List.iter
        (fun { Engine.se_in; se_out; se_frame } ->
          w_u scratch (set_idx e rw se se_in);
          w_u scratch (set_idx e rw se se_out);
          let items =
            Hashtbl.fold
              (fun sid s acc ->
                (* statements of undefined functions cannot occur in a
                   frame; [find] is total here *)
                let owner, li = Hashtbl.find by_id sid in
                (Hashtbl.find fn_idx owner, li, s) :: acc)
              se_frame []
            |> List.sort (fun (a, b, _) (c, d, _) -> compare (a, b) (c, d))
          in
          w_u scratch (List.length items);
          List.iter
            (fun (fi, li, s) ->
              w_u scratch fi;
              w_u scratch li;
              w_u scratch (set_idx e rw se s))
            items)
        entries;
      w_str pay (Buffer.contents scratch))
    sum_fns;
  let body = Buffer.create (Buffer.length e.buf + Buffer.length pay + 65536) in
  w_str body (Marshal.to_string res.Analysis.prog []);
  w_u body e.next;
  Buffer.add_buffer body e.buf;
  w_u body rw.rw_next;
  Buffer.add_buffer body rw.rw_buf;
  w_u body se.s_next;
  Buffer.add_buffer body se.s_buf;
  Buffer.add_buffer body pay;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 64) in
  Buffer.add_string out magic;
  w_u out version;
  Buffer.add_string out (Digest.from_hex (key ~source ~opts ~entry));
  Buffer.add_string out (Digest.string body);
  Buffer.add_string out body;
  mkdirs (Filename.dirname file);
  let tmp = tmp_name (Filename.dirname file) in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc (Buffer.contents out));
      Sys.rename tmp file;
      (* chaos harness: corrupt the published entry, exactly like torn
         storage under a complete, well-formed file name *)
      Fault.maybe_corrupt_file file);
  let m = Metrics.cur () in
  m.Metrics.t_serialize <- m.Metrics.t_serialize +. (Metrics.now () -. t0);
  if Trace.on () then
    Trace.emit Trace.Cache_store
      ~name:(Filename.basename source)
      ~pts_in:(Hashtbl.length res.Analysis.stmt_pts)
      ~t0:tr0 ()

(* ------------------------------------------------------------------ *)
(* Load                                                               *)
(* ------------------------------------------------------------------ *)

type load_error =
  | Missing  (** no file at that path *)
  | Stale
      (** well-formed entry keying a different source text, option
          record or entry function — not corrupt, just not ours *)
  | Corrupt
      (** truncation, bit damage, version skew, or any decode failure:
          the entry can never load again and should be quarantined *)

let load_error_name = function
  | Missing -> "missing"
  | Stale -> "stale"
  | Corrupt -> "corrupt"

(* internal: distinguishes the key-mismatch exit from [Bad] *)
exception Stale_key

(* Verify magic, version and the body digest; raises [Stale_key] on a
   key mismatch unless [check_key] is false (the incremental partial-hit
   path, which expects the source to have changed). The digest check
   runs before anything decodes: [Marshal.from_string] must only ever
   see bytes this process's [save] wrote. *)
let decode_header ~check_key ~source ~opts ~entry r =
  if r_raw r (String.length magic) <> magic then raise Bad;
  if r_u r <> version then raise Bad;
  let stored_key = r_raw r 16 in
  if check_key && stored_key <> Digest.from_hex (key ~source ~opts ~entry) then
    raise_notrace Stale_key;
  let body_digest = r_raw r 16 in
  if body_digest <> Digest.substring r.data r.pos (String.length r.data - r.pos) then
    raise Bad

let decode_body ~opts r : Analysis.result * raw_summaries =
  let prog : Ir.program = Marshal.from_string (r_str r) 0 in
  let arr = r_loc_table r in
  let rows = r_row_table arr r in
  let sets = r_set_table arr rows r in
  let n_stmts = r_u r in
  let stmt_pts = Hashtbl.create (max 16 n_stmts) in
  for _ = 1 to n_stmts do
    let id = r_u r in
    Hashtbl.replace stmt_pts id (r_set_ref sets r)
  done;
  let entry_output = r_state sets r in
  let warnings = r_list r (fun () -> r_str r) in
  let share_hits = r_u r in
  let bodies_analyzed = r_u r in
  let metrics = r_metrics r in
  let n_nodes = r_u r in
  let root = r_node arr sets r ~parent:None ~nodes:(Hashtbl.create 64) in
  let rs_env = r_raw r 16 in
  let rs_hashes = r_list r (fun () ->
      let n = r_str r in
      (n, r_raw r 16))
  in
  let rs_blocks =
    r_list r (fun () ->
        let fn = r_str r in
        let len = r_u r in
        if len < 0 || r.pos + len > String.length r.data then raise Bad;
        let pos = r.pos in
        r.pos <- r.pos + len;
        (fn, pos, len))
  in
  if r.pos <> String.length r.data then raise Bad;
  let raw = { rs_env; rs_hashes; rs_data = r.data; rs_sets = sets; rs_blocks } in
  let tenv = Tenv.make ~opts prog in
  ( {
      Analysis.prog;
      tenv;
      graph = { Ig.root; n_nodes };
      stmt_pts;
      entry_output;
      warnings;
      share_hits;
      bodies_analyzed;
      metrics;
      (* degraded results are never saved (see [analyze_cached]), so
         anything loaded back is a full-precision run *)
      degraded = None;
      (* loaded results are never re-saved, so the recorded summaries
         stay encoded in [raw] until a replay actually needs them *)
      summaries = Engine.summaries_create ();
    },
    raw )

let load_checked ~source ?(opts = Options.default) ?(entry = "main") file :
    (Analysis.result, load_error) result =
  let t0 = Metrics.now () in
  let tr0 = Trace.start () in
  let res =
    if not (Sys.file_exists file) then Error Missing
    else
    try
      let r = { data = read_file file; pos = 0 } in
      decode_header ~check_key:true ~source ~opts ~entry r;
      Ok (fst (decode_body ~opts r))
    with
    | Stale_key -> Error Stale
    | Bad | Failure _ | Invalid_argument _ | Sys_error _ | End_of_file -> Error Corrupt
  in
  let m = Metrics.cur () in
  m.Metrics.t_deserialize <- m.Metrics.t_deserialize +. (Metrics.now () -. t0);
  if Trace.on () then
    Trace.emit Trace.Cache_load
      ~name:(Filename.basename source)
      ~pts_out:
        (match res with Ok r -> Hashtbl.length r.Analysis.stmt_pts | Error _ -> -1)
      ~t0:tr0 ();
  res

let load ~source ?opts ?entry file : Analysis.result option =
  Result.to_option (load_checked ~source ?opts ?entry file)

(** Outcome of the incremental lookup, classified in one pass: one file
    read, one digest verification, one decode. A partial hit (the entry
    is well-formed but keys a different source text) carries the decoded
    result, the raw incremental section, and the key this lookup was
    after — everything the rekey and replay paths need without touching
    the file again. *)
type incr_load =
  | L_hit of Analysis.result * raw_summaries
  | L_partial of Analysis.result * raw_summaries * string
  | L_missing
  | L_corrupt

let load_incr ~source ~opts ~entry file : incr_load =
  if not (Sys.file_exists file) then L_missing
  else begin
    let t0 = Metrics.now () in
    let tr0 = Trace.start () in
    let res =
      try
        let r = { data = read_file file; pos = 0 } in
        if r_raw r (String.length magic) <> magic then raise Bad;
        if r_u r <> version then raise Bad;
        let stored_key = r_raw r 16 in
        let body_digest = r_raw r 16 in
        if
          body_digest
          <> Digest.substring r.data r.pos (String.length r.data - r.pos)
        then raise Bad;
        let res, raw = decode_body ~opts r in
        let mykey = Digest.from_hex (key ~source ~opts ~entry) in
        if String.equal stored_key mykey then L_hit (res, raw)
        else L_partial (res, raw, mykey)
      with
      | Bad | Failure _ | Invalid_argument _ | Sys_error _ | End_of_file -> L_corrupt
    in
    let m = Metrics.cur () in
    m.Metrics.t_deserialize <- m.Metrics.t_deserialize +. (Metrics.now () -. t0);
    if Trace.on () then
      Trace.emit Trace.Cache_load
        ~name:(Filename.basename source)
        ~pts_out:
          (match res with
          | L_hit (r, _) | L_partial (r, _, _) -> Hashtbl.length r.Analysis.stmt_pts
          | L_missing | L_corrupt -> -1)
        ~t0:tr0 ();
    res
  end

(* ------------------------------------------------------------------ *)
(* Cache                                                              *)
(* ------------------------------------------------------------------ *)

let default_cache_dir () =
  match Sys.getenv_opt "XDG_CACHE_HOME" with
  | Some d when d <> "" -> Filename.concat d "ptan"
  | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" -> Filename.concat (Filename.concat h ".cache") "ptan"
      | _ -> ".ptan-cache")

let cache_file ~cache_dir ~source ~opts ~entry =
  let base = Filename.remove_extension (Filename.basename source) in
  Filename.concat cache_dir (Printf.sprintf "%s-%s.ptc" base (key ~source ~opts ~entry))

(* The incremental entry must survive edits to the source, so its name
   cannot involve the content (unlike [cache_file], whose key makes an
   edited file's previous entry unreachable). One entry per
   (source path, options, entry function); the content key inside the
   header still distinguishes a full hit from a partial one. *)
let cache_file_incr ~cache_dir ~source ~opts ~entry =
  let base = Filename.remove_extension (Filename.basename source) in
  Filename.concat cache_dir
    (Printf.sprintf "%s-%s.pti" base
       (Digest.to_hex
          (Digest.string (Printf.sprintf "%s\x00%s\x00%s" source (opts_repr opts) entry))))

(* ------------------------------------------------------------------ *)
(* Replay eligibility and the dirty set                               *)
(* ------------------------------------------------------------------ *)

(* A function's persisted summaries may be replayed only when every
   function in its direct-call closure (over the NEW program) is
   unchanged and free of indirect call sites: such an evaluation is a
   pure function of its input that creates no invocation-graph nodes,
   so serving it from the summary is bit-identical to re-running it
   (docs/INCREMENTAL.md). The dirty set is the complement — edited
   functions, their (transitive) callers, and anything touching a
   function pointer. Computed as a decreasing fixed point: start from
   the locally-clean functions and strike out any whose callee chain
   fails. *)
let eligible_funcs (p : Ir.program) ~(old_hashes : (string, string) Hashtbl.t) :
    (string, unit) Hashtbl.t =
  let defined = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace defined f.Ir.fn_name ()) p.Ir.funcs;
  let callees = Hashtbl.create 64 in
  let elig = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let has_indirect = ref false in
      let cs = ref [] in
      Ir.fold_func
        (fun () s ->
          match s.Ir.s_desc with
          | Ir.Scall (_, Ir.Cdirect g, _) -> cs := g :: !cs
          | Ir.Scall (_, Ir.Cindirect _, _) -> has_indirect := true
          | _ -> ())
        () f;
      Hashtbl.replace callees f.Ir.fn_name !cs;
      let unchanged =
        match Hashtbl.find_opt old_hashes f.Ir.fn_name with
        | Some d -> String.equal d (func_hash f)
        | None -> false
      in
      if unchanged && not !has_indirect then Hashtbl.replace elig f.Ir.fn_name ())
    p.Ir.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    let drop =
      Hashtbl.fold
        (fun name () acc ->
          let bad =
            List.exists
              (fun g ->
                if Hashtbl.mem defined g then not (Hashtbl.mem elig g)
                else
                  (* undefined now: only fine if it was also external in
                     the saved run (same deterministic model) — a callee
                     deleted since then changes the caller's meaning *)
                  Hashtbl.mem old_hashes g)
              (Hashtbl.find callees name)
          in
          if bad then name :: acc else acc)
        elig []
    in
    if drop <> [] then begin
      changed := true;
      List.iter (Hashtbl.remove elig) drop
    end
  done;
  elig

(* Move a corrupt entry out of the lookup path (best effort — on rename
   failure the entry stays, and the next lookup will try again). The
   [.bad] file is kept rather than deleted so operators can post-mortem
   what corrupted it — which is why a pre-existing [.bad] (an earlier,
   still-uninspected corruption) must not be clobbered: later victims
   go to [.bad.1], [.bad.2], ... instead. *)
let quarantine file =
  let base = file ^ ".bad" in
  let dest =
    if not (Sys.file_exists base) then base
    else
      let rec fresh i =
        let c = Printf.sprintf "%s.%d" base i in
        if Sys.file_exists c then fresh (i + 1) else c
      in
      fresh 1
  in
  try Sys.rename file dest with Sys_error _ -> ()

(* Shared post-analysis bookkeeping of a cache miss: the analysis reset
   this domain's accumulator, so the pre-lookup counters are re-applied
   to both the accumulator and the result's snapshot. *)
let miss_bookkeeping ~quarantined (res : Analysis.result) =
  (Metrics.cur ()).Metrics.cache_quarantined <-
    (Metrics.cur ()).Metrics.cache_quarantined + quarantined;
  res.Analysis.metrics.Metrics.cache_quarantined <-
    res.Analysis.metrics.Metrics.cache_quarantined + quarantined;
  (Metrics.cur ()).Metrics.cache_misses <- (Metrics.cur ()).Metrics.cache_misses + 1;
  res.Analysis.metrics.Metrics.cache_misses <-
    res.Analysis.metrics.Metrics.cache_misses + 1;
  res.Analysis.metrics.Metrics.t_serialize <- (Metrics.cur ()).Metrics.t_serialize

(* Rewrite just the header key of an entry whose body is still byte-valid
   for the (edited) source: magic and version are unchanged, the stored
   16-byte key is replaced with [newkey], and the digest + body bytes of
   [data] (the bytes the lookup already read) are reused untouched.
   Atomic like [save]; best effort — on failure the stale key simply
   stays and the next lookup takes the partial path again. *)
let rekey_file ~data ~newkey file =
  try
    let r = { data; pos = 0 } in
    ignore (r_raw r (String.length magic));
    ignore (r_u r);
    let key_pos = r.pos in
    let out = Buffer.create (String.length data) in
    Buffer.add_substring out data 0 key_pos;
    Buffer.add_string out newkey;
    Buffer.add_substring out data (key_pos + 16) (String.length data - key_pos - 16);
    let tmp = tmp_name (Filename.dirname file) in
    Fun.protect
      ~finally:(fun () ->
        if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        Out_channel.with_open_bin tmp (fun oc ->
            Out_channel.output_string oc (Buffer.contents out));
        Sys.rename tmp file)
  with Bad | Sys_error _ | Failure _ | End_of_file -> ()

let load_summaries ~cache_dir ~source ~opts ?(entry = "main") (prog : Ir.program) :
    Engine.summaries option =
  (* same gate as [analyze_cached_incr]: summaries only replay under the
     seedable engine modes *)
  if not (opts.Options.context_sensitive && not opts.Options.heap_by_site) then None
  else
    let file = cache_file_incr ~cache_dir ~source ~opts ~entry in
    match load_incr ~source ~opts ~entry file with
    | L_missing | L_corrupt -> None
    | L_hit (_, raw) | L_partial (_, raw, _) ->
        if not (String.equal raw.rs_env (env_hash ~opts ~entry prog)) then None
        else begin
          let old_hashes = Hashtbl.create 64 in
          List.iter (fun (n, d) -> Hashtbl.replace old_hashes n d) raw.rs_hashes;
          let elig = eligible_funcs prog ~old_hashes in
          match bind_summaries ~keep:(Hashtbl.mem elig) prog raw with
          | exception Bad -> None
          | seeded -> Some seeded
        end

let analyze_cached_incr ~dir ~opts ~entry ?budget source : Analysis.result * bool =
  let file = cache_file_incr ~cache_dir:dir ~source ~opts ~entry in
  (* summaries replay only under the context-sensitive engine, and
     [heap_by_site] names heap objects by (position-dependent) statement
     id — both fall back to recording-only runs *)
  let seedable =
    opts.Options.context_sensitive && not opts.Options.heap_by_site
  in
  let quarantined = ref 0 in
  let t0 = Metrics.now () in
  match load_incr ~source ~opts ~entry file with
  | L_hit (res, _) ->
      let dt = Metrics.now () -. t0 in
      (Metrics.cur ()).Metrics.cache_hits <- (Metrics.cur ()).Metrics.cache_hits + 1;
      res.Analysis.metrics.Metrics.cache_hits <-
        res.Analysis.metrics.Metrics.cache_hits + 1;
      res.Analysis.metrics.Metrics.t_deserialize <-
        res.Analysis.metrics.Metrics.t_deserialize +. dt;
      (res, true)
  | (L_partial _ | L_missing | L_corrupt) as outcome -> (
      let partial =
        match outcome with
        | L_partial (res, raw, mykey) -> Some (res, raw, mykey)
        | L_corrupt ->
            (* truncated, damaged or version-skewed entry: quarantine it
               and fall back to a cold (but still recording) analysis *)
            quarantine file;
            incr quarantined;
            None
        | L_missing | L_hit _ -> None
      in
      let prog = Simple_ir.Simplify.of_file source in
      let n_defined = List.length prog.Ir.funcs in
      (* Rekey fast path: when the lowered program is byte-identical
         (comment / whitespace edits after the last statement), or every
         function hash matches and the run warned about nothing (so no
         persisted string can embed a shifted source position), the old
         body is still exactly the answer — only the header key is
         stale. Serve it as a hit without touching the engine. The
         hash-based gate additionally needs the seedable engine modes:
         [heap_by_site] names heap objects by statement id, which the
         hashes deliberately blank. *)
      let rekey =
        match partial with
        | Some (old_res, raw, mykey) ->
            let prog_identical () =
              String.equal
                (Digest.string (Marshal.to_string prog []))
                (Digest.string (Marshal.to_string old_res.Analysis.prog []))
            in
            let hashes_identical () =
              String.equal raw.rs_env (env_hash ~opts ~entry prog)
              && List.compare_lengths raw.rs_hashes prog.Ir.funcs = 0
              && List.for_all2
                   (fun (n, d) f ->
                     String.equal n f.Ir.fn_name && String.equal d (func_hash f))
                   raw.rs_hashes prog.Ir.funcs
            in
            if
              (seedable
              && old_res.Analysis.warnings = []
              && hashes_identical ())
              || prog_identical ()
            then Some (old_res, raw, mykey)
            else None
        | None -> None
      in
      match rekey with
      | Some (old_res, raw, mykey) ->
          (* fresh lowering in, so source positions track the edit; the
             statement ids it assigned are identical by construction *)
          let res =
            { old_res with Analysis.prog; tenv = Tenv.make ~opts prog }
          in
          rekey_file ~data:raw.rs_data ~newkey:mykey file;
          let m = Metrics.cur () in
          m.Metrics.cache_hits <- m.Metrics.cache_hits + 1;
          m.Metrics.incr_funcs_dirty <- 0;
          m.Metrics.incr_funcs_reused <- n_defined;
          res.Analysis.metrics.Metrics.cache_hits <-
            res.Analysis.metrics.Metrics.cache_hits + 1;
          res.Analysis.metrics.Metrics.incr_funcs_dirty <- 0;
          res.Analysis.metrics.Metrics.incr_funcs_reused <- n_defined;
          res.Analysis.metrics.Metrics.t_deserialize <-
            res.Analysis.metrics.Metrics.t_deserialize +. (Metrics.now () -. t0);
          (res, true)
      | None ->
          let raw = Option.map (fun (_, raw, _) -> raw) partial in
          let dirty, seeded =
            match raw with
            | Some raw
              when seedable && String.equal raw.rs_env (env_hash ~opts ~entry prog) ->
                let td0 = Trace.start () in
                let old_hashes = Hashtbl.create 64 in
                List.iter (fun (n, d) -> Hashtbl.replace old_hashes n d) raw.rs_hashes;
                let elig = eligible_funcs prog ~old_hashes in
                let dirty = n_defined - Hashtbl.length elig in
                (match bind_summaries ~keep:(Hashtbl.mem elig) prog raw with
                | exception Bad -> (n_defined, None)
                | seeded ->
                    if Trace.on () then
                      Trace.emit Trace.Dirty ~name:(Filename.basename source)
                        ~stmts:dirty ~t0:td0 ();
                    (dirty, Some seeded))
            | Some _ | None ->
                (* nothing usable (or the globals / layouts / externals /
                   options changed): everything is dirty *)
                (n_defined, None)
          in
          let res =
            Analysis.analyze ~opts ~entry ?budget ~record_summaries:seedable ?seeded prog
          in
          (Metrics.cur ()).Metrics.incr_funcs_dirty <- dirty;
          res.Analysis.metrics.Metrics.incr_funcs_dirty <- dirty;
          (if res.Analysis.degraded = None then
             try save ~source ~entry res file with Sys_error _ | Failure _ -> ());
          miss_bookkeeping ~quarantined:!quarantined res;
          (res, false))

let analyze_cached ?cache_dir ?(opts = Options.default) ?(entry = "main") ?budget
    ?(incremental = false) source : Analysis.result * bool =
  let dir = match cache_dir with Some d -> d | None -> default_cache_dir () in
  if incremental then analyze_cached_incr ~dir ~opts ~entry ?budget source
  else
  let file = try Some (cache_file ~cache_dir:dir ~source ~opts ~entry) with Sys_error _ -> None in
  let quarantined = ref 0 in
  let load_attempt =
    match file with
    | None -> None
    | Some f -> (
        let t0 = Metrics.now () in
        match load_checked ~source ~opts ~entry f with
        | Ok r -> Some (r, Metrics.now () -. t0)
        | Error Corrupt ->
            (* truncated, damaged or version-skewed entry: quarantine it
               and transparently fall back to a cold analysis *)
            quarantine f;
            incr quarantined;
            None
        | Error (Missing | Stale) -> None)
  in
  match load_attempt with
  | Some (res, dt) ->
      (Metrics.cur ()).Metrics.cache_hits <- (Metrics.cur ()).Metrics.cache_hits + 1;
      res.Analysis.metrics.Metrics.cache_hits <- res.Analysis.metrics.Metrics.cache_hits + 1;
      res.Analysis.metrics.Metrics.t_deserialize <-
        res.Analysis.metrics.Metrics.t_deserialize +. dt;
      (res, true)
  | None ->
      let res = Analysis.of_file ~opts ~entry ?budget source in
      (* a degraded result is not the full-precision answer this key
         promises — never publish it to the cache *)
      (match file with
      | Some f when res.Analysis.degraded = None -> (
          try save ~source ~entry res f with Sys_error _ | Failure _ -> ())
      | _ -> ());
      (* bumped after the analysis, which reset this domain's accumulator *)
      (Metrics.cur ()).Metrics.cache_quarantined <-
        (Metrics.cur ()).Metrics.cache_quarantined + !quarantined;
      res.Analysis.metrics.Metrics.cache_quarantined <-
        res.Analysis.metrics.Metrics.cache_quarantined + !quarantined;
      (Metrics.cur ()).Metrics.cache_misses <- (Metrics.cur ()).Metrics.cache_misses + 1;
      res.Analysis.metrics.Metrics.cache_misses <-
        res.Analysis.metrics.Metrics.cache_misses + 1;
      res.Analysis.metrics.Metrics.t_serialize <- (Metrics.cur ()).Metrics.t_serialize;
      (res, false)
