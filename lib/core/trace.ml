(** Structured tracing (see trace.mli).

    The sink is a per-domain ring of complete spans: {!start} reads the
    clock, {!emit} appends the finished span to the calling domain's
    ring. Rings register themselves in a global list on first use (one
    mutex-guarded append per domain lifetime), so {!collect} can merge
    them from the main domain once the workers have quiesced — the same
    ownership discipline as {!Metrics}: a ring is written only by its
    own domain, and read only after that domain's work is done.

    Disabled cost: {!on} is one [Atomic.get]; {!start} returns [0.]
    without touching the clock, and {!emit} returns before evaluating
    anything. The instrumentation sites in the engine guard argument
    construction with [if Trace.on () then ...], so a disabled sink
    leaves only the atomic load on the hot paths (the bench harness
    checks the resulting overhead bound). *)

type kind =
  | Analysis
  | Node
  | Body
  | Loop
  | Map
  | Unmap
  | Cache_load
  | Cache_store
  | Task
  | Widen
  | Request
  | Dirty
  | Replay
  | Slice
  | Demand
  | Checkpoint
  | Oom

let kind_name = function
  | Analysis -> "analysis"
  | Node -> "node"
  | Body -> "body"
  | Loop -> "loop"
  | Map -> "map"
  | Unmap -> "unmap"
  | Cache_load -> "cache-load"
  | Cache_store -> "cache-store"
  | Task -> "task"
  | Widen -> "widen"
  | Request -> "request"
  | Dirty -> "dirty"
  | Replay -> "replay"
  | Slice -> "slice"
  | Demand -> "demand"
  | Checkpoint -> "checkpoint"
  | Oom -> "oom"

let n_kinds = 17

let kind_idx = function
  | Analysis -> 0
  | Node -> 1
  | Body -> 2
  | Loop -> 3
  | Map -> 4
  | Unmap -> 5
  | Cache_load -> 6
  | Cache_store -> 7
  | Task -> 8
  | Widen -> 9
  | Request -> 10
  | Dirty -> 11
  | Replay -> 12
  | Slice -> 13
  | Demand -> 14
  | Checkpoint -> 15
  | Oom -> 16

type span = {
  sp_kind : kind;
  sp_name : string;
  sp_ctx : int;
  sp_dom : int;
  sp_t0 : float;
  sp_t1 : float;
  sp_stmts : int;
  sp_in : int;
  sp_out : int;
}

let dummy =
  {
    sp_kind = Analysis;
    sp_name = "";
    sp_ctx = 0;
    sp_dom = 0;
    sp_t0 = 0.;
    sp_t1 = 0.;
    sp_stmts = 0;
    sp_in = -1;
    sp_out = -1;
  }

(* ------------------------------------------------------------------ *)
(* Sink                                                               *)
(* ------------------------------------------------------------------ *)

type ring = {
  r_dom : int;
  mutable r_spans : span array;
  mutable r_len : int;
  mutable r_dropped : int;
}

let enabled = Atomic.make false
let cap = Atomic.make (1 lsl 20)

(* Registry of every ring ever created, so [collect]/[clear] reach the
   rings of worker domains. Appended to once per domain under the
   mutex; traversed by the main domain after workers quiesce. *)
let reg_mutex = Mutex.create ()
let rings : ring list ref = ref []

let ring_key : ring Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let r =
        { r_dom = (Domain.self () :> int); r_spans = [||]; r_len = 0; r_dropped = 0 }
      in
      Mutex.lock reg_mutex;
      rings := !rings @ [ r ];
      Mutex.unlock reg_mutex;
      r)

let on () = Atomic.get enabled

let enable ?(capacity = 1 lsl 20) () =
  Atomic.set cap (max 1 capacity);
  Atomic.set enabled true

let disable () = Atomic.set enabled false

let all_rings () =
  Mutex.lock reg_mutex;
  let rs = !rings in
  Mutex.unlock reg_mutex;
  rs

let clear () =
  List.iter
    (fun r ->
      r.r_len <- 0;
      r.r_dropped <- 0)
    (all_rings ())

let push r sp =
  let cap = Atomic.get cap in
  if r.r_len >= cap then r.r_dropped <- r.r_dropped + 1
  else begin
    if r.r_len >= Array.length r.r_spans then begin
      let n = min cap (max 1024 (2 * Array.length r.r_spans)) in
      let a = Array.make n dummy in
      Array.blit r.r_spans 0 a 0 r.r_len;
      r.r_spans <- a
    end;
    r.r_spans.(r.r_len) <- sp;
    r.r_len <- r.r_len + 1
  end

(* Span clocks are monotonic ({!Mono}): spans are consumed as
   durations and offsets from the earliest span, and a system clock
   step must not produce negative or inflated spans. *)
let start () = if Atomic.get enabled then Mono.now_s () else 0.

let emit k ~name ?(ctx = 0) ?(stmts = 0) ?(pts_in = -1) ?(pts_out = -1) ~t0 () =
  if Atomic.get enabled && t0 > 0. then begin
    let t1 = Mono.now_s () in
    let r = Domain.DLS.get ring_key in
    push r
      {
        sp_kind = k;
        sp_name = name;
        sp_ctx = ctx;
        sp_dom = r.r_dom;
        sp_t0 = t0;
        sp_t1 = t1;
        sp_stmts = stmts;
        sp_in = pts_in;
        sp_out = pts_out;
      }
  end

let collect () =
  List.concat_map
    (fun r -> Array.to_list (Array.sub r.r_spans 0 r.r_len))
    (all_rings ())

let dropped () = List.fold_left (fun acc r -> acc + r.r_dropped) 0 (all_rings ())

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON                                            *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_string spans =
  let b = Buffer.create 65536 in
  let t_min =
    List.fold_left (fun acc s -> Float.min acc s.sp_t0) Float.infinity spans
  in
  let t_min = if t_min = Float.infinity then 0. else t_min in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () = if !first then first := false else Buffer.add_char b ',' in
  (* thread-name metadata: one per domain, so the Perfetto timeline
     labels each track *)
  let doms =
    List.sort_uniq compare (List.map (fun s -> s.sp_dom) spans)
  in
  List.iter
    (fun d ->
      sep ();
      Printf.bprintf b
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain %d\"}}"
        d d)
    doms;
  List.iter
    (fun s ->
      sep ();
      Printf.bprintf b
        "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"ctx\":\"%08x\",\"stmts\":%d,\"pts_in\":%d,\"pts_out\":%d}}"
        (json_escape s.sp_name) (kind_name s.sp_kind) s.sp_dom
        ((s.sp_t0 -. t_min) *. 1e6)
        ((s.sp_t1 -. s.sp_t0) *. 1e6)
        (s.sp_ctx land 0xffffffff)
        s.sp_stmts s.sp_in s.sp_out)
    spans;
  Buffer.add_string b "]}";
  Buffer.contents b

let save_json file spans =
  Out_channel.with_open_bin file (fun oc ->
      Out_channel.output_string oc (json_string spans))

(* ------------------------------------------------------------------ *)
(* Self-profile                                                       *)
(* ------------------------------------------------------------------ *)

(** A span annotated with its place in the per-domain nesting tree. *)
type item = {
  it_span : span;
  mutable it_self : float;  (** duration minus directly nested spans *)
  mutable it_root : bool;  (** no enclosing span on its domain *)
  it_nested : int array;  (** direct children, counted per kind *)
}

(** Reconstruct the nesting forest of each domain's spans. Spans on one
    domain are properly nested by construction (a child span both
    starts after and ends before its parent, and the clock is
    non-decreasing), so sorting by start time — longest span first on
    ties — and sweeping a stack recovers parenthood. *)
let annotate spans : item list =
  let by_dom = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let l = Option.value ~default:[] (Hashtbl.find_opt by_dom s.sp_dom) in
      Hashtbl.replace by_dom s.sp_dom (s :: l))
    spans;
  Hashtbl.fold
    (fun _ dom_spans acc ->
      let arr =
        Array.of_list
          (List.rev_map
             (fun s ->
               {
                 it_span = s;
                 it_self = s.sp_t1 -. s.sp_t0;
                 it_root = true;
                 it_nested = Array.make n_kinds 0;
               })
             dom_spans)
      in
      Array.sort
        (fun a b ->
          match compare a.it_span.sp_t0 b.it_span.sp_t0 with
          | 0 -> compare b.it_span.sp_t1 a.it_span.sp_t1
          | c -> c)
        arr;
      let stack = ref [] in
      Array.iter
        (fun it ->
          let s = it.it_span in
          let rec unwind () =
            match !stack with
            | top :: rest when top.it_span.sp_t1 <= s.sp_t0 ->
                stack := rest;
                unwind ()
            | _ -> ()
          in
          unwind ();
          (match !stack with
          | top :: _ when s.sp_t1 <= top.it_span.sp_t1 ->
              it.it_root <- false;
              top.it_self <- top.it_self -. (s.sp_t1 -. s.sp_t0);
              top.it_nested.(kind_idx s.sp_kind) <-
                top.it_nested.(kind_idx s.sp_kind) + 1
          | _ -> ());
          stack := it :: !stack)
        arr;
      Array.fold_left (fun acc it -> it :: acc) acc arr)
    by_dom []

type prof_row = {
  pr_kind : kind;
  pr_name : string;
  pr_count : int;
  pr_cum : float;
  pr_self : float;
}

let profile spans : prof_row list =
  let tbl : (int * string, prof_row ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun it ->
      let s = it.it_span in
      let key = (kind_idx s.sp_kind, s.sp_name) in
      let dur = s.sp_t1 -. s.sp_t0 in
      let self = Float.max 0. it.it_self in
      match Hashtbl.find_opt tbl key with
      | Some r ->
          r :=
            {
              !r with
              pr_count = !r.pr_count + 1;
              pr_cum = !r.pr_cum +. dur;
              pr_self = !r.pr_self +. self;
            }
      | None ->
          Hashtbl.replace tbl key
            (ref
               {
                 pr_kind = s.sp_kind;
                 pr_name = s.sp_name;
                 pr_count = 1;
                 pr_cum = dur;
                 pr_self = self;
               }))
    (annotate spans);
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b ->
         match compare b.pr_cum a.pr_cum with
         | 0 -> compare (a.pr_name, kind_idx a.pr_kind) (b.pr_name, kind_idx b.pr_kind)
         | c -> c)

let coverage spans : float =
  let items = annotate spans in
  let by_dom = Hashtbl.create 8 in
  List.iter
    (fun it ->
      let s = it.it_span in
      let lo, hi, root =
        match Hashtbl.find_opt by_dom s.sp_dom with
        | Some (lo, hi, root) -> (lo, hi, root)
        | None -> (Float.infinity, Float.neg_infinity, 0.)
      in
      let root = if it.it_root then root +. (s.sp_t1 -. s.sp_t0) else root in
      Hashtbl.replace by_dom s.sp_dom
        (Float.min lo s.sp_t0, Float.max hi s.sp_t1, root))
    items;
  let extent, root =
    Hashtbl.fold
      (fun _ (lo, hi, root) (e_acc, r_acc) -> (e_acc +. (hi -. lo), r_acc +. root))
      by_dom (0., 0.)
  in
  if extent <= 0. then 1. else Float.min 1. (root /. extent)

let iteration_histogram spans (outer, inner) : (int * int) list =
  let counts = Hashtbl.create 16 in
  List.iter
    (fun it ->
      if it.it_span.sp_kind = outer then begin
        let n = it.it_nested.(kind_idx inner) in
        Hashtbl.replace counts n
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts n))
      end)
    (annotate spans);
  Hashtbl.fold (fun n c acc -> (n, c) :: acc) counts [] |> List.sort compare

let pp_histogram ppf h =
  if h = [] then Fmt.pf ppf "(none)"
  else
    Fmt.(list ~sep:(any ", ") (fun ppf (n, c) -> pf ppf "%dx%d" n c)) ppf h

let pp_profile ?(top = 15) ppf spans =
  match spans with
  | [] -> Fmt.pf ppf "trace: no spans recorded@."
  | _ ->
      let n = List.length spans in
      let doms = List.sort_uniq compare (List.map (fun s -> s.sp_dom) spans) in
      let t_lo = List.fold_left (fun a s -> Float.min a s.sp_t0) Float.infinity spans in
      let t_hi =
        List.fold_left (fun a s -> Float.max a s.sp_t1) Float.neg_infinity spans
      in
      let wall = t_hi -. t_lo in
      let rows = profile spans in
      Fmt.pf ppf
        "trace: %d spans on %d domain(s), %d dropped; wall %.3f ms; root-span coverage \
         %.1f%%@."
        n (List.length doms) (dropped ()) (wall *. 1e3)
        (100. *. coverage spans);
      let header () =
        Fmt.pf ppf "%-12s %-24s %8s %12s %12s %7s@." "kind" "name" "count" "cum ms"
          "self ms" "self%"
      in
      let row r =
        Fmt.pf ppf "%-12s %-24s %8d %12.3f %12.3f %6.1f%%@." (kind_name r.pr_kind)
          r.pr_name r.pr_count (r.pr_cum *. 1e3) (r.pr_self *. 1e3)
          (if wall > 0. then 100. *. r.pr_self /. wall else 0.)
      in
      let take n l = List.filteri (fun i _ -> i < n) l in
      Fmt.pf ppf "@.top %d by cumulative time:@." (min top (List.length rows));
      header ();
      List.iter row (take top rows);
      let by_self =
        List.sort
          (fun a b ->
            match compare b.pr_self a.pr_self with
            | 0 -> compare a.pr_name b.pr_name
            | c -> c)
          rows
      in
      Fmt.pf ppf "@.top %d by self time:@." (min top (List.length rows));
      header ();
      List.iter row (take top by_self);
      Fmt.pf ppf
        "@.fixpoint iteration histograms (iterations x spans):@.\
         \  body passes per node evaluation:   %a@.\
         \  loop-head iterations per body:     %a@."
        pp_histogram
        (iteration_histogram spans (Node, Body))
        pp_histogram
        (iteration_histogram spans (Body, Loop))
