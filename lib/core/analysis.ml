(** Top-level driver: build the invocation graph, run the
    context-sensitive interprocedural points-to analysis from [main], and
    package the results.

    The result carries everything later phases need (paper §6.1): the
    program-point-specific points-to sets, and the complete invocation
    graph with stored IN/OUT pairs and map information. *)

module Ir = Simple_ir.Ir
module Ig = Invocation_graph
open Cfront

(** Why and how a result was degraded: the budget trip that aborted the
    precise run, and the budget it was running under. *)
type degradation = {
  deg_trip : Guard.trip;
  deg_budget : Guard.budget;
}

type result = {
  prog : Ir.program;
  tenv : Tenv.t;
  graph : Ig.t;
  stmt_pts : (int, Pts.t) Hashtbl.t;
      (** points-to set valid at each statement (input, merged over all
          invocation contexts) *)
  entry_output : Pts.state;  (** output set of the entry function *)
  warnings : string list;
  share_hits : int;
      (** evaluations avoided by §6 sub-tree sharing (option
          [share_contexts]) *)
  bodies_analyzed : int;  (** function-body passes performed *)
  metrics : Metrics.t;  (** per-phase timing and operation counters *)
  degraded : degradation option;
      (** [Some _] when the budget blew and these tables come from the
          widened (context-insensitive, possible-only) rerun *)
  summaries : Engine.summaries;
      (** per-(function, input) summaries recorded during the run when
          [record_summaries] was set (empty otherwise); what {!Persist}
          writes into the v3 summary section for incremental
          re-analysis *)
}

(** Initial points-to set for the entry function: global and local
    pointers are NULL-initialized; pointer parameters of the entry (e.g.
    [argv]) conservatively point into the heap. *)
let initial_input (tenv : Tenv.t) (entry_fn : Ir.func) : Pts.t =
  let s = ref Pts.empty in
  List.iter
    (fun (g, ty) -> s := Map_unmap.null_init tenv (Loc.var g Loc.Kglobal) ty !s)
    tenv.Tenv.prog.Ir.globals;
  List.iter
    (fun (n, ty) -> s := Map_unmap.null_init tenv (Loc.var n Loc.Klocal) ty !s)
    entry_fn.Ir.fn_locals;
  List.iter
    (fun (n, ty) ->
      List.iter
        (fun (cell, _) -> s := Pts.add cell Loc.Heap Pts.P !s)
        (Tenv.pointer_cells tenv (Loc.var n Loc.Kparam) ty))
    entry_fn.Ir.fn_params;
  (match Ctype.decay entry_fn.Ir.fn_ret with
  | Ctype.Ptr _ -> s := Pts.add (Loc.ret entry_fn.Ir.fn_name) Loc.Null Pts.D !s
  | _ -> ());
  !s

exception No_entry of string

(** A degradation checkpoint: the aborted precise run's partial
    per-function IN/OUT state, demoted to possible-only relationships,
    in the shape of the widened engine's per-function slots. Seeding the
    widened rerun from it resumes the work the trip unwound instead of
    discarding it: every checkpointed pair is a fact the precise run
    established (completed §6-memo evaluations and the invocation
    graph's stored partial IN/OUT pairs), and widening it can only move
    it toward the context-insensitive superset the rerun converges to,
    so the degraded-superset property is untouched
    (docs/ROBUSTNESS.md). *)
type ci_seed = (string * (Pts.t option * Pts.state)) list

(* widen one set: every relationship becomes possible-only *)
let demote (s : Pts.t) : Pts.t =
  Pts.fold (fun src tgt _cert acc -> Pts.add src tgt Pts.P acc) s Pts.empty

let checkpoint_of (ctx : Engine.ctx) (graph : Ig.t) : ci_seed =
  let slots : (string, Pts.t option * Pts.state) Hashtbl.t = Hashtbl.create 64 in
  let note name (i : Pts.state) (o : Pts.state) =
    let di = Option.map demote i and dm = Option.map demote o in
    let cur_i, cur_o =
      Option.value ~default:(None, None) (Hashtbl.find_opt slots name)
    in
    Hashtbl.replace slots name (Pts.merge_state cur_i di, Pts.merge_state cur_o dm)
  in
  Hashtbl.iter
    (fun name by_hash ->
      Hashtbl.iter
        (fun _h entries -> List.iter (fun (i, o) -> note name (Some i) (Some o)) entries)
        by_hash)
    ctx.Engine.share_memo;
  Ig.fold
    (fun () node -> note node.Ig.func node.Ig.stored_input node.Ig.stored_output)
    () graph;
  Hashtbl.fold (fun name slot acc -> (name, slot) :: acc) slots []

(** One full run under [guard]: raises [Guard.Exhausted] when the budget
    blows — [analyze] below handles the degradation. Does not touch the
    Metrics accumulator's lifecycle (the caller resets once, so the
    degraded rerun accumulates on top of the aborted precise run).
    [checkpoint_out] receives the partial-state checkpoint when the
    budget trips; [ci_seed] pre-loads the widened engine's per-function
    slots from a previous trip's checkpoint. *)
let run ~opts ~entry ~guard ~degraded ?(record_summaries = false) ?seeded
    ?checkpoint_out ?(ci_seed = []) (prog : Ir.program) : result =
  let tenv = Tenv.make ~opts prog in
  let entry_fn =
    match Tenv.find_func tenv entry with
    | Some f -> f
    | None -> raise (No_entry entry)
  in
  let graph = Ig.build tenv ~entry in
  let ctx = Engine.make_ctx ~guard ~record_summaries ?seeded tenv in
  List.iter
    (fun (name, slot) -> Hashtbl.replace ctx.Engine.ci_slots name slot)
    ci_seed;
  let input0 = initial_input tenv entry_fn in
  let t0 = Metrics.now () in
  let ttr = Trace.start () in
  let eval () =
    if opts.Options.context_sensitive then
      Engine.eval_node ctx graph.Ig.root entry_fn input0
    else begin
      (* context-insensitive ablation: iterate whole-program passes until
         no per-function slot changes *)
      let out = ref Pts.bot in
      let continue_ = ref true in
      while !continue_ do
        ctx.Engine.ci_changed <- false;
        Hashtbl.reset ctx.Engine.stmt_pts;
        Hashtbl.reset ctx.Engine.ci_done;
        out := Engine.eval_ci ctx graph.Ig.root entry_fn input0;
        if not ctx.Engine.ci_changed then continue_ := false
      done;
      !out
    end
  in
  let entry_output =
    try eval ()
    with Guard.Exhausted _ as e ->
      (match checkpoint_out with
      | None -> ()
      | Some slot ->
          let tc0 = Trace.start () in
          let ck = checkpoint_of ctx graph in
          slot := Some ck;
          if Trace.on () then
            Trace.emit Trace.Checkpoint ~name:entry ~stmts:(List.length ck) ~t0:tc0 ());
      raise e
  in
  (Metrics.cur ()).Metrics.t_analysis <- Metrics.now () -. t0;
  if Trace.on () then
    Trace.emit Trace.Analysis ~name:entry
      ~stmts:(Ir.fold_program (fun n _ -> n + 1) 0 prog)
      ~pts_in:(Pts.cardinal input0)
      ~pts_out:(match entry_output with Some s -> Pts.cardinal s | None -> -1)
      ~t0:ttr ();
  {
    prog;
    tenv;
    graph;
    stmt_pts = ctx.Engine.stmt_pts;
    entry_output;
    warnings = ctx.Engine.warnings;
    share_hits = ctx.Engine.share_hits;
    bodies_analyzed = ctx.Engine.bodies_analyzed;
    metrics = Metrics.snapshot ();
    degraded;
    summaries = ctx.Engine.summaries;
  }

let analyze ?(opts = Options.default) ?(entry = "main") ?budget
    ?(record_summaries = false) ?seeded (prog : Ir.program) : result =
  Metrics.reset ();
  let guard = Guard.of_budget budget in
  (* the guard may carry a heap-ceiling {!Gc.alarm}; never leak it *)
  Fun.protect ~finally:(fun () -> Guard.dispose guard) @@ fun () ->
  let ckpt : ci_seed option ref = ref None in
  try
    run ~opts ~entry ~guard ~degraded:None ~record_summaries ?seeded
      ~checkpoint_out:ckpt prog
  with Guard.Exhausted trip ->
    (* Graceful degradation: rerun under the widened semantics — the
       context-insensitive merged summary with possible-only
       relationships, i.e. exactly the ablation the engine already
       implements. That mode is polynomial where the precise one can
       blow up, so it gets the same wall-clock allowance afresh and no
       fuel, size, or heap ceiling ({!Guard.widened}); a second
       exhaustion is a genuine failure and propagates. The rerun does
       not start cold: it is seeded from the checkpoint [run] took at
       the trip — the aborted run's partial per-function state, widened
       (sound: it only moves facts toward the superset the rerun
       converges to). *)
    Metrics.((cur ()).budget_trips <- (cur ()).budget_trips + 1);
    if trip.Guard.t_reason = Guard.Heap then begin
      Metrics.((cur ()).heap_trips <- (cur ()).heap_trips + 1);
      if Trace.on () then
        Trace.emit Trace.Oom ~name:entry
          ~pts_in:((Gc.quick_stat ()).Gc.heap_words / (1024 * 1024 / (Sys.word_size / 8)))
          ~t0:(Trace.start ()) ();
      (* the aborted run's state is garbage now; return it to the OS
         before the rerun allocates its own *)
      Guard.dispose guard;
      Gc.compact ()
    end;
    let wopts =
      { opts with Options.context_sensitive = false; Options.use_definite = false }
    in
    let wguard = Guard.widened guard in
    let degraded = Some { deg_trip = trip; deg_budget = Guard.budget guard } in
    let ci_seed = Option.value ~default:[] !ckpt in
    Metrics.((cur ()).ckpt_funcs <- (cur ()).ckpt_funcs + List.length ci_seed);
    let tw0 = Trace.start () in
    let r = run ~opts:wopts ~entry ~guard:wguard ~degraded ~ci_seed prog in
    if Trace.on () then Trace.emit Trace.Widen ~name:entry ~t0:tw0 ();
    r

let analyze_demand ?(opts = Options.default) ?(entry = "main") ?seeded ~plan
    (prog : Ir.program) : result =
  if not opts.Options.context_sensitive then
    (* The slice rule is argued against the context-sensitive engine;
       the ablation is cheap enough to just run exhaustively. *)
    analyze ~opts ~entry ?seeded prog
  else begin
    (* No [Metrics.reset] here: the caller resets once before building
       the plan, so the Slice and Demand counters land in one epoch
       ({!Alias.Demand_driver.analyze} does). *)
    let demand_run () =
      let tenv = Tenv.make ~opts prog in
      let entry_fn =
        match Tenv.find_func tenv entry with
        | Some f -> f
        | None -> raise (No_entry entry)
      in
      let graph = Ig.build ~within:(Demand.in_slice plan) tenv ~entry in
      let guard = Guard.of_budget None in
      let ctx = Engine.make_ctx ~guard ?seeded ~demand:plan tenv in
      let input0 = initial_input tenv entry_fn in
      let t0 = Metrics.now () in
      let ttr = Trace.start () in
      let entry_output = Engine.eval_node ctx graph.Ig.root entry_fn input0 in
      (Metrics.cur ()).Metrics.t_analysis <- Metrics.now () -. t0;
      if Trace.on () then
        Trace.emit Trace.Demand ~name:plan.Demand.p_seed
          ~stmts:(Demand.slice_size plan) ~pts_in:(Pts.cardinal input0)
          ~pts_out:(match entry_output with Some s -> Pts.cardinal s | None -> -1)
          ~t0:ttr ();
      {
        prog;
        tenv;
        graph;
        stmt_pts = ctx.Engine.stmt_pts;
        entry_output;
        warnings = ctx.Engine.warnings;
        share_hits = ctx.Engine.share_hits;
        bodies_analyzed = ctx.Engine.bodies_analyzed;
        metrics = Metrics.snapshot ();
        degraded = None;
        summaries = Engine.summaries_create ();
      }
    in
    try demand_run ()
    with Demand.Oracle_miss _ ->
      (* An evaluated indirect site resolved to a defined target the
         planning oracle missed: the slice is untrustworthy. Rerun
         exhaustively — [analyze] resets the metrics, so carry the
         demand counters of the aborted attempt (and the fallback
         itself) over into both the fresh accumulator and the snapshot
         the caller reports from. *)
      let a = Metrics.cur () in
      let plans = a.Metrics.demand_plans
      and slice = a.Metrics.demand_slice_funcs
      and total = a.Metrics.demand_funcs_total
      and skipped = a.Metrics.demand_skipped
      and replays = a.Metrics.demand_replays in
      let r = analyze ~opts ~entry ?seeded prog in
      let carry (m : Metrics.t) =
        m.Metrics.demand_plans <- m.Metrics.demand_plans + plans;
        m.Metrics.demand_slice_funcs <- m.Metrics.demand_slice_funcs + slice;
        m.Metrics.demand_funcs_total <- m.Metrics.demand_funcs_total + total;
        m.Metrics.demand_skipped <- m.Metrics.demand_skipped + skipped;
        m.Metrics.demand_replays <- m.Metrics.demand_replays + replays;
        m.Metrics.demand_fallbacks <- m.Metrics.demand_fallbacks + 1
      in
      carry (Metrics.cur ());
      carry r.metrics;
      r
  end

(** Convenience: parse, simplify and analyze C source text. *)
let of_string ?opts ?entry ?budget ?file src =
  analyze ?opts ?entry ?budget (Simple_ir.Simplify.of_string ?file src)

let of_file ?opts ?entry ?budget path =
  analyze ?opts ?entry ?budget (Simple_ir.Simplify.of_file path)

(** The points-to set valid at statement [id] ([Pts.empty] when the
    statement was never reached). *)
let pts_at (r : result) (id : int) : Pts.t =
  Option.value ~default:Pts.empty (Hashtbl.find_opt r.stmt_pts id)

(** Points-to pairs at a statement excluding NULL targets (the paper's
    statistics exclude the pairs contributed by NULL initialization,
    §6). *)
let pts_at_no_null (r : result) (id : int) : Pts.t =
  Pts.remove_tgt Loc.Null (pts_at r id)
