(** Engine observability: per-phase timing and work counters.

    One mutable record per domain accumulates counts from the hot paths
    of the analysis — the points-to lattice operations ({!Pts}), the
    kill / change / gen rule and the fixed points ({!Engine}), and the
    call mapping machinery ({!Map_unmap}). {!Analysis.analyze} resets
    the calling domain's record on entry and stores a {!snapshot} in its
    result, so every result carries the exact work its computation
    performed.

    The accumulator is domain-local ({!Domain.DLS}): an analysis runs
    wholly on one domain, so parallel workers ({!Pool}) never contend on
    the counters and each produces a coherent snapshot. Aggregate
    snapshots from several tasks with {!add_into} / {!sum} when one
    table must cover a whole suite.

    The counters are deliberately cheap (single mutable-int bumps) so
    they can stay enabled in benchmark runs. *)

type t = {
  (* Pts lattice operations *)
  mutable merges : int;  (** {!Pts.merge} invocations *)
  mutable merge_fast : int;
      (** merges answered by the subsumption pre-check without
          rebuilding the map *)
  mutable equal_checks : int;  (** {!Pts.equal} invocations *)
  mutable equal_fast : int;
      (** equalities decided by physical identity or the cardinality
          pre-check alone *)
  mutable covered_checks : int;  (** {!Pts.covered_by} invocations *)
  mutable covered_fast : int;
      (** coverings decided by identity or cardinality alone *)
  (* Figure 1 rule applications *)
  mutable assigns : int;  (** kill/change/gen rule applications *)
  mutable kills : int;  (** strong updates: sources killed *)
  mutable weakens : int;  (** weak updates: sources demoted *)
  mutable gens : int;  (** generated (L, R) pairs *)
  (* fixed points *)
  mutable loop_iters : int;  (** loop-head fixed-point iterations *)
  mutable rec_iters : int;
      (** re-evaluations forced by the recursion fixed point (Figure 4)
          and by pending approximate-node inputs *)
  mutable bodies : int;  (** function-body passes *)
  (* §6 sub-tree sharing memo *)
  mutable memo_lookups : int;
  mutable memo_hits : int;
  (* map/unmap (§4.1) *)
  mutable map_calls : int;
  mutable unmap_calls : int;
  (* result cache ({!Persist}) *)
  mutable cache_hits : int;  (** results served from the disk cache *)
  mutable cache_misses : int;  (** cache lookups that fell back to analysis *)
  mutable cache_quarantined : int;
      (** corrupt cache entries renamed to [.bad] and re-analyzed *)
  (* resource governor ({!Guard}) *)
  mutable budget_trips : int;
      (** budget exhaustions that degraded an analysis to the widened
          (context-insensitive, possible-only) rerun *)
  mutable heap_trips : int;
      (** budget trips whose reason was the [--max-heap-mb] memory
          ceiling (a subset of [budget_trips]) *)
  mutable ckpt_funcs : int;
      (** per-function IN/OUT slots seeded into a widened rerun from
          the aborted precise run's checkpoint (docs/ROBUSTNESS.md) *)
  (* incremental re-analysis ({!Persist.analyze_cached} with
     [~incremental:true]) *)
  mutable incr_funcs_dirty : int;
      (** functions marked dirty by the content-hash diff (edited
          functions plus everything that can reach one) *)
  mutable incr_funcs_reused : int;
      (** summary replays: memoized (input, output) pairs served from
          the persisted v3 summaries instead of re-running the body *)
  (* demand-driven mode ({!Demand} / {!Analysis.analyze_demand}) *)
  mutable demand_plans : int;  (** slice plans built *)
  mutable demand_slice_funcs : int;
      (** functions in the planned slices (summed over plans) *)
  mutable demand_funcs_total : int;
      (** defined functions in the planned programs (summed over plans) *)
  mutable demand_skipped : int;
      (** out-of-slice call evaluations answered by the widened
          transfer *)
  mutable demand_replays : int;
      (** out-of-slice call evaluations answered exactly from a seeded
          summary *)
  mutable demand_fallbacks : int;
      (** demand analyses aborted to the exhaustive engine (oracle
          conservatism violated at an indirect site) *)
  (* external-call model ({!Libmodel}) *)
  mutable ext_modeled : int;
      (** external call evaluations answered by the library-model
          table *)
  mutable ext_unmodeled : int;
      (** external call evaluations that fell back to the coarse
          model *)
  (* analysis daemon ({!Serve}); daemon-level counters, always 0 in a
     single analysis' snapshot and deliberately not persisted *)
  mutable serve_requests : int;  (** protocol requests received *)
  mutable serve_errors : int;  (** requests answered with an [error] reply *)
  mutable serve_shed : int;
      (** requests shed by admission control (a [busy] reply) *)
  (* per-phase wall-clock time, seconds *)
  mutable t_map : float;  (** in {!Map_unmap.map_call} *)
  mutable t_unmap : float;  (** in {!Map_unmap.unmap_call} *)
  mutable t_analysis : float;  (** whole {!Analysis.analyze} run *)
  mutable t_serialize : float;  (** in {!Persist.save} *)
  mutable t_deserialize : float;  (** in {!Persist.load} *)
}

let create () =
  {
    merges = 0;
    merge_fast = 0;
    equal_checks = 0;
    equal_fast = 0;
    covered_checks = 0;
    covered_fast = 0;
    assigns = 0;
    kills = 0;
    weakens = 0;
    gens = 0;
    loop_iters = 0;
    rec_iters = 0;
    bodies = 0;
    memo_lookups = 0;
    memo_hits = 0;
    map_calls = 0;
    unmap_calls = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_quarantined = 0;
    budget_trips = 0;
    heap_trips = 0;
    ckpt_funcs = 0;
    incr_funcs_dirty = 0;
    incr_funcs_reused = 0;
    demand_plans = 0;
    demand_slice_funcs = 0;
    demand_funcs_total = 0;
    demand_skipped = 0;
    demand_replays = 0;
    demand_fallbacks = 0;
    ext_modeled = 0;
    ext_unmodeled = 0;
    serve_requests = 0;
    serve_errors = 0;
    serve_shed = 0;
    t_map = 0.;
    t_unmap = 0.;
    t_analysis = 0.;
    t_serialize = 0.;
    t_deserialize = 0.;
  }

(* One accumulator per domain: worker domains spawned by {!Pool} get a
   fresh record on first use, so the hot-path bumps below never race. *)
let key : t Domain.DLS.key = Domain.DLS.new_key create

(** The calling domain's accumulator. *)
let cur () = Domain.DLS.get key

let reset () =
  let cur = cur () in
  cur.merges <- 0;
  cur.merge_fast <- 0;
  cur.equal_checks <- 0;
  cur.equal_fast <- 0;
  cur.covered_checks <- 0;
  cur.covered_fast <- 0;
  cur.assigns <- 0;
  cur.kills <- 0;
  cur.weakens <- 0;
  cur.gens <- 0;
  cur.loop_iters <- 0;
  cur.rec_iters <- 0;
  cur.bodies <- 0;
  cur.memo_lookups <- 0;
  cur.memo_hits <- 0;
  cur.map_calls <- 0;
  cur.unmap_calls <- 0;
  cur.cache_hits <- 0;
  cur.cache_misses <- 0;
  cur.cache_quarantined <- 0;
  cur.budget_trips <- 0;
  cur.heap_trips <- 0;
  cur.ckpt_funcs <- 0;
  cur.incr_funcs_dirty <- 0;
  cur.incr_funcs_reused <- 0;
  cur.demand_plans <- 0;
  cur.demand_slice_funcs <- 0;
  cur.demand_funcs_total <- 0;
  cur.demand_skipped <- 0;
  cur.demand_replays <- 0;
  cur.demand_fallbacks <- 0;
  cur.ext_modeled <- 0;
  cur.ext_unmodeled <- 0;
  cur.serve_requests <- 0;
  cur.serve_errors <- 0;
  cur.serve_shed <- 0;
  cur.t_map <- 0.;
  cur.t_unmap <- 0.;
  cur.t_analysis <- 0.;
  cur.t_serialize <- 0.;
  cur.t_deserialize <- 0.

let snapshot () =
  let cur = cur () in
  { cur with merges = cur.merges }

(** [add_into ~into m]: accumulate every counter and timer of [m] into
    [into]. Used to aggregate the per-task snapshots of a parallel run
    into one table; times add up to total CPU-seconds across domains,
    not wall-clock. *)
let add_into ~(into : t) (m : t) =
  into.merges <- into.merges + m.merges;
  into.merge_fast <- into.merge_fast + m.merge_fast;
  into.equal_checks <- into.equal_checks + m.equal_checks;
  into.equal_fast <- into.equal_fast + m.equal_fast;
  into.covered_checks <- into.covered_checks + m.covered_checks;
  into.covered_fast <- into.covered_fast + m.covered_fast;
  into.assigns <- into.assigns + m.assigns;
  into.kills <- into.kills + m.kills;
  into.weakens <- into.weakens + m.weakens;
  into.gens <- into.gens + m.gens;
  into.loop_iters <- into.loop_iters + m.loop_iters;
  into.rec_iters <- into.rec_iters + m.rec_iters;
  into.bodies <- into.bodies + m.bodies;
  into.memo_lookups <- into.memo_lookups + m.memo_lookups;
  into.memo_hits <- into.memo_hits + m.memo_hits;
  into.map_calls <- into.map_calls + m.map_calls;
  into.unmap_calls <- into.unmap_calls + m.unmap_calls;
  into.cache_hits <- into.cache_hits + m.cache_hits;
  into.cache_misses <- into.cache_misses + m.cache_misses;
  into.cache_quarantined <- into.cache_quarantined + m.cache_quarantined;
  into.budget_trips <- into.budget_trips + m.budget_trips;
  into.heap_trips <- into.heap_trips + m.heap_trips;
  into.ckpt_funcs <- into.ckpt_funcs + m.ckpt_funcs;
  into.incr_funcs_dirty <- into.incr_funcs_dirty + m.incr_funcs_dirty;
  into.incr_funcs_reused <- into.incr_funcs_reused + m.incr_funcs_reused;
  into.demand_plans <- into.demand_plans + m.demand_plans;
  into.demand_slice_funcs <- into.demand_slice_funcs + m.demand_slice_funcs;
  into.demand_funcs_total <- into.demand_funcs_total + m.demand_funcs_total;
  into.demand_skipped <- into.demand_skipped + m.demand_skipped;
  into.demand_replays <- into.demand_replays + m.demand_replays;
  into.demand_fallbacks <- into.demand_fallbacks + m.demand_fallbacks;
  into.ext_modeled <- into.ext_modeled + m.ext_modeled;
  into.ext_unmodeled <- into.ext_unmodeled + m.ext_unmodeled;
  into.serve_requests <- into.serve_requests + m.serve_requests;
  into.serve_errors <- into.serve_errors + m.serve_errors;
  into.serve_shed <- into.serve_shed + m.serve_shed;
  into.t_map <- into.t_map +. m.t_map;
  into.t_unmap <- into.t_unmap +. m.t_unmap;
  into.t_analysis <- into.t_analysis +. m.t_analysis;
  into.t_serialize <- into.t_serialize +. m.t_serialize;
  into.t_deserialize <- into.t_deserialize +. m.t_deserialize

let sum (ms : t list) : t =
  let acc = create () in
  List.iter (fun m -> add_into ~into:acc m) ms;
  acc

(* Phase timers are always differences of two readings, so they come
   from the monotonic clock: a system clock step must not corrupt a
   recorded duration. *)
let now () = Mono.now_s ()

let ratio num den = if den = 0 then 0. else 100. *. float_of_int num /. float_of_int den

(* The --stats report as (label, rendered value) rows. The labels
   between the two markers below are a contract checked by
   scripts/check_cli_docs.sh: every label must appear (backticked) in
   docs/CLI.md, and the script extracts them textually — keep the
   markers and the [("label", value)] shape of each row. *)
(* BEGIN stats-labels *)
let rows (m : t) : (string * string) list =
  [
    ( "analysis time",
      Printf.sprintf "%.3f ms (map %.3f ms, unmap %.3f ms)" (m.t_analysis *. 1e3)
        (m.t_map *. 1e3) (m.t_unmap *. 1e3) );
    ("body passes", Printf.sprintf "%d" m.bodies);
    ( "fixpoint iterations",
      Printf.sprintf "%d loop, %d recursion/pending" m.loop_iters m.rec_iters );
    ( "assignments",
      Printf.sprintf "%d (kills %d, weakens %d, gen pairs %d)" m.assigns m.kills
        m.weakens m.gens );
    ( "merges",
      Printf.sprintf "%d (%.1f%% fast-path)" m.merges (ratio m.merge_fast m.merges) );
    ( "equality checks",
      Printf.sprintf "%d (%.1f%% fast-path)" m.equal_checks
        (ratio m.equal_fast m.equal_checks) );
    ( "covering checks",
      Printf.sprintf "%d (%.1f%% fast-path)" m.covered_checks
        (ratio m.covered_fast m.covered_checks) );
    ("map/unmap calls", Printf.sprintf "%d/%d" m.map_calls m.unmap_calls);
    ( "memo hit rate",
      Printf.sprintf "%d/%d (%.1f%%)" m.memo_hits m.memo_lookups
        (ratio m.memo_hits m.memo_lookups) );
    ( "result cache",
      Printf.sprintf "%d hits, %d misses (save %.3f ms, load %.3f ms)" m.cache_hits
        m.cache_misses (m.t_serialize *. 1e3) (m.t_deserialize *. 1e3) );
    ( "robustness",
      Printf.sprintf "%d budget trips (%d heap), %d checkpointed functions, %d cache \
                      entries quarantined" m.budget_trips m.heap_trips m.ckpt_funcs
        m.cache_quarantined );
    ( "incremental",
      Printf.sprintf "%d functions dirty, %d summaries replayed" m.incr_funcs_dirty
        m.incr_funcs_reused );
    ( "demand",
      Printf.sprintf "%d plans (slice %d/%d funcs), %d skipped, %d replayed, %d fallbacks"
        m.demand_plans m.demand_slice_funcs m.demand_funcs_total m.demand_skipped
        m.demand_replays m.demand_fallbacks );
    ( "external calls",
      Printf.sprintf "%d modeled, %d unmodeled" m.ext_modeled m.ext_unmodeled );
    ( "serve traffic",
      Printf.sprintf "%d requests (%d errors, %d shed)" m.serve_requests m.serve_errors
        m.serve_shed );
  ]
(* END stats-labels *)

let labels = List.map fst (rows (create ()))

let pp ppf (m : t) =
  Fmt.pf ppf "@[<v>%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (label, value) -> pf ppf "%-22s%s" (label ^ ":") value))
    (rows m)
