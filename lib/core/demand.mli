(** Demand-driven slice planning: given a query's {e seed} function,
    compute the set of functions the engine must analyze exactly for the
    seed's statement rows to come out bit-identical to an exhaustive
    run, treating every other (defined) callee as skippable.

    The plan is built over an {e oracle} call graph — direct sites
    contribute their callee, indirect sites a conservative target list
    supplied by the caller (the flow-insensitive Andersen pre-pass of
    [lib/alias] in practice). The slice is the seed's transitive callers
    [R] plus the {e full} closure: the seed's own callee cone, every
    [R]-member on an oracle-graph cycle with its cone, and the cone of
    every call site whose effect may flow into a site leading to the
    seed ([flows']: textual order or a shared enclosing loop — sound for
    the structured, [goto]-free IR). See docs/DEMAND.md for the slice
    rule and the bit-identity argument. *)

(** [oracle ~fn ~sid] is a conservative list of the {e defined}
    functions an indirect call at statement [sid] of function [fn] can
    invoke. Consulted only for indirect sites; conservatism relative to
    the engine's own resolution is re-checked at evaluation time. *)
type oracle = fn:string -> sid:int -> string list

(** Raised by the engine when an evaluated indirect site resolves to a
    defined target the planning oracle did not predict — the slice can
    no longer be trusted and the caller must fall back to the exhaustive
    analysis ({!Analysis.analyze_demand} does). *)
exception Oracle_miss of string

(** What a skipped call to a function may modify, relative to the
    engine's own semantics (the engine's external-call transfer never
    mutates the state, so external callees contribute nothing). Drives
    how much the widened transfer must smear. *)
type mods =
  | Mod_all
      (** the function or a transitive callee writes through a pointer
          dereference: any visible cell may change *)
  | Mod_globals of (string, unit) Hashtbl.t
      (** every write in the whole callee cone is direct: only these
          global variables (plus the return cell) can change *)

type plan = {
  p_seed : string;  (** the function whose rows the plan preserves *)
  p_entry : string;
  p_slice : (string, unit) Hashtbl.t;
      (** functions analyzed exactly; a defined callee outside it is
          skipped (summary replay or widened transfer) *)
  p_record : (int, unit) Hashtbl.t;
      (** statement ids whose rows are recorded (the seed's body) *)
  p_sites : (string * int, string list) Hashtbl.t;
      (** oracle targets per indirect site [(fn, sid)], for the run-time
          conservatism check *)
  p_mods : (string, mods) Hashtbl.t;
      (** per defined function, what a skipped call to it may modify *)
  p_funcs_total : int;  (** defined functions in the program *)
}

(** [plan p ~entry ~seed oracle] builds the slice plan for queries about
    statements of [seed]. Raises [Invalid_argument] when [seed] is not a
    defined function of [p]. Bumps the [demand_plans] /
    [demand_slice_funcs] / [demand_funcs_total] metrics and emits a
    [Slice] trace span. *)
val plan : Simple_ir.Ir.program -> entry:string -> seed:string -> oracle -> plan

val in_slice : plan -> string -> bool

(** Should the engine record this statement's row? True exactly for the
    seed function's statement ids. *)
val records : plan -> int -> bool

val slice_size : plan -> int

(** The slice as a sorted list (tests, [--stats] reporting). *)
val slice_funcs : plan -> string list

(** Does the plan's oracle admit [target] at indirect site [(fn, sid)]?
    The engine's run-time conservatism check; unknown sites admit
    nothing. *)
val site_allows : plan -> fn:string -> sid:int -> string -> bool

(** What a skipped call to the named function may modify. Unknown
    functions get {!Mod_all}. *)
val func_mods : plan -> string -> mods
