(** Behavioral models of C library functions: a static table of C99
    behaviors (malloc family returns a new object, [strcpy]/[memcpy]
    return their first argument, [printf]/[strlen]/math.h touch no
    pointers), replacing the coarse one-size no-op model for external
    calls the table covers. See the Cetus [IPPointsToAnalysis] library
    tables for the lineage. *)

type model =
  | New_object  (** returns a pointer to a fresh abstract object *)
  | Returns_arg of int
      (** returns its [n]th argument (1-based) or a pointer into that
          argument's object *)
  | Pure  (** no pointer effect, no pointer result *)

(** The model of a library function, [None] when unmodeled (the caller
    should fall back to the coarse external model). *)
val find : string -> model option
