(** Deterministic fault injection (see fault.mli).

    Each injection point is one [Atomic.t bool]; the environment is read
    exactly once, lazily, so [PTAN_FAULTS] set before the first query
    configures a whole process (the CI chaos job) while tests flip the
    switches programmatically with {!set} / {!with_point}. The flags are
    atomics because pool workers consult them from their own domains;
    the configuration itself is expected to be quiescent while tasks
    run. *)

type point =
  | Slow_fixpoint
  | Corrupt_cache
  | Task_exn
  | Expired_deadline
  | Alloc_spike
  | Worker_kill

exception Injected of string

let point_name = function
  | Slow_fixpoint -> "slow-fixpoint"
  | Corrupt_cache -> "corrupt-cache"
  | Task_exn -> "task-exn"
  | Expired_deadline -> "expired-deadline"
  | Alloc_spike -> "alloc-spike"
  | Worker_kill -> "worker-kill"

let all_points =
  [ Slow_fixpoint; Corrupt_cache; Task_exn; Expired_deadline; Alloc_spike; Worker_kill ]

let point_of_name n = List.find_opt (fun p -> String.equal (point_name p) n) all_points

let idx = function
  | Slow_fixpoint -> 0
  | Corrupt_cache -> 1
  | Task_exn -> 2
  | Expired_deadline -> 3
  | Alloc_spike -> 4
  | Worker_kill -> 5

let flags = Array.init (List.length all_points) (fun _ -> Atomic.make false)

(* [Slow_fixpoint] scoping: when set, only fixpoints of this function
   sleep — how one pathological file is simulated inside a multi-file
   suite. *)
let fault_fn : string option Atomic.t = Atomic.make None

(* seconds slept per injected fixpoint pass *)
let fault_sleep : float Atomic.t = Atomic.make 0.05

let from_env = lazy (
  (match Sys.getenv_opt "PTAN_FAULTS" with
  | None | Some "" -> ()
  | Some spec ->
      String.split_on_char ',' spec
      |> List.iter (fun n ->
             match point_of_name (String.trim n) with
             | Some p -> Atomic.set flags.(idx p) true
             | None ->
                 (* a typo silently injecting nothing would make a chaos
                    run vacuously green; fail loudly instead *)
                 Fmt.failwith "PTAN_FAULTS: unknown injection point %S" n));
  (match Sys.getenv_opt "PTAN_FAULT_FN" with
  | None | Some "" -> ()
  | Some fn -> Atomic.set fault_fn (Some fn));
  match Sys.getenv_opt "PTAN_FAULT_SLEEP_MS" with
  | None | Some "" -> ()
  | Some ms -> (
      match float_of_string_opt ms with
      | Some ms when ms >= 0. -> Atomic.set fault_sleep (ms /. 1e3)
      | _ -> Fmt.failwith "PTAN_FAULT_SLEEP_MS: not a non-negative number: %S" ms))

let enabled p =
  Lazy.force from_env;
  Atomic.get flags.(idx p)

let set ?fn ?sleep_ms p v =
  Lazy.force from_env;
  Atomic.set flags.(idx p) v;
  (match fn with None -> () | Some _ -> Atomic.set fault_fn fn);
  match sleep_ms with
  | None -> ()
  | Some ms -> Atomic.set fault_sleep (ms /. 1e3)

let with_point ?fn ?sleep_ms p f =
  let old_flag = enabled p in
  let old_fn = Atomic.get fault_fn in
  let old_sleep = Atomic.get fault_sleep in
  set ?fn ?sleep_ms p true;
  Fun.protect
    ~finally:(fun () ->
      Atomic.set flags.(idx p) old_flag;
      Atomic.set fault_fn old_fn;
      Atomic.set fault_sleep old_sleep)
    f

let target_fn () =
  Lazy.force from_env;
  Atomic.get fault_fn

let sleep_s () =
  Lazy.force from_env;
  Atomic.get fault_sleep

(** The slow-fixpoint site, called by the engine once per body pass of a
    context-sensitive node evaluation: sleeps when the injection is on
    and [fn] matches the configured target (or no target is set). *)
let maybe_slow_fixpoint ~fn =
  if enabled Slow_fixpoint then
    match target_fn () with
    | Some target when not (String.equal target fn) -> ()
    | _ -> Unix.sleepf (sleep_s ())

(** The task-exception site, called by the pool before running each
    task. *)
let maybe_task_exn () =
  if enabled Task_exn then raise (Injected "task-exn")

(* [Worker_kill] arming: when [PTAN_FAULT_KILL_FILE] names a path, the
   injection fires only while that file exists, and consumes it
   (unlink) on firing — so a test controls exactly which request dies
   across worker restarts, which would otherwise re-read the same
   environment and die forever. Without an arm file the kill is
   unconditional. *)
let kill_file : string option Atomic.t = Atomic.make None

let () =
  (* reading one more variable in the lazy env block would change its
     type; a separate eager read keeps it simple, and the variable is
     only consulted when the injection is already on *)
  match Sys.getenv_opt "PTAN_FAULT_KILL_FILE" with
  | None | Some "" -> ()
  | Some p -> Atomic.set kill_file (Some p)

let set_kill_file p = Atomic.set kill_file p

(** The worker-kill site, called by {!Serve} as a request batch starts:
    SIGKILL the current process — an OOM-killed or crashed daemon
    worker, as seen by its supervisor. *)
let maybe_worker_kill () =
  if enabled Worker_kill then
    let armed =
      match Atomic.get kill_file with
      | None -> true
      | Some p ->
          if Sys.file_exists p then begin
            (try Sys.remove p with Sys_error _ -> ());
            true
          end
          else false
    in
    if armed then Unix.kill (Unix.getpid ()) Sys.sigkill

(** The cache-corruption site: flip one byte in the middle of [file]
    when the injection is on. Called by {!Persist.save} after the
    atomic rename, so a corrupt entry looks exactly like torn storage
    under a complete, well-formed name. *)
let maybe_corrupt_file file =
  if enabled Corrupt_cache then begin
    let data = In_channel.with_open_bin file In_channel.input_all in
    let n = String.length data in
    if n > 0 then begin
      let b = Bytes.of_string data in
      let i = n / 2 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
      Out_channel.with_open_bin file (fun oc -> Out_channel.output_bytes oc b)
    end
  end
