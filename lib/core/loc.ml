(** Abstract stack locations (paper §3.1).

    Every real stack location that is the source or target of a points-to
    relationship is represented by exactly one named abstract location
    (Property 3.1); an abstract location may represent one or more real
    locations (Property 3.2). The constructors:

    - [Var] — a named local, formal parameter or global variable;
    - [Fld] — a structure field of another location (nested);
    - [Head]/[Tail] — the two abstract locations of an array: element 0
      and elements 1..n (paper §3.2), composable for nested arrays;
    - [Sym] — a symbolic name for an invisible variable: [Sym l] is the
      location reachable by dereferencing [l] when the real target is not
      in scope (printed "1_x", "2_x", ... as in §4.1);
    - [Heap] — the single abstract location for all heap storage;
    - [Null] — the NULL target (pointer locals are initialized to point
      definitely to NULL; NULL pairs are excluded from statistics);
    - [Str] — string-literal storage;
    - [Fun] — a function, the target of function pointers (§5);
    - [Ret] — the return-value pseudo-location of a function. *)

type var_kind =
  | Kglobal
  | Klocal
  | Kparam

type t =
  | Var of string * var_kind
  | Fld of t * string
  | Head of t
  | Tail of t
  | Sym of t
  | Heap
  | Site of int
      (** a heap allocation site (statement id), when the analysis runs
          with [heap_by_site] — the refinement of the single [Heap]
          location used by the companion heap analyses the paper defers
          to [Ghiya 93] *)
  | Null
  | Str
  | Fun of string
  | Ret of string

(* ------------------------------------------------------------------ *)
(* Interning                                                          *)
(* ------------------------------------------------------------------ *)

(* Locations are built over and over from the same small vocabulary (the
   L-/R-location rules rebuild them per statement, the map/unmap
   machinery per call) and then compared many times as [Map]/[Set] keys
   on the engine's hot path. We intern every location into an id-stamped
   table: structurally equal locations share one physical
   representative, so the comparisons below answer most queries with a
   pointer check instead of a structural walk.

   The table is domain-local ([Domain.DLS]): each {!Pool} worker interns
   into its own table, so the lock-free hot path stays lock-free under
   parallel analysis. Physical equality is only ever a fast path —
   [compare]/[equal] fall back to the structural walk — so values built
   on one domain remain correct (just marginally slower to compare) when
   consumed on another. A table lives as long as its domain — abstract
   locations are tiny and their vocabulary is bounded by the programs
   the domain analyzes. *)

module HT = Hashtbl.Make (struct
  type nonrec t = t

  let equal (a : t) (b : t) = a == b || Stdlib.compare a b = 0
  let hash (l : t) = Hashtbl.hash l
end)

type intern_tbl = { tbl : (t * int) HT.t; mutable next_id : int }

let tbl_key : intern_tbl Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { tbl = HT.create 4096; next_id = 0 })

(** The canonical physical representative of [l] (sub-locations
    canonicalized too) in the calling domain. Idempotent; safe on any
    location. *)
let intern (l : t) : t =
  let it = Domain.DLS.get tbl_key in
  let rec go l =
    match HT.find_opt it.tbl l with
    | Some (c, _) -> c
    | None ->
        let canon =
          match l with
          | Fld (b, f) -> Fld (go b, f)
          | Head b -> Head (go b)
          | Tail b -> Tail (go b)
          | Sym b -> Sym (go b)
          | Var _ | Heap | Site _ | Null | Str | Fun _ | Ret _ -> l
        in
        HT.add it.tbl canon (canon, it.next_id);
        it.next_id <- it.next_id + 1;
        canon
  in
  go l

(** The stamp of [l] in the calling domain's intern table (interning it
    on demand). Equal locations have equal ids within one domain; ids
    are assigned in first-seen order. *)
let id (l : t) : int =
  let it = Domain.DLS.get tbl_key in
  match HT.find_opt it.tbl l with
  | Some (_, i) -> i
  | None ->
      let c = intern l in
      (match HT.find_opt it.tbl c with Some (_, i) -> i | None -> assert false)

let interned_count () = (Domain.DLS.get tbl_key).next_id

(** Structural hash, consistent with {!equal} across domains (interning
    never changes structure, and [Hashtbl.hash] is depth-limited but
    deterministic on equal values). *)
let hash (l : t) : int = Hashtbl.hash l

(* Smart constructors returning interned locations. Use these on hot
   paths; the bare variant constructors remain available (and correct)
   for pattern matching and cold code. *)

let var n k = intern (Var (n, k))
let fld b f = intern (Fld (b, f))
let head b = intern (Head b)
let tail b = intern (Tail b)
let sym b = intern (Sym b)
let site i = intern (Site i)
let func f = intern (Fun f)
let ret f = intern (Ret f)

(* Total order identical to [Stdlib.compare] on this type (constant
   constructors first in declaration order, then blocks in declaration
   order, fields left-to-right) — map/set iteration order is part of
   the engine's observable behavior (symbolic-name assignment follows
   it), so it must not change. The physical-equality fast paths are
   what interning buys: equal interned locations compare in O(1). *)

let order_tag = function
  | Heap -> 0
  | Null -> 1
  | Str -> 2
  | Var _ -> 3
  | Fld _ -> 4
  | Head _ -> 5
  | Tail _ -> 6
  | Sym _ -> 7
  | Site _ -> 8
  | Fun _ -> 9
  | Ret _ -> 10

let rec compare (a : t) (b : t) : int =
  if a == b then 0
  else
    match (a, b) with
    | Var (n1, k1), Var (n2, k2) ->
        let c = String.compare n1 n2 in
        if c <> 0 then c else Stdlib.compare k1 k2
    | Fld (b1, f1), Fld (b2, f2) ->
        let c = compare b1 b2 in
        if c <> 0 then c else String.compare f1 f2
    | Head b1, Head b2 | Tail b1, Tail b2 | Sym b1, Sym b2 -> compare b1 b2
    | Site i1, Site i2 -> Int.compare i1 i2
    | Fun f1, Fun f2 | Ret f1, Ret f2 -> String.compare f1 f2
    | _ -> Int.compare (order_tag a) (order_tag b)

let equal a b = a == b || compare a b = 0

(** The base variable (or special location) a location is built from. *)
let rec root = function
  | Fld (b, _) | Head b | Tail b | Sym b -> root b
  | (Var _ | Heap | Site _ | Null | Str | Fun _ | Ret _) as l -> l

(** Number of [Sym] constructors on the path: the "level of indirection"
    of a symbolic name (the k of "k_x"). *)
let rec sym_depth = function
  | Sym b -> 1 + sym_depth b
  | Fld (b, _) | Head b | Tail b -> sym_depth b
  | Var _ | Heap | Site _ | Null | Str | Fun _ | Ret _ -> 0

(** Is this location visible inside every procedure (globals, heap, the
    special locations)? Locations rooted at locals, parameters, return
    slots or symbolic names are procedure-specific. *)
let is_global_visible l =
  match root l with
  | Var (_, Kglobal) | Heap | Site _ | Null | Str | Fun _ -> true
  | Var (_, (Klocal | Kparam)) | Ret _ -> false
  | Fld _ | Head _ | Tail _ | Sym _ -> assert false

(** Does the location represent exactly one real stack location (given
    that its symbolic names represent single invisible variables — the
    multi-representation case is handled by the map/unmap demotions)?
    Non-singular locations receive only weak updates and their generated
    relationships are demoted to possible. *)
let rec singular = function
  | Var _ | Null | Fun _ | Ret _ -> true
  | Fld (b, _) | Head b -> singular b
  | Sym b -> singular b
  | Tail _ | Heap | Site _ | Str -> false

(** Table 4 categorization of the root: local / global / formal /
    symbolic. [None] for special locations (heap, null, functions). *)
let category l =
  let rec has_sym = function
    | Sym _ -> true
    | Fld (b, _) | Head b | Tail b -> has_sym b
    | Var _ | Heap | Site _ | Null | Str | Fun _ | Ret _ -> false
  in
  if has_sym l then Some `Sy
  else
    match root l with
    | Var (_, Kglobal) -> Some `Gl
    | Var (_, Klocal) -> Some `Lo
    | Var (_, Kparam) -> Some `Fp
    | Ret _ -> Some `Lo
    | Heap | Site _ | Null | Str | Fun _ -> None
    | Fld _ | Head _ | Tail _ | Sym _ -> None

let is_heap l = match root l with Heap | Site _ -> true | _ -> false

let is_null = function Null -> true | _ -> false

let is_fun = function Fun _ -> true | _ -> false

(** On the stack for the purpose of the Table 3/5 stack/heap split:
    everything rooted at a named variable or symbolic name. *)
let is_stack l =
  match root l with
  | Var _ | Ret _ -> true
  | Heap | Site _ | Null | Str | Fun _ -> false
  | Fld _ | Head _ | Tail _ | Sym _ -> false

let rec pp ppf = function
  | Var (n, _) -> Fmt.string ppf n
  | Fld (b, f) -> Fmt.pf ppf "%a.%s" pp b f
  | Head b -> Fmt.pf ppf "%a_head" pp b
  | Tail b -> Fmt.pf ppf "%a_tail" pp b
  | Sym b ->
      (* collapse nested symbolic names: Sym (Sym (Var x)) prints 2_x *)
      let rec count k = function Sym b -> count (k + 1) b | l -> (k, l) in
      let k, inner = count 1 b in
      Fmt.pf ppf "%d_%a" k pp inner
  | Heap -> Fmt.string ppf "heap"
  | Site i -> Fmt.pf ppf "heap@%d" i
  | Null -> Fmt.string ppf "NULL"
  | Str -> Fmt.string ppf "str"
  | Fun f -> Fmt.pf ppf "fn:%s" f
  | Ret f -> Fmt.pf ppf "ret:%s" f

let to_string l = Fmt.str "%a" pp l

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Stdlib.Set.Make (Ord)
module Map = Stdlib.Map.Make (Ord)
