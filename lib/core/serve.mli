(** The resident analysis daemon: analyze (or load) once, serve many
    queries — the serving half of the analyze-once / query-many story.

    [ptan serve] keeps primed results for a whole corpus in memory and
    answers alias/pts/calls queries over a line-oriented protocol, on
    standard input/output or a Unix-domain socket. This module is the
    daemon core — protocol parsing, batching, admission control,
    per-request budgets, dispatch over a {!Pool} of domains — and is
    deliberately ignorant of how queries are {e answered}: the driver
    supplies a {!handler} (built on the [alias] library's query
    language, which lives above this library), so the core stays
    unit-testable and free of dependency cycles.

    {2 Protocol}

    Requests are single LF-terminated lines (a trailing CR is
    stripped); empty lines are ignored; every other line gets exactly
    one reply line, in request order per connection:

    {v
    q <file> <query...>   answer <query...> against corpus entry <file>
    ping                  liveness probe
    files                 the corpus: ok <n> <name...>
    stats                 traffic counters since startup
    health                ok uptime-ms=_ restarts=_ heap-mb=_ queue-depth=_
    reload <file>         re-analyze one corpus entry in place
    watch                 start mtime polling; changed files auto-reload
    quit                  stop the daemon (reply: ok bye)
    v}

    Replies are [ok <answer>], [degraded <answer>] (the corpus entry
    was analyzed under an exhausted budget: the answer is a sound
    superset, see docs/ROBUSTNESS.md), [error <reason>] (malformed
    request, unknown corpus file, query error, or a tripped per-request
    deadline — the daemon itself never dies on a request), or
    [busy retry-after-ms=<n> <reason>] (shed by admission control;
    [retry-after-ms] is the shedding batch's own measured latency — a
    client that backs off by at least that long will usually find the
    queue drained). See docs/SERVE.md for the client contract.

    {2 Execution model}

    The calling domain runs the event loop: it accepts connections,
    reads whatever complete request lines are available, and processes
    them as one batch. Control requests ([ping]/[files]/[stats]/[quit])
    are answered inline; query requests are fanned out over the
    {!Pool} ([jobs] domains) and their replies reassembled in request
    order. Each query runs under a fresh deadline-only {!Guard}
    ([request_deadline_ms]); a trip — including the
    {!Fault.Expired_deadline} injection — becomes an [error] reply.
    Admission control is a per-batch bound: at most [queue_max]
    requests are dispatched per cycle and the excess is answered
    [busy] immediately, so a flooding client degrades service
    gracefully instead of growing an unbounded queue.

    {2 Reload and watch}

    [reload <file>] calls the driver's [h_reload] — typically
    {!Persist.analyze_cached}[ ~incremental:true], so only the edited
    functions re-analyze (docs/INCREMENTAL.md) — and swaps the corpus
    entry in place. It runs inline on the event-loop domain: no query is
    in flight between batches, so the driver may mutate its corpus table
    without locking. [watch] turns on mtime polling of the corpus
    sources ([h_paths], checked at most every 250 ms on the event-loop
    tick); a changed file is reloaded exactly as if [reload] had been
    requested, while queries keep flowing. Both answer
    [error ... not supported] when the driver supplies no [h_reload]. *)

(** How the driver answers one query against one corpus entry. *)
type answer =
  | Ans of string  (** full-precision answer *)
  | Ans_degraded of string
      (** answer from a degraded (widened) corpus entry — sound
          superset of the precise answer *)
  | Ans_error of string  (** unknown file, query parse/semantic error *)

type handler = {
  h_files : string list;  (** corpus names, for the [files] request *)
  h_answer : file:string -> query:string -> answer;
      (** must be safe to call from several {!Pool} domains at once
          (query dispatch over primed, read-only results is) *)
  h_reload : (file:string -> (string, string) result) option;
      (** re-analyze one corpus entry in place; called only on the
          event-loop domain, between batches, so it may mutate the
          driver's corpus table. [Ok summary] becomes the [ok] reply.
          [None] disables [reload] and [watch]. *)
  h_paths : (string * string) list;
      (** (corpus name, filesystem path) pairs the [watch] request
          polls; empty disables [watch] *)
}

(** Where the daemon talks. *)
type transport =
  | Stdio  (** requests on stdin, replies on stdout *)
  | Fds of Unix.file_descr * Unix.file_descr
      (** explicit descriptor pair — the bench and tests drive the
          daemon in-process over pipes *)
  | Socket of string
      (** Unix-domain socket at this path (created at startup, a stale
          file is replaced, unlinked on shutdown); multiple concurrent
          clients, per-connection reply order *)
  | Listening of Unix.file_descr
      (** an already-bound, already-listening socket inherited from
          {!supervise} — the daemon accepts on it but neither closes
          nor unlinks it (the supervisor owns its lifecycle) *)

type config = {
  jobs : int;  (** {!Pool} width for query dispatch *)
  queue_max : int;  (** admission bound: max requests dispatched per batch *)
  request_deadline_ms : float option;  (** per-request {!Guard} deadline *)
  restarts : int;
      (** how many times the supervisor has restarted this worker;
          echoed by the [health] reply *)
  journal : string option;
      (** reload journal path: successful reloads append the corpus
          name, and {!run} replays the journal through [h_reload]
          before serving — how a {!supervise}d worker restored after a
          crash catches up with the reloads its predecessor served *)
}

val default_config : config
(** [jobs = 1], [queue_max = 1024], no per-request deadline,
    [restarts = 0], no journal. *)

(** Traffic counters, returned by {!run} and rendered by the [stats]
    request ([ok requests=... ok=... degraded=... error=... shed=...
    batches=... reloads=...]; the [stats] request counts itself).
    Mirrored into {!Metrics} ([serve_requests] / [serve_errors] /
    [serve_shed]). *)
type stats = {
  mutable s_requests : int;  (** non-empty request lines received *)
  mutable s_ok : int;
  mutable s_degraded : int;
  mutable s_errors : int;
  mutable s_shed : int;  (** [busy] replies *)
  mutable s_batches : int;  (** dispatch cycles that served at least one request *)
  mutable s_reloads : int;
      (** successful corpus reloads ([reload] requests and [watch]
          triggers) *)
}

(** {2 Parsing} — exposed for tests. *)

type request =
  | Query of { file : string; query : string }
  | Ping
  | Files
  | Stats
  | Health
  | Quit
  | Watch
  | Reload of string

val parse_request : string -> (request, string) result

(** {2 Running} *)

val run : ?stop:bool Atomic.t -> config -> handler -> transport -> stats
(** Serve until [quit], end-of-input (stdio/fds), or [stop] is set
    (checked at least every 250 ms — the driver's signal handlers set
    it for clean SIGTERM shutdown). Returns the final counters. The
    daemon never raises on a malformed or failing request; transport
    errors on one connection only close that connection. *)

(** {2 Supervision}

    [ptan serve --supervise] splits the daemon in two processes: a
    tiny supervisor that owns the listening socket, and a worker
    (forked child) that does everything else. When the worker dies —
    crash, uncaught signal, the kernel OOM killer — the supervisor
    forks a replacement onto the {e same} socket, so clients observe a
    reset connection and reconnect; they never see ECONNREFUSED or a
    stale socket file. Restarts back off exponentially ([sv_backoff_ms]
    doubling up to [sv_backoff_max_ms], reset after a healthy stretch)
    and fail fast when more than [sv_max_restarts] deaths land within
    [sv_window_s] seconds — a crash-looping corpus should page an
    operator, not flap forever. See docs/ROBUSTNESS.md. *)

type supervise_config = {
  sv_max_restarts : int;  (** fail-fast: max worker deaths tolerated per window *)
  sv_window_s : float;  (** the sliding window those deaths are counted in *)
  sv_backoff_ms : float;  (** delay before the first restart *)
  sv_backoff_max_ms : float;  (** backoff doubles up to this cap *)
}

val default_supervise : supervise_config
(** 5 restarts per 30 s window, backoff 100 ms doubling to 5 s. *)

val supervise :
  ?stop:bool Atomic.t ->
  supervise_config ->
  socket:string ->
  (restarts:int -> Unix.file_descr -> int) ->
  int
(** [supervise cfg ~socket worker] binds [socket], listens, and runs
    [worker ~restarts fd] in a forked child, restarting it per [cfg]
    until it exits 0 (clean [quit]), [stop] is set, or the fail-fast
    bound trips (supervisor exit 1). The worker callback runs only in
    the child: it should {!run} the daemon on [Listening fd] (passing
    [restarts] through [config] for the [health] reply) and return the
    process exit code. Returns the supervisor's exit code; the socket
    is unlinked on the way out. Must be called before any domain is
    spawned — the supervisor forks, and only the worker may create
    pools. *)
