(** Invocation graphs (paper §4, Figure 2).

    One node per invocation context (path of calls from the entry).
    Recursion is approximated by matched pairs of a {e recursive} node
    (where the fixed point runs) and an {e approximate} leaf (which
    reuses the stored approximation), linked by [partner]. Function
    pointers add children during the analysis (§5). *)

module Ir = Simple_ir.Ir

type kind =
  | Ordinary
  | Recursive
  | Approximate

(** Map information deposited by the points-to analysis (§4.1): each
    symbolic name with the caller locations it represents in this
    context — the basis for later interprocedural analyses (§6.1). *)
type map_info = (Loc.t * Loc.t list) list

type node = {
  id : int;
  func : string;
  parent : node option;
  mutable kind : kind;
  mutable partner : node option;  (** approximate -> its recursive ancestor *)
  mutable children : (int * node) list;
      (** (call statement id, child); indirect sites may map one id to
          several children *)
  mutable stored_input : Pts.state;  (** memoized IN (Figure 4) *)
  mutable stored_output : Pts.state;  (** memoized OUT *)
  mutable pending : Pts.t list;  (** unresolved recursive inputs *)
  mutable in_flight : bool;
  mutable map_info : map_info;
}

type t = {
  root : node;
  mutable n_nodes : int;
}

(** Nearest ancestor (or the node itself) running [fname]. *)
val ancestor_with : node -> string -> node option

val children_at : node -> int -> node list
val child_at_for : node -> int -> string -> node option

(** Direct call sites (stmt id, callee) of a function body, in textual
    order. *)
val direct_call_sites : Ir.func -> (int * string) list

(** Extend the graph at an indirect call site (Figure 5's
    updateInvocGraph); reuses an existing child for the same target. *)
val add_indirect_child : Tenv.t -> node -> int -> string -> node

(** Build the graph by depth-first traversal of direct calls from
    [entry], cutting recursion with approximate nodes. [within] gates
    the descent: a direct callee for which it returns [false] gets no
    child (demand mode builds the graph of a {!Demand.plan}'s slice this
    way — the skipped call is answered without an invocation context).
    Defaults to everything. The root is built regardless of [within]. *)
val build : ?within:(string -> bool) -> Tenv.t -> entry:string -> t

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a
val n_nodes : t -> int

(** Nodes allocated on this domain since the last {!build} — tracks the
    graph as indirect calls grow it mid-analysis, so {!Guard} can bound
    it without a traversal. *)
val node_count : unit -> int
val n_recursive : t -> int
val n_approximate : t -> int

(** Functions that appear in the graph (actually invoked). *)
val called_funcs : t -> string list

val pp : Format.formatter -> t -> unit
