(** Behavioral models of C library functions (the Cetus-style table:
    "Context-sensitive interprocedural points-to analysis" applied to
    the C99 library).

    A call to a function outside the translation unit previously got one
    coarse model: state unchanged, pointer result may point to the heap,
    to string storage, or into any argument's target. This table refines
    the {e result} for the calls whose behavior C99 pins down; the state
    itself still never changes (library functions in the modeled set do
    not store pointer values into user memory). Everything outside the
    table keeps the coarse model, and {!Metrics} counts both populations
    ([ext_modeled] / [ext_unmodeled]) so the remaining modeling gap is
    visible in [--stats]. *)

type model =
  | New_object
      (** returns a pointer to a fresh abstract object — possibly NULL
          on failure, hence a {e possible} relation (malloc family,
          [fopen], [getenv], the static-buffer time functions) *)
  | Returns_arg of int
      (** returns its [n]th argument (1-based), or a pointer into that
          argument's object — same abstract location ([strcpy],
          [memcpy], [strchr]) *)
  | Pure
      (** neither stores pointer values nor returns one: the points-to
          relation is untouched and a pointer-typed destination (there
          should be none) would get no targets *)

let table : (string, model) Hashtbl.t =
  let t = Hashtbl.create 128 in
  let put m names = List.iter (fun n -> Hashtbl.replace t n m) names in
  (* C99 calls returning a pointer to a new abstract location (or to a
     library-owned static buffer, indistinguishable at our granularity) *)
  put New_object
    [
      "asctime"; "calloc"; "ctime"; "fdopen"; "fopen"; "freopen"; "getenv";
      "gmtime"; "localtime"; "malloc"; "memalign"; "opendir"; "realloc";
      "strdup"; "strndup"; "strerror"; "tmpfile"; "tmpnam"; "valloc";
    ];
  (* calls returning their first argument (or a pointer into its
     object): the string/memory copy and search family *)
  put (Returns_arg 1)
    [
      "fgets"; "gets"; "memchr"; "memcpy"; "memmove"; "memset"; "strcat";
      "strchr"; "strcpy"; "strncat"; "strncpy"; "strpbrk"; "strrchr";
      "strstr"; "strtok";
    ];
  (* calls returning their second argument *)
  put (Returns_arg 2) [ "bcopy" ];
  (* safe no-ops: no pointer stored anywhere, no pointer returned. Note
     the exclusions: the [strtol] family writes an end pointer through
     its second argument, and [qsort]/[bsearch] invoke a function
     pointer — those keep the coarse model. *)
  put Pure
    [
      (* stdio *)
      "clearerr"; "fclose"; "feof"; "ferror"; "fflush"; "fgetc"; "fprintf";
      "fputc"; "fputs"; "fread"; "fscanf"; "fseek"; "ftell"; "fwrite";
      "getc"; "getchar"; "perror"; "printf"; "putc"; "putchar"; "puts";
      "remove"; "rename"; "rewind"; "scanf"; "setbuf"; "setvbuf";
      "snprintf"; "sprintf"; "sscanf"; "ungetc"; "vfprintf"; "vprintf";
      "vsnprintf"; "vsprintf";
      (* stdlib / unistd *)
      "abort"; "abs"; "atexit"; "atof"; "atoi"; "atol"; "close"; "exit";
      "free"; "labs"; "rand"; "sleep"; "srand"; "system"; "unlink";
      (* string.h inspection *)
      "memcmp"; "strcasecmp"; "strcmp"; "strcoll"; "strcspn"; "strlen";
      "strncasecmp"; "strncmp"; "strspn";
      (* ctype.h *)
      "isalnum"; "isalpha"; "iscntrl"; "isdigit"; "isgraph"; "islower";
      "isprint"; "ispunct"; "isspace"; "isupper"; "isxdigit"; "tolower";
      "toupper";
      (* math.h *)
      "acos"; "asin"; "atan"; "atan2"; "ceil"; "cos"; "cosh"; "exp";
      "fabs"; "floor"; "fmod"; "log"; "log10"; "pow"; "sin"; "sinh";
      "sqrt"; "tan"; "tanh";
      (* time.h *)
      "clock"; "difftime"; "mktime"; "time";
    ];
  t

let find (name : string) : model option = Hashtbl.find_opt table name
