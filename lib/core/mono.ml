(** Monotonic clock (see mono.mli). *)

external mono_ns : unit -> int64 = "ptan_mono_ns"

let now_s () = Int64.to_float (mono_ns ()) *. 1e-9

let now_ms () = Int64.to_float (mono_ns ()) *. 1e-6
