(** Resident analysis daemon core (see serve.mli).

    The calling domain owns the event loop and every mutable piece of
    daemon state (connections, counters); only the pure per-query
    closure crosses onto {!Pool} domains. Replies are classified and
    counted back on the event-loop domain, so {!Metrics} mirroring
    never races. *)

type answer =
  | Ans of string
  | Ans_degraded of string
  | Ans_error of string

type handler = {
  h_files : string list;
  h_answer : file:string -> query:string -> answer;
  h_reload : (file:string -> (string, string) result) option;
  h_paths : (string * string) list;
}

type transport =
  | Stdio
  | Fds of Unix.file_descr * Unix.file_descr
  | Socket of string
  | Listening of Unix.file_descr

type config = {
  jobs : int;
  queue_max : int;
  request_deadline_ms : float option;
  restarts : int;
  journal : string option;
}

let default_config =
  { jobs = 1; queue_max = 1024; request_deadline_ms = None; restarts = 0; journal = None }

type stats = {
  mutable s_requests : int;
  mutable s_ok : int;
  mutable s_degraded : int;
  mutable s_errors : int;
  mutable s_shed : int;
  mutable s_batches : int;
  mutable s_reloads : int;
}

(* ------------------------------------------------------------------ *)
(* Requests and replies                                               *)
(* ------------------------------------------------------------------ *)

type request =
  | Query of { file : string; query : string }
  | Ping
  | Files
  | Stats
  | Health
  | Quit
  | Watch
  | Reload of string

let parse_request line : (request, string) result =
  match
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Error "empty request"
  | "q" :: file :: (_ :: _ as query) -> Ok (Query { file; query = String.concat " " query })
  | [ "q" ] | [ "q"; _ ] -> Error "q expects: q <file> <query...>"
  | [ "ping" ] -> Ok Ping
  | [ "files" ] -> Ok Files
  | [ "stats" ] -> Ok Stats
  | [ "health" ] -> Ok Health
  | [ "quit" ] -> Ok Quit
  | [ "watch" ] -> Ok Watch
  | [ "reload"; file ] -> Ok (Reload file)
  | [ "reload" ] -> Error "reload expects: reload <file>"
  | kw :: _ ->
      Error
        (Printf.sprintf
           "unknown request '%s' (expected q, ping, files, stats, health, watch, reload \
            or quit)"
           kw)

(* Replies are one line each; a payload must not be able to break the
   framing, so embedded newlines become spaces. *)
let sanitize s = String.map (function '\n' | '\r' -> ' ' | c -> c) s

let reply_error e = "error " ^ sanitize e

let stats_reply st =
  Printf.sprintf "ok requests=%d ok=%d degraded=%d error=%d shed=%d batches=%d reloads=%d"
    st.s_requests st.s_ok st.s_degraded st.s_errors st.s_shed st.s_batches st.s_reloads

let files_reply h =
  Printf.sprintf "ok %d %s" (List.length h.h_files) (String.concat " " h.h_files)

(* The health probe: daemon uptime, how many times the supervisor has
   restarted this worker, a heap sample, and how many requests arrived
   in the batch carrying the probe. All gathered inline on the
   event-loop domain — a health check must answer even when the pool is
   saturated with queries. *)
let health_reply cfg ~t0 ~depth =
  let heap_mb = (Gc.quick_stat ()).Gc.heap_words / (1024 * 1024 / (Sys.word_size / 8)) in
  Printf.sprintf "ok uptime-ms=%.0f restarts=%d heap-mb=%d queue-depth=%d"
    ((Mono.now_s () -. t0) *. 1e3)
    cfg.restarts heap_mb depth

(* ------------------------------------------------------------------ *)
(* Reload journal                                                     *)
(* ------------------------------------------------------------------ *)

(* Under a supervisor, reloads mutate only the worker's in-memory
   corpus — state a crash would silently lose. Each successful reload
   appends the corpus name to [cfg.journal]; a restarted worker replays
   the journal (each name once, in first-reload order) before serving,
   so its tables match the corpus the previous worker was answering
   from. Append and replay are best-effort: a broken journal degrades
   to a cold corpus, never a dead daemon. *)
let journal_append cfg ~file =
  match cfg.journal with
  | None -> ()
  | Some path -> (
      try
        let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
        output_string oc (file ^ "\n");
        close_out oc
      with Sys_error _ -> ())

let journal_replay cfg handler stats =
  match (cfg.journal, handler.h_reload) with
  | Some path, Some f when Sys.file_exists path ->
      let ic = open_in path in
      let rec lines acc =
        match input_line ic with
        | l -> lines (if String.trim l = "" then acc else String.trim l :: acc)
        | exception End_of_file -> List.rev acc
      in
      let files = lines [] in
      close_in ic;
      let seen = Hashtbl.create 8 in
      List.iter
        (fun file ->
          if not (Hashtbl.mem seen file) then begin
            Hashtbl.add seen file ();
            match f ~file with
            | Ok _ -> stats.s_reloads <- stats.s_reloads + 1
            | Error _ -> ()
            | exception _ -> ()
          end)
        files
  | _ -> ()

(* Re-analyze one corpus entry in place, on the event-loop domain: no
   query is in flight between batches, so the driver's mutable corpus
   table can be swapped without a race. *)
let do_reload cfg handler stats ~file =
  match handler.h_reload with
  | None -> reply_error "reload not supported by this driver"
  | Some f -> (
      match f ~file with
      | Ok summary ->
          stats.s_reloads <- stats.s_reloads + 1;
          journal_append cfg ~file;
          "ok " ^ sanitize summary
      | Error e -> reply_error e
      | exception e -> reply_error ("reload failed: " ^ Printexc.to_string e))

(* One query request, executed on whichever pool domain picked it up:
   a fresh deadline-only guard (so the {!Fault.Expired_deadline}
   injection and genuinely slow handlers trip per-request, not
   per-daemon), every failure folded into an [error] reply — a request
   can never take the daemon down. *)
let do_query cfg handler (file, query) =
  let t0 = Trace.start () in
  let g =
    Guard.make { Guard.no_budget with Guard.b_deadline_ms = cfg.request_deadline_ms }
  in
  let reply =
    match
      Guard.check g;
      handler.h_answer ~file ~query
    with
    | Ans a -> "ok " ^ sanitize a
    | Ans_degraded a -> "degraded " ^ sanitize a
    | Ans_error e -> reply_error e
    | exception Guard.Exhausted trip -> reply_error (Fmt.str "%a" Guard.pp_trip trip)
    | exception Guard.Cancelled -> reply_error "cancelled"
    | exception e -> reply_error ("request failed: " ^ Printexc.to_string e)
  in
  if Trace.on () then Trace.emit Trace.Request ~name:file ~t0 ();
  reply

(* ------------------------------------------------------------------ *)
(* Connections                                                        *)
(* ------------------------------------------------------------------ *)

type conn = {
  c_in : Unix.file_descr;
  c_out : Unix.file_descr;
  c_buf : Buffer.t;  (** bytes read but not yet framed into lines *)
  c_owned : bool;  (** close the descriptors on teardown (accepted sockets) *)
  mutable c_eof : bool;
  mutable c_dead : bool;  (** write side failed; drop without replying *)
}

let mk_conn ~owned c_in c_out =
  { c_in; c_out; c_buf = Buffer.create 4096; c_owned = owned; c_eof = false; c_dead = false }

let read_chunk c =
  let bytes = Bytes.create 65536 in
  match Unix.read c.c_in bytes 0 (Bytes.length bytes) with
  | 0 -> c.c_eof <- true
  | n -> Buffer.add_subbytes c.c_buf bytes 0 n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EBADF | Unix.EPIPE), _, _) ->
      c.c_eof <- true

(* Complete lines buffered on [c], leaving a partial trailing line in
   place — except at EOF, where the unterminated remainder is the final
   line. *)
let take_lines c =
  let s = Buffer.contents c.c_buf in
  let n = String.length s in
  let lines = ref [] in
  let start = ref 0 in
  (try
     while true do
       let i = String.index_from s !start '\n' in
       lines := String.sub s !start (i - !start) :: !lines;
       start := i + 1
     done
   with Not_found -> ());
  Buffer.clear c.c_buf;
  if !start < n then
    if c.c_eof then lines := String.sub s !start (n - !start) :: !lines
    else Buffer.add_substring c.c_buf s !start (n - !start);
  List.rev_map (fun l ->
      let len = String.length l in
      if len > 0 && l.[len - 1] = '\r' then String.sub l 0 (len - 1) else l)
    !lines

let write_all c s =
  let n = String.length s in
  let rec go off =
    if off < n && not c.c_dead then
      match Unix.write_substring c.c_out s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
          c.c_dead <- true
  in
  go 0

let close_conn c =
  if c.c_owned then begin
    (try Unix.close c.c_in with Unix.Unix_error _ -> ());
    if c.c_out != c.c_in then try Unix.close c.c_out with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Batch processing                                                   *)
(* ------------------------------------------------------------------ *)

(* A batch is every complete request line that arrived this cycle, in
   arrival order. Admission: the first [queue_max] are served, the rest
   get an immediate [busy] — the queue is bounded by construction.
   Control requests are answered inline on the event-loop domain;
   queries fan out over the pool and come back in submission order, so
   per-connection reply order always matches request order. *)
let process pool cfg handler stats quit watching ~t0 pending =
  (* the {!Fault.Worker_kill} site: an OOM-killed worker dies right as
     it picks up a batch — requests in flight, reply unsent — which is
     the worst case its supervisor and clients must absorb *)
  Fault.maybe_worker_kill ();
  let t_batch0 = Mono.now_s () in
  stats.s_batches <- stats.s_batches + 1;
  let m = Metrics.cur () in
  let rec split_at n = function
    | [] -> ([], [])
    | l when n = 0 -> ([], l)
    | x :: tl ->
        let a, b = split_at (n - 1) tl in
        (x :: a, b)
  in
  let admitted, shed = split_at cfg.queue_max pending in
  let n_pending = List.length pending in
  let items =
    List.map
      (fun (c, line) ->
        stats.s_requests <- stats.s_requests + 1;
        m.Metrics.serve_requests <- m.Metrics.serve_requests + 1;
        match parse_request line with
        | Error e -> (c, Either.Left (reply_error e))
        | Ok Ping -> (c, Either.Left "ok pong")
        | Ok Files -> (c, Either.Left (files_reply handler))
        | Ok Stats -> (c, Either.Left (stats_reply stats))
        | Ok Health -> (c, Either.Left (health_reply cfg ~t0 ~depth:n_pending))
        | Ok Quit ->
            quit := true;
            (c, Either.Left "ok bye")
        | Ok Watch ->
            if handler.h_reload = None || handler.h_paths = [] then
              (c, Either.Left (reply_error "watch not supported by this driver"))
            else begin
              watching := true;
              ( c,
                Either.Left
                  (Printf.sprintf "ok watching %d files" (List.length handler.h_paths))
              )
            end
        | Ok (Reload file) -> (c, Either.Left (do_reload cfg handler stats ~file))
        | Ok (Query { file; query }) -> (c, Either.Right (file, query)))
      admitted
  in
  let queries = List.filter_map (fun (_, i) -> Either.find_right i) items in
  let answers =
    match queries with
    | [] -> []
    | [ one ] -> [ do_query cfg handler one ]  (* skip the pool: round-trip latency *)
    | many ->
        (* chunk the batch so per-task pool overhead (queueing, domain
           wake-up) is amortized over many queries instead of paid per
           query; order is preserved chunk-by-chunk *)
        let n = List.length many in
        let per_chunk = max 1 ((n + (4 * cfg.jobs) - 1) / (4 * cfg.jobs)) in
        let rec chunk = function
          | [] -> []
          | l ->
              let rec take k acc = function
                | rest when k = 0 -> (List.rev acc, rest)
                | [] -> (List.rev acc, [])
                | x :: tl -> take (k - 1) (x :: acc) tl
              in
              let c, rest = take per_chunk [] l in
              c :: chunk rest
        in
        let chunks = chunk many in
        Pool.map_result pool (List.map (do_query cfg handler)) chunks
        |> List.map2
             (fun c res ->
               match res with
               | Ok rs -> rs
               | Error e ->
                   (* a whole chunk failed before per-query isolation
                      could catch it (only injected pool faults do
                      this): every query of the chunk gets the error *)
                   List.map
                     (fun _ -> reply_error ("request failed: " ^ Printexc.to_string e))
                     c)
             chunks
        |> List.concat
  in
  (* reassemble in request order, then account and route the replies *)
  let replies =
    let rec zip items answers =
      match (items, answers) with
      | [], _ -> []
      | (c, Either.Left r) :: tl, answers -> (c, r) :: zip tl answers
      | (c, Either.Right _) :: tl, a :: answers -> (c, a) :: zip tl answers
      | (_, Either.Right _) :: _, [] -> assert false
    in
    (* the admitted queries have already run by this point, so the
       batch's own latency is known — it is the best available estimate
       of when the daemon will take requests again, and becomes the
       shed replies' retry hint (floored at 1 ms so a client backing
       off by the hint never busy-loops) *)
    let retry_after_ms =
      max 1 (int_of_float (ceil ((Mono.now_s () -. t_batch0) *. 1e3)))
    in
    zip items answers
    @ List.map
        (fun (c, _) ->
          stats.s_requests <- stats.s_requests + 1;
          m.Metrics.serve_requests <- m.Metrics.serve_requests + 1;
          stats.s_shed <- stats.s_shed + 1;
          m.Metrics.serve_shed <- m.Metrics.serve_shed + 1;
          ( c,
            Printf.sprintf "busy retry-after-ms=%d queue full (%d pending, max %d per \
                            batch)"
              retry_after_ms n_pending cfg.queue_max ))
        shed
  in
  List.iter
    (fun (_, r) ->
      if String.length r >= 2 && String.sub r 0 2 = "ok" then stats.s_ok <- stats.s_ok + 1
      else if String.length r >= 8 && String.sub r 0 8 = "degraded" then
        stats.s_degraded <- stats.s_degraded + 1
      else if String.length r >= 5 && String.sub r 0 5 = "error" then begin
        stats.s_errors <- stats.s_errors + 1;
        m.Metrics.serve_errors <- m.Metrics.serve_errors + 1
      end)
    replies;
  (* one write per connection per batch *)
  let outs : (conn * Buffer.t) list ref = ref [] in
  List.iter
    (fun (c, r) ->
      let buf =
        match List.find_opt (fun (c', _) -> c' == c) !outs with
        | Some (_, b) -> b
        | None ->
            let b = Buffer.create 1024 in
            outs := !outs @ [ (c, b) ];
            b
      in
      Buffer.add_string buf r;
      Buffer.add_char buf '\n')
    replies;
  List.iter (fun (c, b) -> if not c.c_dead then write_all c (Buffer.contents b)) !outs

(* ------------------------------------------------------------------ *)
(* Event loop                                                         *)
(* ------------------------------------------------------------------ *)

(* [watch] support: poll the corpus sources' mtimes (cheap stats, at
   most every 250 ms) and reload an entry in place when its file
   changed. The first sighting of a file only records the baseline. *)
let poll_watch cfg handler stats mtimes =
  List.iter
    (fun (name, path) ->
      match Unix.stat path with
      | exception Unix.Unix_error _ -> ()
      | st -> (
          let mt = st.Unix.st_mtime in
          match Hashtbl.find_opt mtimes path with
          | None -> Hashtbl.replace mtimes path mt
          | Some old when old <> mt ->
              Hashtbl.replace mtimes path mt;
              ignore (do_reload cfg handler stats ~file:name)
          | Some _ -> ()))
    handler.h_paths

let run ?(stop = Atomic.make false) cfg handler transport =
  (* a client closing mid-write must be a dropped connection, not a
     fatal SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let stats =
    {
      s_requests = 0;
      s_ok = 0;
      s_degraded = 0;
      s_errors = 0;
      s_shed = 0;
      s_batches = 0;
      s_reloads = 0;
    }
  in
  let listen_fd, conns =
    match transport with
    | Stdio -> (None, ref [ mk_conn ~owned:false Unix.stdin Unix.stdout ])
    | Fds (i, o) -> (None, ref [ mk_conn ~owned:false i o ])
    | Socket path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        (Some fd, ref [])
    | Listening fd ->
        (* pre-bound by the supervisor, which owns its lifecycle *)
        (Some fd, ref [])
  in
  let cleanup () =
    List.iter close_conn !conns;
    match (listen_fd, transport) with
    | Some fd, Socket path ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        (try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Pool.with_pool ~jobs:cfg.jobs @@ fun pool ->
  let t0 = Mono.now_s () in
  journal_replay cfg handler stats;
  let quit = ref false in
  let watching = ref false in
  let mtimes = Hashtbl.create 16 in
  let last_poll = ref 0. in
  while not (!quit || Atomic.get stop) do
    (if !watching then
       let now = Mono.now_s () in
       if now -. !last_poll >= 0.25 then begin
         last_poll := now;
         poll_watch cfg handler stats mtimes
       end);
    let live = List.filter (fun c -> not (c.c_eof || c.c_dead)) !conns in
    let rfds =
      (match listen_fd with Some l -> [ l ] | None -> [])
      @ List.map (fun c -> c.c_in) live
    in
    if rfds = [] then quit := true
    else begin
      (* the timeout bounds how stale a [stop] (SIGTERM) can go
         unnoticed; EINTR from the signal itself just re-polls *)
      let ready =
        try
          let r, _, _ = Unix.select rfds [] [] 0.25 in
          r
        with Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      (match listen_fd with
      | Some l when List.memq l ready -> (
          match Unix.accept l with
          | fd, _ -> conns := !conns @ [ mk_conn ~owned:true fd fd ]
          | exception Unix.Unix_error _ -> ())
      | _ -> ());
      List.iter (fun c -> if List.memq c.c_in ready then read_chunk c) live;
      let pending =
        List.concat_map
          (fun c ->
            if c.c_dead then []
            else
              take_lines c
              |> List.filter_map (fun line ->
                     if String.trim line = "" then None else Some (c, line)))
          !conns
      in
      if pending <> [] then process pool cfg handler stats quit watching ~t0 pending;
      conns :=
        List.filter
          (fun c ->
            if c.c_dead || (c.c_eof && Buffer.length c.c_buf = 0) then begin
              close_conn c;
              false
            end
            else true)
          !conns;
      (* on stdio/fds, end-of-input ends the daemon *)
      if listen_fd = None && !conns = [] then quit := true
    end
  done;
  stats

(* ------------------------------------------------------------------ *)
(* Supervisor                                                         *)
(* ------------------------------------------------------------------ *)

type supervise_config = {
  sv_max_restarts : int;
  sv_window_s : float;
  sv_backoff_ms : float;
  sv_backoff_max_ms : float;
}

let default_supervise =
  { sv_max_restarts = 5; sv_window_s = 30.; sv_backoff_ms = 100.; sv_backoff_max_ms = 5_000. }

(* OCaml signal numbers are negative for portability; name the ones a
   dying worker actually produces. *)
let signal_name s =
  if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigabrt then "SIGABRT"
  else if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigbus then "SIGBUS"
  else string_of_int s

let describe_status = function
  | Unix.WEXITED c -> Printf.sprintf "exited %d" c
  | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %s" (signal_name s)
  | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %s" (signal_name s)

(* The self-healing wrapper around {!run}. The supervisor owns the
   listening socket: it binds and listens exactly once, then forks a
   worker that accepts on the inherited descriptor ({!Listening}).
   Because the socket outlives any worker, a client connecting while
   the worker is down does not get ECONNREFUSED — the connection sits
   in the kernel backlog until the replacement worker accepts it.

   The supervisor itself must stay fork-safe: it runs no analysis,
   spawns no domains, and allocates almost nothing. All real work —
   corpus load, pool creation, query dispatch — happens in the worker,
   after the fork. *)
let supervise ?(stop = Atomic.make false) sv ~socket worker =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  let cleanup () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    try Unix.unlink socket with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let restarts = ref 0 in
  let recent = ref [] in
  (* deaths within the window *)
  let backoff = ref sv.sv_backoff_ms in
  let rec loop () =
    if Atomic.get stop then 0
    else
      match Unix.fork () with
      | 0 ->
          (* the worker; exits instead of returning to the loop *)
          let code =
            try worker ~restarts:!restarts fd
            with e ->
              prerr_endline ("ptan serve worker: " ^ Printexc.to_string e);
              1
          in
          Stdlib.exit code
      | pid -> (
          let rec wait () =
            match Unix.waitpid [] pid with
            | _, st -> st
            | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                (* a signal landed (SIGTERM/SIGINT set [stop]): pass
                   the shutdown on to the worker, keep waiting for it *)
                if Atomic.get stop then
                  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
                wait ()
          in
          match wait () with
          | Unix.WEXITED c when Atomic.get stop -> c
          | Unix.WEXITED 0 -> 0 (* clean [quit] — the daemon is done *)
          | st ->
              let now = Mono.now_s () in
              recent := now :: List.filter (fun t -> now -. t <= sv.sv_window_s) !recent;
              if List.length !recent > sv.sv_max_restarts then begin
                Printf.eprintf
                  "ptan serve: worker %s; %d deaths within %.0fs — giving up\n%!"
                  (describe_status st) (List.length !recent) sv.sv_window_s;
                1
              end
              else begin
                (* a long healthy stretch (every earlier death aged out
                   of the window) earns a fresh backoff *)
                if List.length !recent = 1 then backoff := sv.sv_backoff_ms;
                incr restarts;
                Printf.eprintf "ptan serve: worker %s; restart #%d in %.0fms\n%!"
                  (describe_status st) !restarts !backoff;
                Unix.sleepf (!backoff /. 1e3);
                backoff := Float.min sv.sv_backoff_max_ms (!backoff *. 2.);
                loop ()
              end)
  in
  loop ()
