(** Abstract stack locations (paper §3.1).

    The analysis abstracts the set of all accessible real stack locations
    with a finite set of named abstract locations, obeying the paper's
    two properties: every real location involved in a points-to
    relationship is represented by exactly one abstract location
    (Property 3.1), and an abstract location represents one or more real
    locations (Property 3.2). *)

(** How a named variable is bound in the function under analysis; drives
    visibility across calls and the Table 4 categorization. *)
type var_kind =
  | Kglobal
  | Klocal
  | Kparam

type t =
  | Var of string * var_kind  (** a named variable *)
  | Fld of t * string  (** structure field of a location (nestable) *)
  | Head of t  (** element 0 of an array location (paper §3.2) *)
  | Tail of t  (** elements 1..n of an array location *)
  | Sym of t
      (** symbolic name for an invisible variable: [Sym l] is the location
          reached by dereferencing [l] when the real target is out of
          scope; printed "1_x", "2_x", ... (paper §4.1) *)
  | Heap  (** the single abstract heap location (paper §3.1) *)
  | Site of int
      (** a heap allocation site (statement id), under the
          [heap_by_site] option — the refinement behind the companion
          heap analyses (paper §8) *)
  | Null  (** the NULL target *)
  | Str  (** string-literal storage *)
  | Fun of string  (** a function, as the target of function pointers (§5) *)
  | Ret of string  (** the return-value pseudo-location of a function *)

(** Total order identical to the structural [Stdlib.compare] on this
    type (iteration order of {!Map}/{!Set} is engine-observable and must
    not change), with physical-equality fast paths that make comparisons
    of {!intern}ed locations O(1). *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** {2 Interning}

    Every location can be interned into a domain-local id-stamped table;
    structurally equal locations then share one physical representative,
    so comparisons and [Map]/[Set] operations on the engine's hot path
    reduce to pointer checks. The table is per-domain ([Domain.DLS]):
    parallel {!Pool} workers intern without locks, and since physical
    equality is only a fast path, values interned on one domain stay
    correct when consumed on another. All smart constructors below
    return interned locations; the bare variant constructors remain
    available for pattern matching and cold code. *)

(** Canonical physical representative in the calling domain
    (sub-locations canonicalized too). Idempotent. *)
val intern : t -> t

(** Stamp of a location in the calling domain's intern table (interning
    on demand). Equal locations have equal ids within one domain. *)
val id : t -> int

(** Number of distinct locations interned so far on the calling domain. *)
val interned_count : unit -> int

(** Structural hash, consistent with {!equal} (equal locations hash
    equal, on any domain). *)
val hash : t -> int

val var : string -> var_kind -> t
val fld : t -> string -> t
val head : t -> t
val tail : t -> t
val sym : t -> t
val site : int -> t

(** Interned [Fun f]. *)
val func : string -> t

(** Interned [Ret f]. *)
val ret : string -> t

(** The base variable or special location a location is built from. *)
val root : t -> t

(** Number of [Sym] constructors on the path — the level of indirection
    of a symbolic name (the k of "k_x"). *)
val sym_depth : t -> int

(** Visible inside every procedure: globals (and their parts), heap,
    allocation sites, NULL, strings and functions. Locations rooted at
    locals, parameters or return slots are procedure-specific, and
    symbolic names are name-space-local. *)
val is_global_visible : t -> bool

(** Does the location represent exactly one real stack location?
    Non-singular locations (array tails, heap, strings) only receive weak
    updates, and relationships generated from them are demoted to
    possible (see DESIGN.md on the strong-update refinement). *)
val singular : t -> bool

(** Table 4 categorization of the root: local / global / formal
    parameter / symbolic; [None] for special locations. *)
val category : t -> [ `Lo | `Gl | `Fp | `Sy ] option

(** Rooted in heap storage (the blob or an allocation site). *)
val is_heap : t -> bool

val is_null : t -> bool
val is_fun : t -> bool

(** On the stack for the Table 3/5 stack/heap split: rooted at a named
    variable, symbolic name or return slot. *)
val is_stack : t -> bool

(** Prints with the paper's conventions: [a_head], [a_tail], [1_x],
    [2_x], [heap], [s.f]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

module Set : Stdlib.Set.S with type elt = t
module Map : Stdlib.Map.S with type key = t
