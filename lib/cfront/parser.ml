(** Recursive-descent parser for the analyzed C subset.

    The grammar covers the C constructs exercised by the PLDI'94 benchmark
    suite: all scalar types, multi-level pointers, arrays (including
    multi-dimensional), structs/unions (including nested and recursive via
    pointers), enums, typedefs, function pointers (including arrays of
    function pointers and function-pointer struct fields), the full
    structured statement set, and all C expression forms except
    compound literals and K&R-style definitions. [goto] is rejected with a
    diagnostic pointing at the McCAT goto-elimination substitution
    (see DESIGN.md).

    Typedef names are resolved during parsing (the "lexer hack" done on the
    parser side: the token stream produces plain identifiers and the parser
    consults its typedef table to decide whether a token starts a type). *)

open Token

type state = {
  lexbuf : Lexing.lexbuf;
  mutable lookahead : Token.t list;  (** buffered tokens, oldest first *)
  typedefs : (string, Ctype.t) Hashtbl.t;
  enum_consts : (string, int64) Hashtbl.t;
  layouts : Ctype.layouts;
  mutable globals : Ast.decl list;  (** reverse order *)
  mutable funcs : Ast.func_def list;  (** reverse order *)
  mutable protos : (string * Ctype.func_sig) list;
  mutable anon_counter : int;
      (** tags handed to anonymous structs/unions; per-translation-unit
          so parses are deterministic under parallel drivers *)
}

let make_state lexbuf =
  {
    lexbuf;
    lookahead = [];
    typedefs = Hashtbl.create 16;
    enum_consts = Hashtbl.create 16;
    layouts = Hashtbl.create 16;
    globals = [];
    funcs = [];
    protos = [];
    anon_counter = 0;
  }

let loc_of st = Srcloc.of_lexbuf st.lexbuf

let err st fmt = Srcloc.error (loc_of st) fmt

let peek_nth st n =
  while List.length st.lookahead <= n do
    st.lookahead <- st.lookahead @ [ Lexer.token st.lexbuf ]
  done;
  List.nth st.lookahead n

let peek st = peek_nth st 0
let peek2 st = peek_nth st 1

let advance st =
  match st.lookahead with
  | t :: rest ->
      st.lookahead <- rest;
      t
  | [] -> Lexer.token st.lexbuf

let expect st tok =
  let t = advance st in
  if t <> tok then
    err st "expected '%s' but found '%s'" (Token.to_string tok) (Token.to_string t)

let accept st tok = if peek st = tok then (ignore (advance st); true) else false

(* ------------------------------------------------------------------ *)
(* Type specifiers                                                    *)
(* ------------------------------------------------------------------ *)

let is_typedef_name st s = Hashtbl.mem st.typedefs s

(** Does the current token start a declaration (type specifier or storage
    class)? *)
let starts_type st tok =
  match tok with
  | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE
  | KW_SIGNED | KW_UNSIGNED | KW_CONST | KW_VOLATILE | KW_STRUCT | KW_UNION
  | KW_ENUM ->
      true
  | IDENT s -> is_typedef_name st s
  | _ -> false

let starts_decl st tok =
  match tok with
  | KW_STATIC | KW_EXTERN | KW_REGISTER | KW_AUTO | KW_TYPEDEF -> true
  | _ -> starts_type st tok

type specifiers = { spec_ty : Ctype.t; spec_typedef : bool }

let fresh_anon_tag st prefix =
  st.anon_counter <- st.anon_counter + 1;
  Printf.sprintf "%s$%d" prefix st.anon_counter

(* Forward declarations to break the specifier/declarator cycle
   (struct fields and function parameters contain declarators). *)
let rec parse_specifiers st : specifiers =
  let is_typedef = ref false in
  let base : Ctype.t option ref = ref None in
  let long_count = ref 0 in
  let saw_int_adj = ref false in
  (* signed/unsigned/short: fold into int kinds *)
  let set_base t =
    match !base with
    | None -> base := Some t
    | Some _ -> err st "conflicting type specifiers"
  in
  let continue_ = ref true in
  while !continue_ do
    (match peek st with
    | KW_CONST | KW_VOLATILE | KW_STATIC | KW_EXTERN | KW_REGISTER | KW_AUTO ->
        ignore (advance st)
    | KW_TYPEDEF ->
        ignore (advance st);
        is_typedef := true
    | KW_VOID -> ignore (advance st); set_base Ctype.Void
    | KW_CHAR -> ignore (advance st); set_base (Ctype.Int Ctype.Ichar)
    | KW_SHORT ->
        ignore (advance st);
        saw_int_adj := true;
        set_base (Ctype.Int Ctype.Ishort)
    | KW_INT ->
        ignore (advance st);
        if !base = None && !long_count = 0 && not !saw_int_adj then
          set_base (Ctype.Int Ctype.Iint)
        (* 'short int', 'long int', 'unsigned int': int token absorbed *)
    | KW_LONG ->
        ignore (advance st);
        incr long_count
    | KW_SIGNED | KW_UNSIGNED ->
        ignore (advance st);
        saw_int_adj := true
    | KW_FLOAT -> ignore (advance st); set_base (Ctype.Float Ctype.Ffloat)
    | KW_DOUBLE -> ignore (advance st); set_base (Ctype.Float Ctype.Fdouble)
    | KW_STRUCT | KW_UNION ->
        let su =
          match advance st with
          | KW_STRUCT -> Ctype.Struct_su
          | _ -> Ctype.Union_su
        in
        set_base (parse_struct_or_union st su)
    | KW_ENUM ->
        ignore (advance st);
        parse_enum st;
        set_base (Ctype.Int Ctype.Iint)
    | IDENT s when !base = None && !long_count = 0 && not !saw_int_adj
                   && is_typedef_name st s -> (
        (* a typedef name is only a specifier if no base type seen yet *)
        ignore (advance st);
        match Hashtbl.find_opt st.typedefs s with
        | Some t -> set_base t
        | None -> assert false)
    | _ -> continue_ := false);
    (* stop when the next token can no longer extend the specifiers *)
    if !continue_ then
      match peek st with
      | KW_VOID | KW_CHAR | KW_SHORT | KW_INT | KW_LONG | KW_FLOAT | KW_DOUBLE
      | KW_SIGNED | KW_UNSIGNED | KW_CONST | KW_VOLATILE | KW_STATIC
      | KW_EXTERN | KW_REGISTER | KW_AUTO | KW_TYPEDEF | KW_STRUCT | KW_UNION
      | KW_ENUM ->
          ()
      | IDENT s
        when !base = None && !long_count = 0 && not !saw_int_adj
             && is_typedef_name st s ->
          ()
      | _ -> continue_ := false
  done;
  let ty =
    match (!base, !long_count, !saw_int_adj) with
    | Some t, 0, _ -> t
    | Some (Ctype.Float Ctype.Fdouble), _, _ -> Ctype.Float Ctype.Fdouble
    | (None | Some (Ctype.Int Ctype.Iint)), n, _ when n > 0 -> Ctype.Int Ctype.Ilong
    | None, _, true -> Ctype.Int Ctype.Iint (* bare signed/unsigned/short *)
    | None, _, false ->
        err st "expected type specifier, found '%s'" (Token.to_string (peek st))
    | Some t, _, _ -> t
  in
  { spec_ty = ty; spec_typedef = !is_typedef }

and parse_struct_or_union st su : Ctype.t =
  let tag =
    match peek st with
    | IDENT s ->
        ignore (advance st);
        s
    | _ -> fresh_anon_tag st (match su with Ctype.Struct_su -> "struct" | _ -> "union")
  in
  if accept st LBRACE then begin
    let fields = ref [] in
    while peek st <> RBRACE do
      let spec = parse_specifiers st in
      if spec.spec_typedef then err st "typedef not allowed in struct body";
      let rec field_loop () =
        let name, mk = parse_declarator st in
        (match name with
        | Some n -> fields := (n, mk spec.spec_ty) :: !fields
        | None -> err st "struct field requires a name");
        if accept st COMMA then field_loop ()
      in
      field_loop ();
      expect st SEMI
    done;
    expect st RBRACE;
    Hashtbl.replace st.layouts tag { Ctype.su; tag; fields = List.rev !fields }
  end;
  Ctype.Su (su, tag)

and parse_enum st =
  (match peek st with IDENT _ -> ignore (advance st) | _ -> ());
  if accept st LBRACE then begin
    let next = ref 0L in
    let rec enum_loop () =
      match peek st with
      | IDENT name ->
          ignore (advance st);
          if accept st ASSIGN then begin
            let v = parse_const_expr st in
            next := v
          end;
          Hashtbl.replace st.enum_consts name !next;
          next := Int64.add !next 1L;
          if accept st COMMA then begin
            match peek st with RBRACE -> () | _ -> enum_loop ()
          end
      | RBRACE -> ()
      | t -> err st "expected enumerator, found '%s'" (Token.to_string t)
    in
    enum_loop ();
    expect st RBRACE
  end

(* ------------------------------------------------------------------ *)
(* Declarators                                                        *)
(* ------------------------------------------------------------------ *)

(** Parse a (possibly abstract) declarator. Returns the declared name (if
    any) and a function that, applied to the base type from the
    specifiers, yields the full declared type. *)
and parse_declarator st : string option * (Ctype.t -> Ctype.t) =
  if accept st STAR then begin
    while peek st = KW_CONST || peek st = KW_VOLATILE do
      ignore (advance st)
    done;
    let name, mk = parse_declarator st in
    (name, fun base -> mk (Ctype.Ptr base))
  end
  else parse_direct_declarator st

and parse_direct_declarator st : string option * (Ctype.t -> Ctype.t) =
  let name, core =
    match peek st with
    | IDENT s when not (is_typedef_name st s) ->
        ignore (advance st);
        (Some s, fun t -> t)
    | LPAREN when is_paren_declarator st ->
        ignore (advance st);
        let name, mk = parse_declarator st in
        expect st RPAREN;
        (name, mk)
    | _ -> (None, fun t -> t)
  in
  let rec suffixes (mk : Ctype.t -> Ctype.t) =
    match peek st with
    | LBRACKET ->
        ignore (advance st);
        let n =
          if peek st = RBRACKET then None else Some (Int64.to_int (parse_const_expr st))
        in
        expect st RBRACKET;
        suffixes (fun base -> mk (Ctype.Array (base, n)))
    | LPAREN ->
        ignore (advance st);
        let params, variadic = parse_param_list st in
        expect st RPAREN;
        suffixes (fun base ->
            mk (Ctype.Func { Ctype.ret = base; params = List.map snd params; variadic }))
    | _ -> mk
  in
  (name, suffixes core)

(** Decide whether the '(' at the current position opens a parenthesized
    declarator — as in a function-pointer declaration "int ( *fp )(void)" —
    rather than a parameter list. *)
and is_paren_declarator st =
  match peek2 st with
  | STAR | LPAREN | LBRACKET -> true
  | IDENT s -> not (is_typedef_name st s)
  | _ -> false

(** Parse a parameter list (cursor just after '('). Array and function
    parameter types decay. Returns named-or-anonymous parameters. *)
and parse_param_list st : (string * Ctype.t) list * bool =
  if peek st = RPAREN then ([], false)
  else if peek st = KW_VOID && peek2 st = RPAREN then begin
    ignore (advance st);
    ([], false)
  end
  else begin
    let params = ref [] in
    let variadic = ref false in
    let rec loop i =
      if accept st ELLIPSIS then variadic := true
      else begin
        let spec = parse_specifiers st in
        let name, mk = parse_declarator st in
        let ty = Ctype.decay (mk spec.spec_ty) in
        let name = match name with Some n -> n | None -> Printf.sprintf "$arg%d" i in
        params := (name, ty) :: !params;
        if accept st COMMA then loop (i + 1)
      end
    in
    loop 0;
    (List.rev !params, !variadic)
  end

(** Parse a type name (specifiers + abstract declarator), as used in casts
    and sizeof. *)
and parse_type_name st : Ctype.t =
  let spec = parse_specifiers st in
  let name, mk = parse_declarator st in
  (match name with
  | Some n -> err st "unexpected identifier '%s' in type name" n
  | None -> ());
  mk spec.spec_ty

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

and parse_const_expr st : int64 =
  let e = parse_conditional st in
  eval_const st e

and eval_const st (e : Ast.expr) : int64 =
  let open Ast in
  match e with
  | Eint n -> n
  | Echar c -> Int64.of_int (Char.code c)
  | Eident s -> (
      match Hashtbl.find_opt st.enum_consts s with
      | Some v -> v
      | None -> err st "'%s' is not a constant" s)
  | Eunary (Uneg, e) -> Int64.neg (eval_const st e)
  | Eunary (Ubnot, e) -> Int64.lognot (eval_const st e)
  | Eunary (Ulnot, e) -> if eval_const st e = 0L then 1L else 0L
  | Ebinary (op, a, b) -> (
      let a = eval_const st a and b = eval_const st b in
      let bool_ v = if v then 1L else 0L in
      match op with
      | Badd -> Int64.add a b
      | Bsub -> Int64.sub a b
      | Bmul -> Int64.mul a b
      | Bdiv -> if b = 0L then err st "division by zero in constant" else Int64.div a b
      | Bmod -> if b = 0L then err st "division by zero in constant" else Int64.rem a b
      | Bshl -> Int64.shift_left a (Int64.to_int b)
      | Bshr -> Int64.shift_right a (Int64.to_int b)
      | Blt -> bool_ (a < b)
      | Bgt -> bool_ (a > b)
      | Ble -> bool_ (a <= b)
      | Bge -> bool_ (a >= b)
      | Beq -> bool_ (a = b)
      | Bne -> bool_ (a <> b)
      | Bband -> Int64.logand a b
      | Bbor -> Int64.logor a b
      | Bbxor -> Int64.logxor a b
      | Bland -> bool_ (a <> 0L && b <> 0L)
      | Blor -> bool_ (a <> 0L || b <> 0L))
  | Esizeof_type _ | Esizeof_expr _ -> 4L (* size is irrelevant to the analysis *)
  | Ecast (_, e) -> eval_const st e
  | Econd (c, t, f) -> if eval_const st c <> 0L then eval_const st t else eval_const st f
  | _ -> err st "expression is not constant"

and parse_expr st : Ast.expr =
  let e = parse_assignment st in
  if peek st = COMMA then begin
    ignore (advance st);
    let rest = parse_expr st in
    Ast.Ecomma (e, rest)
  end
  else e

and parse_assignment st : Ast.expr =
  let lhs = parse_conditional st in
  let mk op =
    ignore (advance st);
    let rhs = parse_assignment st in
    Ast.Eassign (op, lhs, rhs)
  in
  match peek st with
  | ASSIGN -> mk None
  | PLUS_ASSIGN -> mk (Some Ast.Badd)
  | MINUS_ASSIGN -> mk (Some Ast.Bsub)
  | STAR_ASSIGN -> mk (Some Ast.Bmul)
  | SLASH_ASSIGN -> mk (Some Ast.Bdiv)
  | PERCENT_ASSIGN -> mk (Some Ast.Bmod)
  | AMP_ASSIGN -> mk (Some Ast.Bband)
  | PIPE_ASSIGN -> mk (Some Ast.Bbor)
  | CARET_ASSIGN -> mk (Some Ast.Bbxor)
  | SHL_ASSIGN -> mk (Some Ast.Bshl)
  | SHR_ASSIGN -> mk (Some Ast.Bshr)
  | _ -> lhs

and parse_conditional st : Ast.expr =
  let c = parse_logical_or st in
  if accept st QUESTION then begin
    let t = parse_expr st in
    expect st COLON;
    let f = parse_conditional st in
    Ast.Econd (c, t, f)
  end
  else c

and parse_logical_or st =
  let rec loop acc =
    if accept st PIPEPIPE then loop (Ast.Ebinary (Ast.Blor, acc, parse_logical_and st))
    else acc
  in
  loop (parse_logical_and st)

and parse_logical_and st =
  let rec loop acc =
    if accept st AMPAMP then loop (Ast.Ebinary (Ast.Bland, acc, parse_bit_or st))
    else acc
  in
  loop (parse_bit_or st)

and parse_bit_or st =
  let rec loop acc =
    if peek st = PIPE then begin
      ignore (advance st);
      loop (Ast.Ebinary (Ast.Bbor, acc, parse_bit_xor st))
    end
    else acc
  in
  loop (parse_bit_xor st)

and parse_bit_xor st =
  let rec loop acc =
    if accept st CARET then loop (Ast.Ebinary (Ast.Bbxor, acc, parse_bit_and st))
    else acc
  in
  loop (parse_bit_and st)

and parse_bit_and st =
  let rec loop acc =
    if peek st = AMP then begin
      ignore (advance st);
      loop (Ast.Ebinary (Ast.Bband, acc, parse_equality st))
    end
    else acc
  in
  loop (parse_equality st)

and parse_equality st =
  let rec loop acc =
    match peek st with
    | EQEQ ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Beq, acc, parse_relational st))
    | NEQ ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bne, acc, parse_relational st))
    | _ -> acc
  in
  loop (parse_relational st)

and parse_relational st =
  let rec loop acc =
    match peek st with
    | LT ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Blt, acc, parse_shift st))
    | GT ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bgt, acc, parse_shift st))
    | LE ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Ble, acc, parse_shift st))
    | GE ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bge, acc, parse_shift st))
    | _ -> acc
  in
  loop (parse_shift st)

and parse_shift st =
  let rec loop acc =
    match peek st with
    | SHL ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bshl, acc, parse_additive st))
    | SHR ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bshr, acc, parse_additive st))
    | _ -> acc
  in
  loop (parse_additive st)

and parse_additive st =
  let rec loop acc =
    match peek st with
    | PLUS ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Badd, acc, parse_multiplicative st))
    | MINUS ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bsub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek st with
    | STAR ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bmul, acc, parse_cast st))
    | SLASH ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bdiv, acc, parse_cast st))
    | PERCENT ->
        ignore (advance st);
        loop (Ast.Ebinary (Ast.Bmod, acc, parse_cast st))
    | _ -> acc
  in
  loop (parse_cast st)

and parse_cast st : Ast.expr =
  match peek st with
  | LPAREN when starts_type st (peek2 st) ->
      ignore (advance st);
      let ty = parse_type_name st in
      expect st RPAREN;
      Ast.Ecast (ty, parse_cast st)
  | _ -> parse_unary st

and parse_unary st : Ast.expr =
  match peek st with
  | MINUS ->
      ignore (advance st);
      Ast.Eunary (Ast.Uneg, parse_cast st)
  | PLUS ->
      ignore (advance st);
      parse_cast st
  | TILDE ->
      ignore (advance st);
      Ast.Eunary (Ast.Ubnot, parse_cast st)
  | BANG ->
      ignore (advance st);
      Ast.Eunary (Ast.Ulnot, parse_cast st)
  | AMP ->
      ignore (advance st);
      Ast.Eunary (Ast.Uaddr, parse_cast st)
  | STAR ->
      ignore (advance st);
      Ast.Eunary (Ast.Uderef, parse_cast st)
  | PLUSPLUS ->
      ignore (advance st);
      Ast.Eincdec (Ast.Pre, Ast.Inc, parse_unary st)
  | MINUSMINUS ->
      ignore (advance st);
      Ast.Eincdec (Ast.Pre, Ast.Dec, parse_unary st)
  | KW_SIZEOF ->
      ignore (advance st);
      if peek st = LPAREN && starts_type st (peek2 st) then begin
        ignore (advance st);
        let ty = parse_type_name st in
        expect st RPAREN;
        Ast.Esizeof_type ty
      end
      else Ast.Esizeof_expr (parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st : Ast.expr =
  let rec loop acc =
    match peek st with
    | LBRACKET ->
        ignore (advance st);
        let idx = parse_expr st in
        expect st RBRACKET;
        loop (Ast.Eindex (acc, idx))
    | LPAREN ->
        ignore (advance st);
        let args = parse_args st in
        expect st RPAREN;
        loop (Ast.Ecall (acc, args))
    | DOT ->
        ignore (advance st);
        loop (Ast.Emember (acc, parse_field_name st))
    | ARROW ->
        ignore (advance st);
        loop (Ast.Earrow (acc, parse_field_name st))
    | PLUSPLUS ->
        ignore (advance st);
        loop (Ast.Eincdec (Ast.Post, Ast.Inc, acc))
    | MINUSMINUS ->
        ignore (advance st);
        loop (Ast.Eincdec (Ast.Post, Ast.Dec, acc))
    | _ -> acc
  in
  loop (parse_primary st)

and parse_field_name st =
  match advance st with
  | IDENT s -> s
  | t -> err st "expected field name, found '%s'" (Token.to_string t)

and parse_args st : Ast.expr list =
  if peek st = RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_assignment st in
      if accept st COMMA then loop (e :: acc) else List.rev (e :: acc)
    in
    loop []
  end

and parse_primary st : Ast.expr =
  match advance st with
  | INT_LIT n -> Ast.Eint n
  | FLOAT_LIT f -> Ast.Efloat f
  | CHAR_LIT c -> Ast.Echar c
  | STR_LIT s ->
      (* adjacent string literals concatenate *)
      let rec more acc =
        match peek st with
        | STR_LIT s2 ->
            ignore (advance st);
            more (acc ^ s2)
        | _ -> acc
      in
      Ast.Estr (more s)
  | IDENT s -> (
      match Hashtbl.find_opt st.enum_consts s with
      | Some v -> Ast.Eint v
      | None -> Ast.Eident s)
  | LPAREN ->
      let e = parse_expr st in
      expect st RPAREN;
      e
  | t -> err st "expected expression, found '%s'" (Token.to_string t)

(* ------------------------------------------------------------------ *)
(* Statements                                                         *)
(* ------------------------------------------------------------------ *)

and parse_initializer st : Ast.init =
  if accept st LBRACE then begin
    let items = ref [] in
    if peek st <> RBRACE then begin
      let rec loop () =
        items := parse_initializer st :: !items;
        if accept st COMMA then match peek st with RBRACE -> () | _ -> loop ()
      in
      loop ()
    end;
    expect st RBRACE;
    Ast.Ilist (List.rev !items)
  end
  else Ast.Iexpr (parse_assignment st)

and parse_local_decls st (spec : specifiers) loc : Ast.stmt list =
  if spec.spec_typedef then err st "typedef not supported inside function bodies";
  if accept st SEMI then [] (* bare type declaration, e.g. a local enum/struct *)
  else
  let decls = ref [] in
  let rec loop () =
    let name, mk = parse_declarator st in
    let name = match name with Some n -> n | None -> err st "declaration requires a name" in
    let ty = mk spec.spec_ty in
    let init = if accept st ASSIGN then Some (parse_initializer st) else None in
    decls :=
      { Ast.s_loc = loc; s_desc = Ast.Sdecl { d_name = name; d_ty = ty; d_init = init; d_loc = loc } }
      :: !decls;
    if accept st COMMA then loop ()
  in
  loop ();
  expect st SEMI;
  List.rev !decls

and parse_stmt st : Ast.stmt list =
  let loc = loc_of st in
  let one desc = [ { Ast.s_loc = loc; s_desc = desc } ] in
  match peek st with
  | t when starts_decl st t ->
      let spec = parse_specifiers st in
      parse_local_decls st spec loc
  | SEMI ->
      ignore (advance st);
      []
  | LBRACE -> one (Ast.Sblock (parse_block st))
  | KW_IF ->
      ignore (advance st);
      expect st LPAREN;
      let cond = parse_expr st in
      expect st RPAREN;
      let then_s = parse_stmt st in
      let else_s = if accept st KW_ELSE then parse_stmt st else [] in
      one (Ast.Sif (cond, then_s, else_s))
  | KW_WHILE ->
      ignore (advance st);
      expect st LPAREN;
      let cond = parse_expr st in
      expect st RPAREN;
      one (Ast.Swhile (cond, parse_stmt st))
  | KW_DO ->
      ignore (advance st);
      let body = parse_stmt st in
      expect st KW_WHILE;
      expect st LPAREN;
      let cond = parse_expr st in
      expect st RPAREN;
      expect st SEMI;
      one (Ast.Sdo (body, cond))
  | KW_FOR ->
      ignore (advance st);
      expect st LPAREN;
      let init = if peek st = SEMI then None else Some (parse_expr st) in
      expect st SEMI;
      let cond = if peek st = SEMI then None else Some (parse_expr st) in
      expect st SEMI;
      let step = if peek st = RPAREN then None else Some (parse_expr st) in
      expect st RPAREN;
      one (Ast.Sfor (init, cond, step, parse_stmt st))
  | KW_SWITCH ->
      ignore (advance st);
      expect st LPAREN;
      let scrut = parse_expr st in
      expect st RPAREN;
      one (Ast.Sswitch (scrut, parse_switch_body st))
  | KW_BREAK ->
      ignore (advance st);
      expect st SEMI;
      one Ast.Sbreak
  | KW_CONTINUE ->
      ignore (advance st);
      expect st SEMI;
      one Ast.Scontinue
  | KW_RETURN ->
      ignore (advance st);
      let e = if peek st = SEMI then None else Some (parse_expr st) in
      expect st SEMI;
      one (Ast.Sreturn e)
  | KW_GOTO ->
      err st
        "goto is not supported: McCAT's goto-elimination phase [Erosa & Hendren \
         1994] is out of scope for this reproduction (see DESIGN.md); please \
         restructure the input"
  | _ ->
      let e = parse_expr st in
      expect st SEMI;
      one (Ast.Sexpr e)

and parse_block st : Ast.stmt list =
  expect st LBRACE;
  let stmts = ref [] in
  while peek st <> RBRACE do
    stmts := List.rev_append (parse_stmt st) !stmts
  done;
  expect st RBRACE;
  List.rev !stmts

and parse_switch_body st : Ast.stmt Ast.switch_group list =
  expect st LBRACE;
  let groups = ref [] in
  let rec parse_groups () =
    match peek st with
    | RBRACE -> ()
    | KW_CASE | KW_DEFAULT ->
        let cases = ref [] in
        let default = ref false in
        let rec labels () =
          match peek st with
          | KW_CASE ->
              ignore (advance st);
              let v = parse_const_expr st in
              expect st COLON;
              cases := v :: !cases;
              labels ()
          | KW_DEFAULT ->
              ignore (advance st);
              expect st COLON;
              default := true;
              labels ()
          | _ -> ()
        in
        labels ();
        let body = ref [] in
        let rec body_loop () =
          match peek st with
          | RBRACE | KW_CASE | KW_DEFAULT -> ()
          | _ ->
              body := List.rev_append (parse_stmt st) !body;
              body_loop ()
        in
        body_loop ();
        groups :=
          { Ast.sg_cases = List.rev !cases; sg_default = !default; sg_body = List.rev !body }
          :: !groups;
        parse_groups ()
    | t -> err st "expected 'case' or 'default' in switch body, found '%s'" (Token.to_string t)
  in
  parse_groups ();
  expect st RBRACE;
  List.rev !groups

(* ------------------------------------------------------------------ *)
(* Top level                                                          *)
(* ------------------------------------------------------------------ *)

let add_proto st name (fsig : Ctype.func_sig) =
  if not (List.mem_assoc name st.protos) then st.protos <- (name, fsig) :: st.protos

(* Function definitions need the parameter *names*, which the plain
   declarator machinery drops (it only keeps types). We therefore detect
   "specifiers declarator {": re-running the declarator parse is
   impractical, so parse_declarator_named below mirrors parse_declarator
   but also captures the parameter list of the *outermost* function
   suffix. *)

type named_decl = {
  nd_name : string option;
  nd_mk : Ctype.t -> Ctype.t;
  nd_params : (string * Ctype.t) list option;  (** params of outermost Func suffix *)
  nd_variadic : bool;
}

let rec parse_declarator_named st : named_decl =
  if accept st STAR then begin
    while peek st = KW_CONST || peek st = KW_VOLATILE do
      ignore (advance st)
    done;
    let d = parse_declarator_named st in
    { d with nd_mk = (fun base -> d.nd_mk (Ctype.Ptr base)) }
  end
  else parse_direct_declarator_named st

and parse_direct_declarator_named st : named_decl =
  let name, core, inner_params, inner_variadic =
    match peek st with
    | IDENT s when not (is_typedef_name st s) ->
        ignore (advance st);
        (Some s, (fun t -> t), None, false)
    | LPAREN when is_paren_declarator st ->
        ignore (advance st);
        let d = parse_declarator_named st in
        expect st RPAREN;
        (d.nd_name, d.nd_mk, d.nd_params, d.nd_variadic)
    | _ -> (None, (fun t -> t), None, false)
  in
  let params_ref = ref inner_params in
  let variadic_ref = ref inner_variadic in
  let first_suffix = ref true in
  let rec suffixes (mk : Ctype.t -> Ctype.t) =
    match peek st with
    | LBRACKET ->
        ignore (advance st);
        let n =
          if peek st = RBRACKET then None else Some (Int64.to_int (parse_const_expr st))
        in
        expect st RBRACKET;
        first_suffix := false;
        suffixes (fun base -> mk (Ctype.Array (base, n)))
    | LPAREN ->
        ignore (advance st);
        let params, variadic = parse_param_list st in
        expect st RPAREN;
        (* The parameter names that matter for a function definition are
           those of the declarator's first (i.e. outermost) '()' suffix
           applied directly to the function name. *)
        if !first_suffix then begin
          params_ref := Some params;
          variadic_ref := variadic
        end;
        first_suffix := false;
        suffixes (fun base ->
            mk (Ctype.Func { Ctype.ret = base; params = List.map snd params; variadic }))
    | _ -> mk
  in
  let mk = suffixes core in
  { nd_name = name; nd_mk = mk; nd_params = !params_ref; nd_variadic = !variadic_ref }

let parse_top_named st =
  let loc = loc_of st in
  if accept st SEMI then ()
  else begin
    let spec = parse_specifiers st in
    if peek st = SEMI then ignore (advance st)
    else begin
      let d = parse_declarator_named st in
      let name =
        match d.nd_name with
        | Some n -> n
        | None -> err st "top-level declaration requires a name"
      in
      let ty = d.nd_mk spec.spec_ty in
      if spec.spec_typedef then begin
        Hashtbl.replace st.typedefs name ty;
        let rec more () =
          if accept st COMMA then begin
            let d2 = parse_declarator_named st in
            (match d2.nd_name with
            | Some n2 -> Hashtbl.replace st.typedefs n2 (d2.nd_mk spec.spec_ty)
            | None -> err st "typedef requires a name");
            more ()
          end
        in
        more ();
        expect st SEMI
      end
      else
        match (ty, peek st) with
        | Ctype.Func fsig, LBRACE ->
            let params =
              match d.nd_params with
              | Some ps -> ps
              | None -> err st "function definition '%s' lacks a parameter list" name
            in
            let body = parse_block st in
            st.funcs <-
              {
                Ast.f_name = name;
                f_ret = fsig.Ctype.ret;
                f_params = params;
                f_variadic = fsig.Ctype.variadic;
                f_body = body;
                f_loc = loc;
              }
              :: st.funcs
        | _ ->
            let rec decl_loop name ty =
              (match ty with
              | Ctype.Func fsig -> add_proto st name fsig
              | _ ->
                  let init = if accept st ASSIGN then Some (parse_initializer st) else None in
                  st.globals <-
                    { Ast.d_name = name; d_ty = ty; d_init = init; d_loc = loc } :: st.globals);
              if accept st COMMA then begin
                let d2 = parse_declarator_named st in
                match d2.nd_name with
                | Some n2 -> decl_loop n2 (d2.nd_mk spec.spec_ty)
                | None -> err st "declaration requires a name"
              end
            in
            decl_loop name ty;
            expect st SEMI
    end
  end

let parse_lexbuf ?(file = "<input>") lexbuf : Ast.program =
  Lexing.set_filename lexbuf file;
  let st = make_state lexbuf in
  while peek st <> EOF do
    parse_top_named st
  done;
  {
    Ast.p_globals = List.rev st.globals;
    p_funcs = List.rev st.funcs;
    p_layouts = st.layouts;
    p_protos = st.protos;
  }

let parse_string ?(file = "<string>") s : Ast.program =
  parse_lexbuf ~file (Lexing.from_string s)

let parse_file path : Ast.program =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse_lexbuf ~file:path (Lexing.from_channel ic))
