(** Demand queries over analysis results (see query.mli). *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts
module Lval = Pointsto.Lval
module Tenv = Pointsto.Tenv
module Analysis = Pointsto.Analysis

type t =
  | Alias_q of { func : string; stmt : int; p : string; q : string }
  | Pts_q of { func : string; stmt : int; var : string }
  | Calls_q of { stmt : int }

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

(** Statement ids as printed by the CLI ([s12]) or bare ([12]). *)
let stmt_id tok =
  let digits =
    if String.length tok > 1 && tok.[0] = 's' then String.sub tok 1 (String.length tok - 1)
    else tok
  in
  match int_of_string_opt digits with
  | Some n when n >= 0 -> Some n
  | Some _ | None -> None

let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let parse line : (t, string) result =
  let stmt_or what tok k =
    match stmt_id tok with
    | Some stmt -> k stmt
    | None -> Error (Fmt.str "%s: malformed statement id '%s' (expected 12 or s12)" what tok)
  in
  match tokens line with
  | [] -> Error "empty query"
  | [ "alias"; func; sid; p; q ] ->
      stmt_or "alias" sid (fun stmt -> Ok (Alias_q { func; stmt; p; q }))
  | "alias" :: _ -> Error "alias expects: alias <func> <stmt> <p> <q>"
  | [ "pts"; func; sid; var ] -> stmt_or "pts" sid (fun stmt -> Ok (Pts_q { func; stmt; var }))
  | "pts" :: _ -> Error "pts expects: pts <func> <stmt> <var>"
  | [ "calls"; sid ] -> stmt_or "calls" sid (fun stmt -> Ok (Calls_q { stmt }))
  | "calls" :: _ -> Error "calls expects: calls <stmt>"
  | kw :: _ -> Error (Fmt.str "unknown query '%s' (expected alias, pts or calls)" kw)

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let ( let* ) = Result.bind

let find_func (res : Analysis.result) name =
  match Ir.find_func res.Analysis.prog name with
  | Some fn -> Ok fn
  | None -> Error (Fmt.str "unknown function '%s'" name)

(** Resolve a variable name as seen from [fn]; functions are named
    constants, not variables, and are rejected here. *)
let find_var (res : Analysis.result) fn name =
  let tenv = res.Analysis.tenv in
  match Tenv.var_info tenv fn name with
  | Some (kind, ty) -> Ok (Loc.var name kind, ty)
  | None when Tenv.is_func_name tenv name ->
      Error (Fmt.str "'%s' is a function, not a variable" name)
  | None -> Error (Fmt.str "unknown variable '%s' in function '%s'" name fn.Ir.fn_name)

(** The function whose body contains statement [sid], with the statement
    itself. *)
let find_stmt (res : Analysis.result) sid =
  let found =
    List.find_map
      (fun fn ->
        Ir.fold_func
          (fun acc s -> if s.Ir.s_id = sid then Some (fn, s) else acc)
          None fn)
      res.Analysis.prog.Ir.funcs
  in
  match found with
  | Some fs -> Ok fs
  | None -> Error (Fmt.str "no statement s%d in the program" sid)

let show_targets (tgts : (Loc.t * Pts.cert) list) =
  let tgts =
    List.filter (fun (l, _) -> not (Loc.is_null l)) tgts
    |> List.sort (fun (a, _) (b, _) -> Loc.compare a b)
  in
  Fmt.str "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (l, c) ->
         Fmt.pf ppf "%a/%s" Loc.pp l (Pts.cert_to_string c)))
    tgts

let answer (res : Analysis.result) (q : t) : (string, string) result =
  match q with
  | Alias_q { func; stmt; p; q } ->
      let* fn = find_func res func in
      let* (_ : Loc.t * Cfront.Ctype.t) = find_var res fn p in
      let* (_ : Loc.t * Cfront.Ctype.t) = find_var res fn q in
      Ok (Queries.verdict_to_string (Queries.derefs_alias res fn stmt p q))
  | Pts_q { func; stmt; var } ->
      let* fn = find_func res func in
      let* base, ty = find_var res fn var in
      (* aggregates keep their pairs on contained cells (head/tail of
         arrays, pointer fields of structs), so expand to those *)
      let cells =
        match Tenv.pointer_cells res.Analysis.tenv base ty with
        | [] -> [ (base, ty) ]
        | cells -> cells
      in
      let pts = Analysis.pts_at res stmt in
      Ok
        (List.map
           (fun (cell, _) ->
             Fmt.str "%a -> %s" Loc.pp cell (show_targets (Pts.targets cell pts)))
           cells
        |> String.concat "; ")
  | Calls_q { stmt } ->
      let* fn, s = find_stmt res stmt in
      let* callee =
        match s.Ir.s_desc with
        | Ir.Scall (_, callee, _) -> Ok callee
        | _ -> Error (Fmt.str "statement s%d is not a call" stmt)
      in
      let targets =
        match callee with
        | Ir.Cdirect f -> [ f ]
        | Ir.Cindirect fref ->
            (* Figure 5: the invocable functions are exactly the pointer's
               current function targets *)
            let pts = Analysis.pts_at res stmt in
            Loc.Map.fold
              (fun l _ acc -> match l with Loc.Fun f -> f :: acc | _ -> acc)
              (Lval.rvals_ref res.Analysis.tenv fn pts fref)
              []
            |> List.sort_uniq String.compare
      in
      Ok
        (Fmt.str "s%d -> {%a}" stmt
           (Fmt.list ~sep:(Fmt.any ", ") Fmt.string)
           targets)

let run res line =
  let* q = parse line in
  answer res q
