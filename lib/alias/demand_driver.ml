(** Demand-driven query dispatch (see demand_driver.mli). *)

module Ir = Simple_ir.Ir
module Analysis = Pointsto.Analysis
module Demand = Pointsto.Demand

type t = {
  prog : Ir.program;
  entry : string;
  opts : Pointsto.Options.t;
  site_targets : (string * int, string list) Hashtbl.t;
      (** Andersen targets per indirect site (fn, sid), defined functions
          only, sorted *)
  fallback : string list;
      (** defined address-taken functions — the oracle's answer for a
          site Andersen found no targets for *)
}

let prepare ?(opts = Pointsto.Options.default) ?(entry = "main") (prog : Ir.program) : t =
  let indirect_sites =
    List.concat_map
      (fun fn ->
        Ir.fold_func
          (fun acc s ->
            match s.Ir.s_desc with
            | Ir.Scall (_, Ir.Cindirect fref, _) -> (fn, s.Ir.s_id, fref) :: acc
            | _ -> acc)
          [] fn)
      prog.Ir.funcs
  in
  let site_targets = Hashtbl.create 32 in
  (* the oracle is only ever consulted at indirect sites: a program
     without any needs no Andersen pre-pass at all *)
  if indirect_sites <> [] then begin
    let r = Andersen.run prog in
    let info = r.Andersen.solver.Andersen.info in
    let defined f = Hashtbl.mem info.Cells.defined f in
    let funs_of nodes =
      List.filter_map (function Cells.Nfun f when defined f -> Some f | _ -> None) nodes
      |> List.sort_uniq String.compare
    in
    List.iter
      (fun (fn, sid, fref) ->
        let nodes =
          match Cells.access_of_vref info fn fref with
          | Cells.Abase n -> Andersen.targets r n
          | Cells.Aderef n -> List.concat_map (Andersen.targets r) (Andersen.targets r n)
        in
        Hashtbl.replace site_targets (fn.Ir.fn_name, sid) (funs_of nodes))
      indirect_sites
  end;
  let names = Hashtbl.create 64 in
  List.iter (fun (f : Ir.func) -> Hashtbl.replace names f.Ir.fn_name ()) prog.Ir.funcs;
  let fallback = List.filter (Hashtbl.mem names) (Ir.address_taken_funcs prog) in
  { prog; entry; opts; site_targets; fallback }

(* A site whose Andersen target set came out empty gets the
   address-taken fallback: the engine may still resolve targets there
   (e.g. along paths Andersen's external-call model loses), and an
   oracle that under-predicts only costs an exhaustive fallback at run
   time — but an empty answer would carve the callee out of the slice
   for nothing. Unknown sites (never seen at extraction) answer the
   fallback too, keeping the oracle total. *)
let oracle (t : t) : Demand.oracle =
 fun ~fn ~sid ->
  match Hashtbl.find_opt t.site_targets (fn, sid) with
  | Some [] | None -> t.fallback
  | Some ts -> ts

let seed_of (t : t) (q : Query.t) : string option =
  let sid =
    match q with
    | Query.Alias_q { stmt; _ } | Query.Pts_q { stmt; _ } -> stmt
    | Query.Calls_q { stmt } -> stmt
  in
  List.find_map
    (fun fn ->
      Ir.fold_func
        (fun acc s -> if s.Ir.s_id = sid then Some fn.Ir.fn_name else acc)
        None fn)
    t.prog.Ir.funcs

let plan_for (t : t) ~(seed : string) : Demand.plan =
  Demand.plan t.prog ~entry:t.entry ~seed (oracle t)

let analyze ?seeded (t : t) ~(seed : string) : Analysis.result =
  (* One metrics epoch for plan + run: [analyze_demand] deliberately
     does not reset (see its doc). *)
  Pointsto.Metrics.reset ();
  let plan = plan_for t ~seed in
  Analysis.analyze_demand ~opts:t.opts ~entry:t.entry ?seeded ~plan t.prog
