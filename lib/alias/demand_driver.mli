(** Demand-driven query dispatch: the glue between the textual query
    layer ({!Query}), the flow-insensitive Andersen pre-pass (the
    planning oracle), and the sliced analysis entry point
    ({!Pointsto.Analysis.analyze_demand}).

    [prepare] runs Andersen once over the program and tabulates the
    defined targets of every indirect call site; that table (with the
    address-taken fallback for empty or unknown sites) is the
    {!Pointsto.Demand.oracle} the slice planner consults. A query's
    {e seed} is the function whose body contains the query's statement —
    all three query forms read that statement's recorded row, which the
    demand run reproduces bit-identically (docs/DEMAND.md).

    One [prepare] serves any number of queries over the same program;
    callers memoize {!analyze} per seed (queries about the same function
    share a slice). *)

module Ir = Simple_ir.Ir
module Analysis = Pointsto.Analysis
module Demand = Pointsto.Demand

type t

(** Run the Andersen pre-pass and build the oracle tables. Cheap
    relative to the context-sensitive analysis (flow-insensitive, one
    worklist pass). [opts]/[entry] are stored for {!analyze}. *)
val prepare : ?opts:Pointsto.Options.t -> ?entry:string -> Ir.program -> t

(** The planning oracle: Andersen's defined targets for an indirect
    site, the defined address-taken functions when Andersen found none
    (or the site is unknown). Total. *)
val oracle : t -> Demand.oracle

(** The function whose body contains the query's statement — [None]
    when no such statement exists (the caller falls back to the
    exhaustive analysis, whose query layer reports the error). *)
val seed_of : t -> Query.t -> string option

(** The slice plan for queries about statements of [seed].
    @raise Invalid_argument when [seed] is not defined. *)
val plan_for : t -> seed:string -> Demand.plan

(** Sliced analysis for [seed]'s rows:
    {!Pointsto.Analysis.analyze_demand} over {!plan_for}, with [seeded]
    summaries replayed at skipped calls when supplied. *)
val analyze : ?seeded:Pointsto.Engine.summaries -> t -> seed:string -> Analysis.result
