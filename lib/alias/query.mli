(** A small textual query language over persisted points-to results —
    the demand side of the analyze-once / query-many layer.

    One analysis result answers many queries (paper §6.1 lists the
    consumers: dependence testing, call-graph construction, pointer
    replacement); this module parses one-line queries and dispatches
    them against a {!Pointsto.Analysis.result}, loaded from the disk
    cache by the CLI ([ptan query] / [ptan batch]).

    {2 Grammar}

    Tokens are whitespace-separated; statement ids accept both [12] and
    the [s12] form the CLI prints:

    {v
    alias <func> <stmt> <p> <q>   verdict for the dereferences *p, *q
                                  at <stmt> of <func>
    pts <func> <stmt> <var>       points-to targets of <var> at <stmt>
                                  (NULL targets excluded)
    calls <stmt>                  functions callable at call site <stmt>
    v} *)

module Analysis = Pointsto.Analysis

type t =
  | Alias_q of { func : string; stmt : int; p : string; q : string }
      (** [alias]: {!Queries.derefs_alias} verdict *)
  | Pts_q of { func : string; stmt : int; var : string }
      (** [pts]: targets of a named variable at a statement *)
  | Calls_q of { stmt : int }
      (** [calls]: resolved target set of a (direct or indirect) call *)

(** Parse one query line. [Error] carries a human-readable reason
    (unknown keyword, wrong arity, malformed statement id). *)
val parse : string -> (t, string) result

(** Answer a parsed query. [Error] carries a semantic failure: unknown
    function or variable, no such statement, statement not a call. The
    [Ok] text is deterministic (targets sorted by location order). *)
val answer : Analysis.result -> t -> (string, string) result

(** [run res line]: {!parse} then {!answer}. *)
val run : Analysis.result -> string -> (string, string) result
