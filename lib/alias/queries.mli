(** May/must-alias queries over points-to results (paper §6.1): the
    interface a dependence tester asks.

    Verdicts are computed from the L-location sets (Table 1) of the two
    references at the given statement, with contexts merged — the same
    convention as the per-statement sets in {!Analysis.result}. The CLI
    exposes [refs_alias]/[derefs_alias] as the [alias] form of
    [ptan query] (see [Query]). *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Analysis = Pointsto.Analysis

type verdict =
  | No_alias  (** provably distinct locations *)
  | May_alias
      (** the L-location sets overlap (equality or aggregate
          containment) without meeting the must-alias bar *)
  | Must_alias  (** same single definite, singular location *)

(** ["no-alias"] / ["may-alias"] / ["must-alias"] — the stable textual
    form printed by [ptan query]. *)
val verdict_to_string : verdict -> string

(** Do two abstract locations possibly overlap in memory? Equal or one
    contained in the other; siblings (distinct fields, head vs tail of
    one array) do not overlap. *)
val locs_overlap : Loc.t -> Loc.t -> bool

(** Aliasing verdict for two references at a statement of a function. *)
val refs_alias : Analysis.result -> Ir.func -> int -> Ir.vref -> Ir.vref -> verdict

(** Verdict for the dereferences of two named pointers. *)
val derefs_alias : Analysis.result -> Ir.func -> int -> string -> string -> verdict

(** The exhaustive per-statement alias table over a function's pointer
    variables. *)
val deref_alias_pairs : Analysis.result -> Ir.func -> (int * string * string * verdict) list
