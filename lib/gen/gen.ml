(** Deterministic big-program generator. See gen.mli and docs/CORPUS.md.

    Everything here is a pure function of the knobs: the only state is a
    local splitmix64 PRNG seeded from [knobs.seed], consumed in a fixed
    textual order, so the emitted bytes cannot depend on the machine,
    the OCaml version's [Random] implementation, or hashtable iteration
    order. Keep it that way — the seed-reproducibility contract
    (docs/CORPUS.md) is load-bearing for the corpus bench, whose corpora
    exist only as seed lists. *)

type knobs = {
  seed : int;
  size : int;
  funcs : int;
  depth : int;
  fnptr_density : int;
  recursion : int;
  structs : int;
  globals : int;
}

let default =
  {
    seed = 1;
    size = 10_000;
    funcs = 0;
    depth = 5;
    fnptr_density = 15;
    recursion = 10;
    structs = 30;
    globals = 30;
  }

exception Invalid of string

let validate k =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let pct name v =
    if v < 0 || v > 100 then Some (Printf.sprintf "%s must be in 0..100 (got %d)" name v)
    else None
  in
  if k.seed < 0 then err "seed must be non-negative (got %d)" k.seed
  else if k.size < 50 || k.size > 1_000_000 then
    err "size must be in 50..1000000 lines (got %d)" k.size
  else if k.funcs < 0 || k.funcs > 100_000 then
    err "funcs must be in 0..100000 (got %d)" k.funcs
  else if k.funcs > 0 && k.funcs < k.depth then
    err "funcs (%d) must be at least depth (%d) so every layer has a function" k.funcs
      k.depth
  else if k.depth < 1 || k.depth > 32 then err "depth must be in 1..32 (got %d)" k.depth
  else
    match
      List.find_map
        (fun (n, v) -> pct n v)
        [
          ("fnptr-density", k.fnptr_density);
          ("recursion", k.recursion);
          ("structs", k.structs);
          ("globals", k.globals);
        ]
    with
    | Some m -> Error m
    | None -> Ok ()

(* ------------------------------------------------------------------ *)
(* splitmix64 — self-contained so determinism never depends on the    *)
(* stdlib Random algorithm (which changed in OCaml 5).                *)
(* ------------------------------------------------------------------ *)

type rng = { mutable st : int64 }

let mk_rng seed = { st = Int64.logxor (Int64.of_int seed) 0x5DEECE66DL }

let next r =
  r.st <- Int64.add r.st 0x9E3779B97F4A7C15L;
  let z = r.st in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** Uniform-enough draw in [0, n); 0 for non-positive n. *)
let rand r n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.shift_right_logical (next r) 1) (Int64.of_int n))

let chance r pct = rand r 100 < pct

(* ------------------------------------------------------------------ *)
(* Shape plan: everything decided before a single line is rendered.   *)
(* ------------------------------------------------------------------ *)

(** Functions per layer for [n_funcs] total: layer 0 (the leaves) gets
    the largest share, the top layer the smallest, every layer at least
    one — weight [depth - l] for layer [l]. *)
let layer_sizes ~depth n_funcs =
  let weights = Array.init depth (fun l -> depth - l) in
  let total_w = Array.fold_left ( + ) 0 weights in
  let sizes = Array.map (fun w -> max 1 (n_funcs * w / total_w)) weights in
  (* distribute any remainder to the leaves so totals stay close *)
  let given = Array.fold_left ( + ) 0 sizes in
  if given < n_funcs then sizes.(0) <- sizes.(0) + (n_funcs - given);
  sizes

let fname layer i = Printf.sprintf "f%d_%d" layer i

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

(** One full program for an explicit function count. Returns the text;
    [program] wraps this in the size-floor loop. *)
let render k n_funcs =
  let rng = mk_rng k.seed in
  let buf = Buffer.create (k.size * 40) in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  let sizes = layer_sizes ~depth:k.depth n_funcs in
  let depth = k.depth in
  (* global pools, scaled with the function count *)
  let n_gv = max 4 (n_funcs / 8) in
  let n_gp = max 4 (n_funcs / 8) in
  let n_ga = max 2 (n_funcs / 16) in
  let n_gn = max 2 (n_funcs / 16) in
  let use_tables = k.fnptr_density > 0 && depth >= 2 in
  let table_size l = if use_tables then min 6 sizes.(l - 1) else 0 in
  (* mutual-recursion pairs per layer: (i, i+1) within the same layer *)
  let mutual = Array.make depth [] in
  for l = 0 to depth - 1 do
    let pairs = ref [] in
    let i = ref 0 in
    while !i + 1 < sizes.(l) do
      if chance rng (k.recursion / 2) then pairs := (!i, !i + 1) :: !pairs;
      i := !i + 2
    done;
    mutual.(l) <- List.rev !pairs
  done;
  let in_mutual l i =
    List.exists (fun (a, b) -> a = i || b = i) mutual.(l)
  in
  let partner l i =
    List.find_map (fun (a, b) -> if a = i then Some b else if b = i then Some a else None)
      mutual.(l)
  in
  (* header: the knobs are part of the output, so two distinct knob
     vectors can never collide on identical bytes *)
  line
    "/* generated by ptan gen (format 1): seed=%d size=%d funcs=%d depth=%d \
     fnptr-density=%d recursion=%d structs=%d globals=%d */"
    k.seed k.size k.funcs k.depth k.fnptr_density k.recursion k.structs k.globals;
  line "";
  line "struct gnode {";
  line "    int val;";
  line "    int *ptr;";
  line "    struct gnode *next;";
  line "};";
  line "";
  if use_tables then begin
    line "typedef int (*genfn)(int, int *);";
    line ""
  end;
  for i = 0 to n_gv - 1 do line "int gv%d;" i done;
  for i = 0 to n_gp - 1 do line "int *gp%d;" i done;
  for i = 0 to n_ga - 1 do line "int ga%d[16];" i done;
  for i = 0 to n_gn - 1 do line "struct gnode gn%d;" i done;
  if use_tables then
    for l = 1 to depth - 1 do line "genfn gt%d[%d];" l (table_size l) done;
  line "";
  (* prototypes: every function up front, so call order and mutual
     recursion never constrain emission order *)
  for l = 0 to depth - 1 do
    for i = 0 to sizes.(l) - 1 do line "int %s(int n, int *p);" (fname l i) done
  done;
  line "";
  (* expression helpers, all rng-driven *)
  let int_target () = Printf.sprintf "gv%d" (rand rng n_gv) in
  let ptr_expr ~lp =
    (* something of type int*: a global pointer-to or a local *)
    if chance rng k.globals then
      if chance rng 50 then Printf.sprintf "&gv%d" (rand rng n_gv)
      else Printf.sprintf "&ga%d[%d]" (rand rng n_ga) (rand rng 16)
    else if chance rng 50 then lp
    else "p"
  in
  (* round-robin coverage counters: the first call edge out of each
     layer walks the layer below in order, so every function is
     reachable from main whatever the random draws do *)
  let next_callee = Array.make depth 0 in
  let callee l =
    let below = sizes.(l - 1) in
    let i = next_callee.(l) in
    next_callee.(l) <- (i + 1) mod below;
    fname (l - 1) i
  in
  let emit_func l i =
    let name = fname l i in
    let with_struct = chance rng k.structs in
    line "int %s(int n, int *p) {" name;
    line "    int r;";
    line "    int t;";
    line "    int lv;";
    line "    int *lp;";
    if with_struct then begin
      line "    struct gnode nd;";
      line "    struct gnode *np;"
    end;
    if use_tables && l >= 1 then line "    genfn fp;";
    line "    r = n;";
    line "    lv = n + %d;" (rand rng 64);
    line "    lp = %s;"
      (if chance rng k.globals then Printf.sprintf "&gv%d" (rand rng n_gv) else "&lv");
    (* a few units of pointer churn *)
    let churn = 2 + rand rng 3 in
    for _ = 1 to churn do
      match rand rng 6 with
      | 0 -> line "    gp%d = %s;" (rand rng n_gp) (ptr_expr ~lp:"lp")
      | 1 -> line "    *lp = r + %d;" (rand rng 16)
      | 2 -> line "    lp = %s;" (ptr_expr ~lp:"lp")
      | 3 -> line "    t = *lp + *p;"
      | 4 -> line "    *p = r - %d;" (rand rng 16)
      | _ ->
          line "    if (n > %d) {" (rand rng 8);
          line "        %s = t + 1;" (int_target ());
          line "    } else {";
          line "        %s = t - 1;" (int_target ());
          line "    }"
    done;
    if with_struct then begin
      line "    np = %s;"
        (if chance rng k.globals then Printf.sprintf "&gn%d" (rand rng n_gn) else "&nd");
      line "    np->val = r;";
      line "    np->ptr = %s;" (ptr_expr ~lp:"lp");
      if chance rng 50 then begin
        line "    np->next = (struct gnode *) malloc(sizeof(struct gnode));";
        line "    np = np->next;";
        line "    np->ptr = lp;"
      end
      else line "    np->next = &gn%d;" (rand rng n_gn);
      line "    for (t = 0; t < 16; t++) {";
      line "        ga%d[t] = r + t;" (rand rng n_ga);
      line "    }";
      line "    r = r + np->val + ga%d[%d];" (rand rng n_ga) (rand rng 16)
    end;
    (* the call fan-out into the layer below *)
    if l >= 1 then begin
      let ncalls = 2 + rand rng 2 in
      for c = 1 to ncalls do
        let indirect = use_tables && chance rng k.fnptr_density in
        if indirect then begin
          line "    fp = gt%d[n %% %d];" l (table_size l);
          line "    r = r + fp(n - 1, %s);" (ptr_expr ~lp:"lp")
        end
        else begin
          (* the first edge is the coverage edge; the rest are random *)
          let target =
            if c = 1 then callee l else fname (l - 1) (rand rng sizes.(l - 1))
          in
          line "    r = r + %s(n - 1, %s);" target (ptr_expr ~lp:"lp")
        end
      done
    end;
    (* recursion: guarded self call, and the planned mutual pairs *)
    if chance rng k.recursion then line "    if (n > 0) { r = r + %s(n - 1, p); }" name;
    if in_mutual l i then
      (match partner l i with
      | Some j -> line "    if (n > 1) { r = r + %s(n - 2, p); }" (fname l j)
      | None -> ());
    line "    return r;";
    line "}";
    line ""
  in
  for l = 0 to depth - 1 do
    for i = 0 to sizes.(l) - 1 do emit_func l i done
  done;
  (* table initializers, livc-style: one function per table, filled with
     deterministically drawn members of the layer below *)
  if use_tables then
    for l = 1 to depth - 1 do
      line "void init_gt%d(void) {" l;
      for j = 0 to table_size l - 1 do
        line "    gt%d[%d] = %s;" l j (fname (l - 1) (rand rng sizes.(l - 1)))
      done;
      line "}";
      line ""
    done;
  line "int main() {";
  line "    int r;";
  line "    int x;";
  line "    int *q;";
  line "    x = 0;";
  line "    q = &x;";
  line "    r = 0;";
  if use_tables then
    for l = 1 to depth - 1 do line "    init_gt%d();" l done;
  for i = 0 to sizes.(depth - 1) - 1 do
    line "    r = r + %s(%d, q);" (fname (depth - 1) i) (4 + rand rng 8)
  done;
  line "    return r;";
  line "}";
  Buffer.contents buf

let count_lines s =
  let n = ref 0 in
  String.iter (fun c -> if c = '\n' then incr n) s;
  !n

(** An explicit [funcs] is used as given; otherwise grow the function
    count (deterministically — each attempt restarts the PRNG from the
    seed) until the rendered text reaches the [size] line floor. *)
let program k =
  (match validate k with Ok () -> () | Error m -> raise (Invalid m));
  if k.funcs > 0 then render k k.funcs
  else begin
    let n = ref (max (3 * k.depth) (k.size / 30)) in
    let out = ref (render k !n) in
    let rounds = ref 0 in
    while count_lines !out < k.size && !rounds < 10 do
      incr rounds;
      let lines = max 1 (count_lines !out) in
      n := max (!n + k.depth) ((!n * k.size / lines) + k.depth);
      out := render k !n
    done;
    !out
  end

let line_count k = count_lines (program k)
