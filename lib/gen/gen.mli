(** Deterministic big-program generator (the scale corpus).

    [program knobs] renders a well-formed program in the analyzed C
    subset — layered call DAG, function-pointer tables in the style of
    the [livc] benchmark, optional recursion cycles, struct/array/heap
    traffic — as a single string. The output is a pure function of the
    knobs: same knobs (including [seed]) produce byte-identical text on
    any machine, any run. Corpora are therefore reproducible from a
    seed list instead of being checked in; see docs/CORPUS.md for the
    grammar, the invariants and the reproducibility contract. *)

type knobs = {
  seed : int;  (** PRNG seed; the only source of variation between programs of equal shape *)
  size : int;
      (** target line count; the output has at least this many lines
          (typically within ~15% above it) *)
  funcs : int;
      (** function count, [0] = derived from [size]; when non-zero the
          size floor is waived and the count is used as given *)
  depth : int;  (** call-DAG layers; the maximum direct-call depth below [main] *)
  fnptr_density : int;
      (** percent of call sites that go through a function pointer
          (table load + call through a scalar local, as in livc) *)
  recursion : int;
      (** percent of functions given a guarded self call; half that rate
          additionally forms mutual-recursion pairs within a layer *)
  structs : int;
      (** percent of function bodies doing struct/heap/array work
          (malloc'd list nodes, field stores, array walks) *)
  globals : int;
      (** percent of pointer traffic aimed at globals rather than
          function locals *)
}

(** The defaults every [ptan gen] flag starts from (documented knob by
    knob in docs/CORPUS.md): seed 1, size 10_000, funcs 0 (derived),
    depth 5, fnptr_density 15, recursion 10, structs 30, globals 30 —
    tuned so the default 10k-line program's exhaustive analysis is
    expensive (tens of seconds) but terminates. *)
val default : knobs

(** [validate k] is [Error reason] when a knob is out of range (size
    below 50 or above 1_000_000, a percentage outside 0–100, depth
    outside 1–32, negative seed or funcs). [program] refuses the same
    knobs by raising {!Invalid}. *)
val validate : knobs -> (unit, string) result

exception Invalid of string

(** The generated program text. Raises {!Invalid} on knobs that
    [validate] rejects. Deterministic: byte-identical for equal knobs. *)
val program : knobs -> string

(** Number of lines [program] would emit ([program] is a pure function,
    so this just counts). *)
val line_count : knobs -> int
