(** L-location and R-location sets (paper §3.2, Table 1).

    Computed compositionally over the selector path of a SIMPLE variable
    reference, which yields every row of Table 1 as a special case and
    extends uniformly to mixed paths such as "a[i].f". *)

module Ir = Simple_ir.Ir

(** A set of abstract locations, each with a certainty: definite (the
    reference denotes exactly this location on every path) or
    possible. *)
type locset = Pts.cert Loc.Map.t

val empty : locset

(** Add, weakening on conflict. *)
val add_loc : Loc.t -> Pts.cert -> locset -> locset

val of_list : (Loc.t * Pts.cert) list -> locset
val to_list : locset -> (Loc.t * Pts.cert) list
val union : locset -> locset -> locset
val map_cert : (Pts.cert -> Pts.cert) -> locset -> locset

(** Demote everything to possible. *)
val weaken : locset -> locset

(** L-location set of a reference (Table 1, L-loc column): the locations
    it may denote as an assignment target. Dereferences of NULL and of
    function values are dropped (the paper's non-NULL assumption). *)
val lvals : Tenv.t -> Ir.func -> Pts.t -> Ir.vref -> locset

(** R-location set of a reference (Table 1, R-loc column): one more
    dereference than the L-locations; a plain function name evaluates to
    its function location. *)
val rvals_ref : Tenv.t -> Ir.func -> Pts.t -> Ir.vref -> locset

(** R-location set of a right-hand side: [&ref] yields the L-locations
    of [ref]; malloc yields the heap; pointer arithmetic shifts array
    targets between head and tail. *)
val rvals_rhs : Tenv.t -> Ir.func -> Pts.t -> Ir.rhs -> locset

val rvals_operand : Tenv.t -> Ir.func -> Pts.t -> Ir.operand -> locset

val pp : Format.formatter -> locset -> unit
