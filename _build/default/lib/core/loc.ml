(** Abstract stack locations (paper §3.1).

    Every real stack location that is the source or target of a points-to
    relationship is represented by exactly one named abstract location
    (Property 3.1); an abstract location may represent one or more real
    locations (Property 3.2). The constructors:

    - [Var] — a named local, formal parameter or global variable;
    - [Fld] — a structure field of another location (nested);
    - [Head]/[Tail] — the two abstract locations of an array: element 0
      and elements 1..n (paper §3.2), composable for nested arrays;
    - [Sym] — a symbolic name for an invisible variable: [Sym l] is the
      location reachable by dereferencing [l] when the real target is not
      in scope (printed "1_x", "2_x", ... as in §4.1);
    - [Heap] — the single abstract location for all heap storage;
    - [Null] — the NULL target (pointer locals are initialized to point
      definitely to NULL; NULL pairs are excluded from statistics);
    - [Str] — string-literal storage;
    - [Fun] — a function, the target of function pointers (§5);
    - [Ret] — the return-value pseudo-location of a function. *)

type var_kind =
  | Kglobal
  | Klocal
  | Kparam

type t =
  | Var of string * var_kind
  | Fld of t * string
  | Head of t
  | Tail of t
  | Sym of t
  | Heap
  | Site of int
      (** a heap allocation site (statement id), when the analysis runs
          with [heap_by_site] — the refinement of the single [Heap]
          location used by the companion heap analyses the paper defers
          to [Ghiya 93] *)
  | Null
  | Str
  | Fun of string
  | Ret of string

let compare : t -> t -> int = Stdlib.compare
let equal a b = compare a b = 0

(** The base variable (or special location) a location is built from. *)
let rec root = function
  | Fld (b, _) | Head b | Tail b | Sym b -> root b
  | (Var _ | Heap | Site _ | Null | Str | Fun _ | Ret _) as l -> l

(** Number of [Sym] constructors on the path: the "level of indirection"
    of a symbolic name (the k of "k_x"). *)
let rec sym_depth = function
  | Sym b -> 1 + sym_depth b
  | Fld (b, _) | Head b | Tail b -> sym_depth b
  | Var _ | Heap | Site _ | Null | Str | Fun _ | Ret _ -> 0

(** Is this location visible inside every procedure (globals, heap, the
    special locations)? Locations rooted at locals, parameters, return
    slots or symbolic names are procedure-specific. *)
let is_global_visible l =
  match root l with
  | Var (_, Kglobal) | Heap | Site _ | Null | Str | Fun _ -> true
  | Var (_, (Klocal | Kparam)) | Ret _ -> false
  | Fld _ | Head _ | Tail _ | Sym _ -> assert false

(** Does the location represent exactly one real stack location (given
    that its symbolic names represent single invisible variables — the
    multi-representation case is handled by the map/unmap demotions)?
    Non-singular locations receive only weak updates and their generated
    relationships are demoted to possible. *)
let rec singular = function
  | Var _ | Null | Fun _ | Ret _ -> true
  | Fld (b, _) | Head b -> singular b
  | Sym b -> singular b
  | Tail _ | Heap | Site _ | Str -> false

(** Table 4 categorization of the root: local / global / formal /
    symbolic. [None] for special locations (heap, null, functions). *)
let category l =
  let rec has_sym = function
    | Sym _ -> true
    | Fld (b, _) | Head b | Tail b -> has_sym b
    | Var _ | Heap | Site _ | Null | Str | Fun _ | Ret _ -> false
  in
  if has_sym l then Some `Sy
  else
    match root l with
    | Var (_, Kglobal) -> Some `Gl
    | Var (_, Klocal) -> Some `Lo
    | Var (_, Kparam) -> Some `Fp
    | Ret _ -> Some `Lo
    | Heap | Site _ | Null | Str | Fun _ -> None
    | Fld _ | Head _ | Tail _ | Sym _ -> None

let is_heap l = match root l with Heap | Site _ -> true | _ -> false

let is_null = function Null -> true | _ -> false

let is_fun = function Fun _ -> true | _ -> false

(** On the stack for the purpose of the Table 3/5 stack/heap split:
    everything rooted at a named variable or symbolic name. *)
let is_stack l =
  match root l with
  | Var _ | Ret _ -> true
  | Heap | Site _ | Null | Str | Fun _ -> false
  | Fld _ | Head _ | Tail _ | Sym _ -> false

let rec pp ppf = function
  | Var (n, _) -> Fmt.string ppf n
  | Fld (b, f) -> Fmt.pf ppf "%a.%s" pp b f
  | Head b -> Fmt.pf ppf "%a_head" pp b
  | Tail b -> Fmt.pf ppf "%a_tail" pp b
  | Sym b ->
      (* collapse nested symbolic names: Sym (Sym (Var x)) prints 2_x *)
      let rec count k = function Sym b -> count (k + 1) b | l -> (k, l) in
      let k, inner = count 1 b in
      Fmt.pf ppf "%d_%a" k pp inner
  | Heap -> Fmt.string ppf "heap"
  | Site i -> Fmt.pf ppf "heap@%d" i
  | Null -> Fmt.string ppf "NULL"
  | Str -> Fmt.string ppf "str"
  | Fun f -> Fmt.pf ppf "fn:%s" f
  | Ret f -> Fmt.pf ppf "ret:%s" f

let to_string l = Fmt.str "%a" pp l

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Stdlib.Set.Make (Ord)
module Map = Stdlib.Map.Make (Ord)
