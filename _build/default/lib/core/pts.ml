(** Points-to sets: finite maps from (source, target) location pairs to a
    certainty — definite or possible (paper Definitions 3.1/3.2).

    The representation is a two-level map [source -> target -> cert] so
    that kills (removing all relationships of a source) and target
    lookups are cheap.

    The lattice ordering used for the interprocedural fixed point
    (Figure 4's [isSubsetOf] and [Merge]) is: [s1] is covered by [s2]
    iff every pair of [s1] occurs in [s2] (with any certainty) and every
    definite pair of [s2] occurs definitely in [s1]. [merge] is the
    least upper bound: union of the pairs, definite only when definite
    on both sides. *)

type cert = D | P

let cert_and a b = match (a, b) with D, D -> D | _ -> P

let cert_to_string = function D -> "D" | P -> "P"

module LM = Loc.Map

type t = cert LM.t LM.t

let empty : t = LM.empty

let is_empty (s : t) = LM.is_empty s

(** Add a pair, overriding any existing certainty (used for gen sets:
    the newly generated relationship replaces the old one). *)
let add src tgt cert (s : t) : t =
  LM.update src
    (function
      | None -> Some (LM.singleton tgt cert)
      | Some m -> Some (LM.add tgt cert m))
    s

(** Add a pair, weakening: if present as definite and added as possible
    (or vice versa), the result is possible. Used when accumulating
    independent facts. *)
let add_weak src tgt cert (s : t) : t =
  LM.update src
    (function
      | None -> Some (LM.singleton tgt cert)
      | Some m ->
          Some
            (LM.update tgt
               (function None -> Some cert | Some c -> Some (cert_and c cert))
               m))
    s

let find src tgt (s : t) : cert option =
  match LM.find_opt src s with None -> None | Some m -> LM.find_opt tgt m

let mem src tgt s = Option.is_some (find src tgt s)

(** All targets of [src], with certainties. *)
let targets src (s : t) : (Loc.t * cert) list =
  match LM.find_opt src s with
  | None -> []
  | Some m -> LM.fold (fun tgt c acc -> (tgt, c) :: acc) m []

(** Remove every relationship whose source is [src]. *)
let kill_src src (s : t) : t = LM.remove src s

(** Demote every relationship of [src] from definite to possible. *)
let weaken_src src (s : t) : t =
  LM.update src (Option.map (LM.map (fun _ -> P))) s

let fold f (s : t) acc =
  LM.fold (fun src m acc -> LM.fold (fun tgt c acc -> f src tgt c acc) m acc) s acc

let iter f (s : t) = LM.iter (fun src m -> LM.iter (fun tgt c -> f src tgt c) m) s

let exists f (s : t) = LM.exists (fun src m -> LM.exists (fun tgt c -> f src tgt c) m) s

let filter f (s : t) : t =
  LM.filter_map
    (fun src m ->
      let m' = LM.filter (fun tgt c -> f src tgt c) m in
      if LM.is_empty m' then None else Some m')
    s

let cardinal (s : t) = LM.fold (fun _ m n -> n + LM.cardinal m) s 0

let to_list (s : t) = List.rev (fold (fun a b c acc -> (a, b, c) :: acc) s [])

let of_list l = List.fold_left (fun s (a, b, c) -> add_weak a b c s) empty l

let equal (a : t) (b : t) = LM.equal (LM.equal (fun (x : cert) y -> x = y)) a b

(** Least upper bound: union of pairs; a pair is definite only when
    definite in both operands (a definite pair present on only one side
    becomes possible, since the other side's execution paths do not
    establish it). *)
let merge (a : t) (b : t) : t =
  LM.merge
    (fun _src ma mb ->
      match (ma, mb) with
      | None, None -> None
      | Some m, None | None, Some m -> Some (LM.map (fun _ -> P) m)
      | Some ma, Some mb ->
          Some
            (LM.merge
               (fun _tgt ca cb ->
                 match (ca, cb) with
                 | None, None -> None
                 | Some _, None | None, Some _ -> Some P
                 | Some ca, Some cb -> Some (cert_and ca cb))
               ma mb))
    a b

(** [covered_by s1 s2]: is [s2] a safe generalization of [s1]?
    Requires (1) every pair of [s1] to be present in [s2], and (2) every
    definite pair of [s2] to be definite in [s1]. *)
let covered_by (s1 : t) (s2 : t) : bool =
  (not (exists (fun src tgt _ -> not (mem src tgt s2)) s1))
  && not (exists (fun src tgt c -> c = D && find src tgt s1 <> Some D) s2)

(** Union where pairs of [over] override pairs of [base] (Figure 1's
    [(changed_input - kill_set) ∪ gen_set]). *)
let union_override (base : t) (over : t) : t =
  fold (fun src tgt c acc -> add src tgt c acc) over base

(** Every location mentioned (as source or target). *)
let all_locs (s : t) : Loc.Set.t =
  fold (fun src tgt _ acc -> Loc.Set.add src (Loc.Set.add tgt acc)) s Loc.Set.empty

let pp ppf (s : t) =
  let pairs = to_list s in
  Fmt.pf ppf "{%a}"
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (a, b, c) ->
         Fmt.pf ppf "(%a,%a,%s)" Loc.pp a Loc.pp b (cert_to_string c)))
    pairs

let to_string s = Fmt.str "%a" pp s

(* ------------------------------------------------------------------ *)
(* Analysis states: Bottom or a reached set                           *)
(* ------------------------------------------------------------------ *)

(** [None] is Figure 4's Bottom: unreachable / not yet computed. It is
    the identity of [merge_state] — merging with Bottom must not demote
    definite pairs. *)
type state = t option

let bot : state = None

let merge_state (a : state) (b : state) : state =
  match (a, b) with
  | None, s | s, None -> s
  | Some a, Some b -> Some (merge a b)

let state_equal (a : state) (b : state) =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> equal a b
  | None, Some _ | Some _, None -> false

let state_covered_by (a : state) (b : state) =
  match (a, b) with
  | None, _ -> true
  | Some _, None -> false
  | Some a, Some b -> covered_by a b

let pp_state ppf = function
  | None -> Fmt.string ppf "<bottom>"
  | Some s -> pp ppf s
