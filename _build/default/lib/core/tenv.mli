(** Typing environment: types and kinds of abstract locations and SIMPLE
    references. Shared by the location-set rules, the map/unmap machinery
    and the statistics. *)

open Cfront
module Ir = Simple_ir.Ir

type t = {
  prog : Ir.program;
  opts : Options.t;
  globals : (string, Ctype.t) Hashtbl.t;
  funcs : (string, Ir.func) Hashtbl.t;
  externals : (string, Ctype.func_sig) Hashtbl.t;
}

val make : ?opts:Options.t -> Ir.program -> t

val layouts : t -> Ctype.layouts
val find_func : t -> string -> Ir.func option
val is_defined_func : t -> string -> bool
val is_func_name : t -> string -> bool
val func_ret_type : t -> string -> Ctype.t option

(** Kind and type of a name as seen from a function (parameter, local or
    global). *)
val var_info : t -> Ir.func -> string -> (Loc.var_kind * Ctype.t) option

(** The abstract location for a base variable; [None] when the name
    denotes a function. *)
val base_loc : t -> Ir.func -> string -> Loc.t option

(** Type of an abstract location, when derivable ([Heap], [Null], [Str]
    are untyped). *)
val loc_type : t -> Ir.func -> Loc.t -> Ctype.t option

(** Of union type (collapsed to one location by the analysis)? *)
val is_union_loc : t -> Ir.func -> Loc.t -> bool

val is_array_loc : t -> Ir.func -> Loc.t -> bool

(** Type of the cell a SIMPLE reference denotes. *)
val vref_type : t -> Ir.func -> Ir.vref -> Ctype.t option

(** Must the analysis process an assignment through this reference
    (pointer cells, pointer-carrying unions)? *)
val is_pointer_assignment : t -> Ir.func -> Ir.vref -> bool

(** Pointer-carrying cells contained in a location of the given type:
    itself for pointers, head/tail for arrays, one per pointer-carrying
    struct field, the collapsed location for unions. *)
val pointer_cells : t -> Loc.t -> Ctype.t -> (Loc.t * Ctype.t) list

(** Pointee type chased through a cell; unions use their first
    pointer-carrying field. *)
val cell_pointee : t -> Ctype.t -> Ctype.t option
