lib/core/pts.mli: Format Loc
