lib/core/stats.mli: Analysis Loc Pts Simple_ir
