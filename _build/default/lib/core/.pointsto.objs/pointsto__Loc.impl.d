lib/core/loc.ml: Fmt Stdlib
