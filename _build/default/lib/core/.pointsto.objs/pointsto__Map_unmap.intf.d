lib/core/map_unmap.mli: Cfront Loc Lval Pts Simple_ir Tenv
