lib/core/invocation_graph.mli: Format Loc Pts Simple_ir Tenv
