lib/core/tenv.ml: Cfront Ctype Hashtbl List Loc Option Options Simple_ir
