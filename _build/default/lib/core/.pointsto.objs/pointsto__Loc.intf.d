lib/core/loc.mli: Format Stdlib
