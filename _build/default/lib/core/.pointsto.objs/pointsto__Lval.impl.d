lib/core/lval.ml: Fmt List Loc Options Pts Simple_ir Tenv
