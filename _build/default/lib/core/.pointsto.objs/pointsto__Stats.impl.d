lib/core/stats.ml: Analysis Hashtbl Invocation_graph List Loc Pts Simple_ir Tenv
