lib/core/analysis.ml: Cfront Ctype Engine Hashtbl Invocation_graph List Loc Map_unmap Option Options Pts Simple_ir Tenv
