lib/core/analysis.mli: Hashtbl Invocation_graph Options Pts Simple_ir Tenv
