lib/core/invocation_graph.ml: Fmt List Loc Pts Simple_ir String Tenv
