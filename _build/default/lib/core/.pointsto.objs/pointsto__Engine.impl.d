lib/core/engine.ml: Cfront Ctype Fmt Hashtbl Invocation_graph List Loc Lval Map_unmap Options Pts Simple_ir Tenv
