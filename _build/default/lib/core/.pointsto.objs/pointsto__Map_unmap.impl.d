lib/core/map_unmap.ml: Cfront Ctype Hashtbl List Loc Lval Option Options Pts Simple_ir Tenv
