lib/core/pts.ml: Fmt List Loc Option
