lib/core/tenv.mli: Cfront Ctype Hashtbl Loc Options Simple_ir
