lib/core/options.ml:
