lib/core/lval.mli: Format Loc Pts Simple_ir Tenv
