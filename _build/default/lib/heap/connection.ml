(** Connection analysis over heap-directed pointers — the companion heap
    analysis the paper defers to ([Ghiya 93], paper §1, §7.1 and §8).

    The points-to analysis deliberately abstracts all heap storage with a
    single location; the paper's companion work refines this with "a
    series of practical approximations of the relationships between
    directly-accessible heap-allocated nodes ... from simple connection
    matrices that approximate the connectivity of nodes, to complete path
    matrices" (§8). This module implements the connection-matrix level:

    - heap storage is named by {e allocation site} (run the points-to
      analysis with {!Pointsto.Options.heap_by_site});
    - two heap-directed pointers are {e connected} at a program point if
      their points-to sets share an allocation site, or if some site
      reachable from one can reach a site of the other through heap
      pointers (heap-to-heap points-to pairs give inter-site edges);
    - pointers that are not connected address provably disjoint heap data
      structures — the property parallelizing transformations need
      ("identify disjoint accesses to heap locations", §6).

    Site naming is context-insensitive (one location per textual
    allocation), so two lists built by the same constructor function are
    conservatively connected; the paper's full path-matrix analyses
    refine this further. *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts
module Analysis = Pointsto.Analysis

module IntSet = Set.Make (Int)

(** The options a result must have been produced with. *)
let options = { Pointsto.Options.default with Pointsto.Options.heap_by_site = true }

(** All allocation sites appearing anywhere in the analysis result. *)
let all_sites (res : Analysis.result) : int list =
  let sites = ref IntSet.empty in
  Hashtbl.iter
    (fun _ s ->
      Pts.iter
        (fun src tgt _ ->
          (match Loc.root src with Loc.Site i -> sites := IntSet.add i !sites | _ -> ());
          match Loc.root tgt with Loc.Site i -> sites := IntSet.add i !sites | _ -> ())
        s)
    res.Analysis.stmt_pts;
  IntSet.elements !sites

(** Allocation sites a location points to directly under [s]. *)
let direct_sites (s : Pts.t) (l : Loc.t) : IntSet.t =
  List.fold_left
    (fun acc (t, _) ->
      match Loc.root t with Loc.Site i -> IntSet.add i acc | _ -> acc)
    IntSet.empty (Pts.targets l s)

(** Inter-site reachability under [s]: starting from [sites], add every
    site reachable through heap-to-heap points-to pairs (a list node
    pointing to the next cell allocated at another site connects the two
    sites). *)
let reachable_sites (s : Pts.t) (sites : IntSet.t) : IntSet.t =
  let edges =
    Pts.fold
      (fun src tgt _ acc ->
        match (Loc.root src, Loc.root tgt) with
        | Loc.Site a, Loc.Site b when a <> b -> (a, b) :: acc
        | _ -> acc)
      s []
  in
  let rec fix seen =
    let grown =
      List.fold_left
        (fun seen (a, b) ->
          let seen = if IntSet.mem a seen then IntSet.add b seen else seen in
          if IntSet.mem b seen then IntSet.add a seen else seen)
        seen edges
    in
    if IntSet.equal grown seen then seen else fix grown
  in
  fix sites

(** The heap region (set of allocation sites, closed under heap
    reachability) addressed by location [l] under [s]. *)
let region (s : Pts.t) (l : Loc.t) : IntSet.t = reachable_sites s (direct_sites s l)

(** Are the heap structures addressed by [a] and [b] possibly the same /
    overlapping at this point? False means provably disjoint. *)
let connected (s : Pts.t) (a : Loc.t) (b : Loc.t) : bool =
  not (IntSet.is_empty (IntSet.inter (region s a) (region s b)))

(** The connection matrix over a list of locations: a symmetric boolean
    matrix, [m.(i).(j)] true when locations i and j are connected. *)
let matrix (s : Pts.t) (locs : Loc.t list) : bool array array =
  let regions = Array.of_list (List.map (region s) locs) in
  let n = Array.length regions in
  Array.init n (fun i ->
      Array.init n (fun j ->
          i = j || not (IntSet.is_empty (IntSet.inter regions.(i) regions.(j)))))

(** Partition heap-directed pointers into groups addressing provably
    disjoint heap structures (union-find by shared region). *)
let partition (s : Pts.t) (locs : Loc.t list) : Loc.t list list =
  let locs = List.filter (fun l -> not (IntSet.is_empty (direct_sites s l))) locs in
  let m = matrix s locs in
  let arr = Array.of_list locs in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if m.(i).(j) then parent.(find i) <- find j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i l ->
      let r = find i in
      Hashtbl.replace groups r (l :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    arr;
  Hashtbl.fold (fun _ g acc -> List.rev g :: acc) groups []
  |> List.sort compare

(** Heap-directed pointer variables of a function at a statement: the
    variables (locals, params, globals) whose targets include a heap
    site. *)
let heap_pointers (res : Analysis.result) (fn : Ir.func) (s : Pts.t) : Loc.t list =
  let tenv = res.Analysis.tenv in
  let candidates =
    List.map (fun (n, _) -> Loc.Var (n, Loc.Kparam)) fn.Ir.fn_params
    @ List.map (fun (n, _) -> Loc.Var (n, Loc.Klocal)) fn.Ir.fn_locals
    @ List.map (fun (n, _) -> Loc.Var (n, Loc.Kglobal)) tenv.Pointsto.Tenv.prog.Ir.globals
  in
  List.filter (fun l -> not (IntSet.is_empty (direct_sites s l))) candidates

(** Summary numbers for reporting: allocation sites, heap-directed
    pointer variables at function exits, and how many unordered pairs of
    them are provably disjoint. *)
type summary = {
  n_sites : int;
  n_heap_ptrs : int;
  n_pairs : int;  (** unordered pairs of heap-directed pointers *)
  n_disjoint : int;  (** of which provably disjoint *)
}

let summarize (res : Analysis.result) : summary =
  let n_sites = List.length (all_sites res) in
  let pairs = ref 0 and disjoint = ref 0 and ptrs = ref 0 in
  List.iter
    (fun fn ->
      (* at each call/return-free summary point we use the merged set of
         the function's last statement; simpler: the union over the
         function's statements *)
      let s =
        Ir.fold_func
          (fun acc st ->
            match Hashtbl.find_opt res.Analysis.stmt_pts st.Ir.s_id with
            | Some x -> Pts.merge acc x
            | None -> acc)
          Pts.empty fn
      in
      let hp = heap_pointers res fn s in
      ptrs := !ptrs + List.length hp;
      let arr = Array.of_list hp in
      let n = Array.length arr in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          incr pairs;
          if not (connected s arr.(i) arr.(j)) then incr disjoint
        done
      done)
    res.Analysis.prog.Ir.funcs;
  { n_sites; n_heap_ptrs = !ptrs; n_pairs = !pairs; n_disjoint = !disjoint }

let pp_matrix ppf (locs, m) =
  let n = Array.length m in
  Fmt.pf ppf "%12s" "";
  List.iter (fun l -> Fmt.pf ppf " %10s" (Loc.to_string l)) locs;
  Fmt.pf ppf "@.";
  List.iteri
    (fun i l ->
      Fmt.pf ppf "%12s" (Loc.to_string l);
      for j = 0 to n - 1 do
        Fmt.pf ppf " %10s" (if m.(i).(j) then "C" else ".")
      done;
      Fmt.pf ppf "@.")
    locs
