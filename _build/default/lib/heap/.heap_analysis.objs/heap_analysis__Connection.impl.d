lib/heap/connection.ml: Array Fmt Hashtbl Int List Option Pointsto Set Simple_ir
