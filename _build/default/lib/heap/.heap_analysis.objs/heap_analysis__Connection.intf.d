lib/heap/connection.mli: Format Pointsto Set Simple_ir
