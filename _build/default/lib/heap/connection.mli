(** Connection analysis over heap-directed pointers — the
    connection-matrix level of the companion heap analyses the paper
    defers to (§8, [Ghiya 93]). Requires a points-to result produced with
    allocation-site naming ({!options}). *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts
module Analysis = Pointsto.Analysis
module IntSet : Set.S with type elt = int

(** The analysis options a result must have been produced with
    ([heap_by_site] enabled). *)
val options : Pointsto.Options.t

(** All allocation sites appearing in the result. *)
val all_sites : Analysis.result -> int list

(** Sites a location points to directly. *)
val direct_sites : Pts.t -> Loc.t -> IntSet.t

(** Close a site set under heap-to-heap reachability. *)
val reachable_sites : Pts.t -> IntSet.t -> IntSet.t

(** The heap region (reachability-closed site set) a location
    addresses. *)
val region : Pts.t -> Loc.t -> IntSet.t

(** Possibly-overlapping heap structures? [false] means provably
    disjoint. *)
val connected : Pts.t -> Loc.t -> Loc.t -> bool

(** Symmetric connection matrix over a list of locations. *)
val matrix : Pts.t -> Loc.t list -> bool array array

(** Group heap-directed pointers into provably disjoint structures. *)
val partition : Pts.t -> Loc.t list -> Loc.t list list

(** Heap-directed pointer variables visible in a function under a
    points-to set. *)
val heap_pointers : Analysis.result -> Ir.func -> Pts.t -> Loc.t list

type summary = {
  n_sites : int;
  n_heap_ptrs : int;
  n_pairs : int;  (** unordered pairs of heap-directed pointers *)
  n_disjoint : int;  (** of which provably disjoint *)
}

val summarize : Analysis.result -> summary

val pp_matrix : Format.formatter -> Loc.t list * bool array array -> unit
