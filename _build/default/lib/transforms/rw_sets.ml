(** Read/write set computation on top of points-to results (paper §6.1:
    "the point-specific points-to information is very useful to compute
    read/write sets such as those used in constructing the ALPHA
    intermediate representation").

    For each basic statement, the set of abstract locations it may/must
    write and may read; per-function summaries aggregate over the body
    (callee effects summarized through the visible locations of the
    caller via the invocation graph's stored information). *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts
module Lval = Pointsto.Lval

type access = {
  may_write : Loc.Set.t;
  must_write : Loc.Set.t;
  may_read : Loc.Set.t;
}

let empty_access =
  { may_write = Loc.Set.empty; must_write = Loc.Set.empty; may_read = Loc.Set.empty }

let union_access a b =
  {
    may_write = Loc.Set.union a.may_write b.may_write;
    must_write = Loc.Set.inter a.must_write b.must_write;
    may_read = Loc.Set.union a.may_read b.may_read;
  }

let locset_to_sets (ls : Lval.locset) : Loc.Set.t * Loc.Set.t =
  Loc.Map.fold
    (fun l c (may, must) ->
      ( Loc.Set.add l may,
        if c = Pts.D && Loc.singular l then Loc.Set.add l must else must ))
    ls
    (Loc.Set.empty, Loc.Set.empty)

let drop_null s = Loc.Set.filter (fun l -> not (Loc.is_null l)) s

(** Read/write sets of one basic statement given the points-to set valid
    there. *)
let stmt_access tenv fn (s : Pts.t) (stmt : Ir.stmt) : access =
  let reads_of_ref r =
    (* reading through a reference reads the base pointer and the target
       cells *)
    let targets = Lval.rvals_ref tenv fn s r in
    let cells = Lval.lvals tenv fn s r in
    let base =
      match Pointsto.Tenv.base_loc tenv fn r.Ir.r_base with
      | Some b when r.Ir.r_deref -> Loc.Set.singleton b
      | _ -> Loc.Set.empty
    in
    Loc.Set.union base
      (Loc.Set.union
         (fst (locset_to_sets cells))
         (fst (locset_to_sets targets)))
  in
  let reads_of_rhs = function
    | Ir.Rref r | Ir.Rarith (r, _) -> reads_of_ref r
    | Ir.Raddr r ->
        if r.Ir.r_deref then
          match Pointsto.Tenv.base_loc tenv fn r.Ir.r_base with
          | Some b -> Loc.Set.singleton b
          | None -> Loc.Set.empty
        else Loc.Set.empty
    | Ir.Rconst _ | Ir.Rnull | Ir.Rstr | Ir.Rmalloc | Ir.Rbinop _ | Ir.Runop _ -> Loc.Set.empty
  in
  let reads_of_operand = function
    | Ir.Oref r -> reads_of_ref r
    | Ir.Oconst _ | Ir.Onull | Ir.Ostr -> Loc.Set.empty
  in
  match stmt.Ir.s_desc with
  | Ir.Sassign (l, rhs) ->
      let lhs = Lval.lvals tenv fn s l in
      let may, must = locset_to_sets lhs in
      {
        may_write = drop_null may;
        must_write = drop_null must;
        may_read = drop_null (reads_of_rhs rhs);
      }
  | Ir.Scall (lhs, callee, args) ->
      let wmay, wmust =
        match lhs with
        | Some l -> locset_to_sets (Lval.lvals tenv fn s l)
        | None -> (Loc.Set.empty, Loc.Set.empty)
      in
      let reads =
        List.fold_left
          (fun acc a -> Loc.Set.union acc (reads_of_operand a))
          Loc.Set.empty args
      in
      let reads =
        match callee with
        | Ir.Cindirect r -> Loc.Set.union reads (reads_of_ref r)
        | Ir.Cdirect _ -> reads
      in
      { may_write = drop_null wmay; must_write = drop_null wmust; may_read = drop_null reads }
  | Ir.Sreturn (Some op) ->
      { empty_access with may_read = drop_null (reads_of_operand op) }
  | Ir.Sif _ | Ir.Sloop _ | Ir.Sswitch _ | Ir.Sbreak | Ir.Scontinue | Ir.Sreturn None ->
      empty_access

(** Per-function summary: union of the statement accesses of its body
    (call effects show up through the unmapped points-to sets of the
    caller's statements, so a transitive closure over the invocation
    graph is not needed for visible locations). *)
let func_summary (res : Pointsto.Analysis.result) (fn : Ir.func) : access =
  let tenv = res.Pointsto.Analysis.tenv in
  Ir.fold_func
    (fun acc stmt ->
      let s = Pointsto.Analysis.pts_at res stmt.Ir.s_id in
      let a = stmt_access tenv fn s stmt in
      {
        may_write = Loc.Set.union acc.may_write a.may_write;
        must_write = Loc.Set.union acc.must_write a.must_write;
        may_read = Loc.Set.union acc.may_read a.may_read;
      })
    empty_access fn

let pp_access ppf a =
  let pp_set ppf s =
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") Loc.pp) (Loc.Set.elements s)
  in
  Fmt.pf ppf "may-write %a; must-write %a; may-read %a" pp_set a.may_write pp_set a.must_write
    pp_set a.may_read
