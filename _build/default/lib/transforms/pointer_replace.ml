(** Pointer replacement: using definite points-to information to replace
    indirect references with direct ones (paper §1 and §6.1).

    Given the statement [x = *q] and the fact that [q] definitely points
    to [y], the reference [*q] can be replaced by [y]. The replacement is
    legal only when the single definite target is a named, visible
    location (not an invisible variable, the heap, or string storage) —
    the paper's 19.39% "Scalar Rep" column counts exactly these.

    [find] reports the opportunities; [apply] rewrites the SIMPLE
    program (the transformation McCAT used to reduce loads/stores in its
    backend [Donawa 94]). *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts

type replacement = {
  rp_stmt : int;
  rp_func : string;
  rp_old : Ir.vref;
  rp_new : Ir.vref;
  rp_target : Loc.t;
}

(** Rebuild a SIMPLE variable reference denoting abstract location [l],
    when one exists (named variables and their field/array paths). *)
let rec vref_of_loc (l : Loc.t) : Ir.vref option =
  match l with
  | Loc.Var (n, _) -> Some (Ir.var_ref n)
  | Loc.Fld (b, f) ->
      Option.map
        (fun r -> { r with Ir.r_path = r.Ir.r_path @ [ Ir.Sfield f ] })
        (vref_of_loc b)
  | Loc.Head b ->
      Option.map
        (fun r -> { r with Ir.r_path = r.Ir.r_path @ [ Ir.Sindex Ir.Izero ] })
        (vref_of_loc b)
  | Loc.Tail _ -> None (* no single source-level name selects the tail *)
  | Loc.Sym _ | Loc.Heap | Loc.Site _ | Loc.Null | Loc.Str | Loc.Fun _ | Loc.Ret _ -> None

(** The replacement for reference [r] under points-to set [s], if its
    dereferenced pointer definitely points to a single nameable
    location. *)
let replacement_for tenv fn (s : Pts.t) (r : Ir.vref) : (Ir.vref * Loc.t) option =
  if not r.Ir.r_deref then None
  else
    match Pointsto.Tenv.base_loc tenv fn r.Ir.r_base with
    | None -> None
    | Some base -> (
        match
          List.filter (fun (t, _) -> not (Loc.is_null t)) (Pts.targets base s)
        with
        | [ (tgt, Pts.D) ] -> (
            match vref_of_loc tgt with
            | Some direct ->
                (* graft the original selector path onto the direct ref *)
                Some ({ direct with Ir.r_path = direct.Ir.r_path @ r.Ir.r_path }, tgt)
            | None -> None)
        | _ -> None)

(** All replacement opportunities in an analyzed program. *)
let find (res : Pointsto.Analysis.result) : replacement list =
  let tenv = res.Pointsto.Analysis.tenv in
  List.concat_map
    (fun fn ->
      List.rev
        (Ir.fold_func
           (fun acc stmt ->
             let s = Pointsto.Analysis.pts_at res stmt.Ir.s_id in
             let consider acc (r : Ir.vref) =
               match replacement_for tenv fn s r with
               | Some (direct, tgt) ->
                   {
                     rp_stmt = stmt.Ir.s_id;
                     rp_func = fn.Ir.fn_name;
                     rp_old = r;
                     rp_new = direct;
                     rp_target = tgt;
                   }
                   :: acc
               | None -> acc
             in
             let of_rhs acc = function
               | Ir.Rref r | Ir.Raddr r | Ir.Rarith (r, _) -> consider acc r
               | Ir.Rconst _ | Ir.Rnull | Ir.Rstr | Ir.Rmalloc | Ir.Rbinop _ | Ir.Runop _ -> acc
             in
             match stmt.Ir.s_desc with
             | Ir.Sassign (l, rhs) -> of_rhs (consider acc l) rhs
             | Ir.Scall (lhs, _, _) -> (
                 match lhs with Some l -> consider acc l | None -> acc)
             | _ -> acc)
           [] fn))
    res.Pointsto.Analysis.prog.Ir.funcs

(** Rewrite the program, applying every found replacement. *)
let apply (res : Pointsto.Analysis.result) : Ir.program * int =
  let reps = find res in
  let by_stmt = Hashtbl.create 16 in
  List.iter (fun rp -> Hashtbl.add by_stmt rp.rp_stmt rp) reps;
  let rewrite_ref sid (r : Ir.vref) =
    match
      List.find_opt (fun rp -> rp.rp_old = r) (Hashtbl.find_all by_stmt sid)
    with
    | Some rp -> rp.rp_new
    | None -> r
  in
  let rewrite_rhs sid = function
    | Ir.Rref r -> Ir.Rref (rewrite_ref sid r)
    | Ir.Raddr r -> Ir.Raddr (rewrite_ref sid r)
    | Ir.Rarith (r, sh) -> Ir.Rarith (rewrite_ref sid r, sh)
    | (Ir.Rconst _ | Ir.Rnull | Ir.Rstr | Ir.Rmalloc | Ir.Rbinop _ | Ir.Runop _) as rhs -> rhs
  in
  let rec rewrite_stmt (s : Ir.stmt) =
    let desc =
      match s.Ir.s_desc with
      | Ir.Sassign (l, rhs) ->
          Ir.Sassign (rewrite_ref s.Ir.s_id l, rewrite_rhs s.Ir.s_id rhs)
      | Ir.Scall (lhs, callee, args) ->
          Ir.Scall (Option.map (rewrite_ref s.Ir.s_id) lhs, callee, args)
      | Ir.Sif (c, t, e) -> Ir.Sif (c, List.map rewrite_stmt t, List.map rewrite_stmt e)
      | Ir.Sloop l ->
          Ir.Sloop
            {
              l with
              Ir.l_cond_stmts = List.map rewrite_stmt l.Ir.l_cond_stmts;
              l_step = List.map rewrite_stmt l.Ir.l_step;
              l_body = List.map rewrite_stmt l.Ir.l_body;
            }
      | Ir.Sswitch (op, gs) ->
          Ir.Sswitch
            (op, List.map (fun g -> { g with Ir.g_body = List.map rewrite_stmt g.Ir.g_body }) gs)
      | (Ir.Sbreak | Ir.Scontinue | Ir.Sreturn _) as d -> d
    in
    { s with Ir.s_desc = desc }
  in
  let prog = res.Pointsto.Analysis.prog in
  let funcs =
    List.map (fun fn -> { fn with Ir.fn_body = List.map rewrite_stmt fn.Ir.fn_body }) prog.Ir.funcs
  in
  ({ prog with Ir.funcs }, List.length reps)

let pp_replacement ppf rp =
  Fmt.pf ppf "s%d (%s): %a  ->  %a   [target %a]" rp.rp_stmt rp.rp_func Simple_ir.Pp.pp_vref
    rp.rp_old Simple_ir.Pp.pp_vref rp.rp_new Loc.pp rp.rp_target
