(** Pointer replacement driven by definite points-to information (paper
    §1 and §6.1): [x = *q] with [q] definitely pointing to a nameable
    location [y] rewrites to [x = y]. *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc

type replacement = {
  rp_stmt : int;
  rp_func : string;
  rp_old : Ir.vref;
  rp_new : Ir.vref;
  rp_target : Loc.t;
}

(** A SIMPLE reference denoting an abstract location, when one exists
    (named variables, field paths, array heads). *)
val vref_of_loc : Loc.t -> Ir.vref option

(** All replacement opportunities of an analyzed program (the paper's
    "Scalar Rep" column counts these). *)
val find : Pointsto.Analysis.result -> replacement list

(** Rewrite the program, applying every replacement; returns the new
    program and the replacement count. *)
val apply : Pointsto.Analysis.result -> Ir.program * int

val pp_replacement : Format.formatter -> replacement -> unit
