lib/transforms/pointer_replace.ml: Fmt Hashtbl List Option Pointsto Simple_ir
