lib/transforms/rw_sets.mli: Format Pointsto Simple_ir
