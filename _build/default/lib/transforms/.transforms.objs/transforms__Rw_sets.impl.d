lib/transforms/rw_sets.ml: Fmt List Pointsto Simple_ir
