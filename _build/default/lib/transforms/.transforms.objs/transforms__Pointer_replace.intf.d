lib/transforms/pointer_replace.mli: Format Pointsto Simple_ir
