(** Read/write sets over points-to results (paper §6.1: the building
    block for the ALPHA representation and dependence testing). *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts

type access = {
  may_write : Loc.Set.t;
  must_write : Loc.Set.t;  (** definite, singular write targets *)
  may_read : Loc.Set.t;
}

val empty_access : access

(** Union of accesses along alternative paths: may-sets union, must-sets
    intersect. *)
val union_access : access -> access -> access

(** Read/write sets of one basic statement under the points-to set valid
    there. *)
val stmt_access : Pointsto.Tenv.t -> Ir.func -> Pts.t -> Ir.stmt -> access

(** Per-function summary over its body. *)
val func_summary : Pointsto.Analysis.result -> Ir.func -> access

val pp_access : Format.formatter -> access -> unit
