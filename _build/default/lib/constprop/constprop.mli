(** Context-sensitive interprocedural constant propagation built on the
    points-to results — the follow-on analysis of paper §6.1: it walks
    the same invocation graph (function pointers already resolved),
    translates integer cells between name spaces with each node's
    deposited map information, and sees through pointer stores via the
    points-to sets. *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc

type value = Vconst of int64 | Vtop

val join_value : value -> value -> value

(** Constant state: integer cells with a known value (absent = unknown). *)
type state = value Loc.Map.t

type result

(** Run over an analyzed program (from its entry function). *)
val run : Pointsto.Analysis.result -> result

(** Known constant value of a location at a statement (merged over
    contexts). *)
val const_at : result -> int -> Loc.t -> int64 option

(** All known constants at a statement. *)
val consts_at : result -> int -> (Loc.t * int64) list

(** A constant-folding opportunity: an operand read with a known value. *)
type fold_site = { fs_stmt : int; fs_func : string; fs_loc : Loc.t; fs_value : int64 }

val fold_sites : result -> fold_site list
