(** Context-sensitive interprocedural constant propagation, built on top
    of the points-to results — the paper's §6.1 claim made executable:

    "The complete invocation graph and mapping information provides a
    convenient basis for implementing other interprocedural analyses such
    as generalized constant propagation [Hendren et al. 93]. ... after
    points-to analysis is completed one does not need to worry about
    function pointers or the correspondence between invisible variables
    and the calling context."

    The analysis walks the same invocation graph the points-to analysis
    built (so indirect calls are already resolved), reuses each node's
    deposited map information to translate integer cells between caller
    and callee name spaces, and uses the points-to sets to see through
    pointer dereferences: a store [*p = 5] with [p] definitely pointing
    to [x] strongly updates [x].

    The value lattice per integer cell is the usual
    top (unknown) / constant / bottom; the state maps locations to
    values, absent meaning unknown. Recursive calls are handled
    conservatively (everything the callee can reach becomes unknown). *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts
module Lval = Pointsto.Lval
module Ig = Pointsto.Invocation_graph
module Analysis = Pointsto.Analysis

type value = Vconst of int64 | Vtop

let join_value a b =
  match (a, b) with Vconst x, Vconst y when Int64.equal x y -> a | _ -> Vtop

(** Constant state: integer-valued cells with a known constant. Absent
    locations are unknown (top). *)
type state = value Loc.Map.t

let lookup (s : state) l = Option.value ~default:Vtop (Loc.Map.find_opt l s)

let set_const (s : state) l v =
  match v with Vtop -> Loc.Map.remove l s | Vconst _ -> Loc.Map.add l v s

let join_state (a : state) (b : state) : state =
  Loc.Map.merge
    (fun _ va vb ->
      match (va, vb) with
      | Some (Vconst x), Some (Vconst y) when Int64.equal x y -> Some (Vconst x)
      | _ -> None)
    a b

let state_equal (a : state) (b : state) =
  Loc.Map.equal (fun x y -> join_value x y <> Vtop || (x = Vtop && y = Vtop)) a b

(* flow through structured statements, mirroring the points-to engine *)
type flow = {
  normal : state option;
  brk : state option;
  cont : state option;
  ret : state option;
}

let flow_of normal = { normal; brk = None; cont = None; ret = None }

let join_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (join_state a b)

let opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> state_equal a b
  | _ -> false

let merge_flow a b =
  {
    normal = join_opt a.normal b.normal;
    brk = join_opt a.brk b.brk;
    cont = join_opt a.cont b.cont;
    ret = join_opt a.ret b.ret;
  }

type ctx = {
  res : Analysis.result;
  (* constants valid at each statement (merged over contexts), for
     queries and the folding transformation *)
  stmt_consts : (int, state) Hashtbl.t;
  (* per invocation-graph node: memoized (input, output, ret value) *)
  memo : (int, state * state * value) Hashtbl.t;
}

let eval_binop op a b =
  match (a, b) with
  | Vconst x, Vconst y -> (
      let bool_ v = Vconst (if v then 1L else 0L) in
      match op with
      | "+" -> Vconst (Int64.add x y)
      | "-" -> Vconst (Int64.sub x y)
      | "*" -> Vconst (Int64.mul x y)
      | "/" -> if Int64.equal y 0L then Vtop else Vconst (Int64.div x y)
      | "%" -> if Int64.equal y 0L then Vtop else Vconst (Int64.rem x y)
      | "<<" -> Vconst (Int64.shift_left x (Int64.to_int y))
      | ">>" -> Vconst (Int64.shift_right x (Int64.to_int y))
      | "&" -> Vconst (Int64.logand x y)
      | "|" -> Vconst (Int64.logor x y)
      | "^" -> Vconst (Int64.logxor x y)
      | "<" -> bool_ (x < y)
      | ">" -> bool_ (x > y)
      | "<=" -> bool_ (x <= y)
      | ">=" -> bool_ (x >= y)
      | "==" -> bool_ (Int64.equal x y)
      | "!=" -> bool_ (not (Int64.equal x y))
      | "&&" -> bool_ ((not (Int64.equal x 0L)) && not (Int64.equal y 0L))
      | "||" -> bool_ ((not (Int64.equal x 0L)) || not (Int64.equal y 0L))
      | _ -> Vtop)
  | _ -> Vtop

let eval_unop op a =
  match a with
  | Vconst x -> (
      match op with
      | "-" -> Vconst (Int64.neg x)
      | "~" -> Vconst (Int64.lognot x)
      | "!" -> Vconst (if Int64.equal x 0L then 1L else 0L)
      | _ -> Vtop)
  | Vtop -> Vtop

(* ------------------------------------------------------------------ *)
(* Reading and writing cells through the points-to results            *)
(* ------------------------------------------------------------------ *)

(** The integer cells a reference denotes, with the points-to set valid
    at the statement (merged over contexts — a safe superset for each
    individual context). *)
let cells_of_ref ctx fn sid (r : Ir.vref) : Lval.locset =
  let pts = Analysis.pts_at ctx.res sid in
  Lval.lvals ctx.res.Analysis.tenv fn pts r

let read_ref ctx fn sid (s : state) (r : Ir.vref) : value =
  let cells = Lval.to_list (cells_of_ref ctx fn sid r) in
  match cells with
  | [] -> Vtop
  | (l0, _) :: rest ->
      List.fold_left (fun acc (l, _) -> join_value acc (lookup s l)) (lookup s l0) rest

let read_operand ctx fn sid (s : state) (op : Ir.operand) : value =
  match op with
  | Ir.Oconst (Some n) -> Vconst n
  | Ir.Oconst None | Ir.Onull | Ir.Ostr -> Vtop
  | Ir.Oref r -> read_ref ctx fn sid s r

(** Write [v] through a reference: strong update on a single definite
    singular cell, weak (joining) otherwise. *)
let write_ref ctx fn sid (s : state) (r : Ir.vref) (v : value) : state =
  match Lval.to_list (cells_of_ref ctx fn sid r) with
  | [ (l, Pts.D) ] when Loc.singular l -> set_const s l v
  | cells ->
      List.fold_left (fun s (l, _) -> set_const s l (join_value (lookup s l) v)) s cells

let record ctx sid (s : state) =
  let merged =
    match Hashtbl.find_opt ctx.stmt_consts sid with
    | None -> s
    | Some old -> join_state old s
  in
  Hashtbl.replace ctx.stmt_consts sid merged

(* ------------------------------------------------------------------ *)
(* Call mapping through the deposited map information                 *)
(* ------------------------------------------------------------------ *)

(** Forward-translate a caller cell into the callee name space using the
    node's deposited map info (globals map to themselves; invisibles to
    their symbolic names). *)
let translate_fwd (info : Ig.map_info) (l : Loc.t) : Loc.t option =
  let rec go l =
    if Loc.is_global_visible l then Some l
    else
      match
        List.find_map
          (fun (sym, reps) ->
            if List.exists (Loc.equal l) reps then Some sym else None)
          info
      with
      | Some sym -> Some sym
      | None -> (
          match l with
          | Loc.Fld (b, f) -> Option.map (fun b -> Loc.Fld (b, f)) (go b)
          | Loc.Head b -> Option.map (fun b -> Loc.Head b) (go b)
          | Loc.Tail b -> Option.map (fun b -> Loc.Tail b) (go b)
          | _ -> None)
  in
  go l

(** Resolve a callee cell back to the caller cells it represents. *)
let resolve_back (info : Ig.map_info) (l : Loc.t) : Loc.t list =
  let rec go l =
    match l with
    | Loc.Sym _ -> (
        match List.assoc_opt l info with Some reps -> reps | None -> [])
    | _ when Loc.is_global_visible l -> [ l ]
    | Loc.Fld (b, f) -> List.map (fun b -> Loc.Fld (b, f)) (go b)
    | Loc.Head b -> List.map (fun b -> Loc.Head b) (go b)
    | Loc.Tail b -> List.map (fun b -> Loc.Tail b) (go b)
    | Loc.Var _ | Loc.Ret _ -> []
    | Loc.Heap | Loc.Site _ | Loc.Null | Loc.Str | Loc.Fun _ -> [ l ]
  in
  go l

(* ------------------------------------------------------------------ *)
(* The engine                                                         *)
(* ------------------------------------------------------------------ *)

let rec process_stmts ctx fn node (input : state option) (stmts : Ir.stmt list) : flow =
  List.fold_left
    (fun fl stmt ->
      let step = process_stmt ctx fn node fl.normal stmt in
      {
        normal = step.normal;
        brk = join_opt fl.brk step.brk;
        cont = join_opt fl.cont step.cont;
        ret = join_opt fl.ret step.ret;
      })
    (flow_of input) stmts

and process_stmt ctx fn node (input : state option) (stmt : Ir.stmt) : flow =
  match input with
  | None -> flow_of None
  | Some s -> (
      record ctx stmt.Ir.s_id s;
      let sid = stmt.Ir.s_id in
      match stmt.Ir.s_desc with
      | Ir.Sassign (lref, rhs) ->
          let v =
            match rhs with
            | Ir.Rconst (Some n) -> Vconst n
            | Ir.Rconst None -> Vtop
            | Ir.Rref r -> read_ref ctx fn sid s r
            | Ir.Rbinop (op, a, b) ->
                eval_binop op (read_operand ctx fn sid s a) (read_operand ctx fn sid s b)
            | Ir.Runop (op, a) -> eval_unop op (read_operand ctx fn sid s a)
            | Ir.Raddr _ | Ir.Rnull | Ir.Rstr | Ir.Rmalloc | Ir.Rarith _ -> Vtop
          in
          flow_of (Some (write_ref ctx fn sid s lref v))
      | Ir.Scall (lhs, _, args) ->
          let children = Ig.children_at node sid in
          let s', ret_v =
            if children = [] then (external_effect ctx fn sid s args, Vtop)
            else
              let results =
                List.map (fun child -> process_call ctx fn sid s child args) children
              in
              match results with
              | [] -> (s, Vtop)
              | (s0, v0) :: rest ->
                  List.fold_left
                    (fun (sa, va) (sb, vb) -> (join_state sa sb, join_value va vb))
                    (s0, v0) rest
          in
          let s' =
            match lhs with
            | Some lref -> write_ref ctx fn sid s' lref ret_v
            | None -> s'
          in
          flow_of (Some s')
      | Ir.Sif (_, t, e) ->
          let ft = process_stmts ctx fn node (Some s) t in
          let fe = process_stmts ctx fn node (Some s) e in
          merge_flow ft fe
      | Ir.Sloop l ->
          let process_list st stmts = process_stmts ctx fn node st stmts in
          let enter =
            match l.Ir.l_kind with
            | `While | `For -> (process_list (Some s) l.Ir.l_cond_stmts).normal
            | `Do -> Some s
          in
          let rec iterate head ~brk ~ret ~fuel =
            let body = process_list head l.Ir.l_body in
            let brk = join_opt brk body.brk in
            let ret = join_opt ret body.ret in
            let after = join_opt body.normal body.cont in
            let step = process_list after l.Ir.l_step in
            let back = process_list step.normal l.Ir.l_cond_stmts in
            let head' = join_opt head back.normal in
            if opt_equal head head' || fuel = 0 then (head', brk, ret)
            else iterate head' ~brk ~ret ~fuel:(fuel - 1)
          in
          let head, brk, ret = iterate enter ~brk:None ~ret:None ~fuel:50 in
          { normal = join_opt head brk; brk = None; cont = None; ret }
      | Ir.Sswitch (_, groups) ->
          let fall, acc =
            List.fold_left
              (fun (fall, acc) g ->
                let entry = join_opt (Some s) fall in
                let fl = process_stmts ctx fn node entry g.Ir.g_body in
                ( fl.normal,
                  {
                    normal = None;
                    brk = join_opt acc.brk fl.brk;
                    cont = join_opt acc.cont fl.cont;
                    ret = join_opt acc.ret fl.ret;
                  } ))
              (None, flow_of None) groups
          in
          let has_default = List.exists (fun g -> g.Ir.g_default) groups in
          let exit = join_opt fall acc.brk in
          let exit = if has_default then exit else join_opt exit (Some s) in
          { normal = exit; brk = None; cont = acc.cont; ret = acc.ret }
      | Ir.Sbreak -> { normal = None; brk = Some s; cont = None; ret = None }
      | Ir.Scontinue -> { normal = None; brk = None; cont = Some s; ret = None }
      | Ir.Sreturn op ->
          let s =
            match op with
            | Some op ->
                set_const s (Loc.Ret fn.Ir.fn_name) (read_operand ctx fn sid s op)
            | None -> s
          in
          { normal = None; brk = None; cont = None; ret = Some s })

(** Effect of a call to an external function: cells reachable through
    pointer arguments become unknown. *)
and external_effect ctx fn sid (s : state) (args : Ir.operand list) : state =
  let pts = Analysis.pts_at ctx.res sid in
  List.fold_left
    (fun s arg ->
      match arg with
      | Ir.Oref r ->
          let targets = Lval.rvals_ref ctx.res.Analysis.tenv fn pts r in
          Loc.Map.fold (fun l _ s -> Loc.Map.remove l s) targets s
      | Ir.Oconst _ | Ir.Onull | Ir.Ostr -> s)
    s args

(** Map the caller state into the callee, run (or reuse) its body, unmap
    the result. Returns the caller-side state and the callee's return
    value. Recursive and approximate nodes are handled conservatively. *)
and process_call ctx caller_fn sid (s : state) (child : Ig.node) (args : Ir.operand list) :
    state * value =
  match Pointsto.Tenv.find_func ctx.res.Analysis.tenv child.Ig.func with
  | None -> (s, Vtop)
  | Some callee_fn -> (
      let info = child.Ig.map_info in
      (* conservative handling of recursion: drop knowledge of everything
         the callee can reach *)
      let conservative () =
        let s =
          Loc.Map.filter (fun l _ -> Option.is_none (translate_fwd info l)) s
        in
        (s, Vtop)
      in
      match child.Ig.kind with
      | Ig.Approximate | Ig.Recursive -> conservative ()
      | Ig.Ordinary ->
          (* callee input: globals and mapped invisibles carry their
             values; int parameters get the actuals' values *)
          let callee_in =
            Loc.Map.fold
              (fun l v acc ->
                match translate_fwd info l with
                | Some l' -> Loc.Map.add l' v acc
                | None -> acc)
              s Loc.Map.empty
          in
          let callee_in =
            List.fold_left2
              (fun acc (pname, _) arg ->
                match read_operand ctx caller_fn sid s arg with
                | Vconst n -> Loc.Map.add (Loc.Var (pname, Loc.Kparam)) (Vconst n) acc
                | Vtop -> acc)
              callee_in callee_fn.Ir.fn_params
              (let np = List.length callee_fn.Ir.fn_params in
               let na = List.length args in
               if na >= np then List.filteri (fun i _ -> i < np) args
               else args @ List.init (np - na) (fun _ -> Ir.Oconst None))
          in
          let callee_out, ret_v =
            match Hashtbl.find_opt ctx.memo child.Ig.id with
            | Some (i, o, v) when state_equal i callee_in -> (o, v)
            | _ ->
                let fl =
                  process_stmts ctx callee_fn child (Some callee_in) callee_fn.Ir.fn_body
                in
                let out =
                  match join_opt fl.normal fl.ret with
                  | Some o -> o
                  | None -> Loc.Map.empty
                in
                let ret_v = lookup out (Loc.Ret callee_fn.Ir.fn_name) in
                Hashtbl.replace ctx.memo child.Ig.id (callee_in, out, ret_v);
                (out, ret_v)
          in
          (* unmap: mapped caller cells take the callee's view; unmapped
             cells persist *)
          let persistent =
            Loc.Map.filter (fun l _ -> Option.is_none (translate_fwd info l)) s
          in
          (* start from persistent; add back every caller cell that maps
             into the callee with the callee's final value (join when
             several callee cells resolve to one caller cell) *)
          let updated = Hashtbl.create 16 in
          Loc.Map.iter
            (fun l' v ->
              List.iter
                (fun l ->
                  let v =
                    match Hashtbl.find_opt updated l with
                    | Some v0 -> join_value v0 v
                    | None -> v
                  in
                  Hashtbl.replace updated l v)
                (resolve_back info l'))
            callee_out;
          let out =
            Hashtbl.fold
              (fun l v acc ->
                match v with Vconst _ -> Loc.Map.add l v acc | Vtop -> acc)
              updated persistent
          in
          (out, ret_v))

(* ------------------------------------------------------------------ *)
(* Driver and queries                                                 *)
(* ------------------------------------------------------------------ *)

type result = {
  ctx : ctx;
  res : Analysis.result;
}

(** Run constant propagation over an analyzed program. *)
let run (res : Analysis.result) : result =
  let ctx = { res; stmt_consts = Hashtbl.create 64; memo = Hashtbl.create 32 } in
  let entry = res.Analysis.graph.Ig.root in
  (match Pointsto.Tenv.find_func res.Analysis.tenv entry.Ig.func with
  | Some fn -> ignore (process_stmts ctx fn entry (Some Loc.Map.empty) fn.Ir.fn_body)
  | None -> ());
  { ctx; res }

(** The constant value of a location at a statement, if known (merged
    over contexts). *)
let const_at (r : result) (sid : int) (l : Loc.t) : int64 option =
  match Hashtbl.find_opt r.ctx.stmt_consts sid with
  | None -> None
  | Some s -> ( match lookup s l with Vconst n -> Some n | Vtop -> None)

(** All known constants at a statement. *)
let consts_at (r : result) (sid : int) : (Loc.t * int64) list =
  match Hashtbl.find_opt r.ctx.stmt_consts sid with
  | None -> []
  | Some s ->
      Loc.Map.fold
        (fun l v acc -> match v with Vconst n -> (l, n) :: acc | Vtop -> acc)
        s []
      |> List.rev

(** Folding opportunities: operand reads whose value is a known constant
    (the transformation a compiler would apply). *)
type fold_site = { fs_stmt : int; fs_func : string; fs_loc : Loc.t; fs_value : int64 }

let fold_sites (r : result) : fold_site list =
  let tenv = r.res.Analysis.tenv in
  List.concat_map
    (fun fn ->
      List.rev
        (Ir.fold_func
           (fun acc stmt ->
             let sid = stmt.Ir.s_id in
             let consider acc (op : Ir.operand) =
               match op with
               | Ir.Oref rf when Ir.is_plain_var rf -> (
                   match Pointsto.Tenv.base_loc tenv fn rf.Ir.r_base with
                   | Some l -> (
                       match const_at r sid l with
                       | Some n ->
                           { fs_stmt = sid; fs_func = fn.Ir.fn_name; fs_loc = l; fs_value = n }
                           :: acc
                       | None -> acc)
                   | None -> acc)
               | _ -> acc
             in
             match stmt.Ir.s_desc with
             | Ir.Sassign (_, Ir.Rbinop (_, a, b)) -> consider (consider acc a) b
             | Ir.Sassign (_, Ir.Runop (_, a)) -> consider acc a
             | Ir.Sreturn (Some op) -> consider acc op
             | _ -> acc)
           [] fn))
    r.res.Analysis.prog.Ir.funcs
