lib/simple/ir.ml: Cfront List Option String
