lib/simple/pp.ml: Cfront Fmt Ir List String
