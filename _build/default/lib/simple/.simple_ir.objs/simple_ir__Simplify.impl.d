lib/simple/simplify.ml: Ast Cfront Char Ctype Fmt Hashtbl Int64 Ir List Parser Printf Srcloc String
