lib/simple/simplify.mli: Cfront Ir
