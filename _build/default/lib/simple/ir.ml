(** The SIMPLE intermediate representation.

    SIMPLE is McCAT's structured, compositional IR [Hendren et al. 1992].
    The properties the points-to analysis relies on (paper §2):

    - complex statements are compiled into sequences of basic statements;
    - every variable reference in a basic statement has at most one level
      of pointer indirection;
    - conditional expressions of [if]/[while] are simple and side-effect
      free (side-effecting conditions are hoisted into the loop's
      condition block, re-evaluated on the back edge);
    - procedure arguments are constants or variable names;
    - variable initializations are moved from declarations into the body.

    Control flow is fully structured: [if], a unified loop form covering
    [while]/[do]/[for], [switch] with fall-through groups, [break],
    [continue], [return]. *)

(** Classification of an array subscript, following Table 1 of the paper:
    a constant [0] selects the array head, a positive constant selects the
    tail, and a statically unknown subscript may select either. *)
type index = Izero | Ipos | Iany

type selector =
  | Sfield of string  (** .f *)
  | Sindex of index  (** [i] applied to an array object: selects within it *)
  | Sshift of index
      (** [i] applied to a pointer (p[i] is *(p+i)): moves across sibling
          objects of the pointee's array region *)

(** A SIMPLE variable reference: a base variable, an optional single
    dereference, and a selector path. This generalizes every variable
    reference form of Table 1 — plain variables, field paths, array
    subscripts, single dereferences, dereference-then-field,
    dereference-then-subscript — and mixed paths such as "a[i].f". *)
type vref = {
  r_base : string;
  r_deref : bool;
  r_path : selector list;
}

let var_ref base = { r_base = base; r_deref = false; r_path = [] }
let deref_ref base = { r_base = base; r_deref = true; r_path = [] }

let is_plain_var r = (not r.r_deref) && r.r_path = []

(** Has at least one level of indirection: either an explicit dereference
    or an index applied to a pointer is encoded as deref by the
    simplifier. *)
let is_indirect r = r.r_deref

type operand =
  | Oref of vref
  | Oconst of int64 option
      (** numeric or character constant (the value when integral and
          statically known): carries no pointer *)
  | Onull  (** the NULL pointer constant *)
  | Ostr  (** a string literal *)

(** Side-effect-free conditions, kept structured for printing; the
    analysis itself is path-insensitive and only uses conditions for
    display. *)
type cond =
  | Cop of string * operand * operand  (** binary comparison/test, op name *)
  | Cval of operand
  | Cnot of cond
  | Cand of cond * cond
  | Cor of cond * cond

type callee =
  | Cdirect of string
  | Cindirect of vref  (** call through a function pointer reference *)

(** Arithmetic shift applied to a pointer value, used to adjust
    head/tail array targets: [+0], [+positive-constant], or unknown. *)
type ptr_shift = Pzero | Ppos | Pany

type rhs =
  | Rref of vref  (** lhs = ref *)
  | Raddr of vref  (** lhs = &ref *)
  | Rconst of int64 option
      (** lhs = constant (the value when integral and statically known) *)
  | Rnull  (** lhs = NULL (0 in pointer context) *)
  | Rstr  (** lhs = "literal" *)
  | Rmalloc  (** lhs = malloc/calloc/realloc (...) *)
  | Rarith of vref * ptr_shift
      (** pointer arithmetic: lhs = p + k (or p - k); the shift classifies
          the displacement like an array index *)
  | Rbinop of string * operand * operand
      (** non-pointer arithmetic over simplified operands; carries no
          points-to value *)
  | Runop of string * operand  (** non-pointer unary arithmetic *)

type stmt = { s_id : int; s_loc : Cfront.Srcloc.t; s_desc : stmt_desc }

and stmt_desc =
  | Sassign of vref * rhs
  | Scall of vref option * callee * operand list
  | Sif of cond * stmt list * stmt list
  | Sloop of loop
  | Sswitch of operand * switch_group list
  | Sbreak
  | Scontinue
  | Sreturn of operand option

and loop = {
  l_kind : [ `While | `Do | `For ];
  l_cond_stmts : stmt list;
      (** statements evaluating a side-effecting condition; run before
          every test *)
  l_cond : cond;
  l_step : stmt list;  (** for-loop step; run after body and continue *)
  l_body : stmt list;
}

and switch_group = {
  g_cases : int64 list;
  g_default : bool;
  g_body : stmt list;  (** falls through into the next group *)
}

type func = {
  fn_name : string;
  fn_ret : Cfront.Ctype.t;
  fn_params : (string * Cfront.Ctype.t) list;
  fn_locals : (string * Cfront.Ctype.t) list;  (** declared locals and temps *)
  fn_body : stmt list;
  fn_variadic : bool;
}

type program = {
  globals : (string * Cfront.Ctype.t) list;
  funcs : func list;
  layouts : Cfront.Ctype.layouts;
  protos : (string * Cfront.Ctype.func_sig) list;  (** external functions *)
  n_stmts : int;  (** total number of SIMPLE statements (basic + control) *)
}

let find_func p name = List.find_opt (fun f -> String.equal f.fn_name name) p.funcs

let is_defined p name = Option.is_some (find_func p name)

(* ------------------------------------------------------------------ *)
(* Traversal                                                          *)
(* ------------------------------------------------------------------ *)

(** Fold [f] over every statement, in textual order, descending into all
    nested statement lists. *)
let rec fold_stmts f acc (stmts : stmt list) =
  List.fold_left (fold_stmt f) acc stmts

and fold_stmt f acc s =
  let acc = f acc s in
  match s.s_desc with
  | Sassign _ | Scall _ | Sbreak | Scontinue | Sreturn _ -> acc
  | Sif (_, t, e) -> fold_stmts f (fold_stmts f acc t) e
  | Sloop l ->
      let acc = fold_stmts f acc l.l_cond_stmts in
      let acc = fold_stmts f acc l.l_body in
      fold_stmts f acc l.l_step
  | Sswitch (_, groups) ->
      List.fold_left (fun acc g -> fold_stmts f acc g.g_body) acc groups

let fold_func f acc fn = fold_stmts f acc fn.fn_body

let fold_program f acc p =
  List.fold_left (fold_func f) acc p.funcs

(** Number of statements in a function (basic and control). *)
let count_stmts fn = fold_func (fun n _ -> n + 1) 0 fn

(** All call sites [(caller, stmt)] in the program, in textual order. *)
let call_sites p =
  List.concat_map
    (fun fn ->
      List.rev
        (fold_func
           (fun acc s ->
             match s.s_desc with Scall _ -> (fn, s) :: acc | _ -> acc)
           [] fn))
    p.funcs

(** Functions whose address is taken anywhere in the program (their name
    is used other than as the callee of a direct call). Used by the
    address-taken call-graph baseline. *)
let address_taken_funcs p =
  let defined name = is_defined p name in
  let add acc name = if defined name && not (List.mem name acc) then name :: acc else acc in
  let of_operand acc = function
    | Oref r when is_plain_var r -> add acc r.r_base
    | Oref _ | Oconst _ | Onull | Ostr -> acc
  in
  let of_rhs acc = function
    | Rref r | Raddr r | Rarith (r, _) ->
        if is_plain_var r then add acc r.r_base else acc
    | Rbinop (_, a, b) -> of_operand (of_operand acc a) b
    | Runop (_, a) -> of_operand acc a
    | Rconst _ | Rnull | Rstr | Rmalloc -> acc
  in
  let of_stmt acc s =
    match s.s_desc with
    | Sassign (_, rhs) -> of_rhs acc rhs
    | Scall (_, _, args) -> List.fold_left of_operand acc args
    | Sreturn (Some op) -> of_operand acc op
    | Sif _ | Sloop _ | Sswitch _ | Sbreak | Scontinue | Sreturn None -> acc
  in
  fold_program of_stmt [] p
