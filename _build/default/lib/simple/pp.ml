(** Pretty-printer for SIMPLE programs. *)

open Ir

let pp_index ppf = function
  | Izero -> Fmt.string ppf "0"
  | Ipos -> Fmt.string ppf "+"
  | Iany -> Fmt.string ppf "i"

let pp_vref ppf (r : vref) =
  if r.r_deref then Fmt.pf ppf "(*%s)" r.r_base else Fmt.string ppf r.r_base;
  List.iter
    (function
      | Sfield f -> Fmt.pf ppf ".%s" f
      | Sindex i -> Fmt.pf ppf "[%a]" pp_index i
      | Sshift i -> Fmt.pf ppf "[+%a]" pp_index i)
    r.r_path

let pp_operand ppf = function
  | Oref r -> pp_vref ppf r
  | Oconst (Some n) -> Fmt.pf ppf "%Ld" n
  | Oconst None -> Fmt.string ppf "<const>"
  | Onull -> Fmt.string ppf "NULL"
  | Ostr -> Fmt.string ppf "<string>"

let pp_shift ppf = function
  | Pzero -> Fmt.string ppf "0"
  | Ppos -> Fmt.string ppf "k"
  | Pany -> Fmt.string ppf "?"

let pp_rhs ppf = function
  | Rref r -> pp_vref ppf r
  | Raddr r -> Fmt.pf ppf "&%a" pp_vref r
  | Rconst (Some n) -> Fmt.pf ppf "%Ld" n
  | Rconst None -> Fmt.string ppf "<const>"
  | Rnull -> Fmt.string ppf "NULL"
  | Rstr -> Fmt.string ppf "<string>"
  | Rmalloc -> Fmt.string ppf "malloc()"
  | Rarith (r, s) -> Fmt.pf ppf "%a + %a" pp_vref r pp_shift s
  | Rbinop (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_operand a op pp_operand b
  | Runop (op, a) -> Fmt.pf ppf "%s%a" op pp_operand a

let rec pp_cond ppf = function
  | Cop (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_operand a op pp_operand b
  | Cval op -> pp_operand ppf op
  | Cnot c -> Fmt.pf ppf "!(%a)" pp_cond c
  | Cand (a, b) -> Fmt.pf ppf "(%a && %a)" pp_cond a pp_cond b
  | Cor (a, b) -> Fmt.pf ppf "(%a || %a)" pp_cond a pp_cond b

let pp_callee ppf = function
  | Cdirect f -> Fmt.string ppf f
  | Cindirect r -> Fmt.pf ppf "(*%a)" pp_vref r

let rec pp_stmt ~indent ppf (s : stmt) =
  let pad = String.make indent ' ' in
  match s.s_desc with
  | Sassign (l, r) -> Fmt.pf ppf "%s%a = %a;  /* s%d */@." pad pp_vref l pp_rhs r s.s_id
  | Scall (lhs, callee, args) ->
      Fmt.pf ppf "%s%a%a(%a);  /* s%d */@." pad
        (Fmt.option (fun ppf l -> Fmt.pf ppf "%a = " pp_vref l))
        lhs pp_callee callee
        (Fmt.list ~sep:(Fmt.any ", ") pp_operand)
        args s.s_id
  | Sif (c, t, []) ->
      Fmt.pf ppf "%sif (%a) {  /* s%d */@.%a%s}@." pad pp_cond c s.s_id
        (pp_stmts ~indent:(indent + 2))
        t pad
  | Sif (c, t, e) ->
      Fmt.pf ppf "%sif (%a) {  /* s%d */@.%a%s} else {@.%a%s}@." pad pp_cond c s.s_id
        (pp_stmts ~indent:(indent + 2))
        t pad
        (pp_stmts ~indent:(indent + 2))
        e pad
  | Sloop l ->
      let kind =
        match l.l_kind with `While -> "while" | `Do -> "do-while" | `For -> "for"
      in
      if l.l_cond_stmts <> [] then
        Fmt.pf ppf "%s/* cond eval: */@.%a" pad (pp_stmts ~indent) l.l_cond_stmts;
      Fmt.pf ppf "%s%s (%a) {  /* s%d */@.%a" pad kind pp_cond l.l_cond s.s_id
        (pp_stmts ~indent:(indent + 2))
        l.l_body;
      if l.l_step <> [] then
        Fmt.pf ppf "%s  /* step: */@.%a" pad (pp_stmts ~indent:(indent + 2)) l.l_step;
      if l.l_cond_stmts <> [] then
        Fmt.pf ppf "%s  /* cond re-eval: */@.%a" pad
          (pp_stmts ~indent:(indent + 2))
          l.l_cond_stmts;
      Fmt.pf ppf "%s}@." pad
  | Sswitch (op, groups) ->
      Fmt.pf ppf "%sswitch (%a) {  /* s%d */@." pad pp_operand op s.s_id;
      List.iter
        (fun g ->
          List.iter (fun v -> Fmt.pf ppf "%scase %Ld:@." pad v) g.g_cases;
          if g.g_default then Fmt.pf ppf "%sdefault:@." pad;
          pp_stmts ~indent:(indent + 2) ppf g.g_body)
        groups;
      Fmt.pf ppf "%s}@." pad
  | Sbreak -> Fmt.pf ppf "%sbreak;  /* s%d */@." pad s.s_id
  | Scontinue -> Fmt.pf ppf "%scontinue;  /* s%d */@." pad s.s_id
  | Sreturn None -> Fmt.pf ppf "%sreturn;  /* s%d */@." pad s.s_id
  | Sreturn (Some op) -> Fmt.pf ppf "%sreturn %a;  /* s%d */@." pad pp_operand op s.s_id

and pp_stmts ~indent ppf stmts = List.iter (pp_stmt ~indent ppf) stmts

let pp_func ppf (f : func) =
  Fmt.pf ppf "%s %s(%a)@.{@." (Cfront.Ctype.to_string f.fn_ret) f.fn_name
    (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (n, t) ->
         Fmt.pf ppf "%s %s" (Cfront.Ctype.to_string t) n))
    f.fn_params;
  List.iter
    (fun (n, t) -> Fmt.pf ppf "  %s %s;@." (Cfront.Ctype.to_string t) n)
    f.fn_locals;
  pp_stmts ~indent:2 ppf f.fn_body;
  Fmt.pf ppf "}@.@."

let pp_program ppf (p : program) =
  List.iter
    (fun (n, t) -> Fmt.pf ppf "%s %s;@." (Cfront.Ctype.to_string t) n)
    p.globals;
  Fmt.pf ppf "@.";
  List.iter (pp_func ppf) p.funcs
