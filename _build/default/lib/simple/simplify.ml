(** Simplification: lowering the C AST to SIMPLE.

    Implements the transformations described in paper §2: complex
    statements become sequences of basic statements; every variable
    reference in a basic statement has at most one level of indirection;
    loop/if conditions become side-effect free (side-effecting
    subexpressions are hoisted, and short-circuit operators with impure
    operands are restructured into nested ifs on a boolean temporary);
    call arguments become constants or variable names; initializations
    move from declarations into statement position (global initializers
    are prepended to [main]).

    The pass carries a small type checker for C expressions, needed to
    classify pointer arithmetic, detect NULL constants in pointer
    contexts, expand struct copies field-wise and distinguish direct from
    indirect calls. *)

open Cfront

exception Unsupported of Srcloc.t * string

let fail loc fmt = Fmt.kstr (fun m -> raise (Unsupported (loc, m))) fmt

type env = {
  layouts : Ctype.layouts;
  globals : (string, Ctype.t) Hashtbl.t;
  func_sigs : (string, Ctype.func_sig) Hashtbl.t;  (** defined + prototyped *)
  defined_funcs : (string, unit) Hashtbl.t;
  mutable implicit_protos : (string * Ctype.func_sig) list;
  (* per-function state *)
  locals : (string, Ctype.t) Hashtbl.t;  (** resolved name -> type *)
  mutable local_order : (string * Ctype.t) list;  (** reverse order *)
  mutable scopes : (string, string) Hashtbl.t list;  (** source -> resolved *)
  mutable temp_counter : int;
  mutable rename_counter : int;
  mutable ret_ty : Ctype.t;
  mutable cur_loc : Srcloc.t;
  mutable stmt_id : int;
}

let make_env (p : Ast.program) =
  let globals = Hashtbl.create 64 in
  List.iter (fun (d : Ast.decl) -> Hashtbl.replace globals d.d_name d.d_ty) p.p_globals;
  let func_sigs = Hashtbl.create 64 in
  let defined_funcs = Hashtbl.create 64 in
  List.iter
    (fun (f : Ast.func_def) ->
      Hashtbl.replace defined_funcs f.f_name ();
      Hashtbl.replace func_sigs f.f_name
        { Ctype.ret = f.f_ret; params = List.map snd f.f_params; variadic = f.f_variadic })
    p.p_funcs;
  List.iter (fun (n, s) -> Hashtbl.replace func_sigs n s) p.p_protos;
  {
    layouts = p.p_layouts;
    globals;
    func_sigs;
    defined_funcs;
    implicit_protos = [];
    locals = Hashtbl.create 32;
    local_order = [];
    scopes = [];
    temp_counter = 0;
    rename_counter = 0;
    ret_ty = Ctype.Void;
    cur_loc = Srcloc.dummy;
    stmt_id = 0;
  }

let err env fmt = fail env.cur_loc fmt

(* ------------------------------------------------------------------ *)
(* Name resolution and temporaries                                    *)
(* ------------------------------------------------------------------ *)

let resolve env name =
  let rec walk = function
    | [] -> name
    | sc :: rest -> ( match Hashtbl.find_opt sc name with Some r -> r | None -> walk rest)
  in
  walk env.scopes

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

(** Declare a local in the innermost scope, renaming if it shadows. *)
let declare_local env name ty =
  let resolved =
    if Hashtbl.mem env.locals name || Hashtbl.mem env.globals name
       || Hashtbl.mem env.func_sigs name
    then begin
      env.rename_counter <- env.rename_counter + 1;
      Printf.sprintf "%s$%d" name env.rename_counter
    end
    else name
  in
  (match env.scopes with
  | sc :: _ -> Hashtbl.replace sc name resolved
  | [] -> ());
  Hashtbl.replace env.locals resolved ty;
  env.local_order <- (resolved, ty) :: env.local_order;
  resolved

let fresh_temp env ty =
  env.temp_counter <- env.temp_counter + 1;
  let name = Printf.sprintf "_t%d" env.temp_counter in
  Hashtbl.replace env.locals name ty;
  env.local_order <- (name, ty) :: env.local_order;
  name

(** Type of a variable as seen from the current function. Function names
    type as their function type. *)
let var_type env name =
  let name = resolve env name in
  match Hashtbl.find_opt env.locals name with
  | Some t -> Some t
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some t -> Some t
      | None -> (
          match Hashtbl.find_opt env.func_sigs name with
          | Some s -> Some (Ctype.Func s)
          | None -> None))

(* ------------------------------------------------------------------ *)
(* Expression typing                                                  *)
(* ------------------------------------------------------------------ *)

let rec type_of env (e : Ast.expr) : Ctype.t =
  match e with
  | Ast.Eint _ -> Ctype.Int Ctype.Iint
  | Ast.Efloat _ -> Ctype.Float Ctype.Fdouble
  | Ast.Echar _ -> Ctype.Int Ctype.Ichar
  | Ast.Estr _ -> Ctype.Ptr (Ctype.Int Ctype.Ichar)
  | Ast.Eident x -> (
      match var_type env x with
      | Some t -> t
      | None -> err env "undeclared identifier '%s'" x)
  | Ast.Eunary (Ast.Uderef, e) -> (
      match Ctype.deref (Ctype.decay (type_of env e)) with
      | Some t -> t
      | None -> err env "dereference of non-pointer (type %s)" (Ctype.to_string (type_of env e)))
  | Ast.Eunary (Ast.Uaddr, e) -> Ctype.Ptr (type_of env e)
  | Ast.Eunary ((Ast.Uneg | Ast.Ubnot), e) -> Ctype.decay (type_of env e)
  | Ast.Eunary (Ast.Ulnot, _) -> Ctype.Int Ctype.Iint
  | Ast.Ebinary (op, a, b) -> (
      match op with
      | Ast.Blt | Ast.Bgt | Ast.Ble | Ast.Bge | Ast.Beq | Ast.Bne | Ast.Bland | Ast.Blor ->
          Ctype.Int Ctype.Iint
      | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv | Ast.Bmod | Ast.Bshl | Ast.Bshr
      | Ast.Bband | Ast.Bbor | Ast.Bbxor -> (
          let ta = Ctype.decay (type_of env a) in
          let tb = Ctype.decay (type_of env b) in
          match (ta, tb, op) with
          | Ctype.Ptr _, Ctype.Ptr _, Ast.Bsub -> Ctype.Int Ctype.Ilong
          | (Ctype.Ptr _ as t), _, _ -> t
          | _, (Ctype.Ptr _ as t), _ -> t
          | Ctype.Float k, _, _ | _, Ctype.Float k, _ -> Ctype.Float k
          | _ -> ta))
  | Ast.Eassign (_, l, _) -> type_of env l
  | Ast.Econd (_, a, b) -> (
      let ta = Ctype.decay (type_of env a) in
      match ta with
      | Ctype.Int _ when Ctype.is_pointer (Ctype.decay (type_of env b)) ->
          Ctype.decay (type_of env b)
      | t -> t)
  | Ast.Ecall (f, _) -> (
      match callee_sig env f with
      | Some s -> s.Ctype.ret
      | None -> Ctype.Int Ctype.Iint)
  | Ast.Eindex (a, _) -> (
      match Ctype.deref (Ctype.decay (type_of env a)) with
      | Some t -> t
      | None -> err env "subscript of non-array/pointer")
  | Ast.Emember (b, f) -> (
      match Ctype.field_type env.layouts (type_of env b) f with
      | Some t -> t
      | None -> err env "no field '%s' in %s" f (Ctype.to_string (type_of env b)))
  | Ast.Earrow (b, f) -> (
      match Ctype.deref (Ctype.decay (type_of env b)) with
      | Some bt -> (
          match Ctype.field_type env.layouts bt f with
          | Some t -> t
          | None -> err env "no field '%s' in %s" f (Ctype.to_string bt))
      | None -> err env "-> applied to non-pointer")
  | Ast.Ecast (t, _) -> t
  | Ast.Esizeof_type _ | Ast.Esizeof_expr _ -> Ctype.Int Ctype.Ilong
  | Ast.Ecomma (_, b) -> type_of env b
  | Ast.Eincdec (_, _, e) -> type_of env e

(** Signature of the callee of a call expression, if determinable. *)
and callee_sig env (f : Ast.expr) : Ctype.func_sig option =
  match Ctype.decay (type_of_callee env f) with
  | Ctype.Ptr (Ctype.Func s) -> Some s
  | Ctype.Func s -> Some s
  | _ -> None

(** Like {!type_of} but tolerates undeclared identifiers in call position
    (implicit function declaration, as in pre-ANSI C). *)
and type_of_callee env (f : Ast.expr) : Ctype.t =
  match f with
  | Ast.Eident x -> (
      match var_type env x with
      | Some t -> t
      | None ->
          (* implicit declaration: int f(...) *)
          let s = { Ctype.ret = Ctype.Int Ctype.Iint; params = []; variadic = true } in
          Hashtbl.replace env.func_sigs x s;
          env.implicit_protos <- (x, s) :: env.implicit_protos;
          Ctype.Func s)
  | _ -> type_of env f

(* ------------------------------------------------------------------ *)
(* Emission helpers                                                   *)
(* ------------------------------------------------------------------ *)

type emitter = Ir.stmt list ref

let new_emitter () : emitter = ref []

let flush (em : emitter) = List.rev !em

let mk_stmt env desc =
  env.stmt_id <- env.stmt_id + 1;
  { Ir.s_id = env.stmt_id; s_loc = env.cur_loc; s_desc = desc }

let emit env (em : emitter) desc = em := mk_stmt env desc :: !em

(* ------------------------------------------------------------------ *)
(* Purity                                                             *)
(* ------------------------------------------------------------------ *)

let rec expr_is_pure (e : Ast.expr) =
  match e with
  | Ast.Eint _ | Ast.Efloat _ | Ast.Echar _ | Ast.Estr _ | Ast.Eident _
  | Ast.Esizeof_type _ | Ast.Esizeof_expr _ ->
      true
  | Ast.Eassign _ | Ast.Ecall _ | Ast.Eincdec _ -> false
  | Ast.Eunary (_, e) | Ast.Ecast (_, e) -> expr_is_pure e
  | Ast.Ebinary (_, a, b) | Ast.Eindex (a, b) | Ast.Ecomma (a, b) ->
      expr_is_pure a && expr_is_pure b
  | Ast.Econd (a, b, c) -> expr_is_pure a && expr_is_pure b && expr_is_pure c
  | Ast.Emember (e, _) | Ast.Earrow (e, _) -> expr_is_pure e

(* ------------------------------------------------------------------ *)
(* Lowering expressions                                               *)
(* ------------------------------------------------------------------ *)

let is_malloc_like env name =
  (not (Hashtbl.mem env.defined_funcs name))
  && List.mem name [ "malloc"; "calloc"; "realloc"; "valloc"; "memalign"; "strdup" ]

let classify_index (e : Ast.expr) : Ir.index =
  match e with
  | Ast.Eint 0L -> Ir.Izero
  | Ast.Eint n when n > 0L -> Ir.Ipos
  | Ast.Echar c when c = '\000' -> Ir.Izero
  | _ -> Ir.Iany

let classify_shift (e : Ast.expr) : Ir.ptr_shift =
  match e with
  | Ast.Eint 0L -> Ir.Pzero
  | Ast.Eint n when n > 0L -> Ir.Ppos
  | _ -> Ir.Pany

let binop_name (op : Ast.binop) =
  match op with
  | Ast.Badd -> "+"
  | Ast.Bsub -> "-"
  | Ast.Bmul -> "*"
  | Ast.Bdiv -> "/"
  | Ast.Bmod -> "%"
  | Ast.Bshl -> "<<"
  | Ast.Bshr -> ">>"
  | Ast.Blt -> "<"
  | Ast.Bgt -> ">"
  | Ast.Ble -> "<="
  | Ast.Bge -> ">="
  | Ast.Beq -> "=="
  | Ast.Bne -> "!="
  | Ast.Bband -> "&"
  | Ast.Bbor -> "|"
  | Ast.Bbxor -> "^"
  | Ast.Bland -> "&&"
  | Ast.Blor -> "||"

(** Is [e] a "null pointer constant" in a pointer context? *)
let rec is_null_const (e : Ast.expr) =
  match e with
  | Ast.Eint 0L -> true
  | Ast.Ecast (Ctype.Ptr _, e) -> is_null_const e
  | _ -> false

(** Lower an lvalue expression to a SIMPLE variable reference, emitting
    temporaries as needed so that the result has at most one level of
    indirection. *)
let rec lower_ref env em (e : Ast.expr) : Ir.vref =
  match e with
  | Ast.Eident x -> Ir.var_ref (resolve env x)
  | Ast.Emember (b, f) ->
      let r = lower_ref env em b in
      { r with Ir.r_path = r.Ir.r_path @ [ Ir.Sfield f ] }
  | Ast.Earrow (b, f) -> lower_ref env em (Ast.Emember (Ast.Eunary (Ast.Uderef, b), f))
  | Ast.Eunary (Ast.Uderef, b) ->
      let v = pointer_var env em b in
      Ir.deref_ref v
  | Ast.Eindex (b, i) ->
      let idx = classify_index i in
      (* evaluate the subscript for its effects *)
      if not (expr_is_pure i) then ignore (lower_operand env em i);
      let bt = type_of env b in
      if Ctype.is_array bt then begin
        let r = lower_ref env em b in
        { r with Ir.r_path = r.Ir.r_path @ [ Ir.Sindex idx ] }
      end
      else begin
        (* pointer subscript: p[i] is *(p + i), a shift across sibling
           objects of the array p points into *)
        let v = pointer_var env em b in
        { Ir.r_base = v; r_deref = true; r_path = [ Ir.Sshift idx ] }
      end
  | Ast.Ecast (_, b) -> lower_ref env em b
  | Ast.Ecomma (a, b) ->
      lower_effects env em a;
      lower_ref env em b
  | _ -> err env "expression is not an lvalue"

(** Lower a pointer-valued expression to a plain variable name holding the
    pointer. *)
and pointer_var env em (e : Ast.expr) : string =
  match lower_operand env em e with
  | Ir.Oref r when Ir.is_plain_var r -> r.Ir.r_base
  | op ->
      let ty = Ctype.decay (type_of env e) in
      let t = fresh_temp env ty in
      let rhs =
        match op with
        | Ir.Oref r -> Ir.Rref r
        | Ir.Oconst v -> Ir.Rconst v
        | Ir.Onull -> Ir.Rnull
        | Ir.Ostr -> Ir.Rstr
      in
      emit env em (Ir.Sassign (Ir.var_ref t, rhs));
      t

(** Lower an rvalue to an operand (a constant or a plain variable),
    emitting temporaries for anything more complex. Call arguments,
    return values and switch scrutinees are lowered through this. *)
and lower_operand ?expected env em (e : Ast.expr) : Ir.operand =
  let pointer_context =
    match expected with Some t -> Ctype.is_pointer (Ctype.decay t) | None -> false
  in
  match e with
  | _ when is_null_const e && pointer_context -> Ir.Onull
  | Ast.Eint n -> Ir.Oconst (Some n)
  | Ast.Echar c -> Ir.Oconst (Some (Int64.of_int (Char.code c)))
  | Ast.Efloat _ | Ast.Esizeof_type _ | Ast.Esizeof_expr _ -> Ir.Oconst None
  | Ast.Estr _ -> Ir.Ostr
  | Ast.Eident x -> (
      let rx = resolve env x in
      match var_type env x with
      | Some (Ctype.Array _) ->
          (* array decays to pointer to its head *)
          let t = fresh_temp env (Ctype.decay (type_of env e)) in
          emit env em
            (Ir.Sassign
               ( Ir.var_ref t,
                 Ir.Raddr { Ir.r_base = rx; r_deref = false; r_path = [ Ir.Sindex Ir.Izero ] } ));
          Ir.Oref (Ir.var_ref t)
      | _ -> Ir.Oref (Ir.var_ref rx))
  | Ast.Ecomma (a, b) ->
      lower_effects env em a;
      lower_operand ?expected env em b
  | Ast.Ecast (t, b) -> lower_operand ~expected:t env em b
  | _ ->
      let ty =
        match expected with
        | Some t when Ctype.is_pointer (Ctype.decay t) -> Ctype.decay t
        | _ -> Ctype.decay (type_of env e)
      in
      let t = fresh_temp env ty in
      lower_assign_to env em (Ir.var_ref t) ty e;
      Ir.Oref (Ir.var_ref t)

(** Lower [lref = e] where [lref] has type [lty], emitting the assignment
    (and any preparatory statements). *)
and lower_assign_to env em (lref : Ir.vref) (lty : Ctype.t) (e : Ast.expr) : unit =
  match e with
  | _ when is_null_const e && Ctype.is_pointer (Ctype.decay lty) ->
      emit env em (Ir.Sassign (lref, Ir.Rnull))
  | Ast.Eint n -> emit env em (Ir.Sassign (lref, Ir.Rconst (Some n)))
  | Ast.Echar c ->
      emit env em (Ir.Sassign (lref, Ir.Rconst (Some (Int64.of_int (Char.code c)))))
  | Ast.Efloat _ | Ast.Esizeof_type _ | Ast.Esizeof_expr _ ->
      emit env em (Ir.Sassign (lref, Ir.Rconst None))
  | Ast.Estr _ -> emit env em (Ir.Sassign (lref, Ir.Rstr))
  | Ast.Ecast (t, b) ->
      (* lower under the cast type when it is a pointer type, so that null
         constants and malloc results are classified correctly *)
      let ty = if Ctype.is_pointer (Ctype.decay t) then t else lty in
      lower_assign_to env em lref ty b
  | Ast.Ecomma (a, b) ->
      lower_effects env em a;
      lower_assign_to env em lref lty b
  | Ast.Eident x when (match var_type env x with Some (Ctype.Array _) -> true | _ -> false) ->
      emit env em
        (Ir.Sassign
           ( lref,
             Ir.Raddr
               { Ir.r_base = resolve env x; r_deref = false; r_path = [ Ir.Sindex Ir.Izero ] } ))
  | Ast.Eident _ | Ast.Emember _ | Ast.Earrow _ | Ast.Eindex _ | Ast.Eunary (Ast.Uderef, _)
    -> (
      match Ctype.su_of env.layouts lty with
      | Some _ ->
          let rref = lower_ref env em e in
          lower_struct_copy env em lref rref lty
      | None ->
          if Ctype.is_array (type_of env e) then begin
            (* rvalue of array type decays to the address of its head *)
            let r = lower_ref env em e in
            emit env em
              (Ir.Sassign
                 (lref, Ir.Raddr { r with Ir.r_path = r.Ir.r_path @ [ Ir.Sindex Ir.Izero ] }))
          end
          else begin
            let r = lower_ref env em e in
            emit env em (Ir.Sassign (lref, Ir.Rref r))
          end)
  | Ast.Eunary (Ast.Uaddr, l) -> (
      match l with
      | Ast.Eunary (Ast.Uderef, b) ->
          (* &*p is p *)
          lower_assign_to env em lref lty b
      | _ ->
          let r = lower_ref env em l in
          emit env em (Ir.Sassign (lref, Ir.Raddr r)))
  | Ast.Eunary ((Ast.Uneg | Ast.Ubnot | Ast.Ulnot) as u, b) ->
      let name = match u with Ast.Uneg -> "-" | Ast.Ubnot -> "~" | _ -> "!" in
      let o = lower_operand env em b in
      emit env em (Ir.Sassign (lref, Ir.Runop (name, o)))
  | Ast.Ecall (f, args) -> lower_call env em (Some (lref, lty)) f args
  | Ast.Ebinary (op, a, b) -> (
      let ta = Ctype.decay (type_of env a) in
      let tb = Ctype.decay (type_of env b) in
      match (op, ta, tb) with
      | (Ast.Badd | Ast.Bsub), Ctype.Ptr _, Ctype.Ptr _ ->
          (* pointer difference: an integer *)
          let oa = lower_operand env em a in
          let ob = lower_operand env em b in
          emit env em (Ir.Sassign (lref, Ir.Rbinop (binop_name op, oa, ob)))
      | (Ast.Badd | Ast.Bsub), Ctype.Ptr _, _ ->
          let shift = if op = Ast.Bsub then Ir.Pany else classify_shift b in
          lower_effects env em b;
          let r = lower_value_ref env em a in
          emit env em (Ir.Sassign (lref, Ir.Rarith (r, shift)))
      | Ast.Badd, _, Ctype.Ptr _ ->
          let shift = classify_shift a in
          lower_effects env em a;
          let r = lower_value_ref env em b in
          emit env em (Ir.Sassign (lref, Ir.Rarith (r, shift)))
      | _ ->
          (* non-pointer arithmetic: simplify both operands to constants
             or variables, so that memory reads appear as explicit basic
             statements (paper section 2) *)
          let oa = lower_operand env em a in
          let ob = lower_operand env em b in
          emit env em (Ir.Sassign (lref, Ir.Rbinop (binop_name op, oa, ob))))
  | Ast.Econd (c, a, b) ->
      let cond, cem = lower_cond env c in
      List.iter (fun s -> em := s :: !em) (List.rev cem);
      let em_t = new_emitter () in
      lower_assign_to env em_t lref lty a;
      let em_e = new_emitter () in
      lower_assign_to env em_e lref lty b;
      emit env em (Ir.Sif (cond, flush em_t, flush em_e))
  | Ast.Eassign (aop, l, r) ->
      lower_assignment env em aop l r;
      let rr = lower_ref env em l in
      if Ctype.su_of env.layouts lty <> None then lower_struct_copy env em lref rr lty
      else emit env em (Ir.Sassign (lref, Ir.Rref rr))
  | Ast.Eincdec (pos, iop, l) -> (
      match pos with
      | Ast.Pre ->
          lower_incdec env em iop l;
          let r = lower_ref env em l in
          emit env em (Ir.Sassign (lref, Ir.Rref r))
      | Ast.Post ->
          let r = lower_ref env em l in
          emit env em (Ir.Sassign (lref, Ir.Rref r));
          lower_incdec env em iop l)

(** Lower a pointer-valued expression to a vref suitable for [Rarith]. *)
and lower_value_ref env em (e : Ast.expr) : Ir.vref =
  match e with
  | Ast.Eident x when not (Ctype.is_array (type_of env e)) -> Ir.var_ref (resolve env x)
  | Ast.Eident _ | Ast.Emember _ | Ast.Earrow _ | Ast.Eindex _ | Ast.Eunary (Ast.Uderef, _) ->
      if Ctype.is_array (type_of env e) then begin
        (* &a[0] + k: materialize the decayed pointer *)
        let v = pointer_var env em e in
        Ir.var_ref v
      end
      else lower_ref env em e
  | _ ->
      let v = pointer_var env em e in
      Ir.var_ref v

(** Expand a struct copy [lref = rref] into per-field assignments of all
    pointer-carrying leaf paths (paper §3.3: "any assignment between
    structures can be handled by breaking down the assignment into
    assignments between corresponding fields"). Array fields copy their
    head and tail locations separately; unions are copied as a single
    location. Fields that cannot carry pointers still contribute one
    summary [Rconst] assignment for statement-count realism. *)
and lower_struct_copy env em (lref : Ir.vref) (rref : Ir.vref) (ty : Ctype.t) : unit =
  let paths = Ctype.pointer_leaf_paths env.layouts ty in
  if paths = [] then emit env em (Ir.Sassign (lref, Ir.Rconst None))
  else
    List.iter
      (fun path ->
        let sel =
          List.concat_map
            (function
              | Ctype.Pfield f -> [ Ir.Sfield f ]
              | Ctype.Phead -> [ Ir.Sindex Ir.Izero ]
              | Ctype.Ptail -> [ Ir.Sindex Ir.Ipos ])
            path
        in
        let l = { lref with Ir.r_path = lref.Ir.r_path @ sel } in
        let r = { rref with Ir.r_path = rref.Ir.r_path @ sel } in
        emit env em (Ir.Sassign (l, Ir.Rref r)))
      paths

(** Lower an assignment expression [l aop= r] for effect. *)
and lower_assignment env em (aop : Ast.binop option) (l : Ast.expr) (r : Ast.expr) : unit =
  let lty = type_of env l in
  match aop with
  | None -> (
      match Ctype.su_of env.layouts lty with
      | Some _ ->
          let lref = lower_ref env em l in
          (* struct source must be an lvalue or a call *)
          (match r with
          | Ast.Ecall (f, args) -> lower_call env em (Some (lref, lty)) f args
          | _ ->
              let rref = lower_ref env em r in
              lower_struct_copy env em lref rref lty)
      | None ->
          let lref = lower_ref env em l in
          lower_assign_to env em lref lty r)
  | Some op -> (
      let lref = lower_ref env em l in
      match (op, Ctype.decay lty) with
      | (Ast.Badd | Ast.Bsub), Ctype.Ptr _ ->
          (* p += k / p -= k *)
          let shift = if op = Ast.Bsub then Ir.Pany else classify_shift r in
          lower_effects env em r;
          emit env em (Ir.Sassign (lref, Ir.Rarith (lref, shift)))
      | _ ->
          (* l op= r reads l: materialize the read, then the update *)
          let ov = read_operand env em lref lty in
          let orr = lower_operand env em r in
          emit env em (Ir.Sassign (lref, Ir.Rbinop (binop_name op, ov, orr))))

(** Read the value of a cell through a reference, yielding an operand
    (a plain variable or the reference's base if already simple). *)
and read_operand env em (lref : Ir.vref) (lty : Ctype.t) : Ir.operand =
  if Ir.is_plain_var lref then Ir.Oref lref
  else begin
    let t = fresh_temp env (Ctype.decay lty) in
    emit env em (Ir.Sassign (Ir.var_ref t, Ir.Rref lref));
    Ir.Oref (Ir.var_ref t)
  end

and lower_incdec env em (iop : Ast.incdec_op) (l : Ast.expr) : unit =
  let lty = Ctype.decay (type_of env l) in
  let lref = lower_ref env em l in
  match lty with
  | Ctype.Ptr _ ->
      let shift = match iop with Ast.Inc -> Ir.Ppos | Ast.Dec -> Ir.Pany in
      emit env em (Ir.Sassign (lref, Ir.Rarith (lref, shift)))
  | _ ->
      let ov = read_operand env em lref lty in
      let name = match iop with Ast.Inc -> "+" | Ast.Dec -> "-" in
      emit env em (Ir.Sassign (lref, Ir.Rbinop (name, ov, Ir.Oconst (Some 1L))))

(** Lower a call, assigning the result to [dst] when given. *)
and lower_call env em (dst : (Ir.vref * Ctype.t) option) (f : Ast.expr) (args : Ast.expr list) :
    unit =
  (* malloc family: only when the name is not a program-defined variable *)
  let direct_name =
    match f with
    | Ast.Eident x -> (
        match var_type env x with
        | None | Some (Ctype.Func _) -> Some x
        | Some _ -> None)
    | _ -> None
  in
  match direct_name with
  | Some name when is_malloc_like env name ->
      List.iter (lower_effects env em) args;
      (match dst with
      | Some (lref, _) -> emit env em (Ir.Sassign (lref, Ir.Rmalloc))
      | None -> ())
  | _ ->
      let fsig = callee_sig env f in
      let callee =
        (* note: no decay here — a bare function type means a direct call *)
        match type_of_callee env f with
        | Ctype.Func _ -> (
            match f with
            | Ast.Eident x -> Ir.Cdirect x
            | Ast.Eunary (Ast.Uderef, b) ->
                (* ( *fp )() is fp(): the deref of a function pointer *)
                Ir.Cindirect (readable_fnptr env em b)
            | _ -> err env "unsupported callee expression")
        | Ctype.Ptr (Ctype.Func _) -> Ir.Cindirect (readable_fnptr env em f)
        | t -> err env "call of non-function (type %s)" (Ctype.to_string t)
      in
      let param_tys = match fsig with Some s -> s.Ctype.params | None -> [] in
      let rec lower_args args tys acc =
        match args with
        | [] -> List.rev acc
        | a :: rest ->
            let expected, tys' = match tys with t :: ts -> (Some t, ts) | [] -> (None, []) in
            let op = lower_operand ?expected env em a in
            lower_args rest tys' (op :: acc)
      in
      let ops = lower_args args param_tys [] in
      let lhs =
        match dst with
        | None -> None
        | Some (lref, lty) ->
            if Ir.is_plain_var lref then Some (lref, lty, true)
            else
              let t = fresh_temp env lty in
              Some (Ir.var_ref t, lty, false)
      in
      (match lhs with
      | None -> emit env em (Ir.Scall (None, callee, ops))
      | Some (r, _, _) -> emit env em (Ir.Scall (Some r, callee, ops)));
      (* copy through the temp when the destination was complex *)
      match (lhs, dst) with
      | Some (r, lty, false), Some (lref, _) ->
          if Ctype.su_of env.layouts lty <> None then lower_struct_copy env em lref r lty
          else emit env em (Ir.Sassign (lref, Ir.Rref r))
      | _ -> ()

(** Lower the callee expression of an indirect call: a reference whose
    r-value is the function pointer. Dereferences applied to a function
    type are dropped ("( *fp )()" is "fp()"). *)
and readable_fnptr env em (e : Ast.expr) : Ir.vref =
  match e with
  | Ast.Eident x -> Ir.var_ref (resolve env x)
  | Ast.Emember _ | Ast.Earrow _ | Ast.Eindex _ | Ast.Eunary (Ast.Uderef, _) ->
      lower_ref env em e
  | Ast.Ecast (_, b) -> readable_fnptr env em b
  | _ -> Ir.var_ref (pointer_var env em e)

(** Lower an expression purely for its side effects. *)
and lower_effects env em (e : Ast.expr) : unit =
  match e with
  | Ast.Eint _ | Ast.Efloat _ | Ast.Echar _ | Ast.Estr _ | Ast.Eident _
  | Ast.Esizeof_type _ | Ast.Esizeof_expr _ ->
      ()
  | Ast.Eassign (aop, l, r) -> lower_assignment env em aop l r
  | Ast.Eincdec (_, iop, l) -> lower_incdec env em iop l
  | Ast.Ecall (f, args) -> lower_call env em None f args
  | Ast.Ecomma (a, b) ->
      lower_effects env em a;
      lower_effects env em b
  | Ast.Ecast (_, b) | Ast.Eunary (_, b) | Ast.Emember (b, _) | Ast.Earrow (b, _) ->
      lower_effects env em b
  | Ast.Ebinary ((Ast.Bland | Ast.Blor), _, _) | Ast.Econd (_, _, _) ->
      if not (expr_is_pure e) then begin
        (* short-circuit with impure operands: restructure via a temp *)
        let t = fresh_temp env (Ctype.Int Ctype.Iint) in
        lower_bool env em t e
      end
  | Ast.Ebinary (_, a, b) | Ast.Eindex (a, b) ->
      lower_effects env em a;
      lower_effects env em b

(** Lower [t = bool(e)] preserving short-circuit evaluation order. *)
and lower_bool env em (t : string) (e : Ast.expr) : unit =
  match e with
  | Ast.Ebinary (Ast.Bland, a, b) ->
      lower_bool env em t a;
      let em_t = new_emitter () in
      lower_bool env em_t t b;
      emit env em (Ir.Sif (Ir.Cval (Ir.Oref (Ir.var_ref t)), flush em_t, []))
  | Ast.Ebinary (Ast.Blor, a, b) ->
      lower_bool env em t a;
      let em_e = new_emitter () in
      lower_bool env em_e t b;
      emit env em (Ir.Sif (Ir.Cval (Ir.Oref (Ir.var_ref t)), [], flush em_e))
  | Ast.Eunary (Ast.Ulnot, a) -> lower_bool env em t a
  | Ast.Econd (c, a, b) ->
      let cond, cem = lower_cond env c in
      List.iter (fun s -> em := s :: !em) (List.rev cem);
      let em_t = new_emitter () in
      lower_bool env em_t t a;
      let em_e = new_emitter () in
      lower_bool env em_e t b;
      emit env em (Ir.Sif (cond, flush em_t, flush em_e))
  | _ ->
      let o = lower_operand env em e in
      emit env em (Ir.Sassign (Ir.var_ref t, Ir.Rbinop ("!=", o, Ir.Oconst (Some 0L))))

(** Lower a condition expression to a side-effect-free SIMPLE condition,
    returning the preparatory statements separately (so that loops can
    re-run them on the back edge). *)
and lower_cond env (e : Ast.expr) : Ir.cond * Ir.stmt list =
  let em = new_emitter () in
  let rec go (e : Ast.expr) : Ir.cond =
    match e with
    | Ast.Ebinary (Ast.Bland, a, b) when expr_is_pure e -> Ir.Cand (go a, go b)
    | Ast.Ebinary (Ast.Blor, a, b) when expr_is_pure e -> Ir.Cor (go a, go b)
    | Ast.Eunary (Ast.Ulnot, a) -> Ir.Cnot (go a)
    | Ast.Ebinary ((Ast.Blt | Ast.Bgt | Ast.Ble | Ast.Bge | Ast.Beq | Ast.Bne) as op, a, b) ->
        let name =
          match op with
          | Ast.Blt -> "<"
          | Ast.Bgt -> ">"
          | Ast.Ble -> "<="
          | Ast.Bge -> ">="
          | Ast.Beq -> "=="
          | Ast.Bne -> "!="
          | _ -> assert false
        in
        let ta = type_of env a and tb = type_of env b in
        let oa = lower_operand ~expected:tb env em a in
        let ob = lower_operand ~expected:ta env em b in
        Ir.Cop (name, oa, ob)
    | Ast.Ebinary ((Ast.Bland | Ast.Blor), _, _) | Ast.Econd _ ->
        (* impure short-circuit: restructure through a boolean temp *)
        let t = fresh_temp env (Ctype.Int Ctype.Iint) in
        lower_bool env em t e;
        Ir.Cval (Ir.Oref (Ir.var_ref t))
    | _ ->
        let op = lower_operand env em e in
        Ir.Cval op
  in
  let c = go e in
  (c, flush em)

(* ------------------------------------------------------------------ *)
(* Lowering statements                                                *)
(* ------------------------------------------------------------------ *)

let rec lower_init env em (lref : Ir.vref) (ty : Ctype.t) (init : Ast.init) : unit =
  match (init, ty) with
  | Ast.Iexpr e, _ -> lower_assign_to env em lref ty e
  | Ast.Ilist items, Ctype.Array (elt, _) ->
      List.iteri
        (fun i item ->
          let idx = if i = 0 then Ir.Izero else Ir.Ipos in
          lower_init env em
            { lref with Ir.r_path = lref.Ir.r_path @ [ Ir.Sindex idx ] }
            elt item)
        items
  | Ast.Ilist items, Ctype.Su (Ctype.Struct_su, tag) -> (
      match Hashtbl.find_opt env.layouts tag with
      | None -> err env "initializer for struct with unknown layout '%s'" tag
      | Some l ->
          let rec zip fields items =
            match (fields, items) with
            | _, [] -> ()
            | [], _ :: _ -> err env "too many initializers for struct %s" tag
            | (f, ft) :: fs, item :: rest ->
                lower_init env em
                  { lref with Ir.r_path = lref.Ir.r_path @ [ Ir.Sfield f ] }
                  ft item;
                zip fs rest
          in
          zip l.Ctype.fields items)
  | Ast.Ilist [ item ], _ -> lower_init env em lref ty item
  | Ast.Ilist _, _ -> err env "brace initializer for scalar"

let rec lower_stmt env em (s : Ast.stmt) : unit =
  env.cur_loc <- s.Ast.s_loc;
  match s.Ast.s_desc with
  | Ast.Sexpr e -> lower_effects env em e
  | Ast.Sdecl d -> (
      let resolved = declare_local env d.Ast.d_name d.Ast.d_ty in
      match d.Ast.d_init with
      | None -> ()
      | Some init -> lower_init env em (Ir.var_ref resolved) d.Ast.d_ty init)
  | Ast.Sif (c, t, e) ->
      let cond, pre = lower_cond env c in
      List.iter (fun st -> em := st :: !em) pre;
      let em_t = new_emitter () in
      lower_block env em_t t;
      let em_e = new_emitter () in
      lower_block env em_e e;
      emit env em (Ir.Sif (cond, flush em_t, flush em_e))
  | Ast.Swhile (c, body) ->
      let cond, pre = lower_cond env c in
      let em_b = new_emitter () in
      lower_block env em_b body;
      emit env em
        (Ir.Sloop
           { Ir.l_kind = `While; l_cond_stmts = pre; l_cond = cond; l_step = []; l_body = flush em_b })
  | Ast.Sdo (body, c) ->
      let cond, pre = lower_cond env c in
      let em_b = new_emitter () in
      lower_block env em_b body;
      emit env em
        (Ir.Sloop
           { Ir.l_kind = `Do; l_cond_stmts = pre; l_cond = cond; l_step = []; l_body = flush em_b })
  | Ast.Sfor (init, c, step, body) ->
      (match init with Some e -> lower_effects env em e | None -> ());
      let cond, pre =
        match c with
        | Some c -> lower_cond env c
        | None -> (Ir.Cval (Ir.Oconst (Some 1L)), [])
      in
      let em_s = new_emitter () in
      (match step with Some e -> lower_effects env em_s e | None -> ());
      let em_b = new_emitter () in
      lower_block env em_b body;
      emit env em
        (Ir.Sloop
           {
             Ir.l_kind = `For;
             l_cond_stmts = pre;
             l_cond = cond;
             l_step = flush em_s;
             l_body = flush em_b;
           })
  | Ast.Sswitch (e, groups) ->
      let scrut = lower_operand env em e in
      let groups =
        List.map
          (fun (g : Ast.stmt Ast.switch_group) ->
            let em_g = new_emitter () in
            lower_block env em_g g.Ast.sg_body;
            { Ir.g_cases = g.Ast.sg_cases; g_default = g.Ast.sg_default; g_body = flush em_g })
          groups
      in
      emit env em (Ir.Sswitch (scrut, groups))
  | Ast.Sbreak -> emit env em Ir.Sbreak
  | Ast.Scontinue -> emit env em Ir.Scontinue
  | Ast.Sreturn None -> emit env em (Ir.Sreturn None)
  | Ast.Sreturn (Some e) ->
      let op = lower_operand ~expected:env.ret_ty env em e in
      emit env em (Ir.Sreturn (Some op))
  | Ast.Sblock b -> lower_block_into env em b

and lower_block env em (stmts : Ast.stmt list) : unit =
  push_scope env;
  List.iter (lower_stmt env em) stmts;
  pop_scope env

(** Lower a nested block, flattening its statements into the enclosing
    emitter (SIMPLE has no block statement). *)
and lower_block_into env em (stmts : Ast.stmt list) : unit =
  push_scope env;
  List.iter (lower_stmt env em) stmts;
  pop_scope env

(* ------------------------------------------------------------------ *)
(* Program assembly                                                   *)
(* ------------------------------------------------------------------ *)

let reset_function_state env ret_ty =
  Hashtbl.reset env.locals;
  env.local_order <- [];
  env.scopes <- [];
  env.temp_counter <- 0;
  env.ret_ty <- ret_ty

let lower_func env (globals_init : Ast.decl list) (f : Ast.func_def) : Ir.func =
  reset_function_state env f.Ast.f_ret;
  env.cur_loc <- f.Ast.f_loc;
  List.iter (fun (n, t) -> Hashtbl.replace env.locals n t) f.Ast.f_params;
  let em = new_emitter () in
  (* paper §2: variable initializations move from declarations into the
     body of the appropriate procedure; global initializers run at the
     start of main *)
  if String.equal f.Ast.f_name "main" then
    List.iter
      (fun (d : Ast.decl) ->
        match d.Ast.d_init with
        | None -> ()
        | Some init ->
            env.cur_loc <- d.Ast.d_loc;
            lower_init env em (Ir.var_ref d.Ast.d_name) d.Ast.d_ty init)
      globals_init;
  env.cur_loc <- f.Ast.f_loc;
  lower_block env em f.Ast.f_body;
  {
    Ir.fn_name = f.Ast.f_name;
    fn_ret = f.Ast.f_ret;
    fn_params = f.Ast.f_params;
    fn_locals = List.rev env.local_order;
    fn_body = flush em;
    fn_variadic = f.Ast.f_variadic;
  }

(** Lower a full C program to SIMPLE. *)
let program (p : Ast.program) : Ir.program =
  let env = make_env p in
  let funcs = List.map (lower_func env p.Ast.p_globals) p.Ast.p_funcs in
  {
    Ir.globals = List.map (fun (d : Ast.decl) -> (d.Ast.d_name, d.Ast.d_ty)) p.Ast.p_globals;
    funcs;
    layouts = p.Ast.p_layouts;
    protos = p.Ast.p_protos @ env.implicit_protos;
    n_stmts = env.stmt_id;
  }

(** Convenience: parse and simplify in one step. *)
let of_string ?file s = program (Parser.parse_string ?file s)

let of_file path = program (Parser.parse_file path)
