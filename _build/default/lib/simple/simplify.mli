(** Simplification: lowering the C AST to SIMPLE (paper §2).

    Complex statements become sequences of basic statements with at most
    one level of indirection per reference; call arguments become
    constants or variables; conditions become side-effect free (with
    hoisted evaluation statements re-run on loop back edges);
    initializations move into statement position; struct copies expand
    field-wise. *)

(** Raised on constructs outside the supported subset, with a source
    location (e.g. calls of non-functions, non-lvalue assignments). *)
exception Unsupported of Cfront.Srcloc.t * string

(** Lower a parsed C program. *)
val program : Cfront.Ast.program -> Ir.program

(** Parse and lower C source text.
    @raise Cfront.Srcloc.Error on lexing/parsing errors.
    @raise Unsupported on unsupported constructs. *)
val of_string : ?file:string -> string -> Ir.program

val of_file : string -> Ir.program
