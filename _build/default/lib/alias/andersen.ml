(** Andersen-style inclusion-based points-to analysis.

    Flow- and context-insensitive, field-insensitive, subset-constraint
    based, solved with a standard worklist. More precise than
    {!Steensgaard}, still far below the paper's context-sensitive
    analysis; the second ablation baseline (DESIGN.md, ABL4). *)

module NodeSet = Set.Make (struct
  type t = Cells.node

  let compare = Stdlib.compare
end)

type t = {
  pts : (Cells.node, NodeSet.t) Hashtbl.t;
  succ : (Cells.node, NodeSet.t) Hashtbl.t;  (** copy edges: src -> dsts *)
  loads : (Cells.node, NodeSet.t) Hashtbl.t;  (** x in loads(y): x ⊇ *y *)
  stores : (Cells.node, NodeSet.t) Hashtbl.t;  (** y in stores(x): *x ⊇ y *)
  mutable worklist : Cells.node list;
  info : Cells.program_info;
}

let get tbl n = Option.value ~default:NodeSet.empty (Hashtbl.find_opt tbl n)

let add_to tbl n x =
  let s = get tbl n in
  if NodeSet.mem x s then false
  else begin
    Hashtbl.replace tbl n (NodeSet.add x s);
    true
  end

let push t n = t.worklist <- n :: t.worklist

let add_pts t n x = if add_to t.pts n x then push t n

let add_edge t src dst =
  if add_to t.succ src dst then begin
    (* propagate existing points-to facts along the new edge *)
    let moved = NodeSet.fold (fun x acc -> add_to t.pts dst x || acc) (get t.pts src) false in
    if moved then push t dst
  end

let make info =
  {
    pts = Hashtbl.create 128;
    succ = Hashtbl.create 128;
    loads = Hashtbl.create 32;
    stores = Hashtbl.create 32;
    worklist = [];
    info;
  }

let apply_assign t (lhs : Cells.access) (v : Cells.value) =
  match (lhs, v) with
  | Cells.Abase x, Cells.Vaddr y -> add_pts t x y
  | Cells.Abase x, Cells.Vcopy (Cells.Abase y) -> add_edge t y x
  | Cells.Abase x, Cells.Vcopy (Cells.Aderef y) ->
      ignore (add_to t.loads y x);
      (* resolve against current solution *)
      NodeSet.iter (fun z -> add_edge t z x) (get t.pts y)
  | Cells.Aderef x, Cells.Vaddr y ->
      NodeSet.iter (fun z -> add_pts t z y) (get t.pts x);
      ignore (add_to t.stores x y)
      (* note: Vaddr stores need re-resolution as pts(x) grows; we keep y
         in stores with a marker edge via a synthetic node *)
  | Cells.Aderef x, Cells.Vcopy (Cells.Abase y) ->
      ignore (add_to t.stores x y);
      NodeSet.iter (fun z -> add_edge t y z) (get t.pts x)
  | Cells.Aderef x, Cells.Vcopy (Cells.Aderef y) ->
      (* *x = *y: introduce a temporary t: t = *y; *x = t *)
      let tmp = Cells.Nvar (Printf.sprintf "<sa:%s:%s>" (Cells.node_name x) (Cells.node_name y)) in
      ignore (add_to t.loads y tmp);
      NodeSet.iter (fun z -> add_edge t z tmp) (get t.pts y);
      ignore (add_to t.stores x tmp);
      NodeSet.iter (fun z -> add_edge t tmp z) (get t.pts x)
  | _, Cells.Vnone -> ()

(* For [*x = &y] we model the address value with a synthetic node that
   points to y and flows into *x. *)
let apply_assign t lhs v =
  match (lhs, v) with
  | Cells.Aderef x, Cells.Vaddr y ->
      let tmp = Cells.Nvar (Printf.sprintf "<ad:%s>" (Cells.node_name y)) in
      add_pts t tmp y;
      ignore (add_to t.stores x tmp);
      NodeSet.iter (fun z -> add_edge t tmp z) (get t.pts x)
  | _ -> apply_assign t lhs v

type result = { solver : t }

let run (prog : Simple_ir.Ir.program) : result =
  let info, constraints = Cells.extract prog in
  let t = make info in
  let resolved_calls : (int * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let apply_call ~callee ~args ~lhs =
    List.iter
      (fun (l, v) -> apply_assign t l v)
      (Cells.call_assignments info ~callee ~args ~lhs)
  in
  let indirect_calls = ref [] in
  List.iteri
    (fun i c ->
      match c with
      | Cells.Cassign (l, v) -> apply_assign t l v
      | Cells.Ccall { callee = `Direct f; args; lhs; _ } -> apply_call ~callee:f ~args ~lhs
      | Cells.Ccall { callee = `Indirect a; args; lhs; _ } ->
          indirect_calls := (i, a, args, lhs) :: !indirect_calls)
    constraints;
  (* worklist solving, interleaved with indirect-call resolution *)
  let continue_ = ref true in
  while !continue_ do
    (match t.worklist with
    | n :: rest ->
        t.worklist <- rest;
        let p = get t.pts n in
        (* copy edges *)
        NodeSet.iter
          (fun dst ->
            let moved = NodeSet.fold (fun x acc -> add_to t.pts dst x || acc) p false in
            if moved then push t dst)
          (get t.succ n);
        (* loads: x = *n *)
        NodeSet.iter (fun x -> NodeSet.iter (fun z -> add_edge t z x) p) (get t.loads n);
        (* stores: *n = y *)
        NodeSet.iter (fun y -> NodeSet.iter (fun z -> add_edge t y z) p) (get t.stores n)
    | [] ->
        (* try to resolve indirect calls with the current solution *)
        let progressed = ref false in
        List.iter
          (fun (i, a, args, lhs) ->
            let fp_targets =
              match a with
              | Cells.Abase n -> get t.pts n
              | Cells.Aderef n ->
                  NodeSet.fold
                    (fun z acc -> NodeSet.union acc (get t.pts z))
                    (get t.pts n) NodeSet.empty
            in
            NodeSet.iter
              (function
                | Cells.Nfun f when Hashtbl.mem info.Cells.defined f ->
                    if not (Hashtbl.mem resolved_calls (i, f)) then begin
                      Hashtbl.replace resolved_calls (i, f) ();
                      apply_call ~callee:f ~args ~lhs;
                      progressed := true
                    end
                | _ -> ())
              fp_targets)
          !indirect_calls;
        if (not !progressed) && t.worklist = [] then continue_ := false);
    if t.worklist = [] && !continue_ then ()
  done;
  { solver = t }

let targets (r : result) (node : Cells.node) : Cells.node list =
  NodeSet.elements (get r.solver.pts node)

(** Average number of targets per pointer variable with any. *)
let avg_targets (r : result) : float =
  let total = ref 0 and count = ref 0 in
  Hashtbl.iter
    (fun node s ->
      match node with
      | Cells.Nvar name
        when (not (String.length name >= 1 && name.[0] = '<')) && not (NodeSet.is_empty s) ->
          total := !total + NodeSet.cardinal s;
          incr count
      | _ -> ())
    r.solver.pts;
  if !count = 0 then 0. else float_of_int !total /. float_of_int !count
