lib/alias/andersen.ml: Cells Hashtbl List Option Printf Set Simple_ir Stdlib String
