lib/alias/pairs.ml: Fmt List Option Pointsto String
