lib/alias/cells.ml: Fmt Hashtbl List Option Simple_ir
