lib/alias/callgraph.mli: Pointsto Simple_ir
