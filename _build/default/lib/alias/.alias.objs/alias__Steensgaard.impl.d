lib/alias/steensgaard.ml: Array Cells Hashtbl List Printf Simple_ir
