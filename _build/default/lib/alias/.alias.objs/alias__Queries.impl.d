lib/alias/queries.ml: Cfront List Pointsto Simple_ir
