lib/alias/callgraph.ml: Hashtbl List Option Pointsto Simple_ir
