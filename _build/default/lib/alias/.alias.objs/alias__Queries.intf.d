lib/alias/queries.mli: Pointsto Simple_ir
