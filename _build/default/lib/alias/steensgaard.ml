(** Steensgaard-style unification-based points-to analysis.

    Almost-linear-time, flow- and context-insensitive, field-insensitive:
    each equivalence class of locations (ECR) has at most one pointed-to
    class, and assignments unify the classes of the two sides. Used as an
    ablation baseline against the paper's analysis (DESIGN.md, ABL4). *)

type t = {
  ids : (Cells.node, int) Hashtbl.t;
  mutable nodes : Cells.node array;  (** id -> node *)
  mutable parent : int array;
  mutable pts : int option array;  (** root -> pointed-to class *)
  mutable n : int;
  info : Cells.program_info;
}

let ensure_capacity t =
  if t.n >= Array.length t.parent then begin
    let cap = max 64 (2 * Array.length t.parent) in
    let parent = Array.init cap (fun i -> i) in
    Array.blit t.parent 0 parent 0 (Array.length t.parent);
    t.parent <- parent;
    let pts = Array.make cap None in
    Array.blit t.pts 0 pts 0 (Array.length t.pts);
    t.pts <- pts;
    let nodes = Array.make cap Cells.Nheap in
    Array.blit t.nodes 0 nodes 0 (Array.length t.nodes);
    t.nodes <- nodes
  end

(** Id of a node, interning it on first use. *)
let id_of t node =
  match Hashtbl.find_opt t.ids node with
  | Some i -> i
  | None ->
      ensure_capacity t;
      let i = t.n in
      t.n <- t.n + 1;
      t.nodes.(i) <- node;
      Hashtbl.replace t.ids node i;
      i

(** Fresh anonymous class (for lazily created points-to targets). *)
let fresh t =
  ensure_capacity t;
  let i = t.n in
  t.n <- t.n + 1;
  t.nodes.(i) <- Cells.Nvar (Printf.sprintf "<anon%d>" i);
  i

let rec find t i =
  if t.parent.(i) = i then i
  else begin
    let r = find t t.parent.(i) in
    t.parent.(i) <- r;
    r
  end

(** The pointed-to class of class [i], created on demand. *)
let rec pts_of t i =
  let i = find t i in
  match t.pts.(i) with
  | Some p -> find t p
  | None ->
      let p = fresh t in
      t.pts.(find t i) <- Some p;
      pts_of t i

let rec union t a b =
  let a = find t a and b = find t b in
  if a <> b then begin
    t.parent.(a) <- b;
    (* unify pointed-to classes recursively *)
    match (t.pts.(a), t.pts.(b)) with
    | None, _ -> ()
    | Some pa, None -> t.pts.(b) <- Some pa
    | Some pa, Some pb -> union t pa pb
  end

let make info =
  {
    ids = Hashtbl.create 128;
    nodes = Array.make 64 Cells.Nheap;
    parent = Array.init 64 (fun i -> i);
    pts = Array.make 64 None;
    n = 0;
    info;
  }

(** The class holding the value of an access. *)
let value_class t = function
  | Cells.Abase n -> pts_of t (id_of t n)
  | Cells.Aderef n -> pts_of t (pts_of t (id_of t n))

let apply_assign t (lhs : Cells.access) (v : Cells.value) =
  let lv = value_class t lhs in
  match v with
  | Cells.Vaddr n -> union t lv (id_of t n)
  | Cells.Vcopy a -> union t lv (value_class t a)
  | Cells.Vnone -> ()

(** Defined functions whose node lies in class [c]. *)
let funcs_in_class t c =
  let c = find t c in
  let out = ref [] in
  Hashtbl.iter
    (fun node i ->
      match node with
      | Cells.Nfun f when find t i = c && Hashtbl.mem t.info.Cells.defined f ->
          out := f :: !out
      | _ -> ())
    t.ids;
  !out

type result = {
  solver : t;
  constraints : Cells.cstr list;
}

(** Run the analysis on a SIMPLE program. Indirect calls are resolved
    iteratively against the current solution. *)
let run (prog : Simple_ir.Ir.program) : result =
  let info, constraints = Cells.extract prog in
  let t = make info in
  let apply_call ~callee ~args ~lhs =
    List.iter (fun (l, v) -> apply_assign t l v) (Cells.call_assignments info ~callee ~args ~lhs)
  in
  let resolved : (Cells.cstr * string, unit) Hashtbl.t = Hashtbl.create 32 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (function
        | Cells.Cassign (l, v) -> apply_assign t l v
        | Cells.Ccall { callee = `Direct f; args; lhs; _ } as c ->
            if not (Hashtbl.mem resolved (c, f)) then begin
              Hashtbl.replace resolved (c, f) ();
              changed := true
            end;
            apply_call ~callee:f ~args ~lhs
        | Cells.Ccall { callee = `Indirect a; args; lhs; _ } as c ->
            let fns = funcs_in_class t (value_class t a) in
            List.iter
              (fun f ->
                if not (Hashtbl.mem resolved (c, f)) then begin
                  Hashtbl.replace resolved (c, f) ();
                  changed := true
                end;
                apply_call ~callee:f ~args ~lhs)
              fns)
      constraints
  done;
  { solver = t; constraints }

(** Points-to targets of a node: all interned nodes in its pointed-to
    class. *)
let targets (r : result) (node : Cells.node) : Cells.node list =
  let t = r.solver in
  match Hashtbl.find_opt t.ids node with
  | None -> []
  | Some i ->
      let c = find t (pts_of t i) in
      let out = ref [] in
      Hashtbl.iter (fun n j -> if find t j = c then out := n :: !out) t.ids;
      !out

(** Average number of targets per pointer variable that has any —
    the headline precision metric for the ablation comparison. *)
let avg_targets (r : result) : float =
  let t = r.solver in
  let total = ref 0 and count = ref 0 in
  Hashtbl.iter
    (fun node i ->
      match node with
      | Cells.Nvar _ -> (
          let i = find t i in
          match t.pts.(i) with
          | None -> ()
          | Some _ ->
              let n = List.length (targets r node) in
              if n > 0 then begin
                total := !total + n;
                incr count
              end)
      | Cells.Nheap | Cells.Nstr | Cells.Nfun _ -> ())
    t.ids;
  if !count = 0 then 0. else float_of_int !total /. float_of_int !count
