(** Deriving traditional alias pairs from points-to information
    (paper §7.1, Figures 8 and 9).

    An alias pair relates two access paths — a variable dereferenced
    zero or more times — that may refer to the same location. Points-to
    sets imply alias pairs by transitive closure: every chain of
    points-to edges from the base of a path to a location contributes a
    path reaching that location, and two distinct paths reaching the
    same location are aliases.

    This module exists to reproduce the paper's comparison with the
    Landi/Ryder alias-pair representation: the closure can introduce
    spurious pairs that a direct alias computation would not report
    (Figure 9) and vice versa (Figure 8). *)

module Pts = Pointsto.Pts
module Loc = Pointsto.Loc

(** An access path: [derefs] applications of [*] to a location name. *)
type path = { base : Loc.t; derefs : int }

let pp_path ppf p =
  Fmt.pf ppf "%s%a" (String.concat "" (List.init p.derefs (fun _ -> "*"))) Loc.pp p.base

type pair = path * path

let pp_pair ppf ((a, b) : pair) = Fmt.pf ppf "<%a,%a>" pp_path a pp_path b

(** All paths of at most [max_derefs] dereferences reaching each location
    under points-to set [s]. *)
let reaching_paths ?(max_derefs = 3) (s : Pts.t) : path list Loc.Map.t =
  (* start: every location reached by itself with 0 derefs *)
  let init =
    Loc.Set.fold
      (fun l acc -> Loc.Map.add l [ { base = l; derefs = 0 } ] acc)
      (Pts.all_locs s) Loc.Map.empty
  in
  (* iterate: if src points to tgt, any path reaching src with one more
     deref reaches tgt *)
  let step m =
    Pts.fold
      (fun src tgt _ m ->
        let src_paths = Option.value ~default:[] (Loc.Map.find_opt src m) in
        let tgt_paths = Option.value ~default:[] (Loc.Map.find_opt tgt m) in
        let extended =
          List.filter_map
            (fun p ->
              if p.derefs < max_derefs then
                let p' = { p with derefs = p.derefs + 1 } in
                if List.mem p' tgt_paths then None else Some p'
              else None)
            src_paths
        in
        if extended = [] then m else Loc.Map.add tgt (tgt_paths @ extended) m)
      s m
  in
  let rec fix m =
    let m' = step m in
    if Loc.Map.equal (fun a b -> List.length a = List.length b) m m' then m else fix m'
  in
  fix init

(** Alias pairs implied by a points-to set: two distinct access paths
    reaching the same location, at least one of them a dereference.
    NULL and function locations are excluded. *)
let of_pts ?max_derefs (s : Pts.t) : pair list =
  let m = reaching_paths ?max_derefs s in
  Loc.Map.fold
    (fun l paths acc ->
      if Loc.is_null l || Loc.is_fun l then acc
      else
        let rec pairs = function
          | [] -> []
          | p :: rest ->
              List.filter_map
                (fun q ->
                  if (p.derefs = 0 && q.derefs = 0) || p = q then None else Some (p, q))
                rest
              @ pairs rest
        in
        pairs paths @ acc)
    m []

let pp ppf pairs = Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any " ") pp_pair) pairs
