(** Call-graph construction strategies in the presence of function
    pointers (paper §5–6, the 'livc' study): the precise points-to-based
    binding versus the naive (all functions) and address-taken
    approximations, compared by invocation-graph size. *)

module Ir = Simple_ir.Ir

type strategy =
  | Precise  (** the paper's integrated algorithm *)
  | Naive  (** every defined function *)
  | Address_taken  (** every function whose address is taken *)

val strategy_name : strategy -> string

(** Call sites of a function: statement id plus resolution kind. *)
val sites_of : Ir.program -> Ir.func -> (int * [ `Direct of string | `Indirect ]) list

(** Invocation-graph node count when indirect sites bind to a fixed
    target list (DFS with the same recursion cutting as the real
    builder). *)
val ig_size_with : Ir.program -> entry:string -> indirect_targets:string list -> int

(** Invocation-graph size under a strategy ([Precise] runs the actual
    analysis). *)
val ig_size : ?entry:string -> Ir.program -> strategy -> int

(** Functions bound to each indirect call site under a strategy (the
    paper reports 24 / 82 / 72 for livc). *)
val indirect_fanout : ?entry:string -> Ir.program -> strategy -> int list

(** The call multigraph (caller, callee) edges of an analyzed invocation
    graph. *)
val edges_of_result : Pointsto.Analysis.result -> (string * string) list
