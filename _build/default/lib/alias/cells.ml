(** Shared constraint extraction for the flow-insensitive baseline
    analyses (Steensgaard, Andersen).

    Both baselines are field-insensitive and context-insensitive: every
    variable collapses to one node (qualified by its owning function),
    the heap is one node, and all statements of the program contribute
    constraints regardless of control flow. This is deliberately the
    "cheap end" of the precision spectrum, used as an ablation comparator
    for the paper's context-sensitive analysis. *)

module Ir = Simple_ir.Ir

type node =
  | Nvar of string  (** qualified variable: "fn::x" for locals, "x" for globals *)
  | Nheap
  | Nstr
  | Nfun of string

let node_name = function
  | Nvar s -> s
  | Nheap -> "<heap>"
  | Nstr -> "<str>"
  | Nfun f -> "fn:" ^ f

let pp_node ppf n = Fmt.string ppf (node_name n)

type access =
  | Abase of node  (** x *)
  | Aderef of node  (** *x *)

type value =
  | Vaddr of node  (** &x, malloc, "..." *)
  | Vcopy of access  (** x or *x *)
  | Vnone  (** constants *)

type cstr =
  | Cassign of access * value
  | Ccall of {
      caller : string;
      callee : [ `Direct of string | `Indirect of access ];
      args : value list;
      lhs : access option;
    }

type program_info = {
  prog : Ir.program;
  defined : (string, Ir.func) Hashtbl.t;
}

let ret_node f = Nvar (f ^ "::$ret")
let param_node f p = Nvar (f ^ "::" ^ p)

let make_info (prog : Ir.program) =
  let defined = Hashtbl.create 32 in
  List.iter (fun f -> Hashtbl.replace defined f.Ir.fn_name f) prog.Ir.funcs;
  { prog; defined }

(** Resolve a base name within [fn]: local/param -> qualified node,
    global -> plain node, function name -> function node. *)
let base_node info (fn : Ir.func) name : node =
  if List.mem_assoc name fn.Ir.fn_params || List.mem_assoc name fn.Ir.fn_locals then
    Nvar (fn.Ir.fn_name ^ "::" ^ name)
  else if List.mem_assoc name info.prog.Ir.globals then Nvar name
  else if Hashtbl.mem info.defined name then Nfun name
  else if List.mem_assoc name info.prog.Ir.protos then Nfun name
  else Nvar name

let access_of_vref info fn (r : Ir.vref) : access =
  let n = base_node info fn r.Ir.r_base in
  if r.Ir.r_deref then Aderef n else Abase n

let value_of_operand info fn (op : Ir.operand) : value =
  match op with
  | Ir.Oref r -> (
      match access_of_vref info fn r with
      | Abase (Nfun f) -> Vaddr (Nfun f)
      | a -> Vcopy a)
  | Ir.Oconst _ | Ir.Onull -> Vnone
  | Ir.Ostr -> Vaddr Nstr

let value_of_rhs info fn (rhs : Ir.rhs) : value =
  match rhs with
  | Ir.Rref r | Ir.Rarith (r, _) -> (
      match access_of_vref info fn r with
      | Abase (Nfun f) -> Vaddr (Nfun f)
      | a -> Vcopy a)
  | Ir.Raddr r ->
      (* &x is the address of the base node; & *p copies p *)
      if r.Ir.r_deref then Vcopy (Abase (base_node info fn r.Ir.r_base))
      else Vaddr (base_node info fn r.Ir.r_base)
  | Ir.Rconst _ | Ir.Rnull | Ir.Rbinop _ | Ir.Runop _ -> Vnone
  | Ir.Rstr -> Vaddr Nstr
  | Ir.Rmalloc -> Vaddr Nheap

(** Extract the constraints of a whole program. *)
let extract (prog : Ir.program) : program_info * cstr list =
  let info = make_info prog in
  let out = ref [] in
  let emit c = out := c :: !out in
  List.iter
    (fun fn ->
      Ir.fold_func
        (fun () s ->
          match s.Ir.s_desc with
          | Ir.Sassign (l, rhs) ->
              emit (Cassign (access_of_vref info fn l, value_of_rhs info fn rhs))
          | Ir.Scall (lhs, callee, args) ->
              let callee =
                match callee with
                | Ir.Cdirect f -> `Direct f
                | Ir.Cindirect r -> `Indirect (access_of_vref info fn r)
              in
              emit
                (Ccall
                   {
                     caller = fn.Ir.fn_name;
                     callee;
                     args = List.map (value_of_operand info fn) args;
                     lhs = Option.map (access_of_vref info fn) lhs;
                   })
          | Ir.Sreturn (Some op) ->
              emit (Cassign (Abase (ret_node fn.Ir.fn_name), value_of_operand info fn op))
          | Ir.Sif _ | Ir.Sloop _ | Ir.Sswitch _ | Ir.Sbreak | Ir.Scontinue
          | Ir.Sreturn None ->
              ())
        () fn)
    prog.Ir.funcs;
  (info, List.rev !out)

(** Lower a resolved call into parameter/return copy constraints. *)
let call_assignments info ~(callee : string) ~(args : value list) ~(lhs : access option) :
    (access * value) list =
  match Hashtbl.find_opt info.defined callee with
  | None -> (
      (* external: result conservatively points to the heap *)
      match lhs with Some l -> [ (l, Vaddr Nheap) ] | None -> [])
  | Some fd ->
      let params = fd.Ir.fn_params in
      let rec zip ps args acc =
        match (ps, args) with
        | [], _ | _, [] -> acc
        | (p, _) :: ps, a :: args ->
            zip ps args ((Abase (param_node callee p), a) :: acc)
      in
      let acc = zip params args [] in
      let acc =
        match lhs with
        | Some l -> (l, Vcopy (Abase (ret_node callee))) :: acc
        | None -> acc
      in
      acc
