(** Call-graph construction strategies in the presence of function
    pointers (paper §5–6, the 'livc' study).

    Three ways to bind an indirect call site to callees:

    - [Precise]: the points-to analysis itself — the invocable functions
      are exactly those the function pointer can point to at the site
      (the paper's integrated algorithm);
    - [Naive]: every function defined in the program;
    - [Address_taken]: every function whose address is taken somewhere.

    For the two approximations the invocation-graph size is computed by
    the same DFS-with-recursion-cutting used by the real graph builder,
    so the node counts are directly comparable (livc: 203 precise vs 619
    naive vs 589 address-taken in the paper). *)

module Ir = Simple_ir.Ir
module Ig = Pointsto.Invocation_graph

type strategy =
  | Precise
  | Naive
  | Address_taken

let strategy_name = function
  | Precise -> "points-to (precise)"
  | Naive -> "all functions (naive)"
  | Address_taken -> "address-taken"

(** Call sites of a function: statement id plus how to resolve it. *)
let sites_of (prog : Ir.program) (fn : Ir.func) : (int * [ `Direct of string | `Indirect ]) list
    =
  List.rev
    (Ir.fold_func
       (fun acc s ->
         match s.Ir.s_desc with
         | Ir.Scall (_, Ir.Cdirect f, _) when Ir.is_defined prog f ->
             (s.Ir.s_id, `Direct f) :: acc
         | Ir.Scall (_, Ir.Cindirect _, _) -> (s.Ir.s_id, `Indirect) :: acc
         | _ -> acc)
       [] fn)

(** Size (node count) of the invocation graph built with a fixed rule for
    indirect sites: DFS from the entry, one node per invocation context,
    recursion cut with an approximate node exactly as in
    {!Pointsto.Invocation_graph.grow}. *)
let ig_size_with (prog : Ir.program) ~(entry : string) ~(indirect_targets : string list) : int
    =
  let rec count path fname =
    let n = 1 in
    match Ir.find_func prog fname with
    | None -> n
    | Some fn ->
        List.fold_left
          (fun acc (_, site) ->
            let targets =
              match site with `Direct f -> [ f ] | `Indirect -> indirect_targets
            in
            List.fold_left
              (fun acc callee ->
                if not (Ir.is_defined prog callee) then acc
                else if List.mem callee (fname :: path) then acc + 1 (* approximate leaf *)
                else acc + count (fname :: path) callee)
              acc targets)
          n (sites_of prog fn)
  in
  count [] entry

(** Invocation-graph size under each strategy. [Precise] runs the actual
    analysis and reports its graph; the approximations are counted
    hypothetically. *)
let ig_size ?(entry = "main") (prog : Ir.program) (s : strategy) : int =
  match s with
  | Precise ->
      let r = Pointsto.Analysis.analyze ~entry prog in
      Ig.n_nodes r.Pointsto.Analysis.graph
  | Naive ->
      let all = List.map (fun f -> f.Ir.fn_name) prog.Ir.funcs in
      ig_size_with prog ~entry ~indirect_targets:all
  | Address_taken ->
      ig_size_with prog ~entry ~indirect_targets:(Ir.address_taken_funcs prog)

(** How many functions each strategy binds to each indirect site (the
    paper reports 24 / 82 / 72 for livc). *)
let indirect_fanout ?(entry = "main") (prog : Ir.program) (s : strategy) : int list =
  match s with
  | Naive -> (
      let n = List.length prog.Ir.funcs in
      match
        List.concat_map
          (fun fn ->
            List.filter_map (fun (_, k) -> if k = `Indirect then Some n else None)
              (sites_of prog fn))
          prog.Ir.funcs
      with
      | l -> l)
  | Address_taken ->
      let n = List.length (Ir.address_taken_funcs prog) in
      List.concat_map
        (fun fn ->
          List.filter_map (fun (_, k) -> if k = `Indirect then Some n else None)
            (sites_of prog fn))
        prog.Ir.funcs
  | Precise ->
      let r = Pointsto.Analysis.analyze ~entry prog in
      (* per indirect site: the number of distinct functions bound to it
         anywhere in the invocation graph *)
      let site_targets : (int, string list) Hashtbl.t = Hashtbl.create 16 in
      let indirect_sites =
        List.concat_map
          (fun fn ->
            List.filter_map (fun (id, k) -> if k = `Indirect then Some id else None)
              (sites_of prog fn))
          prog.Ir.funcs
      in
      Ig.fold
        (fun () node ->
          List.iter
            (fun (sid, child) ->
              if List.mem sid indirect_sites then begin
                let old = Option.value ~default:[] (Hashtbl.find_opt site_targets sid) in
                if not (List.mem child.Ig.func old) then
                  Hashtbl.replace site_targets sid (child.Ig.func :: old)
              end)
            node.Ig.children)
        () r.Pointsto.Analysis.graph;
      List.map
        (fun sid -> List.length (Option.value ~default:[] (Hashtbl.find_opt site_targets sid)))
        indirect_sites

(** The call multigraph (caller, callee) edges derivable from an analyzed
    invocation graph — the artifact later interprocedural analyses
    consume (§6.1). *)
let edges_of_result (r : Pointsto.Analysis.result) : (string * string) list =
  let out = ref [] in
  Ig.fold
    (fun () node ->
      List.iter
        (fun ((_ : int), child) ->
          let e = (node.Ig.func, child.Ig.func) in
          if not (List.mem e !out) then out := e :: !out)
        node.Ig.children)
    () r.Pointsto.Analysis.graph;
  List.sort compare !out
