(** May/must-alias queries over points-to results — the interface a
    dependence tester or instruction scheduler asks (paper §6.1: points-to
    results "provide more accurate dependence information").

    Two references may alias at a statement when their L-location sets
    intersect; they must alias when both L-location sets are the same
    single definite, singular location. *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts
module Lval = Pointsto.Lval
module Analysis = Pointsto.Analysis

type verdict =
  | No_alias
  | May_alias
  | Must_alias

let verdict_to_string = function
  | No_alias -> "no-alias"
  | May_alias -> "may-alias"
  | Must_alias -> "must-alias"

(** Does [outer] (an aggregate) contain [inner] as a part? *)
let rec contains (outer : Loc.t) (inner : Loc.t) : bool =
  match inner with
  | Loc.Fld (b, _) | Loc.Head b | Loc.Tail b -> Loc.equal outer b || contains outer b
  | _ -> false

(** Do abstract locations [a] and [b] possibly overlap in memory? Equal,
    or one contained in the other. Siblings (distinct fields of one
    struct, the head and tail of one array) do not overlap. *)
let locs_overlap (a : Loc.t) (b : Loc.t) : bool =
  Loc.equal a b || contains a b || contains b a

(** The aliasing verdict for two references at statement [sid] of
    function [fn]. *)
let refs_alias (res : Analysis.result) (fn : Ir.func) (sid : int) (r1 : Ir.vref)
    (r2 : Ir.vref) : verdict =
  let pts = Analysis.pts_at res sid in
  let tenv = res.Analysis.tenv in
  let l1 = Lval.to_list (Lval.lvals tenv fn pts r1) in
  let l2 = Lval.to_list (Lval.lvals tenv fn pts r2) in
  match (l1, l2) with
  | [ (a, Pts.D) ], [ (b, Pts.D) ] when Loc.equal a b && Loc.singular a -> Must_alias
  | _ ->
      if List.exists (fun (a, _) -> List.exists (fun (b, _) -> locs_overlap a b) l2) l1
      then May_alias
      else No_alias

(** Convenience: parse the references from their printed SIMPLE form is
    not supported; callers construct vrefs directly. This helper answers
    for two plain pointer dereferences [*p] and [*q]. *)
let derefs_alias (res : Analysis.result) (fn : Ir.func) (sid : int) (p : string) (q : string)
    : verdict =
  refs_alias res fn sid (Ir.deref_ref p) (Ir.deref_ref q)

(** All may-alias pairs among the dereferenced pointers of a function, at
    each of their statements — the exhaustive table a dependence pass
    would precompute. *)
let deref_alias_pairs (res : Analysis.result) (fn : Ir.func) :
    (int * string * string * verdict) list =
  let ptr_locals =
    List.filter_map
      (fun (n, ty) ->
        match Cfront.Ctype.decay ty with Cfront.Ctype.Ptr _ -> Some n | _ -> None)
      (fn.Ir.fn_params @ fn.Ir.fn_locals)
  in
  List.rev
    (Ir.fold_func
       (fun acc stmt ->
         match stmt.Ir.s_desc with
         | Ir.Sassign _ | Ir.Scall _ ->
             let rec pairs = function
               | [] -> []
               | p :: rest -> List.map (fun q -> (p, q)) rest @ pairs rest
             in
             List.fold_left
               (fun acc (p, q) ->
                 let v = derefs_alias res fn stmt.Ir.s_id p q in
                 (stmt.Ir.s_id, p, q, v) :: acc)
               acc (pairs ptr_locals)
         | _ -> acc)
       [] fn)
