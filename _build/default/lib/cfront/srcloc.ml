(** Source locations for diagnostics. *)

type t = {
  file : string;
  line : int;
  col : int;
}

let dummy = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let of_lexbuf (lb : Lexing.lexbuf) =
  let p = lb.Lexing.lex_start_p in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1;
  }

let pp ppf t = Fmt.pf ppf "%s:%d:%d" t.file t.line t.col

let to_string t = Fmt.str "%a" pp t

(** Raised on any front-end error (lexing, parsing, type resolution,
    simplification). Carries the location and a message. *)
exception Error of t * string

let error loc fmt = Fmt.kstr (fun msg -> raise (Error (loc, msg))) fmt
