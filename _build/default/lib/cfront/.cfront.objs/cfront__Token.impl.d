lib/cfront/token.ml: Int64 List Printf
