lib/cfront/lexer.ml: Array Buffer Int64 Lexing Srcloc String Token
