lib/cfront/ctype.ml: Fmt Hashtbl List String
