lib/cfront/srcloc.ml: Fmt Lexing
