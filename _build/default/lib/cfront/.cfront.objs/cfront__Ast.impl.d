lib/cfront/ast.ml: Ctype List Option Srcloc String
