lib/cfront/parser.ml: Ast Char Ctype Fun Hashtbl Int64 Lexer Lexing List Printf Srcloc Token
