{
(* Lexer for the C subset. Preprocessor lines (# ...) are skipped: the
   benchmark suite is self-contained and uses no macros, but sources may
   retain #include lines for documentation value. *)

open Token

let error lexbuf fmt =
  Srcloc.error (Srcloc.of_lexbuf lexbuf) fmt

let char_of_escape lexbuf = function
  | 'n' -> '\n'
  | 't' -> '\t'
  | 'r' -> '\r'
  | '0' -> '\000'
  | '\\' -> '\\'
  | '\'' -> '\''
  | '"' -> '"'
  | 'a' -> '\007'
  | 'b' -> '\b'
  | 'f' -> '\012'
  | 'v' -> '\011'
  | c -> error lexbuf "unknown escape sequence '\\%c'" c

let buf = Buffer.create 64
}

let digit = ['0'-'9']
let hex = ['0'-'9' 'a'-'f' 'A'-'F']
let oct = ['0'-'7']
let alpha = ['a'-'z' 'A'-'Z' '_']
let ident = alpha (alpha | digit)*
let int_suffix = ['u' 'U' 'l' 'L']*
let float_suffix = ['f' 'F' 'l' 'L']?
let exp = ['e' 'E'] ['+' '-']? digit+

rule token = parse
  | [' ' '\t' '\r']+        { token lexbuf }
  | '\n'                    { Lexing.new_line lexbuf; token lexbuf }
  | '#' [^ '\n']*           { token lexbuf }
  | "/*"                    { comment lexbuf; token lexbuf }
  | "//" [^ '\n']*          { token lexbuf }
  | "0x" (hex+ as s) int_suffix { INT_LIT (Int64.of_string ("0x" ^ s)) }
  | '0' (oct+ as s) int_suffix  { INT_LIT (Int64.of_string ("0o" ^ s)) }
  | (digit+ as s) int_suffix    { INT_LIT (Int64.of_string s) }
  | (digit+ '.' digit* exp? | digit* '.' digit+ exp? | digit+ exp) float_suffix as s
      { let s = String.sub s 0 (String.length s) in
        let s =
          match s.[String.length s - 1] with
          | 'f' | 'F' | 'l' | 'L' -> String.sub s 0 (String.length s - 1)
          | _ -> s
        in
        FLOAT_LIT (float_of_string s) }
  | '\'' ([^ '\\' '\''] as c) '\''  { CHAR_LIT c }
  | '\'' '\\' (_ as c) '\''         { CHAR_LIT (char_of_escape lexbuf c) }
  | '"'                     { Buffer.clear buf; string_lit lexbuf }
  | ident as s              { Token.of_ident s }
  | "..."                   { ELLIPSIS }
  | "->"                    { ARROW }
  | "++"                    { PLUSPLUS }
  | "--"                    { MINUSMINUS }
  | "<<="                   { SHL_ASSIGN }
  | ">>="                   { SHR_ASSIGN }
  | "<<"                    { SHL }
  | ">>"                    { SHR }
  | "<="                    { LE }
  | ">="                    { GE }
  | "=="                    { EQEQ }
  | "!="                    { NEQ }
  | "&&"                    { AMPAMP }
  | "||"                    { PIPEPIPE }
  | "+="                    { PLUS_ASSIGN }
  | "-="                    { MINUS_ASSIGN }
  | "*="                    { STAR_ASSIGN }
  | "/="                    { SLASH_ASSIGN }
  | "%="                    { PERCENT_ASSIGN }
  | "&="                    { AMP_ASSIGN }
  | "|="                    { PIPE_ASSIGN }
  | "^="                    { CARET_ASSIGN }
  | '('                     { LPAREN }
  | ')'                     { RPAREN }
  | '{'                     { LBRACE }
  | '}'                     { RBRACE }
  | '['                     { LBRACKET }
  | ']'                     { RBRACKET }
  | ';'                     { SEMI }
  | ','                     { COMMA }
  | ':'                     { COLON }
  | '?'                     { QUESTION }
  | '.'                     { DOT }
  | '+'                     { PLUS }
  | '-'                     { MINUS }
  | '*'                     { STAR }
  | '/'                     { SLASH }
  | '%'                     { PERCENT }
  | '&'                     { AMP }
  | '|'                     { PIPE }
  | '^'                     { CARET }
  | '~'                     { TILDE }
  | '!'                     { BANG }
  | '<'                     { LT }
  | '>'                     { GT }
  | '='                     { ASSIGN }
  | eof                     { EOF }
  | _ as c                  { error lexbuf "unexpected character %C" c }

and comment = parse
  | "*/"                    { () }
  | '\n'                    { Lexing.new_line lexbuf; comment lexbuf }
  | eof                     { error lexbuf "unterminated comment" }
  | _                       { comment lexbuf }

and string_lit = parse
  | '"'                     { STR_LIT (Buffer.contents buf) }
  | '\\' (_ as c)           { Buffer.add_char buf (char_of_escape lexbuf c);
                              string_lit lexbuf }
  | '\n'                    { error lexbuf "newline in string literal" }
  | eof                     { error lexbuf "unterminated string literal" }
  | _ as c                  { Buffer.add_char buf c; string_lit lexbuf }
