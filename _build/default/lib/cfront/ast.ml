(** Abstract syntax for the analyzed C subset, as produced by {!Parser}.

    This is a conventional C AST: expressions are unrestricted (arbitrary
    nesting, side effects, calls in operand position); the {!Simple_ir}
    simplification pass lowers it to the SIMPLE form required by the
    points-to analysis. *)

type unop =
  | Uneg  (** -e *)
  | Ubnot  (** ~e *)
  | Ulnot  (** !e *)
  | Uaddr  (** &e *)
  | Uderef  (** *e *)

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Bshl
  | Bshr
  | Blt
  | Bgt
  | Ble
  | Bge
  | Beq
  | Bne
  | Bband  (** bitwise & *)
  | Bbor  (** bitwise | *)
  | Bbxor
  | Bland  (** logical && *)
  | Blor  (** logical || *)

type incdec_pos = Pre | Post
type incdec_op = Inc | Dec

type expr =
  | Eint of int64
  | Efloat of float
  | Echar of char
  | Estr of string
  | Eident of string
  | Eunary of unop * expr
  | Ebinary of binop * expr * expr
  | Eassign of binop option * expr * expr
      (** [Eassign (None, l, r)] is [l = r]; [Eassign (Some op, l, r)] is a
          compound assignment like [l += r]. *)
  | Econd of expr * expr * expr  (** e ? e : e *)
  | Ecall of expr * expr list
  | Eindex of expr * expr  (** e[e] *)
  | Emember of expr * string  (** e.f *)
  | Earrow of expr * string  (** e->f *)
  | Ecast of Ctype.t * expr
  | Esizeof_type of Ctype.t
  | Esizeof_expr of expr
  | Ecomma of expr * expr
  | Eincdec of incdec_pos * incdec_op * expr

type init =
  | Iexpr of expr
  | Ilist of init list  (** brace-enclosed initializer *)

type decl = {
  d_name : string;
  d_ty : Ctype.t;
  d_init : init option;
  d_loc : Srcloc.t;
}

(** One [case]/[default] group of a switch body. Execution falls through
    from group [i] to group [i+1] unless a [break] intervenes. *)
type 'stmt switch_group = {
  sg_cases : int64 list;  (** values of the [case] labels of this group *)
  sg_default : bool;
  sg_body : 'stmt list;
}

type stmt = { s_loc : Srcloc.t; s_desc : stmt_desc }

and stmt_desc =
  | Sexpr of expr
  | Sdecl of decl
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sdo of stmt list * expr
  | Sfor of expr option * expr option * expr option * stmt list
  | Sswitch of expr * stmt switch_group list
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sblock of stmt list

type func_def = {
  f_name : string;
  f_ret : Ctype.t;
  f_params : (string * Ctype.t) list;
  f_variadic : bool;
  f_body : stmt list;
  f_loc : Srcloc.t;
}

type program = {
  p_globals : decl list;  (** in declaration order *)
  p_funcs : func_def list;  (** in definition order *)
  p_layouts : Ctype.layouts;
  p_protos : (string * Ctype.func_sig) list;
      (** declared-but-undefined functions (externals) *)
}

let find_func p name = List.find_opt (fun f -> String.equal f.f_name name) p.p_funcs

let is_defined p name = Option.is_some (find_func p name)

(** Signature of a function: from its definition if present, else from a
    prototype. *)
let func_sig p name : Ctype.func_sig option =
  match find_func p name with
  | Some f ->
      Some { Ctype.ret = f.f_ret; params = List.map snd f.f_params; variadic = f.f_variadic }
  | None -> List.assoc_opt name p.p_protos
