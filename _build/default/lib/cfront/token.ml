(** Lexical tokens for the C subset. *)

type t =
  | INT_LIT of int64
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_VOID
  | KW_CHAR
  | KW_SHORT
  | KW_INT
  | KW_LONG
  | KW_FLOAT
  | KW_DOUBLE
  | KW_SIGNED
  | KW_UNSIGNED
  | KW_CONST
  | KW_VOLATILE
  | KW_STATIC
  | KW_EXTERN
  | KW_REGISTER
  | KW_AUTO
  | KW_STRUCT
  | KW_UNION
  | KW_ENUM
  | KW_TYPEDEF
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_DO
  | KW_FOR
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_GOTO
  | KW_SIZEOF
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | COLON
  | QUESTION
  | DOT
  | ARROW
  | ELLIPSIS
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | PIPE
  | CARET
  | TILDE
  | BANG
  | LT
  | GT
  | LE
  | GE
  | EQEQ
  | NEQ
  | AMPAMP
  | PIPEPIPE
  | SHL
  | SHR
  | PLUSPLUS
  | MINUSMINUS
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | STAR_ASSIGN
  | SLASH_ASSIGN
  | PERCENT_ASSIGN
  | AMP_ASSIGN
  | PIPE_ASSIGN
  | CARET_ASSIGN
  | SHL_ASSIGN
  | SHR_ASSIGN
  | EOF

let keyword_table : (string * t) list =
  [
    ("void", KW_VOID);
    ("char", KW_CHAR);
    ("short", KW_SHORT);
    ("int", KW_INT);
    ("long", KW_LONG);
    ("float", KW_FLOAT);
    ("double", KW_DOUBLE);
    ("signed", KW_SIGNED);
    ("unsigned", KW_UNSIGNED);
    ("const", KW_CONST);
    ("volatile", KW_VOLATILE);
    ("static", KW_STATIC);
    ("extern", KW_EXTERN);
    ("register", KW_REGISTER);
    ("auto", KW_AUTO);
    ("struct", KW_STRUCT);
    ("union", KW_UNION);
    ("enum", KW_ENUM);
    ("typedef", KW_TYPEDEF);
    ("if", KW_IF);
    ("else", KW_ELSE);
    ("while", KW_WHILE);
    ("do", KW_DO);
    ("for", KW_FOR);
    ("switch", KW_SWITCH);
    ("case", KW_CASE);
    ("default", KW_DEFAULT);
    ("break", KW_BREAK);
    ("continue", KW_CONTINUE);
    ("return", KW_RETURN);
    ("goto", KW_GOTO);
    ("sizeof", KW_SIZEOF);
  ]

let of_ident s =
  match List.assoc_opt s keyword_table with Some kw -> kw | None -> IDENT s

let to_string = function
  | INT_LIT n -> Int64.to_string n
  | FLOAT_LIT f -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "%C" c
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_VOID -> "void"
  | KW_CHAR -> "char"
  | KW_SHORT -> "short"
  | KW_INT -> "int"
  | KW_LONG -> "long"
  | KW_FLOAT -> "float"
  | KW_DOUBLE -> "double"
  | KW_SIGNED -> "signed"
  | KW_UNSIGNED -> "unsigned"
  | KW_CONST -> "const"
  | KW_VOLATILE -> "volatile"
  | KW_STATIC -> "static"
  | KW_EXTERN -> "extern"
  | KW_REGISTER -> "register"
  | KW_AUTO -> "auto"
  | KW_STRUCT -> "struct"
  | KW_UNION -> "union"
  | KW_ENUM -> "enum"
  | KW_TYPEDEF -> "typedef"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_DO -> "do"
  | KW_FOR -> "for"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_RETURN -> "return"
  | KW_GOTO -> "goto"
  | KW_SIZEOF -> "sizeof"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | COLON -> ":"
  | QUESTION -> "?"
  | DOT -> "."
  | ARROW -> "->"
  | ELLIPSIS -> "..."
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | BANG -> "!"
  | LT -> "<"
  | GT -> ">"
  | LE -> "<="
  | GE -> ">="
  | EQEQ -> "=="
  | NEQ -> "!="
  | AMPAMP -> "&&"
  | PIPEPIPE -> "||"
  | SHL -> "<<"
  | SHR -> ">>"
  | PLUSPLUS -> "++"
  | MINUSMINUS -> "--"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/="
  | PERCENT_ASSIGN -> "%="
  | AMP_ASSIGN -> "&="
  | PIPE_ASSIGN -> "|="
  | CARET_ASSIGN -> "^="
  | SHL_ASSIGN -> "<<="
  | SHR_ASSIGN -> ">>="
  | EOF -> "<eof>"
