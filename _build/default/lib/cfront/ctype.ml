(** C types for the analyzed subset.

    Types are structural except for struct/union types, which are referred
    to by tag and whose field layouts live in a side table ({!layouts}).
    Typedefs are resolved away by the parser, so they never appear here. *)

type int_kind = Ichar | Ishort | Iint | Ilong
type float_kind = Ffloat | Fdouble

type t =
  | Void
  | Int of int_kind  (** signedness is irrelevant to points-to analysis *)
  | Float of float_kind
  | Ptr of t
  | Array of t * int option  (** element type, optional constant length *)
  | Func of func_sig
  | Su of su_kind * string  (** struct/union by tag *)

and su_kind = Struct_su | Union_su

and func_sig = {
  ret : t;
  params : t list;
  variadic : bool;
}

(** Field layout of one struct or union. *)
type layout = {
  su : su_kind;
  tag : string;
  fields : (string * t) list;
}

(** Side table mapping struct/union tags to layouts. *)
type layouts = (string, layout) Hashtbl.t

let rec equal a b =
  match (a, b) with
  | Void, Void -> true
  | Int k1, Int k2 -> k1 = k2
  | Float k1, Float k2 -> k1 = k2
  | Ptr a, Ptr b -> equal a b
  | Array (a, n1), Array (b, n2) -> equal a b && n1 = n2
  | Func f1, Func f2 ->
      equal f1.ret f2.ret
      && List.length f1.params = List.length f2.params
      && List.for_all2 equal f1.params f2.params
      && f1.variadic = f2.variadic
  | Su (k1, t1), Su (k2, t2) -> k1 = k2 && String.equal t1 t2
  | (Void | Int _ | Float _ | Ptr _ | Array _ | Func _ | Su _), _ -> false

let is_pointer = function Ptr _ -> true | _ -> false
let is_array = function Array _ -> true | _ -> false
let is_func = function Func _ -> true | _ -> false

let is_func_pointer = function Ptr (Func _) -> true | _ -> false

let is_su = function Su _ -> true | _ -> false

(** A type "carries pointers" if assigning a value of this type can
    create or copy points-to relationships: pointers themselves, arrays of
    pointer-carrying elements, and structs/unions with pointer-carrying
    fields. Used to decide which assignments the analysis must model. *)
let rec carries_pointers layouts t =
  match t with
  | Ptr _ -> true
  | Array (elt, _) -> carries_pointers layouts elt
  | Su (_, tag) -> (
      match Hashtbl.find_opt layouts tag with
      | None -> false
      | Some l -> List.exists (fun (_, ft) -> carries_pointers layouts ft) l.fields)
  | Void | Int _ | Float _ | Func _ -> false

(** Decay arrays to pointers and functions to function pointers, as in
    r-value contexts in C. *)
let decay = function
  | Array (elt, _) -> Ptr elt
  | Func _ as f -> Ptr f
  | t -> t

(** Target type of a pointer (after array decay); [None] if not a pointer. *)
let deref = function
  | Ptr t -> Some t
  | Array (t, _) -> Some t
  | Void | Int _ | Float _ | Func _ | Su _ -> None

(** Layout of [t] if it is a struct/union with a known layout. *)
let su_of layouts t =
  match t with Su (_, tag) -> Hashtbl.find_opt layouts tag | _ -> None

(** One step of a path from an aggregate to a contained location. *)
type path_step = Pfield of string | Phead | Ptail

(** Paths from a value of type [t] to its pointer-carrying leaf
    locations. Array members contribute separate head and tail paths;
    unions are leaves (collapsed to a single location by the analysis);
    pointers are leaves. Used to expand struct copies field-wise. *)
let rec pointer_leaf_paths layouts (t : t) : path_step list list =
  match t with
  | Ptr _ -> [ [] ]
  | Array (elt, _) ->
      if carries_pointers layouts elt then
        let sub = pointer_leaf_paths layouts elt in
        List.map (fun p -> Phead :: p) sub @ List.map (fun p -> Ptail :: p) sub
      else []
  | Su (Union_su, _) -> if carries_pointers layouts t then [ [] ] else []
  | Su (Struct_su, tag) -> (
      match Hashtbl.find_opt layouts tag with
      | None -> []
      | Some l ->
          List.concat_map
            (fun (f, ft) ->
              List.map (fun p -> Pfield f :: p) (pointer_leaf_paths layouts ft))
            l.fields)
  | Void | Int _ | Float _ | Func _ -> []

let field_type layouts t fname =
  match t with
  | Su (_, tag) -> (
      match Hashtbl.find_opt layouts tag with
      | None -> None
      | Some l -> List.assoc_opt fname l.fields)
  | Void | Int _ | Float _ | Ptr _ | Array _ | Func _ -> None

let rec pp ppf t =
  match t with
  | Void -> Fmt.string ppf "void"
  | Int Ichar -> Fmt.string ppf "char"
  | Int Ishort -> Fmt.string ppf "short"
  | Int Iint -> Fmt.string ppf "int"
  | Int Ilong -> Fmt.string ppf "long"
  | Float Ffloat -> Fmt.string ppf "float"
  | Float Fdouble -> Fmt.string ppf "double"
  | Ptr t -> Fmt.pf ppf "%a*" pp t
  | Array _ as a ->
      (* print dimensions outermost-first, as C spells them *)
      let rec dims acc = function
        | Array (t, n) -> dims (n :: acc) t
        | t -> (t, List.rev acc)
      in
      let elt, ds = dims [] a in
      pp ppf elt;
      List.iter
        (function
          | None -> Fmt.string ppf "[]"
          | Some n -> Fmt.pf ppf "[%d]" n)
        ds
  | Func { ret; params; variadic } ->
      Fmt.pf ppf "%a(%a%s)" pp ret
        (Fmt.list ~sep:(Fmt.any ", ") pp)
        params
        (if variadic then ", ..." else "")
  | Su (Struct_su, tag) -> Fmt.pf ppf "struct %s" tag
  | Su (Union_su, tag) -> Fmt.pf ppf "union %s" tag

let to_string t = Fmt.str "%a" pp t
