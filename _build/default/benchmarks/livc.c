/* livc - a collection of Livermore loops driven through three global
 * arrays of function pointers (paper section 6): 82 functions in all;
 * three arrays each initialized with 24 kernels; three indirect call
 * sites, each inside a loop, calling through a scalar local function
 * pointer first assigned the corresponding array element. */

double data_a[256];
double data_b[256];
double data_c[256];
int loop_count;

double helper_sum(double *v, int n) { int i; double s; s = 0.0; for (i = 0; i < n; i++) s = s + v[i]; return s; }
void helper_fill(double *v, int n, double x) { int i; for (i = 0; i < n; i++) v[i] = x; }
double helper_dot(double *a, double *b, int n) { int i; double s; s = 0.0; for (i = 0; i < n; i++) s = s + a[i] * b[i]; return s; }

double kern_a_0(void) { helper_fill(data_a, 256, 0.0); return helper_sum(data_a, 256); }
double kern_a_1(void) { return helper_dot(data_a, data_a, 128) + 1.0; }
double kern_a_2(void) { int i; for (i = 1; i < 256; i++) data_a[i] = data_a[i-1] * 0.5 + 2.0; return data_a[255]; }
double kern_a_3(void) { helper_fill(data_a, 256, 3.0); return helper_sum(data_a, 256); }
double kern_a_4(void) { return helper_dot(data_a, data_a, 128) + 4.0; }
double kern_a_5(void) { int i; for (i = 1; i < 256; i++) data_a[i] = data_a[i-1] * 0.5 + 5.0; return data_a[255]; }
double kern_a_6(void) { helper_fill(data_a, 256, 6.0); return helper_sum(data_a, 256); }
double kern_a_7(void) { return helper_dot(data_a, data_a, 128) + 7.0; }
double kern_a_8(void) { int i; for (i = 1; i < 256; i++) data_a[i] = data_a[i-1] * 0.5 + 8.0; return data_a[255]; }
double kern_a_9(void) { helper_fill(data_a, 256, 9.0); return helper_sum(data_a, 256); }
double kern_a_10(void) { return helper_dot(data_a, data_a, 128) + 10.0; }
double kern_a_11(void) { int i; for (i = 1; i < 256; i++) data_a[i] = data_a[i-1] * 0.5 + 11.0; return data_a[255]; }
double kern_a_12(void) { helper_fill(data_a, 256, 12.0); return helper_sum(data_a, 256); }
double kern_a_13(void) { return helper_dot(data_a, data_a, 128) + 13.0; }
double kern_a_14(void) { int i; for (i = 1; i < 256; i++) data_a[i] = data_a[i-1] * 0.5 + 14.0; return data_a[255]; }
double kern_a_15(void) { helper_fill(data_a, 256, 15.0); return helper_sum(data_a, 256); }
double kern_a_16(void) { return helper_dot(data_a, data_a, 128) + 16.0; }
double kern_a_17(void) { int i; for (i = 1; i < 256; i++) data_a[i] = data_a[i-1] * 0.5 + 17.0; return data_a[255]; }
double kern_a_18(void) { helper_fill(data_a, 256, 18.0); return helper_sum(data_a, 256); }
double kern_a_19(void) { return helper_dot(data_a, data_a, 128) + 19.0; }
double kern_a_20(void) { int i; for (i = 1; i < 256; i++) data_a[i] = data_a[i-1] * 0.5 + 20.0; return data_a[255]; }
double kern_a_21(void) { helper_fill(data_a, 256, 21.0); return helper_sum(data_a, 256); }
double kern_a_22(void) { return helper_dot(data_a, data_a, 128) + 22.0; }
double kern_a_23(void) { int i; for (i = 1; i < 256; i++) data_a[i] = data_a[i-1] * 0.5 + 23.0; return data_a[255]; }

double kern_b_0(void) { helper_fill(data_b, 256, 0.0); return helper_sum(data_b, 256); }
double kern_b_1(void) { return helper_dot(data_b, data_a, 128) + 1.0; }
double kern_b_2(void) { int i; for (i = 1; i < 256; i++) data_b[i] = data_b[i-1] * 0.5 + 2.0; return data_b[255]; }
double kern_b_3(void) { helper_fill(data_b, 256, 3.0); return helper_sum(data_b, 256); }
double kern_b_4(void) { return helper_dot(data_b, data_a, 128) + 4.0; }
double kern_b_5(void) { int i; for (i = 1; i < 256; i++) data_b[i] = data_b[i-1] * 0.5 + 5.0; return data_b[255]; }
double kern_b_6(void) { helper_fill(data_b, 256, 6.0); return helper_sum(data_b, 256); }
double kern_b_7(void) { return helper_dot(data_b, data_a, 128) + 7.0; }
double kern_b_8(void) { int i; for (i = 1; i < 256; i++) data_b[i] = data_b[i-1] * 0.5 + 8.0; return data_b[255]; }
double kern_b_9(void) { helper_fill(data_b, 256, 9.0); return helper_sum(data_b, 256); }
double kern_b_10(void) { return helper_dot(data_b, data_a, 128) + 10.0; }
double kern_b_11(void) { int i; for (i = 1; i < 256; i++) data_b[i] = data_b[i-1] * 0.5 + 11.0; return data_b[255]; }
double kern_b_12(void) { helper_fill(data_b, 256, 12.0); return helper_sum(data_b, 256); }
double kern_b_13(void) { return helper_dot(data_b, data_a, 128) + 13.0; }
double kern_b_14(void) { int i; for (i = 1; i < 256; i++) data_b[i] = data_b[i-1] * 0.5 + 14.0; return data_b[255]; }
double kern_b_15(void) { helper_fill(data_b, 256, 15.0); return helper_sum(data_b, 256); }
double kern_b_16(void) { return helper_dot(data_b, data_a, 128) + 16.0; }
double kern_b_17(void) { int i; for (i = 1; i < 256; i++) data_b[i] = data_b[i-1] * 0.5 + 17.0; return data_b[255]; }
double kern_b_18(void) { helper_fill(data_b, 256, 18.0); return helper_sum(data_b, 256); }
double kern_b_19(void) { return helper_dot(data_b, data_a, 128) + 19.0; }
double kern_b_20(void) { int i; for (i = 1; i < 256; i++) data_b[i] = data_b[i-1] * 0.5 + 20.0; return data_b[255]; }
double kern_b_21(void) { helper_fill(data_b, 256, 21.0); return helper_sum(data_b, 256); }
double kern_b_22(void) { return helper_dot(data_b, data_a, 128) + 22.0; }
double kern_b_23(void) { int i; for (i = 1; i < 256; i++) data_b[i] = data_b[i-1] * 0.5 + 23.0; return data_b[255]; }

double kern_c_0(void) { helper_fill(data_c, 256, 0.0); return helper_sum(data_c, 256); }
double kern_c_1(void) { return helper_dot(data_c, data_a, 128) + 1.0; }
double kern_c_2(void) { int i; for (i = 1; i < 256; i++) data_c[i] = data_c[i-1] * 0.5 + 2.0; return data_c[255]; }
double kern_c_3(void) { helper_fill(data_c, 256, 3.0); return helper_sum(data_c, 256); }
double kern_c_4(void) { return helper_dot(data_c, data_a, 128) + 4.0; }
double kern_c_5(void) { int i; for (i = 1; i < 256; i++) data_c[i] = data_c[i-1] * 0.5 + 5.0; return data_c[255]; }
double kern_c_6(void) { helper_fill(data_c, 256, 6.0); return helper_sum(data_c, 256); }
double kern_c_7(void) { return helper_dot(data_c, data_a, 128) + 7.0; }
double kern_c_8(void) { int i; for (i = 1; i < 256; i++) data_c[i] = data_c[i-1] * 0.5 + 8.0; return data_c[255]; }
double kern_c_9(void) { helper_fill(data_c, 256, 9.0); return helper_sum(data_c, 256); }
double kern_c_10(void) { return helper_dot(data_c, data_a, 128) + 10.0; }
double kern_c_11(void) { int i; for (i = 1; i < 256; i++) data_c[i] = data_c[i-1] * 0.5 + 11.0; return data_c[255]; }
double kern_c_12(void) { helper_fill(data_c, 256, 12.0); return helper_sum(data_c, 256); }
double kern_c_13(void) { return helper_dot(data_c, data_a, 128) + 13.0; }
double kern_c_14(void) { int i; for (i = 1; i < 256; i++) data_c[i] = data_c[i-1] * 0.5 + 14.0; return data_c[255]; }
double kern_c_15(void) { helper_fill(data_c, 256, 15.0); return helper_sum(data_c, 256); }
double kern_c_16(void) { return helper_dot(data_c, data_a, 128) + 16.0; }
double kern_c_17(void) { int i; for (i = 1; i < 256; i++) data_c[i] = data_c[i-1] * 0.5 + 17.0; return data_c[255]; }
double kern_c_18(void) { helper_fill(data_c, 256, 18.0); return helper_sum(data_c, 256); }
double kern_c_19(void) { return helper_dot(data_c, data_a, 128) + 19.0; }
double kern_c_20(void) { int i; for (i = 1; i < 256; i++) data_c[i] = data_c[i-1] * 0.5 + 20.0; return data_c[255]; }
double kern_c_21(void) { helper_fill(data_c, 256, 21.0); return helper_sum(data_c, 256); }
double kern_c_22(void) { return helper_dot(data_c, data_a, 128) + 22.0; }
double kern_c_23(void) { int i; for (i = 1; i < 256; i++) data_c[i] = data_c[i-1] * 0.5 + 23.0; return data_c[255]; }

typedef double (*kernfn)(void);
kernfn table_a[24];
kernfn table_b[24];
kernfn table_c[24];

void init_table_a(void) {
    table_a[0] = kern_a_0;
    table_a[1] = kern_a_1;
    table_a[2] = kern_a_2;
    table_a[3] = kern_a_3;
    table_a[4] = kern_a_4;
    table_a[5] = kern_a_5;
    table_a[6] = kern_a_6;
    table_a[7] = kern_a_7;
    table_a[8] = kern_a_8;
    table_a[9] = kern_a_9;
    table_a[10] = kern_a_10;
    table_a[11] = kern_a_11;
    table_a[12] = kern_a_12;
    table_a[13] = kern_a_13;
    table_a[14] = kern_a_14;
    table_a[15] = kern_a_15;
    table_a[16] = kern_a_16;
    table_a[17] = kern_a_17;
    table_a[18] = kern_a_18;
    table_a[19] = kern_a_19;
    table_a[20] = kern_a_20;
    table_a[21] = kern_a_21;
    table_a[22] = kern_a_22;
    table_a[23] = kern_a_23;
}

void init_table_b(void) {
    table_b[0] = kern_b_0;
    table_b[1] = kern_b_1;
    table_b[2] = kern_b_2;
    table_b[3] = kern_b_3;
    table_b[4] = kern_b_4;
    table_b[5] = kern_b_5;
    table_b[6] = kern_b_6;
    table_b[7] = kern_b_7;
    table_b[8] = kern_b_8;
    table_b[9] = kern_b_9;
    table_b[10] = kern_b_10;
    table_b[11] = kern_b_11;
    table_b[12] = kern_b_12;
    table_b[13] = kern_b_13;
    table_b[14] = kern_b_14;
    table_b[15] = kern_b_15;
    table_b[16] = kern_b_16;
    table_b[17] = kern_b_17;
    table_b[18] = kern_b_18;
    table_b[19] = kern_b_19;
    table_b[20] = kern_b_20;
    table_b[21] = kern_b_21;
    table_b[22] = kern_b_22;
    table_b[23] = kern_b_23;
}

void init_table_c(void) {
    table_c[0] = kern_c_0;
    table_c[1] = kern_c_1;
    table_c[2] = kern_c_2;
    table_c[3] = kern_c_3;
    table_c[4] = kern_c_4;
    table_c[5] = kern_c_5;
    table_c[6] = kern_c_6;
    table_c[7] = kern_c_7;
    table_c[8] = kern_c_8;
    table_c[9] = kern_c_9;
    table_c[10] = kern_c_10;
    table_c[11] = kern_c_11;
    table_c[12] = kern_c_12;
    table_c[13] = kern_c_13;
    table_c[14] = kern_c_14;
    table_c[15] = kern_c_15;
    table_c[16] = kern_c_16;
    table_c[17] = kern_c_17;
    table_c[18] = kern_c_18;
    table_c[19] = kern_c_19;
    table_c[20] = kern_c_20;
    table_c[21] = kern_c_21;
    table_c[22] = kern_c_22;
    table_c[23] = kern_c_23;
}

double drive_a(void) {
    int i;
    double acc;
    kernfn fp;
    acc = 0.0;
    for (i = 0; i < 24; i++) {
        fp = table_a[i];
        acc = acc + fp();
    }
    return acc;
}

double drive_b(void) {
    int i;
    double acc;
    kernfn fp;
    acc = 0.0;
    for (i = 0; i < 24; i++) {
        fp = table_b[i];
        acc = acc + fp();
    }
    return acc;
}

double drive_c(void) {
    int i;
    double acc;
    kernfn fp;
    acc = 0.0;
    for (i = 0; i < 24; i++) {
        fp = table_c[i];
        acc = acc + fp();
    }
    return acc;
}

int main() {
    double total;
    init_table_a();
    init_table_b();
    init_table_c();
    total = drive_a() + drive_b() + drive_c();
    loop_count = 72;
    return total > 0.0;
}
