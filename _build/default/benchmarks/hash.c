/* hash - an implementation of a hash table (paper Table 2).
 * Heap-allocated buckets with chaining; lookups walk bucket lists
 * through indirect references. */

#define NBUCKETS 0

struct entry {
    int key;
    int value;
    struct entry *next;
};

struct entry *buckets[64];
int n_entries;

int hash_key(int key) {
    int h;
    h = key * 31;
    if (h < 0)
        h = -h;
    return h % 64;
}

struct entry *lookup(int key) {
    struct entry *e;
    int h;
    h = hash_key(key);
    e = buckets[h];
    while (e != 0) {
        if (e->key == key)
            return e;
        e = e->next;
    }
    return 0;
}

void insert(int key, int value) {
    struct entry *e;
    int h;
    e = lookup(key);
    if (e != 0) {
        e->value = value;
        return;
    }
    e = (struct entry *) malloc(sizeof(struct entry));
    h = hash_key(key);
    e->key = key;
    e->value = value;
    e->next = buckets[h];
    buckets[h] = e;
    n_entries = n_entries + 1;
}

int remove_key(int key) {
    struct entry *e, *prev;
    int h;
    h = hash_key(key);
    prev = 0;
    e = buckets[h];
    while (e != 0) {
        if (e->key == key) {
            if (prev == 0)
                buckets[h] = e->next;
            else
                prev->next = e->next;
            n_entries = n_entries - 1;
            return 1;
        }
        prev = e;
        e = e->next;
    }
    return 0;
}

int main() {
    struct entry *e;
    int i, sum;
    for (i = 0; i < 100; i++)
        insert(i, i * i);
    sum = 0;
    for (i = 0; i < 100; i++) {
        e = lookup(i);
        if (e != 0)
            sum = sum + e->value;
    }
    for (i = 0; i < 50; i++)
        remove_key(i * 2);
    return sum;
}
