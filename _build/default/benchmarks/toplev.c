/* toplev - the top level of the GNU C compiler (paper Table 2):
 * command-line option dispatch over initialized arrays of pointers
 * (the paper attributes its single >4-target indirect reference to the
 * initialization of an array of pointers), plus pass sequencing. */

struct option {
    char *name;
    int *flag_var;
    int value;
};

int flag_syntax_only;
int flag_inline;
int flag_unroll;
int flag_strength;
int flag_caller_saves;
int optimize_level;
int errorcount;
char *input_name;
char *output_name;
char *dump_names[8];
int n_dumps;

struct option opt_table[5];

void init_options() {
    opt_table[0].name = "syntax-only";
    opt_table[0].flag_var = &flag_syntax_only;
    opt_table[0].value = 1;
    opt_table[1].name = "inline";
    opt_table[1].flag_var = &flag_inline;
    opt_table[1].value = 1;
    opt_table[2].name = "unroll-loops";
    opt_table[2].flag_var = &flag_unroll;
    opt_table[2].value = 1;
    opt_table[3].name = "strength-reduce";
    opt_table[3].flag_var = &flag_strength;
    opt_table[3].value = 1;
    opt_table[4].name = "caller-saves";
    opt_table[4].flag_var = &flag_caller_saves;
    opt_table[4].value = 1;
}

int str_eq(char *a, char *b) {
    while (*a != 0 && *a == *b) {
        a = a + 1;
        b = b + 1;
    }
    return *a == *b;
}

int decode_flag(char *name) {
    int i;
    for (i = 0; i < 5; i++) {
        if (str_eq(name, opt_table[i].name)) {
            *opt_table[i].flag_var = opt_table[i].value;
            return 1;
        }
    }
    return 0;
}

void error(char *msg) {
    errorcount = errorcount + 1;
}

void add_dump(char *name) {
    if (n_dumps < 8) {
        dump_names[n_dumps] = name;
        n_dumps = n_dumps + 1;
    }
}

int compile_pass_parse() {
    if (input_name == 0) {
        error("no input");
        return 0;
    }
    return 1;
}

int compile_pass_optimize() {
    int work;
    work = 0;
    if (flag_inline)
        work = work + 1;
    if (flag_unroll)
        work = work + 2;
    if (flag_strength)
        work = work + 3;
    return work;
}

int compile_pass_emit() {
    if (output_name == 0)
        output_name = "a.out";
    return 1;
}

int compile_file(char *name) {
    input_name = name;
    if (!compile_pass_parse())
        return 1;
    if (flag_syntax_only)
        return 0;
    compile_pass_optimize();
    compile_pass_emit();
    return errorcount != 0;
}

int main(int argc, char **argv) {
    int i, rc;
    char *args[6];
    init_options();
    args[0] = "cc1";
    args[1] = "inline";
    args[2] = "unroll-loops";
    args[3] = "strength-reduce";
    args[4] = "test.c";
    args[5] = 0;
    optimize_level = 2;
    for (i = 1; args[i] != 0; i++) {
        if (!decode_flag(args[i]))
            input_name = args[i];
    }
    add_dump("rtl");
    add_dump("flow");
    rc = compile_file(input_name);
    return rc;
}
