/* travel - the Traveling Salesman Problem with greedy heuristics (paper
 * Table 2): an array of city structs addressed through pointers, a tour
 * as a linked chain over the array, and nearest-neighbour plus 2-opt
 * passes (the paper reports the highest per-ref average, 1.77, from
 * pointers ranging over array elements). */

struct city {
    int x;
    int y;
    struct city *next;
    int visited;
};

struct city cities[32];
struct city *tour_start;
int n_cities;
int rnd_state;

int rnd(int n) {
    rnd_state = rnd_state * 1103515245 + 12345;
    if (rnd_state < 0)
        rnd_state = -rnd_state;
    return rnd_state % n;
}

int dist2(struct city *a, struct city *b) {
    int dx, dy;
    dx = a->x - b->x;
    dy = a->y - b->y;
    return dx * dx + dy * dy;
}

void setup(int n) {
    int i;
    n_cities = n;
    for (i = 0; i < n; i++) {
        cities[i].x = rnd(1000);
        cities[i].y = rnd(1000);
        cities[i].next = 0;
        cities[i].visited = 0;
    }
}

struct city *nearest_unvisited(struct city *from) {
    struct city *best;
    int best_d, i, d;
    best = 0;
    best_d = 0;
    for (i = 0; i < n_cities; i++) {
        struct city *c;
        c = &cities[i];
        if (c->visited || c == from)
            continue;
        d = dist2(from, c);
        if (best == 0 || d < best_d) {
            best = c;
            best_d = d;
        }
    }
    return best;
}

void greedy_tour() {
    struct city *cur, *nxt;
    tour_start = &cities[0];
    cur = tour_start;
    cur->visited = 1;
    while (1) {
        nxt = nearest_unvisited(cur);
        if (nxt == 0)
            break;
        cur->next = nxt;
        nxt->visited = 1;
        cur = nxt;
    }
    cur->next = tour_start;
}

int tour_length() {
    struct city *c;
    int total;
    total = 0;
    c = tour_start;
    do {
        total = total + dist2(c, c->next);
        c = c->next;
    } while (c != tour_start);
    return total;
}

void reverse_segment(struct city *a, struct city *b) {
    /* naive 2-opt style exchange of successors */
    struct city *t;
    t = a->next;
    a->next = b->next;
    b->next = t;
}

int improve() {
    struct city *a, *b;
    int before, after;
    a = tour_start;
    b = a->next->next;
    before = tour_length();
    reverse_segment(a, b);
    after = tour_length();
    if (after >= before) {
        reverse_segment(a, b);
        return 0;
    }
    return 1;
}

int main() {
    int i, improved;
    rnd_state = 7;
    setup(20);
    greedy_tour();
    improved = 0;
    for (i = 0; i < 10; i++)
        improved = improved + improve();
    return tour_length() + improved;
}
