/* dry - the Dhrystone benchmark (paper Table 2): record structures
 * linked through pointers, passed by pointer and by value, plus the
 * classic Proc/Func call mix. */

typedef enum { Ident_1, Ident_2, Ident_3, Ident_4, Ident_5 } Enumeration;

typedef struct record {
    struct record *Ptr_Comp;
    Enumeration Discr;
    Enumeration Enum_Comp;
    int Int_Comp;
    char Str_Comp[31];
} Rec_Type, *Rec_Pointer;

Rec_Pointer Ptr_Glob, Next_Ptr_Glob;
int Int_Glob;
int Bool_Glob;
char Ch_1_Glob, Ch_2_Glob;
int Arr_1_Glob[50];
int Arr_2_Glob[50][50];

void Proc_3(Rec_Pointer *Ptr_Ref_Par) {
    if (Ptr_Glob != 0)
        *Ptr_Ref_Par = Ptr_Glob->Ptr_Comp;
    Ptr_Glob->Int_Comp = 10;
}

void Proc_1(Rec_Pointer Ptr_Val_Par) {
    Rec_Pointer Next_Record;
    Next_Record = Ptr_Val_Par->Ptr_Comp;
    *Ptr_Val_Par->Ptr_Comp = *Ptr_Glob;
    Ptr_Val_Par->Int_Comp = 5;
    Next_Record->Int_Comp = Ptr_Val_Par->Int_Comp;
    Next_Record->Ptr_Comp = Ptr_Val_Par->Ptr_Comp;
    Proc_3(&Next_Record->Ptr_Comp);
    if (Next_Record->Discr == Ident_1) {
        Next_Record->Int_Comp = 6;
        Next_Record->Enum_Comp = Ptr_Val_Par->Enum_Comp;
    } else {
        *Ptr_Val_Par = *Ptr_Val_Par->Ptr_Comp;
    }
}

void Proc_2(int *Int_Par_Ref) {
    int Int_Loc;
    Enumeration Enum_Loc;
    Int_Loc = *Int_Par_Ref + 10;
    Enum_Loc = Ident_1;
    if (Ch_1_Glob == 'A') {
        Int_Loc = Int_Loc - 1;
        *Int_Par_Ref = Int_Loc - Int_Glob;
    }
}

void Proc_4() {
    int Bool_Loc;
    Bool_Loc = Ch_1_Glob == 'A';
    Bool_Glob = Bool_Loc | Bool_Glob;
    Ch_2_Glob = 'B';
}

void Proc_7(int Int_1, int Int_2, int *Int_Out) {
    int Int_Loc;
    Int_Loc = Int_1 + 2;
    *Int_Out = Int_2 + Int_Loc;
}

void Proc_8(int *Arr_1_Par, int Int_1, int Int_2) {
    int Int_Loc, Int_Index;
    Int_Loc = Int_1 + 5;
    Arr_1_Par[Int_Loc] = Int_2;
    Arr_1_Par[Int_Loc + 1] = Arr_1_Par[Int_Loc];
    for (Int_Index = Int_Loc; Int_Index <= Int_Loc + 1; ++Int_Index)
        Arr_2_Glob[Int_Loc][Int_Index] = Int_Loc;
    Int_Glob = 5;
}

int Func_1(char Ch_1, char Ch_2) {
    char Ch_1_Loc, Ch_2_Loc;
    Ch_1_Loc = Ch_1;
    Ch_2_Loc = Ch_1_Loc;
    if (Ch_2_Loc != Ch_2)
        return 0;
    return 1;
}

int Func_2(char *Str_1, char *Str_2) {
    int Int_Loc;
    char Ch_Loc;
    Int_Loc = 2;
    Ch_Loc = Str_1[Int_Loc];
    while (Int_Loc <= 2) {
        if (Func_1(Ch_Loc, 'R') == 1)
            Int_Loc = Int_Loc + 1;
        else
            break;
    }
    if (Str_1[0] == Str_2[0])
        return 1;
    return 0;
}

int main() {
    int Int_1_Loc, Int_2_Loc, Int_3_Loc, Run_Index;
    char Str_1_Loc[31];
    char Str_2_Loc[31];
    Next_Ptr_Glob = (Rec_Pointer) malloc(sizeof(Rec_Type));
    Ptr_Glob = (Rec_Pointer) malloc(sizeof(Rec_Type));
    Ptr_Glob->Ptr_Comp = Next_Ptr_Glob;
    Ptr_Glob->Discr = Ident_1;
    Ptr_Glob->Enum_Comp = Ident_3;
    Ptr_Glob->Int_Comp = 40;
    for (Run_Index = 1; Run_Index <= 100; ++Run_Index) {
        Proc_4();
        Int_1_Loc = 2;
        Int_2_Loc = 3;
        Int_3_Loc = 0;
        if (Func_2(Str_1_Loc, Str_2_Loc) == 0)
            Proc_7(Int_1_Loc, Int_2_Loc, &Int_3_Loc);
        Proc_8(Arr_1_Glob, Int_1_Loc, Int_3_Loc);
        Proc_1(Ptr_Glob);
        Proc_2(&Int_1_Loc);
    }
    return Int_Glob;
}
