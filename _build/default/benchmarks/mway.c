/* mway - a unified version of the best algorithms for m-way
 * partitioning (paper Table 2): graph nodes in global arrays, gain
 * buckets addressed through formal-parameter pointers (the paper
 * reports 31 definite scalar refs, mostly formals pointing to
 * symbolic/global locations). */

struct vertex {
    int weight;
    int part;
    int gain;
    struct vertex *bucket_next;
    struct vertex *bucket_prev;
};

struct bucket {
    struct vertex *head;
    int maxgain;
};

struct vertex vertices[128];
struct bucket buckets[8];
int adjacency[128][8];
int degree[128];
int n_vertices, n_parts;

void bucket_insert(struct bucket *b, struct vertex *v) {
    v->bucket_next = b->head;
    v->bucket_prev = 0;
    if (b->head != 0)
        b->head->bucket_prev = v;
    b->head = v;
    if (v->gain > b->maxgain)
        b->maxgain = v->gain;
}

void bucket_remove(struct bucket *b, struct vertex *v) {
    if (v->bucket_prev != 0)
        v->bucket_prev->bucket_next = v->bucket_next;
    else
        b->head = v->bucket_next;
    if (v->bucket_next != 0)
        v->bucket_next->bucket_prev = v->bucket_prev;
    v->bucket_next = 0;
    v->bucket_prev = 0;
}

struct vertex *best_vertex(struct bucket *b) {
    struct vertex *v, *best;
    best = 0;
    for (v = b->head; v != 0; v = v->bucket_next) {
        if (best == 0 || v->gain > best->gain)
            best = v;
    }
    return best;
}

int compute_gain(struct vertex *v) {
    int i, g, vi;
    g = 0;
    vi = v - vertices;
    for (i = 0; i < degree[vi]; i++) {
        int u;
        u = adjacency[vi][i];
        if (vertices[u].part == v->part)
            g = g - 1;
        else
            g = g + 1;
    }
    return g;
}

void move_vertex(struct vertex *v, int to_part) {
    bucket_remove(&buckets[v->part], v);
    v->part = to_part;
    v->gain = compute_gain(v);
    bucket_insert(&buckets[to_part], v);
}

int pass() {
    int moves, p;
    struct vertex *v;
    moves = 0;
    for (p = 0; p < n_parts; p++) {
        v = best_vertex(&buckets[p]);
        if (v != 0 && v->gain > 0) {
            move_vertex(v, (p + 1) % n_parts);
            moves = moves + 1;
        }
    }
    return moves;
}

void setup(int nv, int np) {
    int i, j;
    n_vertices = nv;
    n_parts = np;
    for (i = 0; i < np; i++) {
        buckets[i].head = 0;
        buckets[i].maxgain = -1000;
    }
    for (i = 0; i < nv; i++) {
        struct vertex *v;
        v = &vertices[i];
        v->weight = 1;
        v->part = i % np;
        degree[i] = 3;
        for (j = 0; j < 3; j++)
            adjacency[i][j] = (i + j + 1) % nv;
        v->gain = compute_gain(v);
        bucket_insert(&buckets[v->part], v);
    }
}

int cut_size() {
    int i, j, cut;
    cut = 0;
    for (i = 0; i < n_vertices; i++) {
        for (j = 0; j < degree[i]; j++) {
            if (vertices[adjacency[i][j]].part != vertices[i].part)
                cut = cut + 1;
        }
    }
    return cut / 2;
}

int main() {
    int iter, moved;
    setup(64, 4);
    for (iter = 0; iter < 10; iter++) {
        moved = pass();
        if (moved == 0)
            break;
    }
    return cut_size();
}
