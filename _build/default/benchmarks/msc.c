/* msc - calculates the minimum spanning circle of a set of n points in
 * the plane (paper Table 2): points allocated on the heap, candidate
 * circles computed through pointer parameters (heap-dominant pointer
 * traffic: the paper reports 35 of 41 pairs to the heap). */

struct point {
    int x;
    int y;
};

struct circle {
    struct point center;
    int r2;
};

struct point *points[64];
int n_points;
int state;

int rnd(int n) {
    state = state * 48271 % 2147483647;
    if (state < 0)
        state = -state;
    return state % n;
}

struct point *new_point(int x, int y) {
    struct point *p;
    p = (struct point *) malloc(sizeof(struct point));
    p->x = x;
    p->y = y;
    return p;
}

int dist2(struct point *a, struct point *b) {
    int dx, dy;
    dx = a->x - b->x;
    dy = a->y - b->y;
    return dx * dx + dy * dy;
}

int inside(struct circle *c, struct point *p) {
    int dx, dy;
    dx = c->center.x - p->x;
    dy = c->center.y - p->y;
    return dx * dx + dy * dy <= c->r2;
}

void circle_from_two(struct point *a, struct point *b, struct circle *out) {
    out->center.x = (a->x + b->x) / 2;
    out->center.y = (a->y + b->y) / 2;
    out->r2 = dist2(a, b) / 4;
}

void min_circle(struct circle *out) {
    int i, j;
    struct circle best;
    struct circle cand;
    best.center.x = 0;
    best.center.y = 0;
    best.r2 = 2000000000;
    for (i = 0; i < n_points; i++) {
        for (j = i + 1; j < n_points; j++) {
            int k, ok;
            circle_from_two(points[i], points[j], &cand);
            ok = 1;
            for (k = 0; k < n_points; k++) {
                if (!inside(&cand, points[k])) {
                    ok = 0;
                    break;
                }
            }
            if (ok && cand.r2 < best.r2)
                best = cand;
        }
    }
    *out = best;
}

int main() {
    int i;
    struct circle result;
    state = 12345;
    n_points = 20;
    for (i = 0; i < n_points; i++)
        points[i] = new_point(rnd(100), rnd(100));
    min_circle(&result);
    return result.r2;
}
