/* genetic - implementation of a genetic algorithm for sorting (paper
 * Table 2). Population of heap-allocated chromosomes manipulated
 * through pointer parameters. */

struct chromosome {
    int genes[16];
    int fitness;
};

struct chromosome *population[32];
struct chromosome *best;
int generation;
int rand_state;

int rnd(int n) {
    rand_state = rand_state * 1103515245 + 12345;
    if (rand_state < 0)
        rand_state = -rand_state;
    return rand_state % n;
}

struct chromosome *new_chromosome() {
    struct chromosome *c;
    int i;
    c = (struct chromosome *) malloc(sizeof(struct chromosome));
    for (i = 0; i < 16; i++)
        c->genes[i] = rnd(100);
    c->fitness = 0;
    return c;
}

void evaluate(struct chromosome *c) {
    int i, score;
    score = 0;
    for (i = 0; i + 1 < 16; i++) {
        if (c->genes[i] <= c->genes[i + 1])
            score = score + 1;
    }
    c->fitness = score;
}

void crossover(struct chromosome *a, struct chromosome *b, struct chromosome *child) {
    int i, cut;
    cut = rnd(16);
    for (i = 0; i < 16; i++) {
        if (i < cut)
            child->genes[i] = a->genes[i];
        else
            child->genes[i] = b->genes[i];
    }
}

void mutate(struct chromosome *c) {
    int i, j, t;
    i = rnd(16);
    j = rnd(16);
    t = c->genes[i];
    c->genes[i] = c->genes[j];
    c->genes[j] = t;
}

struct chromosome *select_parent() {
    struct chromosome *a, *b;
    a = population[rnd(32)];
    b = population[rnd(32)];
    if (a->fitness > b->fitness)
        return a;
    return b;
}

void step_generation() {
    struct chromosome *next[32];
    struct chromosome *pa, *pb, *child;
    int i;
    for (i = 0; i < 32; i++) {
        pa = select_parent();
        pb = select_parent();
        child = new_chromosome();
        crossover(pa, pb, child);
        if (rnd(10) == 0)
            mutate(child);
        evaluate(child);
        next[i] = child;
    }
    for (i = 0; i < 32; i++)
        population[i] = next[i];
    generation = generation + 1;
}

int main() {
    int i, g;
    rand_state = 42;
    for (i = 0; i < 32; i++) {
        population[i] = new_chromosome();
        evaluate(population[i]);
    }
    for (g = 0; g < 20; g++)
        step_generation();
    best = population[0];
    for (i = 1; i < 32; i++) {
        if (population[i]->fitness > best->fitness)
            best = population[i];
    }
    return best->fitness;
}
