/* xref - a cross-reference program to build a tree of items (paper
 * Table 2). Heap binary tree; most pointer traffic is heap-directed
 * (the paper reports 31 of 40 pairs to the heap). */

struct ref {
    int line;
    struct ref *next;
};

struct item {
    char *word;
    struct ref *refs;
    struct item *left;
    struct item *right;
};

struct item *root;
int n_items;

char *save_word(char *w) {
    char *copy;
    copy = (char *) malloc(32);
    return copy;
}

struct item *new_item(char *word, int line) {
    struct item *it;
    struct ref *r;
    it = (struct item *) malloc(sizeof(struct item));
    it->word = save_word(word);
    it->left = 0;
    it->right = 0;
    r = (struct ref *) malloc(sizeof(struct ref));
    r->line = line;
    r->next = 0;
    it->refs = r;
    n_items = n_items + 1;
    return it;
}

int word_cmp(char *a, char *b) {
    while (*a != 0 && *a == *b) {
        a = a + 1;
        b = b + 1;
    }
    return *a - *b;
}

struct item *enter(struct item *node, char *word, int line) {
    int c;
    struct ref *r;
    if (node == 0)
        return new_item(word, line);
    c = word_cmp(word, node->word);
    if (c < 0)
        node->left = enter(node->left, word, line);
    else if (c > 0)
        node->right = enter(node->right, word, line);
    else {
        r = (struct ref *) malloc(sizeof(struct ref));
        r->line = line;
        r->next = node->refs;
        node->refs = r;
    }
    return node;
}

int count_refs(struct item *node) {
    struct ref *r;
    int n;
    if (node == 0)
        return 0;
    n = 0;
    for (r = node->refs; r != 0; r = r->next)
        n = n + 1;
    return n + count_refs(node->left) + count_refs(node->right);
}

int main() {
    char *words[4];
    int i;
    words[0] = "the";
    words[1] = "quick";
    words[2] = "brown";
    words[3] = "fox";
    for (i = 0; i < 20; i++)
        root = enter(root, words[i % 4], i);
    return count_refs(root);
}
