/* misr - creates two MISRs whose values are compared to see if the
 * introduced errors have cancelled themselves (paper Table 2).
 * Two parallel heap-allocated shift-register chains. */

struct cell {
    int bit;
    struct cell *next;
};

struct misr {
    struct cell *first;
    struct cell *last;
    int length;
};

struct misr reg_a, reg_b;
int seed;

int next_random() {
    seed = seed * 1103515245 + 12345;
    return (seed >> 16) & 32767;
}

void init_misr(struct misr *m, int length) {
    struct cell *c;
    int i;
    m->first = 0;
    m->last = 0;
    m->length = length;
    for (i = 0; i < length; i++) {
        c = (struct cell *) malloc(sizeof(struct cell));
        c->bit = 0;
        c->next = m->first;
        m->first = c;
        if (m->last == 0)
            m->last = c;
    }
}

void shift_in(struct misr *m, int bit) {
    struct cell *c;
    int carry;
    carry = bit;
    for (c = m->first; c != 0; c = c->next) {
        int t;
        t = c->bit;
        c->bit = carry ^ (t & 1);
        carry = t;
    }
}

void inject_error(struct misr *m) {
    struct cell *c;
    int pos, i;
    pos = next_random() % m->length;
    c = m->first;
    for (i = 0; i < pos; i++)
        c = c->next;
    c->bit = c->bit ^ 1;
}

int compare(struct misr *x, struct misr *y) {
    struct cell *a, *b;
    a = x->first;
    b = y->first;
    while (a != 0 && b != 0) {
        if (a->bit != b->bit)
            return 0;
        a = a->next;
        b = b->next;
    }
    return a == 0 && b == 0;
}

int main() {
    int i;
    init_misr(&reg_a, 16);
    init_misr(&reg_b, 16);
    for (i = 0; i < 100; i++) {
        int bit;
        bit = next_random() & 1;
        shift_in(&reg_a, bit);
        shift_in(&reg_b, bit);
    }
    inject_error(&reg_a);
    inject_error(&reg_a);
    inject_error(&reg_b);
    inject_error(&reg_b);
    return compare(&reg_a, &reg_b);
}
