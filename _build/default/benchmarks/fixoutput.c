/* fixoutput - a simple translator (paper Table 2): walks an input
 * buffer with char pointers, rewriting runs and escapes into an output
 * buffer. */

char inbuf[1024];
char outbuf[2048];
int in_len;

char *emit(char *out, char c) {
    *out = c;
    return out + 1;
}

char *emit_escaped(char *out, char c) {
    out = emit(out, '\\');
    out = emit(out, c);
    return out;
}

int is_special(char c) {
    return c == '\\' || c == '"' || c == '\n' || c == '\t';
}

int translate() {
    char *in, *out, *end;
    in = inbuf;
    out = outbuf;
    end = inbuf + in_len;
    while (in < end) {
        char c;
        c = *in;
        if (is_special(c))
            out = emit_escaped(out, c);
        else
            out = emit(out, c);
        in = in + 1;
    }
    *out = 0;
    return out - outbuf;
}

void fill_input() {
    int i;
    for (i = 0; i < 100; i++)
        inbuf[i] = (char) ('a' + i % 26);
    inbuf[10] = '\\';
    inbuf[20] = '"';
    inbuf[30] = '\n';
    in_len = 100;
}

int main() {
    int n;
    fill_input();
    n = translate();
    return n;
}
