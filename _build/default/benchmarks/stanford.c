/* stanford - the Stanford "baby benchmarks" (paper Table 2): Perm,
 * Towers, Queens, Quicksort, Bubble, Trees — array- and recursion-heavy
 * kernels with pointer-passed arrays (the paper reports many definite
 * relationships for array-form references here). */

int permarray[11];
int pctr;

int sortlist[512];
int biggest, littlest;
int seed;

struct node {
    struct node *left, *right;
    int val;
};
struct node *tree;

/* ---- Perm ---- */

void swap_elems(int *a, int *b) {
    int t;
    t = *a;
    *a = *b;
    *b = t;
}

void permute(int n) {
    pctr = pctr + 1;
    if (n != 1) {
        int k;
        permute(n - 1);
        for (k = n - 1; k >= 1; k--) {
            swap_elems(&permarray[n], &permarray[k]);
            permute(n - 1);
            swap_elems(&permarray[n], &permarray[k]);
        }
    }
}

/* ---- Towers ---- */

int stackp[4];
int cellspace_next[19];
int cellspace_disc[19];
int freelist;
int movesdone;

int getelement() {
    int temp;
    temp = freelist;
    freelist = cellspace_next[freelist];
    return temp;
}

void push(int i, int s) {
    int el;
    el = getelement();
    cellspace_next[el] = stackp[s];
    cellspace_disc[el] = i;
    stackp[s] = el;
}

int pop(int s) {
    int result, temp;
    result = cellspace_disc[stackp[s]];
    temp = cellspace_next[stackp[s]];
    cellspace_next[stackp[s]] = freelist;
    freelist = stackp[s];
    stackp[s] = temp;
    return result;
}

void towers_move(int s1, int s2) {
    push(pop(s1), s2);
    movesdone = movesdone + 1;
}

void tower(int i, int j, int k) {
    if (k == 1)
        towers_move(i, j);
    else {
        int other;
        other = 6 - i - j;
        tower(i, other, k - 1);
        towers_move(i, j);
        tower(other, j, k - 1);
    }
}

/* ---- Quicksort ---- */

int rand_next() {
    seed = (seed * 1309 + 13849) & 65535;
    return seed;
}

void initarr(int *arr, int n) {
    int i;
    biggest = 0;
    littlest = 0;
    for (i = 1; i <= n; i++) {
        arr[i] = rand_next() - 32768;
        if (arr[i] > biggest)
            biggest = arr[i];
        else if (arr[i] < littlest)
            littlest = arr[i];
    }
}

void quicksort(int *a, int l, int r) {
    int i, j, x, w;
    i = l;
    j = r;
    x = a[(l + r) / 2];
    do {
        while (a[i] < x)
            i = i + 1;
        while (x < a[j])
            j = j - 1;
        if (i <= j) {
            w = a[i];
            a[i] = a[j];
            a[j] = w;
            i = i + 1;
            j = j - 1;
        }
    } while (i <= j);
    if (l < j)
        quicksort(a, l, j);
    if (i < r)
        quicksort(a, i, r);
}

/* ---- Trees ---- */

struct node *newnode(int v) {
    struct node *n;
    n = (struct node *) malloc(sizeof(struct node));
    n->left = 0;
    n->right = 0;
    n->val = v;
    return n;
}

void tree_insert(struct node *t, int v) {
    while (1) {
        if (v < t->val) {
            if (t->left == 0) {
                t->left = newnode(v);
                return;
            }
            t = t->left;
        } else {
            if (t->right == 0) {
                t->right = newnode(v);
                return;
            }
            t = t->right;
        }
    }
}

int tree_check(struct node *t) {
    if (t == 0)
        return 1;
    if (t->left != 0 && t->left->val >= t->val)
        return 0;
    if (t->right != 0 && t->right->val < t->val)
        return 0;
    return tree_check(t->left) && tree_check(t->right);
}

int main() {
    int i;
    /* Perm */
    pctr = 0;
    for (i = 0; i <= 10; i++)
        permarray[i] = i;
    permute(6);
    /* Towers */
    for (i = 1; i < 19; i++)
        cellspace_next[i] = i - 1;
    freelist = 18;
    for (i = 1; i <= 3; i++)
        stackp[i] = 0;
    for (i = 10; i >= 1; i--)
        push(i, 1);
    tower(1, 2, 10);
    /* Quicksort */
    seed = 74755;
    initarr(sortlist, 500);
    quicksort(sortlist, 1, 500);
    /* Trees */
    seed = 74755;
    tree = newnode(rand_next());
    for (i = 0; i < 100; i++)
        tree_insert(tree, rand_next());
    return tree_check(tree) + movesdone + pctr;
}
