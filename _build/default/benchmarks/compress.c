/* compress - the UNIX compress utility (paper Table 2): LZW-style
 * compression over global code tables, with char pointers walking
 * input/output buffers and a heap-allocated stack for decompression. */

int htab[1024];
int codetab[1024];
char inbuf[4096];
char outbuf[4096];
int in_len;
int free_ent;
int n_bits;

char *de_stack;
int stack_top;

int get_code(char **pp) {
    char *p;
    int code;
    p = *pp;
    code = *p & 255;
    p = p + 1;
    *pp = p;
    return code;
}

void put_code(char **pp, int code) {
    char *p;
    p = *pp;
    *p = (char) code;
    *pp = p + 1;
}

void cl_hash() {
    int i;
    for (i = 0; i < 1024; i++)
        htab[i] = -1;
    free_ent = 257;
}

int find_entry(int prefix, int c) {
    int h;
    h = (prefix ^ (c << 4)) % 1024;
    while (htab[h] != -1) {
        if (codetab[h] == ((prefix << 8) | c))
            return h;
        h = (h + 1) % 1024;
    }
    return -h - 1;
}

int compress_buf() {
    char *in, *out, *end;
    int prefix, c, h, produced;
    cl_hash();
    in = inbuf;
    out = outbuf;
    end = inbuf + in_len;
    prefix = get_code(&in);
    while (in < end) {
        c = get_code(&in);
        h = find_entry(prefix, c);
        if (h >= 0) {
            prefix = htab[h];
        } else {
            put_code(&out, prefix);
            h = -h - 1;
            if (free_ent < 1024) {
                htab[h] = free_ent;
                codetab[h] = (prefix << 8) | c;
                free_ent = free_ent + 1;
            }
            prefix = c;
        }
    }
    put_code(&out, prefix);
    produced = out - outbuf;
    return produced;
}

int decompress_buf(int n_codes) {
    char *in, *out;
    int i, code;
    de_stack = (char *) malloc(4096);
    stack_top = 0;
    in = outbuf;
    out = inbuf;
    for (i = 0; i < n_codes; i++) {
        code = get_code(&in);
        while (code > 255) {
            de_stack[stack_top] = (char) (codetab[code % 1024] & 255);
            stack_top = stack_top + 1;
            code = codetab[code % 1024] >> 8;
        }
        de_stack[stack_top] = (char) code;
        stack_top = stack_top + 1;
        while (stack_top > 0) {
            stack_top = stack_top - 1;
            put_code(&out, de_stack[stack_top] & 255);
        }
    }
    return out - inbuf;
}

int main() {
    int i, n, m;
    for (i = 0; i < 1000; i++)
        inbuf[i] = (char) ('a' + (i * 7) % 16);
    in_len = 1000;
    n = compress_buf();
    m = decompress_buf(n);
    return n + m;
}
