/* csuite - part of a test suite for vectorizing C compilers (paper
 * Table 2): many small kernels, each called exactly once from main (the
 * paper reports 36 call sites, 36 functions, Avgc = Avgf = 1.00). */

int a_arr[256];
int b_arr[256];
int c_arr[256];
int d_arr[256];
int s_result;

void k01(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) a[i] = b[i]; }
void k02(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] + 1; }
void k03(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] * 2; }
void k04(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) a[i] = b[n - 1 - i]; }
void k05(int *a, int *b, int n) { int i; for (i = 1; i < n; i++) a[i] = a[i - 1] + b[i]; }
void k06(int *a, int n) { int i; for (i = 0; i < n; i++) a[i] = i; }
void k07(int *a, int n) { int i; for (i = 0; i < n; i++) a[i] = a[i] & 255; }
void k08(int *a, int *b, int *c, int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] + c[i]; }
void k09(int *a, int *b, int *c, int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] - c[i]; }
void k10(int *a, int *b, int *c, int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] * c[i]; }
int k11(int *a, int n) { int i, s; s = 0; for (i = 0; i < n; i++) s = s + a[i]; return s; }
int k12(int *a, int n) { int i, m; m = a[0]; for (i = 1; i < n; i++) { if (a[i] > m) m = a[i]; } return m; }
int k13(int *a, int n) { int i, m; m = a[0]; for (i = 1; i < n; i++) { if (a[i] < m) m = a[i]; } return m; }
int k14(int *a, int *b, int n) { int i, s; s = 0; for (i = 0; i < n; i++) s = s + a[i] * b[i]; return s; }
void k15(int *a, int s, int n) { int i; for (i = 0; i < n; i++) a[i] = a[i] * s; }
void k16(int *a, int *b, int n) { int i; for (i = 0; i < n; i += 2) a[i] = b[i]; }
void k17(int *a, int *b, int n) { int i; for (i = n - 1; i >= 0; i--) a[i] = b[i]; }
void k18(int *a, int n) { int i; for (i = 0; i < n - 1; i++) a[i] = a[i + 1]; }
void k19(int *a, int n) { int i; for (i = n - 1; i > 0; i--) a[i] = a[i - 1]; }
int k20(int *a, int n, int key) { int i; for (i = 0; i < n; i++) { if (a[i] == key) return i; } return -1; }
void k21(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) { if (b[i] > 0) a[i] = b[i]; } }
void k22(int *a, int n) { int i, j; for (i = 0; i < n; i++) { for (j = 0; j < i; j++) a[i] = a[i] + 1; } }
void k23(int *a, int *b, int n) { int i; for (i = 0; i < n / 2; i++) a[i] = b[i * 2]; }
void k24(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) a[i] = b[i] >> 1; }
void k25(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) a[i] = -b[i]; }
int k26(int *a, int n) { int i, c; c = 0; for (i = 0; i < n; i++) { if (a[i] == 0) c = c + 1; } return c; }
void k27(int *a, int v, int n) { int i; for (i = 0; i < n; i++) a[i] = v; }
void k28(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) { int t; t = a[i]; a[i] = b[i]; b[i] = t; } }
int k29(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) { if (a[i] != b[i]) return 0; } return 1; }
void k30(int *a, int n) { int i; for (i = 0; i < n; i++) { if (a[i] < 0) a[i] = 0; } }
void k31(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) a[b[i] & 255 & (n - 1)] = i; }
void k32(int *a, int *b, int n) { int i; for (i = 0; i < n; i++) a[i] = b[a[i] & (n - 1)]; }
int k33(int *a, int n) { int i, p; p = 1; for (i = 0; i < n; i++) { if (a[i] != 0) p = p * (a[i] & 7); } return p; }
void k34(int *a, int n) { int i; for (i = 0; i < n; i++) a[i] = a[i] ^ (i & 15); }
int k35(int *a, int n) { int i, alt; alt = 0; for (i = 0; i < n; i++) { if (i % 2 == 0) alt = alt + a[i]; else alt = alt - a[i]; } return alt; }
int k36(int *a, int *b, int n) { int i, s; s = 0; for (i = 0; i < n; i++) { if (a[i] > b[i]) s = s + 1; } return s; }

int main() {
    int n;
    n = 256;
    k06(a_arr, n);
    k01(b_arr, a_arr, n);
    k02(c_arr, a_arr, n);
    k03(d_arr, a_arr, n);
    k04(a_arr, b_arr, n);
    k05(b_arr, c_arr, n);
    k07(c_arr, n);
    k08(a_arr, b_arr, c_arr, n);
    k09(b_arr, c_arr, d_arr, n);
    k10(c_arr, d_arr, a_arr, n);
    s_result = k11(a_arr, n);
    s_result = s_result + k12(b_arr, n);
    s_result = s_result + k13(c_arr, n);
    s_result = s_result + k14(a_arr, b_arr, n);
    k15(d_arr, 3, n);
    k16(a_arr, d_arr, n);
    k17(b_arr, a_arr, n);
    k18(c_arr, n);
    k19(d_arr, n);
    s_result = s_result + k20(a_arr, n, 7);
    k21(b_arr, c_arr, n);
    k22(c_arr, 16);
    k23(d_arr, a_arr, n);
    k24(a_arr, b_arr, n);
    k25(b_arr, c_arr, n);
    s_result = s_result + k26(d_arr, n);
    k27(a_arr, 5, n);
    k28(b_arr, c_arr, n);
    s_result = s_result + k29(a_arr, d_arr, n);
    k30(b_arr, n);
    k31(c_arr, a_arr, n);
    k32(d_arr, b_arr, n);
    s_result = s_result + k33(c_arr, n);
    k34(d_arr, n);
    s_result = s_result + k35(a_arr, n);
    s_result = s_result + k36(b_arr, c_arr, n);
    return s_result;
}
