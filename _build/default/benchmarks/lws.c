/* lws - dynamic simulation of a flexible water molecule (paper Table
 * 2): large global arrays of molecule records; kernels receive the
 * arrays through formal parameters (array-to-pointer decay), so nearly
 * every relationship runs from a formal parameter to a global location
 * and the per-reference average stays close to 1 (the paper reports
 * avg 1.01, with 428 pairs from formals into globals/symbolics). */

typedef struct {
    double x, y, z;
} vector;

typedef struct {
    vector pos[3];
    vector vel[3];
    vector force[3];
    double mass[3];
    double energy;
} molecule;

molecule water[64];
vector box;
double total_energy;
double kinetic_energy;
double time_step;
int n_mol;

void clear_forces(molecule *mols, int n) {
    int i, a;
    for (i = 0; i < n; i++) {
        for (a = 0; a < 3; a++) {
            mols[i].force[a].x = 0.0;
            mols[i].force[a].y = 0.0;
            mols[i].force[a].z = 0.0;
        }
    }
}

void init_system(molecule *mols, int n) {
    int i, a;
    for (i = 0; i < n; i++) {
        for (a = 0; a < 3; a++) {
            mols[i].pos[a].x = (double) i + 0.1 * a;
            mols[i].pos[a].y = (double) i;
            mols[i].pos[a].z = (double) i - 0.1 * a;
            mols[i].vel[a].x = 0.0;
            mols[i].vel[a].y = 0.0;
            mols[i].vel[a].z = 0.0;
        }
        mols[i].mass[0] = 16.0;
        mols[i].mass[1] = 1.0;
        mols[i].mass[2] = 1.0;
        mols[i].energy = 0.0;
    }
    clear_forces(mols, n);
}

void intra_forces(molecule *mols, int n) {
    int i, h;
    double k, dx, dy, dz, r2, f;
    k = 500.0;
    for (i = 0; i < n; i++) {
        mols[i].energy = 0.0;
        for (h = 1; h <= 2; h++) {
            dx = mols[i].pos[h].x - mols[i].pos[0].x;
            dy = mols[i].pos[h].y - mols[i].pos[0].y;
            dz = mols[i].pos[h].z - mols[i].pos[0].z;
            r2 = dx * dx + dy * dy + dz * dz;
            f = -k * (r2 - 0.01);
            mols[i].force[h].x = mols[i].force[h].x + f * dx;
            mols[i].force[h].y = mols[i].force[h].y + f * dy;
            mols[i].force[h].z = mols[i].force[h].z + f * dz;
            mols[i].force[0].x = mols[i].force[0].x - f * dx;
            mols[i].force[0].y = mols[i].force[0].y - f * dy;
            mols[i].force[0].z = mols[i].force[0].z - f * dz;
            mols[i].energy = mols[i].energy + 0.5 * k * (r2 - 0.01);
        }
    }
}

void inter_forces(molecule *mols, int n) {
    int i, j;
    double dx, dy, dz, r2, f;
    for (i = 0; i < n; i++) {
        for (j = i + 1; j < n; j++) {
            dx = mols[i].pos[0].x - mols[j].pos[0].x;
            dy = mols[i].pos[0].y - mols[j].pos[0].y;
            dz = mols[i].pos[0].z - mols[j].pos[0].z;
            r2 = dx * dx + dy * dy + dz * dz;
            if (r2 < 0.0001)
                r2 = 0.0001;
            f = 1.0 / (r2 * r2);
            mols[i].force[0].x = mols[i].force[0].x + f * dx;
            mols[i].force[0].y = mols[i].force[0].y + f * dy;
            mols[i].force[0].z = mols[i].force[0].z + f * dz;
            mols[j].force[0].x = mols[j].force[0].x - f * dx;
            mols[j].force[0].y = mols[j].force[0].y - f * dy;
            mols[j].force[0].z = mols[j].force[0].z - f * dz;
        }
    }
}

void apply_pbc(molecule *mols, int n, vector *b) {
    int i, a;
    for (i = 0; i < n; i++) {
        for (a = 0; a < 3; a++) {
            if (mols[i].pos[a].x > b->x)
                mols[i].pos[a].x = mols[i].pos[a].x - b->x;
            if (mols[i].pos[a].y > b->y)
                mols[i].pos[a].y = mols[i].pos[a].y - b->y;
            if (mols[i].pos[a].z > b->z)
                mols[i].pos[a].z = mols[i].pos[a].z - b->z;
        }
    }
}

void move_atoms(molecule *mols, int n, double dt) {
    int i, a;
    double ax, ay, az;
    for (i = 0; i < n; i++) {
        for (a = 0; a < 3; a++) {
            ax = mols[i].force[a].x * dt / mols[i].mass[a];
            ay = mols[i].force[a].y * dt / mols[i].mass[a];
            az = mols[i].force[a].z * dt / mols[i].mass[a];
            mols[i].vel[a].x = mols[i].vel[a].x + ax;
            mols[i].vel[a].y = mols[i].vel[a].y + ay;
            mols[i].vel[a].z = mols[i].vel[a].z + az;
            mols[i].pos[a].x = mols[i].pos[a].x + mols[i].vel[a].x * dt;
            mols[i].pos[a].y = mols[i].pos[a].y + mols[i].vel[a].y * dt;
            mols[i].pos[a].z = mols[i].pos[a].z + mols[i].vel[a].z * dt;
        }
    }
}

double potential_energy(molecule *mols, int n) {
    int i;
    double e;
    e = 0.0;
    for (i = 0; i < n; i++)
        e = e + mols[i].energy;
    return e;
}

double kinetic(molecule *mols, int n) {
    int i, a;
    double ke, vx, vy, vz;
    ke = 0.0;
    for (i = 0; i < n; i++) {
        for (a = 0; a < 3; a++) {
            vx = mols[i].vel[a].x;
            vy = mols[i].vel[a].y;
            vz = mols[i].vel[a].z;
            ke = ke + 0.5 * mols[i].mass[a] * (vx * vx + vy * vy + vz * vz);
        }
    }
    return ke;
}

int main() {
    int step;
    n_mol = 27;
    time_step = 0.001;
    box.x = 10.0;
    box.y = 10.0;
    box.z = 10.0;
    init_system(water, n_mol);
    for (step = 0; step < 10; step++) {
        clear_forces(water, n_mol);
        intra_forces(water, n_mol);
        inter_forces(water, n_mol);
        move_atoms(water, n_mol, time_step);
        apply_pbc(water, n_mol, &box);
        total_energy = potential_energy(water, n_mol);
        kinetic_energy = kinetic(water, n_mol);
    }
    return total_energy + kinetic_energy > 0.0;
}
