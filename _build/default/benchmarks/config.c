/* config - checks all the features of the C language (paper Table 2):
 * many small feature-test functions sharing low-level helpers, so the
 * helpers are reached along many different call chains (the paper
 * reports the deepest context duplication here: 1068 invocation-graph
 * nodes from 493 call sites, Avgf 21.8). */

int results[64];
int n_tests;
int verbose;
char scratch[256];

void record_result(int ok) {
    results[n_tests] = ok;
    n_tests = n_tests + 1;
}

void log_result(int ok) {
    if (verbose)
        scratch[0] = (char) ('0' + (ok & 1));
    record_result(ok);
}

void report(int ok) {
    log_result(ok);
}

int check_eq(int a, int b) {
    report(a == b);
    return a == b;
}

int check_ptr(int *p, int *q) {
    report(p == q);
    return p == q;
}

void set_via(int *p, int v) {
    *p = v;
}

int get_via(int *p) {
    return *p;
}

int test_int_size() {
    int x;
    x = 32767;
    return check_eq(x + 1 > x, 1);
}

int test_char_sign() {
    char c;
    c = (char) 255;
    return check_eq(c < 0 || c == 255, 1);
}

int test_shift() {
    int x;
    x = 1 << 4;
    check_eq(x, 16);
    x = x >> 2;
    return check_eq(x, 4);
}

int test_pointer_basic() {
    int a, b;
    int *p;
    p = &a;
    set_via(p, 5);
    check_eq(get_via(&a), 5);
    p = &b;
    set_via(p, 7);
    return check_ptr(p, &b);
}

int test_pointer_levels() {
    int x;
    int *p;
    int **pp;
    p = &x;
    pp = &p;
    set_via(*pp, 9);
    check_eq(x, 9);
    return check_ptr(*pp, &x);
}

int test_array_decay() {
    int arr[4];
    int *p;
    p = arr;
    set_via(p, 1);
    set_via(p + 1, 2);
    check_eq(get_via(arr), 1);
    return check_ptr(p, &arr[0]);
}

int test_struct_access() {
    struct pair { int fst; int snd; } s;
    struct pair *ps;
    ps = &s;
    ps->fst = 3;
    ps->snd = 4;
    check_eq(s.fst, 3);
    return check_eq(ps->snd, 4);
}

int test_union_pun() {
    union mix { int i; char c; } u;
    u.i = 65;
    report(u.c == 65 || u.c != 65);
    return 1;
}

int test_ternary() {
    int x;
    x = 1 ? 2 : 3;
    return check_eq(x, 2);
}

int test_comma() {
    int x;
    x = (set_via(&x, 1), 5);
    return check_eq(x, 5);
}

int test_for_scope() {
    int i, sum;
    sum = 0;
    for (i = 0; i < 4; i++)
        sum = sum + i;
    return check_eq(sum, 6);
}

int test_while_break() {
    int i;
    i = 0;
    while (1) {
        i = i + 1;
        if (i == 3)
            break;
    }
    return check_eq(i, 3);
}

int test_switch_fall() {
    int x, y;
    y = 0;
    x = 1;
    switch (x) {
    case 1:
        y = y + 1;
    case 2:
        y = y + 1;
        break;
    case 3:
        y = 100;
        break;
    default:
        y = -1;
    }
    return check_eq(y, 2);
}

int test_recursion_depth() {
    return check_eq(n_tests >= 0, 1);
}

int test_string_literal() {
    char *s;
    s = "hello";
    report(s[0] == 'h');
    return s[0] == 'h';
}

int test_malloc_free() {
    int *p;
    p = (int *) malloc(4 * sizeof(int));
    set_via(p, 11);
    check_eq(get_via(p), 11);
    free(p);
    return 1;
}

int test_enum_values() {
    enum color { RED, GREEN = 5, BLUE };
    check_eq(RED, 0);
    check_eq(GREEN, 5);
    return check_eq(BLUE, 6);
}

int test_do_while() {
    int i;
    i = 10;
    do {
        i = i - 1;
    } while (i > 7);
    return check_eq(i, 7);
}

int test_nested_calls() {
    int a;
    a = 0;
    set_via(&a, get_via(&n_tests));
    return check_eq(a, n_tests);
}

int test_compound_assign() {
    int x;
    x = 2;
    x += 3;
    x *= 2;
    x -= 4;
    return check_eq(x, 6);
}

int run_group_basic() {
    int ok;
    ok = 1;
    ok = ok & test_int_size();
    ok = ok & test_char_sign();
    ok = ok & test_shift();
    ok = ok & test_ternary();
    ok = ok & test_comma();
    ok = ok & test_compound_assign();
    return ok;
}

int run_group_pointers() {
    int ok;
    ok = 1;
    ok = ok & test_pointer_basic();
    ok = ok & test_pointer_levels();
    ok = ok & test_array_decay();
    ok = ok & test_string_literal();
    ok = ok & test_malloc_free();
    return ok;
}

int run_group_aggregates() {
    int ok;
    ok = 1;
    ok = ok & test_struct_access();
    ok = ok & test_union_pun();
    ok = ok & test_enum_values();
    return ok;
}

int run_group_control() {
    int ok;
    ok = 1;
    ok = ok & test_for_scope();
    ok = ok & test_while_break();
    ok = ok & test_switch_fall();
    ok = ok & test_do_while();
    ok = ok & test_recursion_depth();
    ok = ok & test_nested_calls();
    return ok;
}

int main() {
    int ok, i, failures;
    verbose = 0;
    n_tests = 0;
    ok = 1;
    ok = ok & run_group_basic();
    ok = ok & run_group_pointers();
    ok = ok & run_group_aggregates();
    ok = ok & run_group_control();
    failures = 0;
    for (i = 0; i < n_tests; i++) {
        if (!results[i])
            failures = failures + 1;
    }
    return ok ? failures : -1;
}
