/* clinpack - the C version of Linpack (paper Table 2): matrix
 * factorization and solve, with columns passed as pointers and
 * x[i][j]-style references through array pointers (the paper reports 98
 * definite relationships for array-form indirect references here). */

double aa[200][200];
double b_vec[200];
double x_vec[200];
int ipvt[200];

double fabs_d(double x) {
    if (x < 0.0)
        return -x;
    return x;
}

/* index of the element of largest absolute value in dx[0..n-1] */
int idamax(int n, double *dx) {
    double dmax;
    int i, itemp;
    if (n < 1)
        return -1;
    itemp = 0;
    dmax = fabs_d(dx[0]);
    for (i = 1; i < n; i++) {
        if (fabs_d(dx[i]) > dmax) {
            itemp = i;
            dmax = fabs_d(dx[i]);
        }
    }
    return itemp;
}

/* dy = da*dx + dy */
void daxpy(int n, double da, double *dx, double *dy) {
    int i;
    if (n <= 0 || da == 0.0)
        return;
    for (i = 0; i < n; i++)
        dy[i] = dy[i] + da * dx[i];
}

/* scale a vector by a constant */
void dscal(int n, double da, double *dx) {
    int i;
    for (i = 0; i < n; i++)
        dx[i] = da * dx[i];
}

double ddot(int n, double *dx, double *dy) {
    double dtemp;
    int i;
    dtemp = 0.0;
    for (i = 0; i < n; i++)
        dtemp = dtemp + dx[i] * dy[i];
    return dtemp;
}

/* LU factorization with partial pivoting */
int dgefa(double a[200][200], int n) {
    double t;
    int j, k, kp1, l, nm1, info;
    info = 0;
    nm1 = n - 1;
    for (k = 0; k < nm1; k++) {
        kp1 = k + 1;
        l = idamax(n - k, &a[k][k]) + k;
        ipvt[k] = l;
        if (a[k][l] != 0.0) {
            if (l != k) {
                t = a[k][l];
                a[k][l] = a[k][k];
                a[k][k] = t;
            }
            t = -1.0 / a[k][k];
            dscal(n - k - 1, t, &a[k][k + 1]);
            for (j = kp1; j < n; j++) {
                t = a[j][l];
                if (l != k) {
                    a[j][l] = a[j][k];
                    a[j][k] = t;
                }
                daxpy(n - k - 1, t, &a[k][k + 1], &a[j][k + 1]);
            }
        } else
            info = k;
    }
    return info;
}

void dgesl(double a[200][200], int n, double *b) {
    double t;
    int k, kb, l, nm1;
    nm1 = n - 1;
    for (k = 0; k < nm1; k++) {
        l = ipvt[k];
        t = b[l];
        if (l != k) {
            b[l] = b[k];
            b[k] = t;
        }
        daxpy(n - k - 1, t, &a[k][k + 1], &b[k + 1]);
    }
    for (kb = 0; kb < n; kb++) {
        k = n - kb - 1;
        b[k] = b[k] / a[k][k];
        t = -b[k];
        daxpy(k, t, &a[k][0], &b[0]);
    }
}

void matgen(double a[200][200], int n) {
    int init, i, j;
    init = 1325;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            init = 3125 * init % 65536;
            a[j][i] = (init - 32768.0) / 16384.0;
        }
    }
    for (i = 0; i < n; i++)
        b_vec[i] = 0.0;
    for (j = 0; j < n; j++) {
        for (i = 0; i < n; i++)
            b_vec[i] = b_vec[i] + a[j][i];
    }
}

double check_residual(int n) {
    double resid;
    int i;
    resid = 0.0;
    for (i = 0; i < n; i++) {
        double r;
        r = fabs_d(x_vec[i] - 1.0);
        if (r > resid)
            resid = r;
    }
    return resid;
}

int main() {
    int n, i, info;
    n = 100;
    matgen(aa, n);
    info = dgefa(aa, n);
    for (i = 0; i < n; i++)
        x_vec[i] = b_vec[i];
    dgesl(aa, n, x_vec);
    if (check_residual(n) > 0.5)
        return 1;
    return info;
}
