/* sim - finds local similarities with affine weights (paper Table 2):
 * dynamic-programming alignment with heap-allocated rows and result
 * records; almost all pointer traffic is heap-directed (the paper
 * reports 319 of 353 pairs to the heap). */

struct align {
    int score;
    int i1, j1, i2, j2;
    struct align *next;
};

struct align *results;
int *cc_row;
int *dd_row;
int *rr_row;
char *seq_a;
char *seq_b;
int len_a, len_b;
int gap_open, gap_ext;

int match_score(char a, char b) {
    if (a == b)
        return 2;
    return -1;
}

int max2(int a, int b) {
    if (a > b)
        return a;
    return b;
}

int max3(int a, int b, int c) {
    return max2(a, max2(b, c));
}

void alloc_rows(int n) {
    cc_row = (int *) malloc((n + 1) * sizeof(int));
    dd_row = (int *) malloc((n + 1) * sizeof(int));
    rr_row = (int *) malloc((n + 1) * sizeof(int));
}

void init_rows(int n) {
    int j;
    for (j = 0; j <= n; j++) {
        cc_row[j] = 0;
        dd_row[j] = -gap_open;
        rr_row[j] = 0;
    }
}

int score_pass() {
    int i, j, best, c, e;
    best = 0;
    for (i = 1; i <= len_a; i++) {
        int diag;
        diag = cc_row[0];
        e = -gap_open;
        for (j = 1; j <= len_b; j++) {
            int newc;
            e = max2(e - gap_ext, cc_row[j - 1] - gap_open - gap_ext);
            dd_row[j] = max2(dd_row[j] - gap_ext, cc_row[j] - gap_open - gap_ext);
            newc = max3(diag + match_score(seq_a[i - 1], seq_b[j - 1]), e, dd_row[j]);
            if (newc < 0)
                newc = 0;
            diag = cc_row[j];
            cc_row[j] = newc;
            if (newc > best) {
                best = newc;
                rr_row[j] = i;
            }
        }
    }
    return best;
}

void record_result(int score, int i1, int j1, int i2, int j2) {
    struct align *a;
    a = (struct align *) malloc(sizeof(struct align));
    a->score = score;
    a->i1 = i1;
    a->j1 = j1;
    a->i2 = i2;
    a->j2 = j2;
    a->next = results;
    results = a;
}

int best_result() {
    struct align *a;
    int best;
    best = 0;
    for (a = results; a != 0; a = a->next) {
        if (a->score > best)
            best = a->score;
    }
    return best;
}

void make_seqs(int na, int nb) {
    int i;
    seq_a = (char *) malloc(na + 1);
    seq_b = (char *) malloc(nb + 1);
    for (i = 0; i < na; i++)
        seq_a[i] = (char) ('a' + (i * 3) % 4);
    for (i = 0; i < nb; i++)
        seq_b[i] = (char) ('a' + (i * 5) % 4);
    seq_a[na] = 0;
    seq_b[nb] = 0;
    len_a = na;
    len_b = nb;
}

int main() {
    int k, s;
    gap_open = 4;
    gap_ext = 1;
    make_seqs(60, 50);
    alloc_rows(len_b);
    for (k = 0; k < 3; k++) {
        init_rows(len_b);
        s = score_pass();
        record_result(s, 0, 0, len_a, len_b);
    }
    return best_result();
}
