(** Devirtualization scenario (paper §5-6): an event-handler dispatch
    table of function pointers. The analysis binds each indirect call
    site to exactly the functions it can invoke, which a compiler can use
    to devirtualize or inline; the naive and address-taken call-graph
    strategies are shown for comparison.

    Run with [dune exec examples/devirtualize.exe]. *)

module Cg = Alias.Callgraph

let program =
  {|
/* a small event loop with a handler table */
int log_count;
int quit_requested;

void on_key(void)   { log_count = log_count + 1; }
void on_mouse(void) { log_count = log_count + 2; }
void on_timer(void) { log_count = log_count + 3; }
void on_quit(void)  { quit_requested = 1; }

/* never put in the table: its address is taken but it is wired to a
   different dispatch path */
void on_debug(void) { log_count = -1; }

/* address never taken at all */
void helper(void) { log_count = 0; }

void (*handlers[4])(void);
void (*debug_hook)(void);

void install(void) {
  handlers[0] = on_key;
  handlers[1] = on_mouse;
  handlers[2] = on_timer;
  handlers[3] = on_quit;
  debug_hook = on_debug;
}

void dispatch(int event) {
  void (*h)(void);
  h = handlers[event];
  h();
}

int main() {
  int e;
  helper();
  install();
  for (e = 0; e < 4; e++)
    dispatch(e);
  return quit_requested;
}
|}

let () =
  let prog = Simple_ir.Simplify.of_string program in
  Fmt.pr "Indirect call fanout under the three strategies of paper section 5:@.@.";
  List.iter
    (fun strategy ->
      let nodes = Cg.ig_size prog strategy in
      let fanout = Cg.indirect_fanout prog strategy in
      Fmt.pr "  %-26s invocation graph: %3d nodes; callees per indirect site: %a@."
        (Cg.strategy_name strategy) nodes
        Fmt.(list ~sep:(any ", ") int)
        fanout)
    [ Cg.Precise; Cg.Naive; Cg.Address_taken ];
  Fmt.pr
    "@.The precise strategy sees through the handler table: the dispatch site can@.\
     only reach the four installed handlers -- not on_debug (address taken, but@.\
     never stored in the table) and not helper (address never taken).@.@.";
  let result = Pointsto.Analysis.analyze prog in
  Fmt.pr "Call multigraph from the analyzed invocation graph:@.";
  List.iter
    (fun (caller, callee) -> Fmt.pr "  %s -> %s@." caller callee)
    (Cg.edges_of_result result)
