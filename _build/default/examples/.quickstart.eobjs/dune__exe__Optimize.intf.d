examples/optimize.mli:
