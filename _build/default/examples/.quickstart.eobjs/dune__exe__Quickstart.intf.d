examples/quickstart.mli:
