examples/devirtualize.ml: Alias Fmt List Pointsto Simple_ir
