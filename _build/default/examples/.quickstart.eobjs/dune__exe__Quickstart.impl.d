examples/quickstart.ml: Fmt Hashtbl List Pointsto Simple_ir
