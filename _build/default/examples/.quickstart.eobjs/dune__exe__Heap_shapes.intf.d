examples/heap_shapes.mli:
