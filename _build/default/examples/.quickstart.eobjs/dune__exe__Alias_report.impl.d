examples/alias_report.ml: Alias Fmt List Pointsto Simple_ir
