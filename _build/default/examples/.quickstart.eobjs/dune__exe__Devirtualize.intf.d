examples/devirtualize.mli:
