examples/heap_shapes.ml: Fmt Heap_analysis List Pointsto
