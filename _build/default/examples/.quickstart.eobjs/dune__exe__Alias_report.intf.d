examples/alias_report.mli:
