examples/optimize.ml: Fmt List Pointsto Simple_ir Transforms
