(** Quickstart: parse a C program, lower it to SIMPLE, run the
    context-sensitive points-to analysis, and inspect the results.

    Run with [dune exec examples/quickstart.exe]. *)

module Analysis = Pointsto.Analysis
module Pts = Pointsto.Pts
module Loc = Pointsto.Loc

let program =
  {|
int g1, g2;
int *shared;

void swap(int **x, int **y) {
  int *tmp;
  tmp = *x;
  *x = *y;
  *y = tmp;
}

int *choose(int which) {
  if (which)
    return &g1;
  return &g2;
}

int main() {
  int *p, *q;
  p = &g1;
  q = &g2;
  swap(&p, &q);
  shared = choose(1);
  return 0;
}
|}

let () =
  (* 1. Parse and simplify: the SIMPLE intermediate representation *)
  let simple = Simple_ir.Simplify.of_string program in
  Fmt.pr "--- SIMPLE lowering ---@.";
  Simple_ir.Pp.pp_program Fmt.stdout simple;

  (* 2. Analyze (the one-step convenience is Analysis.of_string) *)
  let result = Analysis.analyze simple in

  (* 3. The invocation graph: one node per calling context *)
  Fmt.pr "--- Invocation graph ---@.%a@." Pointsto.Invocation_graph.pp
    result.Analysis.graph;

  (* 4. Per-statement points-to sets (NULL pairs filtered) *)
  Fmt.pr "--- Points-to sets at each statement ---@.";
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) result.Analysis.stmt_pts []
  |> List.sort compare
  |> List.iter (fun (id, _) ->
         let s = Analysis.pts_at_no_null result id in
         if not (Pts.is_empty s) then Fmt.pr "s%d: %a@." id Pts.pp s);

  (* 5. Query the state at exit of main: after swap, p and q have
     exchanged their targets - definitely *)
  Fmt.pr "--- At exit of main ---@.";
  (match result.Analysis.entry_output with
  | Some s ->
      let show var =
        let l = Loc.Var (var, Loc.Klocal) in
        let targets =
          Pts.targets l s |> List.filter (fun (t, _) -> not (Loc.is_null t))
        in
        Fmt.pr "%s points to: %a@." var
          Fmt.(
            list ~sep:(any ", ") (fun ppf (t, c) ->
                pf ppf "%a (%s)" Loc.pp t (Pts.cert_to_string c)))
          targets
      in
      show "p";
      show "q";
      let g = Loc.Var ("shared", Loc.Kglobal) in
      Fmt.pr "shared points to: %a@."
        Fmt.(
          list ~sep:(any ", ") (fun ppf (t, c) ->
              pf ppf "%a (%s)" Loc.pp t (Pts.cert_to_string c)))
        (Pts.targets g s |> List.filter (fun (t, _) -> not (Loc.is_null t)))
  | None -> Fmt.pr "main does not return normally@.")
