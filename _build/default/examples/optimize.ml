(** Optimization scenario (paper §1 and §6.1): definite points-to
    information drives pointer replacement ("given x = *q and q
    definitely points to y, replace with x = y") and read/write sets for
    dependence testing.

    Run with [dune exec examples/optimize.exe]. *)

module PR = Transforms.Pointer_replace
module RW = Transforms.Rw_sets
module Ir = Simple_ir.Ir

let program =
  {|
double cell[8];
double acc;

void accumulate(double *col, int n) {
  int i;
  double *cursor;
  cursor = col;            /* cursor definitely points to col's target */
  for (i = 0; i < n; i++) {
    acc = acc + cursor[i];
  }
}

int main() {
  double *base;
  double *alias;
  base = cell;             /* base definitely points to cell[0] */
  alias = base;            /* so does alias */
  *alias = 1.0;            /* ... replaceable by cell[0] = 1.0 */
  accumulate(base, 8);
  return 0;
}
|}

let () =
  let result = Pointsto.Analysis.of_string program in

  Fmt.pr "--- Pointer replacement opportunities (paper: 19.39%% of indirect refs) ---@.";
  let reps = PR.find result in
  List.iter (fun rp -> Fmt.pr "  %a@." PR.pp_replacement rp) reps;

  let rewritten, n = PR.apply result in
  Fmt.pr "@.--- Program after applying %d replacement(s) ---@." n;
  Simple_ir.Pp.pp_program Fmt.stdout rewritten;

  Fmt.pr "--- Per-function read/write summaries (for dependence testing) ---@.";
  List.iter
    (fun fn ->
      let a = RW.func_summary result fn in
      Fmt.pr "  %-12s %a@." fn.Ir.fn_name RW.pp_access a)
    result.Pointsto.Analysis.prog.Ir.funcs
