(** Alias-analysis comparison scenario (paper §7.1): the same program
    analyzed by the paper's context-sensitive points-to analysis and by
    the two classic flow-insensitive baselines, with traditional alias
    pairs derived from the points-to result.

    Run with [dune exec examples/alias_report.exe]. *)

module Pts = Pointsto.Pts
module Loc = Pointsto.Loc
module Cells = Alias.Cells

let program =
  {|
int data1, data2;

int *select_slot(int *a, int *b, int which) {
  if (which)
    return a;
  return b;
}

int main() {
  int *first, *second, *picked;
  first = &data1;
  second = &data2;
  picked = select_slot(first, second, 1);
  *picked = 42;
  return 0;
}
|}

let () =
  let prog = Simple_ir.Simplify.of_string program in
  let result = Pointsto.Analysis.analyze prog in

  Fmt.pr "--- Context-sensitive points-to at exit of main ---@.";
  (match result.Pointsto.Analysis.entry_output with
  | Some s ->
      let s = Pts.filter (fun _ t _ -> not (Loc.is_null t)) s in
      Fmt.pr "  %a@." Pts.pp s;
      Fmt.pr "@.--- Traditional alias pairs implied by transitive closure ---@.";
      Fmt.pr "  %a@." Alias.Pairs.pp (Alias.Pairs.of_pts s)
  | None -> ());

  Fmt.pr "@.--- Flow-insensitive baselines on the same program ---@.";
  let show_targets name targets =
    Fmt.pr "  %-22s picked -> {%a}@." name
      Fmt.(list ~sep:(any ", ") string)
      (List.sort compare (List.map Cells.node_name targets))
  in
  let a = Alias.Andersen.run prog in
  show_targets "Andersen (inclusion):" (Alias.Andersen.targets a (Cells.Nvar "main::picked"));
  let st = Alias.Steensgaard.run prog in
  show_targets "Steensgaard (unify):"
    (Alias.Steensgaard.targets st (Cells.Nvar "main::picked"));
  Fmt.pr
    "@.(Both baselines report picked pointing to both globals; so does the@.\
     context-sensitive analysis here -- the merge happens inside select_slot --@.\
     but it additionally knows first and second individually stayed definite.)@."
