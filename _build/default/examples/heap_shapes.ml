(** Companion heap analysis scenario (paper §8 and [Ghiya 93]): the
    points-to analysis run with allocation-site naming, plus the
    connection-matrix analysis that identifies provably disjoint heap
    data structures — the information a parallelizing compiler needs to
    run loops over two lists in parallel.

    Run with [dune exec examples/heap_shapes.exe]. *)

module C = Heap_analysis.Connection
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts

let program =
  {|
struct node { int val; struct node *next; };

struct node *work_queue;
struct node *free_list;
struct node *log_list;

struct node *cons(int v, struct node *tl) {
  struct node *c;
  c = (struct node *)malloc(sizeof(struct node));
  c->val = v;
  c->next = tl;
  return c;
}

int main() {
  int i;
  /* the work queue and the log are built from distinct sites */
  for (i = 0; i < 10; i++)
    work_queue = cons(i, work_queue);
  log_list = (struct node *)malloc(sizeof(struct node));
  log_list->val = 0;
  log_list->next = 0;
  /* the free list shares structure with the work queue */
  free_list = work_queue;
  return 0;
}
|}

let () =
  let result = Pointsto.Analysis.of_string ~opts:C.options program in
  Fmt.pr "Allocation sites discovered: %a@.@."
    Fmt.(list ~sep:(any ", ") int)
    (C.all_sites result);
  match result.Pointsto.Analysis.entry_output with
  | None -> ()
  | Some s ->
      let vars = [ "work_queue"; "free_list"; "log_list" ] in
      let locs = List.map (fun v -> Loc.Var (v, Loc.Kglobal)) vars in
      Fmt.pr "Connection matrix at exit of main (C = possibly same structure):@.";
      Fmt.pr "%a@." C.pp_matrix (locs, C.matrix s locs);
      Fmt.pr "Disjoint structure groups: %a@."
        Fmt.(
          list ~sep:(any "  |  ")
            (fun ppf g -> pf ppf "{%a}" (list ~sep:(any ", ") Loc.pp) g))
        (C.partition s locs);
      Fmt.pr
        "@.(work_queue and free_list share cells -- a loop over the log can run in@.\
         parallel with work-queue processing, but the free list cannot.)@."
