bench/main.ml: Alias Analyze Bechamel Benchmark Constprop Filename Fmt Hashtbl Heap_analysis Instance List Measure Paper_data Pointsto Simple_ir Staged String Sys Test Time Toolkit
