bench/main.mli:
