(** Reference numbers transcribed from the paper (Emami, Ghiya & Hendren,
    PLDI 1994), used to print paper-vs-measured comparisons. Absolute
    values are not expected to match (the benchmark suite is a synthetic
    reconstruction, see DESIGN.md); the shapes are. *)

type t2 = { lines : int; stmts : int; min_vars : int; max_vars : int }

(* Table 2: benchmark characteristics *)
let table2 : (string * t2) list =
  [
    ("genetic", { lines = 506; stmts = 479; min_vars = 33; max_vars = 61 });
    ("dry", { lines = 826; stmts = 212; min_vars = 21; max_vars = 43 });
    ("clinpack", { lines = 1231; stmts = 920; min_vars = 11; max_vars = 109 });
    ("config", { lines = 2279; stmts = 4549; min_vars = 19; max_vars = 188 });
    ("toplev", { lines = 1637; stmts = 1096; min_vars = 92; max_vars = 164 });
    ("compress", { lines = 1923; stmts = 1342; min_vars = 41; max_vars = 186 });
    ("mway", { lines = 700; stmts = 869; min_vars = 51; max_vars = 125 });
    ("hash", { lines = 256; stmts = 110; min_vars = 15; max_vars = 30 });
    ("misr", { lines = 276; stmts = 235; min_vars = 10; max_vars = 43 });
    ("xref", { lines = 146; stmts = 140; min_vars = 26; max_vars = 61 });
    ("stanford", { lines = 885; stmts = 889; min_vars = 31; max_vars = 67 });
    ("fixoutput", { lines = 400; stmts = 391; min_vars = 17; max_vars = 31 });
    ("sim", { lines = 1422; stmts = 1768; min_vars = 99; max_vars = 137 });
    ("travel", { lines = 862; stmts = 543; min_vars = 28; max_vars = 55 });
    ("csuite", { lines = 872; stmts = 781; min_vars = 34; max_vars = 55 });
    ("msc", { lines = 148; stmts = 226; min_vars = 20; max_vars = 73 });
    ("lws", { lines = 2239; stmts = 6671; min_vars = 64; max_vars = 527 });
  ]

type t3 = {
  ind_refs : int;
  scalar_rep : int;
  to_stack : int;
  to_heap : int;
  avg : float;
}

(* Table 3: points-to statistics for indirect references (selected
   columns) *)
let table3 : (string * t3) list =
  [
    ("genetic", { ind_refs = 54; scalar_rep = 7; to_stack = 38; to_heap = 30; avg = 1.26 });
    ("dry", { ind_refs = 58; scalar_rep = 9; to_stack = 21; to_heap = 45; avg = 1.14 });
    ("clinpack", { ind_refs = 150; scalar_rep = 101; to_stack = 197; to_heap = 0; avg = 1.31 });
    ("config", { ind_refs = 45; scalar_rep = 3; to_stack = 45; to_heap = 0; avg = 1.00 });
    ("toplev", { ind_refs = 117; scalar_rep = 5; to_stack = 171; to_heap = 0; avg = 1.46 });
    ("compress", { ind_refs = 50; scalar_rep = 0; to_stack = 43; to_heap = 7; avg = 1.00 });
    ("mway", { ind_refs = 74; scalar_rep = 0; to_stack = 79; to_heap = 0; avg = 1.07 });
    ("hash", { ind_refs = 14; scalar_rep = 0; to_stack = 7; to_heap = 7; avg = 1.00 });
    ("misr", { ind_refs = 39; scalar_rep = 0; to_stack = 31; to_heap = 35; avg = 1.69 });
    ("xref", { ind_refs = 31; scalar_rep = 0; to_stack = 9; to_heap = 31; avg = 1.29 });
    ("stanford", { ind_refs = 143; scalar_rep = 51; to_stack = 119; to_heap = 26; avg = 1.01 });
    ("fixoutput", { ind_refs = 8; scalar_rep = 5; to_stack = 5; to_heap = 3; avg = 1.00 });
    ("sim", { ind_refs = 353; scalar_rep = 0; to_stack = 34; to_heap = 319; avg = 1.00 });
    ("travel", { ind_refs = 77; scalar_rep = 20; to_stack = 125; to_heap = 11; avg = 1.77 });
    ("csuite", { ind_refs = 66; scalar_rep = 21; to_stack = 64; to_heap = 2; avg = 1.00 });
    ("msc", { ind_refs = 41; scalar_rep = 6; to_stack = 6; to_heap = 35; avg = 1.00 });
    ("lws", { ind_refs = 423; scalar_rep = 110; to_stack = 428; to_heap = 0; avg = 1.01 });
  ]

type t5 = { ss : int; sh : int; hh : int; hs : int; avg : int; max : int }

(* Table 5: general points-to statistics *)
let table5 : (string * t5) list =
  [
    ("genetic", { ss = 3901; sh = 1066; hh = 0; hs = 0; avg = 10; max = 38 });
    ("dry", { ss = 512; sh = 883; hh = 198; hs = 0; avg = 7; max = 24 });
    ("clinpack", { ss = 18987; sh = 0; hh = 0; hs = 0; avg = 20; max = 91 });
    ("config", { ss = 136315; sh = 18; hh = 0; hs = 0; avg = 29; max = 120 });
    ("toplev", { ss = 41539; sh = 6; hh = 0; hs = 0; avg = 37; max = 100 });
    ("compress", { ss = 30502; sh = 1070; hh = 0; hs = 0; avg = 23; max = 82 });
    ("mway", { ss = 16399; sh = 0; hh = 0; hs = 0; avg = 18; max = 76 });
    ("hash", { ss = 577; sh = 207; hh = 34; hs = 0; avg = 7; max = 18 });
    ("misr", { ss = 1314; sh = 706; hh = 9; hs = 0; avg = 8; max = 25 });
    ("xref", { ss = 46; sh = 506; hh = 17; hs = 0; avg = 4; max = 16 });
    ("stanford", { ss = 3137; sh = 364; hh = 7; hs = 0; avg = 3; max = 30 });
    ("fixoutput", { ss = 3111; sh = 794; hh = 0; hs = 0; avg = 9; max = 14 });
    ("sim", { ss = 7048; sh = 31174; hh = 1437; hs = 0; avg = 22; max = 47 });
    ("travel", { ss = 3581; sh = 1174; hh = 0; hs = 0; avg = 8; max = 42 });
    ("csuite", { ss = 4527; sh = 14; hh = 0; hs = 0; avg = 5; max = 26 });
    ("msc", { ss = 221; sh = 907; hh = 88; hs = 0; avg = 5; max = 22 });
    ("lws", { ss = 241291; sh = 0; hh = 0; hs = 0; avg = 35; max = 366 });
  ]

type t6 = {
  nodes : int;
  sites : int;
  funcs : int;
  r : int;
  a : int;
  avgc : float;
  avgf : float;
}

(* Table 6: invocation graph statistics *)
let table6 : (string * t6) list =
  [
    ("genetic", { nodes = 45; sites = 32; funcs = 17; r = 0; a = 0; avgc = 1.38; avgf = 2.65 });
    ("dry", { nodes = 19; sites = 17; funcs = 14; r = 0; a = 0; avgc = 1.06; avgf = 1.36 });
    ("clinpack", { nodes = 92; sites = 42; funcs = 11; r = 0; a = 0; avgc = 2.17; avgf = 8.36 });
    ("config", { nodes = 1068; sites = 493; funcs = 49; r = 0; a = 0; avgc = 2.17; avgf = 21.80 });
    ("toplev", { nodes = 53; sites = 29; funcs = 18; r = 0; a = 0; avgc = 1.80; avgf = 2.94 });
    ("compress", { nodes = 45; sites = 23; funcs = 12; r = 0; a = 0; avgc = 1.91; avgf = 3.75 });
    ("mway", { nodes = 44; sites = 42; funcs = 21; r = 0; a = 0; avgc = 1.02; avgf = 2.10 });
    ("hash", { nodes = 9; sites = 8; funcs = 5; r = 0; a = 0; avgc = 1.0; avgf = 1.80 });
    ("misr", { nodes = 8; sites = 7; funcs = 5; r = 0; a = 0; avgc = 1.0; avgf = 1.60 });
    ("xref", { nodes = 15; sites = 14; funcs = 8; r = 2; a = 4; avgc = 1.0; avgf = 1.88 });
    ("stanford", { nodes = 64; sites = 61; funcs = 37; r = 6; a = 10; avgc = 1.03; avgf = 1.73 });
    ("fixoutput", { nodes = 23; sites = 12; funcs = 6; r = 0; a = 0; avgc = 1.83; avgf = 3.83 });
    ("sim", { nodes = 120; sites = 47; funcs = 15; r = 2; a = 8; avgc = 2.53; avgf = 8.00 });
    ("travel", { nodes = 39; sites = 22; funcs = 14; r = 2; a = 4; avgc = 1.73; avgf = 2.79 });
    ("csuite", { nodes = 37; sites = 36; funcs = 36; r = 0; a = 0; avgc = 1.00; avgf = 1.00 });
    ("msc", { nodes = 6; sites = 5; funcs = 5; r = 2; a = 2; avgc = 1.00; avgf = 1.00 });
    ("lws", { nodes = 33; sites = 29; funcs = 17; r = 0; a = 0; avgc = 1.10; avgf = 1.94 });
  ]

(* §6 livc study *)
let livc_paper = (203, 619, 589) (* precise, naive, address-taken IG nodes *)
let livc_fanout_paper = (24, 82, 72)

(* §6 overall averages *)
let overall_avg = 1.13
let overall_definite_pct = 28.80
let overall_replaceable_pct = 19.39
let overall_single_pct = 90.76

let names = List.map fst table2
