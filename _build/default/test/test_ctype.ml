(** Unit tests for the C type algebra and the SIMPLE IR utilities. *)

open Test_util
module Ctype = Cfront.Ctype

let layouts () : Ctype.layouts =
  let h = Hashtbl.create 4 in
  Hashtbl.replace h "s"
    {
      Ctype.su = Ctype.Struct_su;
      tag = "s";
      fields =
        [
          ("n", Ctype.Int Ctype.Iint);
          ("p", Ctype.Ptr (Ctype.Int Ctype.Iint));
          ("inner", Ctype.Su (Ctype.Struct_su, "t"));
          ("vec", Ctype.Array (Ctype.Ptr Ctype.Void, Some 4));
        ];
    };
  Hashtbl.replace h "t"
    {
      Ctype.su = Ctype.Struct_su;
      tag = "t";
      fields = [ ("q", Ctype.Ptr (Ctype.Int Ctype.Ichar)) ];
    };
  Hashtbl.replace h "u"
    {
      Ctype.su = Ctype.Union_su;
      tag = "u";
      fields = [ ("i", Ctype.Int Ctype.Iint); ("cp", Ctype.Ptr (Ctype.Int Ctype.Ichar)) ];
    };
  Hashtbl.replace h "plain"
    {
      Ctype.su = Ctype.Struct_su;
      tag = "plain";
      fields = [ ("x", Ctype.Int Ctype.Iint) ];
    };
  h

let ctype_tests =
  [
    case "decay: arrays to pointers, functions to function pointers" (fun () ->
        Alcotest.(check string) "array" "int*"
          (Ctype.to_string (Ctype.decay (Ctype.Array (Ctype.Int Ctype.Iint, Some 4))));
        Alcotest.(check string) "func" "int()*"
          (Ctype.to_string
             (Ctype.decay (Ctype.Func { Ctype.ret = Ctype.Int Ctype.Iint; params = []; variadic = false })));
        Alcotest.(check string) "scalar unchanged" "int"
          (Ctype.to_string (Ctype.decay (Ctype.Int Ctype.Iint))));
    case "deref follows pointers and arrays" (fun () ->
        Alcotest.(check bool) "ptr" true
          (Ctype.deref (Ctype.Ptr Ctype.Void) = Some Ctype.Void);
        Alcotest.(check bool) "array" true
          (Ctype.deref (Ctype.Array (Ctype.Void, None)) = Some Ctype.Void);
        Alcotest.(check bool) "int" true (Ctype.deref (Ctype.Int Ctype.Iint) = None));
    case "carries_pointers walks aggregates" (fun () ->
        let l = layouts () in
        Alcotest.(check bool) "ptr" true (Ctype.carries_pointers l (Ctype.Ptr Ctype.Void));
        Alcotest.(check bool) "struct s" true
          (Ctype.carries_pointers l (Ctype.Su (Ctype.Struct_su, "s")));
        Alcotest.(check bool) "union u" true
          (Ctype.carries_pointers l (Ctype.Su (Ctype.Union_su, "u")));
        Alcotest.(check bool) "plain struct" false
          (Ctype.carries_pointers l (Ctype.Su (Ctype.Struct_su, "plain")));
        Alcotest.(check bool) "array of plain" false
          (Ctype.carries_pointers l (Ctype.Array (Ctype.Int Ctype.Iint, Some 3))));
    case "pointer_leaf_paths enumerates pointer-carrying leaves" (fun () ->
        let l = layouts () in
        let paths = Ctype.pointer_leaf_paths l (Ctype.Su (Ctype.Struct_su, "s")) in
        (* p; inner.q; vec head; vec tail *)
        Alcotest.(check int) "four leaves" 4 (List.length paths);
        Alcotest.(check bool) "nested path present" true
          (List.mem [ Ctype.Pfield "inner"; Ctype.Pfield "q" ] paths);
        Alcotest.(check bool) "array head path present" true
          (List.mem [ Ctype.Pfield "vec"; Ctype.Phead ] paths));
    case "unions are single leaves" (fun () ->
        let l = layouts () in
        Alcotest.(check (list (list string))) "one empty path" [ [] ]
          (List.map (List.map (function
             | Ctype.Pfield f -> f
             | Ctype.Phead -> "<head>"
             | Ctype.Ptail -> "<tail>"))
             (Ctype.pointer_leaf_paths l (Ctype.Su (Ctype.Union_su, "u")))));
    case "field_type resolves through layouts" (fun () ->
        let l = layouts () in
        Alcotest.(check bool) "s.p" true
          (Ctype.field_type l (Ctype.Su (Ctype.Struct_su, "s")) "p"
          = Some (Ctype.Ptr (Ctype.Int Ctype.Iint)));
        Alcotest.(check bool) "missing" true
          (Ctype.field_type l (Ctype.Su (Ctype.Struct_su, "s")) "zz" = None));
    case "printing round-trips the C spelling of nested arrays" (fun () ->
        Alcotest.(check string) "2d" "int[2][3]"
          (Ctype.to_string (Ctype.Array (Ctype.Array (Ctype.Int Ctype.Iint, Some 3), Some 2)));
        Alcotest.(check string) "ptr to array" "int[5]*"
          (Ctype.to_string (Ctype.Ptr (Ctype.Array (Ctype.Int Ctype.Iint, Some 5)))));
    case "equal is structural" (fun () ->
        let f = Ctype.Func { Ctype.ret = Ctype.Void; params = [ Ctype.Int Ctype.Iint ]; variadic = false } in
        Alcotest.(check bool) "same" true (Ctype.equal f f);
        Alcotest.(check bool) "variadic differs" false
          (Ctype.equal f
             (Ctype.Func { Ctype.ret = Ctype.Void; params = [ Ctype.Int Ctype.Iint ]; variadic = true })));
  ]

let ir_tests =
  [
    case "fold_stmts reaches nested statements" (fun () ->
        let p =
          simplify
            {|int f(int n) {
                int i, s; s = 0;
                for (i = 0; i < n; i++) { if (i > 2) { s += i; } else { s -= i; } }
                switch (s) { case 0: s = 1; break; default: s = 2; }
                do { s--; } while (s > 0);
                return s;
              }|}
        in
        let fn = Option.get (Ir.find_func p "f") in
        let total = Ir.count_stmts fn in
        Alcotest.(check bool) "all stmts visited" true (total >= 14));
    case "call_sites lists calls in order" (fun () ->
        let p =
          simplify
            {|void a(void) {} void b(void) {}
              int main() { a(); b(); a(); return 0; }|}
        in
        let names =
          List.filter_map
            (fun ((_ : Ir.func), (s : Ir.stmt)) ->
              match s.Ir.s_desc with
              | Ir.Scall (_, Ir.Cdirect f, _) -> Some f
              | _ -> None)
            (Ir.call_sites p)
        in
        Alcotest.(check (list string)) "order" [ "a"; "b"; "a" ] names);
    case "address_taken_funcs sees args, returns and stores" (fun () ->
        let p =
          simplify
            {|int a(void) { return 0; } int b(void) { return 0; }
              int c(void) { return 0; } int d(void) { return 0; }
              void use(int (*f)(void)) {}
              int (*g)(void);
              int (*get(void))(void) { return c; }
              int main() { use(a); g = b; get(); d(); return 0; }|}
        in
        Alcotest.(check (list string)) "a b c" [ "a"; "b"; "c" ]
          (List.sort compare (Ir.address_taken_funcs p)));
    case "n_stmts counts the whole program" (fun () ->
        let p = simplify "int main() { int x; x = 1; x = 2; return x; }" in
        Alcotest.(check int) "3 statements" 3 p.Ir.n_stmts);
    case "is_indirect and is_plain_var" (fun () ->
        Alcotest.(check bool) "plain" true (Ir.is_plain_var (Ir.var_ref "x"));
        Alcotest.(check bool) "deref not plain" false (Ir.is_plain_var (Ir.deref_ref "x"));
        Alcotest.(check bool) "indirect" true (Ir.is_indirect (Ir.deref_ref "x")));
  ]

let suite = ("ctype-ir", ctype_tests @ ir_tests)
