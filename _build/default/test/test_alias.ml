(** Tests for the alias-pair derivation (Figures 8 and 9 of the paper)
    and the flow-insensitive baseline analyses. *)

open Test_util
module Pairs = Alias.Pairs
module Cells = Alias.Cells

let pair_strings pairs =
  sorted_strings (List.map (fun p -> Fmt.str "%a" Pairs.pp_pair p) pairs)

let exit_pairs src =
  let res = analyze src in
  match res.Analysis.entry_output with
  | Some s ->
      let s = Pts.filter (fun _ t _ -> not (Loc.is_null t)) s in
      Pairs.of_pts s
  | None -> Alcotest.fail "no exit"

let pairs_tests =
  [
    case "Figure 8: points-to pairs avoid the spurious (**x,z)" (fun () ->
        (* after S3 (y = &w) the points-to set is x->y and y->w, both
           definite; the derived aliases must include the deref pairs of
           x and y with their targets, and must NOT include the stale
           deep alias of x's double deref with z that the Landi/Ryder
           representation reports *)
        let src =
          {|int main() {
              int **x, *y, z, w;
              x = &y;
              y = &z;
              y = &w;
              return 0;
            }|}
        in
        let strs = pair_strings (exit_pairs src) in
        let has s = List.exists (String.equal s) strs in
        Alcotest.(check bool) "(*x,y)" true (has "<*x,y>" || has "<y,*x>");
        Alcotest.(check bool) "(*y,w)" true (has "<*y,w>" || has "<w,*y>");
        Alcotest.(check bool) "no (**x,z)" false
          (has "<**x,z>" || has "<z,**x>"));
    case "Figure 9: the closure introduces the spurious deep alias" (fun () ->
        (* with pairs a->b possible and b->c possible, the transitive
           closure derives the spurious deep alias of a's double deref
           with c, exactly as the paper discusses *)
        let src =
          {|int main() {
              int **a, *b, c;
              int cond;
              if (cond) a = &b; else b = &c;
              return 0;
            }|}
        in
        let strs = pair_strings (exit_pairs src) in
        let has s = List.exists (String.equal s) strs in
        Alcotest.(check bool) "(*a,b)" true (has "<*a,b>" || has "<b,*a>");
        Alcotest.(check bool) "(*b,c)" true (has "<*b,c>" || has "<c,*b>");
        Alcotest.(check bool) "(**a,c) spurious but derived" true
          (has "<**a,c>" || has "<c,**a>"));
    case "no aliases from an empty set" (fun () ->
        Alcotest.(check int) "empty" 0 (List.length (Pairs.of_pts Pts.empty)));
    case "two pointers to the same location alias" (fun () ->
        let src = "int v; int main() { int *p, *q; p = &v; q = &v; return 0; }" in
        let strs = pair_strings (exit_pairs src) in
        Alcotest.(check bool) "(*p,*q)" true
          (List.exists (String.equal "<*p,*q>") strs
          || List.exists (String.equal "<*q,*p>") strs));
    case "derefs bounded by max_derefs" (fun () ->
        let v n = Loc.Var (n, Loc.Klocal) in
        let s =
          Pts.of_list
            [ (v "a", v "b", Pts.D); (v "b", v "c", Pts.D); (v "c", v "d", Pts.D) ]
        in
        let pairs = Pairs.of_pts ~max_derefs:1 s in
        Alcotest.(check bool) "no double deref"
          true
          (List.for_all
             (fun ((p : Pairs.path), (q : Pairs.path)) ->
               p.Pairs.derefs <= 1 && q.Pairs.derefs <= 1)
             pairs));
  ]

(* ------------------------------------------------------------------ *)
(* Baselines                                                          *)
(* ------------------------------------------------------------------ *)

let steensgaard_targets src var =
  let p = simplify src in
  let r = Alias.Steensgaard.run p in
  sorted_strings (List.map Cells.node_name (Alias.Steensgaard.targets r (Cells.Nvar var)))

let andersen_targets src var =
  let p = simplify src in
  let r = Alias.Andersen.run p in
  sorted_strings (List.map Cells.node_name (Alias.Andersen.targets r (Cells.Nvar var)))

let baseline_tests =
  [
    case "Andersen: basic address-of" (fun () ->
        let tgts = andersen_targets "int v; int *p; int main() { p = &v; return 0; }" "p" in
        Alcotest.(check (list string)) "p -> v" [ "v" ] tgts);
    case "Andersen: copy unions target sets" (fun () ->
        let tgts =
          andersen_targets
            "int v, w; int *p, *q; int c; int main() { p = &v; q = &w; if (c) p = q; return 0; }"
            "p"
        in
        Alcotest.(check (list string)) "p -> v,w" [ "v"; "w" ] tgts);
    case "Andersen: store and load through double pointer" (fun () ->
        let tgts =
          andersen_targets
            "int v; int *p, *q; int **x; int main() { x = &p; *x = &v; q = *x; return 0; }"
            "q"
        in
        Alcotest.(check (list string)) "q -> v" [ "v" ] tgts);
    case "Andersen is directional (subset, not unification)" (fun () ->
        let src =
          "int v, w; int *p, *q; int main() { p = &v; q = &w; p = q; return 0; }"
        in
        Alcotest.(check (list string)) "p gets both" [ "v"; "w" ] (andersen_targets src "p");
        Alcotest.(check (list string)) "q unpolluted" [ "w" ] (andersen_targets src "q"));
    case "Steensgaard unifies both directions" (fun () ->
        let src =
          "int v, w; int *p, *q; int main() { p = &v; q = &w; p = q; return 0; }"
        in
        let tq = steensgaard_targets src "q" in
        Alcotest.(check bool) "q polluted too" true
          (List.mem "v" tq && List.mem "w" tq));
    case "Andersen: interprocedural copy through parameters" (fun () ->
        let tgts =
          andersen_targets
            {|int v; int *g;
              void callee(int *a) { g = a; }
              int main() { callee(&v); return 0; }|}
            "g"
        in
        Alcotest.(check (list string)) "g -> v" [ "v" ] tgts);
    case "Andersen: indirect calls resolved on the fly" (fun () ->
        let tgts =
          andersen_targets
            {|int v; int *g;
              void h(void) { g = &v; }
              void (*fp)(void);
              int main() { fp = h; fp(); return 0; }|}
            "g"
        in
        Alcotest.(check (list string)) "g -> v" [ "v" ] tgts);
    case "Steensgaard: indirect calls resolved" (fun () ->
        let tgts =
          steensgaard_targets
            {|int v; int *g;
              void h(void) { g = &v; }
              void (*fp)(void);
              int main() { fp = h; fp(); return 0; }|}
            "g"
        in
        Alcotest.(check bool) "g -> v" true (List.mem "v" tgts));
    case "baselines are less precise than the context-sensitive analysis" (fun () ->
        let src =
          {|int v, w;
            int *id(int *z) { return z; }
            int main() { int *p, *q; p = id(&v); q = id(&w); return 0; }|}
        in
        (* precise: p -> {v}; Andersen conflates the two calls *)
        let res = analyze src in
        check_targets "precise p" [ "v/D" ] (exit_targets res "p");
        let at = andersen_targets src "main::p" in
        Alcotest.(check (list string)) "andersen p" [ "v"; "w" ] at);
    case "Steensgaard avg targets is computable" (fun () ->
        let p = simplify "int v; int *p; int main() { p = &v; return 0; }" in
        let r = Alias.Steensgaard.run p in
        Alcotest.(check bool) "positive" true (Alias.Steensgaard.avg_targets r >= 1.0));
  ]

(* ------------------------------------------------------------------ *)
(* Call-graph strategies                                              *)
(* ------------------------------------------------------------------ *)

let callgraph_tests =
  [
    case "three strategies ordered on a fn-ptr program" (fun () ->
        let src =
          {|int a, b; int *g;
            void fa(void) { g = &a; }
            void fb(void) { g = &b; }
            void fc(void) { }
            void (*tab[2])(void);
            int main(int argc, char **argv) {
              tab[0] = fa; tab[1] = fb;
              tab[argc]();
              return 0;
            }|}
        in
        let p = simplify src in
        let precise = Alias.Callgraph.ig_size p Alias.Callgraph.Precise in
        let at = Alias.Callgraph.ig_size p Alias.Callgraph.Address_taken in
        let naive = Alias.Callgraph.ig_size p Alias.Callgraph.Naive in
        Alcotest.(check bool) "precise <= addr-taken" true (precise <= at);
        Alcotest.(check bool) "addr-taken <= naive" true (at <= naive);
        (* fa, fb address-taken; fc not *)
        Alcotest.(check (list string)) "fanouts" [ "2"; "2"; "4" ]
          (List.map string_of_int
             [
               List.hd (Alias.Callgraph.indirect_fanout p Alias.Callgraph.Precise);
               List.hd (Alias.Callgraph.indirect_fanout p Alias.Callgraph.Address_taken);
               List.hd (Alias.Callgraph.indirect_fanout p Alias.Callgraph.Naive);
             ]));
    case "call multigraph edges from the analyzed graph" (fun () ->
        let src =
          {|void f(void) { }
            void g(void) { f(); }
            int main() { g(); f(); return 0; }|}
        in
        let res = analyze src in
        let edges = Alias.Callgraph.edges_of_result res in
        Alcotest.(check (list (pair string string)))
          "edges"
          [ ("g", "f"); ("main", "f"); ("main", "g") ]
          edges);
    case "naive counting cuts recursion with approximate leaves" (fun () ->
        let src = {|void f(int n) { if (n) f(n - 1); } int main() { f(3); return 0; }|} in
        let p = simplify src in
        Alcotest.(check int) "3 nodes" 3 (Alias.Callgraph.ig_size p Alias.Callgraph.Naive));
  ]

let suite = ("alias", pairs_tests @ baseline_tests @ callgraph_tests)
