(** Tests for the statistics machinery behind Tables 2–6. *)

open Test_util
module Stats = Pointsto.Stats

let stats_of src = Stats.indirect_stats (analyze src)

let table3_tests =
  [
    case "definitely-one counts in 1D" (fun () ->
        let s = stats_of "int y; int main() { int *q; int x; q = &y; x = *q; return 0; }" in
        Alcotest.(check int) "one ref" 1 s.Stats.ind_refs;
        Alcotest.(check int) "1D scalar" 1 s.Stats.one_d.Stats.scalar;
        Alcotest.(check int) "replaceable" 1 s.Stats.scalar_rep;
        Alcotest.(check bool) "avg 1" true (s.Stats.avg = 1.0));
    case "possibly-one (other NULL) counts in 1P" (fun () ->
        let s =
          stats_of
            {|int y; int c;
              int main() { int *q; int x; q = 0; if (c) q = &y; x = *q; return 0; }|}
        in
        Alcotest.(check int) "1P scalar" 1 s.Stats.one_p.Stats.scalar;
        Alcotest.(check int) "no rep" 0 s.Stats.scalar_rep);
    case "two targets count in 2P" (fun () ->
        let s =
          stats_of
            {|int y, z; int c;
              int main() { int *q; int x; if (c) q = &y; else q = &z; x = *q; return 0; }|}
        in
        Alcotest.(check int) "2P" 1 s.Stats.two_p.Stats.scalar;
        Alcotest.(check bool) "avg 2" true (s.Stats.avg = 2.0));
    case "array-form references use the second column" (fun () ->
        let s =
          stats_of
            "int a[8]; int main() { int *p; int x; p = a; x = p[0]; return 0; }"
        in
        Alcotest.(check int) "array-form 1D" 1 s.Stats.one_d.Stats.array;
        Alcotest.(check int) "scalar-form none" 0 s.Stats.one_d.Stats.scalar);
    case "heap targets count in To-Heap" (fun () ->
        let s =
          stats_of "int main() { int *p; int x; p = (int*)malloc(4); x = *p; return 0; }"
        in
        Alcotest.(check int) "to heap" 1 s.Stats.to_heap;
        Alcotest.(check int) "to stack" 0 s.Stats.to_stack);
    case "writes through pointers are indirect references too" (fun () ->
        let s = stats_of "int y; int main() { int *q; q = &y; *q = 1; return 0; }" in
        Alcotest.(check int) "one ref" 1 s.Stats.ind_refs);
    case "NULL-only pointers contribute no pairs" (fun () ->
        let s = stats_of "int main() { int *q; q = 0; if (0) *q = 1; return 0; }" in
        Alcotest.(check int) "no pairs" 0 s.Stats.total_pairs);
  ]

let table4_tests =
  [
    case "formal-parameter sources categorize as fp" (fun () ->
        let c =
          Stats.categorize
            (analyze
               {|int g_target; int *gp;
                 void callee(int *p) { int x; x = *p; }
                 int main() { callee(&g_target); return 0; }|})
        in
        Alcotest.(check int) "from fp" 1 c.Stats.from_fp;
        Alcotest.(check int) "to gl" 1 c.Stats.to_gl);
    case "local sources categorize as lo" (fun () ->
        let c =
          Stats.categorize
            (analyze "int g; int main() { int *p; int x; p = &g; x = *p; return 0; }")
        in
        Alcotest.(check int) "from lo" 1 c.Stats.from_lo);
    case "symbolic targets categorize as sy" (fun () ->
        let c =
          Stats.categorize
            (analyze
               {|void callee(int **pp) { int *x; x = *pp; }
                 int main() { int *q; int v; q = &v; callee(&q); return 0; }|})
        in
        Alcotest.(check bool) "to sy" true (c.Stats.to_sy >= 1));
  ]

let table5_tests =
  [
    case "stack/heap pair classification" (fun () ->
        let g =
          Stats.general
            (analyze
               {|int v;
                 int main() { int *p, *q; p = &v; q = (int*)malloc(4); return 0; }|})
        in
        Alcotest.(check bool) "stack-to-stack" true (g.Stats.stack_to_stack > 0);
        Alcotest.(check bool) "stack-to-heap" true (g.Stats.stack_to_heap > 0);
        Alcotest.(check int) "no heap-to-stack" 0 g.Stats.heap_to_stack);
    case "heap-to-heap from linked heap structures" (fun () ->
        let g =
          Stats.general
            (analyze
               {|struct n { struct n *next; };
                 int main() { struct n *a, *b;
                   a = (struct n*)malloc(8); b = (struct n*)malloc(8);
                   a->next = b;
                   return 0; }|})
        in
        Alcotest.(check bool) "heap-to-heap" true (g.Stats.heap_to_heap > 0));
    case "heap-to-stack is reported when the program does it" (fun () ->
        let g =
          Stats.general
            (analyze
               {|int v;
                 int main() { int **p;
                   p = (int**)malloc(8);
                   *p = &v;
                   p = p;
                   return 0; }|})
        in
        Alcotest.(check bool) "heap-to-stack seen" true (g.Stats.heap_to_stack > 0));
    case "max per statement bounds avg" (fun () ->
        let g =
          Stats.general
            (analyze "int v, w; int main() { int *p, *q; p = &v; q = &w; return 0; }")
        in
        Alcotest.(check bool) "avg <= max" true
          (g.Stats.avg_per_stmt <= float_of_int g.Stats.max_per_stmt));
  ]

let table2_6_tests =
  [
    case "characteristics: statements and abstract stack sizes" (fun () ->
        let c =
          Stats.characteristics
            (analyze
               {|int g1; int *gp;
                 void f(int *p) { gp = p; }
                 int main() { f(&g1); return 0; }|})
        in
        Alcotest.(check bool) "stmts > 0" true (c.Stats.c_stmts > 0);
        Alcotest.(check bool) "min <= max" true (c.Stats.c_min_vars <= c.Stats.c_max_vars);
        Alcotest.(check bool) "counts globals at least" true (c.Stats.c_min_vars >= 2));
    case "invocation-graph statistics" (fun () ->
        let s =
          Stats.ig_stats
            (analyze
               {|void f(void) { }
                 void g(void) { f(); }
                 int main() { g(); g(); f(); return 0; }|})
        in
        Alcotest.(check int) "nodes" 6 s.Stats.ig_nodes;
        Alcotest.(check int) "call sites" 4 s.Stats.call_sites;
        Alcotest.(check int) "funcs" 2 s.Stats.n_funcs;
        Alcotest.(check bool) "avg per site" true (s.Stats.avg_per_call_site > 1.0));
    case "recursive/approximate counts" (fun () ->
        let s =
          Stats.ig_stats
            (analyze {|void f(int n) { if (n) f(n - 1); } int main() { f(3); return 0; }|})
        in
        Alcotest.(check int) "R" 1 s.Stats.n_recursive;
        Alcotest.(check int) "A" 1 s.Stats.n_approximate);
  ]

let suite = ("stats", table3_tests @ table4_tests @ table5_tests @ table2_6_tests)
