(** Tests for the applications of points-to analysis: pointer
    replacement and read/write sets (paper §6.1). *)

open Test_util
module PR = Transforms.Pointer_replace
module RW = Transforms.Rw_sets

let replace_tests =
  [
    case "x = *q with q definite is replaceable" (fun () ->
        let res =
          analyze "int y; int main() { int *q; int x; q = &y; x = *q; return 0; }"
        in
        let reps = PR.find res in
        Alcotest.(check int) "one replacement" 1 (List.length reps);
        let rp = List.hd reps in
        Alcotest.(check string) "target" "y" (Fmt.str "%a" Loc.pp rp.PR.rp_target));
    case "possible target is not replaceable" (fun () ->
        let res =
          analyze
            {|int y, z; int c;
              int main() { int *q; int x; if (c) q = &y; else q = &z; x = *q; return 0; }|}
        in
        Alcotest.(check int) "none" 0 (List.length (PR.find res)));
    case "definite invisible target is not replaceable (paper footnote 7)" (fun () ->
        let res =
          analyze
            {|int *g;
              void callee(int *p) { int x; x = *p; g = p; }
              int main() { int v; callee(&v); return 0; }|}
        in
        (* inside callee, p definitely points to 1_p: no direct name *)
        let in_callee =
          List.filter (fun rp -> String.equal rp.PR.rp_func "callee") (PR.find res)
        in
        Alcotest.(check int) "no replacement in callee" 0 (List.length in_callee));
    case "heap target is not replaceable" (fun () ->
        let res =
          analyze "int main() { int *p; int x; p = (int*)malloc(4); x = *p; return 0; }"
        in
        Alcotest.(check int) "none" 0 (List.length (PR.find res)));
    case "replacement through a field path" (fun () ->
        let res =
          analyze
            {|struct s { int v; } g;
              int main() { struct s *p; int x; p = &g; x = p->v; return 0; }|}
        in
        let reps = PR.find res in
        Alcotest.(check bool) "found" true (List.length reps >= 1);
        Alcotest.(check bool) "g.v" true
          (List.exists
             (fun rp -> Fmt.str "%a" Simple_ir.Pp.pp_vref rp.PR.rp_new = "g.v")
             reps));
    case "apply rewrites the program" (fun () ->
        let res =
          analyze "int y; int main() { int *q; int x; q = &y; x = *q; return 0; }"
        in
        let prog', n = PR.apply res in
        Alcotest.(check int) "count" 1 n;
        (* the rewritten program must contain a direct read of y *)
        let reads_y =
          Ir.fold_program
            (fun acc s ->
              match s.Ir.s_desc with
              | Ir.Sassign (_, Ir.Rref { Ir.r_base = "y"; r_deref = false; _ }) -> true
              | _ -> acc)
            false prog'
        in
        Alcotest.(check bool) "direct read" true reads_y);
    case "array head target is replaceable as a[0]" (fun () ->
        let res =
          analyze "int a[8]; int main() { int *p; int x; p = a; x = *p; return 0; }"
        in
        let reps = PR.find res in
        Alcotest.(check bool) "a[0]" true
          (List.exists
             (fun rp -> Fmt.str "%a" Simple_ir.Pp.pp_vref rp.PR.rp_new = "a[0]")
             reps));
  ]

let rw_tests =
  [
    case "assignment writes its L-location definitely" (fun () ->
        let res = analyze "int y; int main() { int *p; p = &y; return 0; }" in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let a = RW.func_summary res fn in
        Alcotest.(check bool) "p must-written" true
          (Loc.Set.mem (Loc.Var ("p", Loc.Klocal)) a.RW.must_write));
    case "store through a possible pointer is a may-write" (fun () ->
        let res =
          analyze
            {|int y, z; int c;
              int main() { int *q; if (c) q = &y; else q = &z; *q = 1; return 0; }|}
        in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let a = RW.func_summary res fn in
        Alcotest.(check bool) "y may-written" true
          (Loc.Set.mem (Loc.Var ("y", Loc.Kglobal)) a.RW.may_write);
        Alcotest.(check bool) "z may-written" true
          (Loc.Set.mem (Loc.Var ("z", Loc.Kglobal)) a.RW.may_write);
        Alcotest.(check bool) "y not must-written" false
          (Loc.Set.mem (Loc.Var ("y", Loc.Kglobal)) a.RW.must_write));
    case "store through a definite pointer is a must-write" (fun () ->
        let res = analyze "int y; int main() { int *q; q = &y; *q = 1; return 0; }" in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let a = RW.func_summary res fn in
        Alcotest.(check bool) "y must-written" true
          (Loc.Set.mem (Loc.Var ("y", Loc.Kglobal)) a.RW.must_write));
    case "reads through pointers show the pointed-to location" (fun () ->
        let res =
          analyze "int y; int main() { int *q; int x; q = &y; x = *q; return 0; }"
        in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let a = RW.func_summary res fn in
        Alcotest.(check bool) "y read" true
          (Loc.Set.mem (Loc.Var ("y", Loc.Kglobal)) a.RW.may_read));
    case "union_access intersects must-writes" (fun () ->
        let a =
          {
            RW.may_write = Loc.Set.singleton Loc.Heap;
            must_write = Loc.Set.singleton Loc.Heap;
            may_read = Loc.Set.empty;
          }
        in
        let b =
          { RW.may_write = Loc.Set.empty; must_write = Loc.Set.empty; may_read = Loc.Set.empty }
        in
        let u = RW.union_access a b in
        Alcotest.(check bool) "may kept" true (Loc.Set.mem Loc.Heap u.RW.may_write);
        Alcotest.(check bool) "must dropped" true (Loc.Set.is_empty u.RW.must_write));
  ]

let suite = ("transforms", replace_tests @ rw_tests)
