test/test_interproc.ml: Alcotest Analysis Pointsto Test_util
