test/test_intra.ml: Alcotest Analysis List Loc Pointsto Pts Test_util
