test/test_mapunmap.ml: Alcotest Ir List Loc Option Pointsto Pts Test_util
