test/test_lval.ml: Alcotest Ir List Loc Option Pointsto Pts Test_util
