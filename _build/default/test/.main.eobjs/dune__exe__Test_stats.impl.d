test/test_stats.ml: Alcotest Pointsto Test_util
