test/test_transforms.ml: Alcotest Analysis Fmt Ir List Loc Option Simple_ir String Test_util Transforms
