test/test_parser_torture.ml: Alcotest Analysis Cfront Hashtbl List Loc Pts Test_util
