test/test_extensions.ml: Alcotest Alias Analysis Constprop Heap_analysis Ir List Loc Option Pointsto Pts Simple_ir String Test_util
