test/test_util.ml: Alcotest Cfront Fmt List Pointsto QCheck2 QCheck_alcotest Simple_ir String
