test/test_pts.ml: Alcotest List Loc Pts QCheck2 Test_util
