test/test_soundness.ml: Alcotest Analysis Buffer Fmt Ir List Loc Map Pointsto Printf Pts QCheck2 String Test_util
