test/main.mli:
