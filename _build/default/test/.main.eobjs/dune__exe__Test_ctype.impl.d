test/test_ctype.ml: Alcotest Cfront Hashtbl Ir List Option Test_util
