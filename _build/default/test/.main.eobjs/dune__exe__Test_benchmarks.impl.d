test/test_benchmarks.ml: Alcotest Alias Analysis Filename Fmt Hashtbl Ir List Pointsto Simple_ir Test_util
