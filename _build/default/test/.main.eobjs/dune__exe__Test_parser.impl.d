test/test_parser.ml: Alcotest Cfront Hashtbl List Test_util
