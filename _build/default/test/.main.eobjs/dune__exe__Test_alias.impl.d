test/test_alias.ml: Alcotest Alias Analysis Fmt List Loc Pts String Test_util
