test/test_simplify.ml: Alcotest Cfront Ir List Simple_ir String Test_util
