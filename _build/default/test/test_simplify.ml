(** Tests for the SIMPLE lowering: the restrictions of paper §2 hold on
    the output of the simplifier (single-level indirection, simple call
    arguments, hoisted initializers, restructured side-effecting
    conditions), and the lowering of specific constructs. *)

open Test_util
module Ctype = Cfront.Ctype

let func p name =
  match Ir.find_func p name with
  | Some f -> f
  | None -> Alcotest.failf "no function %s" name

(** Collect all variable references of a function's basic statements. *)
let all_refs fn =
  let of_rhs = function
    | Ir.Rref r | Ir.Raddr r | Ir.Rarith (r, _) -> [ r ]
    | Ir.Rbinop (_, a, b) ->
        List.filter_map (function Ir.Oref r -> Some r | _ -> None) [ a; b ]
    | Ir.Runop (_, a) -> ( match a with Ir.Oref r -> [ r ] | _ -> [])
    | Ir.Rconst _ | Ir.Rnull | Ir.Rstr | Ir.Rmalloc -> []
  in
  List.rev
    (Ir.fold_func
       (fun acc s ->
         match s.Ir.s_desc with
         | Ir.Sassign (l, rhs) -> List.rev_append (l :: of_rhs rhs) acc
         | Ir.Scall (lhs, callee, args) ->
             let cs = match callee with Ir.Cindirect r -> [ r ] | Ir.Cdirect _ -> [] in
             let ls = match lhs with Some l -> [ l ] | None -> [] in
             let args =
               List.filter_map (function Ir.Oref r -> Some r | _ -> None) args
             in
             List.rev_append (ls @ cs @ args) acc
         | _ -> acc)
       [] fn)

let count_stmts_desc fn pred = Ir.fold_func (fun n s -> if pred s then n + 1 else n) 0 fn

let invariant_tests =
  [
    case "multi-level dereferences are decomposed" (fun () ->
        let p = simplify "int f(int ***ppp) { return ***ppp; }" in
        let refs = all_refs (func p "f") in
        (* no reference both dereferences and then dereferences again;
           each has at most the single deref flag *)
        Alcotest.(check bool) "refs exist" true (refs <> []);
        List.iter
          (fun (r : Ir.vref) ->
            (* a deref'd base must be a plain variable name *)
            if r.Ir.r_deref then
              Alcotest.(check bool) "base is simple" true (String.length r.Ir.r_base > 0))
          refs);
    case "call arguments become constants or variables" (fun () ->
        let p =
          simplify
            "int g(int, int*); int f(int *p, int x) { return g(x * 2 + *p, &x); }"
        in
        Ir.fold_func
          (fun () s ->
            match s.Ir.s_desc with
            | Ir.Scall (_, _, args) ->
                List.iter
                  (fun a ->
                    match a with
                    | Ir.Oref r ->
                        Alcotest.(check bool) "plain var arg" true (Ir.is_plain_var r)
                    | Ir.Oconst _ | Ir.Onull | Ir.Ostr -> ())
                  args
            | _ -> ())
          () (func p "f"));
    case "nested calls are flattened" (fun () ->
        let p = simplify "int g(int); int f(int x) { return g(g(g(x))); }" in
        Alcotest.(check int) "three calls" 3
          (count_stmts_desc (func p "f") (fun s ->
               match s.Ir.s_desc with Ir.Scall _ -> true | _ -> false)));
    case "global initializers move into main" (fun () ->
        let p = simplify "int x; int *p = &x; int main() { return 0; }" in
        let main = func p "main" in
        Alcotest.(check bool) "main starts with p = &x" true
          (match main.Ir.fn_body with
          | { Ir.s_desc = Ir.Sassign ({ Ir.r_base = "p"; _ }, Ir.Raddr _); _ } :: _ -> true
          | _ -> false));
    case "local initializers become statements in place" (fun () ->
        let p = simplify "int f() { int x = 4; int *p = &x; return *p; }" in
        Alcotest.(check bool) "has assignments" true
          (count_stmts_desc (func p "f") (fun s ->
               match s.Ir.s_desc with Ir.Sassign _ -> true | _ -> false)
          >= 2));
    case "array initializer lists expand element-wise" (fun () ->
        let p = simplify "int f() { int *t[2] = { 0, 0 }; return 0; }" in
        Alcotest.(check bool) "two element inits" true
          (count_stmts_desc (func p "f") (fun s ->
               match s.Ir.s_desc with
               | Ir.Sassign ({ Ir.r_path = [ Ir.Sindex _ ]; _ }, _) -> true
               | _ -> false)
          = 2));
    case "struct copies expand to pointer-carrying fields" (fun () ->
        let p =
          simplify
            "struct s { int a; int *p; int *q; }; \
             int f() { struct s x, y; x = y; return 0; }"
        in
        (* one assignment per pointer field (a carries no pointers) *)
        Alcotest.(check int) "two field copies" 2
          (count_stmts_desc (func p "f") (fun s ->
               match s.Ir.s_desc with
               | Ir.Sassign ({ Ir.r_path = [ Ir.Sfield _ ]; _ }, Ir.Rref _) -> true
               | _ -> false)));
    case "shadowed locals are renamed apart" (fun () ->
        let p = simplify "int x; int f() { int x; { int x; x = 1; } x = 2; return x; }" in
        let names = List.map fst (func p "f").Ir.fn_locals in
        let uniq = List.sort_uniq compare names in
        Alcotest.(check int) "all distinct" (List.length names) (List.length uniq);
        Alcotest.(check bool) "none clashes with the global" true
          (not (List.exists (String.equal "x") (List.tl (List.sort compare names)))));
  ]

let lowering_tests =
  [
    case "pointer subscript lowers to a shift selector" (fun () ->
        let p = simplify "int f(int *p, int i) { return p[i]; }" in
        let has_shift =
          List.exists
            (fun (r : Ir.vref) ->
              r.Ir.r_deref
              && List.exists (function Ir.Sshift _ -> true | _ -> false) r.Ir.r_path)
            (all_refs (func p "f"))
        in
        Alcotest.(check bool) "shift" true has_shift);
    case "array subscript lowers to an index selector" (fun () ->
        let p = simplify "int a[4]; int f(int i) { return a[i]; }" in
        let has_index =
          List.exists
            (fun (r : Ir.vref) ->
              (not r.Ir.r_deref)
              && List.exists (function Ir.Sindex _ -> true | _ -> false) r.Ir.r_path)
            (all_refs (func p "f"))
        in
        Alcotest.(check bool) "index" true has_index);
    case "e->f lowers to deref-then-field" (fun () ->
        let p = simplify "struct s { int v; }; int f(struct s *p) { return p->v; }" in
        let ok =
          List.exists
            (fun (r : Ir.vref) -> r.Ir.r_deref && r.Ir.r_path = [ Ir.Sfield "v" ])
            (all_refs (func p "f"))
        in
        Alcotest.(check bool) "(*p).v" true ok);
    case "&*p simplifies to p" (fun () ->
        let p = simplify "int f(int *p) { int *q; q = &*p; return *q; }" in
        let copies_p =
          count_stmts_desc (func p "f") (fun s ->
              match s.Ir.s_desc with
              | Ir.Sassign ({ Ir.r_base = "q"; _ }, Ir.Rref { Ir.r_base = "p"; r_deref = false; _ })
                ->
                  true
              | _ -> false)
        in
        Alcotest.(check int) "q = p" 1 copies_p);
    case "malloc family maps to Rmalloc" (fun () ->
        let p =
          simplify
            "int main() { int *a, *b, *c; a = (int*)malloc(4); b = (int*)calloc(1,4); \
             c = (int*)realloc(a, 8); return 0; }"
        in
        Alcotest.(check int) "three allocations" 3
          (count_stmts_desc (func p "main") (fun s ->
               match s.Ir.s_desc with Ir.Sassign (_, Ir.Rmalloc) -> true | _ -> false)));
    case "0 in pointer context becomes NULL" (fun () ->
        let p = simplify "int main() { int *p; p = 0; return 0; }" in
        Alcotest.(check int) "one null assignment" 1
          (count_stmts_desc (func p "main") (fun s ->
               match s.Ir.s_desc with Ir.Sassign (_, Ir.Rnull) -> true | _ -> false)));
    case "0 in integer context stays a constant" (fun () ->
        let p = simplify "int main() { int x; x = 0; return 0; }" in
        Alcotest.(check int) "no null assignment" 0
          (count_stmts_desc (func p "main") (fun s ->
               match s.Ir.s_desc with Ir.Sassign (_, Ir.Rnull) -> true | _ -> false)));
    case "p++ becomes pointer arithmetic" (fun () ->
        let p = simplify "int f(int *p) { p++; return 0; }" in
        Alcotest.(check int) "one Rarith" 1
          (count_stmts_desc (func p "f") (fun s ->
               match s.Ir.s_desc with
               | Ir.Sassign (_, Ir.Rarith (_, Ir.Ppos)) -> true
               | _ -> false)));
    case "side-effecting while condition re-evaluates on the back edge" (fun () ->
        let p =
          simplify
            "struct n { struct n *next; }; \
             int f(struct n *p) { int k; k = 0; while ((p = p->next) != 0) k++; return k; }"
        in
        let found =
          Ir.fold_func
            (fun acc s ->
              match s.Ir.s_desc with
              | Ir.Sloop l -> acc || l.Ir.l_cond_stmts <> []
              | _ -> acc)
            false (func p "f")
        in
        Alcotest.(check bool) "cond stmts present" true found);
    case "impure short-circuit condition restructures into nested ifs" (fun () ->
        let p =
          simplify "int g(void); int f(int a) { if (a && g()) return 1; return 0; }"
        in
        let has_if =
          count_stmts_desc (func p "f") (fun s ->
              match s.Ir.s_desc with Ir.Sif _ -> true | _ -> false)
        in
        Alcotest.(check bool) "at least two ifs" true (has_if >= 2));
    case "pure short-circuit condition stays a condition" (fun () ->
        let p = simplify "int f(int a, int b) { if (a && b < 3) return 1; return 0; }" in
        Alcotest.(check int) "single if" 1
          (count_stmts_desc (func p "f") (fun s ->
               match s.Ir.s_desc with Ir.Sif _ -> true | _ -> false)));
    case "for loop carries its step separately" (fun () ->
        let p = simplify "int f(int n) { int i, s; s = 0; for (i = 0; i < n; i++) s += i; return s; }" in
        let ok =
          Ir.fold_func
            (fun acc s ->
              match s.Ir.s_desc with
              | Ir.Sloop { Ir.l_kind = `For; l_step; _ } -> acc || l_step <> []
              | _ -> acc)
            false (func p "f")
        in
        Alcotest.(check bool) "step" true ok);
    case "switch groups preserve fall-through structure" (fun () ->
        let p =
          simplify
            "int f(int x) { int y; y = 0; switch (x) { case 1: y = 1; case 2: y = 2; \
             break; default: y = 9; } return y; }"
        in
        let groups =
          Ir.fold_func
            (fun acc s ->
              match s.Ir.s_desc with Ir.Sswitch (_, gs) -> acc + List.length gs | _ -> acc)
            0 (func p "f")
        in
        Alcotest.(check int) "three groups" 3 groups);
    case "statement counts include control statements" (fun () ->
        let p = simplify "int f(int n) { if (n) return 1; return 0; }" in
        Alcotest.(check bool) "counted" true (Ir.count_stmts (func p "f") >= 3));
    case "address-taken functions are detected" (fun () ->
        let p =
          simplify
            "int a(void) { return 1; } int b(void) { return 2; } int c(void) { return 3; } \
             int (*fp)(void); int main() { fp = a; fp = &b; return c(); }"
        in
        let at = List.sort compare (Ir.address_taken_funcs p) in
        Alcotest.(check (list string)) "a and b" [ "a"; "b" ] at);
    case "unsupported construct reports a location" (fun () ->
        match simplify "int f() { return *3; }" with
        | exception Simple_ir.Simplify.Unsupported _ -> ()
        | exception Cfront.Srcloc.Error _ -> ()
        | _ -> Alcotest.fail "expected an error");
  ]

let suite = ("simplify", invariant_tests @ lowering_tests)
