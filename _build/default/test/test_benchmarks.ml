(** Integration tests over the benchmark suite: every benchmark parses,
    simplifies and analyzes; the qualitative properties the paper reports
    hold on our synthetic counterparts (see EXPERIMENTS.md). *)

open Test_util
module Stats = Pointsto.Stats

let bench_dir = "../benchmarks"

let bench_path name = Filename.concat bench_dir (name ^ ".c")

let all_names =
  [
    "genetic"; "dry"; "clinpack"; "config"; "toplev"; "compress"; "mway"; "hash";
    "misr"; "xref"; "stanford"; "fixoutput"; "sim"; "travel"; "csuite"; "msc"; "lws";
  ]

let analyzed : (string, Analysis.result) Hashtbl.t = Hashtbl.create 18

let result name =
  match Hashtbl.find_opt analyzed name with
  | Some r -> r
  | None ->
      let r = Analysis.of_file (bench_path name) in
      Hashtbl.replace analyzed name r;
      r

let per_benchmark =
  List.map
    (fun name ->
      case ("analyzes: " ^ name) (fun () ->
          let r = result name in
          let g = Stats.general r in
          let i = Stats.indirect_stats r in
          let ig = Stats.ig_stats r in
          Alcotest.(check bool) "has statements" true (r.Analysis.prog.Ir.n_stmts > 0);
          Alcotest.(check bool) "terminates normally" true
            (r.Analysis.entry_output <> None);
          (* the paper's central empirical claims, as program properties *)
          Alcotest.(check int)
            "no heap-to-stack pairs (paper Table 5)" 0 g.Stats.heap_to_stack;
          Alcotest.(check bool) "avg targets bounded" true (i.Stats.avg <= 3.0);
          Alcotest.(check bool) "ig nodes >= call sites reached" true
            (ig.Stats.ig_nodes >= 1)))
    all_names

let aggregate_tests =
  [
    case "overall per-reference average is close to one (paper: 1.13)" (fun () ->
        let total_pairs, total_refs =
          List.fold_left
            (fun (tp, tr) name ->
              let i = Stats.indirect_stats (result name) in
              (tp + i.Stats.total_pairs, tr + i.Stats.ind_refs))
            (0, 0) all_names
        in
        let avg = float_of_int total_pairs /. float_of_int total_refs in
        Alcotest.(check bool)
          (Fmt.str "1.0 <= avg (%.2f) <= 1.6" avg)
          true
          (avg >= 1.0 && avg <= 1.6));
    case "a substantial fraction of refs has a definite target (paper: 28.8%)" (fun () ->
        let d, total =
          List.fold_left
            (fun (d, t) name ->
              let i = Stats.indirect_stats (result name) in
              (d + Stats.pair_total i.Stats.one_d, t + i.Stats.ind_refs))
            (0, 0) all_names
        in
        let frac = float_of_int d /. float_of_int total in
        Alcotest.(check bool) (Fmt.str "frac %.2f >= 0.15" frac) true (frac >= 0.15));
    case "most refs resolve to at most one location (paper: 90.76%)" (fun () ->
        let one, total =
          List.fold_left
            (fun (o, t) name ->
              let i = Stats.indirect_stats (result name) in
              ( o + Stats.pair_total i.Stats.one_d + Stats.pair_total i.Stats.one_p,
                t + i.Stats.ind_refs ))
            (0, 0) all_names
        in
        let frac = float_of_int one /. float_of_int total in
        Alcotest.(check bool) (Fmt.str "frac %.2f >= 0.6" frac) true (frac >= 0.6));
    case "csuite: every kernel called once (paper Avgc = Avgf = 1.00)" (fun () ->
        let s = Stats.ig_stats (result "csuite") in
        Alcotest.(check int) "funcs = 36" 36 s.Stats.n_funcs;
        Alcotest.(check bool) "Avgf close to 1" true (s.Stats.avg_per_func <= 1.1));
    case "lws: all pairs stay on the stack (paper Table 5)" (fun () ->
        let g = Stats.general (result "lws") in
        Alcotest.(check int) "no stack-to-heap" 0 g.Stats.stack_to_heap;
        Alcotest.(check int) "no heap-to-heap" 0 g.Stats.heap_to_heap);
    case "sim: heap-directed traffic dominates (paper: 319 of 353)" (fun () ->
        let i = Stats.indirect_stats (result "sim") in
        Alcotest.(check bool) "to-heap > to-stack" true (i.Stats.to_heap > i.Stats.to_stack));
    case "clinpack: definite array-form references dominate (paper: 98 rel-D)" (fun () ->
        let i = Stats.indirect_stats (result "clinpack") in
        Alcotest.(check bool) "array-form definites" true (i.Stats.one_d.Stats.array > 10));
    case "stanford: recursion shows up in the invocation graph" (fun () ->
        let s = Stats.ig_stats (result "stanford") in
        Alcotest.(check bool) "R > 0" true (s.Stats.n_recursive > 0);
        Alcotest.(check bool) "A > 0" true (s.Stats.n_approximate > 0));
  ]

let livc_tests =
  [
    case "livc: precise call-graph binds 24 kernels per site (paper §6)" (fun () ->
        let p = Simple_ir.Simplify.of_file (bench_path "livc") in
        Alcotest.(check (list int)) "fanout 24/24/24" [ 24; 24; 24 ]
          (Alias.Callgraph.indirect_fanout p Alias.Callgraph.Precise);
        Alcotest.(check (list int)) "naive fanout 82" [ 82; 82; 82 ]
          (Alias.Callgraph.indirect_fanout p Alias.Callgraph.Naive);
        Alcotest.(check (list int)) "address-taken fanout 72" [ 72; 72; 72 ]
          (Alias.Callgraph.indirect_fanout p Alias.Callgraph.Address_taken);
        let precise = Alias.Callgraph.ig_size p Alias.Callgraph.Precise in
        let at = Alias.Callgraph.ig_size p Alias.Callgraph.Address_taken in
        let naive = Alias.Callgraph.ig_size p Alias.Callgraph.Naive in
        Alcotest.(check bool)
          (Fmt.str "precise (%d) < addr-taken (%d) < naive (%d)" precise at naive)
          true
          (precise < at && at < naive));
  ]

let suite = ("benchmarks", per_benchmark @ aggregate_tests @ livc_tests)
