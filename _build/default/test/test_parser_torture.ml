(** Additional front-end robustness tests: declarator torture,
    expression corner cases, and full-pipeline checks that realistic C
    idioms survive parse, simplification and analysis. *)

open Test_util
module Ast = Cfront.Ast
module Ctype = Cfront.Ctype

let global_type p name =
  match List.find_opt (fun (d : Ast.decl) -> d.Ast.d_name = name) p.Ast.p_globals with
  | Some d -> Ctype.to_string d.Ast.d_ty
  | None -> Alcotest.failf "no global %s" name

let check_type msg src name expected =
  Alcotest.(check string) msg expected (global_type (parse src) name)

let declarator_torture =
  [
    case "function returning pointer to array" (fun () ->
        (* a prototype, not a variable: check the recorded signature *)
        let p = parse "int (*f(void))[5];" in
        match List.assoc_opt "f" p.Ast.p_protos with
        | Some s -> Alcotest.(check string) "ret" "int[5]*" (Ctype.to_string s.Ctype.ret)
        | None -> Alcotest.fail "no prototype for f");
    case "array of pointers to functions returning pointers" (fun () ->
        check_type "t" "int *(*tab[3])(void);" "tab" "int*()*[3]");
    case "pointer to array of function pointers" (fun () ->
        check_type "t" "int (*(*p)[4])(void);" "p" "int()*[4]*");
    case "const/volatile qualifiers are absorbed" (fun () ->
        check_type "t" "const volatile int * const p;" "p" "int*");
    case "nested parenthesized declarators" (fun () ->
        check_type "t" "int (*(*pp))(void);" "pp" "int()**");
    case "three-dimensional array" (fun () ->
        check_type "t" "char cube[2][3][4];" "cube" "char[2][3][4]");
    case "unnamed parameters in prototypes" (fun () ->
        let p = parse "int f(int, char *, void (*)(int));" in
        match List.assoc_opt "f" p.Ast.p_protos with
        | Some s -> Alcotest.(check int) "three params" 3 (List.length s.Ctype.params)
        | None -> Alcotest.fail "no proto");
    case "typedef chains through pointers and arrays" (fun () ->
        check_type "t"
          "typedef int elem; typedef elem row[4]; typedef row *rowptr; rowptr g;" "g"
          "int[4]*");
    case "struct with a function-pointer field parses" (fun () ->
        let p = parse "struct vt { int (*call)(struct vt *, int); };" in
        let l = Hashtbl.find p.Ast.p_layouts "vt" in
        Alcotest.(check int) "one field" 1 (List.length l.Ctype.fields));
    case "self-referential struct through two pointers" (fun () ->
        let p = parse "struct g { struct g *left, *right; } root;" in
        ignore (global_type p "root"));
  ]

let pipeline_idioms =
  [
    case "idiom: swap via xor (no pointers disturbed)" (fun () ->
        check_exit "xor swap"
          {|int v;
            int main() { int *p; int a, b; p = &v; a = 1; b = 2;
              a ^= b; b ^= a; a ^= b;
              return 0; }|}
          "p" [ "v/D" ]);
    case "idiom: string walk with post-increment" (fun () ->
        check_exit "strcpy-like"
          {|char buf[16];
            int main() { char *d, *s; d = buf; s = "hi";
              while ((*d++ = *s++) != 0) { }
              return 0; }|}
          (* d is incremented before every condition test, so at exit it
             is definitely past the head *)
          "d" [ "buf_tail/D" ]);
    case "idiom: take address of array element in a call" (fun () ->
        check_exit "sub-array"
          {|int m[8]; int *g;
            void sink(int *p) { g = p; }
            int main() { sink(&m[4]); return 0; }|}
          "g" [ "m_tail/D" ]);
    case "idiom: conditional expression selecting pointers" (fun () ->
        check_exit "ternary"
          {|int a, b; int c;
            int main() { int *p; p = c ? &a : &b; return 0; }|}
          "p" [ "a/P"; "b/P" ]);
    case "idiom: chained assignment of pointers" (fun () ->
        let res =
          analyze "int v; int main() { int *p, *q, *r; p = q = r = &v; return 0; }"
        in
        check_targets "p" [ "v/D" ] (exit_targets res "p");
        check_targets "q" [ "v/D" ] (exit_targets res "q");
        check_targets "r" [ "v/D" ] (exit_targets res "r"));
    case "idiom: comma expression with pointer side effects" (fun () ->
        check_exit "comma"
          {|int a, b;
            int main() { int *p; int x; x = (p = &a, 1); p = (x ? (p = &b, p) : p);
              return 0; }|}
          "p" [ "a/P"; "b/P" ]);
    case "idiom: negative-looking subscripts through locals" (fun () ->
        check_exit "expr subscript"
          {|int m[8];
            int main(int argc, char **argv) { int *p; p = &m[argc * 2 - 1]; return 0; }|}
          "p" [ "m_head/P"; "m_tail/P" ]);
    case "idiom: function pointer comparison in a condition" (fun () ->
        check_exit "fp compare"
          {|void f(void) {}
            int main() { void (*fp)(void); fp = f;
              if (fp == f) { fp = 0; }
              return 0; }|}
          "fp" [ "fn:f/P" ]);
    case "idiom: sizeof does not evaluate its operand" (fun () ->
        check_exit "sizeof"
          {|int v;
            int main() { int *p; int n; p = &v; n = (int) sizeof(*p); return 0; }|}
          "p" [ "v/D" ]);
    case "idiom: do-while(0) wrapper" (fun () ->
        check_exit "do-while-0"
          {|int v;
            int main() { int *p; do { p = &v; } while (0); return 0; }|}
          "p" [ "v/D" ]);
    case "idiom: early continue guarding a store" (fun () ->
        check_exit "guarded store"
          {|int a[4]; int *slots[4];
            int main() { int i;
              for (i = 0; i < 4; i++) {
                if (i == 0) continue;
                slots[i] = &a[i];
              }
              return 0; }|}
          "i" [] |> ignore;
        let res =
          analyze
            {|int a[4]; int *slots[4];
              int main() { int i;
                for (i = 0; i < 4; i++) {
                  if (i == 0) continue;
                  slots[i] = &a[i];
                }
                return 0; }|}
        in
        match res.Analysis.entry_output with
        | None -> Alcotest.fail "no exit"
        | Some s ->
            let tails =
              Pts.targets (Loc.Tail (Loc.Var ("slots", Loc.Kglobal))) s
              |> List.filter (fun (t, _) -> not (Loc.is_null t))
              |> List.map show_pair |> sorted_strings
            in
            Alcotest.(check (list string)) "slots tail" [ "a_head/P"; "a_tail/P" ] tails);
    case "idiom: returning a struct by value copies pointer fields" (fun () ->
        check_exit "struct return"
          {|int v;
            struct pair { int *x; int n; };
            struct pair make(void) { struct pair r; r.x = &v; r.n = 0; return r; }
            int main() { struct pair got; int *p; got = make(); p = got.x; return 0; }|}
          "p" [ "v/D" ]);
  ]

let suite = ("torture", declarator_torture @ pipeline_idioms)
