(** Property-based soundness testing: random pointer programs are
    rendered to C, pushed through the full pipeline (parse, simplify,
    context-sensitive analysis), and the resulting exit points-to set is
    checked against a concrete interpreter that enumerates every
    execution path (Definition 3.3 of the paper):

    - every points-to fact observed on some valid concrete path must be
      present in the analysis result (possible or definite);
    - every definite pair claimed by the analysis must hold on every
      valid concrete path.

    Paths that would dereference NULL are undefined behaviour and are
    excluded (matching the paper's assumption that dereferenced pointers
    are non-NULL at run time). *)

open Test_util

(* Variable universe: three ints, three int*, two int**; all globals so
   that generated helper functions can touch them too. *)
let l0_vars = [ "a"; "b"; "c" ]
let l1_vars = [ "p"; "q"; "r" ]
let l2_vars = [ "x"; "y" ]

type stmt =
  | Take1 of string * string  (** p = &a *)
  | Copy1 of string * string  (** p = q *)
  | Load1 of string * string  (** p = *x *)
  | Null1 of string  (** p = 0 *)
  | Malloc1 of string  (** p = malloc *)
  | Take2 of string * string  (** x = &p *)
  | Copy2 of string * string  (** x = y *)
  | Store1 of string * string  (** *x = p *)
  | If of stmt list * stmt list
  | While of stmt list
  | Call of int  (** call generated helper [i] *)
  | CallArg of int * string
      (** call generated pointer-helper [i] with level-2 argument [&p]:
          the helper writes through its parameter, exercising map/unmap
          of invisible variables *)

(* ------------------------------------------------------------------ *)
(* Rendering to C                                                     *)
(* ------------------------------------------------------------------ *)

(* the bodies of the arg-taking helpers, fixed: each writes through or
   reads its int** parameter "ap" in a different way *)
type arg_helper = Hstore of string  (** *ap = &x *) | Hload of string  (** p = *ap *)

let arg_helpers : arg_helper list = [ Hstore "a"; Hstore "b"; Hload "q" ]

let render (helpers : stmt list list) (body : stmt list) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "int %s;\n" (String.concat ", " l0_vars);
  pf "int *%s;\n" (String.concat ", *" l1_vars);
  pf "int **%s;\n" (String.concat ", **" l2_vars);
  pf "int cnd;\n";
  let rec stmts ind l = List.iter (stmt ind) l
  and stmt ind s =
    let pad = String.make ind ' ' in
    match s with
    | Take1 (d, s) -> pf "%s%s = &%s;\n" pad d s
    | Copy1 (d, s) | Copy2 (d, s) -> pf "%s%s = %s;\n" pad d s
    | Load1 (d, s) -> pf "%s%s = *%s;\n" pad d s
    | Null1 d -> pf "%s%s = 0;\n" pad d
    | Malloc1 d -> pf "%s%s = (int*)malloc(4);\n" pad d
    | Take2 (d, s) -> pf "%s%s = &%s;\n" pad d s
    | Store1 (d, s) -> pf "%sif (%s != 0) *%s = %s;\n" pad d d s
    | If (t, e) ->
        pf "%sif (cnd) {\n" pad;
        stmts (ind + 2) t;
        pf "%s} else {\n" pad;
        stmts (ind + 2) e;
        pf "%s}\n" pad
    | While b ->
        pf "%swhile (cnd) {\n" pad;
        stmts (ind + 2) b;
        pf "%s}\n" pad
    | Call i -> pf "%shelper%d();\n" pad i
    | CallArg (i, v) -> pf "%sarg_helper%d(&%s);\n" pad i v
  in
  List.iteri
    (fun i h ->
      match h with
      | Hstore tgt -> pf "void arg_helper%d(int **ap) { *ap = &%s; }\n" i tgt
      | Hload dst -> pf "void arg_helper%d(int **ap) { %s = *ap; }\n" i dst)
    arg_helpers;
  List.iteri
    (fun i b ->
      pf "void helper%d(void) {\n" i;
      stmts 2 b;
      pf "}\n")
    helpers;
  pf "int main() {\n";
  stmts 2 body;
  pf "  return 0;\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Concrete interpreter                                               *)
(* ------------------------------------------------------------------ *)

type value =
  | Vnull
  | Vvar of string  (** address of a named variable (level 0 or 1) *)
  | Vheap of int  (** address of heap cell [i] *)

module SM = Map.Make (String)

type cstate = {
  vars : value SM.t;  (** pointer variables only *)
  heap : value list;  (** heap cells (each may hold a pointer) *)
}

let init_state =
  {
    vars =
      List.fold_left (fun m v -> SM.add v Vnull m) SM.empty (l1_vars @ l2_vars);
    heap = [];
  }

(** All final states over all path decisions (bounded loop unrollings);
    paths dereferencing NULL are discarded as undefined. *)
let interpret (helpers : stmt list list) (body : stmt list) : cstate list =
  let max_states = 512 in
  let read st v = SM.find v st.vars in
  let deref st v =
    match read st v with
    | Vnull -> None
    | Vvar w -> Some (`Var w)
    | Vheap i -> Some (`Heap i)
  in
  let rec exec_list sts stmts =
    List.fold_left (fun sts s -> exec sts s) sts stmts
  and exec (sts : cstate list) (s : stmt) : cstate list =
    (* bound the path count: deduplicate, then truncate (checking a
       subset of paths only weakens the test, never its validity) *)
    let cap l =
      let l = List.sort_uniq compare l in
      if List.length l > max_states then List.filteri (fun i _ -> i < max_states) l else l
    in
    match s with
    | Take1 (d, sv) | Take2 (d, sv) ->
        List.map (fun st -> { st with vars = SM.add d (Vvar sv) st.vars }) sts
    | Copy1 (d, sv) | Copy2 (d, sv) ->
        List.map (fun st -> { st with vars = SM.add d (read st sv) st.vars }) sts
    | Null1 d -> List.map (fun st -> { st with vars = SM.add d Vnull st.vars }) sts
    | Malloc1 d ->
        List.map
          (fun st ->
            {
              vars = SM.add d (Vheap (List.length st.heap)) st.vars;
              heap = st.heap @ [ Vnull ];
            })
          sts
    | Load1 (d, sv) ->
        List.filter_map
          (fun st ->
            match deref st sv with
            | None -> None (* null dereference: path undefined *)
            | Some (`Var w) -> Some { st with vars = SM.add d (read st w) st.vars }
            | Some (`Heap i) ->
                Some { st with vars = SM.add d (List.nth st.heap i) st.vars })
          sts
    | Store1 (d, sv) ->
        List.map
          (fun st ->
            (* rendering guards the store with a null check *)
            match deref st d with
            | None -> st
            | Some (`Var w) -> { st with vars = SM.add w (read st sv) st.vars }
            | Some (`Heap i) ->
                {
                  st with
                  heap = List.mapi (fun j c -> if j = i then read st sv else c) st.heap;
                })
          sts
    | If (t, e) -> cap (exec_list sts t @ exec_list sts e)
    | While b ->
        (* 0, 1 or 2 iterations *)
        let once = exec_list sts b in
        let twice = exec_list once b in
        cap (sts @ once @ twice)
    | Call i -> exec_list sts (List.nth helpers i)
    | CallArg (i, v) ->
        (* inline the fixed arg-helper body: ap = &v *)
        List.map
          (fun st ->
            match List.nth arg_helpers i with
            | Hstore tgt -> { st with vars = SM.add v (Vvar tgt) st.vars }
            | Hload dst -> { st with vars = SM.add dst (read st v) st.vars })
          sts
  in
  exec_list [ init_state ] body

(* ------------------------------------------------------------------ *)
(* The safety check                                                   *)
(* ------------------------------------------------------------------ *)

let target_name = function
  | Vnull -> "NULL"
  | Vvar w -> w
  | Vheap _ -> "heap"

(** Check Definition 3.3 against the concrete states. *)
let check_safety (helpers : stmt list list) (body : stmt list) : bool =
  let src = render helpers body in
  let res = analyze src in
  let exit_set =
    match res.Analysis.entry_output with
    | Some s -> s
    | None -> Alcotest.failf "no exit state for:\n%s" src
  in
  let main_fn =
    match Ir.find_func res.Analysis.prog "main" with Some f -> f | None -> assert false
  in
  let loc_of_var v =
    match Pointsto.Tenv.base_loc res.Analysis.tenv main_fn v with
    | Some l -> l
    | None -> assert false
  in
  let loc_of_value = function
    | Vnull -> Loc.Null
    | Vvar w -> loc_of_var w
    | Vheap _ -> Loc.Heap
  in
  let states = interpret helpers body in
  (* (1) every concrete fact is covered *)
  let covered =
    List.for_all
      (fun st ->
        SM.for_all
          (fun v value ->
            let ok = Pts.mem (loc_of_var v) (loc_of_value value) exit_set in
            if not ok then
              Fmt.epr "MISSING: %s -> %s@.%s@." v (target_name value) src;
            ok)
          st.vars)
      states
  in
  (* (2) every definite claim holds on every path *)
  let definites_ok =
    List.for_all
      (fun v ->
        let l = loc_of_var v in
        List.for_all
          (fun (tgt, c) ->
            c = Pts.P
            || List.for_all
                 (fun st -> Loc.equal (loc_of_value (SM.find v st.vars)) tgt)
                 states
            ||
            (Fmt.epr "SPURIOUS DEFINITE: %s -> %a@.%s@." v Loc.pp tgt src;
             false))
          (Pts.targets l exit_set))
      (l1_vars @ l2_vars)
  in
  (* vacuous if all paths were undefined *)
  states = [] || (covered && definites_ok)

(* ------------------------------------------------------------------ *)
(* Generators                                                         *)
(* ------------------------------------------------------------------ *)

let gen_stmt ~depth ~n_helpers : stmt QCheck2.Gen.t =
  let open QCheck2.Gen in
  let l0 = oneofl l0_vars in
  let l1 = oneofl l1_vars in
  let l2 = oneofl l2_vars in
  let base =
    [
      (3, map2 (fun d s -> Take1 (d, s)) l1 l0);
      (2, map2 (fun d s -> Copy1 (d, s)) l1 l1);
      (2, map2 (fun d s -> Load1 (d, s)) l1 l2);
      (1, map (fun d -> Null1 d) l1);
      (1, map (fun d -> Malloc1 d) l1);
      (2, map2 (fun d s -> Take2 (d, s)) l2 l1);
      (1, map2 (fun d s -> Copy2 (d, s)) l2 l2);
      (2, map2 (fun d s -> Store1 (d, s)) l2 l1);
    ]
  in
  let base =
    (1, map2 (fun i v -> CallArg (i, v)) (int_bound (List.length arg_helpers - 1)) l1)
    :: (if n_helpers > 0 then [ (1, map (fun i -> Call i) (int_bound (n_helpers - 1))) ]
        else [])
    @ base
  in
  fix
    (fun self depth ->
      if depth = 0 then frequency base
      else
        frequency
          (base
          @ [
              ( 1,
                map2 (fun t e -> If (t, e))
                  (list_size (int_bound 3) (self (depth - 1)))
                  (list_size (int_bound 3) (self (depth - 1))) );
              (1, map (fun b -> While b) (list_size (int_bound 3) (self (depth - 1))));
            ]))
    depth

let gen_program : (stmt list list * stmt list) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* n_helpers = int_bound 2 in
  let* helpers =
    list_repeat n_helpers (list_size (int_bound 4) (gen_stmt ~depth:1 ~n_helpers:0))
  in
  let* body = list_size (int_range 1 8) (gen_stmt ~depth:2 ~n_helpers) in
  return (helpers, body)

let suite =
  ( "soundness",
    [
      qcase ~count:300 "analysis is safe w.r.t. the concrete semantics" gen_program
        (fun (helpers, body) -> check_safety helpers body);
      case "regression: conditional store through double pointer" (fun () ->
          Alcotest.(check bool) "safe" true
            (check_safety []
               [
                 Take1 ("p", "a");
                 Take2 ("x", "p");
                 If ([ Take2 ("x", "q") ], []);
                 Store1 ("x", "r");
               ]));
      case "regression: loop rebinding" (fun () ->
          Alcotest.(check bool) "safe" true
            (check_safety []
               [ Take1 ("p", "a"); While [ Copy1 ("q", "p"); Take1 ("p", "b") ] ]));
      case "regression: helper touching globals" (fun () ->
          Alcotest.(check bool) "safe" true
            (check_safety
               [ [ Take1 ("p", "b") ] ]
               [ Take1 ("p", "a"); Call 0; Copy1 ("q", "p") ]));
    ] )
