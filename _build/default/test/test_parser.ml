(** Tests for the C front end: lexer, declarator parsing, expression
    precedence, statements, and the rejected constructs. *)

open Test_util
module Ast = Cfront.Ast
module Ctype = Cfront.Ctype

let global_type p name =
  match List.find_opt (fun (d : Ast.decl) -> d.Ast.d_name = name) p.Ast.p_globals with
  | Some d -> d.Ast.d_ty
  | None -> Alcotest.failf "no global %s" name

let check_type msg expected actual =
  Alcotest.(check string) msg expected (Ctype.to_string actual)

let func p name =
  match Ast.find_func p name with
  | Some f -> f
  | None -> Alcotest.failf "no function %s" name

let fails_with_parse_error src =
  match parse src with
  | exception Cfront.Srcloc.Error _ -> true
  | _ -> false

let declarator_tests =
  [
    case "scalar declarations" (fun () ->
        let p = parse "int a; char b; double c; long d; unsigned e; short f;" in
        check_type "a" "int" (global_type p "a");
        check_type "b" "char" (global_type p "b");
        check_type "c" "double" (global_type p "c");
        check_type "d" "long" (global_type p "d");
        check_type "e" "int" (global_type p "e");
        check_type "f" "short" (global_type p "f"));
    case "multi-word specifiers" (fun () ->
        let p = parse "unsigned long a; long int b; unsigned char c; signed short int d;" in
        check_type "a" "long" (global_type p "a");
        check_type "b" "long" (global_type p "b");
        check_type "c" "char" (global_type p "c");
        check_type "d" "short" (global_type p "d"));
    case "pointer levels" (fun () ->
        let p = parse "int *p; int **pp; int ***ppp;" in
        check_type "p" "int*" (global_type p "p");
        check_type "pp" "int**" (global_type p "pp");
        check_type "ppp" "int***" (global_type p "ppp"));
    case "arrays" (fun () ->
        let p = parse "int a[10]; int b[2][3]; int *c[4]; int (*d)[5];" in
        check_type "array" "int[10]" (global_type p "a");
        check_type "2d array" "int[2][3]" (global_type p "b");
        check_type "array of pointers" "int*[4]" (global_type p "c");
        check_type "pointer to array" "int[5]*" (global_type p "d"));
    case "function pointers" (fun () ->
        let p = parse "int (*fp)(void); int (*gp)(int, char*); double (*tab[3])(void);" in
        check_type "fp" "int()*" (global_type p "fp");
        check_type "gp" "int(int, char*)*" (global_type p "gp");
        check_type "array of fn ptrs" "double()*[3]" (global_type p "tab"));
    case "pointer to function pointer" (fun () ->
        let p = parse "int (**pfp)(void);" in
        check_type "pfp" "int()**" (global_type p "pfp"));
    case "comma-separated declarators share specifiers" (fun () ->
        let p = parse "int a, *b, c[2], (*d)(void);" in
        check_type "a" "int" (global_type p "a");
        check_type "b" "int*" (global_type p "b");
        check_type "c" "int[2]" (global_type p "c");
        check_type "d" "int()*" (global_type p "d"));
    case "struct definition and fields" (fun () ->
        let p = parse "struct s { int x; struct s *next; char name[8]; }; struct s g;" in
        let l = Hashtbl.find p.Ast.p_layouts "s" in
        Alcotest.(check int) "three fields" 3 (List.length l.Ctype.fields);
        check_type "recursive field" "struct s*" (List.assoc "next" l.Ctype.fields));
    case "anonymous struct gets a fresh tag" (fun () ->
        let p = parse "struct { int a; } x; struct { int b; } y;" in
        match (global_type p "x", global_type p "y") with
        | Ctype.Su (_, t1), Ctype.Su (_, t2) ->
            Alcotest.(check bool) "distinct tags" true (t1 <> t2)
        | _ -> Alcotest.fail "not structs");
    case "union" (fun () ->
        let p = parse "union u { int i; char *p; }; union u g;" in
        check_type "u" "union u" (global_type p "g"));
    case "typedef resolution" (fun () ->
        let p = parse "typedef int myint; typedef myint *pint; pint g; myint h;" in
        check_type "pint" "int*" (global_type p "g");
        check_type "myint" "int" (global_type p "h"));
    case "typedef of struct pointer" (fun () ->
        let p =
          parse "typedef struct rec { int v; } Rec, *RecPtr; RecPtr g; Rec h;"
        in
        check_type "ptr" "struct rec*" (global_type p "g");
        check_type "val" "struct rec" (global_type p "h"));
    case "enum constants fold" (fun () ->
        let p = parse "enum e { A, B = 5, C }; int arr[C];" in
        check_type "C = 6" "int[6]" (global_type p "arr"));
    case "function definitions capture parameter names" (fun () ->
        let p = parse "int add(int a, int b) { return a + b; }" in
        let f = func p "add" in
        Alcotest.(check (list string)) "params" [ "a"; "b" ] (List.map fst f.Ast.f_params));
    case "array parameters decay" (fun () ->
        let p = parse "void f(int a[10], int b[], char *c) {}" in
        let f = func p "f" in
        check_type "a" "int*" (List.assoc "a" f.Ast.f_params);
        check_type "b" "int*" (List.assoc "b" f.Ast.f_params));
    case "function parameters decay to pointers" (fun () ->
        let p = parse "void f(int g(int)) {}" in
        let f = func p "f" in
        check_type "g" "int(int)*" (List.assoc "g" f.Ast.f_params));
    case "prototypes are recorded" (fun () ->
        let p = parse "int foo(int); double bar(void);" in
        Alcotest.(check bool) "foo" true (List.mem_assoc "foo" p.Ast.p_protos);
        Alcotest.(check bool) "bar" true (List.mem_assoc "bar" p.Ast.p_protos));
    case "variadic prototype" (fun () ->
        let p = parse "int printf(char *fmt, ...);" in
        match List.assoc "printf" p.Ast.p_protos with
        | { Ctype.variadic = true; _ } -> ()
        | _ -> Alcotest.fail "not variadic");
  ]

let expr_tests =
  [
    case "precedence: * binds tighter than +" (fun () ->
        let p = parse "int f() { return 1 + 2 * 3; }" in
        match (func p "f").Ast.f_body with
        | [ { Ast.s_desc = Ast.Sreturn (Some (Ast.Ebinary (Ast.Badd, _, _))); _ } ] -> ()
        | _ -> Alcotest.fail "expected + at the top");
    case "assignment is right-associative" (fun () ->
        let p = parse "int f() { int a, b; a = b = 1; return a; }" in
        let has_nested =
          List.exists
            (fun (s : Ast.stmt) ->
              match s.Ast.s_desc with
              | Ast.Sexpr (Ast.Eassign (None, _, Ast.Eassign _)) -> true
              | _ -> false)
            (func p "f").Ast.f_body
        in
        Alcotest.(check bool) "nested" true has_nested);
    case "cast vs parenthesized expression" (fun () ->
        let p = parse "typedef int T; int f(int x) { return (T) x + (x) * 2; }" in
        ignore (func p "f"));
    case "sizeof type and expression" (fun () ->
        let p = parse "int f(int *p) { return sizeof(int) + sizeof *p + sizeof(p); }" in
        ignore (func p "f"));
    case "char and string escapes" (fun () ->
        let p = parse {|char nl = '\n'; char *s = "a\tb\"c";|} in
        ignore (global_type p "nl"));
    case "adjacent string literals concatenate" (fun () ->
        let p = parse {|char *s = "foo" "bar";|} in
        match (List.hd p.Ast.p_globals).Ast.d_init with
        | Some (Ast.Iexpr (Ast.Estr "foobar")) -> ()
        | _ -> Alcotest.fail "not concatenated");
    case "hex and octal literals" (fun () ->
        let p = parse "int a[0x10]; int b[010];" in
        check_type "hex" "int[16]" (global_type p "a");
        check_type "octal" "int[8]" (global_type p "b"));
    case "conditional expression parses" (fun () ->
        let p = parse "int f(int x) { return x ? 1 : x ? 2 : 3; }" in
        ignore (func p "f"));
  ]

let stmt_tests =
  [
    case "all structured statements parse" (fun () ->
        let src =
          {|
          int f(int n) {
            int i, acc;
            acc = 0;
            for (i = 0; i < n; i++) acc += i;
            while (acc > 100) acc -= 10;
            do { acc++; } while (acc < 0);
            switch (acc) {
            case 0: return 0;
            case 1:
            case 2: acc = 5; break;
            default: acc = 9;
            }
            if (acc > 3) return acc; else return -acc;
          }
          |}
        in
        ignore (func (parse src) "f"));
    case "goto is rejected with a diagnostic" (fun () ->
        Alcotest.(check bool) "rejected" true
          (fails_with_parse_error "int f() { goto end; end: return 0; }"));
    case "unterminated comment is an error" (fun () ->
        Alcotest.(check bool) "rejected" true (fails_with_parse_error "int a; /* oops"));
    case "unknown character is an error" (fun () ->
        Alcotest.(check bool) "rejected" true (fails_with_parse_error "int a @ b;"));
    case "preprocessor lines are skipped" (fun () ->
        let p = parse "#include <stdio.h>\n#define X 1\nint a;" in
        check_type "a" "int" (global_type p "a"));
    case "local scopes shadow correctly" (fun () ->
        let src = "int x; int f() { int x; { int x; x = 1; } x = 2; return x; }" in
        ignore (func (parse src) "f"));
    case "break/continue only inside loops parse fine" (fun () ->
        let src = "int f(int n) { while (n) { if (n == 2) break; n--; continue; } return n; }" in
        ignore (func (parse src) "f"));
    case "initializer lists" (fun () ->
        let p = parse "int a[3] = {1, 2, 3}; struct s { int x, y; } g = { 4, 5 };" in
        ignore (global_type p "a"));
  ]

let suite = ("parser", declarator_tests @ expr_tests @ stmt_tests)
