(** Shared helpers for the test suites. *)

module Ir = Simple_ir.Ir
module Loc = Pointsto.Loc
module Pts = Pointsto.Pts
module Analysis = Pointsto.Analysis

let parse src = Cfront.Parser.parse_string ~file:"<test>" src

let simplify src = Simple_ir.Simplify.of_string ~file:"<test>" src

let analyze ?opts src = Analysis.of_string ?opts ~file:"<test>" src

(** Render a (location, certainty) pair as "name/D" or "name/P". *)
let show_pair (l, c) = Fmt.str "%a/%s" Loc.pp l (Pts.cert_to_string c)

let sorted_strings l = List.sort compare l

(** Targets of variable [var] in points-to set [s], as sorted
    "name/cert" strings, NULL excluded. *)
let targets_in (s : Pts.t) (res : Analysis.result) (fname : string) (var : string) :
    string list =
  let fn =
    match Ir.find_func res.Analysis.prog fname with
    | Some f -> f
    | None -> Alcotest.failf "no function %s" fname
  in
  match Pointsto.Tenv.base_loc res.Analysis.tenv fn var with
  | None -> Alcotest.failf "no variable %s" var
  | Some base ->
      Pts.targets base s
      |> List.filter (fun (t, _) -> not (Loc.is_null t))
      |> List.map show_pair |> sorted_strings

(** Targets of [var] (a variable of [main]) at normal exit of main. *)
let exit_targets (res : Analysis.result) ?(fname = "main") (var : string) : string list =
  match res.Analysis.entry_output with
  | None -> Alcotest.fail "entry function does not terminate normally"
  | Some s -> targets_in s res fname var

(** The statement id of the call to undeclared probe function [name]
    (tests insert calls like [probe1();] as observation points). *)
let probe_stmt (res : Analysis.result) (name : string) : int =
  let found =
    Ir.fold_program
      (fun acc s ->
        match s.Ir.s_desc with
        | Ir.Scall (_, Ir.Cdirect f, _) when String.equal f name -> Some s.Ir.s_id
        | _ -> acc)
      None res.Analysis.prog
  in
  match found with Some id -> id | None -> Alcotest.failf "no probe %s" name

(** Targets of [var] (in function [fname], default main) at the probe
    call [probe]. *)
let probe_targets (res : Analysis.result) ?(fname = "main") (probe : string) (var : string) :
    string list =
  let s = Analysis.pts_at res (probe_stmt res probe) in
  targets_in s res fname var

let check_targets msg expected actual =
  Alcotest.(check (list string)) msg (sorted_strings expected) actual

(** Assert that analyzing [src] gives [var] exactly [expected] targets at
    exit of main. *)
let check_exit ?opts msg src var expected =
  let res = analyze ?opts src in
  check_targets msg expected (exit_targets res var)

let case name f = Alcotest.test_case name `Quick f

let qcase ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)
