(** Direct unit tests of the L-/R-location rules against constructed
    points-to sets — every row of Table 1, including the certainty
    algebra ([d1 ∧ d2]) and the selector-path generalizations. *)

open Test_util
module Lval = Pointsto.Lval
module Tenv = Pointsto.Tenv

(* A fixture program declaring the variables Table 1 talks about; we
   construct points-to sets by hand and query the rules directly. *)
let fixture =
  simplify
    {|
struct s { int f; int *q; struct inner { int g; } sub; };
union u { int *up; char *uc; };
int plain;
int other;
int arr[10];
int *aptr[4];
struct s st;
union u un;
int main() {
  int *a;
  int **m;
  struct s *ps;
  int (*fp)(void);
  a = 0; m = 0; ps = 0; fp = 0;
  return 0;
}
|}

let tenv = Tenv.make fixture
let main_fn = Option.get (Ir.find_func fixture "main")

let v name = Loc.Var (name, Loc.Klocal)
let g name = Loc.Var (name, Loc.Kglobal)

let lv s r = sorted_strings (List.map show_pair (Lval.to_list (Lval.lvals tenv main_fn s r)))

let rv s r =
  sorted_strings (List.map show_pair (Lval.to_list (Lval.rvals_ref tenv main_fn s r)))

let rv_rhs s rhs =
  sorted_strings (List.map show_pair (Lval.to_list (Lval.rvals_rhs tenv main_fn s rhs)))

let ref_ ?(deref = false) ?(path = []) base = { Ir.r_base = base; r_deref = deref; r_path = path }

let check = Alcotest.(check (list string))

let lloc_tests =
  [
    case "L-loc of a plain variable is itself, definite" (fun () ->
        check "a" [ "a/D" ] (lv Pts.empty (ref_ "a")));
    case "L-loc of a field path" (fun () ->
        check "st.f" [ "st.f/D" ] (lv Pts.empty (ref_ "st" ~path:[ Ir.Sfield "f" ])));
    case "L-loc of a nested field path" (fun () ->
        check "st.sub.g" [ "st.sub.g/D" ]
          (lv Pts.empty (ref_ "st" ~path:[ Ir.Sfield "sub"; Ir.Sfield "g" ])));
    case "L-loc of a[0] is the head, definite" (fun () ->
        check "arr[0]" [ "arr_head/D" ] (lv Pts.empty (ref_ "arr" ~path:[ Ir.Sindex Ir.Izero ])));
    case "L-loc of a[k>0] is the tail" (fun () ->
        check "arr[3]" [ "arr_tail/D" ] (lv Pts.empty (ref_ "arr" ~path:[ Ir.Sindex Ir.Ipos ])));
    case "L-loc of a[i] is head or tail, possible" (fun () ->
        check "arr[i]" [ "arr_head/P"; "arr_tail/P" ]
          (lv Pts.empty (ref_ "arr" ~path:[ Ir.Sindex Ir.Iany ])));
    case "L-loc of *a follows the points-to set" (fun () ->
        let s = Pts.of_list [ (v "a", g "plain", Pts.D) ] in
        check "*a" [ "plain/D" ] (lv s (ref_ "a" ~deref:true)));
    case "L-loc of *a with possible targets" (fun () ->
        let s = Pts.of_list [ (v "a", g "plain", Pts.P); (v "a", g "other", Pts.P) ] in
        check "*a" [ "other/P"; "plain/P" ] (lv s (ref_ "a" ~deref:true)));
    case "L-loc of *a drops NULL targets" (fun () ->
        let s = Pts.of_list [ (v "a", Loc.Null, Pts.D); (v "a", g "plain", Pts.P) ] in
        check "*a" [ "plain/P" ] (lv s (ref_ "a" ~deref:true)));
    case "L-loc of (*ps).f appends the field to the targets" (fun () ->
        let s = Pts.of_list [ (v "ps", g "st", Pts.D) ] in
        check "(*ps).f" [ "st.f/D" ] (lv s (ref_ "ps" ~deref:true ~path:[ Ir.Sfield "f" ])));
    case "L-loc of union field collapses to the union" (fun () ->
        check "un.up" [ "un/D" ] (lv Pts.empty (ref_ "un" ~path:[ Ir.Sfield "up" ])));
    case "L-loc of a heap target absorbs selectors" (fun () ->
        let s = Pts.of_list [ (v "ps", Loc.Heap, Pts.P) ] in
        check "(*ps).f on heap" [ "heap/P" ]
          (lv s (ref_ "ps" ~deref:true ~path:[ Ir.Sfield "f" ])));
    case "L-loc of pointer shift from head" (fun () ->
        let s = Pts.of_list [ (v "a", Loc.Head (g "arr"), Pts.D) ] in
        check "p[+k]" [ "arr_tail/D" ] (lv s (ref_ "a" ~deref:true ~path:[ Ir.Sshift Ir.Ipos ]));
        check "p[+0]" [ "arr_head/D" ] (lv s (ref_ "a" ~deref:true ~path:[ Ir.Sshift Ir.Izero ]));
        check "p[+i]" [ "arr_head/P"; "arr_tail/P" ]
          (lv s (ref_ "a" ~deref:true ~path:[ Ir.Sshift Ir.Iany ])));
    case "L-loc of pointer shift within the tail stays there" (fun () ->
        let s = Pts.of_list [ (v "a", Loc.Tail (g "arr"), Pts.D) ] in
        check "tail[+i]" [ "arr_tail/P" ]
          (lv s (ref_ "a" ~deref:true ~path:[ Ir.Sshift Ir.Iany ])));
  ]

let rloc_tests =
  [
    case "R-loc of a variable reads its targets" (fun () ->
        let s = Pts.of_list [ (v "a", g "plain", Pts.D) ] in
        check "a" [ "plain/D" ] (rv s (ref_ "a")));
    case "R-loc of *m composes certainties (d1 and d2)" (fun () ->
        let s =
          Pts.of_list [ (v "m", v "a", Pts.D); (v "a", g "plain", Pts.D) ]
        in
        check "*m definite chain" [ "plain/D" ] (rv s (ref_ "m" ~deref:true));
        let s =
          Pts.of_list [ (v "m", v "a", Pts.P); (v "a", g "plain", Pts.D) ]
        in
        check "possible first hop demotes" [ "plain/P" ] (rv s (ref_ "m" ~deref:true));
        let s =
          Pts.of_list [ (v "m", v "a", Pts.D); (v "a", g "plain", Pts.P) ]
        in
        check "possible second hop demotes" [ "plain/P" ] (rv s (ref_ "m" ~deref:true)));
    case "R-loc of a function name is its function location" (fun () ->
        let p =
          simplify "int h(void) { return 0; } int main() { int (*f)(void); f = h; return 0; }"
        in
        let tenv = Tenv.make p in
        let fn = Option.get (Ir.find_func p "main") in
        let locs =
          Lval.to_list (Lval.rvals_ref tenv fn Pts.empty (Ir.var_ref "h"))
          |> List.map show_pair
        in
        Alcotest.(check (list string)) "fn:h" [ "fn:h/D" ] locs);
    case "rhs &x yields the L-locations of x" (fun () ->
        check "&plain" [ "plain/D" ] (rv_rhs Pts.empty (Ir.Raddr (ref_ "plain"))));
    case "rhs &a[0] yields the head definitely (Table 1 row 3)" (fun () ->
        check "&arr[0]" [ "arr_head/D" ]
          (rv_rhs Pts.empty (Ir.Raddr (ref_ "arr" ~path:[ Ir.Sindex Ir.Izero ]))));
    case "rhs &a[k>0] yields the tail definitely (Table 1 row 4)" (fun () ->
        check "&arr[3]" [ "arr_tail/D" ]
          (rv_rhs Pts.empty (Ir.Raddr (ref_ "arr" ~path:[ Ir.Sindex Ir.Ipos ]))));
    case "rhs &a[i] yields both, possible (Table 1 row 5)" (fun () ->
        check "&arr[i]" [ "arr_head/P"; "arr_tail/P" ]
          (rv_rhs Pts.empty (Ir.Raddr (ref_ "arr" ~path:[ Ir.Sindex Ir.Iany ]))));
    case "rhs malloc yields the heap possibly (Table 1 last row)" (fun () ->
        check "malloc" [ "heap/P" ] (rv_rhs Pts.empty Ir.Rmalloc));
    case "rhs NULL and constants yield the NULL target" (fun () ->
        check "null" [ "NULL/D" ] (rv_rhs Pts.empty Ir.Rnull);
        check "const" [ "NULL/D" ] (rv_rhs Pts.empty (Ir.Rconst (Some 3L))));
    case "rhs string literal yields string storage" (fun () ->
        check "str" [ "str/P" ] (rv_rhs Pts.empty Ir.Rstr));
    case "rhs pointer arithmetic shifts array targets" (fun () ->
        let s = Pts.of_list [ (v "a", Loc.Head (g "arr"), Pts.D) ] in
        check "a + k" [ "arr_tail/D" ] (rv_rhs s (Ir.Rarith (ref_ "a", Ir.Ppos)));
        check "a + 0" [ "arr_head/D" ] (rv_rhs s (Ir.Rarith (ref_ "a", Ir.Pzero)));
        check "a + ?" [ "arr_head/P"; "arr_tail/P" ]
          (rv_rhs s (Ir.Rarith (ref_ "a", Ir.Pany))));
    case "pointer arithmetic on a scalar target stays put (flag on)" (fun () ->
        let s = Pts.of_list [ (v "a", g "plain", Pts.D) ] in
        check "scalar + k" [ "plain/P" ] (rv_rhs s (Ir.Rarith (ref_ "a", Ir.Ppos))));
    case "pointer arithmetic on heap stays heap" (fun () ->
        let s = Pts.of_list [ (v "a", Loc.Heap, Pts.P) ] in
        check "heap + k" [ "heap/P" ] (rv_rhs s (Ir.Rarith (ref_ "a", Ir.Ppos))));
    case "locset operations" (fun () ->
        let ls = Lval.of_list [ (v "a", Pts.D); (v "a", Pts.P) ] in
        Alcotest.(check int) "weakened on conflict" 1 (List.length (Lval.to_list ls));
        Alcotest.(check bool) "is P" true (Lval.to_list ls = [ (v "a", Pts.P) ]);
        let u = Lval.union (Lval.of_list [ (v "a", Pts.D) ]) (Lval.of_list [ (v "m", Pts.D) ]) in
        Alcotest.(check int) "union" 2 (List.length (Lval.to_list u));
        Alcotest.(check bool) "weaken demotes all" true
          (List.for_all (fun (_, c) -> c = Pts.P) (Lval.to_list (Lval.weaken u))));
  ]

let suite = ("lval", lloc_tests @ rloc_tests)
