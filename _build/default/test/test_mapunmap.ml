(** Direct unit tests of the map/unmap machinery (§4.1), driving
    {!Pointsto.Map_unmap} on constructed inputs, plus probe-based checks
    of the invariants the paper states. *)

open Test_util
module MU = Pointsto.Map_unmap
module Tenv = Pointsto.Tenv

let fixture =
  simplify
    {|
int g1, g2;
int *gp;
struct box { int *fst; int *snd; };
void callee(int *p, int **pp, struct box b) { }
int main() {
  int *la, *lb;
  int *lp;
  struct box mybox;
  callee(&la, &lp, mybox);
  return 0;
}
|}

let tenv = Tenv.make fixture
let caller = Option.get (Ir.find_func fixture "main")
let callee = Option.get (Ir.find_func fixture "callee")

let v name = Loc.Var (name, Loc.Klocal)
let g name = Loc.Var (name, Loc.Kglobal)
let param name = Loc.Var (name, Loc.Kparam)

let show s = sorted_strings (List.map show_pair s)

let targets_of set l =
  show (List.filter (fun (t, _) -> not (Loc.is_null t)) (Pts.targets l set))

let direct_tests =
  [
    case "globals map to themselves" (fun () ->
        let input = Pts.of_list [ (g "gp", g "g1", Pts.D) ] in
        let fi, _ =
          MU.map_call tenv ~caller_fn:caller ~callee ~input
            ~actuals:[ MU.Aother; MU.Aother; MU.Aother ]
        in
        Alcotest.(check (list string)) "gp -> g1 inside" [ "g1/D" ] (targets_of fi (g "gp")));
    case "pointer formal inherits the actual's targets" (fun () ->
        let fi, _ =
          MU.map_call tenv ~caller_fn:caller ~callee ~input:Pts.empty
            ~actuals:[ MU.Aptr (Pointsto.Lval.of_list [ (g "g1", Pts.D) ]); MU.Aother; MU.Aother ]
        in
        Alcotest.(check (list string)) "p -> g1" [ "g1/D" ] (targets_of fi (param "p")));
    case "invisible target gets the symbolic name 1_pp" (fun () ->
        let input = Pts.of_list [ (v "lp", g "g2", Pts.D) ] in
        let fi, info =
          MU.map_call tenv ~caller_fn:caller ~callee ~input
            ~actuals:
              [ MU.Aother; MU.Aptr (Pointsto.Lval.of_list [ (v "lp", Pts.D) ]); MU.Aother ]
        in
        Alcotest.(check (list string)) "pp -> 1_pp" [ "1_pp/D" ] (targets_of fi (param "pp"));
        (* the invisible's own relationships follow *)
        Alcotest.(check (list string)) "1_pp -> g2" [ "g2/D" ]
          (targets_of fi (Loc.Sym (param "pp")));
        Alcotest.(check int) "1_pp represents exactly lp" 1
          (MU.rep_count info (Loc.Sym (param "pp"))));
    case "two invisibles on one symbolic name demote to possible" (fun () ->
        let input = Pts.of_list [ (v "la", g "g1", Pts.D); (v "lb", g "g2", Pts.D) ] in
        let fi, info =
          MU.map_call tenv ~caller_fn:caller ~callee ~input
            ~actuals:
              [
                MU.Aother;
                MU.Aptr (Pointsto.Lval.of_list [ (v "la", Pts.P); (v "lb", Pts.P) ]);
                MU.Aother;
              ]
        in
        let sym = Loc.Sym (param "pp") in
        Alcotest.(check int) "two reps" 2 (MU.rep_count info sym);
        Alcotest.(check (list string)) "pp -> 1_pp possibly" [ "1_pp/P" ]
          (targets_of fi (param "pp"));
        (* la -> g1 but lb -> g2: from the merged name both are possible *)
        Alcotest.(check (list string)) "1_pp -> g1,g2 possibly" [ "g1/P"; "g2/P" ]
          (targets_of fi sym));
    case "aggregate actual maps its pointer cells onto the formal's" (fun () ->
        let input =
          Pts.of_list
            [
              (Loc.Fld (v "mybox", "fst"), g "g1", Pts.D);
              (Loc.Fld (v "mybox", "snd"), g "g2", Pts.P);
            ]
        in
        let fi, _ =
          MU.map_call tenv ~caller_fn:caller ~callee ~input
            ~actuals:[ MU.Aother; MU.Aother; MU.Aagg (v "mybox") ]
        in
        Alcotest.(check (list string)) "b.fst" [ "g1/D" ]
          (targets_of fi (Loc.Fld (param "b", "fst")));
        Alcotest.(check (list string)) "b.snd" [ "g2/P" ]
          (targets_of fi (Loc.Fld (param "b", "snd"))));
    case "callee locals are NULL-initialized in the mapped input" (fun () ->
        let p =
          simplify
            {|void has_local(void) { int *q; q = 0; }
              int main() { has_local(); return 0; }|}
        in
        let tenv = Tenv.make p in
        let caller = Option.get (Ir.find_func p "main") in
        let callee = Option.get (Ir.find_func p "has_local") in
        let fi, _ = MU.map_call tenv ~caller_fn:caller ~callee ~input:Pts.empty ~actuals:[] in
        Alcotest.(check bool) "q -> NULL definitely" true
          (Pts.find (Loc.Var ("q", Loc.Klocal)) Loc.Null fi = Some Pts.D));
    case "unmap: unreachable caller relationships persist" (fun () ->
        let input =
          Pts.of_list [ (v "lp", g "g1", Pts.D); (g "gp", g "g2", Pts.D) ]
        in
        (* callee reached only the globals *)
        let fi, info =
          MU.map_call tenv ~caller_fn:caller ~callee ~input
            ~actuals:[ MU.Aother; MU.Aother; MU.Aother ]
        in
        let out = MU.unmap_call tenv ~input ~output:fi ~info in
        Alcotest.(check (list string)) "lp kept" [ "g1/D" ] (targets_of out (v "lp"));
        Alcotest.(check (list string)) "gp kept" [ "g2/D" ] (targets_of out (g "gp")));
    case "unmap: callee writes through symbolic names reach the invisible" (fun () ->
        let input = Pts.empty in
        let fi, info =
          MU.map_call tenv ~caller_fn:caller ~callee ~input
            ~actuals:
              [ MU.Aother; MU.Aptr (Pointsto.Lval.of_list [ (v "lp", Pts.D) ]); MU.Aother ]
        in
        (* simulate the callee doing *pp = &g1 *)
        let sym = Loc.Sym (param "pp") in
        let out_callee = Pts.add sym (g "g1") Pts.D (Pts.kill_src sym fi) in
        let out = MU.unmap_call tenv ~input ~output:out_callee ~info in
        Alcotest.(check (list string)) "lp -> g1" [ "g1/D" ] (targets_of out (v "lp")));
    case "unmap: escaping callee locals are dropped" (fun () ->
        let fi, info =
          MU.map_call tenv ~caller_fn:caller ~callee ~input:Pts.empty
            ~actuals:[ MU.Aother; MU.Aother; MU.Aother ]
        in
        (* simulate the callee storing a local's address into a global *)
        let out_callee = Pts.add (g "gp") (Loc.Var ("dead", Loc.Klocal)) Pts.D fi in
        let out = MU.unmap_call tenv ~input:Pts.empty ~output:out_callee ~info in
        Alcotest.(check (list string)) "gp empty" [] (targets_of out (g "gp")));
    case "return_targets resolve through the map info" (fun () ->
        let fi, info =
          MU.map_call tenv ~caller_fn:caller ~callee ~input:Pts.empty
            ~actuals:[ MU.Aother; MU.Aother; MU.Aother ]
        in
        let out_callee = Pts.add (Loc.Ret "callee") (g "g1") Pts.D fi in
        let tgts = MU.return_targets ~output:out_callee ~info ~callee:"callee" in
        Alcotest.(check (list string)) "ret -> g1" [ "g1/D" ]
          (sorted_strings (List.map show_pair tgts)));
    case "symbolic depth bound summarizes instead of diverging" (fun () ->
        (* a recursive struct chain on the stack would need unbounded
           symbolic names; the bound must keep the analysis terminating
           and safe *)
        let src =
          {|struct n { struct n *next; };
            struct n *last(struct n *p) {
              if (p->next != 0) return last(p->next);
              return p;
            }
            int main() {
              struct n a, b, c, d, e, f, g, h;
              struct n *r;
              a.next = &b; b.next = &c; c.next = &d; d.next = &e;
              e.next = &f; f.next = &g; g.next = &h; h.next = 0;
              r = last(&a);
              return 0;
            }|}
        in
        let opts = { Pointsto.Options.default with Pointsto.Options.max_sym_depth = 2 } in
        let res = analyze ~opts src in
        (* r must cover all possible chain elements; with depth 2 the
           deeper ones summarize but safety demands the set is non-empty
           and includes at least a, b *)
        let tr = exit_targets res "r" in
        Alcotest.(check bool) "covers the early chain" true
          (List.exists (fun s -> s = "a/P" || s = "b/P") tr);
        Alcotest.(check bool) "non-empty" true (tr <> []))
  ]

let suite = ("mapunmap", direct_tests)
