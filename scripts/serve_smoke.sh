#!/bin/sh
# Serve smoke: boot `ptan serve` on the full benchmark suite, check a
# batch of protocol replies byte-for-byte against cold `ptan query`
# output, enforce a lenient throughput floor, and exercise the SIGTERM
# shutdown path. Run from the repository root after `dune build`; CI
# runs this as the serve-smoke job. See docs/SERVE.md.
set -eu

ptan="${PTAN:-_build/default/bin/ptan.exe}"
[ -x "$ptan" ] || { echo "serve_smoke: $ptan not found (dune build first)" >&2; exit 1; }

tmp=$(mktemp -d)
cache="$tmp/cache"
cleanup() {
  [ -n "${daemon_pid:-}" ] && kill "$daemon_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# Poll for a pattern in a file the daemon is still writing.
wait_for() {
  i=0
  while ! grep -q "$1" "$2" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "serve_smoke: timed out waiting for '$1' in $2" >&2; exit 1; }
    sleep 0.1
  done
}

# ---- 1. bit-identity: cold `ptan query` is the oracle -----------------
# For every benchmark, ask one query of each flavor through the daemon
# and demand the reply match what a cold `ptan query` prints: exit 0 +
# stdout maps to `ok <answer>`, exit 2 + `error: <e>` maps to
# `error <e>`. The queries deliberately mix valid and invalid ones so
# both reply paths are covered.

expect_for() { # expect_for FILE QUERY... >> expected.txt
  file=$1
  shift
  if out=$("$ptan" query "$file" --cache-dir "$cache" "$@" 2>"$tmp/qerr"); then
    printf 'ok %s\n' "$out"
  else
    st=$?
    [ "$st" -eq 2 ] || { echo "serve_smoke: cold query '$*' on $file exited $st" >&2; exit 1; }
    printf 'error %s\n' "$(sed 's/^error: //' "$tmp/qerr")"
  fi
}

: >"$tmp/requests.txt"
: >"$tmp/expected.txt"
for f in benchmarks/*.c; do
  printf 'q %s calls 3\n' "$f" >>"$tmp/requests.txt"
  expect_for "$f" calls 3 >>"$tmp/expected.txt"
  printf 'q %s pts main 1 no_such_var\n' "$f" >>"$tmp/requests.txt"
  expect_for "$f" pts main 1 no_such_var >>"$tmp/expected.txt"
done
# A known-good query through the stem alias, and a clean quit.
printf 'q hash pts lookup s3 e\n' >>"$tmp/requests.txt"
expect_for benchmarks/hash.c pts lookup s3 e >>"$tmp/expected.txt"
printf 'quit\n' >>"$tmp/requests.txt"
printf 'ok bye\n' >>"$tmp/expected.txt"

grep -q '^ok ' "$tmp/expected.txt" \
  || { echo "serve_smoke: no query reached the ok path; oracle is vacuous" >&2; exit 1; }

"$ptan" serve benchmarks/*.c --cache-dir "$cache" \
  <"$tmp/requests.txt" >"$tmp/got.txt" 2>"$tmp/serve1.err"
diff -u "$tmp/expected.txt" "$tmp/got.txt" \
  || { echo "serve_smoke: daemon replies diverge from cold ptan query" >&2; exit 1; }
grep -q '^serve: ready, 18 file(s) resident, stdio$' "$tmp/serve1.err" \
  || { echo "serve_smoke: missing/unexpected ready line" >&2; cat "$tmp/serve1.err" >&2; exit 1; }
echo "serve_smoke: $(wc -l <"$tmp/got.txt") replies bit-identical to cold ptan query"

# ---- 2. throughput floor ----------------------------------------------
# One warm-cache corpus entry, many copies of one known query. The floor
# is deliberately lenient (the bench Serve section enforces the real
# >=100k q/s target in-process); this catches order-of-magnitude
# regressions end to end, shell and pipes included.
n=20000
hash_expected=$(expect_for benchmarks/hash.c pts lookup s3 e)
awk -v n="$n" 'BEGIN { for (i = 0; i < n; i++) print "q hash pts lookup s3 e" }' \
  >"$tmp/load.txt"
start=$(date +%s%N)
"$ptan" serve benchmarks/hash.c --cache-dir "$cache" -j 2 --queue-max 65536 \
  <"$tmp/load.txt" >"$tmp/got2.txt" 2>"$tmp/serve2.err"
wall_ms=$(( ($(date +%s%N) - start) / 1000000 ))
[ "$wall_ms" -gt 0 ] || wall_ms=1
qps=$(( n * 1000 / wall_ms ))
[ "$(wc -l <"$tmp/got2.txt")" -eq "$n" ] \
  || { echo "serve_smoke: expected $n replies, got $(wc -l <"$tmp/got2.txt")" >&2; exit 1; }
[ "$(sort -u "$tmp/got2.txt")" = "$hash_expected" ] \
  || { echo "serve_smoke: throughput replies not uniformly '$hash_expected'" >&2; exit 1; }
echo "serve_smoke: $n queries in ${wall_ms} ms = ${qps} queries/s (floor 5000)"
[ "$qps" -ge 5000 ] \
  || { echo "serve_smoke: throughput below floor" >&2; exit 1; }

# ---- 3. SIGTERM is a clean shutdown -----------------------------------
# Hold the daemon's stdin open on a FIFO so EOF cannot end it, confirm
# it serves, then SIGTERM it and demand a zero exit and the shutdown
# summary.
mkfifo "$tmp/in"
"$ptan" serve benchmarks/hash.c --cache-dir "$cache" \
  <"$tmp/in" >"$tmp/got3.txt" 2>"$tmp/serve3.err" &
daemon_pid=$!
exec 3>"$tmp/in"
wait_for '^serve: ready' "$tmp/serve3.err"
printf 'ping\n' >&3
wait_for '^ok pong$' "$tmp/got3.txt"
kill -TERM "$daemon_pid"
if wait "$daemon_pid"; then st=0; else st=$?; fi
daemon_pid=
exec 3>&-
[ "$st" -eq 0 ] \
  || { echo "serve_smoke: SIGTERM exit status $st" >&2; cat "$tmp/serve3.err" >&2; exit 1; }
grep -q '^serve: shutdown after 1 request(s): 1 ok,' "$tmp/serve3.err" \
  || { echo "serve_smoke: missing shutdown summary" >&2; cat "$tmp/serve3.err" >&2; exit 1; }
echo "serve_smoke: SIGTERM shutdown clean (exit 0, summary printed)"

echo "serve_smoke: OK"
