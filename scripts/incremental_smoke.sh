#!/bin/sh
# Incremental smoke: exercise `ptan --incremental` end to end on real
# driver output — populate the stable cache entry, edit the source, and
# demand (a) the re-analysis prints per-statement sets bit-identical to
# a cold run of the edited file and (b) the dirty counter matches the
# edit: 0 for a comment-only edit (the rekey fast path), a small bounded
# cone for a one-function edit. Then regenerate the machine-readable
# trajectory (`bench --json`), whose own gates enforce suite-wide
# bit-identity and incremental beating the non-incremental cache.
# Run from the repository root after `dune build`; CI runs this as the
# incremental-smoke job. See docs/INCREMENTAL.md.
set -eu

ptan="${PTAN:-_build/default/bin/ptan.exe}"
bench="${PTAN_BENCH:-_build/default/bench/main.exe}"
[ -x "$ptan" ] || { echo "incremental_smoke: $ptan not found (dune build first)" >&2; exit 1; }
[ -x "$bench" ] || { echo "incremental_smoke: $bench not found (dune build first)" >&2; exit 1; }

tmp=$(mktemp -d)
cache="$tmp/cache"
trap 'rm -rf "$tmp"' EXIT INT TERM

# The dirty count the driver reported in an --incremental --stats run.
dirty_of() { # dirty_of FILE
  sed -n 's/^incremental:[[:space:]]*\([0-9][0-9]*\) functions dirty.*/\1/p' "$1"
}

# ---- 1. comment edit on livc: the rekey fast path ---------------------
# An IR-preserving edit must serve the old entry as a hit (0 dirty) and
# still print exactly what a cold analysis of the edited file prints.
cp benchmarks/livc.c "$tmp/livc.c"
"$ptan" analyze "$tmp/livc.c" --incremental --cache-dir "$cache" >/dev/null
printf '\n/* incremental_smoke: comment-only edit */\n' >>"$tmp/livc.c"
"$ptan" analyze "$tmp/livc.c" --no-cache | grep '^s[0-9]' >"$tmp/cold1.txt"
"$ptan" analyze "$tmp/livc.c" --incremental --cache-dir "$cache" --stats >"$tmp/incr1.txt"
grep '^s[0-9]' "$tmp/incr1.txt" >"$tmp/got1.txt"
diff -u "$tmp/cold1.txt" "$tmp/got1.txt" \
  || { echo "incremental_smoke: livc comment edit diverges from cold analysis" >&2; exit 1; }
d=$(dirty_of "$tmp/incr1.txt")
[ "$d" = 0 ] \
  || { echo "incremental_smoke: comment edit reported $d dirty (rekey expected 0)" >&2; exit 1; }
echo "incremental_smoke: livc comment edit — $(wc -l <"$tmp/got1.txt") statement sets identical, 0 dirty (rekey)"

# ---- 2. one-function edit: the dirty cone is bounded ------------------
# Editing leaf_b must dirty exactly its caller cone {leaf_b, main};
# leaf_a and mid replay. And the tables must still match a cold run.
cat >"$tmp/cone.c" <<'EOF'
int g1;
int g2;
void leaf_a(int **pp) { *pp = &g1; }
void leaf_b(int **pp) { *pp = &g2; }
void mid(int **pp) { leaf_a(pp); }
int main() { int *p; mid(&p); leaf_b(&p); return 0; }
EOF
"$ptan" analyze "$tmp/cone.c" --incremental --cache-dir "$cache" >/dev/null
sed 's/{ \*pp = \&g2; }/{ *pp = \&g1; *pp = \&g2; }/' "$tmp/cone.c" >"$tmp/cone2.c" \
  && mv "$tmp/cone2.c" "$tmp/cone.c"
"$ptan" analyze "$tmp/cone.c" --no-cache | grep '^s[0-9]' >"$tmp/cold2.txt"
"$ptan" analyze "$tmp/cone.c" --incremental --cache-dir "$cache" --stats >"$tmp/incr2.txt"
grep '^s[0-9]' "$tmp/incr2.txt" >"$tmp/got2.txt"
diff -u "$tmp/cold2.txt" "$tmp/got2.txt" \
  || { echo "incremental_smoke: cone edit diverges from cold analysis" >&2; exit 1; }
d=$(dirty_of "$tmp/incr2.txt")
[ "$d" = 2 ] \
  || { echo "incremental_smoke: cone edit reported $d dirty (expected 2: leaf_b + main)" >&2; exit 1; }
grep -q 'functions dirty, [1-9][0-9]* summaries replayed' "$tmp/incr2.txt" \
  || { echo "incremental_smoke: cone edit replayed no summaries" >&2; exit 1; }
echo "incremental_smoke: cone edit — sets identical, 2 dirty, clean subtrees replayed"

# ---- 3. the machine-readable trajectory -------------------------------
# The bench gates internally: every row bit-identical, and the suite
# incremental total beating the non-incremental cache trajectory. A
# non-zero exit fails the job; the artifact is uploaded by CI.
"$bench" --json BENCH_incremental.json
grep -q '"schema": *"ptan-bench-incremental/2"' BENCH_incremental.json \
  || { echo "incremental_smoke: BENCH_incremental.json missing schema marker" >&2; exit 1; }
grep -q '"identical": *false' BENCH_incremental.json \
  && { echo "incremental_smoke: a bench row lost bit-identity" >&2; exit 1; }
echo "incremental_smoke: BENCH_incremental.json written and validated"

echo "incremental_smoke: OK"
