#!/bin/sh
# Corpus smoke: check the deterministic generator end-to-end through the
# real `ptan gen` binary — byte-identical output per seed (twice, and
# against --out), the overwrite refusal (exit 2 without --force), knob
# validation exit codes, and a generated 10k+-line program flowing
# through `ptan tables` — then regenerate the machine-readable corpus
# trajectory (`bench --json BENCH_corpus.json`), whose own gates enforce
# regeneration byte-identity, the 10k-line floor, demand seed-row
# identity, degraded-run pair supersets, and exhaustive-vs-parallel
# bit-identity over the whole corpus. Run from the repository root
# after `dune build`; CI runs this as the corpus-smoke job. See
# docs/CORPUS.md.
set -eu

ptan="${PTAN:-_build/default/bin/ptan.exe}"
bench="${PTAN_BENCH:-_build/default/bench/main.exe}"
[ -x "$ptan" ] || { echo "corpus_smoke: $ptan not found (dune build first)" >&2; exit 1; }
[ -x "$bench" ] || { echo "corpus_smoke: $bench not found (dune build first)" >&2; exit 1; }

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# ---- 1. seed reproducibility through the CLI --------------------------
# Same seed, three renderings (stdout twice, --out once): one digest.
"$ptan" gen --seed 11 --size 1000 --depth 4 --fnptr-density 30 >"$tmp/a.c"
"$ptan" gen --seed 11 --size 1000 --depth 4 --fnptr-density 30 >"$tmp/b.c"
"$ptan" gen --seed 11 --size 1000 --depth 4 --fnptr-density 30 --out "$tmp/c.c"
cmp -s "$tmp/a.c" "$tmp/b.c" \
  || { echo "corpus_smoke: same seed, different bytes on stdout" >&2; exit 1; }
cmp -s "$tmp/a.c" "$tmp/c.c" \
  || { echo "corpus_smoke: --out differs from stdout for the same seed" >&2; exit 1; }
# A different seed must actually vary the program.
"$ptan" gen --seed 12 --size 1000 --depth 4 --fnptr-density 30 >"$tmp/d.c"
cmp -s "$tmp/a.c" "$tmp/d.c" \
  && { echo "corpus_smoke: different seeds produced identical programs" >&2; exit 1; }
echo "corpus_smoke: seed 11 byte-identical across three renderings; seed 12 differs"

# ---- 2. refusal and validation exit codes (docs/CLI.md: gen errors are 2)
set +e
"$ptan" gen --seed 12 --size 1000 --depth 4 --fnptr-density 30 --out "$tmp/c.c" \
  2>"$tmp/refuse.err"; st=$?
set -e
[ "$st" -eq 2 ] || { echo "corpus_smoke: overwrite refusal exited $st, want 2" >&2; exit 1; }
cmp -s "$tmp/a.c" "$tmp/c.c" \
  || { echo "corpus_smoke: refused overwrite still changed the file" >&2; exit 1; }
grep -q force "$tmp/refuse.err" \
  || { echo "corpus_smoke: refusal message does not mention --force" >&2; exit 1; }
"$ptan" gen --seed 12 --size 1000 --depth 4 --fnptr-density 30 --out "$tmp/c.c" --force
cmp -s "$tmp/c.c" "$tmp/d.c" \
  || { echo "corpus_smoke: --force did not write the new program" >&2; exit 1; }
for bad in "--size 10" "--depth 0" "--fnptr-density 150" "--seed=-1"; do
  set +e
  # shellcheck disable=SC2086
  "$ptan" gen $bad >/dev/null 2>&1; st=$?
  set -e
  [ "$st" -eq 2 ] \
    || { echo "corpus_smoke: 'gen $bad' exited $st, want 2" >&2; exit 1; }
done
echo "corpus_smoke: overwrite refusal and knob validation all exit 2"

# ---- 3. a 10k+-line program analyzes end-to-end -----------------------
# The acceptance-floor shape: deep direct-call DAG (cheaper than the
# fn-ptr web, so the smoke stays minutes not tens of minutes).
"$ptan" gen --seed 23 --size 10000 --depth 7 --fnptr-density 0 --structs 50 --out "$tmp/big.c"
lines=$(wc -l <"$tmp/big.c")
[ "$lines" -ge 10000 ] \
  || { echo "corpus_smoke: generated program has $lines lines, want >= 10000" >&2; exit 1; }
"$ptan" tables "$tmp/big.c" --no-cache >"$tmp/big.tables"
grep -q '^== ' "$tmp/big.tables" \
  || { echo "corpus_smoke: no tables emitted for the generated program" >&2; exit 1; }
echo "corpus_smoke: $lines-line generated program analyzed end-to-end"

# ---- 4. the machine-readable trajectory -------------------------------
# The bench gates internally: per-member regeneration byte-identity and
# the 10k floor, demand seed rows bit-identical to exhaustive, fuel-1
# degraded runs pair supersets of the full run, and the -j pool
# reproducing every sequential digest. A non-zero exit fails the job;
# the artifact is uploaded by CI.
"$bench" --json BENCH_corpus.json
grep -q '"schema": *"ptan-bench-corpus/2"' BENCH_corpus.json \
  || { echo "corpus_smoke: BENCH_corpus.json missing schema marker" >&2; exit 1; }
grep -q '"identical": *false' BENCH_corpus.json \
  && { echo "corpus_smoke: the parallel leg lost bit-identity" >&2; exit 1; }
grep -q '"superset": *false' BENCH_corpus.json \
  && { echo "corpus_smoke: a degraded run lost points-to pairs" >&2; exit 1; }
grep -q '"degraded_le_precise": *false' BENCH_corpus.json \
  && { echo "corpus_smoke: a degraded run cost more than the precise one" >&2; exit 1; }
echo "corpus_smoke: BENCH_corpus.json written and validated"

echo "corpus_smoke: OK"
