#!/bin/sh
# Docs-drift check: every ptan subcommand and flag defined in bin/ptan.ml
# must be documented in docs/CLI.md. Run from the repository root; CI runs
# this after the build.
set -eu

src=bin/ptan.ml
doc=docs/CLI.md

[ -f "$src" ] || { echo "check_cli_docs: $src not found (run from repo root)" >&2; exit 1; }
[ -f "$doc" ] || { echo "check_cli_docs: $doc not found" >&2; exit 1; }

missing=0

# Subcommands: Cmd.info "name" (the group's own "ptan" included; it must
# appear in the doc too, which it trivially does).
for cmd in $(grep -o 'Cmd\.info "[a-z-]*"' "$src" | cut -d'"' -f2 | sort -u); do
  if ! grep -q "$cmd" "$doc"; then
    echo "docs/CLI.md: missing subcommand '$cmd'" >&2
    missing=1
  fi
done

# Every real subcommand must also have its own reference section: a
# '## `ptan <cmd>`' heading (the bare "ptan" group only has the intro,
# which the subcommand loop above already accepts).
for cmd in $(grep -o 'Cmd\.info "[a-z-]*"' "$src" | cut -d'"' -f2 | sort -u); do
  [ "$cmd" = "ptan" ] && continue
  if ! grep -q "^## \`ptan $cmd\`" "$doc"; then
    echo "docs/CLI.md: missing section heading '## \`ptan $cmd\`'" >&2
    missing=1
  fi
done

# Flags: named arguments, info [ "name" ] or info [ "a"; "b" ]. Positional
# args use info [] and are skipped by the pattern. Single-letter names are
# documented as -x, longer ones as --name.
for flag in $(grep -o 'info \[ "[a-z-]*"\(; "[a-z-]*"\)* \]' "$src" \
              | grep -o '"[a-z-]*"' | tr -d '"' | sort -u); do
  case "$flag" in
    ?) needle="-$flag" ;;
    *) needle="--$flag" ;;
  esac
  if ! grep -q -- "$needle" "$doc"; then
    echo "docs/CLI.md: missing flag '$needle'" >&2
    missing=1
  fi
done

# --stats counters: the labels Metrics.pp prints, extracted from the
# marked rows list in lib/core/metrics.ml. Each must appear backticked in
# docs/CLI.md (the counters table).
metrics=lib/core/metrics.ml
[ -f "$metrics" ] || { echo "check_cli_docs: $metrics not found" >&2; exit 1; }

labels=$(sed -n '/BEGIN stats-labels/,/END stats-labels/p' "$metrics" \
         | grep -o '( *"[^"]*",' | sed 's/^( *"//; s/",$//')
[ -n "$labels" ] || {
  echo "check_cli_docs: no stats labels found in $metrics (markers moved?)" >&2
  exit 1
}

old_ifs=$IFS
IFS='
'
for label in $labels; do
  if ! grep -qF "\`$label\`" "$doc"; then
    echo "docs/CLI.md: missing --stats counter '$label'" >&2
    missing=1
  fi
done
IFS=$old_ifs

if [ "$missing" -ne 0 ]; then
  echo "check_cli_docs: documentation is out of date with bin/ptan.ml" >&2
  exit 1
fi
echo "check_cli_docs: ok"
