#!/bin/sh
# Demand smoke: check that `--demand` is invisible except for speed —
# every query flavor (pts / alias / calls, plus the error paths) must
# print byte-for-byte what the exhaustive engine prints, one-shot and
# in batch, on a function-pointer fixture and across the benchmark
# suite. Then regenerate the machine-readable trajectory
# (`bench --json BENCH_demand.json`), whose own gates enforce seed-row
# bit-identity on all 18 programs and demand beating exhaustive cold on
# at least 14 of them. Run from the repository root after `dune build`;
# CI runs this as the demand-smoke job. See docs/DEMAND.md.
set -eu

ptan="${PTAN:-_build/default/bin/ptan.exe}"
bench="${PTAN_BENCH:-_build/default/bench/main.exe}"
[ -x "$ptan" ] || { echo "demand_smoke: $ptan not found (dune build first)" >&2; exit 1; }
[ -x "$bench" ] || { echo "demand_smoke: $bench not found (dune build first)" >&2; exit 1; }

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM

# One query, exhaustive vs --demand: stdout, stderr, and exit status
# must all agree. $1 is the file; the rest are the query words.
check_q() {
  f=$1
  shift
  set +e
  "$ptan" query "$f" --no-cache "$@" >"$tmp/exh.out" 2>"$tmp/exh.err"
  exh_st=$?
  "$ptan" query "$f" --no-cache --demand "$@" >"$tmp/dem.out" 2>"$tmp/dem.err"
  dem_st=$?
  set -e
  [ "$exh_st" = "$dem_st" ] \
    || { echo "demand_smoke: '$*' on $f: exit $exh_st exhaustive vs $dem_st demand" >&2; exit 1; }
  diff -u "$tmp/exh.out" "$tmp/dem.out" \
    || { echo "demand_smoke: '$*' on $f: stdout diverges under --demand" >&2; exit 1; }
  diff -u "$tmp/exh.err" "$tmp/dem.err" \
    || { echo "demand_smoke: '$*' on $f: stderr diverges under --demand" >&2; exit 1; }
}

# ---- 1. every query flavor on a function-pointer fixture --------------
# Indirect calls make the slice planner consult the Andersen oracle;
# the seeds (main, helper) have proper sub-slices, so skipped callees
# actually exercise the summary-replay / widened-transfer paths.
cat >"$tmp/fp.c" <<'EOF'
int ga;
int gb;
void set_a(int **pp) { *pp = &ga; }
void set_b(int **pp) { *pp = &gb; }
void helper(int **pp, void (*f)(int **)) { f(pp); }
int main() {
  int *p;
  int *q;
  void (*fp)(int **) = set_a;
  helper(&p, fp);
  helper(&q, set_b);
  return 0;
}
EOF
check_q "$tmp/fp.c" pts main s8 p
check_q "$tmp/fp.c" pts helper s3 f
check_q "$tmp/fp.c" alias main s9 p q
check_q "$tmp/fp.c" calls 3
check_q "$tmp/fp.c" pts main s8 no_such_var
check_q "$tmp/fp.c" pts no_such_fn s8 p
echo "demand_smoke: fixture — pts/alias/calls and both error paths identical under --demand"

# ---- 2. batch mode: one slice per distinct seed -----------------------
# The batch path primes each seed's result once and answers the rest
# from the memo; output order and text must still match exactly.
cat >"$tmp/queries.txt" <<'EOF'
pts main s8 p
pts main s9 q
pts helper s3 f
alias main s9 p q
calls 3
pts main s8 no_such_var
EOF
"$ptan" batch "$tmp/fp.c" "$tmp/queries.txt" --no-cache >"$tmp/batch_exh.txt" 2>&1 || true
"$ptan" batch "$tmp/fp.c" "$tmp/queries.txt" --no-cache --demand >"$tmp/batch_dem.txt" 2>&1 || true
diff -u "$tmp/batch_exh.txt" "$tmp/batch_dem.txt" \
  || { echo "demand_smoke: batch output diverges under --demand" >&2; exit 1; }
echo "demand_smoke: batch — $(wc -l <"$tmp/batch_dem.txt") replies identical under --demand"

# ---- 3. suite sweep: every benchmark, mixed valid/invalid queries -----
# Seeds differ per program (wherever s3 lands), so this walks many
# different slices, including programs with no indirect sites at all
# (the planner then skips the Andersen pre-pass entirely).
for f in benchmarks/*.c; do
  check_q "$f" calls 3
  check_q "$f" pts main 1 no_such_var
done
echo "demand_smoke: benchmark sweep — all replies identical under --demand"

# ---- 4. the machine-readable trajectory -------------------------------
# The bench gates internally: seed rows bit-identical on every program,
# and demand beating exhaustive cold on >= 14/18. A non-zero exit fails
# the job; the artifact is uploaded by CI.
"$bench" --json BENCH_demand.json
grep -q '"schema": *"ptan-bench-demand/1"' BENCH_demand.json \
  || { echo "demand_smoke: BENCH_demand.json missing schema marker" >&2; exit 1; }
grep -q '"identical": *false' BENCH_demand.json \
  && { echo "demand_smoke: a bench row lost bit-identity" >&2; exit 1; }
# slice-size sanity: slicing must actually trim something somewhere —
# every fraction at 1.000 would mean the planner degenerated to
# analyze-everything and the wins are measurement noise.
grep -q '"slice_fraction": 0\.' BENCH_demand.json \
  || { echo "demand_smoke: no program has a proper sub-slice" >&2; exit 1; }
echo "demand_smoke: BENCH_demand.json written and validated"

echo "demand_smoke: OK"
