#!/bin/sh
# Supervise smoke: boot `ptan serve --supervise` on a socket, kill the
# worker three times mid-request via the worker-kill fault point, and
# demand the self-healing contract end to end: clients see a reset
# connection (never a hang), the supervisor restarts the worker onto
# the same socket, post-restart answers are bit-identical to a cold
# `ptan query`, the `health` restart counter climbs, and a clean `quit`
# ends supervisor and worker with exit 0 and the socket unlinked. Run
# from the repository root after `dune build`; CI runs this inside the
# chaos job. See docs/ROBUSTNESS.md (the serve supervisor) and
# docs/SERVE.md (supervised mode).
set -eu

ptan="${PTAN:-_build/default/bin/ptan.exe}"
[ -x "$ptan" ] || { echo "supervise_smoke: $ptan not found (dune build first)" >&2; exit 1; }
command -v python3 >/dev/null \
  || { echo "supervise_smoke: python3 not found (needed as the socket client)" >&2; exit 1; }

tmp=$(mktemp -d)
sock="$tmp/ptan.sock"
arm="$tmp/kill.arm"
cleanup() {
  [ -n "${sv_pid:-}" ] && kill "$sv_pid" 2>/dev/null
  rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

# One protocol round trip over the Unix socket; prints the reply line,
# or nothing when the connection dies (worker killed mid-request) or
# cannot be made (worker still restarting). The 10 s timeout bounds
# every exchange: a wedged daemon fails the script instead of hanging CI.
rt() {
  python3 - "$sock" "$1" <<'EOF'
import socket, sys
s = socket.socket(socket.AF_UNIX)
s.settimeout(10)
try:
    s.connect(sys.argv[1])
    s.sendall((sys.argv[2] + "\n").encode())
    buf = b""
    while not buf.endswith(b"\n"):
        c = s.recv(4096)
        if not c:
            break
        buf += c
    sys.stdout.write(buf.decode())
except OSError:
    pass
EOF
}

await_pong() {
  i=0
  while [ "$(rt ping)" != "ok pong" ]; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "supervise_smoke: timed out waiting for pong" >&2; exit 1; }
    sleep 0.1
  done
}

# ---- 1. the oracle and the supervised daemon --------------------------
cold=$("$ptan" query benchmarks/hash.c --cache-dir "$tmp/cache" pts insert s50 e)
PTAN_FAULTS=worker-kill PTAN_FAULT_KILL_FILE="$arm" \
  "$ptan" serve benchmarks/hash.c --cache-dir "$tmp/cache" \
  --socket "$sock" --supervise --max-restarts 10 2>"$tmp/sv.err" &
sv_pid=$!
await_pong
got=$(rt "q hash pts insert s50 e")
[ "$got" = "ok $cold" ] \
  || { echo "supervise_smoke: daemon answer '$got' != cold 'ok $cold'" >&2; exit 1; }
echo "supervise_smoke: supervised daemon up, answer matches cold ptan query"

# ---- 2. the kill loop -------------------------------------------------
# Arming the fault file makes the worker SIGKILL itself at the next
# batch; the client sees a dead connection (empty reply, not a hang),
# the supervisor restarts the worker, and service resumes unchanged.
for kill_n in 1 2 3; do
  : >"$arm"
  victim=$(rt "q hash pts insert s50 e")
  [ -z "$victim" ] \
    || { echo "supervise_smoke: kill #$kill_n: expected a dead connection, got '$victim'" >&2; exit 1; }
  await_pong
  got=$(rt "q hash pts insert s50 e")
  [ "$got" = "ok $cold" ] \
    || { echo "supervise_smoke: kill #$kill_n: post-restart answer '$got' != 'ok $cold'" >&2; exit 1; }
  health=$(rt health)
  case $health in
    "ok uptime-ms="*" restarts=$kill_n "*) ;;
    *) echo "supervise_smoke: kill #$kill_n: health '$health' lacks restarts=$kill_n" >&2; exit 1 ;;
  esac
done
grep -q 'restart #3' "$tmp/sv.err" \
  || { echo "supervise_smoke: supervisor log missing 'restart #3'" >&2; cat "$tmp/sv.err" >&2; exit 1; }
echo "supervise_smoke: 3 worker kills survived, answers bit-identical, restarts counted"

# ---- 3. clean shutdown ------------------------------------------------
bye=$(rt quit)
[ "$bye" = "ok bye" ] \
  || { echo "supervise_smoke: quit answered '$bye'" >&2; exit 1; }
if wait "$sv_pid"; then st=0; else st=$?; fi
sv_pid=
[ "$st" -eq 0 ] \
  || { echo "supervise_smoke: supervisor exit status $st" >&2; cat "$tmp/sv.err" >&2; exit 1; }
[ ! -e "$sock" ] \
  || { echo "supervise_smoke: socket file survived shutdown" >&2; exit 1; }
[ ! -e "$sock.journal" ] \
  || { echo "supervise_smoke: reload journal survived shutdown" >&2; exit 1; }
echo "supervise_smoke: clean quit ends supervisor and worker (exit 0, socket unlinked)"

echo "supervise_smoke: OK"
