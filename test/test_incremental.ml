(** Tests for incremental re-analysis ({!Pointsto.Persist} with
    [~incremental:true]): function-granularity content hashing, the
    dirty rule, summary replay, and — above all — the bit-identity
    contract: an incremental run after an edit must produce exactly the
    tables a cold run of the edited source produces. Anything less and
    the cache would be a source of wrong answers.

    Layers under test, bottom-up: {!Persist.func_hash} (position
    normalization), {!Persist.eligible_funcs} (the dirty rule),
    [analyze_cached ~incremental] end-to-end (cone re-analysis with
    exact counter assertions, the whole benchmark suite bit-identical
    after edits), and the corruption path (truncated [.pti] files
    quarantine and fall back to a cold run). *)

open Test_util
module Ig = Pointsto.Invocation_graph
module Persist = Pointsto.Persist
module Options = Pointsto.Options
module Metrics = Pointsto.Metrics

let bench_dir = if Sys.file_exists "benchmarks" then "benchmarks" else "../benchmarks"

let bench name = Filename.concat bench_dir (name ^ ".c")

let temp_dir () =
  let d = Filename.temp_file "ptan-incr" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let in_temp f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let append_to path s = write_file path (read_file path ^ s)

(** First occurrence of [sub] in [s], or [None]. *)
let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.equal (String.sub s i m) sub then Some i else go (i + 1)
  in
  go 0

let replace_once ~sub ~by s =
  match find_sub s sub with
  | None -> Alcotest.failf "edit anchor %S not found" sub
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + String.length sub) (String.length s - i - String.length sub)

(** The full query surface an incremental run must reproduce
    bit-identically: per-statement sets, entry output, warnings, and the
    invocation graph (shape, kinds, stored pairs). *)
let stmt_pts_strings (res : Analysis.result) =
  Hashtbl.fold (fun id s acc -> (id, Pts.to_string s) :: acc) res.Analysis.stmt_pts []
  |> List.sort compare

let check_identical name (cold : Analysis.result) (incr : Analysis.result) =
  Alcotest.(check (list (pair int string)))
    (name ^ ": per-statement points-to sets")
    (stmt_pts_strings cold) (stmt_pts_strings incr);
  Alcotest.(check string)
    (name ^ ": entry output")
    (Fmt.str "%a" Pts.pp_state cold.Analysis.entry_output)
    (Fmt.str "%a" Pts.pp_state incr.Analysis.entry_output);
  Alcotest.(check (list string))
    (name ^ ": warnings") cold.Analysis.warnings incr.Analysis.warnings;
  Alcotest.(check string)
    (name ^ ": invocation graph")
    (Fmt.str "%a" Ig.pp cold.Analysis.graph)
    (Fmt.str "%a" Ig.pp incr.Analysis.graph)

(* ------------------------------------------------------------------ *)
(* The diff oracle: func_hash and eligible_funcs                       *)
(* ------------------------------------------------------------------ *)

(** A function moved around the file (statement ids and locations all
    shifted) must hash identically; a body edit must not. *)
let hash_tests =
  [
    case "func_hash ignores statement ids and source positions" (fun () ->
        let tail = "void f(int **q) { int *p; p = *q; *q = p; }" in
        let p1 = simplify ("int main(void) { return 0; }\n" ^ tail) in
        let p2 =
          simplify
            ("int g1; int g2;\nint main(void) { int a; int b; a = 0; b = a; return b; }\n\n"
           ^ tail)
        in
        let fn p =
          match Ir.find_func p "f" with Some f -> f | None -> Alcotest.fail "no f"
        in
        Alcotest.(check bool)
          "same body, shifted ids: equal hashes" true
          (String.equal (Persist.func_hash (fn p1)) (Persist.func_hash (fn p2)));
        let p3 = simplify ("int main(void) { return 0; }\nvoid f(int **q) { int *p; p = *q; }") in
        Alcotest.(check bool)
          "edited body: different hash" false
          (String.equal (Persist.func_hash (fn p1)) (Persist.func_hash (fn p3))));
    case "eligible_funcs: dirty cone is the edited function plus its callers" (fun () ->
        let src ~edited =
          "int ga; int gb; int gc;\nint *pa; int *pb; int *pc;\n\
           void leaf1(void) { pa = &ga; }\n\
           void a(void) { leaf1(); }\n"
          ^ (if edited then "void b(void) { int t; t = 0; pb = &gb; }\n"
             else "void b(void) { pb = &gb; }\n")
          ^ "void c(void) { pc = &gc; }\n\
             int main(void) { a(); b(); c(); return 0; }\n"
        in
        let old_prog = simplify (src ~edited:false) in
        let new_prog = simplify (src ~edited:true) in
        let old_hashes = Hashtbl.create 8 in
        List.iter
          (fun f -> Hashtbl.replace old_hashes f.Ir.fn_name (Persist.func_hash f))
          old_prog.Ir.funcs;
        let elig = Persist.eligible_funcs new_prog ~old_hashes in
        let names =
          Hashtbl.fold (fun n () acc -> n :: acc) elig [] |> List.sort compare
        in
        Alcotest.(check (list string))
          "replayable = untouched subtrees" [ "a"; "c"; "leaf1" ] names);
    case "eligible_funcs: indirect call sites poison their whole closure" (fun () ->
        let src =
          "int g; int *p;\n\
           void tgt(void) { p = &g; }\n\
           void hub(void (*fp)(void)) { fp(); }\n\
           void quiet(void) { p = &g; }\n\
           int main(void) { hub(tgt); quiet(); return 0; }\n"
        in
        let prog = simplify src in
        let old_hashes = Hashtbl.create 8 in
        List.iter
          (fun f -> Hashtbl.replace old_hashes f.Ir.fn_name (Persist.func_hash f))
          prog.Ir.funcs;
        (* nothing edited, yet hub (indirect site) and main (calls hub)
           must stay dirty; tgt and quiet replay *)
        let elig = Persist.eligible_funcs prog ~old_hashes in
        let names =
          Hashtbl.fold (fun n () acc -> n :: acc) elig [] |> List.sort compare
        in
        Alcotest.(check (list string)) "fp-free subtrees only" [ "quiet"; "tgt" ] names);
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end: analyze_cached ~incremental                             *)
(* ------------------------------------------------------------------ *)

let cone_src_v1 =
  "int ga; int gb; int gc;\nint *pa; int *pb; int *pc;\n\
   void leaf1(void) { pa = &ga; }\n\
   void a(void) { leaf1(); }\n\
   void b(void) { pb = &gb; }\n\
   void c(void) { pc = &gc; }\n\
   int main(void) { a(); b(); c(); return 0; }\n"

let cone_src_v2 =
  replace_once ~sub:"void b(void) { pb = &gb; }"
    ~by:"void b(void) { int t; t = 0; pb = &gb; }" cone_src_v1

let cone_tests =
  [
    case "a one-function edit re-analyzes exactly its cone" (fun () ->
        in_temp (fun dir ->
            let source = Filename.concat dir "cone.c" in
            write_file source cone_src_v1;
            let r1, hit1 = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
            Alcotest.(check bool) "cold run misses" false hit1;
            Alcotest.(check int)
              "cold run: everything dirty" 5
              r1.Analysis.metrics.Metrics.incr_funcs_dirty;
            write_file source cone_src_v2;
            let r2, hit2 = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
            Alcotest.(check bool) "edited source is not a full hit" false hit2;
            (* dirty = b (edited) + main (calls b); a, leaf1, c replay.
               Replays happen at main's calls to a and c — leaf1 is
               covered by a's frame and never visited at all. *)
            Alcotest.(check int)
              "dirty cone is {main, b}" 2 r2.Analysis.metrics.Metrics.incr_funcs_dirty;
            Alcotest.(check int)
              "a and c replay from summaries" 2
              r2.Analysis.metrics.Metrics.incr_funcs_reused;
            let cold = Analysis.of_file source in
            check_identical "cone" cold r2));
    case "unchanged source is a plain full hit" (fun () ->
        in_temp (fun dir ->
            let source = Filename.concat dir "cone.c" in
            write_file source cone_src_v1;
            let _ = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
            let r, hit = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
            Alcotest.(check bool) "full hit" true hit;
            Alcotest.(check int) "hit recorded" 1 r.Analysis.metrics.Metrics.cache_hits));
    case "changed options invalidate the incremental entry wholesale" (fun () ->
        in_temp (fun dir ->
            let source = Filename.concat dir "cone.c" in
            write_file source cone_src_v1;
            let _ = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
            let opts = { Options.default with Options.max_sym_depth = 2 } in
            let r, hit = Persist.analyze_cached ~cache_dir:dir ~opts ~incremental:true source in
            Alcotest.(check bool) "miss" false hit;
            Alcotest.(check int)
              "nothing replays across an options change" 0
              r.Analysis.metrics.Metrics.incr_funcs_reused));
  ]

(** Every benchmark: populate the incremental cache, append a trailing
    comment (content key changes, no function hash does), re-analyze
    incrementally, and demand bit-identity with a cold run of the edited
    copy. This is the suite-wide soundness gate from docs/INCREMENTAL.md. *)
let suite_names =
  [
    "genetic"; "dry"; "clinpack"; "config"; "toplev"; "compress"; "mway"; "hash";
    "misr"; "xref"; "stanford"; "fixoutput"; "sim"; "travel"; "csuite"; "msc"; "lws";
    "livc";
  ]

let suite_tests =
  [
    case "whole suite: comment edit rekeys bit-identically" (fun () ->
        (* a trailing comment leaves the lowered program byte-identical,
           so the saved body is still the answer: the rekey fast path
           serves it as a hit with 0 dirty functions *)
        List.iter
          (fun name ->
            in_temp (fun dir ->
                let source = Filename.concat dir (name ^ ".c") in
                write_file source (read_file (bench name));
                let _ = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
                append_to source "\n/* trailing edit */\n";
                let r, hit =
                  Persist.analyze_cached ~cache_dir:dir ~incremental:true source
                in
                Alcotest.(check bool) (name ^ ": rekeyed entry is a hit") true hit;
                Alcotest.(check int)
                  (name ^ ": nothing dirty") 0
                  r.Analysis.metrics.Metrics.incr_funcs_dirty;
                check_identical name (Analysis.of_file source) r;
                (* the rekeyed entry must itself read back as a full hit *)
                let r2, hit2 =
                  Persist.analyze_cached ~cache_dir:dir ~incremental:true source
                in
                Alcotest.(check bool) (name ^ ": rekeyed file reloads") true hit2;
                check_identical (name ^ " reloaded") r r2))
          suite_names);
    case "whole suite: adding a function replays bit-identically" (fun () ->
        (* a new (uncalled) function changes the hash table, so the
           rekey path is off and the clean subtrees replay from
           summaries while the fp-touching slice re-runs *)
        List.iter
          (fun name ->
            in_temp (fun dir ->
                let source = Filename.concat dir (name ^ ".c") in
                write_file source (read_file (bench name));
                let _ = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
                append_to source "\nvoid ptan_probe_added(void) { }\n";
                let r, hit =
                  Persist.analyze_cached ~cache_dir:dir ~incremental:true source
                in
                Alcotest.(check bool) (name ^ ": not a full hit") false hit;
                let n_funcs = List.length r.Analysis.prog.Ir.funcs in
                Alcotest.(check bool)
                  (name ^ ": the new function is dirty, the suite is not")
                  true
                  (r.Analysis.metrics.Metrics.incr_funcs_dirty >= 1
                  && r.Analysis.metrics.Metrics.incr_funcs_dirty < n_funcs);
                check_identical name (Analysis.of_file source) r))
          suite_names);
    case "livc: a real one-kernel edit stays bit-identical" (fun () ->
        in_temp (fun dir ->
            let source = Filename.concat dir "livc.c" in
            write_file source (read_file (bench "livc"));
            let r1, _ = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
            let n_funcs = List.length r1.Analysis.prog.Ir.funcs in
            write_file source
              (replace_once ~sub:"double kern_a_5(void) { int i;"
                 ~by:"double kern_a_5(void) { int i; int edit_probe; edit_probe = 0;"
                 (read_file source));
            let r2, _ = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
            Alcotest.(check bool)
              "most of livc replays" true
              (r2.Analysis.metrics.Metrics.incr_funcs_reused > n_funcs / 2);
            Alcotest.(check bool)
              "only a sliver is dirty" true
              (r2.Analysis.metrics.Metrics.incr_funcs_dirty * 4 < n_funcs);
            check_identical "livc edited" (Analysis.of_file source) r2));
  ]

(* ------------------------------------------------------------------ *)
(* Corruption: truncated v3 entries quarantine and fall back cold      *)
(* ------------------------------------------------------------------ *)

let corruption_tests =
  [
    case "truncated incremental entries quarantine and re-analyze cold" (fun () ->
        in_temp (fun dir ->
            let source = Filename.concat dir "dry.c" in
            write_file source (read_file (bench "dry"));
            let cold = Analysis.of_file source in
            let pti =
              Persist.cache_file_incr ~cache_dir:dir ~source ~opts:Options.default
                ~entry:"main"
            in
            let _ = Persist.analyze_cached ~cache_dir:dir ~incremental:true source in
            let data = read_file pti in
            let n = String.length data in
            List.iter
              (fun cut ->
                write_file pti (String.sub data 0 cut);
                let r, hit =
                  Persist.analyze_cached ~cache_dir:dir ~incremental:true source
                in
                Alcotest.(check bool) (Fmt.str "cut@%d: miss" cut) false hit;
                Alcotest.(check int)
                  (Fmt.str "cut@%d: quarantined" cut)
                  1 r.Analysis.metrics.Metrics.cache_quarantined;
                Alcotest.(check int)
                  (Fmt.str "cut@%d: nothing replayed" cut)
                  0 r.Analysis.metrics.Metrics.incr_funcs_reused;
                check_identical (Fmt.str "cut@%d" cut) cold r)
              [ 3; n / 4; n / 2; (3 * n) / 4; n - 1 ];
            (* the victims were kept for post-mortem, never clobbered *)
            let bad =
              Sys.readdir dir |> Array.to_list
              |> List.filter (fun f -> find_sub f ".bad" <> None)
            in
            Alcotest.(check int) "every victim kept" 5 (List.length bad)));
  ]

let suite = ("incremental", hash_tests @ cone_tests @ suite_tests @ corruption_tests)
