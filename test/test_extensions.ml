(** Tests for the extension features (the paper's stated future work,
    DESIGN.md): §6 sub-tree sharing, allocation-site heap naming with
    connection analysis, interprocedural constant propagation on top of
    the deposited map information, and may-alias queries. *)

open Test_util
module C = Heap_analysis.Connection
module CP = Constprop
module Q = Alias.Queries

let share_opts = { Pointsto.Options.default with Pointsto.Options.share_contexts = true }

(* sharing is on by default, so the no-sharing baseline is the explicit one *)
let no_share_opts =
  { Pointsto.Options.default with Pointsto.Options.share_contexts = false }

let sharing_tests =
  [
    case "sharing reuses identical inputs across contexts" (fun () ->
        (* look() does not change the points-to state, so the two contexts
           map identical inputs and the second reuses the first *)
        let src =
          {|int g1; int *gp;
            void look(void) { int *t; t = gp; }
            void a(void) { look(); }
            void b(void) { look(); }
            int main() { gp = &g1; a(); b(); return 0; }|}
        in
        let off = analyze ~opts:no_share_opts src in
        let on = analyze ~opts:share_opts src in
        Alcotest.(check bool) "hits occurred" true (on.Analysis.share_hits > 0);
        Alcotest.(check bool) "fewer body passes" true
          (on.Analysis.bodies_analyzed < off.Analysis.bodies_analyzed);
        Alcotest.(check bool) "identical result" true
          (Pts.state_equal off.Analysis.entry_output on.Analysis.entry_output));
    case "sharing does not conflate different inputs" (fun () ->
        let src =
          {|int v, w;
            int *id(int *x) { return x; }
            int main() { int *p, *q; p = id(&v); q = id(&w); return 0; }|}
        in
        let res = analyze ~opts:share_opts src in
        check_targets "p" [ "v/D" ] (exit_targets res "p");
        check_targets "q" [ "w/D" ] (exit_targets res "q");
        Alcotest.(check int) "no spurious hits" 0 res.Analysis.share_hits);
    case "whole benchmark agrees under sharing" (fun () ->
        let p = Simple_ir.Simplify.of_file "../benchmarks/config.c" in
        let off = Analysis.analyze ~opts:no_share_opts p in
        let on = Analysis.analyze ~opts:share_opts p in
        Alcotest.(check bool) "same output" true
          (Pts.state_equal off.Analysis.entry_output on.Analysis.entry_output);
        Alcotest.(check bool) "saves work" true
          (on.Analysis.bodies_analyzed < off.Analysis.bodies_analyzed));
  ]

let heap_tests =
  [
    case "allocation sites get distinct names" (fun () ->
        let res =
          analyze ~opts:C.options
            {|int main() { int *p, *q; p = (int*)malloc(4); q = (int*)malloc(4); return 0; }|}
        in
        let tp = exit_targets res "p" in
        let tq = exit_targets res "q" in
        Alcotest.(check bool) "different sites" true (tp <> tq);
        Alcotest.(check bool) "site names" true
          (List.for_all
             (fun s -> String.length s > 5 && String.sub s 0 5 = "heap@")
             (tp @ tq)));
    case "two separately-built lists are provably disjoint" (fun () ->
        let src =
          {|struct n { struct n *next; };
            struct n *la, *lb;
            int main() {
              la = (struct n*)malloc(8); la->next = 0;
              lb = (struct n*)malloc(8); lb->next = 0;
              return 0; }|}
        in
        let res = analyze ~opts:C.options src in
        match res.Analysis.entry_output with
        | None -> Alcotest.fail "no exit"
        | Some s ->
            let la = Loc.Var ("la", Loc.Kglobal) in
            let lb = Loc.Var ("lb", Loc.Kglobal) in
            Alcotest.(check bool) "disjoint" false (C.connected s la lb));
    case "linked lists sharing structure are connected" (fun () ->
        let src =
          {|struct n { struct n *next; };
            struct n *la, *lb;
            int main() {
              la = (struct n*)malloc(8);
              lb = (struct n*)malloc(8);
              lb->next = la;    /* lb reaches la's cell */
              la->next = 0;
              return 0; }|}
        in
        let res = analyze ~opts:C.options src in
        match res.Analysis.entry_output with
        | None -> Alcotest.fail "no exit"
        | Some s ->
            let la = Loc.Var ("la", Loc.Kglobal) in
            let lb = Loc.Var ("lb", Loc.Kglobal) in
            Alcotest.(check bool) "connected" true (C.connected s la lb));
    case "same allocation site conservatively connects" (fun () ->
        (* both lists are built by the same constructor: site naming is
           context-insensitive, so they are (conservatively) connected *)
        let src =
          {|struct n { struct n *next; };
            struct n *mk(void) { return (struct n*)malloc(8); }
            struct n *la, *lb;
            int main() { la = mk(); lb = mk(); return 0; }|}
        in
        let res = analyze ~opts:C.options src in
        match res.Analysis.entry_output with
        | None -> Alcotest.fail "no exit"
        | Some s ->
            Alcotest.(check bool) "connected" true
              (C.connected s (Loc.Var ("la", Loc.Kglobal)) (Loc.Var ("lb", Loc.Kglobal))));
    case "partition groups pointers by structure" (fun () ->
        let src =
          {|struct n { struct n *next; };
            struct n *a1, *a2, *b1;
            int main() {
              a1 = (struct n*)malloc(8);
              a2 = a1;
              b1 = (struct n*)malloc(8);
              return 0; }|}
        in
        let res = analyze ~opts:C.options src in
        match res.Analysis.entry_output with
        | None -> Alcotest.fail "no exit"
        | Some s ->
            let groups =
              C.partition s
                [
                  Loc.Var ("a1", Loc.Kglobal);
                  Loc.Var ("a2", Loc.Kglobal);
                  Loc.Var ("b1", Loc.Kglobal);
                ]
            in
            Alcotest.(check int) "two groups" 2 (List.length groups));
    case "sites survive the call boundary" (fun () ->
        let src =
          {|int *g;
            void fill(int **pp) { *pp = (int*)malloc(4); }
            int main() { int *p; fill(&p); g = p; return 0; }|}
        in
        let res = analyze ~opts:C.options src in
        let tp = exit_targets res "p" in
        Alcotest.(check bool) "site name through unmap" true
          (List.exists (fun s -> String.length s > 5 && String.sub s 0 5 = "heap@") tp));
    case "summary counts are consistent" (fun () ->
        let res = Analysis.of_file ~opts:C.options "../benchmarks/xref.c" in
        let sum = C.summarize res in
        Alcotest.(check bool) "sites found" true (sum.C.n_sites >= 3);
        Alcotest.(check bool) "pairs bound disjoint" true (sum.C.n_disjoint <= sum.C.n_pairs));
  ]

let constprop_tests =
  [
    case "locals and globals propagate" (fun () ->
        let src =
          {|int g;
            void probe1(void);
            int main() { int a; a = 6; g = a * 7; probe1(); return g; }|}
        in
        let res = analyze src in
        let cp = CP.run res in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check (option int64)) "a = 6" (Some 6L)
          (CP.const_at cp sid (Loc.Var ("a", Loc.Klocal)));
        Alcotest.(check (option int64)) "g = 42" (Some 42L)
          (CP.const_at cp sid (Loc.Var ("g", Loc.Kglobal))));
    case "constants flow through calls and returns" (fun () ->
        let src =
          {|void probe1(void);
            int twice(int x) { return x * 2; }
            int main() { int a; a = twice(21); probe1(); return a; }|}
        in
        let res = analyze src in
        let cp = CP.run res in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check (option int64)) "a = 42" (Some 42L)
          (CP.const_at cp sid (Loc.Var ("a", Loc.Klocal))));
    case "writes through pointers use the points-to results" (fun () ->
        let src =
          {|void probe1(void);
            void set(int *p, int v) { *p = v; }
            int main() { int b; set(&b, 5); probe1(); return b; }|}
        in
        let res = analyze src in
        let cp = CP.run res in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check (option int64)) "b = 5 via callee store" (Some 5L)
          (CP.const_at cp sid (Loc.Var ("b", Loc.Klocal))));
    case "merge of different constants loses the value" (fun () ->
        let src =
          {|int c;
            void probe1(void);
            int main() { int a; if (c) a = 1; else a = 2; probe1(); return a; }|}
        in
        let res = analyze src in
        let cp = CP.run res in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check (option int64)) "a unknown" None
          (CP.const_at cp sid (Loc.Var ("a", Loc.Klocal))));
    case "weak pointer writes only weaken" (fun () ->
        let src =
          {|int c;
            void probe1(void);
            int main() { int a, b; int *p;
              a = 1; b = 1;
              if (c) p = &a; else p = &b;
              *p = 9;
              probe1();
              return a; }|}
        in
        let res = analyze src in
        let cp = CP.run res in
        let sid = probe_stmt res "probe1" in
        (* a is 1 or 9: unknown; must NOT be reported as constant *)
        Alcotest.(check (option int64)) "a unknown after weak write" None
          (CP.const_at cp sid (Loc.Var ("a", Loc.Klocal))));
    case "context sensitivity keeps call sites apart" (fun () ->
        let src =
          {|void probe1(void);
            int id(int x) { return x; }
            int main() { int a, b; a = id(1); b = id(2); probe1(); return a + b; }|}
        in
        let res = analyze src in
        let cp = CP.run res in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check (option int64)) "a = 1" (Some 1L)
          (CP.const_at cp sid (Loc.Var ("a", Loc.Klocal)));
        Alcotest.(check (option int64)) "b = 2" (Some 2L)
          (CP.const_at cp sid (Loc.Var ("b", Loc.Klocal))));
    case "recursion is handled conservatively" (fun () ->
        let src =
          {|int g;
            void probe1(void);
            void rec(int n) { g = n; if (n) rec(n - 1); }
            int main() { rec(3); probe1(); return g; }|}
        in
        let res = analyze src in
        let cp = CP.run res in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check (option int64)) "g unknown" None
          (CP.const_at cp sid (Loc.Var ("g", Loc.Kglobal))));
    case "external calls invalidate reachable cells" (fun () ->
        let src =
          {|void scramble(int *p);
            void probe1(void);
            int main() { int a; a = 4; scramble(&a); probe1(); return a; }|}
        in
        let res = analyze src in
        let cp = CP.run res in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check (option int64)) "a unknown" None
          (CP.const_at cp sid (Loc.Var ("a", Loc.Klocal))));
    case "fold sites report constant operand reads" (fun () ->
        let src = {|int main() { int a, b; a = 2; b = a + 3; return b; }|} in
        let res = analyze src in
        let cp = CP.run res in
        Alcotest.(check bool) "found" true (List.length (CP.fold_sites cp) >= 1));
  ]

let alias_query_tests =
  [
    case "distinct targets: no alias" (fun () ->
        let src =
          {|int v, w;
            void probe1(void);
            int main() { int *p, *q; p = &v; q = &w; probe1(); return 0; }|}
        in
        let res = analyze src in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check string) "no alias" "no-alias"
          (Q.verdict_to_string (Q.derefs_alias res fn sid "p" "q")));
    case "same definite target: must alias" (fun () ->
        let src =
          {|int v;
            void probe1(void);
            int main() { int *p, *q; p = &v; q = p; probe1(); return 0; }|}
        in
        let res = analyze src in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check string) "must alias" "must-alias"
          (Q.verdict_to_string (Q.derefs_alias res fn sid "p" "q")));
    case "overlapping possibilities: may alias" (fun () ->
        let src =
          {|int v, w; int c;
            void probe1(void);
            int main() { int *p, *q; p = &v; if (c) q = &v; else q = &w;
              probe1(); return 0; }|}
        in
        let res = analyze src in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check string) "may alias" "may-alias"
          (Q.verdict_to_string (Q.derefs_alias res fn sid "p" "q")));
    case "array head and unknown index may alias" (fun () ->
        let src =
          {|int arr[8];
            void probe1(void);
            int main(int argc, char **argv) { int *p, *q;
              p = &arr[0]; q = &arr[argc];
              probe1(); return 0; }|}
        in
        let res = analyze src in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check string) "may alias" "may-alias"
          (Q.verdict_to_string (Q.derefs_alias res fn sid "p" "q")));
    case "array head and tail do not alias" (fun () ->
        let src =
          {|int arr[8];
            void probe1(void);
            int main() { int *p, *q; p = &arr[0]; q = &arr[3];
              probe1(); return 0; }|}
        in
        let res = analyze src in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check string) "no alias" "no-alias"
          (Q.verdict_to_string (Q.derefs_alias res fn sid "p" "q")));
    case "non-singular target is never a must alias" (fun () ->
        let src =
          {|void probe1(void);
            int main() { int *p, *q; p = (int*)malloc(4); q = p; probe1(); return 0; }|}
        in
        let res = analyze src in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        let sid = probe_stmt res "probe1" in
        Alcotest.(check string) "may, not must" "may-alias"
          (Q.verdict_to_string (Q.derefs_alias res fn sid "p" "q")));
    case "exhaustive pair table is computable" (fun () ->
        let src =
          {|int v; int main() { int *p, *q; p = &v; q = p; *p = 1; *q = 2; return 0; }|}
        in
        let res = analyze src in
        let fn = Option.get (Ir.find_func res.Analysis.prog "main") in
        Alcotest.(check bool) "non-empty" true (Q.deref_alias_pairs res fn <> []));
  ]

let suite =
  ("extensions", sharing_tests @ heap_tests @ constprop_tests @ alias_query_tests)
