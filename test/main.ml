let () =
  Alcotest.run "pointsto"
    [
      Test_pts.suite;
      Test_ctype.suite;
      Test_lval.suite;
      Test_mapunmap.suite;
      Test_parser.suite;
      Test_parser_torture.suite;
      Test_simplify.suite;
      Test_intra.suite;
      Test_interproc.suite;
      Test_alias.suite;
      Test_transforms.suite;
      Test_stats.suite;
      Test_soundness.suite;
      Test_extensions.suite;
      Test_benchmarks.suite;
      Test_persist.suite;
      Test_incremental.suite;
      Test_queries.suite;
      Test_demand.suite;
      Test_parallel.suite;
      Test_trace.suite;
      Test_robust.suite;
      Test_serve.suite;
      Test_gen.suite;
    ]
