(** Demand-driven slice planning and the sliced analysis
    ({!Pointsto.Demand}, {!Pointsto.Analysis.analyze_demand},
    {!Alias.Demand_driver}).

    Two angles:

    - slice construction: exact expected function sets on hand-written
      programs exercising the planning rules (callers enter the slice,
      earlier callees enter the slice, later callees do not, the seed's
      cone is analyzed in full, recursion promotes the cycle, indirect
      sites expand via the Andersen oracle, loops make co-resident
      sites mutually flowing);
    - the correctness gate: for {e every} defined function as seed, the
      demand run's recorded rows are bit-identical to the exhaustive
      run's — on the hand-written programs and on random
      function-pointer-heavy programs (QCheck). *)

open Test_util
module Demand = Pointsto.Demand
module Dd = Alias.Demand_driver
module Query = Alias.Query

let prepare src = Dd.prepare (simplify src)

let check_slice msg src ~seed expected =
  let d = prepare src in
  let plan = Dd.plan_for d ~seed in
  Alcotest.(check (list string))
    msg (sorted_strings expected)
    (Demand.slice_funcs plan)

(** Demand rows for [seed] are bit-identical to the exhaustive rows, for
    every statement of [seed]'s body. *)
let check_rows_identical src (exh : Analysis.result) (d : Dd.t) (fn : Ir.func) =
  let dem = Dd.analyze d ~seed:fn.Ir.fn_name in
  Ir.fold_func
    (fun () s ->
      let a = Analysis.pts_at exh s.Ir.s_id in
      let b = Analysis.pts_at dem s.Ir.s_id in
      if not (Pts.equal a b) then
        Alcotest.failf "row s%d of %s differs\nexhaustive: %s\ndemand:     %s\nin:\n%s"
          s.Ir.s_id fn.Ir.fn_name (Pts.to_string a) (Pts.to_string b) src)
    () fn;
  dem

(** Run the correctness gate over every defined function of [src], plus
    the textual query layer ([pts] queries answered from demand results
    match the exhaustive answers verbatim). *)
let check_demand_identical ?(vars = []) src =
  let prog = simplify src in
  let exh = Analysis.analyze prog in
  let d = Dd.prepare prog in
  List.iter
    (fun fn ->
      let dem = check_rows_identical src exh d fn in
      Ir.fold_func
        (fun () s ->
          List.iter
            (fun v ->
              let q = Fmt.str "pts %s s%d %s" fn.Ir.fn_name s.Ir.s_id v in
              let show = function Ok t -> "ok: " ^ t | Error e -> "error: " ^ e in
              Alcotest.(check string)
                (Fmt.str "query '%s'" q)
                (show (Query.run exh q))
                (show (Query.run dem q)))
            vars)
        () fn)
    prog.Ir.funcs

(* ------------------------------------------------------------------ *)
(* Slice construction                                                 *)
(* ------------------------------------------------------------------ *)

let cone_src =
  {|int a1; int *g;
    void leaf1(void) { g = &a1; }
    void leaf2(void) { g = 0; }
    void mid(void) { leaf1(); leaf2(); }
    void post(void) { g = 0; }
    int main() { mid(); post(); return 0; }|}

let order_src =
  {|int a1; int *g;
    void fa(void) { g = &a1; }
    void fb(void) { int *l; l = g; }
    int main() { fa(); fb(); return 0; }|}

let fp_src =
  {|int v1, v2; int *g;
    void f1(void) { g = &v1; }
    void f2(void) { g = &v2; }
    int main(int argc, char **argv) {
      void (*fp)(void);
      if (argc) { fp = f1; } else { fp = f2; }
      fp();
      return 0; }|}

let fp_loop_src =
  {|int v1, v2; int *g;
    void f1(void) { g = &v1; }
    void f2(void) { g = &v2; }
    int main(int argc, char **argv) {
      void (*fp)(void);
      fp = f1;
      while (argc) { fp(); fp = f2; }
      return 0; }|}

let rec_src =
  {|int a1; int cnd; int *g;
    void r2(void);
    void r1(void) { if (cnd) { r2(); } g = &a1; }
    void r2(void) { r1(); }
    void pre(void) { g = 0; }
    void post(void) { g = 0; }
    int main() { pre(); r1(); post(); return 0; }|}

let slice_tests =
  [
    case "seed's callee cone is analyzed in full" (fun () ->
        check_slice "seed mid" cone_src ~seed:"mid"
          [ "leaf1"; "leaf2"; "main"; "mid" ]);
    case "a callee after the last call toward the seed is skipped" (fun () ->
        check_slice "seed fa" order_src ~seed:"fa" [ "fa"; "main" ]);
    case "a callee before a call toward the seed is analyzed" (fun () ->
        (* fa's effect flows into fb's input through main *)
        check_slice "seed fb" order_src ~seed:"fb" [ "fa"; "fb"; "main" ]);
    case "co-targets of a straight-line indirect site are skipped" (fun () ->
        (* fp() invokes f1 and f2 with the same input; f2's output merges
           after the site and cannot reach f1's rows *)
        check_slice "seed f1" fp_src ~seed:"f1" [ "f1"; "main" ]);
    case "an indirect site in a loop promotes its co-targets" (fun () ->
        (* a later iteration's f2 effect feeds an earlier statement's
           state: flows' holds site-to-itself inside the loop *)
        check_slice "seed f1" fp_loop_src ~seed:"f1" [ "f1"; "f2"; "main" ]);
    case "recursion promotes the whole cycle, later calls stay out" (fun () ->
        check_slice "seed r1" rec_src ~seed:"r1" [ "main"; "pre"; "r1"; "r2" ]);
    case "an undefined seed is rejected" (fun () ->
        let d = prepare order_src in
        Alcotest.check_raises "invalid seed"
          (Invalid_argument "Demand.plan: nope is not a defined function")
          (fun () -> ignore (Dd.plan_for d ~seed:"nope")));
  ]

(* ------------------------------------------------------------------ *)
(* Bit-identity on the hand-written programs                          *)
(* ------------------------------------------------------------------ *)

let identity_tests =
  [
    case "demand rows match exhaustive on the slice programs" (fun () ->
        List.iter
          (check_demand_identical ~vars:[ "g"; "fp" ])
          [ cone_src; order_src; fp_src; fp_loop_src; rec_src ]);
    case "skips are counted and out-of-slice rows are not recorded" (fun () ->
        (* seed leaf1: mid's leaf2 call and main's post call are skipped *)
        let d = prepare cone_src in
        let dem = Dd.analyze d ~seed:"leaf1" in
        let m = dem.Analysis.metrics in
        Alcotest.(check int) "one plan" 1 m.Pointsto.Metrics.demand_plans;
        Alcotest.(check bool) "calls were skipped" true
          (m.Pointsto.Metrics.demand_skipped >= 2);
        (* post's body row was never recorded *)
        let post = Option.get (Ir.find_func dem.Analysis.prog "post") in
        Ir.fold_func
          (fun () s ->
            Alcotest.(check bool)
              (Fmt.str "s%d of post absent" s.Ir.s_id)
              true
              (Pts.is_empty (Analysis.pts_at dem s.Ir.s_id)))
          () post);
  ]

(* ------------------------------------------------------------------ *)
(* Random programs (QCheck)                                           *)
(* ------------------------------------------------------------------ *)

(* A small universe with globals, three helpers and a global function
   pointer: enough to exercise caller chains, cones, recursion and
   oracle-expanded indirect sites. *)

type rstmt =
  | Take of string * string  (** p = &a *)
  | Copy of string * string  (** p = q *)
  | Null of string  (** p = 0 *)
  | Malloc of string
  | If of rstmt list * rstmt list
  | While of rstmt list
  | Call of int  (** helperI(); *)
  | SetFp of int  (** fp = helperI; *)
  | CallFp  (** fp(); *)

let n_helpers = 3

let render (helpers : rstmt list list) (body : rstmt list) : string =
  let buf = Buffer.create 512 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "int a, b;\nint *p, *q, *r;\nint cnd;\nvoid (*fp)(void);\n";
  for i = 0 to n_helpers - 1 do
    pf "void helper%d(void);\n" i
  done;
  let rec stmts ind l = List.iter (stmt ind) l
  and stmt ind s =
    let pad = String.make ind ' ' in
    match s with
    | Take (d, s) -> pf "%s%s = &%s;\n" pad d s
    | Copy (d, s) -> pf "%s%s = %s;\n" pad d s
    | Null d -> pf "%s%s = 0;\n" pad d
    | Malloc d -> pf "%s%s = (int*)malloc(4);\n" pad d
    | If (t, e) ->
        pf "%sif (cnd) {\n" pad;
        stmts (ind + 2) t;
        pf "%s} else {\n" pad;
        stmts (ind + 2) e;
        pf "%s}\n" pad
    | While b ->
        pf "%swhile (cnd) {\n" pad;
        stmts (ind + 2) b;
        pf "%s}\n" pad
    | Call i -> pf "%shelper%d();\n" pad i
    | SetFp i -> pf "%sfp = helper%d;\n" pad i
    | CallFp -> pf "%sif (fp != 0) fp();\n" pad
  in
  List.iteri
    (fun i b ->
      pf "void helper%d(void) {\n" i;
      stmts 2 b;
      pf "}\n")
    helpers;
  pf "int main() {\n";
  stmts 2 body;
  pf "  return 0;\n}\n";
  Buffer.contents buf

let gen_program : (rstmt list list * rstmt list) QCheck2.Gen.t =
  let open QCheck2.Gen in
  let rec gen_stmt ~depth =
    let l1 = oneofl [ "p"; "q"; "r" ] in
    let base =
      [
        (3, map2 (fun d s -> Take (d, s)) l1 (oneofl [ "a"; "b" ]));
        (3, map2 (fun d s -> Copy (d, s)) l1 l1);
        (1, map (fun d -> Null d) l1);
        (2, map (fun d -> Malloc d) l1);
        (3, map (fun i -> Call i) (int_bound (n_helpers - 1)));
        (2, map (fun i -> SetFp i) (int_bound (n_helpers - 1)));
        (2, pure CallFp);
      ]
    in
    if depth = 0 then frequency base
    else
      frequency
        (base
        @ [
            ( 1,
              map2
                (fun t e -> If (t, e))
                (list_size (int_bound 3) (gen_stmt ~depth:(depth - 1)))
                (list_size (int_bound 3) (gen_stmt ~depth:(depth - 1))) );
            (1, map (fun b -> While b) (list_size (int_bound 3) (gen_stmt ~depth:(depth - 1))));
          ])
  in
  let* helpers = list_repeat n_helpers (list_size (int_bound 4) (gen_stmt ~depth:1)) in
  let* body = list_size (int_range 1 6) (gen_stmt ~depth:2) in
  pure (helpers, body)

let property_tests =
  [
    qcase ~count:80 "demand rows are bit-identical to exhaustive for every seed"
      gen_program
      (fun (helpers, body) ->
        check_demand_identical ~vars:[ "p"; "fp" ] (render helpers body);
        true);
  ]

let suite =
  ("demand", slice_tests @ identity_tests @ property_tests)
