(** Tests for the parallel driver layer: the {!Pointsto.Pool} domain
    pool, bit-identical results across pool widths and across the
    sub-tree-sharing ablation, and the canonical {!Pts.hash} digest the
    hash-indexed sharing memo is keyed by. *)

open Test_util
module Pool = Pointsto.Pool
module Stats = Pointsto.Stats
module Options = Pointsto.Options

(* ------------------------------------------------------------------ *)
(* Pool                                                               *)
(* ------------------------------------------------------------------ *)

let pool_tests =
  [
    case "results come back in submission order" (fun () ->
        let tasks = List.init 50 (fun i () -> i * i) in
        Pool.with_pool ~jobs:8 (fun pool ->
            let rs = Pool.run_list pool tasks in
            List.iteri
              (fun i r ->
                match r with
                | Ok v -> Alcotest.(check int) "ordered" (i * i) v
                | Error _ -> Alcotest.fail "unexpected error")
              rs));
    case "a raising task is isolated as Error" (fun () ->
        let tasks =
          [ (fun () -> 1); (fun () -> failwith "boom"); (fun () -> 3) ]
        in
        Pool.with_pool ~jobs:4 (fun pool ->
            match Pool.run_list pool tasks with
            | [ Ok 1; Error (Failure m); Ok 3 ] when String.equal m "boom" -> ()
            | _ -> Alcotest.fail "expected [Ok 1; Error boom; Ok 3]"));
    case "jobs = 1 runs inline on the calling domain" (fun () ->
        let self = (Domain.self () :> int) in
        Pool.with_pool ~jobs:1 (fun pool ->
            Alcotest.(check int) "clamped" 1 (Pool.jobs pool);
            let rs = Pool.map pool (fun () -> (Domain.self () :> int)) [ (); (); () ] in
            List.iter (Alcotest.(check int) "same domain" self) rs));
    case "map re-raises the first error in submission order" (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            match Pool.map pool (fun i -> if i >= 3 then raise Exit else i) [ 1; 2; 3; 4 ] with
            | exception Exit -> ()
            | _ -> Alcotest.fail "expected Exit"));
    case "many more tasks than domains all complete" (fun () ->
        let n = 500 in
        Pool.with_pool ~jobs:8 (fun pool ->
            let rs = Pool.map pool (fun i -> i) (List.init n Fun.id) in
            Alcotest.(check int) "sum" (n * (n - 1) / 2) (List.fold_left ( + ) 0 rs)));
    case "a pool is reusable across run_list calls" (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            Alcotest.(check (list int)) "first" [ 2; 4 ] (Pool.map pool (fun x -> 2 * x) [ 1; 2 ]);
            Alcotest.(check (list int)) "second" [ 9 ] (Pool.map pool (fun x -> x * x) [ 3 ])));
    case "looped timeouts do not leak watchdog domains" (fun () ->
        (* domain ids are allocated monotonically, so the id of a fresh
           probe domain bounds how many domains were ever spawned; the
           old per-call watchdog leaked ~1 domain per run_list call *)
        let probe () = Domain.join (Domain.spawn (fun () -> (Domain.self () :> int))) in
        let before = probe () in
        Pool.with_pool ~jobs:2 (fun pool ->
            for i = 1 to 100 do
              match Pool.run_list ~timeout_ms:5_000. pool [ (fun () -> i); (fun () -> - i) ] with
              | [ Ok a; Ok b ] when a = i && b = -i -> ()
              | _ -> Alcotest.fail "wrong results under timeout loop"
            done);
        let after = probe () in
        (* 2 probes + 2 workers + 1 lazily-spawned watchdog, with slack *)
        Alcotest.(check bool)
          (Printf.sprintf "domain growth bounded (%d before, %d after)" before after)
          true
          (after - before <= 10));
    case "a pool with looped timeouts still cancels overdue tasks" (fun () ->
        (* the shared watchdog must stay effective on its 50th
           registration, not just its first *)
        Pool.with_pool ~jobs:2 (fun pool ->
            for _ = 1 to 50 do
              match Pool.run_list ~timeout_ms:5_000. pool [ (fun () -> ()) ] with
              | [ Ok () ] -> ()
              | _ -> Alcotest.fail "in-budget task failed"
            done;
            let g = Pointsto.Guard.unlimited () in
            let spin () =
              while true do
                Pointsto.Guard.check g
              done
            in
            match Pool.run_list ~timeout_ms:60. pool [ spin ] with
            | [ Error Pointsto.Guard.Cancelled ] -> ()
            | _ -> Alcotest.fail "expected Cancelled from the 51st watch"));
  ]

(* ------------------------------------------------------------------ *)
(* Determinism of parallel analysis                                   *)
(* ------------------------------------------------------------------ *)

(** The Table 3-6 rows of a result, as one comparable string. *)
let rows r =
  let open Stats in
  let i = indirect_stats r in
  let c = categorize r in
  let g = general r in
  let s = ig_stats r in
  Fmt.str
    "%d %d %d %d %.3f | %d %d %d %d %d %d %d %d | %d %d %d %d %.2f %d | %d %d %d %d %d %.3f \
     %.3f"
    i.ind_refs i.scalar_rep i.to_stack i.to_heap i.avg c.from_lo c.from_gl c.from_fp c.from_sy
    c.to_lo c.to_gl c.to_fp c.to_sy g.stack_to_stack g.stack_to_heap g.heap_to_heap
    g.heap_to_stack g.avg_per_stmt g.max_per_stmt s.ig_nodes s.call_sites s.n_funcs
    s.n_recursive s.n_approximate s.avg_per_call_site s.avg_per_func

(** Digest of every per-statement points-to set, rendering included. *)
let stmt_digest r =
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) r.Analysis.stmt_pts []
  |> List.sort compare
  |> List.map (fun (id, s) -> Fmt.str "s%d:%a" id Pts.pp s)
  |> String.concat "\n" |> Digest.string |> Digest.to_hex

(* The function-pointer-heavy members of the suite: livc is the paper's
   function-pointer study; config and sim dispatch through pointer
   tables; genetic passes function arguments around. *)
let fp_heavy = [ "livc"; "config"; "sim"; "genetic" ]

let load_bench name = Simple_ir.Simplify.of_file ("../benchmarks/" ^ name ^ ".c")

let determinism_tests =
  [
    case "-j 8 reproduces -j 1 bit-identically on fp-heavy programs" (fun () ->
        let parsed = List.map (fun n -> (n, load_bench n)) fp_heavy in
        let seq = List.map (fun (n, p) -> (n, Analysis.analyze p)) parsed in
        let par =
          Pool.with_pool ~jobs:8 (fun pool ->
              Pool.map pool (fun (n, p) -> (n, Analysis.analyze p)) parsed)
        in
        List.iter2
          (fun (n, a) (_, b) ->
            Alcotest.(check string) (n ^ ": table rows") (rows a) (rows b);
            Alcotest.(check string) (n ^ ": statement sets") (stmt_digest a) (stmt_digest b))
          seq par);
    case "sharing on and off are bit-identical where the memo is hit" (fun () ->
        List.iter
          (fun n ->
            let p = load_bench n in
            let on =
              Analysis.analyze ~opts:{ Options.default with Options.share_contexts = true } p
            in
            let off =
              Analysis.analyze ~opts:{ Options.default with Options.share_contexts = false } p
            in
            Alcotest.(check bool) (n ^ ": memo exercised") true (on.Analysis.share_hits > 0);
            Alcotest.(check string) (n ^ ": table rows") (rows off) (rows on);
            Alcotest.(check string) (n ^ ": statement sets") (stmt_digest off) (stmt_digest on))
          fp_heavy);
    case "analyzing one program on many domains agrees with the host" (fun () ->
        let p = load_bench "livc" in
        let here = Analysis.analyze p in
        let there =
          Pool.with_pool ~jobs:4 (fun pool ->
              Pool.map pool (fun () -> Analysis.analyze p) [ (); (); (); () ])
        in
        List.iter
          (fun r ->
            Alcotest.(check string) "rows" (rows here) (rows r);
            Alcotest.(check string) "stmts" (stmt_digest here) (stmt_digest r))
          there);
  ]

(* ------------------------------------------------------------------ *)
(* Canonical hashing                                                  *)
(* ------------------------------------------------------------------ *)

let triples_gen =
  QCheck2.Gen.(
    list_size (int_bound 14) (triple Test_pts.loc_gen Test_pts.loc_gen Test_pts.cert_gen))

let hash_tests =
  [
    qcase "hash is construction-order canonical" triples_gen (fun l ->
        let a = Pts.of_list l in
        let b = Pts.of_list (List.rev l) in
        (not (Pts.equal a b)) || Pts.hash a = Pts.hash b);
    qcase "hash agrees with equal under incremental build"
      QCheck2.Gen.(pair triples_gen triples_gen)
      (fun (l1, l2) ->
        let a = Pts.of_list (l1 @ l2) in
        let b = Pts.merge (Pts.of_list l1) (Pts.of_list l2) in
        (not (Pts.equal a b)) || Pts.hash a = Pts.hash b);
    qcase "unequal hash implies unequal sets"
      QCheck2.Gen.(pair triples_gen triples_gen)
      (fun (l1, l2) ->
        let a = Pts.of_list l1 and b = Pts.of_list l2 in
        Pts.hash a = Pts.hash b || not (Pts.equal a b));
  ]

let suite = ("parallel", pool_tests @ determinism_tests @ hash_tests)
