(** Tests for {!Pointsto.Serve}, the resident daemon core: protocol
    parsing, per-connection line framing, reply ordering, admission
    control ([busy]), per-request deadlines (a tripped request is an
    [error] reply, never a dead daemon), and the Unix-socket transport
    with concurrent clients answered bit-identically to cold
    {!Alias.Query.run} calls. *)

open Test_util
module Serve = Pointsto.Serve
module Guard = Pointsto.Guard
module Fault = Pointsto.Fault
module Ig = Pointsto.Invocation_graph

(* ------------------------------------------------------------------ *)
(* Harness: drive the daemon in-process over a pipe pair              *)
(* ------------------------------------------------------------------ *)

(** A handler that needs no analysis at all — protocol tests care about
    framing and dispatch, not answers. *)
let echo_handler =
  {
    Serve.h_files = [ "f" ];
    Serve.h_answer = (fun ~file:_ ~query -> Serve.Ans ("echo " ^ query));
    Serve.h_reload = None;
    Serve.h_paths = [];
  }

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

(** Spawn the daemon on a pipe pair and hand [f] the request fd and a
    reply channel; closing the request fd (done here after [f]) is the
    daemon's end-of-input. Returns (f's result, final stats). *)
let with_daemon ?(cfg = Serve.default_config) ?(handler = echo_handler) f =
  let req_r, req_w = Unix.pipe () in
  let rep_r, rep_w = Unix.pipe () in
  let daemon =
    Domain.spawn (fun () -> Serve.run cfg handler (Serve.Fds (req_r, rep_w)))
  in
  let ic = Unix.in_channel_of_descr rep_r in
  let v = f req_w ic in
  (try Unix.close req_w with Unix.Unix_error _ -> ());
  let stats = Domain.join daemon in
  List.iter Unix.close [ req_r; rep_w; rep_r ];
  (v, stats)

(** One request, one reply. *)
let round_trip req_w ic line =
  write_all req_w (line ^ "\n");
  input_line ic

(* ------------------------------------------------------------------ *)
(* parse_request                                                      *)
(* ------------------------------------------------------------------ *)

let parse_tests =
  let ok = Alcotest.(check bool) "parses" true in
  let err = Alcotest.(check bool) "rejected" true in
  [
    case "well-formed requests parse" (fun () ->
        ok (Serve.parse_request "ping" = Ok Serve.Ping);
        ok (Serve.parse_request "files" = Ok Serve.Files);
        ok (Serve.parse_request "stats" = Ok Serve.Stats);
        ok (Serve.parse_request "health" = Ok Serve.Health);
        ok (Serve.parse_request "quit" = Ok Serve.Quit);
        ok (Serve.parse_request "watch" = Ok Serve.Watch);
        ok (Serve.parse_request "reload hash" = Ok (Serve.Reload "hash"));
        ok
          (Serve.parse_request "q hash pts main s1 p"
          = Ok (Serve.Query { file = "hash"; query = "pts main s1 p" })));
    case "whitespace is collapsed, tabs accepted" (fun () ->
        ok
          (Serve.parse_request "q  hash \t pts  main s1 p"
          = Ok (Serve.Query { file = "hash"; query = "pts main s1 p" })));
    case "malformed requests are rejected with a reason" (fun () ->
        err (Result.is_error (Serve.parse_request ""));
        err (Result.is_error (Serve.parse_request "   "));
        err (Result.is_error (Serve.parse_request "q"));
        err (Result.is_error (Serve.parse_request "q onlyfile"));
        err (Result.is_error (Serve.parse_request "reload"));
        err (Result.is_error (Serve.parse_request "frobnicate x y")));
  ]

(* ------------------------------------------------------------------ *)
(* Protocol over pipes                                                *)
(* ------------------------------------------------------------------ *)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.equal (String.sub s 0 (String.length prefix)) prefix

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  go 0

let protocol_tests =
  [
    case "ping, files and query round-trip in order" (fun () ->
        let replies, stats =
          with_daemon (fun req_w ic ->
              write_all req_w "ping\nfiles\nq f pts main s1 p\n";
              List.init 3 (fun _ -> input_line ic))
        in
        Alcotest.(check (list string))
          "replies"
          [ "ok pong"; "ok 1 f"; "ok echo pts main s1 p" ]
          replies;
        Alcotest.(check int) "requests counted" 3 stats.Serve.s_requests;
        Alcotest.(check int) "all ok" 3 stats.Serve.s_ok);
    case "a malformed line gets an error reply; the daemon lives on" (fun () ->
        let replies, stats =
          with_daemon (fun req_w ic ->
              [
                round_trip req_w ic "frobnicate";
                round_trip req_w ic "q";
                round_trip req_w ic "ping";
              ])
        in
        (match replies with
        | [ e1; e2; ok ] ->
            Alcotest.(check bool) "error 1" true (starts_with "error " e1);
            Alcotest.(check bool) "error 2" true (starts_with "error " e2);
            Alcotest.(check string) "still serving" "ok pong" ok
        | _ -> Alcotest.fail "wrong arity");
        Alcotest.(check int) "errors counted" 2 stats.Serve.s_errors);
    case "a raising handler is an error reply, not a dead daemon" (fun () ->
        let boom =
          {
            Serve.h_files = [ "f" ];
            Serve.h_answer =
              (fun ~file:_ ~query ->
                if String.equal query "boom" then failwith "handler exploded"
                else Serve.Ans "fine");
            Serve.h_reload = None;
            Serve.h_paths = [];
          }
        in
        let replies, _ =
          with_daemon ~handler:boom (fun req_w ic ->
              [ round_trip req_w ic "q f boom"; round_trip req_w ic "q f ok" ])
        in
        match replies with
        | [ e; ok ] ->
            Alcotest.(check bool) "folded to error" true (starts_with "error " e);
            Alcotest.(check string) "daemon alive" "ok fine" ok
        | _ -> Alcotest.fail "wrong arity");
    case "CRLF and split writes frame correctly; empty lines ignored" (fun () ->
        let replies, stats =
          with_daemon (fun req_w ic ->
              write_all req_w "ping\r\n\n\npi";
              let first = input_line ic in
              Unix.sleepf 0.02;
              write_all req_w "ng\n";
              [ first; input_line ic ])
        in
        Alcotest.(check (list string)) "both pongs" [ "ok pong"; "ok pong" ] replies;
        Alcotest.(check int) "empty lines not counted" 2 stats.Serve.s_requests);
    case "stats reports counters and counts itself" (fun () ->
        let reply, _ =
          with_daemon (fun req_w ic ->
              ignore (round_trip req_w ic "ping");
              round_trip req_w ic "stats")
        in
        Alcotest.(check bool) "shape" true (starts_with "ok requests=2 " reply));
    case "quit replies ok bye and stops the daemon" (fun () ->
        let reply, stats = with_daemon (fun req_w ic -> round_trip req_w ic "quit") in
        Alcotest.(check string) "bye" "ok bye" reply;
        Alcotest.(check int) "one request" 1 stats.Serve.s_requests);
    case "health reports uptime, restarts, heap and queue depth" (fun () ->
        let reply, _ = with_daemon (fun req_w ic -> round_trip req_w ic "health") in
        Alcotest.(check bool) "shape" true (starts_with "ok uptime-ms=" reply);
        Alcotest.(check bool) "restarts" true (contains reply " restarts=0 ");
        Alcotest.(check bool) "heap sample" true (contains reply " heap-mb=");
        Alcotest.(check bool) "queue depth" true (contains reply " queue-depth=1"));
    case "health echoes the supervisor's restart count from the config" (fun () ->
        let cfg = { Serve.default_config with Serve.restarts = 7 } in
        let reply, _ = with_daemon ~cfg (fun req_w ic -> round_trip req_w ic "health") in
        Alcotest.(check bool) "restarts=7" true (contains reply " restarts=7 "));
    case "a degraded corpus entry is flagged in the reply" (fun () ->
        let h =
          {
            Serve.h_files = [ "f" ];
            Serve.h_answer = (fun ~file:_ ~query:_ -> Serve.Ans_degraded "wide answer");
            Serve.h_reload = None;
            Serve.h_paths = [];
          }
        in
        let reply, stats =
          with_daemon ~handler:h (fun req_w ic -> round_trip req_w ic "q f x")
        in
        Alcotest.(check string) "degraded reply" "degraded wide answer" reply;
        Alcotest.(check int) "counted" 1 stats.Serve.s_degraded);
    case "a newline in an answer cannot break the framing" (fun () ->
        let h =
          {
            Serve.h_files = [ "f" ];
            Serve.h_answer = (fun ~file:_ ~query:_ -> Serve.Ans "two\nlines");
            Serve.h_reload = None;
            Serve.h_paths = [];
          }
        in
        let replies, _ =
          with_daemon ~handler:h (fun req_w ic ->
              [ round_trip req_w ic "q f x"; round_trip req_w ic "ping" ])
        in
        Alcotest.(check (list string)) "sanitized" [ "ok two lines"; "ok pong" ] replies);
  ]

(* ------------------------------------------------------------------ *)
(* Reload and watch                                                   *)
(* ------------------------------------------------------------------ *)

let reload_tests =
  [
    case "reload swaps the corpus entry in place" (fun () ->
        (* the handler answers from mutable state only reload changes:
           the reply sequence proves the swap happened between batches *)
        let version = Atomic.make "v1" in
        let h =
          {
            Serve.h_files = [ "f" ];
            Serve.h_answer = (fun ~file:_ ~query:_ -> Serve.Ans (Atomic.get version));
            Serve.h_reload =
              Some
                (fun ~file ->
                  if String.equal file "f" then begin
                    Atomic.set version "v2";
                    Ok "swapped f"
                  end
                  else Error ("unknown file '" ^ file ^ "'"));
            Serve.h_paths = [];
          }
        in
        let replies, stats =
          with_daemon ~handler:h (fun req_w ic ->
              let before = round_trip req_w ic "q f x" in
              let rel = round_trip req_w ic "reload f" in
              let after = round_trip req_w ic "q f x" in
              let unknown = round_trip req_w ic "reload g" in
              [ before; rel; after; unknown ])
        in
        (match replies with
        | [ before; rel; after; unknown ] ->
            Alcotest.(check string) "before" "ok v1" before;
            Alcotest.(check string) "reload reply" "ok swapped f" rel;
            Alcotest.(check string) "after" "ok v2" after;
            Alcotest.(check bool) "unknown file" true (starts_with "error " unknown)
        | _ -> Alcotest.fail "wrong arity");
        Alcotest.(check int) "one successful reload" 1 stats.Serve.s_reloads);
    case "successful reloads are journaled; a fresh daemon replays them" (fun () ->
        (* model of a supervised worker crash: daemon 1 serves a reload
           and dies (end-of-input); daemon 2 starts with the same
           journal and must replay the reload before serving *)
        let journal = Filename.temp_file "ptan-serve" ".journal" in
        Sys.remove journal;
        Fun.protect
          ~finally:(fun () -> if Sys.file_exists journal then Sys.remove journal)
          (fun () ->
            let reloaded = ref [] in
            let h =
              {
                Serve.h_files = [ "f"; "g" ];
                Serve.h_answer = (fun ~file:_ ~query:_ -> Serve.Ans "x");
                Serve.h_reload =
                  Some
                    (fun ~file ->
                      reloaded := file :: !reloaded;
                      Ok ("swapped " ^ file));
                Serve.h_paths = [];
              }
            in
            let cfg = { Serve.default_config with Serve.journal = Some journal } in
            let replies, stats1 =
              with_daemon ~cfg ~handler:h (fun req_w ic ->
                  [
                    round_trip req_w ic "reload f";
                    round_trip req_w ic "reload g";
                    round_trip req_w ic "reload f";
                  ])
            in
            Alcotest.(check (list string))
              "reload replies"
              [ "ok swapped f"; "ok swapped g"; "ok swapped f" ]
              replies;
            Alcotest.(check int) "three reloads served" 3 stats1.Serve.s_reloads;
            (* the replacement daemon: no requests at all, yet it must
               have replayed each journaled file exactly once *)
            reloaded := [];
            let _, stats2 = with_daemon ~cfg ~handler:h (fun _ _ -> ()) in
            Alcotest.(check int) "replayed on boot" 2 stats2.Serve.s_reloads;
            Alcotest.(check (list string))
              "each file once, first-reload order" [ "f"; "g" ]
              (List.rev !reloaded)));
    case "reload and watch without h_reload are errors, not crashes" (fun () ->
        let replies, stats =
          with_daemon (fun req_w ic ->
              [
                round_trip req_w ic "reload f";
                round_trip req_w ic "watch";
                round_trip req_w ic "ping";
              ])
        in
        (match replies with
        | [ r; w; p ] ->
            Alcotest.(check bool) "reload refused" true (starts_with "error " r);
            Alcotest.(check bool) "watch refused" true (starts_with "error " w);
            Alcotest.(check string) "still serving" "ok pong" p
        | _ -> Alcotest.fail "wrong arity");
        Alcotest.(check int) "no reload counted" 0 stats.Serve.s_reloads);
    case "watch auto-reloads when a corpus source's mtime changes" (fun () ->
        let tmp = Filename.temp_file "ptan-watch" ".c" in
        Fun.protect
          ~finally:(fun () -> try Sys.remove tmp with Sys_error _ -> ())
          (fun () ->
            let reloaded = Atomic.make 0 in
            let h =
              {
                Serve.h_files = [ "f" ];
                Serve.h_answer = (fun ~file:_ ~query:_ -> Serve.Ans "x");
                Serve.h_reload =
                  Some
                    (fun ~file ->
                      Atomic.incr reloaded;
                      Ok ("reloaded " ^ file));
                Serve.h_paths = [ ("f", tmp) ];
              }
            in
            let (), stats =
              with_daemon ~handler:h (fun req_w ic ->
                  let r = round_trip req_w ic "watch" in
                  Alcotest.(check string) "watching" "ok watching 1 files" r;
                  (* let the baseline poll record the current mtime,
                     then move it and wait for the next poll to notice *)
                  Unix.sleepf 0.4;
                  let future = Unix.gettimeofday () +. 60. in
                  Unix.utimes tmp future future;
                  let rec wait n =
                    if Atomic.get reloaded = 0 && n > 0 then begin
                      Unix.sleepf 0.1;
                      wait (n - 1)
                    end
                  in
                  wait 30)
            in
            Alcotest.(check int) "one auto-reload" 1 stats.Serve.s_reloads));
  ]

(* ------------------------------------------------------------------ *)
(* Admission control and per-request deadlines                        *)
(* ------------------------------------------------------------------ *)

let robustness_tests =
  [
    case "a flood beyond queue_max is shed with busy replies" (fun () ->
        (* all lines are in the pipe before the daemon's first read, so
           they arrive as one batch: 1 admitted, 2 shed, in order *)
        let cfg = { Serve.default_config with Serve.queue_max = 1 } in
        let replies, stats =
          with_daemon ~cfg (fun req_w ic ->
              write_all req_w "q f a\nq f b\nq f c\n";
              List.init 3 (fun _ -> input_line ic))
        in
        (match replies with
        | [ ok; b1; b2 ] ->
            Alcotest.(check string) "first admitted" "ok echo a" ok;
            Alcotest.(check bool) "second shed" true (starts_with "busy " b1);
            Alcotest.(check bool) "third shed" true (starts_with "busy " b2);
            (* the shed replies carry a retry hint derived from the
               shedding batch's own latency, and it is at least 1 ms so
               an obedient client never busy-loops *)
            Alcotest.(check bool) "retry hint present" true
              (starts_with "busy retry-after-ms=" b1);
            let hint =
              let rest =
                String.sub b1 (String.length "busy retry-after-ms=")
                  (String.length b1 - String.length "busy retry-after-ms=")
              in
              int_of_string (List.hd (String.split_on_char ' ' rest))
            in
            Alcotest.(check bool) "hint is positive" true (hint >= 1)
        | _ -> Alcotest.fail "wrong arity");
        Alcotest.(check int) "shed counted" 2 stats.Serve.s_shed;
        Alcotest.(check int) "all requests counted" 3 stats.Serve.s_requests);
    case "an expired per-request deadline is an error reply, then service resumes"
      (fun () ->
        let cfg = { Serve.default_config with Serve.request_deadline_ms = Some 10_000. } in
        let replies, stats =
          with_daemon ~cfg (fun req_w ic ->
              let tripped =
                Fault.with_point Fault.Expired_deadline (fun () -> round_trip req_w ic "q f a")
              in
              [ tripped; round_trip req_w ic "q f b" ])
        in
        (match replies with
        | [ e; ok ] ->
            Alcotest.(check bool) "deadline trip reported" true (starts_with "error " e);
            Alcotest.(check string) "daemon survived the trip" "ok echo b" ok
        | _ -> Alcotest.fail "wrong arity");
        Alcotest.(check int) "one error" 1 stats.Serve.s_errors;
        Alcotest.(check int) "one ok" 1 stats.Serve.s_ok);
  ]

(* ------------------------------------------------------------------ *)
(* Socket transport: concurrent clients, bit-identity                 *)
(* ------------------------------------------------------------------ *)

(** Force the lazy reverse indexes before cross-domain query dispatch
    (same contract as [ptan serve]'s corpus load). *)
let prime_result (r : Analysis.result) =
  Hashtbl.iter (fun _ s -> Pts.prime s) r.Analysis.stmt_pts;
  Option.iter Pts.prime r.Analysis.entry_output;
  Ig.fold
    (fun () n ->
      Option.iter Pts.prime n.Ig.stored_input;
      Option.iter Pts.prime n.Ig.stored_output)
    () r.Analysis.graph

let fixture_src =
  {|int g1; int g2;
    void set(int **q, int *v) { *q = v; }
    int main() {
      int *p; int *r;
      p = &g1;
      set(&p, &g2);
      r = p;
      return 0;
    }|}

(** A mixed workload against the fixture: valid pts/alias/calls
    queries, plus malformed ones — each paired with the reply a cold
    {!Alias.Query.run} implies. *)
let fixture_workload r =
  let qs =
    [
      "pts main s1 p";
      "pts main s2 p";
      "pts main s3 r";
      "alias main s3 p r";
      "calls s2";
      "pts set s1 q";
      "pts main s1 nosuchvar";
      "utter garbage";
    ]
  in
  List.map
    (fun q ->
      let expect =
        match Alias.Query.run r q with Ok a -> "ok " ^ a | Error e -> "error " ^ e
      in
      ("q prog " ^ q, expect))
    qs

let socket_tests =
  [
    case "concurrent socket clients get ordered, bit-identical replies" (fun () ->
        let r = analyze fixture_src in
        prime_result r;
        let handler =
          {
            Serve.h_files = [ "prog" ];
            Serve.h_answer =
              (fun ~file ~query ->
                if not (String.equal file "prog") then Serve.Ans_error "unknown file"
                else
                  match Alias.Query.run r query with
                  | Ok a -> Serve.Ans a
                  | Error e -> Serve.Ans_error e);
            Serve.h_reload = None;
            Serve.h_paths = [];
          }
        in
        let path = Filename.temp_file "ptan-serve" ".sock" in
        Sys.remove path;
        let stop = Atomic.make false in
        let cfg = { Serve.default_config with Serve.jobs = 2; queue_max = 4096 } in
        let daemon =
          Domain.spawn (fun () -> Serve.run ~stop cfg handler (Serve.Socket path))
        in
        let rec await n =
          if Sys.file_exists path then ()
          else if n = 0 then Alcotest.fail "socket never appeared"
          else begin
            Unix.sleepf 0.01;
            await (n - 1)
          end
        in
        await 500;
        let workload = fixture_workload r in
        (* each client sends the workload many times; replies must come
           back in its own request order whatever the interleaving *)
        let reps = 30 in
        let client () =
          Domain.spawn (fun () ->
              let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
              Unix.connect fd (Unix.ADDR_UNIX path);
              let lines =
                List.concat (List.init reps (fun _ -> List.map fst workload))
              in
              write_all fd (String.concat "" (List.map (fun l -> l ^ "\n") lines));
              let ic = Unix.in_channel_of_descr fd in
              let replies = List.init (List.length lines) (fun _ -> input_line ic) in
              Unix.close fd;
              replies)
        in
        let c1 = client () and c2 = client () in
        let r1 = Domain.join c1 and r2 = Domain.join c2 in
        Atomic.set stop true;
        let stats = Domain.join daemon in
        let expected = List.concat (List.init reps (fun _ -> List.map snd workload)) in
        List.iter
          (fun replies ->
            List.iteri
              (fun i got ->
                let want = List.nth expected i in
                if not (String.equal got want) then
                  Alcotest.failf "reply %d: got %S, want %S (not bit-identical)" i got want)
              replies)
          [ r1; r2 ];
        Alcotest.(check int)
          "every request of both clients served"
          (2 * reps * List.length workload)
          stats.Serve.s_requests;
        Alcotest.(check int) "nothing shed" 0 stats.Serve.s_shed;
        Alcotest.(check bool) "socket unlinked on shutdown" false (Sys.file_exists path));
  ]

let suite =
  ("serve", parse_tests @ protocol_tests @ reload_tests @ robustness_tests @ socket_tests)
