(** Tests for the robustness layer: {!Pointsto.Guard} budgets and
    cooperative cancellation, graceful degradation in
    {!Pointsto.Analysis}, {!Pointsto.Pool} task timeouts,
    {!Pointsto.Fault} injection, and the corrupt-entry quarantine in
    {!Pointsto.Persist} — including the every-97th-byte truncation and
    bit-flip fuzz of a persisted livc result.

    The central contract under test is the soundness of degradation:
    a budget-exhausted analysis falls back to the widened
    (context-insensitive, possible-only) semantics, and the degraded
    tables must contain every points-to pair of the full-precision run
    (certainty erased) — resource exhaustion trades precision, never
    soundness. *)

open Test_util
module Guard = Pointsto.Guard
module Fault = Pointsto.Fault
module Pool = Pointsto.Pool
module Persist = Pointsto.Persist
module Options = Pointsto.Options
module M = Pointsto.Metrics

let bench_dir = if Sys.file_exists "benchmarks" then "benchmarks" else "../benchmarks"
let bench name = Filename.concat bench_dir (name ^ ".c")

let bench_names =
  [
    "genetic"; "dry"; "clinpack"; "config"; "toplev"; "compress"; "mway"; "hash"; "misr";
    "xref"; "stanford"; "fixoutput"; "sim"; "travel"; "csuite"; "msc"; "lws"; "livc";
  ]

let temp_dir () =
  let d = Filename.temp_file "ptan-robust" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let in_temp f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Guard                                                              *)
(* ------------------------------------------------------------------ *)

let expect_trip f =
  match f () with
  | exception Guard.Exhausted t -> t
  | _ -> Alcotest.fail "expected Guard.Exhausted"

let guard_tests =
  [
    case "an unlimited guard passes every check" (fun () ->
        let g = Guard.unlimited () in
        Alcotest.(check bool) "not limited" false (Guard.limited g);
        Alcotest.(check bool) "no budget" true (Guard.is_no_budget (Guard.budget g));
        Guard.check g;
        Guard.check_fuel g 1_000_000;
        Guard.check_size g 1_000_000;
        Guard.check_nodes g 1_000_000);
    case "fuel trips strictly above the allowance, with diagnostics" (fun () ->
        let g = Guard.make { Guard.no_budget with Guard.b_fuel = Some 3 } in
        Alcotest.(check bool) "limited" true (Guard.limited g);
        Guard.check_fuel g 3;
        Guard.at g "looper";
        let t = expect_trip (fun () -> Guard.check_fuel g 4) in
        Alcotest.(check string) "reason" "fuel" (Guard.reason_name t.Guard.t_reason);
        Alcotest.(check (option string)) "where" (Some "looper") t.Guard.t_where;
        Alcotest.(check bool) "elapsed recorded" true (t.Guard.t_after_ms >= 0.));
    case "deadline trips once the clock passes it" (fun () ->
        let g = Guard.make { Guard.no_budget with Guard.b_deadline_ms = Some 1. } in
        Unix.sleepf 0.005;
        let t = expect_trip (fun () -> Guard.check g) in
        Alcotest.(check string) "reason" "deadline" (Guard.reason_name t.Guard.t_reason);
        Alcotest.(check bool) "after >= 1ms" true (t.Guard.t_after_ms >= 1.));
    case "size and node ceilings trip with distinct reasons" (fun () ->
        let g = Guard.make { Guard.no_budget with Guard.b_max_locs = Some 10 } in
        Guard.check_size g 10;
        Guard.check_nodes g 10;
        let ts = expect_trip (fun () -> Guard.check_size g 11) in
        Alcotest.(check string) "set-size" "set-size" (Guard.reason_name ts.Guard.t_reason);
        let tn = expect_trip (fun () -> Guard.check_nodes g 11) in
        Alcotest.(check string) "ig-nodes" "ig-nodes" (Guard.reason_name tn.Guard.t_reason));
    case "widened keeps the deadline, drops fuel and size ceilings" (fun () ->
        let g =
          Guard.make
            {
              Guard.b_deadline_ms = Some 60_000.;
              Guard.b_fuel = Some 1;
              Guard.b_max_locs = Some 1;
              Guard.b_max_heap_mb = Some 1;
            }
        in
        let w = Guard.widened g in
        Guard.dispose g;
        let b = Guard.budget w in
        Alcotest.(check (option (float 0.1))) "deadline kept" (Some 60_000.) b.Guard.b_deadline_ms;
        Alcotest.(check bool) "no fuel" true (b.Guard.b_fuel = None);
        Alcotest.(check bool) "no size ceiling" true (b.Guard.b_max_locs = None);
        Alcotest.(check bool) "no heap ceiling" true (b.Guard.b_max_heap_mb = None);
        Guard.check w;
        Guard.check_fuel w 1_000_000;
        Guard.check_size w 1_000_000);
    case "check raises Cancelled when the task's flag is flipped" (fun () ->
        let flag = Atomic.make false in
        Guard.set_task_cancel (Some flag);
        Fun.protect
          ~finally:(fun () -> Guard.set_task_cancel None)
          (fun () ->
            let g = Guard.unlimited () in
            Guard.check g;
            Alcotest.(check bool) "not requested" false (Guard.cancel_requested ());
            Atomic.set flag true;
            Alcotest.(check bool) "requested" true (Guard.cancel_requested ());
            match Guard.check g with
            | exception Guard.Cancelled -> ()
            | () -> Alcotest.fail "expected Guard.Cancelled"));
    case "budget pretty-printing" (fun () ->
        Alcotest.(check string) "unlimited" "unlimited" (Fmt.str "%a" Guard.pp_budget Guard.no_budget);
        Alcotest.(check string) "combined" "deadline 100ms, fuel 2"
          (Fmt.str "%a" Guard.pp_budget
             {
               Guard.b_deadline_ms = Some 100.;
               Guard.b_fuel = Some 2;
               Guard.b_max_locs = None;
               Guard.b_max_heap_mb = None;
             }));
  ]

(* ------------------------------------------------------------------ *)
(* Graceful degradation                                               *)
(* ------------------------------------------------------------------ *)

let fuel_1 = { Guard.no_budget with Guard.b_fuel = Some 1 }

(** Every (statement, source, target) pair of a result — per-statement
    sets plus the entry output under key [-1] — certainty erased. *)
let result_pairs (r : Analysis.result) =
  let h = Hashtbl.create 256 in
  let add sid s =
    Pts.iter (fun src dst _ -> Hashtbl.replace h (sid, Loc.id src, Loc.id dst) ()) s
  in
  Hashtbl.iter add r.Analysis.stmt_pts;
  (match r.Analysis.entry_output with Some o -> add (-1) o | None -> ());
  h

let is_superset ~full ~degraded =
  Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem degraded k) full true

(** Digest of every per-statement points-to set, rendering included. *)
let stmt_digest (r : Analysis.result) =
  Hashtbl.fold (fun id s acc -> (id, s) :: acc) r.Analysis.stmt_pts []
  |> List.sort compare
  |> List.map (fun (id, s) -> Fmt.str "s%d:%a" id Pts.pp s)
  |> String.concat "\n" |> Digest.string |> Digest.to_hex

let degradation_tests =
  [
    case "fuel 1 degrades livc to a sound widened rerun" (fun () ->
        let p = Simple_ir.Simplify.of_file (bench "livc") in
        let full = Analysis.analyze p in
        let deg = Analysis.analyze ~budget:fuel_1 p in
        (match deg.Analysis.degraded with
        | None -> Alcotest.fail "livc did not trip under fuel 1"
        | Some d ->
            Alcotest.(check string) "reason" "fuel"
              (Guard.reason_name d.Analysis.deg_trip.Guard.t_reason);
            Alcotest.(check bool) "budget carried" true
              (d.Analysis.deg_budget.Guard.b_fuel = Some 1));
        Alcotest.(check int) "one budget trip in metrics" 1 deg.Analysis.metrics.M.budget_trips;
        Alcotest.(check int) "full run has none" 0 full.Analysis.metrics.M.budget_trips;
        Alcotest.(check bool) "degraded tables are a pair superset" true
          (is_superset ~full:(result_pairs full) ~degraded:(result_pairs deg)));
    case "property: degraded tables contain the full tables, whole suite" (fun () ->
        List.iter
          (fun name ->
            let p = Simple_ir.Simplify.of_file (bench name) in
            let full = Analysis.analyze p in
            let deg = Analysis.analyze ~budget:fuel_1 p in
            Alcotest.(check bool)
              (name ^ ": superset") true
              (is_superset ~full:(result_pairs full) ~degraded:(result_pairs deg));
            (* an untripped budget must change nothing at all *)
            if deg.Analysis.degraded = None then
              Alcotest.(check string) (name ^ ": untripped identical") (stmt_digest full)
                (stmt_digest deg))
          bench_names);
    case "an ample budget neither trips nor perturbs the result" (fun () ->
        let p = Simple_ir.Simplify.of_file (bench "stanford") in
        let full = Analysis.analyze p in
        let budget =
          {
            Guard.b_deadline_ms = Some 600_000.;
            Guard.b_fuel = Some 1_000_000;
            Guard.b_max_locs = Some 10_000_000;
            Guard.b_max_heap_mb = None;
          }
        in
        let b = Analysis.analyze ~budget p in
        Alcotest.(check bool) "not degraded" true (b.Analysis.degraded = None);
        Alcotest.(check string) "bit-identical" (stmt_digest full) (stmt_digest b);
        Alcotest.(check int) "no trips" 0 b.Analysis.metrics.M.budget_trips);
    case "a tiny location ceiling degrades with a size reason" (fun () ->
        let p = Simple_ir.Simplify.of_file (bench "livc") in
        let deg =
          Analysis.analyze ~budget:{ Guard.no_budget with Guard.b_max_locs = Some 1 } p
        in
        match deg.Analysis.degraded with
        | None -> Alcotest.fail "livc did not trip under max-locs 1"
        | Some d ->
            let r = Guard.reason_name d.Analysis.deg_trip.Guard.t_reason in
            Alcotest.(check bool) "size-flavoured reason" true
              (String.equal r "set-size" || String.equal r "ig-nodes"));
    case "expired-deadline fault: the widened fallback still answers" (fun () ->
        let p = Simple_ir.Simplify.of_file (bench "hash") in
        let full = Analysis.analyze p in
        let deg =
          Fault.with_point Fault.Expired_deadline (fun () ->
              Analysis.analyze
                ~budget:{ Guard.no_budget with Guard.b_deadline_ms = Some 10_000. }
                p)
        in
        (match deg.Analysis.degraded with
        | None -> Alcotest.fail "expired deadline did not degrade"
        | Some d ->
            Alcotest.(check string) "reason" "deadline"
              (Guard.reason_name d.Analysis.deg_trip.Guard.t_reason));
        Alcotest.(check bool) "still sound" true
          (is_superset ~full:(result_pairs full) ~degraded:(result_pairs deg)));
    case "degraded results are returned but never cached" (fun () ->
        in_temp (fun dir ->
            let source = bench "hash" in
            let deg, hit = Persist.analyze_cached ~cache_dir:dir ~budget:fuel_1 source in
            Alcotest.(check bool) "miss" false hit;
            Alcotest.(check bool) "degraded" true (deg.Analysis.degraded <> None);
            Alcotest.(check int) "cache left empty" 0 (Array.length (Sys.readdir dir));
            let full, hit2 = Persist.analyze_cached ~cache_dir:dir source in
            Alcotest.(check bool) "still a miss without the budget" false hit2;
            Alcotest.(check bool) "full-precision this time" true
              (full.Analysis.degraded = None)));
  ]

(* ------------------------------------------------------------------ *)
(* Heap budget and checkpointed degradation                           *)
(* ------------------------------------------------------------------ *)

let heap_tests =
  [
    case "a zero heap ceiling trips immediately with the heap reason" (fun () ->
        let g = Guard.make { Guard.no_budget with Guard.b_max_heap_mb = Some 0 } in
        Fun.protect
          ~finally:(fun () -> Guard.dispose g)
          (fun () ->
            let t = expect_trip (fun () -> Guard.check g) in
            Alcotest.(check string) "reason" "heap" (Guard.reason_name t.Guard.t_reason)));
    case "alloc-spike makes any heap ceiling trip deterministically" (fun () ->
        Fault.with_point Fault.Alloc_spike (fun () ->
            let g =
              Guard.make { Guard.no_budget with Guard.b_max_heap_mb = Some 1_000_000 }
            in
            Fun.protect
              ~finally:(fun () -> Guard.dispose g)
              (fun () ->
                let t = expect_trip (fun () -> Guard.check g) in
                Alcotest.(check string) "reason" "heap"
                  (Guard.reason_name t.Guard.t_reason))));
    case "an ample heap ceiling neither trips nor perturbs the result" (fun () ->
        let p = Simple_ir.Simplify.of_file (bench "hash") in
        let full = Analysis.analyze p in
        let capped =
          Analysis.analyze
            ~budget:{ Guard.no_budget with Guard.b_max_heap_mb = Some 1_000_000 }
            p
        in
        Alcotest.(check bool) "not degraded" true (capped.Analysis.degraded = None);
        Alcotest.(check string) "bit-identical" (stmt_digest full) (stmt_digest capped);
        Alcotest.(check int) "no heap trips" 0 capped.Analysis.metrics.M.heap_trips);
    case "a blown heap budget degrades soundly instead of dying" (fun () ->
        let p = Simple_ir.Simplify.of_file (bench "hash") in
        let full = Analysis.analyze p in
        let deg =
          Fault.with_point Fault.Alloc_spike (fun () ->
              Analysis.analyze
                ~budget:{ Guard.no_budget with Guard.b_max_heap_mb = Some 4096 }
                p)
        in
        (match deg.Analysis.degraded with
        | None -> Alcotest.fail "alloc spike did not degrade"
        | Some d ->
            Alcotest.(check string) "reason" "heap"
              (Guard.reason_name d.Analysis.deg_trip.Guard.t_reason));
        Alcotest.(check int) "heap trip counted" 1 deg.Analysis.metrics.M.heap_trips;
        Alcotest.(check int) "budget trip counted" 1 deg.Analysis.metrics.M.budget_trips;
        Alcotest.(check bool) "still sound" true
          (is_superset ~full:(result_pairs full) ~degraded:(result_pairs deg)));
    case "a mid-run trip checkpoints completed functions; result stays sound" (fun () ->
        (* stanford under fuel 2 finishes several leaf functions before
           the fixpoint blows, so the trip must hand the widened rerun a
           non-empty seed — and the seed, being demoted facts of the
           precise run, must not break the superset property *)
        let p = Simple_ir.Simplify.of_file (bench "stanford") in
        let full = Analysis.analyze p in
        let deg =
          Analysis.analyze ~budget:{ Guard.no_budget with Guard.b_fuel = Some 2 } p
        in
        Alcotest.(check bool) "degraded" true (deg.Analysis.degraded <> None);
        Alcotest.(check bool) "some functions checkpointed" true
          (deg.Analysis.metrics.M.ckpt_funcs > 0);
        Alcotest.(check bool) "superset despite seeding" true
          (is_superset ~full:(result_pairs full) ~degraded:(result_pairs deg)));
    case "an untripped budget checkpoints nothing" (fun () ->
        let p = Simple_ir.Simplify.of_file (bench "hash") in
        let r =
          Analysis.analyze ~budget:{ Guard.no_budget with Guard.b_fuel = Some 1_000_000 } p
        in
        Alcotest.(check bool) "not degraded" true (r.Analysis.degraded = None);
        Alcotest.(check int) "no checkpoint" 0 r.Analysis.metrics.M.ckpt_funcs);
  ]

(* ------------------------------------------------------------------ *)
(* Pool timeouts and cooperative cancellation                         *)
(* ------------------------------------------------------------------ *)

(** A task that spins for up to 5 s but polls a guard: the cooperative
    shape every analysis task has. *)
let cancellable_spin () =
  let g = Guard.unlimited () in
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < 5. do
    Guard.check g;
    Unix.sleepf 0.002
  done;
  "finished"

let timeout_tests =
  [
    case "an overdue task is cancelled; its siblings are untouched" (fun () ->
        Pool.with_pool ~jobs:2 (fun pool ->
            match Pool.run_list ~timeout_ms:60. pool [ cancellable_spin; (fun () -> "fast") ] with
            | [ Error Guard.Cancelled; Ok "fast" ] -> ()
            | [ a; b ] ->
                Alcotest.failf "expected [Error Cancelled; Ok fast], got [%s; %s]"
                  (match a with Ok s -> s | Error e -> Printexc.to_string e)
                  (match b with Ok s -> s | Error e -> Printexc.to_string e)
            | _ -> Alcotest.fail "wrong arity"));
    case "the watchdog also covers the jobs = 1 inline path" (fun () ->
        Pool.with_pool ~jobs:1 (fun pool ->
            match Pool.run_list ~timeout_ms:60. pool [ cancellable_spin ] with
            | [ Error Guard.Cancelled ] -> ()
            | _ -> Alcotest.fail "expected Error Cancelled inline"));
    case "tasks under their timeout are unaffected" (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            let rs = Pool.run_list ~timeout_ms:5_000. pool (List.init 8 (fun i () -> i)) in
            List.iteri
              (fun i r ->
                match r with
                | Ok v -> Alcotest.(check int) "value" i v
                | Error e -> Alcotest.failf "unexpected: %s" (Printexc.to_string e))
              rs));
    case "a hanging analysis is cancelled by the task timeout" (fun () ->
        (* slow-fixpoint makes livc's precise fixpoint sleep per body
           pass of helper_sum; without a budget nothing degrades, so the
           pool timeout is the only line of defence *)
        Fault.with_point ~fn:"helper_sum" ~sleep_ms:30. Fault.Slow_fixpoint (fun () ->
            let p = Simple_ir.Simplify.of_file (bench "livc") in
            Pool.with_pool ~jobs:2 (fun pool ->
                match
                  Pool.run_list ~timeout_ms:80. pool [ (fun () -> Analysis.analyze p) ]
                with
                | [ Error Guard.Cancelled ] -> ()
                | [ Ok _ ] -> Alcotest.fail "injected hang ran to completion under timeout"
                | [ Error e ] -> Alcotest.failf "wrong error: %s" (Printexc.to_string e)
                | _ -> Alcotest.fail "wrong arity")));
    case "map_result isolates per-element errors in order" (fun () ->
        Pool.with_pool ~jobs:4 (fun pool ->
            let rs =
              Pool.map_result pool
                (fun i -> if i mod 2 = 0 then i * 10 else failwith (string_of_int i))
                [ 0; 1; 2; 3 ]
            in
            match rs with
            | [ Ok 0; Error (Failure m1); Ok 20; Error (Failure m3) ]
              when String.equal m1 "1" && String.equal m3 "3" ->
                ()
            | _ -> Alcotest.fail "expected alternating Ok/Error in submission order"));
  ]

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

let fault_tests =
  [
    case "point names round-trip" (fun () ->
        List.iter
          (fun p ->
            match Fault.point_of_name (Fault.point_name p) with
            | Some p' when p' = p -> ()
            | _ -> Alcotest.failf "%s does not round-trip" (Fault.point_name p))
          Fault.all_points;
        Alcotest.(check bool) "unknown rejected" true (Fault.point_of_name "nope" = None));
    case "with_point restores the previous configuration, even on raise" (fun () ->
        Alcotest.(check bool) "off before" false (Fault.enabled Fault.Slow_fixpoint);
        Fault.with_point ~fn:"f" ~sleep_ms:1. Fault.Slow_fixpoint (fun () ->
            Alcotest.(check bool) "on inside" true (Fault.enabled Fault.Slow_fixpoint);
            Alcotest.(check (option string)) "fn" (Some "f") (Fault.target_fn ()));
        Alcotest.(check bool) "off after" false (Fault.enabled Fault.Slow_fixpoint);
        Alcotest.(check (option string)) "fn restored" None (Fault.target_fn ());
        (match
           Fault.with_point Fault.Task_exn (fun () -> raise Exit)
         with
        | exception Exit -> ()
        | _ -> Alcotest.fail "expected Exit");
        Alcotest.(check bool) "off after raise" false (Fault.enabled Fault.Task_exn));
    case "task-exn fails every pool task, isolated as Error" (fun () ->
        Fault.with_point Fault.Task_exn (fun () ->
            Pool.with_pool ~jobs:2 (fun pool ->
                let rs = Pool.run_list pool [ (fun () -> 1); (fun () -> 2) ] in
                List.iter
                  (function
                    | Error (Fault.Injected p) ->
                        Alcotest.(check string) "point" "task-exn" p
                    | Ok _ -> Alcotest.fail "task ran despite the injection"
                    | Error e -> Alcotest.failf "wrong exn: %s" (Printexc.to_string e))
                  rs)));
    case "corrupt-cache flips exactly one byte of a saved file" (fun () ->
        in_temp (fun dir ->
            let f = Filename.concat dir "blob" in
            let payload = String.init 64 (fun i -> Char.chr (i * 3 mod 256)) in
            let write () =
              Out_channel.with_open_bin f (fun oc -> Out_channel.output_string oc payload)
            in
            write ();
            Fault.maybe_corrupt_file f;
            Alcotest.(check string) "untouched when off" payload
              (In_channel.with_open_bin f In_channel.input_all);
            Fault.with_point Fault.Corrupt_cache (fun () -> Fault.maybe_corrupt_file f);
            let after = In_channel.with_open_bin f In_channel.input_all in
            let diffs = ref 0 in
            String.iteri (fun i c -> if c <> payload.[i] then incr diffs) after;
            Alcotest.(check int) "same length" (String.length payload) (String.length after);
            Alcotest.(check int) "one byte flipped" 1 !diffs));
    case "slow-fixpoint honours its function filter" (fun () ->
        Fault.with_point ~fn:"target" ~sleep_ms:30. Fault.Slow_fixpoint (fun () ->
            let t0 = Unix.gettimeofday () in
            Fault.maybe_slow_fixpoint ~fn:"other";
            let skipped = Unix.gettimeofday () -. t0 in
            let t1 = Unix.gettimeofday () in
            Fault.maybe_slow_fixpoint ~fn:"target";
            let slept = Unix.gettimeofday () -. t1 in
            Alcotest.(check bool) "filtered fn does not sleep" true (skipped < 0.02);
            Alcotest.(check bool) "target fn sleeps" true (slept >= 0.025)));
  ]

(* ------------------------------------------------------------------ *)
(* Persist: quarantine and fuzz                                       *)
(* ------------------------------------------------------------------ *)

let flip_byte file pos =
  let data = In_channel.with_open_bin file In_channel.input_all in
  let b = Bytes.of_string data in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xff));
  Out_channel.with_open_bin file (fun oc -> Out_channel.output_bytes oc b)

let quarantine_tests =
  [
    case "quarantine never clobbers an earlier .bad file" (fun () ->
        in_temp (fun dir ->
            let source = bench "hash" in
            let _ = Persist.analyze_cached ~cache_dir:dir source in
            let file =
              Persist.cache_file ~cache_dir:dir ~source ~opts:Options.default ~entry:"main"
            in
            (* a pre-existing post-mortem from an earlier incident *)
            let sentinel = "earlier evidence, do not destroy" in
            Out_channel.with_open_bin (file ^ ".bad") (fun oc ->
                Out_channel.output_string oc sentinel);
            let size = (Unix.stat file).Unix.st_size in
            flip_byte file (size / 2);
            let _, hit = Persist.analyze_cached ~cache_dir:dir source in
            Alcotest.(check bool) "corrupt entry not served" false hit;
            Alcotest.(check string) "first .bad untouched" sentinel
              (In_channel.with_open_bin (file ^ ".bad") In_channel.input_all);
            Alcotest.(check bool) "fresh evidence at .bad.1" true
              (Sys.file_exists (file ^ ".bad.1"));
            (* a second incident picks the next free suffix *)
            flip_byte file (size / 3);
            let _, hit2 = Persist.analyze_cached ~cache_dir:dir source in
            Alcotest.(check bool) "still not served" false hit2;
            Alcotest.(check bool) "and .bad.2 appears" true
              (Sys.file_exists (file ^ ".bad.2"));
            Alcotest.(check string) "first .bad still untouched" sentinel
              (In_channel.with_open_bin (file ^ ".bad") In_channel.input_all)));
    case "a corrupt cache entry is quarantined and re-analyzed cold" (fun () ->
        in_temp (fun dir ->
            let source = bench "stanford" in
            let cold, _ = Persist.analyze_cached ~cache_dir:dir source in
            let file =
              Persist.cache_file ~cache_dir:dir ~source ~opts:Options.default ~entry:"main"
            in
            let size = (Unix.stat file).Unix.st_size in
            flip_byte file (size / 2);
            let re, hit = Persist.analyze_cached ~cache_dir:dir source in
            Alcotest.(check bool) "not served from the corrupt entry" false hit;
            Alcotest.(check int) "quarantine counted" 1 re.Analysis.metrics.M.cache_quarantined;
            Alcotest.(check bool) "entry kept for post-mortem" true
              (Sys.file_exists (file ^ ".bad"));
            Alcotest.(check string) "re-analysis matches the original" (stmt_digest cold)
              (stmt_digest re);
            let warm, hit2 = Persist.analyze_cached ~cache_dir:dir source in
            Alcotest.(check bool) "cache repopulated" true hit2;
            Alcotest.(check int) "no further quarantine"
              0 warm.Analysis.metrics.M.cache_quarantined));
    case "the corrupt-cache fault defeats every warm load" (fun () ->
        in_temp (fun dir ->
            let source = bench "hash" in
            Fault.with_point Fault.Corrupt_cache (fun () ->
                let _, hit0 = Persist.analyze_cached ~cache_dir:dir source in
                Alcotest.(check bool) "cold miss" false hit0;
                (* the save was corrupted in place, so the next call must
                   quarantine and go cold again — never crash, never lie *)
                let re, hit1 = Persist.analyze_cached ~cache_dir:dir source in
                Alcotest.(check bool) "corrupted entry not served" false hit1;
                Alcotest.(check int) "quarantined" 1 re.Analysis.metrics.M.cache_quarantined)));
    case "load_checked classifies missing, stale and corrupt" (fun () ->
        in_temp (fun dir ->
            let source = bench "dry" in
            let res = Analysis.of_file source in
            let file = Filename.concat dir "r.ptc" in
            Persist.save ~source res file;
            let err name r =
              match r with
              | Ok _ -> Alcotest.failf "%s: unexpected Ok" name
              | Error e -> Persist.load_error_name e
            in
            Alcotest.(check string) "missing" "missing"
              (err "missing" (Persist.load_checked ~source (Filename.concat dir "no.ptc")));
            Alcotest.(check string) "stale entry" "stale"
              (err "stale" (Persist.load_checked ~source ~entry:"other" file));
            Alcotest.(check string) "stale opts" "stale"
              (err "stale opts"
                 (Persist.load_checked ~source
                    ~opts:{ Options.default with Options.context_sensitive = false }
                    file));
            let data = In_channel.with_open_bin file In_channel.input_all in
            Out_channel.with_open_bin file (fun oc ->
                Out_channel.output_string oc (String.sub data 0 (String.length data / 3)));
            Alcotest.(check string) "truncated" "corrupt"
              (err "truncated" (Persist.load_checked ~source file))));
  ]

(** The fuzz satellite: a persisted livc result, truncated and
    bit-flipped at every 97th byte. Every mutant must either load back
    bit-identically (harmless mutation — none exist today, the body is
    digest-protected, but the contract allows it) or fall back cleanly
    as [Stale]/[Corrupt]. No crash, no wrong tables, ever. *)
let fuzz_tests =
  [
    case "fuzz: truncate + bit-flip a persisted livc result at every 97th byte" (fun () ->
        in_temp (fun dir ->
            let source = bench "livc" in
            let full = Analysis.of_file source in
            let file = Filename.concat dir "livc.ptc" in
            Persist.save ~source full file;
            let data = In_channel.with_open_bin file In_channel.input_all in
            let len = String.length data in
            let full_digest = stmt_digest full in
            let mutant = Filename.concat dir "mutant.ptc" in
            let mutants = ref 0 and fallbacks = ref 0 and roundtrips = ref 0 in
            let try_mutant name s =
              incr mutants;
              Out_channel.with_open_bin mutant (fun oc -> Out_channel.output_string oc s);
              (match Persist.load_checked ~source mutant with
              | Ok r ->
                  incr roundtrips;
                  Alcotest.(check string) (name ^ ": loads bit-identically") full_digest
                    (stmt_digest r)
              | Error (Persist.Stale | Persist.Corrupt) -> incr fallbacks
              | Error Persist.Missing -> Alcotest.failf "%s: classified missing" name);
              Sys.remove mutant
            in
            let off = ref 0 in
            while !off < len do
              let i = !off in
              try_mutant (Fmt.str "truncate@%d" i) (String.sub data 0 i);
              let b = Bytes.of_string data in
              Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
              try_mutant (Fmt.str "flip@%d" i) (Bytes.to_string b);
              off := !off + 97
            done;
            Alcotest.(check bool) "a few hundred mutants exercised" true (!mutants >= 200);
            Alcotest.(check int) "every mutant round-tripped or fell back cleanly" !mutants
              (!fallbacks + !roundtrips)));
  ]

(* ------------------------------------------------------------------ *)
(* Guard clock: monotonic measurement                                 *)
(* ------------------------------------------------------------------ *)

(** Regressions for the wall-clock -> monotonic switch: deadlines and
    [elapsed_ms] are measured on {!Pointsto.Mono}, which a stepping
    system clock (NTP, manual [date]) cannot disturb. The step itself
    cannot be simulated in a test, so these pin the observable
    contract: elapsed time is non-negative, advances with real time,
    and agrees with an independent monotonic reading. *)
let mono_tests =
  [
    case "elapsed_ms starts at zero and advances with real time" (fun () ->
        let g = Guard.unlimited () in
        let e0 = Guard.elapsed_ms g in
        Alcotest.(check bool) "non-negative at birth" true (e0 >= 0.);
        Alcotest.(check bool) "tiny at birth" true (e0 < 100.);
        Unix.sleepf 0.02;
        let e1 = Guard.elapsed_ms g in
        Alcotest.(check bool) "advanced by the sleep" true (e1 >= e0 +. 15.));
    case "elapsed_ms agrees with an independent monotonic reading" (fun () ->
        let t0 = Pointsto.Mono.now_ms () in
        let g = Guard.unlimited () in
        Unix.sleepf 0.01;
        let e = Guard.elapsed_ms g in
        let dt = Pointsto.Mono.now_ms () -. t0 in
        Alcotest.(check bool) "within the bracketing interval" true (e > 0. && e <= dt +. 1.));
    case "mono clock readings never go backwards" (fun () ->
        let prev = ref (Pointsto.Mono.now_s ()) in
        for _ = 1 to 10_000 do
          let t = Pointsto.Mono.now_s () in
          if t < !prev then Alcotest.fail "monotonic clock went backwards";
          prev := t
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Driver exit precedence (spawns the real binary)                    *)
(* ------------------------------------------------------------------ *)

(** End-to-end checks of the tables/profile exit policy: failure (1)
    beats degradation (3), and the degradation report still prints when
    both occur. Runs the installed ptan binary; the test cwd is
    [_build/default/test]. *)
(* cwd is _build/default/test under [dune runtest], the workspace root
   under [dune exec test/main.exe] (how CI's chaos job runs this
   suite) — resolve the binary for both. *)
let ptan =
  if Sys.file_exists "../bin/ptan.exe" then "../bin/ptan.exe"
  else "_build/default/bin/ptan.exe"

let run_ptan ?(env = "") args =
  in_temp (fun dir ->
      let out = Filename.concat dir "out" and err = Filename.concat dir "err" in
      let code = Sys.command (Printf.sprintf "%s %s %s > %s 2> %s" env ptan args out err) in
      ( code,
        In_channel.with_open_bin out In_channel.input_all,
        In_channel.with_open_bin err In_channel.input_all ))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  go 0

let with_garbage_c f =
  let file = Filename.temp_file "ptan-bad" ".c" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Out_channel.with_open_bin file (fun oc ->
          Out_channel.output_string oc "int main( { this is not C\n");
      f file)

let exit_code_tests =
  [
    case "tables: degradation alone exits 3 with the report" (fun () ->
        let code, out, err = run_ptan (Fmt.str "tables --no-cache --fuel 1 %s" (bench "livc")) in
        Alcotest.(check int) "exit 3" 3 code;
        Alcotest.(check bool) "report printed" true (contains out "degraded:");
        Alcotest.(check bool) "summary on stderr" true (contains err "1 degraded"));
    case "tables: failure beats degradation, which still reports" (fun () ->
        with_garbage_c (fun bad ->
            let code, out, err =
              run_ptan (Fmt.str "tables --no-cache --fuel 1 %s %s" (bench "livc") bad)
            in
            Alcotest.(check int) "exit 1, not 3" 1 code;
            Alcotest.(check bool) "degradation still reported" true (contains out "degraded:");
            Alcotest.(check bool) "summary counts both" true
              (contains err "1 file(s) failed, 1 degraded")));
    case "profile: failure beats degradation, which still reports" (fun () ->
        with_garbage_c (fun bad ->
            let code, out, _ =
              run_ptan (Fmt.str "profile --fuel 1 %s %s" (bench "livc") bad)
            in
            Alcotest.(check int) "exit 1, not 3" 1 code;
            Alcotest.(check bool) "degradation still reported" true (contains out "degraded:")));
    case "tables: all clean exits 0" (fun () ->
        let code, _, _ = run_ptan (Fmt.str "tables --no-cache %s" (bench "hash")) in
        Alcotest.(check int) "exit 0" 0 code);
    case "tables: a tripped heap ceiling exits 3, not an OOM kill" (fun () ->
        let code, out, _ =
          run_ptan ~env:"PTAN_FAULTS=alloc-spike"
            (Fmt.str "tables --no-cache --max-heap-mb 4096 %s" (bench "hash"))
        in
        Alcotest.(check int) "exit 3" 3 code;
        Alcotest.(check bool) "heap named in the report" true (contains out "heap"));
  ]

(* ------------------------------------------------------------------ *)
(* Supervisor chaos (spawns the real binary)                          *)
(* ------------------------------------------------------------------ *)

(** A Unix-socket client with a receive timeout: a hang — the one thing
    a supervised daemon must never inflict on a client — fails the test
    instead of wedging the suite. *)
let connect_sock path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.;
  fd

(* One reply line; "" when the worker died under us (EOF or reset). *)
let recv_line fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
        if Bytes.get b 0 = '\n' then Buffer.contents buf
        else begin
          Buffer.add_char buf (Bytes.get b 0);
          go ()
        end
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        Buffer.contents buf
  in
  go ()

let sock_round_trip path line =
  let fd = connect_sock path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let msg = line ^ "\n" in
      ignore (Unix.write_substring fd msg 0 (String.length msg));
      recv_line fd)

let rec await ?(tries = 100) msg f =
  if tries = 0 then Alcotest.failf "timed out waiting for %s" msg
  else if not (try f () with Unix.Unix_error _ -> false) then begin
    Unix.sleepf 0.1;
    await ~tries:(tries - 1) msg f
  end

let supervisor_tests =
  [
    case "supervise: five worker kills; clean reconnects, identical answers" (fun () ->
        in_temp (fun dir ->
            let sock = Filename.concat dir "s" in
            let arm = Filename.concat dir "arm" in
            let dev_null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
            let log_fd =
              Unix.openfile (Filename.concat dir "log")
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
                0o644
            in
            let env =
              Array.append (Unix.environment ())
                [| "PTAN_FAULTS=worker-kill"; "PTAN_FAULT_KILL_FILE=" ^ arm |]
            in
            let pid =
              Unix.create_process_env ptan
                [|
                  ptan; "serve"; bench "hash"; "--no-cache"; "--socket"; sock;
                  "--supervise"; "--max-restarts"; "10";
                |]
                env dev_null log_fd log_fd
            in
            Fun.protect
              ~finally:(fun () ->
                (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
                (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
                List.iter
                  (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
                  [ dev_null; log_fd ])
              (fun () ->
                await "the supervised daemon" (fun () ->
                    Sys.file_exists sock && sock_round_trip sock "ping" = "ok pong");
                (* the reference answer: a cold one-shot query of the
                   same corpus entry *)
                let cold =
                  let code, out, _ =
                    run_ptan
                      (Fmt.str "query --no-cache %s pts insert s50 e" (bench "hash"))
                  in
                  Alcotest.(check int) "cold query exits 0" 0 code;
                  String.trim out
                in
                let q = "q hash pts insert s50 e" in
                Alcotest.(check string) "daemon agrees with the cold query"
                  ("ok " ^ cold) (sock_round_trip sock q);
                for i = 1 to 5 do
                  (* arm the injection: the worker SIGKILLs itself as it
                     picks up the next batch — our query dies with it *)
                  Out_channel.with_open_bin arm (fun _ -> ());
                  let dying = sock_round_trip sock q in
                  Alcotest.(check string)
                    (Fmt.str "kill %d: dropped cleanly, no hang" i)
                    "" dying;
                  await "the restarted worker" (fun () ->
                      sock_round_trip sock "ping" = "ok pong");
                  Alcotest.(check string)
                    (Fmt.str "bit-identical answer after restart %d" i)
                    ("ok " ^ cold) (sock_round_trip sock q);
                  let health = sock_round_trip sock "health" in
                  Alcotest.(check bool)
                    (Fmt.str "health reports restarts=%d" i)
                    true
                    (contains health (Fmt.str "restarts=%d " i))
                done;
                Alcotest.(check string) "clean quit" "ok bye"
                  (sock_round_trip sock "quit");
                let _, st = Unix.waitpid [] pid in
                Alcotest.(check bool) "supervisor exits 0" true (st = Unix.WEXITED 0))));
  ]

let suite =
  ( "robust",
    guard_tests @ mono_tests @ degradation_tests @ heap_tests @ timeout_tests
    @ fault_tests @ quarantine_tests @ fuzz_tests @ exit_code_tests @ supervisor_tests )
