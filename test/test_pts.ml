(** Unit and property tests for {!Pointsto.Pts} and {!Pointsto.Loc}:
    the points-to set lattice (merge, covering) and the abstract-location
    algebra. *)

open Test_util

let v name = Loc.Var (name, Loc.Klocal)
let g name = Loc.Var (name, Loc.Kglobal)

let x = v "x"
let y = v "y"
let z = v "z"

(* ------------------------------------------------------------------ *)
(* Unit tests                                                         *)
(* ------------------------------------------------------------------ *)

let unit_tests =
  [
    case "add/find" (fun () ->
        let s = Pts.add x y Pts.D Pts.empty in
        Alcotest.(check bool) "found D" true (Pts.find x y s = Some Pts.D);
        Alcotest.(check bool) "absent" true (Pts.find y x s = None));
    case "add overrides" (fun () ->
        let s = Pts.add x y Pts.P (Pts.add x y Pts.D Pts.empty) in
        Alcotest.(check bool) "now P" true (Pts.find x y s = Some Pts.P);
        let s = Pts.add x y Pts.D s in
        Alcotest.(check bool) "back to D" true (Pts.find x y s = Some Pts.D));
    case "add_weak weakens" (fun () ->
        let s = Pts.add_weak x y Pts.P (Pts.add x y Pts.D Pts.empty) in
        Alcotest.(check bool) "weakened" true (Pts.find x y s = Some Pts.P);
        let s = Pts.add_weak x y Pts.D s in
        Alcotest.(check bool) "stays P" true (Pts.find x y s = Some Pts.P));
    case "kill_src removes all pairs of a source" (fun () ->
        let s = Pts.of_list [ (x, y, Pts.D); (x, z, Pts.P); (y, z, Pts.D) ] in
        let s = Pts.kill_src x s in
        Alcotest.(check int) "one pair left" 1 (Pts.cardinal s);
        Alcotest.(check bool) "y->z kept" true (Pts.mem y z s));
    case "weaken_src demotes" (fun () ->
        let s = Pts.of_list [ (x, y, Pts.D); (y, z, Pts.D) ] in
        let s = Pts.weaken_src x s in
        Alcotest.(check bool) "x->y P" true (Pts.find x y s = Some Pts.P);
        Alcotest.(check bool) "y->z still D" true (Pts.find y z s = Some Pts.D));
    case "merge: D on both sides stays D" (fun () ->
        let a = Pts.of_list [ (x, y, Pts.D) ] in
        let b = Pts.of_list [ (x, y, Pts.D) ] in
        Alcotest.(check bool) "D" true (Pts.find x y (Pts.merge a b) = Some Pts.D));
    case "merge: pair on one side becomes P" (fun () ->
        let a = Pts.of_list [ (x, y, Pts.D) ] in
        let m = Pts.merge a Pts.empty in
        Alcotest.(check bool) "P" true (Pts.find x y m = Some Pts.P));
    case "merge: conflicting definites both become P" (fun () ->
        let a = Pts.of_list [ (x, y, Pts.D) ] in
        let b = Pts.of_list [ (x, z, Pts.D) ] in
        let m = Pts.merge a b in
        Alcotest.(check bool) "x->y P" true (Pts.find x y m = Some Pts.P);
        Alcotest.(check bool) "x->z P" true (Pts.find x z m = Some Pts.P));
    case "covered_by: pair subset with definite downgrade" (fun () ->
        let small = Pts.of_list [ (x, y, Pts.D) ] in
        let big = Pts.of_list [ (x, y, Pts.P); (x, z, Pts.P) ] in
        Alcotest.(check bool) "small <= big" true (Pts.covered_by small big);
        Alcotest.(check bool) "big </= small" false (Pts.covered_by big small));
    case "covered_by rejects spurious definite in the cover" (fun () ->
        (* the cover claims x definitely points to z, the covered set does
           not establish it: unsafe *)
        let small = Pts.of_list [ (x, y, Pts.P); (x, z, Pts.P) ] in
        let big = Pts.of_list [ (x, y, Pts.P); (x, z, Pts.D) ] in
        Alcotest.(check bool) "not covered" false (Pts.covered_by small big));
    case "state merge with Bottom is identity" (fun () ->
        let s = Some (Pts.of_list [ (x, y, Pts.D) ]) in
        Alcotest.(check bool) "left" true (Pts.state_equal (Pts.merge_state None s) s);
        Alcotest.(check bool) "right" true (Pts.state_equal (Pts.merge_state s None) s));
    case "union_override prefers the overriding side" (fun () ->
        let base = Pts.of_list [ (x, y, Pts.P); (y, z, Pts.D) ] in
        let over = Pts.of_list [ (x, y, Pts.D) ] in
        let u = Pts.union_override base over in
        Alcotest.(check bool) "x->y D" true (Pts.find x y u = Some Pts.D);
        Alcotest.(check bool) "y->z kept" true (Pts.find y z u = Some Pts.D));
    case "remove_tgt drops every pair at the target" (fun () ->
        let s = Pts.of_list [ (x, z, Pts.D); (y, z, Pts.P); (z, y, Pts.D) ] in
        let s = Pts.remove_tgt z s in
        Alcotest.(check int) "one pair left" 1 (Pts.cardinal s);
        Alcotest.(check bool) "z->y kept" true (Pts.find z y s = Some Pts.D));
    case "sources inverts targets" (fun () ->
        let s = Pts.of_list [ (x, z, Pts.D); (y, z, Pts.P); (z, y, Pts.D) ] in
        Alcotest.(check int) "two sources of z" 2 (Loc.Set.cardinal (Pts.sources z s));
        Alcotest.(check bool) "x there" true (Loc.Set.mem x (Pts.sources z s));
        Alcotest.(check bool) "y there" true (Loc.Set.mem y (Pts.sources z s));
        Alcotest.(check bool) "none of x" true (Loc.Set.is_empty (Pts.sources x s)));
    case "filter_src keeps whole sources" (fun () ->
        let s = Pts.of_list [ (x, y, Pts.D); (x, z, Pts.P); (y, z, Pts.D) ] in
        let s = Pts.filter_src (fun src -> not (Loc.equal src x)) s in
        Alcotest.(check int) "x's pairs gone" 1 (Pts.cardinal s);
        Alcotest.(check bool) "y->z kept" true (Pts.mem y z s));
    case "add_map equals repeated add" (fun () ->
        let base = Pts.of_list [ (x, y, Pts.P); (y, z, Pts.D) ] in
        let m = Pts.tgt_map y base in
        (* graft y's targets under x: overrides x->... pairs pointwise *)
        let bulk = Pts.add_map x m base in
        let one_by_one =
          Loc.Map.fold (fun t d acc -> Pts.add x t d acc) m base
        in
        Alcotest.(check bool) "same set" true (Pts.equal bulk one_by_one);
        Alcotest.(check int) "cardinal tracked" (Pts.cardinal one_by_one)
          (Pts.cardinal bulk));
    case "all_locs collects sources and targets" (fun () ->
        let s = Pts.of_list [ (x, y, Pts.D); (y, z, Pts.P) ] in
        Alcotest.(check int) "three locs" 3 (Loc.Set.cardinal (Pts.all_locs s)));
    case "to_list/of_list roundtrip" (fun () ->
        let s = Pts.of_list [ (x, y, Pts.D); (y, z, Pts.P); (x, z, Pts.P) ] in
        Alcotest.(check bool) "equal" true (Pts.equal s (Pts.of_list (Pts.to_list s))));
  ]

(* ------------------------------------------------------------------ *)
(* Loc unit tests                                                     *)
(* ------------------------------------------------------------------ *)

let loc_tests =
  [
    case "root walks to the base variable" (fun () ->
        let l = Loc.Fld (Loc.Tail (Loc.Sym x), "f") in
        Alcotest.(check bool) "root is x" true (Loc.root l = x));
    case "sym_depth counts Sym constructors" (fun () ->
        Alcotest.(check int) "0" 0 (Loc.sym_depth x);
        Alcotest.(check int) "1" 1 (Loc.sym_depth (Loc.Sym x));
        Alcotest.(check int) "2" 2 (Loc.sym_depth (Loc.Sym (Loc.Fld (Loc.Sym x, "f")))));
    case "singular: tails, heap and strings are not" (fun () ->
        Alcotest.(check bool) "var" true (Loc.singular x);
        Alcotest.(check bool) "head" true (Loc.singular (Loc.Head x));
        Alcotest.(check bool) "tail" false (Loc.singular (Loc.Tail x));
        Alcotest.(check bool) "field of tail" false (Loc.singular (Loc.Fld (Loc.Tail x, "f")));
        Alcotest.(check bool) "heap" false (Loc.singular Loc.Heap);
        Alcotest.(check bool) "str" false (Loc.singular Loc.Str);
        Alcotest.(check bool) "sym" true (Loc.singular (Loc.Sym x)));
    case "visibility: globals and specials only" (fun () ->
        Alcotest.(check bool) "local" false (Loc.is_global_visible x);
        Alcotest.(check bool) "global" true (Loc.is_global_visible (g "gv"));
        Alcotest.(check bool) "field of global" true
          (Loc.is_global_visible (Loc.Fld (g "gv", "f")));
        Alcotest.(check bool) "sym over param" false
          (Loc.is_global_visible (Loc.Sym (Loc.Var ("p", Loc.Kparam))));
        Alcotest.(check bool) "heap" true (Loc.is_global_visible Loc.Heap);
        Alcotest.(check bool) "fun" true (Loc.is_global_visible (Loc.Fun "f")));
    case "category follows the root and symbolic names win" (fun () ->
        Alcotest.(check bool) "local" true (Loc.category x = Some `Lo);
        Alcotest.(check bool) "global" true (Loc.category (g "gv") = Some `Gl);
        Alcotest.(check bool) "param" true
          (Loc.category (Loc.Var ("p", Loc.Kparam)) = Some `Fp);
        Alcotest.(check bool) "sym" true (Loc.category (Loc.Sym x) = Some `Sy);
        Alcotest.(check bool) "field of sym is sy" true
          (Loc.category (Loc.Fld (Loc.Sym x, "f")) = Some `Sy);
        Alcotest.(check bool) "heap uncategorized" true (Loc.category Loc.Heap = None));
    case "printing matches the paper's conventions" (fun () ->
        Alcotest.(check string) "var" "x" (Loc.to_string x);
        Alcotest.(check string) "head" "a_head" (Loc.to_string (Loc.Head (v "a")));
        Alcotest.(check string) "tail" "a_tail" (Loc.to_string (Loc.Tail (v "a")));
        Alcotest.(check string) "1_x" "1_x" (Loc.to_string (Loc.Sym x));
        Alcotest.(check string) "2_x" "2_x" (Loc.to_string (Loc.Sym (Loc.Sym x)));
        Alcotest.(check string) "field" "s.f" (Loc.to_string (Loc.Fld (v "s", "f")));
        Alcotest.(check string) "heap" "heap" (Loc.to_string Loc.Heap));
    case "interning: smart constructors return the canonical value" (fun () ->
        Alcotest.(check bool) "var" true
          (Loc.var "ix" Loc.Klocal == Loc.var "ix" Loc.Klocal);
        Alcotest.(check bool) "fld" true
          (Loc.fld (Loc.var "ix" Loc.Klocal) "f" == Loc.fld (Loc.var "ix" Loc.Klocal) "f");
        Alcotest.(check bool) "intern of a bare value" true (Loc.intern (Loc.Sym x) == Loc.sym x);
        Alcotest.(check bool) "stable id" true
          (Loc.id (Loc.var "ix" Loc.Klocal) = Loc.id (Loc.var "ix" Loc.Klocal)));
    case "is_stack: named locations and not heap/str/fun" (fun () ->
        Alcotest.(check bool) "var" true (Loc.is_stack x);
        Alcotest.(check bool) "sym" true (Loc.is_stack (Loc.Sym x));
        Alcotest.(check bool) "heap" false (Loc.is_stack Loc.Heap);
        Alcotest.(check bool) "fun" false (Loc.is_stack (Loc.Fun "f"));
        Alcotest.(check bool) "str" false (Loc.is_stack Loc.Str));
  ]

(* ------------------------------------------------------------------ *)
(* Properties                                                         *)
(* ------------------------------------------------------------------ *)

let loc_gen : Loc.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  let base =
    oneofl [ v "x"; v "y"; v "z"; g "ga"; g "gb"; Loc.Heap; Loc.Null; Loc.Str; Loc.Fun "f" ]
  in
  let wrap l =
    oneofl
      [ l; Loc.Fld (l, "f"); Loc.Head l; Loc.Tail l; Loc.Sym l ]
  in
  base >>= fun b ->
  oneof [ return b; wrap b; (wrap b >>= wrap) ]

let cert_gen = QCheck2.Gen.oneofl [ Pts.D; Pts.P ]

let pts_gen : Pts.t QCheck2.Gen.t =
  let open QCheck2.Gen in
  list_size (int_bound 12) (triple loc_gen loc_gen cert_gen) >|= Pts.of_list

let property_tests =
  [
    qcase "merge is commutative" QCheck2.Gen.(pair pts_gen pts_gen) (fun (a, b) ->
        Pts.equal (Pts.merge a b) (Pts.merge b a));
    qcase "merge is associative" QCheck2.Gen.(triple pts_gen pts_gen pts_gen)
      (fun (a, b, c) ->
        Pts.equal (Pts.merge a (Pts.merge b c)) (Pts.merge (Pts.merge a b) c));
    qcase "merge is idempotent" pts_gen (fun a -> Pts.equal (Pts.merge a a) a);
    qcase "covered_by is reflexive" pts_gen (fun a -> Pts.covered_by a a);
    qcase "merge is an upper bound" QCheck2.Gen.(pair pts_gen pts_gen) (fun (a, b) ->
        let m = Pts.merge a b in
        Pts.covered_by a m && Pts.covered_by b m);
    qcase "covered_by is transitive through merges"
      QCheck2.Gen.(triple pts_gen pts_gen pts_gen)
      (fun (a, b, c) ->
        let ab = Pts.merge a b in
        let abc = Pts.merge ab c in
        Pts.covered_by a abc);
    qcase "kill then query is empty" QCheck2.Gen.(pair loc_gen pts_gen) (fun (l, s) ->
        Pts.targets l (Pts.kill_src l s) = []);
    qcase "weaken_src leaves no definite pairs at the source"
      QCheck2.Gen.(pair loc_gen pts_gen)
      (fun (l, s) ->
        List.for_all (fun (_, c) -> c = Pts.P) (Pts.targets l (Pts.weaken_src l s)));
    qcase "merge absorption: merge a (merge a b) = merge a b"
      QCheck2.Gen.(pair pts_gen pts_gen)
      (fun (a, b) ->
        (* exercises the subsumption fast path: the second merge's left
           operand is covered by the result of the first *)
        let ab = Pts.merge a b in
        Pts.equal (Pts.merge a ab) ab && Pts.equal (Pts.merge ab b) ab);
    qcase "remove_tgt leaves no sources of the target"
      QCheck2.Gen.(pair loc_gen pts_gen)
      (fun (l, s) -> Loc.Set.is_empty (Pts.sources l (Pts.remove_tgt l s)));
    qcase "sources agrees with a forward scan" QCheck2.Gen.(pair loc_gen pts_gen)
      (fun (l, s) ->
        let scan =
          Pts.fold
            (fun src tgt _ acc -> if Loc.equal tgt l then Loc.Set.add src acc else acc)
            s Loc.Set.empty
        in
        Loc.Set.equal scan (Pts.sources l s));
    qcase "filter_src agrees with filter" pts_gen (fun s ->
        let keep src = Loc.singular src in
        Pts.equal (Pts.filter_src keep s) (Pts.filter (fun src _ _ -> keep src) s));
    qcase "cardinal agrees with to_list" pts_gen (fun s ->
        Pts.cardinal s = List.length (Pts.to_list s));
    qcase "Loc.compare is a total order (antisymmetry)"
      QCheck2.Gen.(pair loc_gen loc_gen)
      (fun (a, b) ->
        let c1 = Loc.compare a b and c2 = Loc.compare b a in
        (c1 = 0) = (c2 = 0) && (c1 > 0) = (c2 < 0));
    qcase "root is idempotent" loc_gen (fun l -> Loc.root (Loc.root l) = Loc.root l);
    qcase "interning preserves the order" QCheck2.Gen.(pair loc_gen loc_gen)
      (fun (a, b) ->
        let sign c = compare c 0 in
        sign (Loc.compare (Loc.intern a) (Loc.intern b)) = sign (Loc.compare a b));
  ]

let suite = ("pts", unit_tests @ loc_tests @ property_tests)
