(** Intraprocedural analysis tests: the basic rules of Figure 1, the
    L-/R-location rows of Table 1, strong/weak updates, and the
    compositional control-flow rules. All assertions query points-to
    targets at probe points or at exit of main. *)

open Test_util

let basic_rules =
  [
    case "p = &y creates a definite pair" (fun () ->
        check_exit "gen" "int y; int main() { int *p; p = &y; return 0; }" "p" [ "y/D" ]);
    case "copy propagates pairs" (fun () ->
        check_exit "copy" "int y; int main() { int *p, *q; p = &y; q = p; return 0; }" "q"
          [ "y/D" ]);
    case "definite assignment kills the old pair (strong update)" (fun () ->
        check_exit "kill" "int x, y; int main() { int *p; p = &x; p = &y; return 0; }" "p"
          [ "y/D" ]);
    case "*pp = &z with pp definite strong-updates the target" (fun () ->
        check_exit "indirect strong update"
          "int x, z; int main() { int *p, **pp; p = &x; pp = &p; *pp = &z; return 0; }" "p"
          [ "z/D" ]);
    case "*pp = &z with pp possible weak-updates both targets" (fun () ->
        check_exit "weak update"
          {|int x, z, w; int c;
            int main() {
              int *p, *q, **pp;
              p = &x; q = &x;
              if (c) pp = &p; else pp = &q;
              *pp = &z;
              return 0;
            }|}
          "p" [ "x/P"; "z/P" ]);
    case "x = *q reads through the pointer" (fun () ->
        check_exit "deref read"
          "int v; int main() { int *y, **q, *x; y = &v; q = &y; x = *q; return 0; }" "x"
          [ "v/D" ]);
    case "chained definites keep certainty (d1 and d2)" (fun () ->
        check_exit "both definite"
          "int v; int main() { int *y, **q, **r, *x; y = &v; q = &y; r = q; x = *r; return 0; }"
          "x" [ "v/D" ]);
    case "possible source demotes the generated pair" (fun () ->
        check_exit "possible chain"
          {|int v, w; int c;
            int main() {
              int *y, *z, **q, *x;
              y = &v; z = &w;
              if (c) q = &y; else q = &z;
              x = *q;
              return 0;
            }|}
          "x" [ "v/P"; "w/P" ]);
    case "self assignment is harmless" (fun () ->
        check_exit "p = p" "int y; int main() { int *p; p = &y; p = p; return 0; }" "p"
          [ "y/D" ]);
    case "non-pointer assignments do not disturb points-to" (fun () ->
        check_exit "int arithmetic"
          "int y; int main() { int *p; int a; p = &y; a = 1 + 2; a = a * 3; return 0; }" "p"
          [ "y/D" ]);
    case "p = 0 resets to NULL (no targets reported)" (fun () ->
        check_exit "null" "int y; int main() { int *p; p = &y; p = 0; return 0; }" "p" []);
    case "malloc points into the heap" (fun () ->
        check_exit "heap" "int main() { int *p; p = (int*)malloc(4); return 0; }" "p"
          [ "heap/P" ]);
    case "string literal assignment" (fun () ->
        check_exit "str" "int main() { char *s; s = \"hi\"; return 0; }" "s" [ "str/P" ]);
  ]

let table1_rows =
  [
    case "&a.f yields the field location" (fun () ->
        check_exit "field addr"
          "struct s { int f; int g; }; struct s a; int main() { int *p; p = &a.f; return 0; }"
          "p" [ "a.f/D" ]);
    case "&a[0] yields the head" (fun () ->
        check_exit "head" "int a[10]; int main() { int *p; p = &a[0]; return 0; }" "p"
          [ "a_head/D" ]);
    case "&a[3] yields the tail definitely" (fun () ->
        check_exit "tail" "int a[10]; int main() { int *p; p = &a[3]; return 0; }" "p"
          [ "a_tail/D" ]);
    case "&a[i] with unknown i yields head or tail" (fun () ->
        check_exit "either"
          "int a[10]; int main(int argc, char **argv) { int *p; p = &a[argc]; return 0; }" "p"
          [ "a_head/P"; "a_tail/P" ]);
    case "array name decays to its head" (fun () ->
        check_exit "decay" "int a[10]; int main() { int *p; p = a; return 0; }" "p"
          [ "a_head/D" ]);
    case "(*a).f reads through a struct pointer" (fun () ->
        check_exit "through field"
          {|struct s { int *q; } g;
            int v;
            int main() { struct s *a; int *x; g.q = &v; a = &g; x = (*a).q; return 0; }|}
          "x" [ "v/D" ]);
    case "a->f writes through a struct pointer" (fun () ->
        let res =
          analyze
            {|struct s { int *q; } g;
              int v;
              int main() { struct s *a; a = &g; a->q = &v; return 0; }|}
        in
        check_targets "g.q -> v" [ "v/D" ]
          (match res.Analysis.entry_output with
          | Some s ->
              Pts.targets (Loc.Fld (Loc.Var ("g", Loc.Kglobal), "q")) s
              |> List.filter (fun (t, _) -> not (Loc.is_null t))
              |> List.map show_pair |> sorted_strings
          | None -> Alcotest.fail "no exit"));
    case "array-of-pointers element write lands on head/tail" (fun () ->
        let res =
          analyze
            "int v; int *a[4]; int main(int argc, char **argv) { a[0] = &v; a[argc] = &v; return 0; }"
        in
        (match res.Analysis.entry_output with
        | Some s ->
            check_targets "head" [ "v/P" ]
              (Pts.targets (Loc.Head (Loc.Var ("a", Loc.Kglobal))) s
              |> List.filter (fun (t, _) -> not (Loc.is_null t))
              |> List.map show_pair |> sorted_strings);
            check_targets "tail weak" [ "v/P" ]
              (Pts.targets (Loc.Tail (Loc.Var ("a", Loc.Kglobal))) s
              |> List.filter (fun (t, _) -> not (Loc.is_null t))
              |> List.map show_pair |> sorted_strings)
        | None -> Alcotest.fail "no exit"));
    case "pointer arithmetic moves head into tail" (fun () ->
        check_exit "p = a + 1"
          "int a[10]; int main() { int *p; p = a + 1; return 0; }" "p" [ "a_tail/D" ]);
    case "pointer arithmetic with unknown offset covers the array" (fun () ->
        check_exit "p = a + n"
          "int a[10]; int main(int argc, char **argv) { int *p; p = a + argc; return 0; }" "p"
          [ "a_head/P"; "a_tail/P" ]);
    case "p++ from the head stays within the array" (fun () ->
        check_exit "p++"
          "int a[10]; int main() { int *p; p = a; p++; return 0; }" "p" [ "a_tail/D" ]);
    case "subscripting a pointer moves across the pointed array" (fun () ->
        check_exit "q = &p[2]"
          "int a[10]; int main() { int *p, *q; p = a; q = &p[2]; return 0; }" "q"
          [ "a_tail/D" ]);
    case "union fields collapse to one location" (fun () ->
        check_exit "union"
          {|union u { int *p; char *q; } g;
            int v;
            int main() { int *x; g.p = &v; x = (int*)g.q; return 0; }|}
          "x" [ "v/D" ]);
  ]

let control_flow =
  [
    case "if merge demotes one-sided definites" (fun () ->
        check_exit "merge"
          {|int x, y; int c;
            int main() { int *p; if (c) p = &x; else p = &y; return 0; }|}
          "p" [ "x/P"; "y/P" ]);
    case "if without else merges with the fall-through" (fun () ->
        check_exit "half if"
          "int x, y; int c; int main() { int *p; p = &x; if (c) p = &y; return 0; }" "p"
          [ "x/P"; "y/P" ]);
    case "same assignment in both branches stays definite" (fun () ->
        check_exit "both branches"
          "int x; int c; int main() { int *p; if (c) p = &x; else p = &x; return 0; }" "p"
          [ "x/D" ]);
    case "while loop reaches a fixed point" (fun () ->
        check_exit "loop"
          {|struct n { struct n *next; };
            struct n a, b;
            int main() { struct n *p; int c;
              a.next = &b; b.next = &a;
              p = &a;
              while (c) p = p->next;
              return 0; }|}
          "p" [ "a/P"; "b/P" ]);
    case "loop body executed zero times keeps the input" (fun () ->
        check_exit "zero trip"
          "int x, y; int main() { int *p; int c; p = &x; while (c) p = &y; return 0; }" "p"
          [ "x/P"; "y/P" ]);
    case "do-while body always executes" (fun () ->
        check_exit "do"
          "int x, y; int main() { int *p; int c; p = &x; do { p = &y; } while (c); return 0; }"
          "p" [ "y/D" ]);
    case "break exits carry their state" (fun () ->
        check_exit "break"
          {|int x, y, z;
            int main() { int *p; int c;
              p = &x;
              while (1) { p = &y; if (c) break; p = &z; }
              return 0; }|}
          (* the analysis is condition-insensitive: the zero-trip exit
             (p = &x) remains possible *)
          "p" [ "x/P"; "y/P"; "z/P" ]);
    case "continue re-runs the loop step" (fun () ->
        check_exit "continue"
          {|int x, y;
            int main() { int *p; int i;
              p = &x;
              for (i = 0; i < 3; i++) { if (i == 1) continue; p = &y; }
              return 0; }|}
          "p" [ "x/P"; "y/P" ]);
    case "return inside a branch merges at function exit" (fun () ->
        check_exit "early return"
          {|int x, y; int c;
            int main() { int *p; p = &x; if (c) { p = &y; return 0; } return 0; }|}
          "p" [ "x/P"; "y/P" ]);
    case "code after return is unreachable" (fun () ->
        check_exit "dead code"
          "int x, y; int main() { int *p; p = &x; return 0; p = &y; return 0; }" "p"
          [ "x/D" ]);
    case "switch merges all groups" (fun () ->
        check_exit "switch"
          {|int x, y, z; int c;
            int main() { int *p;
              switch (c) {
              case 0: p = &x; break;
              case 1: p = &y; break;
              default: p = &z; break;
              }
              return 0; }|}
          "p" [ "x/P"; "y/P"; "z/P" ]);
    case "switch fall-through flows into the next group" (fun () ->
        check_exit "fallthrough"
          {|int x, y; int c;
            int main() { int *p; p = 0;
              switch (c) {
              case 0: p = &x;
              case 1: if (p == 0) p = &y; break;
              default: p = &y;
              }
              return 0; }|}
          "p" [ "x/P"; "y/P" ]);
    case "switch without default keeps the input reachable" (fun () ->
        check_exit "no default"
          {|int x, y; int c;
            int main() { int *p; p = &x;
              switch (c) { case 0: p = &y; break; }
              return 0; }|}
          "p" [ "x/P"; "y/P" ]);
    case "nested loops converge" (fun () ->
        check_exit "nested"
          {|int x, y, z;
            int main() { int *p; int i, j;
              p = &x;
              for (i = 0; i < 3; i++) {
                for (j = 0; j < 3; j++) {
                  if (j == 2) p = &y; else p = &z;
                }
              }
              return 0; }|}
          "p" [ "x/P"; "y/P"; "z/P" ]);
    case "condition reads do not change points-to" (fun () ->
        check_exit "cond read"
          "int x; int main() { int *p; p = &x; if (*p > 0) { } return 0; }" "p" [ "x/D" ]);
  ]

(** Targets of a location derived from variable [var] (e.g. its array
    tail cell) at exit of main. *)
let check_exit_loc msg src var derive expected =
  let res = analyze src in
  let s =
    match res.Analysis.entry_output with
    | Some s -> s
    | None -> Alcotest.fail "entry function does not terminate normally"
  in
  let fn =
    match Ir.find_func res.Analysis.prog "main" with
    | Some f -> f
    | None -> Alcotest.fail "no main"
  in
  let base =
    match Pointsto.Tenv.base_loc res.Analysis.tenv fn var with
    | Some b -> b
    | None -> Alcotest.failf "no variable %s" var
  in
  let actual =
    Pts.targets (derive base) s
    |> List.filter (fun (t, _) -> not (Loc.is_null t))
    |> List.map show_pair |> sorted_strings
  in
  check_targets msg expected actual

(** Strong-update refinement (paper §3.3): only singular L-locations are
    killed; non-singular ones (array tails, the heap, multi-represented
    symbolic names) receive weak updates and their generated pairs are
    demoted to possible. *)
let strong_update_refinement =
  [
    case "array tail assignments are weak with demoted gen pairs" (fun () ->
        check_exit_loc "tail accumulates"
          "int x, y; int main() { int *a[10]; a[3] = &x; a[5] = &y; return 0; }" "a"
          Loc.tail [ "x/P"; "y/P" ]);
    case "array head is singular: the second assignment kills" (fun () ->
        check_exit_loc "head kill"
          "int x, y; int main() { int *a[10]; a[0] = &x; a[0] = &y; return 0; }" "a"
          Loc.head [ "y/D" ]);
    case "head update does not disturb the tail cell" (fun () ->
        let src =
          "int x, y; int main() { int *a[10]; a[3] = &x; a[0] = &y; return 0; }"
        in
        check_exit_loc "tail kept" src "a" Loc.tail [ "x/P" ];
        check_exit_loc "head definite" src "a" Loc.head [ "y/D" ]);
    case "the heap cell only ever weak-updates" (fun () ->
        check_exit "heap weak"
          {|int x, y;
            int main() {
              int **p; int *q;
              p = (int**)malloc(8);
              *p = &x; *p = &y;
              q = *p;
              return 0;
            }|}
          "q" [ "x/P"; "y/P" ]);
    case "a multi-represented symbolic name weak-updates every invisible" (fun () ->
        (* inside [set], pp's symbolic target represents both p and q:
           the indirect assignment must not kill either one's pairs. The
           symbolic name holds the merged view of both invisibles, so at
           unmap each also conservatively inherits the other's target. *)
        let src =
          {|int g; int x, y; int c;
            void set(int **pp) { *pp = &g; }
            int main() {
              int *p, *q, **pp;
              p = &x; q = &y;
              if (c) pp = &p; else pp = &q;
              set(pp);
              return 0;
            }|}
        in
        check_exit "p keeps x" src "p" [ "g/P"; "x/P"; "y/P" ];
        check_exit "q keeps y" src "q" [ "g/P"; "x/P"; "y/P" ]);
    case "a singly-represented symbolic name strong-updates" (fun () ->
        (* pp definitely points to p: the callee's indirect assignment
           kills p's old pair even across the mapping *)
        check_exit "definite through sym"
          {|int g; int x;
            void set(int **pp) { *pp = &g; }
            int main() { int *p, **pp; p = &x; pp = &p; set(pp); return 0; }|}
          "p" [ "g/D" ]);
  ]

let definite_ablation =
  [
    case "with use_definite=false everything is possible" (fun () ->
        let opts = { Pointsto.Options.default with Pointsto.Options.use_definite = false } in
        check_exit ~opts "no definite"
          "int x; int main() { int *p; p = &x; return 0; }" "p" [ "x/P" ]);
    case "without definite info strong updates are lost" (fun () ->
        let opts = { Pointsto.Options.default with Pointsto.Options.use_definite = false } in
        check_exit ~opts "weak only"
          "int x, y; int main() { int *p; p = &x; p = &y; return 0; }" "p"
          [ "x/P"; "y/P" ]);
  ]

let suite =
  ( "intra",
    basic_rules @ table1_rows @ control_flow @ strong_update_refinement
    @ definite_ablation )
