(** Tests for the persisted-result layer ({!Pointsto.Persist}): the
    versioned binary save/load round trip, key invalidation, and the
    disk cache behind [analyze_cached].

    The load-side contract under test is "equivalent result or [None]":
    a loaded result must answer every query — per-statement points-to
    sets, entry output, invocation-graph statistics, Table 3–5 rows —
    bit-identically to the freshly analyzed one, and any mismatch of
    version, source content or options must read back as a miss. *)

open Test_util
module Ig = Pointsto.Invocation_graph
module Stats = Pointsto.Stats
module Persist = Pointsto.Persist
module Options = Pointsto.Options

let bench_dir = if Sys.file_exists "benchmarks" then "benchmarks" else "../benchmarks"

let bench name = Filename.concat bench_dir (name ^ ".c")

let temp_dir () =
  let d = Filename.temp_file "ptan-test" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let in_temp f =
  let dir = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let save_load ?(opts = Options.default) source =
  let res = Analysis.of_file ~opts source in
  in_temp (fun dir ->
      let file = Filename.concat dir "result.ptc" in
      Persist.save ~source res file;
      match Persist.load ~source ~opts file with
      | None -> Alcotest.fail "load returned None on a fresh save"
      | Some loaded -> (res, loaded))

(** Every per-statement points-to set, rendered; the exhaustive surface
    the query layer answers from. *)
let stmt_pts_strings (res : Analysis.result) =
  Hashtbl.fold (fun id s acc -> (id, Pts.to_string s) :: acc) res.Analysis.stmt_pts []
  |> List.sort compare

let table3_row (res : Analysis.result) =
  let i = Stats.indirect_stats res in
  Fmt.str "%d/%d %d/%d %d %d %d %d %d %d %d %.2f" i.Stats.one_d.Stats.scalar
    i.Stats.one_d.Stats.array i.Stats.one_p.Stats.scalar i.Stats.one_p.Stats.array
    (Stats.pair_total i.Stats.two_p)
    (Stats.pair_total i.Stats.three_p)
    (Stats.pair_total i.Stats.four_plus_p)
    i.Stats.ind_refs i.Stats.scalar_rep i.Stats.to_stack i.Stats.to_heap i.Stats.avg

let table4_row (res : Analysis.result) =
  let c = Stats.categorize res in
  Fmt.str "%d %d %d %d %d %d %d %d" c.Stats.from_lo c.Stats.from_gl c.Stats.from_fp
    c.Stats.from_sy c.Stats.to_lo c.Stats.to_gl c.Stats.to_fp c.Stats.to_sy

let table5_row (res : Analysis.result) =
  let g = Stats.general res in
  Fmt.str "%d %d %d %d %.1f %d" g.Stats.stack_to_stack g.Stats.stack_to_heap
    g.Stats.heap_to_heap g.Stats.heap_to_stack g.Stats.avg_per_stmt g.Stats.max_per_stmt

let ig_row (res : Analysis.result) =
  let s = Stats.ig_stats res in
  Fmt.str "%d %d %d %d %d %.2f %.2f" s.Stats.ig_nodes s.Stats.call_sites s.Stats.n_funcs
    s.Stats.n_recursive s.Stats.n_approximate s.Stats.avg_per_call_site s.Stats.avg_per_func

let check_equivalent name (fresh : Analysis.result) (loaded : Analysis.result) =
  Alcotest.(check (list (pair int string)))
    (name ^ ": per-statement points-to sets")
    (stmt_pts_strings fresh) (stmt_pts_strings loaded);
  Alcotest.(check string)
    (name ^ ": entry output")
    (Fmt.str "%a" Pts.pp_state fresh.Analysis.entry_output)
    (Fmt.str "%a" Pts.pp_state loaded.Analysis.entry_output);
  Alcotest.(check (list string))
    (name ^ ": warnings") fresh.Analysis.warnings loaded.Analysis.warnings;
  Alcotest.(check string)
    (name ^ ": invocation graph")
    (Fmt.str "%a" Ig.pp fresh.Analysis.graph)
    (Fmt.str "%a" Ig.pp loaded.Analysis.graph);
  Alcotest.(check string) (name ^ ": Table 3 row") (table3_row fresh) (table3_row loaded);
  Alcotest.(check string) (name ^ ": Table 4 row") (table4_row fresh) (table4_row loaded);
  Alcotest.(check string) (name ^ ": Table 5 row") (table5_row fresh) (table5_row loaded);
  Alcotest.(check string) (name ^ ": Table 6 row") (ig_row fresh) (ig_row loaded)

let roundtrip_tests =
  [
    case "round trip reproduces livc bit-identically" (fun () ->
        let fresh, loaded = save_load (bench "livc") in
        check_equivalent "livc" fresh loaded;
        Alcotest.(check int)
          "bodies_analyzed" fresh.Analysis.bodies_analyzed loaded.Analysis.bodies_analyzed);
    case "round trip reproduces a recursive benchmark (xref)" (fun () ->
        let fresh, loaded = save_load (bench "xref") in
        check_equivalent "xref" fresh loaded);
    case "round trip under non-default options (heap_by_site)" (fun () ->
        let opts = { Options.default with Options.heap_by_site = true } in
        let fresh, loaded = save_load ~opts (bench "hash") in
        check_equivalent "hash/site" fresh loaded);
    case "round trip preserves stored IN/OUT and map info" (fun () ->
        let fresh, loaded = save_load (bench "misr") in
        let dump (g : Ig.t) =
          Ig.fold
            (fun acc n ->
              Fmt.str "%s#%d in=%a out=%a maps=%d" n.Ig.func n.Ig.id Pts.pp_state
                n.Ig.stored_input Pts.pp_state n.Ig.stored_output
                (List.length n.Ig.map_info)
              :: acc)
            [] g
        in
        Alcotest.(check (list string))
          "per-node stored pairs" (dump fresh.Analysis.graph) (dump loaded.Analysis.graph));
  ]

let invalidation_tests =
  [
    case "load fails on different options" (fun () ->
        let source = bench "dry" in
        let res = Analysis.of_file source in
        in_temp (fun dir ->
            let file = Filename.concat dir "r.ptc" in
            Persist.save ~source res file;
            let opts = { Options.default with Options.context_sensitive = false } in
            Alcotest.(check bool)
              "miss" true
              (Option.is_none (Persist.load ~source ~opts file))));
    case "load fails on different entry" (fun () ->
        let source = bench "dry" in
        let res = Analysis.of_file source in
        in_temp (fun dir ->
            let file = Filename.concat dir "r.ptc" in
            Persist.save ~source res file;
            Alcotest.(check bool)
              "miss" true
              (Option.is_none (Persist.load ~source ~entry:"other" file))));
    case "load fails on changed source content" (fun () ->
        let source = bench "dry" in
        let res = Analysis.of_file source in
        in_temp (fun dir ->
            let file = Filename.concat dir "r.ptc" in
            Persist.save ~source res file;
            (* same result file, keyed against a different source file *)
            let other = Filename.concat dir "other.c" in
            Out_channel.with_open_bin other (fun oc ->
                Out_channel.output_string oc "int main() { return 0; }\n");
            Alcotest.(check bool)
              "miss" true
              (Option.is_none (Persist.load ~source:other file))));
    case "load fails on version or magic mismatch and on corruption" (fun () ->
        let source = bench "dry" in
        let res = Analysis.of_file source in
        in_temp (fun dir ->
            let file = Filename.concat dir "r.ptc" in
            Persist.save ~source res file;
            let data = In_channel.with_open_bin file In_channel.input_all in
            let wr name s =
              let f = Filename.concat dir name in
              Out_channel.with_open_bin f (fun oc -> Out_channel.output_string oc s);
              f
            in
            let bad_magic = wr "m.ptc" ("XXXXX" ^ String.sub data 5 (String.length data - 5)) in
            Alcotest.(check bool)
              "bad magic" true
              (Option.is_none (Persist.load ~source bad_magic));
            let truncated = wr "t.ptc" (String.sub data 0 (String.length data / 2)) in
            Alcotest.(check bool)
              "truncated" true
              (Option.is_none (Persist.load ~source truncated));
            let junk = wr "j.ptc" (data ^ "\000") in
            Alcotest.(check bool)
              "trailing junk" true
              (Option.is_none (Persist.load ~source junk));
            let missing = Filename.concat dir "absent.ptc" in
            Alcotest.(check bool)
              "missing file" true
              (Option.is_none (Persist.load ~source missing))));
  ]

let cache_tests =
  [
    case "analyze_cached: miss populates, hit is served from disk" (fun () ->
        in_temp (fun dir ->
            let source = bench "stanford" in
            let cold, hit0 = Persist.analyze_cached ~cache_dir:dir source in
            Alcotest.(check bool) "first call misses" false hit0;
            Alcotest.(check int)
              "miss recorded" 1 cold.Analysis.metrics.Pointsto.Metrics.cache_misses;
            let warm, hit1 = Persist.analyze_cached ~cache_dir:dir source in
            Alcotest.(check bool) "second call hits" true hit1;
            Alcotest.(check int)
              "hit recorded" 1 warm.Analysis.metrics.Pointsto.Metrics.cache_hits;
            check_equivalent "stanford cached" cold warm));
    case "analyze_cached: different options key different entries" (fun () ->
        in_temp (fun dir ->
            let source = bench "stanford" in
            let _, _ = Persist.analyze_cached ~cache_dir:dir source in
            let opts = { Options.default with Options.max_sym_depth = 2 } in
            let _, hit = Persist.analyze_cached ~cache_dir:dir ~opts source in
            Alcotest.(check bool) "different opts miss" false hit;
            Alcotest.(check int) "two cache entries" 2 (Array.length (Sys.readdir dir))));
  ]

let suite = ("persist", roundtrip_tests @ invalidation_tests @ cache_tests)
